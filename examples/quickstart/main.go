// Quickstart: Byzantine fault-tolerant clock synchronization in the ABC
// model (Algorithm 1 of the paper), verified end to end.
//
// We run n = 4 processes, one of them Byzantine, with Ξ = 2. After the
// run we (a) verify the produced execution really was ABC-admissible —
// the checker returns a normalized delay assignment as a certificate —
// and (b) verify the Theorem 2/3 precision bound ⌈2Ξ⌉ held at all times.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	abc "repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	const n, f = 4, 1
	model := abc.MustModel(abc.NewRat(2, 1)) // Ξ = 2

	// One Byzantine process that equivocates tick values.
	faults := abc.ByzantineClockAdversaries(n, f, 42)

	res, graph, verdict, err := model.RunVerified(abc.Config{
		N:      n,
		Spawn:  abc.ClockSyncSpawner(n, f),
		Faults: faults,
		Delays: abc.UniformDelay{Min: abc.RatInt(1), Max: abc.NewRat(3, 2)},
		Seed:   7,
		Until:  abc.ClocksReached(20, faults),
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "execution: %d events, %d messages\n",
		len(res.Trace.Events), len(res.Trace.Msgs))
	fmt.Fprintf(out, "ABC(Ξ=%v) admissible: %v\n", model.Xi(), verdict.Admissible)
	if verdict.Admissible {
		min, max, _ := verdict.Assignment.MinMaxMessageDelay()
		fmt.Fprintf(out, "Theorem 7 certificate: delays assignable within (%v, %v)\n", min, max)
	}

	// Theorem 3: real-time precision within X = ⌈2Ξ⌉.
	x := model.PrecisionBound()
	if err := abc.CheckRealTimePrecision(res.Trace, x); err != nil {
		return fmt.Errorf("precision bound violated: %w", err)
	}
	fmt.Fprintf(out, "Theorem 3 verified: |Cp(t) − Cq(t)| <= %d at all times\n", x)

	// Theorem 2 on consistent cuts, and Theorem 4's bounded progress.
	if err := abc.CheckCutSynchrony(graph, x); err != nil {
		return fmt.Errorf("cut synchrony violated: %w", err)
	}
	if err := abc.CheckBoundedProgress(graph, model.BoundedProgressRho()); err != nil {
		return fmt.Errorf("bounded progress violated: %w", err)
	}
	fmt.Fprintf(out, "Theorems 2 and 4 verified (ϱ = %d)\n", model.BoundedProgressRho())
	return nil
}
