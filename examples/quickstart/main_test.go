package main

import (
	"strings"
	"testing"
)

// TestQuickstart smoke-tests the example end to end: the run must
// complete, verify every theorem it claims to verify, and keep its
// teaching output intact.
func TestQuickstart(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"execution: ",
		"ABC(Ξ=2) admissible: true",
		"Theorem 7 certificate: delays assignable within (",
		"Theorem 3 verified",
		"Theorems 2 and 4 verified",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
