// VLSI Systems-on-Chip clock generation (Section 5.3): DARTS-style
// fault-tolerant tick generation is Algorithm 1 running over a chip whose
// wire delays come from place-and-route. The example demonstrates the
// paper's re-use argument: migrating the design to a 3x faster process
// node preserves Ξ, admissibility, and the precision bound without any
// change to the algorithm — the property that let DARTS move from FPGA to
// ASIC unchanged.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	abc "repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	xi := abc.NewRat(2, 1)
	const n, f = 4, 1

	// A 4-module chip: heterogeneous wires from place-and-route.
	chip, err := abc.NewChip(n, abc.RatInt(1), abc.NewRat(3, 2))
	if err != nil {
		return err
	}
	chip.SetName(0, "tickgen-NW")
	chip.SetName(1, "tickgen-NE")
	chip.SetName(2, "tickgen-SW")
	chip.SetName(3, "tickgen-SE")
	// The diagonal wires are longer.
	if err := chip.SetWire(0, 3, abc.NewRat(5, 4), abc.NewRat(15, 8)); err != nil {
		return err
	}
	if err := chip.SetWire(3, 0, abc.NewRat(5, 4), abc.NewRat(15, 8)); err != nil {
		return err
	}

	report, err := abc.RunClockGeneration(chip, xi, f, 12, map[abc.ProcessID]abc.Fault{
		2: abc.Silent(), // one fab defect: a dead module
	}, 9)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "original node: admissible=%v precision-ok=%v max-tick=%d critical-ratio=%v\n",
		report.Admissible, report.PrecisionOK, report.MaxTick, report.CriticalRatio)
	if !report.Admissible || !report.PrecisionOK {
		return fmt.Errorf("clock generation failed on the original node")
	}

	// Technology migration: all wires 3x faster.
	faster, err := chip.Migrate(abc.NewRat(1, 3))
	if err != nil {
		return err
	}
	report2, err := abc.RunClockGeneration(faster, xi, f, 12, map[abc.ProcessID]abc.Fault{
		2: abc.Silent(),
	}, 9)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "migrated node: admissible=%v precision-ok=%v max-tick=%d critical-ratio=%v\n",
		report2.Admissible, report2.PrecisionOK, report2.MaxTick, report2.CriticalRatio)
	if !report2.Admissible || !report2.PrecisionOK {
		return fmt.Errorf("clock generation failed after migration")
	}
	if !report.CriticalRatio.Equal(report2.CriticalRatio) {
		return fmt.Errorf("migration changed the critical ratio — Ξ re-validation would be required")
	}
	fmt.Fprintln(out, "technology migration preserved Ξ: no algorithm change needed")
	return nil
}
