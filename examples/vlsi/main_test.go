package main

import (
	"strings"
	"testing"
)

// TestVLSIMigration smoke-tests the technology-migration example: both
// process nodes run admissibly within the precision bound and the
// critical ratio is preserved by uniform scaling.
func TestVLSIMigration(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"original node: admissible=true precision-ok=true",
		"migrated node: admissible=true precision-ok=true",
		"technology migration preserved Ξ: no algorithm change needed",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
