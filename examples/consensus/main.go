// Byzantine consensus over simulated lock-step rounds — the paper's
// headline consequence: because the ABC model implements lock-step rounds
// (Algorithm 2, Theorem 5), any synchronous Byzantine consensus algorithm
// runs unchanged on a purely asynchronous system that merely satisfies the
// bounded-cycle condition.
//
// Here: EIG consensus, n = 7, f = 2, one silent Byzantine process and one
// that equivocates round payloads (tells even-numbered recipients one
// value and odd-numbered recipients another).
package main

import (
	"fmt"
	"log"

	abc "repro"
	"repro/internal/consensus"
	"repro/internal/lockstep"
	"repro/internal/sim"
)

func main() {
	const n, f = 7, 2
	model := abc.MustModel(abc.NewRat(2, 1))
	inputs := []int{1, 0, 1, 0, 1, 0, 1}

	faults := map[abc.ProcessID]abc.Fault{
		6: abc.Silent(),
		5: abc.ByzantineFault(consensus.NewTwoFaced(model, n, f,
			consensus.SplitEIG(n, 5, 0, 1))),
	}

	res, err := abc.Simulate(abc.Config{
		N: n,
		Spawn: abc.LockStepSpawner(model, n, f, func(p sim.ProcessID) lockstep.App {
			return abc.NewEIG(n, f, inputs[p])
		}),
		Faults:    faults,
		Delays:    abc.UniformDelay{Min: abc.RatInt(1), Max: abc.NewRat(3, 2)},
		Seed:      11,
		Until:     abc.RoundsReached(abc.EIGRounds(f), faults),
		MaxEvents: 500000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Theorem 5: no correct process started a round without the round
	// messages of all correct peers.
	if err := abc.CheckLockStep(res.Procs, faults); err != nil {
		log.Fatalf("lock-step property violated: %v", err)
	}

	fmt.Println("process  input  decision")
	deciders := make([]abc.Decider, n)
	init := make(map[abc.ProcessID]int)
	for i, v := range inputs {
		init[abc.ProcessID(i)] = v
	}
	for id := 0; id < n; id++ {
		if _, bad := faults[abc.ProcessID(id)]; bad {
			fmt.Printf("   p%d      %d    (faulty)\n", id, inputs[id])
			continue
		}
		d := res.Procs[id].(*lockstep.Proc).App().(abc.Decider)
		deciders[id] = d
		fmt.Printf("   p%d      %d      %d\n", id, inputs[id], d.Decision())
	}

	spec := abc.ConsensusSpec{Initial: init, Faults: faults}
	if err := spec.Check(deciders); err != nil {
		log.Fatalf("consensus specification violated: %v", err)
	}
	fmt.Println("agreement, validity and termination verified")
}
