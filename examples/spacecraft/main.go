// Spacecraft formation (Sections 5.1/5.3 of the paper): clusters of
// spacecraft drift apart, so message delays grow without bound — no static
// Θ-Model or ParSync(Φ, Δ) bound can ever hold. The ABC model doesn't
// care: only the ratio of message counts in relevant cycles matters, and
// uniform growth preserves it.
//
// This example runs the FIFO channel construction of Fig. 10 under
// unboundedly growing delays, verifies the execution violates every static
// Θ yet is ABC-admissible, and that delivery stays in order.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	abc "repro"
	"repro/internal/fifo"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	xi := abc.RatInt(4)
	chain := abc.FIFOMinChainLen(xi) + 1 // one leg of margin

	// Delays grow 30% per time unit — the clusters are drifting apart —
	// with instantaneous spread 3/2 < Ξ.
	delays := abc.GrowingDelay{
		Base:   abc.RatInt(1),
		Rate:   abc.NewRat(3, 10),
		Spread: abc.NewRat(3, 2),
	}

	items := []any{"alpha", "beta", "gamma", "delta", "epsilon"}
	res, err := abc.Simulate(abc.Config{
		N: 3,
		Spawn: func(p sim.ProcessID) sim.Process {
			switch p {
			case 0:
				return &abc.FIFOSender{Receiver: 2, Helper: 1, Items: items, ChainLen: chain}
			case 1:
				return abc.FIFOHelper{}
			default:
				return &abc.FIFOReceiver{}
			}
		},
		Delays:    delays,
		Seed:      5,
		MaxEvents: 50000,
	})
	if err != nil {
		return err
	}

	// Delays really did grow without bound.
	var first, last abc.Rat
	for _, m := range res.Trace.Msgs {
		if m.IsWakeup() {
			continue
		}
		d := m.RecvTime.Sub(m.SendTime)
		if first.Sign() == 0 {
			first = d
		}
		last = d
	}
	fmt.Fprintf(out, "first delay %.2f, final delay %.2f — unbounded growth\n",
		first.Float64(), last.Float64())

	// Static Θ bounds erode as the formation drifts: already in this
	// finite prefix the delay ratio exceeds 100, and it grows forever.
	th := abc.CheckThetaStatic(res.Trace, abc.RatInt(100))
	fmt.Fprintf(out, "static Θ=100 admissible: %v (%s)\n", th.Admissible, th.Reason)

	// ...but the execution is ABC-admissible for Ξ = 4.
	g := abc.BuildGraph(res.Trace)
	v, err := abc.Check(g, xi)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ABC(Ξ=%v) admissible: %v\n", xi, v.Admissible)
	if !v.Admissible {
		return fmt.Errorf("unexpected violation: %v", v.Witness)
	}

	// And FIFO order held without sequence numbers.
	recv := res.Procs[2].(*fifo.Receiver)
	fmt.Fprint(out, "received: ")
	for _, it := range recv.Got {
		fmt.Fprintf(out, "%v ", it.V)
	}
	fmt.Fprintln(out)
	if !recv.InOrder() || len(recv.Got) != len(items) {
		return fmt.Errorf("FIFO order violated")
	}
	fmt.Fprintln(out, "in-order delivery verified under unbounded delay growth")
	return nil
}
