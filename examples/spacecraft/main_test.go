package main

import (
	"strings"
	"testing"
)

// TestSpacecraft smoke-tests the drifting-formation example: unbounded
// delay growth breaks every static Θ, yet the execution stays
// ABC-admissible and delivery stays in order.
func TestSpacecraft(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"unbounded growth",
		"static Θ=100 admissible: false",
		"ABC(Ξ=4) admissible: true",
		"received: alpha beta gamma delta epsilon",
		"in-order delivery verified under unbounded delay growth",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
