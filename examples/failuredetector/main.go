// Perfect failure detection from the ABC synchrony condition — the Fig. 3
// mechanism. The monitor queries a target and ping-pongs with a partner;
// if the 2Ξ-message chain completes before the target's reply, a later
// reply would close a relevant cycle with ratio >= Ξ, which the model
// forbids — so the target must have crashed.
//
// The example runs the detector against (a) a crashed target, which is
// suspected, and (b) a slow-but-correct target, which is not — and then
// shows what goes wrong outside the model: with an inadmissible schedule
// the detector wrongly suspects, and the checker pinpoints the violating
// cycle.
package main

import (
	"fmt"
	"log"

	abc "repro"
	"repro/internal/detector"
	"repro/internal/sim"
)

func runDetector(faults map[abc.ProcessID]abc.Fault, delays abc.DelayPolicy, seed int64) (*detector.Monitor, *abc.Trace) {
	xi := abc.RatInt(2)
	res, err := abc.Simulate(abc.Config{
		N: 3,
		Spawn: func(p sim.ProcessID) sim.Process {
			if p == 0 {
				return &abc.FailureMonitor{
					Partner:  1,
					Targets:  []abc.ProcessID{2},
					ChainLen: abc.TimeoutChainLen(xi),
				}
			}
			return abc.Responder{}
		},
		Faults:    faults,
		Delays:    delays,
		Seed:      seed,
		MaxEvents: 10000,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.Procs[0].(*detector.Monitor), res.Trace
}

func main() {
	xi := abc.RatInt(2)
	normal := abc.UniformDelay{Min: abc.RatInt(1), Max: abc.NewRat(3, 2)}

	// (a) Crashed target: completeness.
	m, _ := runDetector(map[abc.ProcessID]abc.Fault{2: abc.Silent()}, normal, 1)
	fmt.Printf("crashed target suspected: %v\n", m.Suspects(2))

	// (b) Correct target under admissible delays: accuracy.
	m, tr := runDetector(nil, normal, 2)
	g := abc.BuildGraph(tr)
	v, err := abc.Check(g, xi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correct target suspected: %v (execution admissible: %v)\n",
		m.Suspects(2), v.Admissible)
	if m.Suspects(2) {
		log.Fatal("accuracy violated in an admissible execution")
	}

	// (c) Outside the model: the reply crawls while the chain races. The
	// detector wrongly suspects — and the checker proves the schedule
	// violated Ξ, exhibiting the Fig. 3 cycle.
	slowReply := abc.OverrideDelay{
		Base: abc.ConstantDelay{D: abc.RatInt(1)},
		Match: func(msg abc.Message) bool {
			_, isReply := msg.Payload.(detector.Reply)
			return isReply
		},
		Override: abc.ConstantDelay{D: abc.RatInt(50)},
	}
	m, tr = runDetector(nil, slowReply, 3)
	g = abc.BuildGraph(tr)
	v, err = abc.Check(g, xi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noutside the model: suspected=%v, admissible=%v\n", m.Suspects(2), v.Admissible)
	if !v.Admissible {
		fmt.Printf("violating relevant cycle (|Z−|/|Z+| = %v):\n  %v\n",
			v.WitnessClass.Ratio(), *v.Witness)
	}
	fmt.Println("\nthe timeout is exactly as strong as the synchrony condition — Fig. 3 reproduced")
}
