package abc_test

import (
	"fmt"

	abc "repro"
)

// ExampleCheck demonstrates admissibility checking on a hand-built
// execution: the Fig. 3 scenario, where a slow reply closes a relevant
// cycle with ratio 4/2 = 2, violating Ξ = 2 but not Ξ = 3.
func ExampleCheck() {
	b := abc.NewTraceBuilder(3)
	b.WakeAll(abc.RatInt(0))
	b.MsgAt(0, 0, 1, 1, "ping1")
	b.MsgAt(0, 0, 2, 1, "query")
	b.MsgAt(1, 1, 0, 2, "pong1")
	b.MsgAt(0, 1, 1, 3, "ping2")
	b.MsgAt(1, 2, 0, 4, "pong2")
	b.MsgAt(2, 1, 0, 6, "late reply")
	trace, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	g := abc.BuildGraph(trace)

	for _, xi := range []abc.Rat{abc.RatInt(2), abc.RatInt(3)} {
		v, err := abc.Check(g, xi)
		if err != nil {
			fmt.Println(err)
			return
		}
		if v.Admissible {
			fmt.Printf("Ξ=%v: admissible\n", xi)
		} else {
			fmt.Printf("Ξ=%v: violated by a relevant cycle with ratio %v\n",
				xi, v.WitnessClass.Ratio())
		}
	}
	// Output:
	// Ξ=2: violated by a relevant cycle with ratio 2
	// Ξ=3: admissible
}

// ExampleMaxRelevantRatio computes the exact critical ratio of an
// execution — the threshold above which every Ξ is admissible.
func ExampleMaxRelevantRatio() {
	// A 1-message chain spanning a 2-message chain: ratio 2/1.
	b := abc.NewTraceBuilder(3)
	b.WakeAll(abc.RatInt(0))
	b.MsgAt(0, 0, 1, 1, "fast hop 1")  // q -> a
	b.MsgAt(1, 1, 2, 2, "fast hop 2")  // a -> p
	b.MsgAt(0, 0, 2, 5, "slow direct") // q -> p, spans the chain
	trace, _ := b.Build()

	ratio, found, err := abc.MaxRelevantRatio(abc.BuildGraph(trace))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(found, ratio)
	// Output:
	// true 2
}

// ExampleModel_RunVerified runs Byzantine clock synchronization and
// verifies both the model admissibility and the paper's precision bound.
func ExampleModel_RunVerified() {
	model := abc.MustModel(abc.RatInt(2))
	res, _, verdict, err := model.RunVerified(abc.Config{
		N:      4,
		Spawn:  abc.ClockSyncSpawner(4, 1),
		Delays: abc.UniformDelay{Min: abc.RatInt(1), Max: abc.NewRat(3, 2)},
		Seed:   1,
		Until:  abc.ClocksReached(10, nil),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("admissible:", verdict.Admissible)
	fmt.Println("precision within ⌈2Ξ⌉:",
		abc.CheckRealTimePrecision(res.Trace, model.PrecisionBound()) == nil)
	// Output:
	// admissible: true
	// precision within ⌈2Ξ⌉: true
}

// ExampleTimeoutChainLen shows the Fig. 3 timeout parameter for several Ξ.
func ExampleTimeoutChainLen() {
	for _, s := range []string{"3/2", "2", "5/2", "4"} {
		xi := abc.MustRat(s)
		fmt.Printf("Ξ=%v: chain of %d messages\n", xi, abc.TimeoutChainLen(xi))
	}
	// Output:
	// Ξ=3/2: chain of 3 messages
	// Ξ=2: chain of 4 messages
	// Ξ=5/2: chain of 5 messages
	// Ξ=4: chain of 8 messages
}
