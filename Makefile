GO ?= go

# Headline benchmarks guarded per-PR: the exact-arithmetic substrate and
# its heaviest consumers. Keep in sync with .github/workflows/ci.yml.
# BenchmarkSimulator's N=100k sparse cases are excluded from the smoke
# (seconds per iteration); bench-json records the full grid.
BENCH_SMOKE = BenchmarkChecker|BenchmarkMaxRelevantRatio|BenchmarkIncrementalChecker
BENCH_SIM_SMOKE = BenchmarkSimulator/.*/^n=(8|100|10000)$$

# Benchmarks recorded into $(BENCH_OUT) by bench-json: the smoke set, the
# simulator topology grid up to N=100k, the serial-vs-sharded engine grid
# (shards 1/2/4/8 at N=100k and N=10^6), and graph construction. The
# N=10^6 cases are seconds per iteration, so bench-json runs them in a
# second, shorter invocation and concatenates both streams into one
# benchjson document (whose host block records cores and GOMAXPROCS —
# sharded numbers are meaningless without them).
BENCH_JSON_MAIN = $(BENCH_SMOKE)|BenchmarkGraphBuild|BenchmarkSimulator/.*/^n=(8|100|10000|100000)$$|BenchmarkSimulatorSharded/topo=ring/^n=100000$$
BENCH_JSON_SCALE = BenchmarkSimulator(Sharded)?/topo=ring/^n=1000000$$

# Per-PR benchmark record; earlier PRs' files stay in the repository so
# the trajectory can be diffed.
BENCH_OUT ?= BENCH_pr10.json

.PHONY: all build vet test race bench bench-smoke bench-json fuzz-smoke fleet-ci fleet-bench incremental-ci workloads-ci topology-ci protocols-ci faults-ci scale-ci parallel-ci cover ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the full paper evaluation (cmd/abcbench). CPUPROFILE= and
# MEMPROFILE= pass pprof output paths through, so engine regressions can
# be chased with real experiment traffic: `make bench CPUPROFILE=cpu.out`.
#
# The sharded engine labels its goroutines with runtime/pprof labels, so
# a CPU profile splits cleanly by engine mode, shard, and phase:
#
#	make bench CPUPROFILE=cpu.out
#	go tool pprof -tags cpu.out                    # label inventory
#	go tool pprof -tagfocus=abc_engine=sharded cpu.out   # parallel mode only
#	go tool pprof -tagfocus=abc_phase=merge cpu.out      # the serial merge
#	go tool pprof -tagfocus=abc_shard=0 cpu.out          # one shard's drain
#
# abc_phase distinguishes drain (parallel window execution), barrier (the
# coordinator waiting on shard workers), and merge (the serial replay that
# keeps traces byte-identical); a merge-heavy profile means lookahead
# windows are too small for the topology, a barrier-heavy one means the
# shard ranges are load-imbalanced.
bench:
	$(GO) run ./cmd/abcbench $(if $(CPUPROFILE),-cpuprofile $(CPUPROFILE)) $(if $(MEMPROFILE),-memprofile $(MEMPROFILE))

# bench-smoke runs the three headline benchmarks briefly — enough to catch
# order-of-magnitude regressions in the arithmetic layer, not to replace a
# real benchstat comparison.
bench-smoke:
	$(GO) test -run=NONE -bench='$(BENCH_SMOKE)' -benchmem -benchtime=10x .
	$(GO) test -run=NONE -bench='$(BENCH_SIM_SMOKE)' -benchmem -benchtime=10x .

# bench-json records the perf trajectory: the headline benchmarks are
# rendered to $(BENCH_OUT) (via cmd/benchjson) so per-PR numbers live
# in the repository and can be diffed, not just quoted in CHANGES.md.
bench-json:
	( $(GO) test -run=NONE -bench='$(BENCH_JSON_MAIN)' -benchmem -benchtime=20x . && \
	  $(GO) test -run=NONE -bench='$(BENCH_JSON_SCALE)' -benchmem -benchtime=3x -timeout 30m . ) \
	  | $(GO) run ./cmd/benchjson > $(BENCH_OUT)
	@echo wrote $(BENCH_OUT)

# fuzz-smoke gives each differential fuzz target a short budget; the seed
# corpus already pins the int64 overflow boundary, so even 10s runs cross
# the promotion/demotion paths.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzArith -fuzztime=10s ./internal/rat
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=10s ./internal/rat
	$(GO) test -run=NONE -fuzz=FuzzParseFaults -fuzztime=10s ./internal/workload

# fleet-ci mirrors the CI "fleet" job: the golden-trace determinism and
# engine-hermeticity suites under the race detector with shuffled test
# order, the fleet-vs-serial evaluation equivalence, and coverage for the
# runner and sim packages.
fleet-ci:
	$(GO) test -race -shuffle=on -run 'Fleet|Engine|Map|Grid|Stream|Run' ./internal/runner ./internal/sim
	$(GO) test -race -run 'TestRunAllWidthIndependent' ./internal/experiments
	$(GO) test -cover -coverprofile=cover.out ./internal/runner ./internal/sim
	$(GO) tool cover -func=cover.out

# fleet-bench records the serial vs 8-worker wall-clock of the full E1–E16
# evaluation through the runner (needs >= 8 hardware threads to show the
# speedup; see DESIGN.md decision 5).
fleet-bench:
	$(GO) test -run=NONE -bench='BenchmarkFleetExperiments' -benchtime=3x .

# incremental-ci mirrors the CI "incremental" job: the ≥10k-schedule
# incremental-vs-batch differential grid and the watch-mode suites under
# the race detector, plus a bench smoke of the append-batch workload.
incremental-ci:
	$(GO) test -race -run 'Incremental|Watch|Monitor|Builder|IsDAG|BellmanFordFrom|Plan' ./internal/check ./internal/causality ./internal/sim ./internal/runner ./internal/graphutil
	$(GO) test -run=NONE -bench='BenchmarkIncrementalChecker' -benchmem -benchtime=10x .

# workloads-ci mirrors the CI "workloads" job: the registry-wide
# conformance suite (parameter hygiene, fleet==serial determinism,
# verdict agreement with the batch checker, watch invisibility) under the
# race detector with shuffled test order, the registry mechanics and CLI
# suites, the E18 cross-workload matrix, and the example smoke tests.
workloads-ci:
	$(GO) test -race -shuffle=on ./internal/workload/... ./cmd/abcsim
	$(GO) test -race -run 'TestRunAllWidthIndependent' ./internal/experiments
	$(GO) test -run=NONE -bench='BenchmarkE18_CrossWorkload' -benchtime=1x .
	$(GO) test ./examples/...

# topology-ci mirrors the CI "topology" job: the sparse-topology suites —
# generator structure, ParseTopology, broadcast/self-delivery semantics,
# scripted-send validation, heap-vs-calendar queue differential, key
# collisions, and the fleet==serial sparse conformance cases — under the
# race detector with shuffled order, plus a bench smoke at N=10k ring so
# fan-out regressions fail fast.
topology-ci:
	$(GO) test -race -shuffle=on -run 'Topo|Sparse|Queue|Broadcast|Island|Script|PointKey|Ring|Torus|Regular|ScaleFree|Links' ./internal/sim ./internal/runner ./internal/workload/...
	$(GO) test -run=NONE -bench='BenchmarkSimulator/topo=ring/^n=10000$$' -benchmem -benchtime=10x .

# protocols-ci mirrors the CI "protocols" job: the consensus and Ω
# domain suites and the protocol/fault-axis conformance cases (fault
# grids, failing-verdict CheckErr determinism) under the race detector
# with shuffled order, plus two CLI smokes driving the headline grids end
# to end — a crash-at-step sweep and a Byzantine-budget grid.
protocols-ci:
	$(GO) test -race -shuffle=on ./internal/consensus ./internal/detector
	$(GO) test -race -shuffle=on -run 'Protocol|Conformance|Fault' ./internal/workload/...
	$(GO) run ./cmd/abcsim -workload consensus -param algo=floodset -sweep faults=none,crash/1@0,crash/1@2 -runs 2
	$(GO) run ./cmd/abcsim -workload clocksync -sweep faults=byz/1@20,byz/1@60 -runs 2

# faults-ci mirrors the CI "faults" job: the crash-recovery and
# lossy-network fault-plane suites (engine down/up + net-fault
# semantics, grammar resolution, Ω re-election, registry fault cases,
# retention equivalence under message faults) under the race detector
# with shuffled order, plus two CLI smokes driving a recovery sweep and
# a partition sweep end to end.
faults-ci:
	$(GO) test -race -shuffle=on -run 'Fault|Recover|Partition|NetFault|Omega|WindowWatch' ./internal/sim ./internal/detector ./internal/workload/...
	$(GO) run ./cmd/abcsim -workload broadcast -sweep faults=none,recover/1@2..4,partition/halves@2..5 -runs 2
	$(GO) run ./cmd/abcsim -workload omega -param faults=recover/p0@4..12 -runs 2

# scale-ci mirrors the CI "scale" job: the trace-retention and
# sink-equivalence suites (engine-level retention equivalence, the
# registry-wide full/window/none digest agreement, window-watch vs batch
# first-violation parity, and the retention policy layer) under the race
# detector with shuffled order, then a single N=10^6 RetainNone ring
# iteration as a wall-clock smoke — the time budget catches throughput
# collapses at the PR 8 scale target, benchstat catches drift.
scale-ci:
	$(GO) test -race -shuffle=on -run 'Sink|Retention|WindowWatch|EventsOf' ./internal/sim ./internal/workload/...
	$(GO) test -run=NONE -bench='$(BENCH_JSON_SCALE)' -benchmem -benchtime=1x -timeout 15m .

# parallel-ci mirrors the CI "parallel" job: the sharded-engine suites —
# the shard-count determinism grid (trace hashes at shards {1,2,4,8} ==
# serial, including retention modes, net faults, truncation, and the
# lookahead fallback gates), the worker/shard split regression, the
# registry-wide shard-invisibility conformance cases, and the E18 matrix
# at shards=2 — under the race detector with shuffled order, plus a CLI
# smoke driving a sharded NDJSON sweep end to end.
parallel-ci:
	$(GO) test -race -shuffle=on -run 'Shard|MinDelay' ./internal/sim ./internal/runner ./internal/workload/... ./cmd/abcsim
	$(GO) test -race -run 'TestCrossWorkloadSharded' ./internal/experiments
	$(GO) run ./cmd/abcsim -workload broadcast -param n=100 -runs 4 -shards 4 -json > /dev/null

cover:
	$(GO) test -cover ./internal/runner ./internal/sim

ci: vet race bench-smoke fleet-ci incremental-ci workloads-ci topology-ci protocols-ci faults-ci scale-ci parallel-ci
