GO ?= go

# Headline benchmarks guarded per-PR: the exact-arithmetic substrate and
# its two heaviest consumers. Keep in sync with .github/workflows/ci.yml.
BENCH_SMOKE = BenchmarkChecker|BenchmarkMaxRelevantRatio|BenchmarkSimulator

.PHONY: all build vet test race bench-smoke fuzz-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs the three headline benchmarks briefly — enough to catch
# order-of-magnitude regressions in the arithmetic layer, not to replace a
# real benchstat comparison.
bench-smoke:
	$(GO) test -run=NONE -bench='$(BENCH_SMOKE)' -benchmem -benchtime=10x .

# fuzz-smoke gives each differential fuzz target a short budget; the seed
# corpus already pins the int64 overflow boundary, so even 10s runs cross
# the promotion/demotion paths.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzArith -fuzztime=10s ./internal/rat
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=10s ./internal/rat

ci: vet race bench-smoke
