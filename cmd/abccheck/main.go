// Command abccheck verifies a recorded trace (JSON, as written by
// cmd/abcsim) against the synchrony conditions of the models implemented
// in this repository: the ABC condition for a given Ξ, the static and
// dynamic Θ-Model conditions, and ParSync(Φ, Δ). It exits 1 when the
// requested ABC check fails and 2 on usage or input errors.
//
// Usage:
//
//	abccheck -xi 2 [-theta 3] [-phi 10 -delta 10] trace.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/parsync"
	"repro/internal/rat"
	"repro/internal/sim"
	"repro/internal/theta"
	"repro/internal/variants"
)

// errInadmissible distinguishes a sound check with a negative verdict
// (exit 1) from infrastructure failures (exit 2).
var errInadmissible = errors.New("trace is not ABC-admissible")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// Usage already printed by the FlagSet; -h is not a failure.
	case errors.Is(err, errInadmissible):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "abccheck:", err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("abccheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		xiStr    = fs.String("xi", "2", "ABC parameter Ξ (rational)")
		thetaStr = fs.String("theta", "", "also check the Θ-Model for this Θ")
		phi      = fs.Int("phi", 0, "also check ParSync with this Φ (needs -delta)")
		delta    = fs.Int("delta", 0, "ParSync Δ")
		gst      = fs.Bool("gst", false, "also locate the ◇ABC stabilization index")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: abccheck [flags] trace.json")
	}

	file, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer file.Close()
	tr, err := sim.ReadJSON(file)
	if err != nil {
		return err
	}
	xi, err := rat.Parse(*xiStr)
	if err != nil {
		return err
	}

	g := causality.Build(tr, causality.Options{})
	fmt.Fprintf(stdout, "trace: %d processes, %d events, %d messages, %d graph nodes\n",
		tr.N, len(tr.Events), len(tr.Msgs), g.NumNodes())

	v, err := check.ABC(g, xi)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "ABC(Ξ=%v): admissible=%v\n", xi, v.Admissible)
	if !v.Admissible {
		fmt.Fprintf(stdout, "  violating relevant cycle (|Z−|/|Z+| = %v):\n  %v\n",
			v.WitnessClass.Ratio(), *v.Witness)
	} else if ratio, found, err := check.MaxRelevantRatio(g); err == nil && found {
		fmt.Fprintf(stdout, "  critical ratio: %v\n", ratio)
	}

	if *thetaStr != "" {
		th, err := rat.Parse(*thetaStr)
		if err != nil {
			return err
		}
		st := theta.CheckStatic(tr, th)
		dy := theta.CheckDynamic(tr, th)
		fmt.Fprintf(stdout, "Θ-Model(Θ=%v): static=%v dynamic=%v", th, st.Admissible, dy.Admissible)
		if !st.Admissible {
			fmt.Fprintf(stdout, " (static: %s)", st.Reason)
		}
		fmt.Fprintln(stdout)
	}
	if *phi > 0 {
		rep := parsync.Check(tr, *phi, *delta)
		fmt.Fprintf(stdout, "ParSync(Φ=%d, Δ=%d): admissible=%v", *phi, *delta, rep.Admissible)
		if !rep.Admissible {
			fmt.Fprintf(stdout, " (%s)", rep.Reason)
		}
		fmt.Fprintln(stdout)
	}
	if *gst {
		idx, ok, err := variants.FindGST(tr, xi)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "◇ABC: stabilization at event index %d (ok=%v)\n", idx, ok)
	}

	if !v.Admissible {
		return errInadmissible
	}
	return nil
}
