// Command abccheck verifies a recorded trace (JSON, as written by
// cmd/abcsim) against the synchrony conditions of the models implemented
// in this repository: the ABC condition for a given Ξ, the static and
// dynamic Θ-Model conditions, and ParSync(Φ, Δ). It exits non-zero when
// the requested ABC check fails.
//
// Usage:
//
//	abccheck -xi 2 [-theta 3] [-phi 10 -delta 10] trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/parsync"
	"repro/internal/rat"
	"repro/internal/sim"
	"repro/internal/theta"
	"repro/internal/variants"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abccheck:", err)
		os.Exit(2)
	}
}

func run() error {
	var (
		xiStr    = flag.String("xi", "2", "ABC parameter Ξ (rational)")
		thetaStr = flag.String("theta", "", "also check the Θ-Model for this Θ")
		phi      = flag.Int("phi", 0, "also check ParSync with this Φ (needs -delta)")
		delta    = flag.Int("delta", 0, "ParSync Δ")
		gst      = flag.Bool("gst", false, "also locate the ◇ABC stabilization index")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: abccheck [flags] trace.json")
	}

	file, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer file.Close()
	tr, err := sim.ReadJSON(file)
	if err != nil {
		return err
	}
	xi, err := rat.Parse(*xiStr)
	if err != nil {
		return err
	}

	g := causality.Build(tr, causality.Options{})
	fmt.Printf("trace: %d processes, %d events, %d messages, %d graph nodes\n",
		tr.N, len(tr.Events), len(tr.Msgs), g.NumNodes())

	v, err := check.ABC(g, xi)
	if err != nil {
		return err
	}
	fmt.Printf("ABC(Ξ=%v): admissible=%v\n", xi, v.Admissible)
	if !v.Admissible {
		fmt.Printf("  violating relevant cycle (|Z−|/|Z+| = %v):\n  %v\n",
			v.WitnessClass.Ratio(), *v.Witness)
	} else if ratio, found, err := check.MaxRelevantRatio(g); err == nil && found {
		fmt.Printf("  critical ratio: %v\n", ratio)
	}

	if *thetaStr != "" {
		th, err := rat.Parse(*thetaStr)
		if err != nil {
			return err
		}
		st := theta.CheckStatic(tr, th)
		dy := theta.CheckDynamic(tr, th)
		fmt.Printf("Θ-Model(Θ=%v): static=%v dynamic=%v", th, st.Admissible, dy.Admissible)
		if !st.Admissible {
			fmt.Printf(" (static: %s)", st.Reason)
		}
		fmt.Println()
	}
	if *phi > 0 {
		rep := parsync.Check(tr, *phi, *delta)
		fmt.Printf("ParSync(Φ=%d, Δ=%d): admissible=%v", *phi, *delta, rep.Admissible)
		if !rep.Admissible {
			fmt.Printf(" (%s)", rep.Reason)
		}
		fmt.Println()
	}
	if *gst {
		idx, ok, err := variants.FindGST(tr, xi)
		if err != nil {
			return err
		}
		fmt.Printf("◇ABC: stabilization at event index %d (ok=%v)\n", idx, ok)
	}

	if !v.Admissible {
		os.Exit(1)
	}
	return nil
}
