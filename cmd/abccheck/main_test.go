package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rat"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// writeTrace serializes a trace to a temp file and returns its path.
func writeTrace(t *testing.T, tr *sim.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func admissibleTrace(t *testing.T) *sim.Trace {
	t.Helper()
	res, err := sim.Run(sim.Config{
		N: 3,
		Spawn: func(sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < 3 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays: sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:   1, MaxEvents: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func TestRunAdmissibleTrace(t *testing.T) {
	path := writeTrace(t, admissibleTrace(t))
	var out, errOut strings.Builder
	if err := run([]string{"-xi", "2", path}, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"trace: 3 processes", "ABC(Ξ=2): admissible=true"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunInadmissibleTrace feeds Fig. 3's violating execution (ratio
// 4/2 = Ξ = 2) and expects the sentinel that maps to exit status 1, plus
// the witness cycle in the report.
func TestRunInadmissibleTrace(t *testing.T) {
	path := writeTrace(t, scenario.BuildFig3().Trace)
	var out, errOut strings.Builder
	err := run([]string{"-xi", "2", path}, &out, &errOut)
	if !errors.Is(err, errInadmissible) {
		t.Fatalf("run error = %v, want errInadmissible", err)
	}
	got := out.String()
	for _, want := range []string{"admissible=false", "violating relevant cycle"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunExtraChecks(t *testing.T) {
	path := writeTrace(t, admissibleTrace(t))
	var out, errOut strings.Builder
	err := run([]string{"-xi", "2", "-theta", "3", "-phi", "10", "-delta", "10", "-gst", path}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"Θ-Model(Θ=3):", "ParSync(Φ=10, Δ=10):", "◇ABC: stabilization"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{}, &out, &errOut); err == nil || errors.Is(err, errInadmissible) {
		t.Errorf("missing file arg: err = %v", err)
	}
	if err := run([]string{"/no/such/file.json"}, &out, &errOut); err == nil {
		t.Error("nonexistent file accepted")
	}
}
