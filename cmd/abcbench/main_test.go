package main

import (
	"strings"
	"testing"
)

// TestRunOnlyE1 smoke-tests the evaluation driver end to end on the fleet
// runner: the suite must reproduce (exit nil) and the -only filter must
// narrow the printed tables to the requested experiment.
func TestRunOnlyE1(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full evaluation suite")
	}
	var out, errOut strings.Builder
	if err := run([]string{"-only", "E1", "-workers", "2"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "=== E1: Fig. 1") {
		t.Errorf("output missing E1 header:\n%s", got)
	}
	if strings.Contains(got, "=== E2") {
		t.Errorf("-only E1 printed other experiments:\n%s", got)
	}
	if !strings.Contains(got, "[ok  ]") {
		t.Errorf("output has no passing rows:\n%s", got)
	}
	if strings.Contains(got, "FAIL") {
		t.Errorf("output has failing rows:\n%s", got)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Fatal("bad flag accepted")
	}
}
