// Command abcbench regenerates the paper's evaluation: it runs every
// experiment E1–E18 (the figure/theorem suite plus the supplementary VLSI
// and related-models experiments) and prints a claim-vs-measured table per
// figure/theorem, exiting non-zero if any claim fails to reproduce.
// EXPERIMENTS.md is the recorded output of this command.
//
// The evaluation executes on the fleet runner (internal/runner): with
// -workers W the experiments run concurrently and each experiment's
// internal simulation batches fan out over W workers. Results are
// bit-identical for every width — -workers only changes wall-clock time.
// -shards additionally runs each simulation on the conservative sharded
// engine (also result-invisible); it defaults to off so recorded numbers
// stay comparable with earlier PRs unless explicitly requested.
//
// -cpuprofile and -memprofile write pprof profiles of the whole suite,
// for chasing engine-level regressions with real experiment traffic
// rather than microbenchmarks (`make bench CPUPROFILE=cpu.out`).
//
// Usage:
//
//	abcbench [-only E7] [-workers 8] [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/experiments"
	"repro/internal/runner"
)

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// Usage already printed by the FlagSet; -h is not a failure.
	default:
		fmt.Fprintln(os.Stderr, "abcbench:", err)
		os.Exit(1)
	}
}

// outcome pairs one experiment's result with its error so a failing
// experiment does not abort the rest of the suite.
type outcome struct {
	res experiments.Result
	err error
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("abcbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "print only the experiment with this ID (e.g. E7); the full suite still runs")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0),
		"fleet width: experiments and their internal simulation batches run on this many workers (results are identical for any width)")
	shards := fs.Int("shards", 0,
		"engine shards per simulation inside experiment fleets: 0 = serial engines (the default, keeping numbers comparable across PRs), -1 = fill idle cores, N = fixed (results are identical for any value)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the suite to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile (after the suite) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "abcbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush the final allocations into the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "abcbench: memprofile:", err)
			}
		}()
	}

	experiments.SetWorkers(*workers)
	defer experiments.SetWorkers(0)
	experiments.SetShards(*shards)
	defer experiments.SetShards(0)

	all := experiments.Everything()
	outcomes, err := runner.Map(context.Background(), len(all), *workers,
		func(i int) (outcome, error) {
			res, err := all[i]()
			return outcome{res: res, err: err}, nil
		})
	if err != nil {
		return err
	}

	failed := 0
	for _, o := range outcomes {
		if o.err != nil {
			fmt.Fprintf(stderr, "%s: error: %v\n", o.res.ID, o.err)
			failed++
			continue
		}
		if *only != "" && o.res.ID != *only {
			continue
		}
		fmt.Fprintf(stdout, "=== %s: %s\n", o.res.ID, o.res.Title)
		for _, r := range o.res.Rows {
			status := "ok"
			if !r.OK {
				status = "FAIL"
				failed++
			}
			fmt.Fprintf(stdout, "  [%-4s] %-28s paper: %-55s measured: %s\n", status, r.Name, r.Paper, r.Measured)
		}
		fmt.Fprintln(stdout)
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment rows failed", failed)
	}
	return nil
}
