// Command abcbench regenerates the paper's evaluation: it runs every
// experiment E1–E14 (plus the supplementary VLSI experiment) and prints a
// claim-vs-measured table per figure/theorem, exiting non-zero if any
// claim fails to reproduce. EXPERIMENTS.md is the recorded output of this
// command.
//
// Usage:
//
//	abcbench [-only E7]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E7)")
	flag.Parse()

	all := experiments.All()
	all = append(all, experiments.RunVLSI, experiments.RunRelated)

	failed := 0
	for _, exp := range all {
		res, err := exp()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", res.ID, err)
			failed++
			continue
		}
		if *only != "" && res.ID != *only {
			continue
		}
		fmt.Printf("=== %s: %s\n", res.ID, res.Title)
		for _, r := range res.Rows {
			status := "ok"
			if !r.OK {
				status = "FAIL"
				failed++
			}
			fmt.Printf("  [%-4s] %-28s paper: %-55s measured: %s\n", status, r.Name, r.Paper, r.Measured)
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment rows failed\n", failed)
		os.Exit(1)
	}
}
