package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRunSingleBroadcast(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-workload", "broadcast", "-n", "3", "-target", "3", "-seed", "1"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"workload=broadcast n=3 seed=1:",
		"ABC(Ξ=2) admissible: true",
		"critical ratio:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunTraceExportRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out, errOut strings.Builder
	args := []string{"-workload", "broadcast", "-n", "3", "-target", "3", "-seed", "1", "-trace", path}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "trace written to "+path) {
		t.Errorf("missing export confirmation:\n%s", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := sim.ReadJSON(f)
	if err != nil {
		t.Fatalf("exported trace does not round-trip: %v", err)
	}
	if tr.N != 3 || len(tr.Events) == 0 {
		t.Errorf("exported trace malformed: N=%d events=%d", tr.N, len(tr.Events))
	}
}

// TestRunFleetSweep smoke-tests -runs batch mode and pins the CLI-level
// determinism contract: identical output at every worker count.
func TestRunFleetSweep(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, workers := range []string{"1", "2", "8"} {
		var out, errOut strings.Builder
		args := []string{"-workload", "broadcast", "-n", "3", "-target", "3",
			"-seed", "1", "-runs", "5", "-workers", workers}
		if err := run(args, &out, &errOut); err != nil {
			t.Fatalf("workers=%s: %v (stderr: %s)", workers, err, errOut.String())
		}
		got := out.String()
		for _, want := range []string{
			"seed=1:", "seed=5:",
			"fleet: 5 runs on " + workers + " workers: 5 admissible",
		} {
			if !strings.Contains(got, want) {
				t.Errorf("workers=%s output missing %q:\n%s", workers, want, got)
			}
		}
		// The per-seed body must not depend on the worker count; mask the
		// footer's worker number before comparing.
		outputs = append(outputs, strings.ReplaceAll(got, " on "+workers+" workers", ""))
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Errorf("sweep output differs across worker counts:\n%q\n%q\n%q",
			outputs[0], outputs[1], outputs[2])
	}
}

// TestRunWatch drives -watch through both outcomes: a wide-delay run that
// stops at its first violating event (named in the report) and a
// tight-delay run that stays admissible throughout.
func TestRunWatch(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-workload", "broadcast", "-n", "3", "-target", "5",
		"-xi", "3/2", "-max", "3", "-seed", "0", "-watch"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"ABC(Ξ=3/2) admissible: false",
		"admissibility first fails at event ",
		"run stopped there",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("watch output missing %q:\n%s", want, got)
		}
	}

	out.Reset()
	args = []string{"-workload", "broadcast", "-n", "3", "-target", "3",
		"-xi", "2", "-max", "17/16", "-seed", "1", "-watch"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if got := out.String(); !strings.Contains(got, "admissible: true") ||
		strings.Contains(got, "first fails") {
		t.Errorf("admissible watch output wrong:\n%s", got)
	}

	// Sweep mode: per-seed lines carry the violation index.
	out.Reset()
	args = []string{"-workload", "broadcast", "-n", "3", "-target", "5",
		"-xi", "3/2", "-max", "3", "-seed", "0", "-runs", "4", "-workers", "2", "-watch"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if got := out.String(); !strings.Contains(got, "first-violation=") {
		t.Errorf("sweep watch output missing first-violation:\n%s", got)
	}
}

func TestRunRejectsBadUsage(t *testing.T) {
	cases := [][]string{
		{"-workload", "no-such-workload"},
		{"-runs", "0"},
		{"-runs", "2", "-trace", "t.json"},
		{"-xi", "not-a-rational"},
	}
	for _, args := range cases {
		var out, errOut strings.Builder
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
