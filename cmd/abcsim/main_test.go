package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRunSingleBroadcast(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-workload", "broadcast", "-n", "3", "-target", "3", "-seed", "1"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"workload=broadcast n=3 seed=1:",
		"ABC(Ξ=2) admissible: true",
		"critical ratio:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// broadcast declares no domain verdict; no vacuous "ok" line.
	if strings.Contains(got, "domain verdict") {
		t.Errorf("verdict line printed for a verdict-free source:\n%s", got)
	}
}

func TestRunTraceExportRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out, errOut strings.Builder
	args := []string{"-workload", "broadcast", "-n", "3", "-target", "3", "-seed", "1", "-trace", path}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "trace written to "+path) {
		t.Errorf("missing export confirmation:\n%s", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := sim.ReadJSON(f)
	if err != nil {
		t.Fatalf("exported trace does not round-trip: %v", err)
	}
	if tr.N != 3 || len(tr.Events) == 0 {
		t.Errorf("exported trace malformed: N=%d events=%d", tr.N, len(tr.Events))
	}
}

// TestRunFleetSweep smoke-tests -runs batch mode and pins the CLI-level
// determinism contract: identical output at every worker count.
func TestRunFleetSweep(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, workers := range []string{"1", "2", "8"} {
		var out, errOut strings.Builder
		args := []string{"-workload", "broadcast", "-n", "3", "-target", "3",
			"-seed", "1", "-runs", "5", "-workers", workers}
		if err := run(args, &out, &errOut); err != nil {
			t.Fatalf("workers=%s: %v (stderr: %s)", workers, err, errOut.String())
		}
		got := out.String()
		for _, want := range []string{
			"seed=1:", "seed=5:",
			"fleet: 5 runs on " + workers + " workers: 5 admissible",
		} {
			if !strings.Contains(got, want) {
				t.Errorf("workers=%s output missing %q:\n%s", workers, want, got)
			}
		}
		// The per-seed body must not depend on the worker count; mask the
		// footer's worker number before comparing.
		outputs = append(outputs, strings.ReplaceAll(got, " on "+workers+" workers", ""))
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Errorf("sweep output differs across worker counts:\n%q\n%q\n%q",
			outputs[0], outputs[1], outputs[2])
	}
}

// TestRunWatch drives -watch through both outcomes: a wide-delay run that
// stops at its first violating event (named in the report) and a
// tight-delay run that stays admissible throughout.
func TestRunWatch(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-workload", "broadcast", "-n", "3", "-target", "5",
		"-xi", "3/2", "-max", "3", "-seed", "0", "-watch"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"ABC(Ξ=3/2) admissible: false",
		"admissibility first fails at event ",
		"run stopped there",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("watch output missing %q:\n%s", want, got)
		}
	}

	out.Reset()
	args = []string{"-workload", "broadcast", "-n", "3", "-target", "3",
		"-xi", "2", "-max", "17/16", "-seed", "1", "-watch"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if got := out.String(); !strings.Contains(got, "admissible: true") ||
		strings.Contains(got, "first fails") {
		t.Errorf("admissible watch output wrong:\n%s", got)
	}

	// Sweep mode: per-seed lines carry the violation index.
	out.Reset()
	args = []string{"-workload", "broadcast", "-n", "3", "-target", "5",
		"-xi", "3/2", "-max", "3", "-seed", "0", "-runs", "4", "-workers", "2", "-watch"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if got := out.String(); !strings.Contains(got, "first-violation=") {
		t.Errorf("sweep watch output missing first-violation:\n%s", got)
	}
}

// TestRunJSON pins the NDJSON contract of -json: one "job" record per
// run carrying the full parameter point (base overlaid with sweep
// assignments), seed, verdict, stream digest, and throughput, followed
// by exactly one "fleet" footer with the aggregate counts and the
// resolved worker/shard split.
func TestRunJSON(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-workload", "broadcast", "-n", "3", "-target", "3",
		"-seed", "1", "-runs", "2", "-sweep", "xi=3/2,2", "-workers", "2", "-json"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 5 { // 2 xi cells × 2 seeds + footer
		t.Fatalf("got %d NDJSON lines, want 5:\n%s", len(lines), out.String())
	}
	var jobs []jobRecord
	for _, line := range lines[:4] {
		var rec jobRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad job record %q: %v", line, err)
		}
		jobs = append(jobs, rec)
	}
	for i, rec := range jobs {
		if rec.Kind != "job" || rec.Workload != "broadcast" {
			t.Errorf("record %d: kind=%q workload=%q", i, rec.Kind, rec.Workload)
		}
		if rec.Events == 0 || rec.StreamHash == "" {
			t.Errorf("record %d: no events/digest: %+v", i, rec)
		}
		if rec.Params["n"] != "3" {
			t.Errorf("record %d: params missing base override n=3: %v", i, rec.Params)
		}
		if rec.Verdict == "" {
			t.Errorf("record %d: no verdict", i)
		}
	}
	// Sweep assignments overlay the base point; seeds are innermost.
	if jobs[0].Params["xi"] != "3/2" || jobs[2].Params["xi"] != "2" {
		t.Errorf("sweep overlay wrong: xi[0]=%q xi[2]=%q", jobs[0].Params["xi"], jobs[2].Params["xi"])
	}
	if jobs[0].Seed != 1 || jobs[1].Seed != 2 || jobs[2].Seed != 1 {
		t.Errorf("seeds wrong: %d, %d, %d", jobs[0].Seed, jobs[1].Seed, jobs[2].Seed)
	}
	var footer fleetRecord
	if err := json.Unmarshal([]byte(lines[4]), &footer); err != nil {
		t.Fatalf("bad footer %q: %v", lines[4], err)
	}
	if footer.Kind != "fleet" || footer.Runs != 4 || footer.Workers != 2 {
		t.Errorf("footer wrong: %+v", footer)
	}
	if footer.Admissible+footer.Inadmissible != 4 {
		t.Errorf("footer verdict counts wrong: %+v", footer)
	}
	if footer.Events == 0 || footer.WallSec <= 0 {
		t.Errorf("footer totals missing: %+v", footer)
	}
}

// TestRunShardsInvisible pins the CLI half of the shard contract: the
// same sweep at -shards 1 and -shards 4 emits identical NDJSON job
// records up to timing fields.
func TestRunShardsInvisible(t *testing.T) {
	digests := make([]string, 0, 2)
	for _, shards := range []string{"1", "4"} {
		var out, errOut strings.Builder
		args := []string{"-workload", "broadcast", "-param", "n=8", "-target", "4",
			"-seed", "1", "-runs", "3", "-shards", shards, "-json"}
		if err := run(args, &out, &errOut); err != nil {
			t.Fatalf("-shards %s: %v (stderr: %s)", shards, err, errOut.String())
		}
		var hashes []string
		for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
			var probe struct {
				Kind string `json:"kind"`
			}
			if err := json.Unmarshal([]byte(line), &probe); err != nil {
				t.Fatalf("-shards %s: bad record %q: %v", shards, line, err)
			}
			if probe.Kind != "job" {
				continue
			}
			var rec jobRecord
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("-shards %s: bad job record %q: %v", shards, line, err)
			}
			want := 1
			if shards == "4" {
				want = 4
			}
			if rec.Shards != want {
				t.Errorf("-shards %s: job ran on %d shards, want %d", shards, rec.Shards, want)
			}
			hashes = append(hashes, rec.Key+"="+rec.StreamHash+"/"+rec.Verdict)
		}
		digests = append(digests, strings.Join(hashes, " "))
	}
	if digests[0] != digests[1] {
		t.Errorf("stream digests differ between -shards 1 and 4:\n%s\n%s", digests[0], digests[1])
	}
}

func TestRunRejectsBadUsage(t *testing.T) {
	cases := [][]string{
		{"-workload", "no-such-workload"},
		{"-runs", "0"},
		{"-runs", "2", "-trace", "t.json"},
		{"-sweep", "xi=2,3", "-trace", "t.json"},
		{"-shards", "-2"},
		{"-json", "-trace", "t.json"},
		{"-xi", "not-a-rational"},
		{"-param", "no-such-param=1"},
		{"-param", "missing-equals"},
		{"-sweep", "ghost=1,2"},
		{"-sweep", "xi"},
		{"-sweep", "xi=2,3", "-sweep", "xi=5/4"}, // duplicate axis
		{"-workload", "scenario", "-n", "4"},     // scenario declares no n
		{"-workload", "scenario", "-param", "fig=fig77"},
	}
	for _, args := range cases {
		var out, errOut strings.Builder
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunList pins the -list contract: every registered workload appears
// with its parameter space, and the command exits cleanly.
func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatalf("run -list: %v (stderr: %s)", err, errOut.String())
	}
	got := out.String()
	for _, name := range workload.Names() {
		if !strings.Contains(got, "\n"+name+" — ") {
			t.Errorf("-list output missing workload %q:\n%s", name, got)
		}
	}
	for _, want := range []string{
		"registered workloads:",
		"-param fig", // scenario's parameter space is printed
		"-param adversaries",
		"rational",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("-list output missing %q:\n%s", want, got)
		}
	}
}

// TestRunRegistryWorkloads drives one representative of each source kind
// end to end through the CLI: a trace source with -param, a simulation
// source with domain verdicts, and a source without an admissibility
// parameter.
func TestRunRegistryWorkloads(t *testing.T) {
	// Trace source: Fig. 3 at its violating Ξ.
	var out, errOut strings.Builder
	err := run([]string{"-workload", "scenario", "-param", "fig=fig3", "-xi", "2"}, &out, &errOut)
	if err != nil {
		t.Fatalf("scenario: %v (stderr: %s)", err, errOut.String())
	}
	for _, want := range []string{
		"workload=scenario seed=1:",
		"ABC(Ξ=2) admissible: false",
		"critical ratio: 2 ",
		"domain verdict: ok",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("scenario output missing %q:\n%s", want, out.String())
		}
	}

	// Simulation source with theorem verdicts.
	out.Reset()
	err = run([]string{"-workload", "lockstep", "-n", "4", "-f", "1", "-target", "3", "-seed", "2"}, &out, &errOut)
	if err != nil {
		t.Fatalf("lockstep: %v (stderr: %s)", err, errOut.String())
	}
	for _, want := range []string{"workload=lockstep n=4 seed=2:", "domain verdict: ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("lockstep output missing %q:\n%s", want, out.String())
		}
	}

	// Source without an xi parameter: no ABC clause, ratio still searched.
	out.Reset()
	err = run([]string{"-workload", "variants", "-target", "3", "-seed", "1"}, &out, &errOut)
	if err != nil {
		t.Fatalf("variants: %v (stderr: %s)", err, errOut.String())
	}
	if got := out.String(); strings.Contains(got, "ABC(") || !strings.Contains(got, "critical ratio:") {
		t.Errorf("variants output wrong (want ratio, no ABC clause):\n%s", got)
	}
}

// TestRunSweepGrid pins -sweep: axes expand row-major with seeds
// innermost, per-cell keys name the swept values, and the footer
// aggregates the whole grid.
func TestRunSweepGrid(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-workload", "scenario", "-param", "fig=fig1",
		"-sweep", "xi=5/4,2", "-workers", "2"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	got := out.String()
	wantLines := []string{
		"scenario/xi=5/4/seed=1: ", "ABC(Ξ=5/4) INADMISSIBLE",
		"scenario/xi=2/seed=1: ", "ABC(Ξ=2) admissible",
		"fleet: 2 runs on 2 workers: 1 admissible, 1 inadmissible",
		"max critical ratio: 5/4",
	}
	for _, want := range wantLines {
		if !strings.Contains(got, want) {
			t.Errorf("sweep output missing %q:\n%s", want, got)
		}
	}
	// Grid order: the 5/4 cell precedes the 2 cell.
	if strings.Index(got, "xi=5/4/seed=1") > strings.Index(got, "xi=2/seed=1") {
		t.Errorf("sweep output not in grid order:\n%s", got)
	}

	// Truncated cells are flagged per line: a clocksync sweep whose event
	// budget cannot reach the target.
	out.Reset()
	args = []string{"-workload", "clocksync", "-target", "4",
		"-param", "maxevents=40", "-sweep", "n=4,7", "-f", "1"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if got := out.String(); !strings.Contains(got, "truncated") {
		t.Errorf("expected truncated runs in:\n%s", got)
	}
}
