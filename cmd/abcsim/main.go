// Command abcsim runs ABC-model simulations and inspects their execution
// graphs. It can run the built-in workloads (Byzantine clock
// synchronization, lock-step rounds, all-to-all broadcast), report
// admissibility and the exact critical ratio, export the trace as JSON for
// cmd/abccheck, and render the space–time diagram as Graphviz DOT.
//
// Usage:
//
//	abcsim -workload clocksync -n 4 -f 1 -xi 2 -target 10 -seed 1 \
//	       -trace trace.json -dot graph.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/clocksync"
	"repro/internal/core"
	"repro/internal/graphutil"
	"repro/internal/lockstep"
	"repro/internal/rat"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abcsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workload = flag.String("workload", "clocksync", "clocksync | lockstep | broadcast")
		n        = flag.Int("n", 4, "number of processes")
		f        = flag.Int("f", 1, "Byzantine fault bound (clocksync/lockstep)")
		xiStr    = flag.String("xi", "2", "model parameter Ξ (rational, e.g. 3/2)")
		target   = flag.Int("target", 10, "target clock value / round / steps")
		seed     = flag.Int64("seed", 1, "random seed")
		minD     = flag.String("min", "1", "minimum message delay")
		maxD     = flag.String("max", "3/2", "maximum message delay")
		traceOut = flag.String("trace", "", "write trace JSON to this file")
		dotOut   = flag.String("dot", "", "write execution graph DOT to this file")
	)
	flag.Parse()

	xi, err := rat.Parse(*xiStr)
	if err != nil {
		return err
	}
	model, err := core.NewModel(xi)
	if err != nil {
		return err
	}
	min, err := rat.Parse(*minD)
	if err != nil {
		return err
	}
	max, err := rat.Parse(*maxD)
	if err != nil {
		return err
	}

	cfg := sim.Config{
		N:      *n,
		Delays: sim.UniformDelay{Min: min, Max: max},
		Seed:   *seed,
	}
	switch *workload {
	case "clocksync":
		cfg.Spawn = clocksync.Spawner(*n, *f)
		cfg.Until = clocksync.AllReached(*target, nil)
	case "lockstep":
		cfg.Spawn = lockstep.Spawner(model, *n, *f, func(sim.ProcessID) lockstep.App {
			return noopApp{}
		})
		cfg.Until = lockstep.AllReachedRound(*target, nil)
	case "broadcast":
		steps := *target
		cfg.Spawn = func(sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < steps {
					env.Broadcast(env.StepIndex())
				}
			})
		}
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}

	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	tr := res.Trace
	g := causality.Build(tr, causality.Options{})
	fmt.Printf("workload=%s n=%d seed=%d: %d events, %d messages, %d graph nodes\n",
		*workload, *n, *seed, len(tr.Events), len(tr.Msgs), g.NumNodes())
	if res.Truncated {
		fmt.Println("note: run truncated by event/time budget")
	}

	v, err := check.ABC(g, xi)
	if err != nil {
		return err
	}
	fmt.Printf("ABC(Ξ=%v) admissible: %v\n", xi, v.Admissible)
	if !v.Admissible {
		fmt.Printf("violating relevant cycle (ratio %v): %v\n", v.WitnessClass.Ratio(), *v.Witness)
	}
	ratio, found, err := check.MaxRelevantRatio(g)
	if err != nil {
		return err
	}
	if found {
		fmt.Printf("critical ratio: %v (admissible for every Ξ > %v)\n", ratio, ratio)
	} else {
		fmt.Println("critical ratio: none (admissible for every Ξ > 1)")
	}

	if *traceOut != "" {
		w, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer w.Close()
		if err := tr.WriteJSON(w); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if *dotOut != "" {
		w, err := os.Create(*dotOut)
		if err != nil {
			return err
		}
		defer w.Close()
		d := g.Digraph()
		err = d.WriteDOT(w, graphutil.DOTOptions{
			Name: "execution",
			NodeLabel: func(v int) string {
				return g.Node(causality.NodeID(v)).String()
			},
			EdgeAttr: func(i int, e graphutil.Edge) string {
				if g.Edge(causality.EdgeID(e.Label)).Kind == causality.Local {
					return "style=dashed"
				}
				return ""
			},
		})
		if err != nil {
			return err
		}
		fmt.Printf("DOT written to %s\n", *dotOut)
	}
	return nil
}

type noopApp struct{}

func (noopApp) Init(self sim.ProcessID, n int) any { return int(self) }
func (noopApp) Round(r int, received []any) any    { return r }
