// Command abcsim runs ABC-model workloads from the unified registry
// (internal/workload) and inspects their execution graphs. Any registered
// workload — clock synchronization, lock-step rounds, synchronous
// consensus, the Ω failure detector, VLSI clock generation, Θ-Model and
// ParSync embeddings, the Section 6 variants, the paper's figure traces,
// plain broadcast — is selected with -workload,
// parameterized with -param name=value (or the legacy shorthand flags),
// swept over whole parameter axes with -sweep name=v1,v2,..., and checked
// for ABC admissibility, exact critical ratio, and its domain-level
// verdict (theorem monitors, protocol invariants). -list prints the
// catalogue with each workload's parameter space.
//
// With -runs R > 1 (or any -sweep) it becomes a fleet sweep: jobs are
// sharded across -workers goroutines by internal/runner, one summary line
// is printed per job (in grid order, regardless of scheduling), and an
// aggregate footer reports admissible/inadmissible counts, total events,
// truncations, domain-check failures, and the maximum critical ratio.
// Per-seed traces are bit-identical to serial single runs of the same
// seeds; -workers only changes wall-clock time.
//
// With -watch the admissibility check runs online: the incremental engine
// (check.Incremental) grows the constraint system with every simulated
// event, the run stops at the first violating event, and the report names
// the exact event index at which admissibility first failed.
//
// -shards controls intra-run parallelism: each simulation runs on the
// conservative sharded engine with the given shard count (0, the
// default, derives it from the cores the worker pool leaves idle; 1 pins
// the serial engine). Traces and verdicts are byte-identical for every
// value — like -workers it only trades wall-clock for cores.
//
// With -json the reports become NDJSON on stdout: one record per job
// (kind "job": the full parameter point, seed, verdict, critical ratio,
// stream digest, events/sec) and one aggregate footer (kind "fleet"),
// machine-readable for sweep post-processing:
//
//	abcsim -workload broadcast -param n=1000 -runs 10 -json | jq -r .eventsPerSec
//
// Usage:
//
//	abcsim -list
//	abcsim -workload clocksync -n 4 -f 1 -xi 2 -target 10 -seed 1 \
//	       -trace trace.json -dot graph.dot
//	abcsim -workload clocksync -n 7 -f 2 -runs 100 -workers 8
//	abcsim -workload broadcast -n 3 -xi 3/2 -max 3 -watch
//	abcsim -workload scenario -param fig=fig3 -sweep xi=3/2,2,3
//	abcsim -workload vlsi -sweep scale=1,1/3 -param silent=1
//
// Simulation workloads declare a topology axis (sim.ParseTopology syntax:
// full, ring, torus[/RxC], regular/D, scalefree/M, islands/K; the sparse
// engine makes N ≈ 10^5 rings/tori tractable):
//
//	abcsim -workload broadcast -param n=10000 -param topology=torus
//	abcsim -workload vlsi -param n=9 -param maxevents=3000 -sweep topology=full,torus,regular/4 -runs 5
//
// Simulation workloads also declare a fault axis (workload.FaultParams):
// a spec of '+'-joined clauses — crash/K[@S] (K processes crash after S
// steps), byz/K[@B] (K live Byzantine adversaries with step budget B,
// where the workload declares an adversary family), script/K[@T] (K
// scripted-noise processes) — claiming process IDs n-1 downward. Specs
// sweep like any parameter, giving crash-at-step and Byzantine-budget
// grids:
//
//	abcsim -workload consensus -param algo=floodset -sweep faults=none,crash/1@0,crash/1@2 -runs 3
//	abcsim -workload consensus -param n=5 -sweep algo=eig,phaseking -param faults=byz/1
//	abcsim -workload omega -param topology=ring -param faults=crash/1@0
//	abcsim -workload clocksync -sweep faults=byz/1@20,byz/1@60 -runs 5
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/causality"
	"repro/internal/graphutil"
	"repro/internal/runner"
	"repro/internal/workload"

	_ "repro/internal/workload/all"
)

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// Usage already printed by the FlagSet; -h is not a failure.
	default:
		fmt.Fprintln(os.Stderr, "abcsim:", err)
		os.Exit(1)
	}
}

// repeatFlag collects every occurrence of a repeatable flag.
type repeatFlag []string

func (r *repeatFlag) String() string     { return strings.Join(*r, " ") }
func (r *repeatFlag) Set(v string) error { *r = append(*r, v); return nil }

// legacyParams maps shorthand flags onto workload parameters of the same
// name; they apply only when explicitly set, so unset flags defer to the
// workload's own defaults.
var legacyParams = []string{"n", "f", "xi", "target", "min", "max"}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("abcsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var params, sweeps repeatFlag
	var (
		name    = fs.String("workload", "clocksync", "registered workload to run (see -list)")
		list    = fs.Bool("list", false, "print the registered workloads with their parameter spaces and exit")
		seed    = fs.Int64("seed", 1, "random seed (first seed of a -runs sweep)")
		runs    = fs.Int("runs", 1, "number of seeds to run, starting at -seed")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "fleet width for sweeps (per-seed results are identical for any width)")
		shards  = fs.Int("shards", 0, "engine shards per simulation: 0 = fill idle cores, 1 = serial, N = fixed (results identical for any value)")
		jsonOut = fs.Bool("json", false, "emit NDJSON records (one per job plus an aggregate footer) instead of the text report")
		watch   = fs.Bool("watch", false, "monitor ABC(Ξ) incrementally during the run and stop at the first violating event")
		// Legacy shorthands for the most common parameters; equivalent to
		// -param <flag>=<value> and applied only when set.
		_        = fs.Int("n", 4, "shorthand for -param n=...")
		_        = fs.Int("f", 1, "shorthand for -param f=...")
		_        = fs.String("xi", "2", "shorthand for -param xi=... (rational, e.g. 3/2)")
		_        = fs.Int("target", 10, "shorthand for -param target=...")
		_        = fs.String("min", "1", "shorthand for -param min=...")
		_        = fs.String("max", "3/2", "shorthand for -param max=...")
		traceOut = fs.String("trace", "", "write trace JSON to this file (single run only)")
		dotOut   = fs.String("dot", "", "write execution graph DOT to this file (single run only)")
	)
	fs.Var(&params, "param", "workload parameter override name=value (repeatable)")
	fs.Var(&sweeps, "sweep", "sweep axis name=v1,v2,... (repeatable; axes expand row-major, seeds innermost)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		printList(stdout)
		return nil
	}

	src, ok := workload.Lookup(*name)
	if !ok {
		return fmt.Errorf("unknown workload %q (registered: %s)", *name, strings.Join(workload.Names(), ", "))
	}

	overrides := make(map[string]string)
	fs.Visit(func(f *flag.Flag) {
		for _, p := range legacyParams {
			if f.Name == p {
				overrides[p] = f.Value.String()
			}
		}
	})
	for _, kv := range params {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("-param %q: want name=value", kv)
		}
		overrides[k] = v
	}
	base, err := src.Resolve(overrides)
	if err != nil {
		return err
	}

	var axes []runner.Axis
	for _, kv := range sweeps {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || v == "" {
			return fmt.Errorf("-sweep %q: want name=v1,v2,...", kv)
		}
		axes = append(axes, runner.Axis{Param: k, Values: strings.Split(v, ",")})
	}

	if *runs < 1 {
		return fmt.Errorf("-runs %d, need at least 1", *runs)
	}
	if *workers < 1 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d, need >= 0", *shards)
	}
	single := *runs == 1 && len(axes) == 0
	if !single && (*traceOut != "" || *dotOut != "") {
		return fmt.Errorf("-trace/-dot exports require a single run (-runs 1, no -sweep)")
	}
	if *jsonOut && (*traceOut != "" || *dotOut != "") {
		return fmt.Errorf("-json does not combine with -trace/-dot exports")
	}

	opt := workload.JobOptions{Watch: *watch, Ratio: true}
	seeds := runner.Seeds(*seed, *runs)
	var jobs []runner.Job
	if len(axes) > 0 {
		jobs, err = src.Grid(base, axes, seeds, opt)
	} else {
		jobs, err = src.Jobs(base, seeds, opt)
	}
	if err != nil {
		return err
	}

	opts := runner.Options{Workers: *workers, Shards: *shards}
	if *shards == 0 {
		opts.Shards = runner.ShardsAuto
	}
	start := time.Now()
	results, stats, err := runner.Run(context.Background(), jobs, opts)
	wall := time.Since(start)
	if err != nil {
		return err
	}
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}

	if *jsonOut {
		return reportJSON(stdout, *name, base, seeds, axes, jobs, results, stats, opts, wall)
	}
	if single {
		return reportSingle(stdout, *name, base, *seed, results[0], jobs[0].Post != nil, *traceOut, *dotOut)
	}

	for _, r := range results {
		extra := ""
		if r.RatioFound {
			extra = fmt.Sprintf(" ratio=%v", r.Ratio)
		}
		if r.FirstViolation >= 0 {
			extra += fmt.Sprintf(" first-violation=%d", r.FirstViolation)
		}
		if r.Sim != nil && r.Sim.Truncated {
			extra += " truncated"
		}
		if r.CheckErr != nil {
			extra += " domain-check-FAILED"
		}
		abc := ""
		if r.Verdict != nil {
			status := "admissible"
			if !r.Verdict.Admissible {
				status = "INADMISSIBLE"
			}
			abc = fmt.Sprintf(", ABC(Ξ=%v) %s", r.Xi, status)
		}
		fmt.Fprintf(stdout, "%s: %d events, %d messages%s%s\n",
			r.Key, r.Trace.TotalEvents(), r.Trace.TotalMsgs(), abc, extra)
	}
	fmt.Fprintf(stdout, "fleet: %d runs on %d workers: %d admissible, %d inadmissible, %d truncated, %d events total\n",
		stats.Jobs, *workers, stats.Admissible, stats.Inadmissible, stats.Truncated, stats.Events)
	if stats.CheckFailed > 0 {
		fmt.Fprintf(stdout, "domain checks: %d of %d jobs FAILED\n", stats.CheckFailed, stats.Jobs)
	}
	if stats.MaxRatioFound {
		fmt.Fprintf(stdout, "max critical ratio: %v (at %s)\n", stats.MaxRatio, stats.MaxRatioKey)
	} else {
		fmt.Fprintln(stdout, "max critical ratio: none (all runs admissible for every Ξ > 1)")
	}
	return nil
}

// jobRecord is the per-job NDJSON line of -json mode.
type jobRecord struct {
	Kind           string            `json:"kind"` // "job"
	Workload       string            `json:"workload"`
	Key            string            `json:"key"`
	Params         map[string]string `json:"params"`
	Seed           int64             `json:"seed"`
	Xi             string            `json:"xi,omitempty"`
	Verdict        string            `json:"verdict,omitempty"` // admissible | inadmissible
	Ratio          string            `json:"ratio,omitempty"`
	FirstViolation int               `json:"firstViolation"`
	Truncated      bool              `json:"truncated"`
	DomainCheck    string            `json:"domainCheck,omitempty"` // ok | failed: ...
	Events         int               `json:"events"`
	Msgs           int               `json:"msgs"`
	StreamHash     string            `json:"streamHash"`
	Shards         int               `json:"shards"`
	ElapsedSec     float64           `json:"elapsedSec"`
	EventsPerSec   float64           `json:"eventsPerSec"`
}

// fleetRecord is the aggregate NDJSON footer of -json mode.
type fleetRecord struct {
	Kind         string  `json:"kind"` // "fleet"
	Workload     string  `json:"workload"`
	Runs         int     `json:"runs"`
	Workers      int     `json:"workers"`
	Shards       int     `json:"shards"`
	Admissible   int     `json:"admissible"`
	Inadmissible int     `json:"inadmissible"`
	Truncated    int     `json:"truncated"`
	CheckFailed  int     `json:"checkFailed"`
	Events       int     `json:"events"`
	Msgs         int     `json:"msgs"`
	MaxRatio     string  `json:"maxRatio,omitempty"`
	MaxRatioKey  string  `json:"maxRatioKey,omitempty"`
	WallSec      float64 `json:"wallSec"`
}

// reportJSON renders the batch as NDJSON: one "job" record per result in
// grid order, then one "fleet" footer. Each job's parameter point is the
// resolved base overlaid with its sweep-cell assignment, recomputed from
// the job index by mirroring ParamGrid's row-major expansion (first axis
// outermost, seeds innermost).
func reportJSON(stdout io.Writer, name string, base workload.Values, seeds []int64, axes []runner.Axis, jobs []runner.Job, results []runner.JobResult, stats runner.Stats, opts runner.Options, wall time.Duration) error {
	enc := json.NewEncoder(stdout)
	for _, r := range results {
		params := base.Map()
		for i, cell := len(axes)-1, r.Index/len(seeds); i >= 0; i-- {
			n := len(axes[i].Values)
			params[axes[i].Param] = axes[i].Values[cell%n]
			cell /= n
		}
		rec := jobRecord{
			Kind:           "job",
			Workload:       name,
			Key:            r.Key,
			Params:         params,
			Seed:           seeds[r.Index%len(seeds)], // seeds are the innermost grid axis
			FirstViolation: r.FirstViolation,
		}
		if r.Xi.Sign() > 0 {
			rec.Xi = r.Xi.String()
		}
		if r.Verdict != nil {
			rec.Verdict = "admissible"
			if !r.Verdict.Admissible {
				rec.Verdict = "inadmissible"
			}
		}
		if r.RatioFound {
			rec.Ratio = r.Ratio.String()
		}
		if r.CheckErr != nil {
			rec.DomainCheck = "failed: " + r.CheckErr.Error()
		} else if jobs[r.Index].Post != nil {
			rec.DomainCheck = "ok"
		}
		if r.Trace != nil {
			rec.Events = r.Trace.TotalEvents()
			rec.Msgs = r.Trace.TotalMsgs()
			rec.StreamHash = fmt.Sprintf("%016x", r.Trace.StreamHash())
		}
		if r.Sim != nil {
			rec.Truncated = r.Sim.Truncated
			rec.Shards = r.Sim.Shards
		}
		rec.ElapsedSec = r.Elapsed.Seconds()
		if s := r.Elapsed.Seconds(); s > 0 && rec.Events > 0 {
			rec.EventsPerSec = float64(rec.Events) / s
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	workers, shards := opts.Plan(len(results))
	footer := fleetRecord{
		Kind:         "fleet",
		Workload:     name,
		Runs:         stats.Jobs,
		Workers:      workers,
		Shards:       shards,
		Admissible:   stats.Admissible,
		Inadmissible: stats.Inadmissible,
		Truncated:    stats.Truncated,
		CheckFailed:  stats.CheckFailed,
		Events:       stats.Events,
		Msgs:         stats.Msgs,
		WallSec:      wall.Seconds(),
	}
	if stats.MaxRatioFound {
		footer.MaxRatio = stats.MaxRatio.String()
		footer.MaxRatioKey = stats.MaxRatioKey
	}
	return enc.Encode(footer)
}

// printList renders the registry catalogue: one block per workload with
// its parameter space.
func printList(stdout io.Writer) {
	fmt.Fprintln(stdout, "registered workloads:")
	for _, name := range workload.Names() {
		s, _ := workload.Lookup(name)
		fmt.Fprintf(stdout, "\n%s — %s\n", s.Name, s.Doc)
		for _, p := range s.Params {
			def := p.Default
			if def == "" {
				def = `""`
			}
			fmt.Fprintf(stdout, "  -param %-12s %-9s default %-8s %s\n", p.Name, p.Kind.String(), def, p.Doc)
		}
	}
}

// reportSingle preserves the original single-run report format.
// hasVerdict reports whether the job carried a domain verdict at all;
// without one, no verdict line is printed rather than a vacuous "ok".
func reportSingle(stdout io.Writer, name string, v workload.Values, seed int64, r runner.JobResult, hasVerdict bool, traceOut, dotOut string) error {
	tr := r.Trace
	header := "workload=" + name
	if v.Has("n") {
		header += fmt.Sprintf(" n=%d", v.Int("n"))
	}
	if !tr.Complete() && r.Graph == nil {
		// Bounded retention: the complete execution graph cannot be
		// rebuilt, so report counters and the stream digest instead.
		if traceOut != "" || dotOut != "" {
			return fmt.Errorf("-trace/-dot exports need the complete trace; run with trace=full")
		}
		fmt.Fprintf(stdout, "%s seed=%d: %d events, %d messages (trace=%v retention), stream hash %016x\n",
			header, seed, tr.TotalEvents(), tr.TotalMsgs(), tr.Retention(), tr.StreamHash())
		if r.Sim != nil && r.Sim.Truncated {
			fmt.Fprintln(stdout, "note: run truncated by event/time budget")
		}
		if r.CheckErr != nil {
			fmt.Fprintf(stdout, "domain verdict: FAILED: %v\n", r.CheckErr)
		} else if hasVerdict {
			fmt.Fprintln(stdout, "domain verdict: ok")
		}
		return nil
	}
	g := r.Graph
	if g == nil {
		g = causality.Build(tr, causality.Options{})
	}
	fmt.Fprintf(stdout, "%s seed=%d: %d events, %d messages, %d graph nodes\n",
		header, seed, tr.TotalEvents(), tr.TotalMsgs(), g.NumNodes())
	if r.Sim != nil && r.Sim.Truncated {
		fmt.Fprintln(stdout, "note: run truncated by event/time budget")
	}

	if r.Verdict != nil {
		fmt.Fprintf(stdout, "ABC(Ξ=%v) admissible: %v\n", r.Xi, r.Verdict.Admissible)
		if !r.Verdict.Admissible && r.Verdict.Witness != nil {
			fmt.Fprintf(stdout, "violating relevant cycle (ratio %v): %v\n",
				r.Verdict.WitnessClass.Ratio(), *r.Verdict.Witness)
		}
	}
	if r.FirstViolation >= 0 {
		if ev, ok := tr.EventByPos(r.FirstViolation); ok {
			fmt.Fprintf(stdout, "admissibility first fails at event %d (p%d/%d, t=%v); run stopped there\n",
				r.FirstViolation, ev.Proc, ev.Index, ev.Time)
		} else {
			fmt.Fprintf(stdout, "admissibility first fails at event %d; run stopped there\n", r.FirstViolation)
		}
	}
	if r.RatioFound {
		fmt.Fprintf(stdout, "critical ratio: %v (admissible for every Ξ > %v)\n", r.Ratio, r.Ratio)
	} else {
		fmt.Fprintln(stdout, "critical ratio: none (admissible for every Ξ > 1)")
	}
	if r.CheckErr != nil {
		fmt.Fprintf(stdout, "domain verdict: FAILED: %v\n", r.CheckErr)
	} else if hasVerdict {
		fmt.Fprintln(stdout, "domain verdict: ok")
	}

	if (traceOut != "" || dotOut != "") && !tr.Complete() {
		return fmt.Errorf("-trace/-dot exports need the complete trace; run with trace=full")
	}
	if traceOut != "" {
		w, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer w.Close()
		if err := tr.WriteJSON(w); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace written to %s\n", traceOut)
	}
	if dotOut != "" {
		w, err := os.Create(dotOut)
		if err != nil {
			return err
		}
		defer w.Close()
		d := g.Digraph()
		err = d.WriteDOT(w, graphutil.DOTOptions{
			Name: "execution",
			NodeLabel: func(v int) string {
				return g.Node(causality.NodeID(v)).String()
			},
			EdgeAttr: func(i int, e graphutil.Edge) string {
				if g.Edge(causality.EdgeID(e.Label)).Kind == causality.Local {
					return "style=dashed"
				}
				return ""
			},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "DOT written to %s\n", dotOut)
	}
	return nil
}
