// Command abcsim runs ABC-model simulations and inspects their execution
// graphs. It can run the built-in workloads (Byzantine clock
// synchronization, lock-step rounds, all-to-all broadcast), report
// admissibility and the exact critical ratio, export the trace as JSON for
// cmd/abccheck, and render the space–time diagram as Graphviz DOT.
//
// With -runs R > 1 it becomes a fleet sweep: the R seeds seed..seed+R-1
// are sharded across -workers goroutines by internal/runner, one summary
// line is printed per seed (in seed order, regardless of scheduling), and
// an aggregate footer reports admissible/inadmissible counts, total
// events, truncations, and the maximum critical ratio across the sweep.
// Per-seed traces are bit-identical to serial single runs of the same
// seeds; -workers only changes wall-clock time.
//
// With -watch the admissibility check runs online: the incremental
// engine (check.Incremental) grows the constraint system with every
// simulated event, the run stops at the first violating event, and the
// report names the exact event index at which admissibility first failed.
//
// Usage:
//
//	abcsim -workload clocksync -n 4 -f 1 -xi 2 -target 10 -seed 1 \
//	       -trace trace.json -dot graph.dot
//	abcsim -workload clocksync -n 7 -f 2 -runs 100 -workers 8
//	abcsim -workload broadcast -n 3 -xi 3/2 -max 3 -watch
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/causality"
	"repro/internal/clocksync"
	"repro/internal/core"
	"repro/internal/graphutil"
	"repro/internal/lockstep"
	"repro/internal/rat"
	"repro/internal/runner"
	"repro/internal/sim"
)

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// Usage already printed by the FlagSet; -h is not a failure.
	default:
		fmt.Fprintln(os.Stderr, "abcsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("abcsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload = fs.String("workload", "clocksync", "clocksync | lockstep | broadcast")
		n        = fs.Int("n", 4, "number of processes")
		f        = fs.Int("f", 1, "Byzantine fault bound (clocksync/lockstep)")
		xiStr    = fs.String("xi", "2", "model parameter Ξ (rational, e.g. 3/2)")
		target   = fs.Int("target", 10, "target clock value / round / steps")
		seed     = fs.Int64("seed", 1, "random seed (first seed of a -runs sweep)")
		runs     = fs.Int("runs", 1, "number of seeds to run, starting at -seed")
		workers  = fs.Int("workers", runtime.GOMAXPROCS(0), "fleet width for -runs sweeps (per-seed results are identical for any width)")
		minD     = fs.String("min", "1", "minimum message delay")
		maxD     = fs.String("max", "3/2", "maximum message delay")
		watch    = fs.Bool("watch", false, "monitor ABC(Ξ) incrementally during the run and stop at the first violating event")
		traceOut = fs.String("trace", "", "write trace JSON to this file (single run only)")
		dotOut   = fs.String("dot", "", "write execution graph DOT to this file (single run only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	xi, err := rat.Parse(*xiStr)
	if err != nil {
		return err
	}
	model, err := core.NewModel(xi)
	if err != nil {
		return err
	}
	min, err := rat.Parse(*minD)
	if err != nil {
		return err
	}
	max, err := rat.Parse(*maxD)
	if err != nil {
		return err
	}
	if *runs < 1 {
		return fmt.Errorf("-runs %d, need at least 1", *runs)
	}
	if *workers < 1 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *runs > 1 && (*traceOut != "" || *dotOut != "") {
		return fmt.Errorf("-trace/-dot exports require a single run (-runs 1)")
	}

	// mkConfig builds a fresh Config per seed: Spawn and Until closures
	// are per-job so concurrent jobs share no state.
	mkConfig := func(jobSeed int64) (sim.Config, error) {
		cfg := sim.Config{
			N:      *n,
			Delays: sim.UniformDelay{Min: min, Max: max},
			Seed:   jobSeed,
		}
		switch *workload {
		case "clocksync":
			cfg.Spawn = clocksync.Spawner(*n, *f)
			cfg.Until = clocksync.AllReached(*target, nil)
		case "lockstep":
			cfg.Spawn = lockstep.Spawner(model, *n, *f, func(sim.ProcessID) lockstep.App {
				return noopApp{}
			})
			cfg.Until = lockstep.AllReachedRound(*target, nil)
		case "broadcast":
			steps := *target
			cfg.Spawn = func(sim.ProcessID) sim.Process {
				return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
					if env.StepIndex() < steps {
						env.Broadcast(env.StepIndex())
					}
				})
			}
		default:
			return sim.Config{}, fmt.Errorf("unknown workload %q", *workload)
		}
		return cfg, nil
	}

	jobs := make([]runner.Job, *runs)
	for i := range jobs {
		jobSeed := *seed + int64(i)
		cfg, err := mkConfig(jobSeed)
		if err != nil {
			return err
		}
		jobs[i] = runner.Job{
			Key: fmt.Sprintf("seed=%d", jobSeed),
			Cfg: &cfg, Xi: xi, Watch: *watch, Ratio: true,
		}
	}

	results, stats, err := runner.Run(context.Background(), jobs, runner.Options{Workers: *workers})
	if err != nil {
		return err
	}
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}

	if *runs == 1 {
		return reportSingle(stdout, *workload, *n, *seed, results[0], xi, *traceOut, *dotOut)
	}

	for _, r := range results {
		status := "admissible"
		if !r.Admissible() {
			status = "INADMISSIBLE"
		}
		extra := ""
		if r.RatioFound {
			extra = fmt.Sprintf(" ratio=%v", r.Ratio)
		}
		if r.FirstViolation >= 0 {
			extra += fmt.Sprintf(" first-violation=%d", r.FirstViolation)
		}
		if r.Sim.Truncated {
			extra += " truncated"
		}
		fmt.Fprintf(stdout, "%s: %d events, %d messages, ABC(Ξ=%v) %s%s\n",
			r.Key, len(r.Trace.Events), len(r.Trace.Msgs), xi, status, extra)
	}
	fmt.Fprintf(stdout, "fleet: %d runs on %d workers: %d admissible, %d inadmissible, %d truncated, %d events total\n",
		stats.Jobs, *workers, stats.Admissible, stats.Inadmissible, stats.Truncated, stats.Events)
	if stats.MaxRatioFound {
		fmt.Fprintf(stdout, "max critical ratio: %v (at %s)\n", stats.MaxRatio, stats.MaxRatioKey)
	} else {
		fmt.Fprintln(stdout, "max critical ratio: none (all runs admissible for every Ξ > 1)")
	}
	return nil
}

// reportSingle preserves the original single-run report format.
func reportSingle(stdout io.Writer, workload string, n int, seed int64, r runner.JobResult, xi rat.Rat, traceOut, dotOut string) error {
	tr := r.Trace
	g := r.Graph
	fmt.Fprintf(stdout, "workload=%s n=%d seed=%d: %d events, %d messages, %d graph nodes\n",
		workload, n, seed, len(tr.Events), len(tr.Msgs), g.NumNodes())
	if r.Sim.Truncated {
		fmt.Fprintln(stdout, "note: run truncated by event/time budget")
	}

	fmt.Fprintf(stdout, "ABC(Ξ=%v) admissible: %v\n", xi, r.Verdict.Admissible)
	if !r.Verdict.Admissible {
		fmt.Fprintf(stdout, "violating relevant cycle (ratio %v): %v\n",
			r.Verdict.WitnessClass.Ratio(), *r.Verdict.Witness)
	}
	if r.FirstViolation >= 0 {
		ev := tr.Events[r.FirstViolation]
		fmt.Fprintf(stdout, "admissibility first fails at event %d (p%d/%d, t=%v); run stopped there\n",
			r.FirstViolation, ev.Proc, ev.Index, ev.Time)
	}
	if r.RatioFound {
		fmt.Fprintf(stdout, "critical ratio: %v (admissible for every Ξ > %v)\n", r.Ratio, r.Ratio)
	} else {
		fmt.Fprintln(stdout, "critical ratio: none (admissible for every Ξ > 1)")
	}

	if traceOut != "" {
		w, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer w.Close()
		if err := tr.WriteJSON(w); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace written to %s\n", traceOut)
	}
	if dotOut != "" {
		w, err := os.Create(dotOut)
		if err != nil {
			return err
		}
		defer w.Close()
		d := g.Digraph()
		err = d.WriteDOT(w, graphutil.DOTOptions{
			Name: "execution",
			NodeLabel: func(v int) string {
				return g.Node(causality.NodeID(v)).String()
			},
			EdgeAttr: func(i int, e graphutil.Edge) string {
				if g.Edge(causality.EdgeID(e.Label)).Kind == causality.Local {
					return "style=dashed"
				}
				return ""
			},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "DOT written to %s\n", dotOut)
	}
	return nil
}

type noopApp struct{}

func (noopApp) Init(self sim.ProcessID, n int) any { return int(self) }
func (noopApp) Round(r int, received []any) any    { return r }
