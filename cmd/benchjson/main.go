// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so per-PR benchmark numbers can be recorded in
// the repository (`make bench-json` emits BENCH_pr3.json) and diffed as
// the performance trajectory instead of living only in commit messages.
//
// Each benchmark result line
//
//	BenchmarkChecker/nodes=2568-8   50   515563 ns/op   1150160 B/op   31 allocs/op
//
// becomes an object with the name (GOMAXPROCS suffix stripped), iteration
// count, and every reported metric — including custom b.ReportMetric units
// such as "checks/op" or "events/run". Context lines (goos, goarch, pkg,
// cpu) are captured into the header, alongside host metadata (go version,
// core count, GOMAXPROCS) of the converting machine — required context
// for judging parallel-engine numbers recorded in BENCH_*.json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Host records the machine and toolchain the benchmarks ran on — the
// context needed to judge parallel-engine numbers (a shards=8 figure is
// meaningless without knowing how many cores were actually available).
type Host struct {
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"numCPU"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Report is the emitted document.
type Report struct {
	Host       Host              `json:"host"`
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	report := Report{
		Host: Host{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Context: map[string]string{},
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseBenchLine(line); ok {
			report.Benchmarks = append(report.Benchmarks, b)
			continue
		}
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				report.Context[key] = strings.TrimSpace(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// parseBenchLine parses one "BenchmarkX-N  iter  value unit ..." line.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the trailing -GOMAXPROCS suffix, keeping sub-benchmark paths.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}
