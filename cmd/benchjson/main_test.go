package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkChecker/nodes=2568/edges=5120-8         	      50	    515563 ns/op	 1150160 B/op	      31 allocs/op
BenchmarkSimulator-8                             	      50	   3748161 ns/op	      3208 events/run	 3428367 B/op	    9715 allocs/op
BenchmarkIncrementalChecker/incremental          	       5	   1048114 ns/op	        34.00 checks/op	  788713 B/op	    2736 allocs/op
PASS
ok  	repro	0.268s
`

func TestRunParsesBenchOutput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if rep.Context["goos"] != "linux" || !strings.Contains(rep.Context["cpu"], "Xeon") {
		t.Errorf("context = %v", rep.Context)
	}
	// Host metadata comes from the converting machine — the same one that
	// ran the benchmarks in the make bench-json pipeline.
	if rep.Host.GoVersion == "" || rep.Host.NumCPU < 1 || rep.Host.GOMAXPROCS < 1 {
		t.Errorf("host metadata missing: %+v", rep.Host)
	}
	if rep.Host.GOOS == "" || rep.Host.GOARCH == "" {
		t.Errorf("host os/arch missing: %+v", rep.Host)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkChecker/nodes=2568/edges=5120" || b.Iterations != 50 {
		t.Errorf("first benchmark = %+v", b)
	}
	if b.Metrics["ns/op"] != 515563 || b.Metrics["allocs/op"] != 31 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	// Custom metrics and a name without the GOMAXPROCS suffix survive.
	inc := rep.Benchmarks[2]
	if inc.Name != "BenchmarkIncrementalChecker/incremental" || inc.Metrics["checks/op"] != 34 {
		t.Errorf("incremental benchmark = %+v", inc)
	}
	if rep.Benchmarks[1].Metrics["events/run"] != 3208 {
		t.Errorf("events/run metric lost: %v", rep.Benchmarks[1].Metrics)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("PASS\n"), &out); err == nil {
		t.Error("empty bench output accepted")
	}
}
