// Package variants implements the weaker ABC models of Section 6 of the
// paper:
//
//   - ?ABC: Ξ holds perpetually but is unknown — handled by online
//     estimation (XiLearner) following the paper's sketch of increasing
//     the estimate Ξ̂ whenever a late message contradicts it;
//   - ◇ABC: Ξ is known but holds only eventually, from some consistent
//     cut C_GST on — FindGST locates the earliest such cut in a trace;
//   - ?◇ABC: both — estimation combined with eventual validity;
//   - eventual lock-step rounds via doubling round durations, the
//     construction the paper imports from the Θ-Model literature: once the
//     round length exceeds the (unknown or eventually holding) 2Ξ, every
//     later round is a correct lock-step round.
package variants

import (
	"fmt"
	"math/rand"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/lockstep"
	"repro/internal/rat"
	"repro/internal/sim"
)

// Kind names the four model variants of Section 6.
type Kind int

// The model variants.
const (
	// KnownPerpetual is the base ABC model of Section 2.
	KnownPerpetual Kind = iota + 1
	// UnknownPerpetual is the ?ABC model.
	UnknownPerpetual
	// KnownEventual is the ◇ABC model.
	KnownEventual
	// UnknownEventual is the ?◇ABC model.
	UnknownEventual
)

func (k Kind) String() string {
	switch k {
	case KnownPerpetual:
		return "ABC"
	case UnknownPerpetual:
		return "?ABC"
	case KnownEventual:
		return "◇ABC"
	case UnknownEventual:
		return "?◇ABC"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// XiLearner estimates an unknown Ξ online (?ABC model). Following the
// paper's sketch, the estimate starts below the true value and is raised
// whenever an observed execution contradicts it — i.e. contains a relevant
// cycle with ratio >= Ξ̂. Since admissible executions never exhibit ratios
// >= the true Ξ, the estimate converges: it is non-decreasing, bounded by
// the true Ξ (with margin), and changes only finitely often.
type XiLearner struct {
	est rat.Rat
	// Margin is the headroom added above an observed ratio; the estimate
	// must exceed the largest ratio, not merely match it.
	margin rat.Rat
	bumps  int
}

// NewXiLearner returns a learner with the given initial estimate
// (must be > 1) and margin (must be > 0).
func NewXiLearner(initial, margin rat.Rat) (*XiLearner, error) {
	if !initial.Greater(rat.One) {
		return nil, fmt.Errorf("variants: initial estimate %v must exceed 1", initial)
	}
	if margin.Sign() <= 0 {
		return nil, fmt.Errorf("variants: margin %v must be positive", margin)
	}
	return &XiLearner{est: initial, margin: margin}, nil
}

// Estimate returns the current Ξ̂.
func (l *XiLearner) Estimate() rat.Rat { return l.est }

// Bumps returns how many times the estimate was raised.
func (l *XiLearner) Bumps() int { return l.bumps }

// Observe checks an execution graph against the current estimate; when
// contradicted, it raises Ξ̂ above the worst observed relevant ratio and
// reports true.
func (l *XiLearner) Observe(g *causality.Graph) (raised bool, err error) {
	v, err := check.ABC(g, l.est)
	if err != nil {
		return false, err
	}
	if v.Admissible {
		return false, nil
	}
	worst, found, err := check.MaxRelevantRatio(g)
	if err != nil {
		return false, err
	}
	if !found {
		return false, fmt.Errorf("variants: inadmissible graph with no constraining ratio")
	}
	l.est = worst.Add(l.margin)
	l.bumps++
	return true, nil
}

// FindGST locates the ◇ABC global stabilization point in a trace: the
// smallest global event index i such that, after exempting every message
// sent before event i (the cycles "starting at or after" the cut C_GST,
// per Section 6), all remaining relevant cycles satisfy Ξ. ok is false
// when even the full exemption (i = len(events)) fails, which cannot
// happen since an empty graph is vacuously admissible.
func FindGST(t *sim.Trace, xi rat.Rat) (gstIndex int, ok bool, err error) {
	admissibleFrom := func(i int) (bool, error) {
		g := causality.Build(t, causality.Options{
			DropMessage: func(m sim.Message) bool {
				pos := t.EventAt(m.From, m.SendStep)
				return pos >= 0 && pos < i
			},
		})
		v, err := check.ABC(g, xi)
		if err != nil {
			return false, err
		}
		return v.Admissible, nil
	}
	// Dropping more messages only removes cycles, so admissibility is
	// monotone in i: binary search for the smallest admissible boundary.
	lo, hi := 0, len(t.Events) // invariant: hi admissible (vacuously), lo-1 n/a
	if a, err := admissibleFrom(0); err != nil {
		return 0, false, err
	} else if a {
		return 0, true, nil
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		a, err := admissibleFrom(mid)
		if err != nil {
			return 0, false, err
		}
		if a {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}

// EventualDelays is a delay policy for building ◇ABC executions: chaotic
// (unbounded-ratio) delays strictly before the switch time, well-behaved
// delays afterwards.
type EventualDelays struct {
	Before, After sim.DelayPolicy
	Switch        sim.Time
}

// Delay implements sim.DelayPolicy.
func (e EventualDelays) Delay(m sim.Message, rng *rand.Rand) sim.Time {
	if m.SendTime.Less(e.Switch) {
		return e.Before.Delay(m, rng)
	}
	return e.After.Delay(m, rng)
}

// DoublingBoundary returns the round-boundary function for eventual
// lock-step: round r starts at tick x0·(2^r − 1), i.e. round r lasts
// x0·2^r phases. Once x0·2^r >= 2Ξ (for the true, possibly unknown,
// eventually holding Ξ) every later round is a correct lock-step round.
func DoublingBoundary(x0 int64) func(r int) int64 {
	return func(r int) int64 {
		if r >= 62 {
			panic("variants: doubling boundary overflow")
		}
		return x0 * ((int64(1) << uint(r)) - 1)
	}
}

// FirstCompleteRound scans lock-step processes and returns the smallest
// round r0 such that every correct process's round computations from r0
// on received the round messages of all correct processes; ok is false
// when no such suffix exists (some process's last observed round is still
// incomplete).
func FirstCompleteRound(procs []sim.Process, faults map[sim.ProcessID]sim.Fault) (r0 int, ok bool) {
	worstIncomplete := -1
	maxRound := -1
	for id, pr := range procs {
		if _, bad := faults[sim.ProcessID(id)]; bad {
			continue
		}
		ls, isLS := pr.(*lockstep.Proc)
		if !isLS {
			return 0, false
		}
		for _, rec := range ls.Records() {
			if rec.R > maxRound {
				maxRound = rec.R
			}
			for q := range rec.Received {
				if _, bad := faults[sim.ProcessID(q)]; bad {
					continue
				}
				if rec.Received[q] == nil && rec.R > worstIncomplete {
					worstIncomplete = rec.R
				}
			}
		}
	}
	if worstIncomplete >= maxRound {
		return 0, false
	}
	return worstIncomplete + 1, true
}
