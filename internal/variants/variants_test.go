package variants

import (
	"testing"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/lockstep"
	"repro/internal/rat"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KnownPerpetual: "ABC", UnknownPerpetual: "?ABC",
		KnownEventual: "◇ABC", UnknownEventual: "?◇ABC",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestXiLearnerValidation(t *testing.T) {
	if _, err := NewXiLearner(rat.One, rat.One); err == nil {
		t.Error("initial estimate 1 accepted")
	}
	if _, err := NewXiLearner(rat.FromInt(2), rat.Zero); err == nil {
		t.Error("zero margin accepted")
	}
}

func TestXiLearnerConverges(t *testing.T) {
	// True Ξ is 2; start the estimate at 11/10. Observing executions whose
	// ratios approach 2 bumps the estimate finitely often, after which it
	// never changes.
	l, err := NewXiLearner(rat.New(11, 10), rat.New(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	trueXi := rat.FromInt(2)

	// Fig. 3's graph has critical ratio exactly 2 (inadmissible at Ξ=2);
	// use Fig. 1 (ratio 5/4) and a near-Ξ prover-style graph instead,
	// both admissible for the true Ξ.
	graphs := []*causality.Graph{
		scenario.BuildFig1().Graph, // ratio 5/4
		scenario.BuildFig2().Graph, // ratio 3 -- NOT admissible at 2; excluded below
	}
	_ = graphs

	observed := []*causality.Graph{
		scenario.BuildFig1().Graph, // 5/4
		scenario.BuildFig1().Graph, // repeat: no bump the second time
	}
	bumps := 0
	for _, g := range observed {
		raised, err := l.Observe(g)
		if err != nil {
			t.Fatal(err)
		}
		if raised {
			bumps++
		}
	}
	if bumps != 1 {
		t.Errorf("bumps = %d, want 1 (first sight of ratio 5/4 raises 11/10)", bumps)
	}
	if !l.Estimate().Greater(rat.New(5, 4)) {
		t.Errorf("estimate %v not above observed ratio 5/4", l.Estimate())
	}
	if !l.Estimate().Less(trueXi) {
		t.Errorf("estimate %v overshot the true Ξ=2", l.Estimate())
	}
	if l.Bumps() != 1 {
		t.Errorf("Bumps() = %d", l.Bumps())
	}
}

func TestFindGSTImmediate(t *testing.T) {
	// An everywhere-admissible trace has GST index 0.
	fig := scenario.BuildFig1()
	idx, ok, err := FindGST(fig.Trace, rat.FromInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if !ok || idx != 0 {
		t.Errorf("GST = %d ok=%v, want 0 true", idx, ok)
	}
}

func TestFindGSTAfterViolation(t *testing.T) {
	// Fig. 3's trace violates Ξ=2 via a cycle whose messages are all sent
	// early; exempting the prefix makes it admissible. GST must be
	// positive and at most the full trace length.
	fig := scenario.BuildFig3()
	idx, ok, err := FindGST(fig.Trace, rat.FromInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no GST found")
	}
	if idx == 0 {
		t.Error("violating trace reported perpetually admissible")
	}
	if idx > len(fig.Trace.Events) {
		t.Errorf("GST index %d out of range", idx)
	}
	// Verify the defining property: admissible from idx, not from idx-1.
	dropBefore := func(i int) bool {
		g := causality.Build(fig.Trace, causality.Options{
			DropMessage: func(m sim.Message) bool {
				pos := fig.Trace.EventAt(m.From, m.SendStep)
				return pos >= 0 && pos < i
			},
		})
		v, err := check.ABC(g, rat.FromInt(2))
		if err != nil {
			t.Fatal(err)
		}
		return v.Admissible
	}
	if !dropBefore(idx) {
		t.Error("not admissible from reported GST")
	}
	if idx > 0 && dropBefore(idx-1) {
		t.Error("GST not minimal")
	}
}

// ◇ABC + doubling rounds: chaotic delays before the switch, Θ-delays
// after; eventual lock-step holds from some round on.
func TestEventualLockStep(t *testing.T) {
	n, f := 4, 1
	faults := map[sim.ProcessID]sim.Fault(nil)
	newApp := func(p sim.ProcessID) lockstep.App { return &recorderApp{} }
	res, err := sim.Run(sim.Config{
		N: n,
		Spawn: func(id sim.ProcessID) sim.Process {
			return lockstep.NewWithBoundary(n, f, newApp(id), DoublingBoundary(2))
		},
		Delays: EventualDelays{
			Before: sim.UniformDelay{Min: rat.Zero, Max: rat.FromInt(8)}, // ratio unbounded
			After:  sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
			Switch: rat.FromInt(30),
		},
		Seed:      3,
		Until:     lockstep.AllReachedRound(7, nil),
		MaxEvents: 300000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("truncated before round 7")
	}
	r0, ok := FirstCompleteRound(res.Procs, faults)
	if !ok {
		t.Fatal("lock-step never stabilized")
	}
	t.Logf("lock-step stabilized from round %d", r0)
	if r0 > 7 {
		t.Errorf("stabilization round %d beyond observed rounds", r0)
	}
}

// In the perpetual model, doubling rounds are correct from round 0 once
// x0 >= 2Ξ... even with x0 below 2Ξ, early short rounds may miss messages
// but later rounds are complete — FirstCompleteRound captures exactly
// this.
func TestDoublingBoundaryValues(t *testing.T) {
	b := DoublingBoundary(2)
	want := []int64{0, 2, 6, 14, 30}
	for r, w := range want {
		if got := b(r); got != w {
			t.Errorf("boundary(%d) = %d, want %d", r, got, w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("no overflow panic")
		}
	}()
	b(62)
}

func TestEventualDelaysSwitch(t *testing.T) {
	pol := EventualDelays{
		Before: sim.ConstantDelay{D: rat.FromInt(10)},
		After:  sim.ConstantDelay{D: rat.One},
		Switch: rat.FromInt(5),
	}
	early := sim.Message{SendTime: rat.FromInt(4)}
	late := sim.Message{SendTime: rat.FromInt(5)}
	if !pol.Delay(early, nil).Equal(rat.FromInt(10)) {
		t.Error("pre-switch delay wrong")
	}
	if !pol.Delay(late, nil).Equal(rat.One) {
		t.Error("post-switch delay wrong")
	}
}

// recorderApp is a minimal lock-step app.
type recorderApp struct{ rounds int }

func (a *recorderApp) Init(self sim.ProcessID, n int) any { return int(self) }
func (a *recorderApp) Round(r int, received []any) any {
	a.rounds++
	return r
}

func TestFirstCompleteRoundDetectsHole(t *testing.T) {
	// Ensure the monitor reports ok=false when the last round is broken.
	res, err := sim.Run(sim.Config{
		N: 4,
		Spawn: func(id sim.ProcessID) sim.Process {
			return lockstep.NewWithBoundary(4, 1, &recorderApp{}, DoublingBoundary(2))
		},
		Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:      4,
		Until:     lockstep.AllReachedRound(4, nil),
		MaxEvents: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	r0, ok := FirstCompleteRound(res.Procs, nil)
	if !ok {
		t.Fatal("well-behaved run has no complete suffix")
	}
	// Fabricate a hole in the final round of one process.
	ls := res.Procs[0].(*lockstep.Proc)
	recs := ls.Records()
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	recs[len(recs)-1].Received[1] = nil
	if _, ok := FirstCompleteRound(res.Procs, nil); ok {
		t.Error("hole in final round not detected")
	}
	_ = r0
}

func TestUnknownEventualComposition(t *testing.T) {
	// ?◇ABC: learn Ξ̂ on the post-GST suffix of an eventual execution.
	fig := scenario.BuildFig3()
	xi := rat.FromInt(2)
	gst, ok, err := FindGST(fig.Trace, xi)
	if err != nil || !ok {
		t.Fatalf("FindGST: %v %v", ok, err)
	}
	// Build the post-GST graph and let a learner observe it: no bump
	// needed beyond ratios present after stabilization.
	g := causality.Build(fig.Trace, causality.Options{
		DropMessage: func(m sim.Message) bool {
			pos := fig.Trace.EventAt(m.From, m.SendStep)
			return pos >= 0 && pos < gst
		},
	})
	l, err := NewXiLearner(xi, rat.New(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	raised, err := l.Observe(g)
	if err != nil {
		t.Fatal(err)
	}
	if raised {
		t.Error("post-GST graph contradicted the true Ξ")
	}
}
