package variants

import (
	"fmt"

	"repro/internal/lockstep"
	"repro/internal/rat"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The variants workload is the ◇ABC eventual lock-step construction of
// Section 6: doubling round durations over chaotic delays that become
// well-behaved at the switch time. It declares no "xi" parameter — the
// perpetual synchrony condition deliberately fails before the switch —
// so sweeps check admissibility only when they set an explicit Ξ. The
// domain verdict is eventual lock-step: from some round on, every correct
// round computation received all correct round messages.
func init() {
	workload.Register(workload.Source{
		Name: "variants",
		Doc:  "◇ABC eventual lock-step via doubling rounds (Section 6): chaos until the switch, stability after",
		Params: append([]workload.Param{
			{Name: "n", Kind: workload.Int, Default: "4", Doc: "number of processes (n >= 3f+1)"},
			{Name: "f", Kind: workload.Int, Default: "1", Doc: "Byzantine fault bound"},
			{Name: "x0", Kind: workload.Int64, Default: "2", Doc: "initial round length in phases (round r lasts x0·2^r)"},
			{Name: "target", Kind: workload.Int, Default: "5", Doc: "round every correct process must start"},
			{Name: "chaosmax", Kind: workload.Rational, Default: "5", Doc: "maximum delay before the switch (minimum 0: zero-delay chaos)"},
			{Name: "switch", Kind: workload.Rational, Default: "12", Doc: "time at which delays become well-behaved"},
			{Name: "min", Kind: workload.Rational, Default: "1", Doc: "minimum delay after the switch"},
			{Name: "max", Kind: workload.Rational, Default: "3/2", Doc: "maximum delay after the switch"},
			{Name: "maxevents", Kind: workload.Int, Default: "300000", Doc: "receive-event budget"},
		}, append(workload.TraceParams(), workload.ShardParams()...)...),
		Job: func(v workload.Values, seed int64) (runner.Job, error) {
			n, f := v.Int("n"), v.Int("f")
			if f < 0 || n < 3*f+1 {
				return runner.Job{}, fmt.Errorf("variants: need n >= 3f+1, got n=%d f=%d", n, f)
			}
			x0 := v.Int64("x0")
			if x0 <= 0 {
				return runner.Job{}, fmt.Errorf("variants: x0 = %d must be positive", x0)
			}
			cfg := sim.Config{
				N: n,
				Spawn: func(sim.ProcessID) sim.Process {
					return lockstep.NewWithBoundary(n, f, lockstep.EchoApp{}, DoublingBoundary(x0))
				},
				Delays: EventualDelays{
					Before: sim.UniformDelay{Min: rat.Zero, Max: v.Rat("chaosmax")},
					After:  sim.UniformDelay{Min: v.Rat("min"), Max: v.Rat("max")},
					Switch: v.Rat("switch"),
				},
				Seed:      seed,
				Until:     lockstep.AllReachedRound(v.Int("target"), nil),
				MaxEvents: v.Int("maxevents"),
			}
			return runner.Job{Cfg: &cfg}, nil
		},
		Verdict: func(v workload.Values, r *runner.JobResult) error {
			// Eventual lock-step does not presuppose perpetual
			// admissibility (this is the ◇ model), so no ABC verdict is
			// required — but a sweep that did check and found the suffix
			// claim's precondition violated still skips.
			if !r.CompletedAdmissible(false) {
				return nil
			}
			if _, ok := FirstCompleteRound(r.Sim.Procs, nil); !ok {
				return fmt.Errorf("variants: no stable round suffix — eventual lock-step failed")
			}
			return nil
		},
	})
}
