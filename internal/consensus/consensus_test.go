package consensus

import (
	"testing"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/lockstep"
	"repro/internal/rat"
	"repro/internal/sim"
)

// runConsensus runs a consensus app over lock-step rounds and returns the
// deciders (nil for faulty slots) plus the trace.
func runConsensus(t *testing.T, n, f, rounds int, inputs []int,
	mkApp func(p sim.ProcessID) lockstep.App,
	faults map[sim.ProcessID]sim.Fault, seed int64) ([]Decider, *sim.Trace) {
	t.Helper()
	m := core.MustModel(rat.FromInt(2))
	res, err := sim.Run(sim.Config{
		N:         n,
		Spawn:     lockstep.Spawner(m, n, f, mkApp),
		Faults:    faults,
		Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:      seed,
		Until:     lockstep.AllReachedRound(rounds, faults),
		MaxEvents: 400000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("truncated before deciding")
	}
	apps := make([]Decider, n)
	for id, pr := range res.Procs {
		if _, bad := faults[sim.ProcessID(id)]; bad {
			continue
		}
		apps[id] = pr.(*lockstep.Proc).App().(Decider)
	}
	return apps, res.Trace
}

func spec(inputs []int, faults map[sim.ProcessID]sim.Fault) Spec {
	init := make(map[sim.ProcessID]int, len(inputs))
	for i, v := range inputs {
		init[sim.ProcessID(i)] = v
	}
	return Spec{Initial: init, Faults: faults}
}

func TestFloodSetCrash(t *testing.T) {
	cases := []struct {
		name   string
		n, f   int
		inputs []int
		faults map[sim.ProcessID]sim.Fault
		seed   int64
	}{
		{"fault-free", 4, 1, []int{3, 1, 2, 5}, nil, 1},
		{"one crash", 4, 1, []int{3, 1, 2, 5}, map[sim.ProcessID]sim.Fault{2: sim.Crash(3)}, 2},
		// The lock-step substrate is Algorithm 1, so n >= 3f+1 is needed
		// even though FloodSet alone would tolerate any n > f crashes.
		{"two crashes", 7, 2, []int{4, 4, 1, 2, 9, 4, 8},
			map[sim.ProcessID]sim.Fault{0: sim.Crash(2), 4: sim.Crash(5)}, 3},
		{"unanimous", 4, 1, []int{7, 7, 7, 7}, map[sim.ProcessID]sim.Fault{1: sim.Crash(4)}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			apps, _ := runConsensus(t, tc.n, tc.f, FloodSetRounds(tc.f), tc.inputs,
				func(p sim.ProcessID) lockstep.App { return NewFloodSet(tc.f, tc.inputs[p]) },
				tc.faults, tc.seed)
			if err := spec(tc.inputs, tc.faults).Check(apps); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEIGByzantine(t *testing.T) {
	m := core.MustModel(rat.FromInt(2))
	cases := []struct {
		name   string
		n, f   int
		inputs []int
		mkByz  func(n, f int, id sim.ProcessID) sim.Process
		seed   int64
	}{
		{
			"fault-free", 4, 1, []int{1, 0, 1, 0},
			nil, 1,
		},
		{
			"silent", 4, 1, []int{1, 0, 1, 1},
			func(n, f int, id sim.ProcessID) sim.Process { return nil }, // silent via Crash
			2,
		},
		{
			"equivocator", 4, 1, []int{1, 1, 0, 1},
			func(n, f int, id sim.ProcessID) sim.Process {
				return NewTwoFaced(m, n, f, SplitEIG(n, id, 0, 1))
			},
			3,
		},
		{
			"n7f2 mixed", 7, 2, []int{1, 0, 1, 0, 1, 0, 1},
			func(n, f int, id sim.ProcessID) sim.Process {
				if id%2 == 0 {
					return nil
				}
				return NewTwoFaced(m, n, f, SplitEIG(n, id, 0, 1))
			},
			4,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faults := map[sim.ProcessID]sim.Fault{}
			for i := 0; i < tc.f; i++ {
				id := sim.ProcessID(tc.n - 1 - i)
				if tc.mkByz == nil {
					continue
				}
				if byz := tc.mkByz(tc.n, tc.f, id); byz != nil {
					faults[id] = sim.ByzantineFault(byz)
				} else {
					faults[id] = sim.Silent()
				}
			}
			apps, _ := runConsensus(t, tc.n, tc.f, EIGRounds(tc.f), tc.inputs,
				func(p sim.ProcessID) lockstep.App { return NewEIG(tc.n, tc.f, tc.inputs[p]) },
				faults, tc.seed)
			if err := spec(tc.inputs, faults).Check(apps); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEIGUnanimousValidityUnderAttack(t *testing.T) {
	// All correct processes start with 1; the equivocator must not be able
	// to force 0.
	m := core.MustModel(rat.FromInt(2))
	n, f := 4, 1
	inputs := []int{1, 1, 1, 1}
	faults := map[sim.ProcessID]sim.Fault{
		3: sim.ByzantineFault(NewTwoFaced(m, n, f, SplitEIG(n, 3, 0, 0))),
	}
	apps, _ := runConsensus(t, n, f, EIGRounds(f), inputs,
		func(p sim.ProcessID) lockstep.App { return NewEIG(n, f, inputs[p]) },
		faults, 5)
	if err := spec(inputs, faults).Check(apps); err != nil {
		t.Fatal(err)
	}
	for id, app := range apps {
		if app != nil && app.Decision() != 1 {
			t.Fatalf("p%d decided %d despite unanimous correct input 1", id, app.Decision())
		}
	}
}

func TestPhaseKingByzantine(t *testing.T) {
	m := core.MustModel(rat.FromInt(2))
	cases := []struct {
		name   string
		n, f   int
		inputs []int
		seed   int64
	}{
		{"n5f1", 5, 1, []int{1, 0, 1, 0, 1}, 1},
		{"n9f2", 9, 2, []int{1, 0, 1, 0, 1, 0, 1, 1, 0}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faults := map[sim.ProcessID]sim.Fault{}
			for i := 0; i < tc.f; i++ {
				id := sim.ProcessID(tc.n - 1 - i)
				faults[id] = sim.ByzantineFault(NewTwoFaced(m, tc.n, tc.f, SplitVotes(0, 1)))
			}
			apps, _ := runConsensus(t, tc.n, tc.f, PhaseKingRounds(tc.f), tc.inputs,
				func(p sim.ProcessID) lockstep.App { return NewPhaseKing(tc.n, tc.f, tc.inputs[p]) },
				faults, tc.seed)
			if err := spec(tc.inputs, faults).Check(apps); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPhaseKingResilienceGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPhaseKing(4, 1, 0) did not panic (needs n > 4f)")
		}
	}()
	NewPhaseKing(4, 1, 0)
}

func TestConsensusExecutionAdmissible(t *testing.T) {
	// The whole stack — consensus over lock-step over clock sync — still
	// produces ABC-admissible executions.
	n, f := 4, 1
	inputs := []int{1, 0, 0, 1}
	apps, trace := runConsensus(t, n, f, EIGRounds(f), inputs,
		func(p sim.ProcessID) lockstep.App { return NewEIG(n, f, inputs[p]) },
		nil, 6)
	if err := spec(inputs, nil).Check(apps); err != nil {
		t.Fatal(err)
	}
	g := causality.Build(trace, causality.Options{})
	v, err := check.ABC(g, rat.FromInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admissible {
		t.Fatalf("consensus execution not admissible: %v", v.Witness)
	}
}

func TestSpecDetectsViolations(t *testing.T) {
	s := Spec{Initial: map[sim.ProcessID]int{0: 1, 1: 1}}
	mk := func(decided bool, v int) Decider { return &fakeDecider{decided, v} }
	if err := s.Check([]Decider{mk(true, 1), mk(true, 0)}); err == nil {
		t.Error("disagreement not caught")
	}
	if err := s.Check([]Decider{mk(true, 1), mk(false, 0)}); err == nil {
		t.Error("non-termination not caught")
	}
	if err := s.Check([]Decider{mk(true, 0), mk(true, 0)}); err == nil {
		t.Error("validity violation not caught")
	}
	if err := s.Check([]Decider{mk(true, 1), mk(true, 1)}); err != nil {
		t.Errorf("valid outcome rejected: %v", err)
	}
}

type fakeDecider struct {
	d bool
	v int
}

func (f *fakeDecider) Decided() bool { return f.d }
func (f *fakeDecider) Decision() int { return f.v }

func TestSpecCheckEdgeCases(t *testing.T) {
	mk := func(decided bool, v int) Decider { return &fakeDecider{decided, v} }
	byz := map[sim.ProcessID]sim.Fault{0: sim.Silent(), 1: sim.Silent()}

	t.Run("zero correct", func(t *testing.T) {
		s := Spec{Initial: map[sim.ProcessID]int{0: 1, 1: 0}, Faults: byz}
		err := s.Check([]Decider{nil, nil})
		if err == nil || err.Error() != "consensus: no correct processes" {
			t.Errorf("got %v, want the no-correct-processes error", err)
		}
	})
	t.Run("single correct decides", func(t *testing.T) {
		s := Spec{Initial: map[sim.ProcessID]int{0: 1, 1: 0, 2: 7}, Faults: byz}
		if err := s.Check([]Decider{nil, nil, mk(true, 7)}); err != nil {
			t.Errorf("single deciding correct process rejected: %v", err)
		}
		if err := s.Check([]Decider{nil, nil, mk(false, 0)}); err == nil {
			t.Error("single non-deciding correct process accepted")
		}
	})
	t.Run("byzantine entries in Initial ignored", func(t *testing.T) {
		// Faulty inputs are present in Initial (the registry reconstructs
		// inputs for every ID) but must not weaken unanimity: the correct
		// processes are unanimous on 1, so deciding 0 is a violation even
		// though the Byzantine entries held 0.
		s := Spec{
			Initial: map[sim.ProcessID]int{0: 0, 1: 0, 2: 1, 3: 1},
			Faults:  byz,
		}
		if err := s.Check([]Decider{nil, nil, mk(true, 0), mk(true, 0)}); err == nil {
			t.Error("validity violation masked by Byzantine inputs")
		}
		if err := s.Check([]Decider{nil, nil, mk(true, 1), mk(true, 1)}); err != nil {
			t.Errorf("valid outcome rejected: %v", err)
		}
	})
	t.Run("agreement names lowest pair", func(t *testing.T) {
		s := Spec{Initial: map[sim.ProcessID]int{0: 5, 1: 5, 2: 5}}
		err := s.Check([]Decider{mk(true, 5), mk(true, 5), mk(true, 4)})
		want := "consensus: agreement violated: p0 decided 5, p2 decided 4"
		if err == nil || err.Error() != want {
			t.Errorf("got %v, want %q", err, want)
		}
	})
}

// TestSpecCheckDeterministicErrors pins the satellite-1 fix: Check
// examines processes in ascending ID order and names the lowest
// disagreeing pair, so identical inputs give byte-identical error
// strings on every call — the property the registry conformance suite
// relies on when comparing fleet CheckErr text across worker counts.
func TestSpecCheckDeterministicErrors(t *testing.T) {
	mk := func(v int) Decider { return &fakeDecider{true, v} }
	s := Spec{Initial: map[sim.ProcessID]int{0: 1, 1: 1, 2: 1, 3: 1, 4: 1}}
	apps := []Decider{mk(1), mk(0), mk(1), mk(0), mk(2)}
	want := "consensus: agreement violated: p0 decided 1, p1 decided 0"
	for i := 0; i < 100; i++ {
		err := s.Check(apps)
		if err == nil || err.Error() != want {
			t.Fatalf("call %d: got %v, want %q", i, err, want)
		}
	}
	// Validity error is equally pinned.
	sv := Spec{Initial: map[sim.ProcessID]int{0: 3, 1: 3}}
	wantV := "consensus: validity violated: unanimous input 3 but decided 0"
	for i := 0; i < 100; i++ {
		err := sv.Check([]Decider{mk(0), mk(0)})
		if err == nil || err.Error() != wantV {
			t.Fatalf("call %d: got %v, want %q", i, err, wantV)
		}
	}
}

// TestAdversaryDeterministicPerSeed pins that the Byzantine consensus
// adversaries produce bit-identical executions per seed: TwoFaced with
// both split payloads, across each supported algorithm.
func TestAdversaryDeterministicPerSeed(t *testing.T) {
	m := core.MustModel(rat.FromInt(2))
	run := func(seed int64, algo string) uint64 {
		n, f := 5, 1
		inputs := []int{1, 0, 1, 0, 1}
		var byz sim.Process
		var mkApp func(p sim.ProcessID) lockstep.App
		rounds := 0
		switch algo {
		case "eig":
			byz = NewTwoFaced(m, n, f, SplitEIG(n, 4, 0, 1))
			mkApp = func(p sim.ProcessID) lockstep.App { return NewEIG(n, f, inputs[p]) }
			rounds = EIGRounds(f)
		case "phaseking":
			byz = NewTwoFaced(m, n, f, SplitVotes(0, 1))
			mkApp = func(p sim.ProcessID) lockstep.App { return NewPhaseKing(n, f, inputs[p]) }
			rounds = PhaseKingRounds(f)
		}
		faults := map[sim.ProcessID]sim.Fault{4: sim.ByzantineFault(byz)}
		_, trace := runConsensus(t, n, f, rounds, inputs, mkApp, faults, seed)
		return trace.Hash()
	}
	for _, algo := range []string{"eig", "phaseking"} {
		for seed := int64(1); seed <= 3; seed++ {
			a, b := run(seed, algo), run(seed, algo)
			if a != b {
				t.Errorf("%s seed %d: trace hashes differ (%016x vs %016x)", algo, seed, a, b)
			}
		}
		if run(1, algo) == run(2, algo) {
			t.Errorf("%s: seeds 1 and 2 produced identical traces — seed not applied", algo)
		}
	}
}
