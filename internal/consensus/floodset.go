package consensus

import (
	"repro/internal/sim"
)

// SetMsg is a FloodSet round message: the sorted set of values seen.
type SetMsg []int

// FloodSet is the classic crash-fault consensus: every process floods the
// set of values it has seen for f+1 rounds, then decides the minimum.
// With at most f crash faults there is at least one clean round, after
// which all correct processes hold the same set.
type FloodSet struct {
	f       int
	seen    map[int]bool
	decided bool
	dec     int
}

// NewFloodSet returns a FloodSet instance with the given input.
func NewFloodSet(f, input int) *FloodSet {
	return &FloodSet{f: f, seen: map[int]bool{input: true}}
}

var _ Decider = (*FloodSet)(nil)

// Decided implements Decider.
func (fs *FloodSet) Decided() bool { return fs.decided }

// Decision implements Decider.
func (fs *FloodSet) Decision() int { return fs.dec }

// Init implements lockstep.App.
func (fs *FloodSet) Init(self sim.ProcessID, n int) any {
	return SetMsg(sortedInts(fs.seen))
}

// Round implements lockstep.App.
func (fs *FloodSet) Round(r int, received []any) any {
	if fs.decided {
		return SetMsg{}
	}
	for _, payload := range received {
		if s, ok := payload.(SetMsg); ok {
			for _, v := range s {
				fs.seen[v] = true
			}
		}
	}
	if r == fs.f+1 {
		vals := sortedInts(fs.seen)
		fs.dec = vals[0]
		fs.decided = true
		return SetMsg{}
	}
	return SetMsg(sortedInts(fs.seen))
}

// FloodSetRounds returns the number of lock-step rounds FloodSet needs.
func FloodSetRounds(f int) int { return f + 1 }
