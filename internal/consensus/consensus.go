// Package consensus solves consensus on top of the lock-step round
// simulation of internal/lockstep — the paper's headline consequence
// (Sections 2 and 6): since the ABC model implements lock-step rounds,
// "any Byzantine fault-tolerant synchronous consensus algorithm" runs
// unchanged on top.
//
// Three classic synchronous algorithms are provided as lockstep.App
// implementations:
//
//   - EIG: exponential information gathering, f+1 rounds, optimal
//     resilience n >= 3f+1 against Byzantine faults (exponential messages);
//   - PhaseKing: f+1 phases of two rounds, polynomial messages, resilience
//     n > 4f against Byzantine faults;
//   - FloodSet: f+1 rounds against crash faults.
//
// The Spec monitors check agreement, validity, and termination over the
// final process states.
package consensus

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Decider is implemented by all consensus apps.
type Decider interface {
	Decided() bool
	Decision() int
}

// DefaultValue is the fallback decision used by the Byzantine algorithms
// when no majority exists.
const DefaultValue = 0

// Spec checks the consensus safety and liveness properties over the final
// application states. initial maps each correct process to its input.
type Spec struct {
	Initial map[sim.ProcessID]int
	Faults  map[sim.ProcessID]sim.Fault
}

// Check verifies termination (all correct decided), agreement (equal
// decisions), and validity (if all correct inputs are equal, that value is
// decided). apps is indexed by process ID; faulty entries are ignored.
//
// Check is deterministic down to its error strings: processes are
// examined in ascending ID order, the agreement baseline is the decision
// of the lowest-ID correct process, and a violation names the lowest
// disagreeing pair. Identical inputs therefore produce byte-identical
// errors, which the registry conformance suite relies on when it pins
// fleet==serial JobResult.CheckErr text across worker counts.
func (s Spec) Check(apps []Decider) error {
	// The agreement baseline: decision of the lowest-ID correct process.
	firstID := sim.ProcessID(-1)
	var first int
	for id, app := range apps {
		p := sim.ProcessID(id)
		if _, bad := s.Faults[p]; bad {
			continue
		}
		if app == nil || !app.Decided() {
			return fmt.Errorf("consensus: correct process %d did not decide", id)
		}
		if firstID < 0 {
			firstID, first = p, app.Decision()
			continue
		}
		if d := app.Decision(); d != first {
			return fmt.Errorf("consensus: agreement violated: p%d decided %d, p%d decided %d",
				firstID, first, p, d)
		}
	}
	if firstID < 0 {
		return fmt.Errorf("consensus: no correct processes")
	}
	// Validity: unanimous correct inputs force the decision. The witness
	// value is anchored at the lowest-ID correct entry so the error text
	// does not depend on map iteration order.
	unanimous := true
	var v int
	vSet := false
	for p := sim.ProcessID(0); int(p) < len(apps); p++ {
		in, ok := s.Initial[p]
		if !ok {
			continue
		}
		if _, bad := s.Faults[p]; bad {
			continue
		}
		if !vSet {
			v, vSet = in, true
		} else if in != v {
			unanimous = false
		}
	}
	if unanimous && vSet && first != v {
		return fmt.Errorf("consensus: validity violated: unanimous input %d but decided %d", v, first)
	}
	return nil
}

// sortedInts returns a sorted copy, used for canonical set messages.
func sortedInts(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
