// Package consensus solves consensus on top of the lock-step round
// simulation of internal/lockstep — the paper's headline consequence
// (Sections 2 and 6): since the ABC model implements lock-step rounds,
// "any Byzantine fault-tolerant synchronous consensus algorithm" runs
// unchanged on top.
//
// Three classic synchronous algorithms are provided as lockstep.App
// implementations:
//
//   - EIG: exponential information gathering, f+1 rounds, optimal
//     resilience n >= 3f+1 against Byzantine faults (exponential messages);
//   - PhaseKing: f+1 phases of two rounds, polynomial messages, resilience
//     n > 4f against Byzantine faults;
//   - FloodSet: f+1 rounds against crash faults.
//
// The Spec monitors check agreement, validity, and termination over the
// final process states.
package consensus

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Decider is implemented by all consensus apps.
type Decider interface {
	Decided() bool
	Decision() int
}

// DefaultValue is the fallback decision used by the Byzantine algorithms
// when no majority exists.
const DefaultValue = 0

// Spec checks the consensus safety and liveness properties over the final
// application states. initial maps each correct process to its input.
type Spec struct {
	Initial map[sim.ProcessID]int
	Faults  map[sim.ProcessID]sim.Fault
}

// Check verifies termination (all correct decided), agreement (equal
// decisions), and validity (if all correct inputs are equal, that value is
// decided). apps is indexed by process ID; faulty entries are ignored.
func (s Spec) Check(apps []Decider) error {
	decided := make(map[sim.ProcessID]int)
	for id, app := range apps {
		p := sim.ProcessID(id)
		if _, bad := s.Faults[p]; bad {
			continue
		}
		if app == nil || !app.Decided() {
			return fmt.Errorf("consensus: correct process %d did not decide", id)
		}
		decided[p] = app.Decision()
	}
	if len(decided) == 0 {
		return fmt.Errorf("consensus: no correct processes")
	}
	var first int
	var firstSet bool
	for p, d := range decided {
		if !firstSet {
			first, firstSet = d, true
			continue
		}
		if d != first {
			return fmt.Errorf("consensus: agreement violated: p%d decided %d, others %d", p, d, first)
		}
	}
	// Validity: unanimous correct inputs force the decision.
	unanimous := true
	var v int
	vSet := false
	for p, in := range s.Initial {
		if _, bad := s.Faults[p]; bad {
			continue
		}
		if !vSet {
			v, vSet = in, true
		} else if in != v {
			unanimous = false
		}
	}
	if unanimous && vSet && first != v {
		return fmt.Errorf("consensus: validity violated: unanimous input %d but decided %d", v, first)
	}
	return nil
}

// sortedInts returns a sorted copy, used for canonical set messages.
func sortedInts(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
