package consensus

import (
	"repro/internal/sim"
)

// EIGMsg carries the exponential-information-gathering tree level
// broadcast each round: label (a sequence of distinct process IDs, encoded
// one byte per ID) to relayed value.
type EIGMsg map[string]int

// EIG is exponential information gathering Byzantine consensus: f+1
// lock-step rounds, n >= 3f+1. After the last round each process resolves
// its EIG tree bottom-up with strict majorities and decides the root.
type EIG struct {
	n, f    int
	self    sim.ProcessID
	input   int
	val     map[string]int // EIG tree: label -> stored value
	decided bool
	dec     int
}

// NewEIG returns an EIG instance with the given input value.
func NewEIG(n, f, input int) *EIG {
	return &EIG{n: n, f: f, input: input, val: map[string]int{"": input}}
}

var _ Decider = (*EIG)(nil)

// Decided implements Decider.
func (e *EIG) Decided() bool { return e.decided }

// Decision implements Decider.
func (e *EIG) Decision() int { return e.dec }

// Init implements lockstep.App: round 0 broadcasts the root value.
func (e *EIG) Init(self sim.ProcessID, n int) any {
	e.self = self
	return EIGMsg{"": e.input}
}

// Round implements lockstep.App. In lock-step round r (1-based), the
// received round r−1 messages carry level r−1 labels; storing them under
// label·sender fills tree level r.
func (e *EIG) Round(r int, received []any) any {
	if e.decided {
		return EIGMsg{}
	}
	for q, payload := range received {
		msg, ok := payload.(EIGMsg)
		if !ok {
			continue // faulty sender: leave subtree unset (default applies)
		}
		for label, v := range msg {
			if len(label) != r-1 || !validLabel(label, e.n) || containsID(label, sim.ProcessID(q)) {
				continue
			}
			child := label + string(rune(q))
			if _, dup := e.val[child]; !dup {
				e.val[child] = v
			}
		}
	}
	if r == e.f+1 {
		e.dec = e.resolve("")
		e.decided = true
		return EIGMsg{}
	}
	// Broadcast level r entries not containing self.
	out := EIGMsg{}
	for label, v := range e.val {
		if len(label) == r && !containsID(label, e.self) {
			out[label] = v
		}
	}
	return out
}

// resolve computes newval(label): stored value at the deepest level,
// otherwise the strict majority of children (DefaultValue when none).
func (e *EIG) resolve(label string) int {
	if len(label) == e.f+1 {
		if v, ok := e.val[label]; ok {
			return v
		}
		return DefaultValue
	}
	counts := make(map[int]int)
	children := 0
	for q := 0; q < e.n; q++ {
		if containsID(label, sim.ProcessID(q)) {
			continue
		}
		children++
		counts[e.resolve(label+string(rune(q)))]++
	}
	for v, c := range counts {
		if 2*c > children {
			return v
		}
	}
	return DefaultValue
}

// validLabel reports whether label encodes distinct process IDs < n.
func validLabel(label string, n int) bool {
	seen := make(map[rune]bool, len(label))
	for _, r := range label {
		if int(r) < 0 || int(r) >= n || seen[r] {
			return false
		}
		seen[r] = true
	}
	return true
}

func containsID(label string, id sim.ProcessID) bool {
	for _, r := range label {
		if sim.ProcessID(r) == id {
			return true
		}
	}
	return false
}
