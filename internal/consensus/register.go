package consensus

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/lockstep"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The consensus workload is the paper's headline consequence (Sections 2
// and 6): a synchronous Byzantine consensus algorithm running unchanged
// on ABC lock-step rounds. The algo parameter selects FloodSet (crash
// faults, f+1 rounds), PhaseKing (Byzantine, n > 4f, polynomial
// messages), or EIG (Byzantine, n >= 3f+1, exponential messages); the
// shared fault axis (workload.FaultParams) injects crash-at-step,
// Byzantine-equivocator, and scripted-noise adversaries, and the domain
// verdict is Spec.Check — termination, agreement, validity — over the
// final deciders. FloodSet rejects byz clauses: it tolerates crash
// faults only, and handing it an equivocator would report an algorithm
// limitation as a check failure.
func init() {
	workload.Register(workload.Source{
		Name: "consensus",
		Doc:  "synchronous consensus (floodset/phaseking/eig) on lock-step rounds, with the Spec.Check verdict",
		Params: append([]workload.Param{
			{Name: "n", Kind: workload.Int, Default: "4", Doc: "number of processes (n >= 3f+1; phaseking needs n > 4f)"},
			{Name: "f", Kind: workload.Int, Default: "1", Doc: "fault bound; injected faults must not exceed it"},
			{Name: "algo", Kind: workload.String, Default: "eig", Doc: "consensus algorithm: floodset, phaseking, eig"},
			{Name: "xi", Kind: workload.Rational, Default: "2", Doc: "model parameter Ξ (round = ⌈2Ξ⌉ phases)"},
			{Name: "inputs", Kind: workload.String, Default: "alt", Doc: "input assignment: alt (p mod 2), id (p), const/V"},
			{Name: "rounds", Kind: workload.Int, Default: "-1", Doc: "lock-step rounds to run; -1 = the algorithm's requirement"},
			{Name: "min", Kind: workload.Rational, Default: "1", Doc: "minimum message delay"},
			{Name: "max", Kind: workload.Rational, Default: "3/2", Doc: "maximum message delay"},
			{Name: "maxevents", Kind: workload.Int, Default: "400000", Doc: "receive-event budget"},
		}, append(workload.FaultParams(), append(workload.TraceParams(), workload.ShardParams()...)...)...),
		Job:     consensusJob,
		Verdict: consensusVerdict,
		// The verdict gates on a verified-admissible run, and the batch
		// ABC check needs the complete trace.
		VerdictNeedsTrace: true,
	})
}

// algoRounds returns the lock-step rounds the algorithm needs to decide.
func algoRounds(algo string, f int) (int, error) {
	switch algo {
	case "floodset":
		return FloodSetRounds(f), nil
	case "phaseking":
		return PhaseKingRounds(f), nil
	case "eig":
		return EIGRounds(f), nil
	default:
		return 0, fmt.Errorf("consensus: unknown algo %q (want floodset, phaseking, eig)", algo)
	}
}

// inputFor parses the inputs spec into the per-process input assignment.
func inputFor(spec string) (func(p sim.ProcessID) int, error) {
	switch {
	case spec == "alt":
		return func(p sim.ProcessID) int { return int(p) % 2 }, nil
	case spec == "id":
		return func(p sim.ProcessID) int { return int(p) }, nil
	case strings.HasPrefix(spec, "const/"):
		var v int
		if _, err := fmt.Sscanf(spec, "const/%d", &v); err != nil {
			return nil, fmt.Errorf("consensus: inputs %q: want const/V", spec)
		}
		return func(sim.ProcessID) int { return v }, nil
	default:
		return nil, fmt.Errorf("consensus: unknown inputs %q (want alt, id, const/V)", spec)
	}
}

func consensusJob(v workload.Values, seed int64) (runner.Job, error) {
	n, f := v.Int("n"), v.Int("f")
	algo := v.String("algo")
	m, err := core.NewModel(v.Rat("xi"))
	if err != nil {
		return runner.Job{}, err
	}
	if f < 0 || n < 3*f+1 {
		return runner.Job{}, fmt.Errorf("consensus: lock-step substrate needs n >= 3f+1, got n=%d f=%d", n, f)
	}
	if algo == "phaseking" && n <= 4*f {
		return runner.Job{}, fmt.Errorf("consensus: phaseking needs n > 4f, got n=%d f=%d", n, f)
	}
	input, err := inputFor(v.String("inputs"))
	if err != nil {
		return runner.Job{}, err
	}
	rounds, err := algoRounds(algo, f)
	if err != nil {
		return runner.Job{}, err
	}
	if rv := v.Int("rounds"); rv >= 0 {
		rounds = rv
	}

	// The Byzantine family is round-level equivocation (TwoFaced): the
	// strongest attack that leaves the clock substrate undisturbed. The
	// budget is unused — TwoFaced runs Algorithm 1 faithfully, so its
	// traffic is already bounded by the run's round target. FloodSet is a
	// crash-fault algorithm: a live Byzantine adversary defeats it by
	// design, so byz clauses are a configuration error there.
	var byz workload.ByzFactory
	switch algo {
	case "eig":
		byz = func(i int, id sim.ProcessID, budget int) sim.Process {
			return NewTwoFaced(m, n, f, SplitEIG(n, id, 0, 1))
		}
	case "phaseking":
		byz = func(i int, id sim.ProcessID, budget int) sim.Process {
			return NewTwoFaced(m, n, f, SplitVotes(0, 1))
		}
	case "floodset":
		if strings.Contains(v.String("faults"), "byz") {
			return runner.Job{}, fmt.Errorf("consensus: floodset tolerates crash faults only (fault spec %q)", v.String("faults"))
		}
	}
	faults, net, err := workload.ResolveFaults(v, n, nil, byz)
	if err != nil {
		return runner.Job{}, err
	}
	if len(faults) > f {
		return runner.Job{}, fmt.Errorf("consensus: fault spec %q injects %d faults, bound is f=%d", v.String("faults"), len(faults), f)
	}

	mkApp := func(p sim.ProcessID) lockstep.App {
		switch algo {
		case "floodset":
			return NewFloodSet(f, input(p))
		case "phaseking":
			return NewPhaseKing(n, f, input(p))
		default:
			return NewEIG(n, f, input(p))
		}
	}
	cfg := sim.Config{
		N:         n,
		Spawn:     lockstep.Spawner(m, n, f, mkApp),
		Faults:    faults,
		Net:       net,
		Delays:    sim.UniformDelay{Min: v.Rat("min"), Max: v.Rat("max")},
		Seed:      seed,
		Until:     lockstep.AllReachedRound(rounds, faults),
		MaxEvents: v.Int("maxevents"),
	}
	return runner.Job{Cfg: &cfg}, nil
}

// consensusVerdict runs Spec.Check over the final deciders. Fault
// membership is reconstructed from the trace's faulty markers (which the
// engine stamps from the injected fault map), inputs from the resolved
// parameters, so the verdict works on any completed admissible run.
// Consensus correctness presupposes lock-step rounds, which presuppose
// admissibility (Theorem 5) — runs without an ABC verdict are skipped.
func consensusVerdict(v workload.Values, r *runner.JobResult) error {
	if !r.CompletedAdmissible(true) {
		return nil
	}
	// Synchronous consensus presupposes reliable rounds; under message
	// drops/partitions only the admissibility verdict stands. A recovered
	// process, in contrast, needs no gate: it counts against f, the trace
	// marks it faulty for the whole run, and the fault map rebuilt below
	// therefore excludes it from the agreement/validity quantifiers.
	if workload.NetFaulty(v) {
		return nil
	}
	input, err := inputFor(v.String("inputs"))
	if err != nil {
		return err
	}
	faults := make(map[sim.ProcessID]sim.Fault)
	for p, bad := range r.Trace.Faulty {
		if bad {
			faults[sim.ProcessID(p)] = sim.Fault{CrashAfter: sim.NeverCrash}
		}
	}
	apps := make([]Decider, len(r.Sim.Procs))
	initial := make(map[sim.ProcessID]int, len(r.Sim.Procs))
	for id := range r.Sim.Procs {
		p := sim.ProcessID(id)
		initial[p] = input(p)
		if _, bad := faults[p]; bad {
			continue
		}
		ls, ok := r.Sim.Procs[id].(*lockstep.Proc)
		if !ok {
			return fmt.Errorf("consensus: correct process %d is not a lockstep.Proc", id)
		}
		apps[id] = ls.App().(Decider)
	}
	return Spec{Initial: initial, Faults: faults}.Check(apps)
}
