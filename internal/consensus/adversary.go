package consensus

import (
	"repro/internal/clocksync"
	"repro/internal/core"
	"repro/internal/sim"
)

// TwoFaced is a Byzantine process that runs Algorithm 1 faithfully — so
// clock progress and lock-step structure are undisturbed — but equivocates
// at the round level: it hands different round payloads to different
// recipients via the per-recipient piggyback. This is the strongest
// round-level attack available against the consensus layer without
// desynchronizing ticks.
type TwoFaced struct {
	cs *clocksync.Proc
}

// NewTwoFaced returns an equivocating Byzantine process. payload produces
// the round r message shown to recipient `to`.
func NewTwoFaced(m core.Model, n, f int, payload func(r int, to sim.ProcessID) any) *TwoFaced {
	t := &TwoFaced{cs: clocksync.New(n, f)}
	x := m.PhasesPerRound()
	t.cs.SetEquivocatingPiggyback(func(env *sim.Env, j int, to sim.ProcessID) *clocksync.RoundData {
		if int64(j)%x != 0 {
			return nil
		}
		r := int(int64(j) / x)
		return &clocksync.RoundData{R: r, Payload: payload(r, to)}
	}, nil)
	return t
}

// Step implements sim.Process.
func (t *TwoFaced) Step(env *sim.Env, msg sim.Message) { t.cs.Step(env, msg) }

// SplitVotes returns a TwoFaced payload function that tells even-numbered
// recipients one vote and odd-numbered recipients another — the canonical
// equivocation against voting algorithms (PhaseKing, FloodSet).
func SplitVotes(a, b int) func(r int, to sim.ProcessID) any {
	return func(r int, to sim.ProcessID) any {
		if to%2 == 0 {
			return Vote{V: a}
		}
		return Vote{V: b}
	}
}

// SplitEIG returns a TwoFaced payload function for EIG: it fabricates a
// full level-r EIG message whose values depend on the recipient's parity.
func SplitEIG(n int, self sim.ProcessID, a, b int) func(r int, to sim.ProcessID) any {
	return func(r int, to sim.ProcessID) any {
		v := a
		if to%2 == 1 {
			v = b
		}
		msg := EIGMsg{}
		var build func(label string)
		build = func(label string) {
			if len(label) == r {
				msg[label] = v
				return
			}
			for q := 0; q < n; q++ {
				id := sim.ProcessID(q)
				if id == self || containsID(label, id) {
					continue
				}
				build(label + string(rune(q)))
			}
		}
		build("")
		return msg
	}
}
