package consensus

import (
	"repro/internal/sim"
)

// Vote is a phase-king round 1 message.
type Vote struct{ V int }

// KingWord is the king's round 2 tie-breaker.
type KingWord struct{ V int }

// Empty is broadcast by non-kings in king rounds (lock-step rounds always
// broadcast something).
type Empty struct{}

// PhaseKing is the two-round-per-phase king algorithm (Berman–Garay–Perry
// style, as presented by Attiya & Welch): f+1 phases, phase k has a vote
// round and a king round with king = process k−1. It tolerates Byzantine
// faults for n > 4f with polynomial message complexity — the trade-off
// against EIG's optimal resilience.
type PhaseKing struct {
	n, f    int
	self    sim.ProcessID
	pref    int
	maj     int
	mult    int
	decided bool
	dec     int
}

// NewPhaseKing returns a phase-king instance with the given input.
// It panics unless n > 4f.
func NewPhaseKing(n, f, input int) *PhaseKing {
	if n <= 4*f {
		panic("consensus: phase king requires n > 4f")
	}
	return &PhaseKing{n: n, f: f, pref: input}
}

var _ Decider = (*PhaseKing)(nil)

// Decided implements Decider.
func (p *PhaseKing) Decided() bool { return p.decided }

// Decision implements Decider.
func (p *PhaseKing) Decision() int { return p.dec }

// Init implements lockstep.App: round 0 is phase 1's vote.
func (p *PhaseKing) Init(self sim.ProcessID, n int) any {
	p.self = self
	return Vote{V: p.pref}
}

// Round implements lockstep.App. Lock-step round 2k−1 processes phase k's
// votes and is the king's broadcast; round 2k processes the king word and
// votes for phase k+1.
func (p *PhaseKing) Round(r int, received []any) any {
	if p.decided {
		return Empty{}
	}
	if r%2 == 1 {
		// Round 2k−1: tally phase k's votes (sent in lock-step round 2k−2).
		phase := (r + 1) / 2
		counts := make(map[int]int)
		for _, payload := range received {
			if v, ok := payload.(Vote); ok {
				counts[v.V]++
			}
		}
		p.maj, p.mult = DefaultValue, 0
		for v, c := range counts {
			if c > p.mult || (c == p.mult && v < p.maj) {
				p.maj, p.mult = v, c
			}
		}
		if p.self == sim.ProcessID(phase-1) {
			return KingWord{V: p.maj}
		}
		return Empty{}
	}

	// Round 2k: apply the king rule and vote for phase k+1 (or decide).
	phase := r / 2
	kingVal := DefaultValue
	if kw, ok := received[phase-1].(KingWord); ok {
		kingVal = kw.V
	}
	if p.mult > p.n/2+p.f {
		p.pref = p.maj
	} else {
		p.pref = kingVal
	}
	if phase == p.f+1 {
		p.decided = true
		p.dec = p.pref
		return Empty{}
	}
	return Vote{V: p.pref}
}

// PhaseKingRounds returns the number of lock-step rounds PhaseKing needs
// to decide: two per phase, f+1 phases.
func PhaseKingRounds(f int) int { return 2 * (f + 1) }

// EIGRounds returns the number of lock-step rounds EIG needs to decide.
func EIGRounds(f int) int { return f + 1 }
