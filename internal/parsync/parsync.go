// Package parsync embeds the classic partially synchronous model of Dwork,
// Lynch and Stockmeyer ("ParSync", Section 5.1 of the ABC paper): a global
// discrete clock ticks whenever a process takes a step; every correct
// process takes at least one step in any window of Φ ticks, and a message
// sent at tick k is received by tick k + Δ.
//
// For the message-driven traces of this repository, steps are the
// processed receive events in global delivery order, which gives the
// natural embedding: the tick of an event is its position in that order.
//
// The centerpiece is the Prover/Adversary game of Fig. 8: for every
// adversary choice of (Φ, Δ), the Prover — who committed to Ξ first —
// constructs an execution that satisfies the ABC synchrony condition (2)
// for Ξ (and even contains a relevant cycle, so it is genuinely
// constrained) yet violates both the Φ and the Δ bound. This shows
// executions of the ABC model cannot be modeled in ParSync.
package parsync

import (
	"fmt"

	"repro/internal/rat"
	"repro/internal/sim"
)

// Report is the outcome of a ParSync admissibility check.
type Report struct {
	Admissible bool
	// MaxStepGap is the largest observed gap, in global ticks, between
	// consecutive steps of a correct process (or between its first
	// opportunity and first step).
	MaxStepGap int
	// MaxDelay is the largest observed message delay in global ticks.
	MaxDelay int
	// Reason describes the violation, empty when admissible.
	Reason string
}

// Check verifies whether the trace is admissible in ParSync(Φ, Δ) under
// the step embedding described in the package comment. Only correct
// processes and messages between correct processes are constrained.
func Check(t *sim.Trace, phi, delta int) Report {
	r := Report{Admissible: true}
	correct := make([]bool, t.N)
	for _, p := range t.CorrectProcesses() {
		correct[p] = true
	}

	// Global tick of each event = its index among processed events.
	tickOf := make([]int, len(t.Events)) // -1 for unprocessed
	tick := 0
	for i, ev := range t.Events {
		if ev.Processed {
			tickOf[i] = tick
			tick++
		} else {
			tickOf[i] = -1
		}
	}

	// Relative speed: gaps between consecutive steps of a correct process.
	lastStep := make([]int, t.N)
	for p := range lastStep {
		lastStep[p] = 0
	}
	for i, ev := range t.Events {
		if tickOf[i] < 0 || !correct[ev.Proc] {
			continue
		}
		if gap := tickOf[i] - lastStep[ev.Proc]; gap > r.MaxStepGap {
			r.MaxStepGap = gap
		}
		lastStep[ev.Proc] = tickOf[i]
	}
	// Trailing gaps (after a process's last step) are not counted: on a
	// finite prefix a quiescent process is not evidence of a Φ violation.
	if r.MaxStepGap > phi {
		r.Admissible = false
		r.Reason = fmt.Sprintf("step gap %d exceeds Φ = %d", r.MaxStepGap, phi)
	}

	// Message delays in ticks: from the sending step's tick to the receive
	// event's tick.
	for _, m := range t.Msgs {
		if m.IsWakeup() || m.SendStep < 0 || !correct[m.From] || !correct[m.To] {
			continue
		}
		sendPos := t.EventAt(m.From, m.SendStep)
		if sendPos < 0 || tickOf[sendPos] < 0 {
			continue
		}
		var recvTick = -1
		for i, ev := range t.Events {
			if ev.Proc == m.To && ev.Trigger == m.ID {
				recvTick = tickOf[i]
				break
			}
		}
		if recvTick < 0 {
			continue
		}
		if d := recvTick - tickOf[sendPos]; d > r.MaxDelay {
			r.MaxDelay = d
		}
	}
	if r.MaxDelay > delta {
		r.Admissible = false
		if r.Reason != "" {
			r.Reason += "; "
		}
		r.Reason += fmt.Sprintf("message delay %d ticks exceeds Δ = %d", r.MaxDelay, delta)
	}
	return r
}

// ProverExecution constructs the Fig. 8 witness for the game: given the
// adversary's (Φ, Δ) and the Prover's Ξ, it builds a trace that
//
//   - contains a relevant cycle with |Z−| = L > max(Φ, Δ) backward
//     messages (a ping-pong chain between p and q) spanned by a forward
//     chain of k+1 slow messages through relay processes, with
//     L/(k+1) < Ξ, so the ABC synchrony condition (2) holds; and
//   - violates ParSync(Φ, Δ): q executes more than Δ ticks while the slow
//     chain's first message is in transit, and the relays take no step for
//     more than Φ ticks.
//
// Layout: q = 0, p = 1, relays = 2 .. 2+k−1.
func ProverExecution(phi, delta int, xi rat.Rat) (*sim.Trace, error) {
	if !xi.Greater(rat.One) {
		return nil, fmt.Errorf("parsync: Ξ = %v must exceed 1", xi)
	}
	l := phi
	if delta > l {
		l = delta
	}
	l += 2 // |Z−| strictly greater than both, with margin
	if l%2 == 1 {
		l++ // ping-pong chains have even length
	}
	// Choose k+1 forward messages so that L/(k+1) < Ξ: k+1 = floor(L/Ξ)+1.
	kPlus1 := rat.FromInt(int64(l)).Div(xi).Floor() + 1
	k := int(kPlus1 - 1)
	if k < 1 {
		k = 1
	}

	n := 2 + k
	b := sim.NewTraceBuilder(n)
	b.WakeAll(rat.Zero)

	// Slow chain: q -> relay 2 -> ... -> relay (2+k-1) -> q. The first
	// message leaves at q's wake-up and lingers; the relays fire in a
	// burst at the very end.
	// Meanwhile p and q ping-pong L messages during (0, T).
	tEnd := int64(l) + 10
	// Ping-pong: q's wake-up starts it.
	b.MsgAt(0, 0, 1, 1, "pp0") // q -> p
	for i := 1; i < l; i++ {
		if i%2 == 1 {
			b.MsgAt(1, (i+1)/2, 0, int64(i+1), fmt.Sprintf("pp%d", i)) // p -> q
		} else {
			b.MsgAt(0, i/2, 1, int64(i+1), fmt.Sprintf("pp%d", i)) // q -> p
		}
	}
	// Slow chain fires late: q(wake) -> relay2 at tEnd, then fast hops.
	cur := tEnd
	b.Msg(0, 0, 2, rat.FromInt(cur), "slow0")
	for i := 0; i < k-1; i++ {
		cur++
		b.Msg(sim.ProcessID(2+i), 1, sim.ProcessID(3+i), rat.FromInt(cur), fmt.Sprintf("slow%d", i+1))
	}
	// Last hop back to q, arriving after the ping-pong chain completed.
	cur++
	b.Msg(sim.ProcessID(2+k-1), 1, 0, rat.FromInt(cur), "slowLast")
	return b.Build()
}
