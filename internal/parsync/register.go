package parsync

import (
	"fmt"

	"repro/internal/runner"
	"repro/internal/workload"
)

// The parsync workload is the Fig. 8 Prover/Adversary game (Section 5.1):
// for the adversary's (Φ, Δ) and the Prover's Ξ, the job carries the
// constructed witness trace. The domain verdict is the game's outcome —
// the execution must be ABC(Ξ)-admissible yet violate ParSync(Φ, Δ) —
// which is exactly the separation M_ABC ⊄ M_ParSync.
func init() {
	workload.Register(workload.Source{
		Name: "parsync",
		Doc:  "Fig. 8 Prover/Adversary game: ABC-admissible executions outside ParSync(Φ, Δ)",
		Params: []workload.Param{
			{Name: "phi", Kind: workload.Int, Default: "3", Doc: "adversary's relative-speed bound Φ"},
			{Name: "delta", Kind: workload.Int, Default: "3", Doc: "adversary's message-delay bound Δ"},
			{Name: "xi", Kind: workload.Rational, Default: "2", Doc: "Prover's model parameter Ξ (must exceed 1)"},
		},
		Job: func(v workload.Values, seed int64) (runner.Job, error) {
			tr, err := ProverExecution(v.Int("phi"), v.Int("delta"), v.Rat("xi"))
			if err != nil {
				return runner.Job{}, err
			}
			return runner.Job{Trace: tr}, nil
		},
		Verdict: func(v workload.Values, r *runner.JobResult) error {
			if r.Verdict == nil || !r.Xi.Equal(v.Rat("xi")) {
				// No Ξ check, or the sweep checked a different Ξ than the
				// Prover committed to: the game claim does not apply.
				return nil
			}
			rep := Check(r.Trace, v.Int("phi"), v.Int("delta"))
			if !r.Verdict.Admissible {
				return fmt.Errorf("parsync: prover execution not ABC(%v)-admissible", v.Rat("xi"))
			}
			if rep.Admissible {
				return fmt.Errorf("parsync: ParSync(Φ=%d, Δ=%d) accepted the prover execution (step gap %d, delay %d)",
					v.Int("phi"), v.Int("delta"), rep.MaxStepGap, rep.MaxDelay)
			}
			return nil
		},
	})
}
