package parsync

import (
	"testing"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/rat"
	"repro/internal/sim"
)

func TestCheckAdmissible(t *testing.T) {
	// A well-behaved round-robin execution passes generous (Φ, Δ).
	res, err := sim.Run(sim.Config{
		N: 3,
		Spawn: func(p sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < 5 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays: sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := Check(res.Trace, 1000, 1000)
	if !r.Admissible {
		t.Errorf("benign trace rejected: %s", r.Reason)
	}
	if Check(res.Trace, 1, 1).Admissible {
		t.Error("trace accepted with Φ=Δ=1; should be too tight")
	}
}

func TestCheckDetectsSlowMessage(t *testing.T) {
	b := sim.NewTraceBuilder(2)
	b.WakeAll(rat.Zero)
	// p0 sends to p1; p1 replies instantly many times... build a long
	// one-way stream so ticks accumulate, then a slow message.
	b.MsgAt(0, 0, 1, 1, "a") // tick delay small
	b.MsgAt(0, 0, 1, 2, "b") // q1 event 2
	b.MsgAt(1, 1, 0, 30, "slow")
	tr := b.MustBuild()
	r := Check(tr, 100, 1)
	if r.Admissible {
		t.Error("slow message passed Δ=1")
	}
}

// The Fig. 8 game: for every adversary (Φ, Δ), the Prover's execution is
// ABC(Ξ)-admissible, contains a constraining relevant cycle, and violates
// ParSync(Φ, Δ).
func TestProverWinsGame(t *testing.T) {
	xi := rat.FromInt(2)
	adversaryChoices := []struct{ phi, delta int }{
		{2, 2}, {5, 3}, {10, 10}, {20, 7}, {50, 50},
	}
	for _, adv := range adversaryChoices {
		tr, err := ProverExecution(adv.phi, adv.delta, xi)
		if err != nil {
			t.Fatal(err)
		}
		g := causality.Build(tr, causality.Options{})

		// ABC-admissible for the Prover's Ξ.
		v, err := check.ABC(g, xi)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Admissible {
			t.Fatalf("(Φ=%d, Δ=%d): prover execution not ABC(%v)-admissible: %v",
				adv.phi, adv.delta, xi, v.Witness)
		}
		// Genuinely constrained: it has a relevant cycle with ratio > 1.
		constrained, err := check.Constrained(g)
		if err != nil {
			t.Fatal(err)
		}
		if !constrained {
			t.Fatalf("(Φ=%d, Δ=%d): prover execution has no constraining cycle", adv.phi, adv.delta)
		}
		// And it violates the adversary's ParSync parameters.
		r := Check(tr, adv.phi, adv.delta)
		if r.Admissible {
			t.Fatalf("(Φ=%d, Δ=%d): prover execution is ParSync-admissible (gap=%d, delay=%d)",
				adv.phi, adv.delta, r.MaxStepGap, r.MaxDelay)
		}
	}
}

func TestProverExecutionRatioNearXi(t *testing.T) {
	// The witness's critical ratio stays strictly below Ξ but its |Z−|
	// scales with the adversary's parameters.
	xi := rat.FromInt(3)
	tr, err := ProverExecution(30, 10, xi)
	if err != nil {
		t.Fatal(err)
	}
	g := causality.Build(tr, causality.Options{})
	ratio, found, err := check.MaxRelevantRatio(g)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no constraining cycle in prover execution")
	}
	if !ratio.Less(xi) {
		t.Errorf("critical ratio %v not below Ξ=%v", ratio, xi)
	}
	if ratio.LessEq(rat.One) {
		t.Errorf("critical ratio %v suspiciously small", ratio)
	}
}

func TestProverExecutionValidation(t *testing.T) {
	if _, err := ProverExecution(3, 3, rat.One); err == nil {
		t.Error("Ξ = 1 accepted")
	}
}

func TestCheckSkipsFaulty(t *testing.T) {
	b := sim.NewTraceBuilder(2)
	b.SetFaulty(1)
	b.WakeAll(rat.Zero)
	b.MsgAt(0, 0, 1, 1, "x")
	b.MsgAt(1, 1, 0, 40, "fromFaulty")
	r := Check(b.MustBuild(), 10, 2)
	if !r.Admissible {
		t.Errorf("faulty process constrained ParSync check: %s", r.Reason)
	}
}
