package clocksync

import (
	"testing"

	"repro/internal/rat"
	"repro/internal/sim"
)

// Direct unit tests for the Byzantine adversaries: before this file their
// behavior was pinned only indirectly, through the E-experiments that use
// them.

// sink is a correct process that never sends.
func sink() sim.Process {
	return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {})
}

// adversaryTicks runs one adversary as the single Byzantine process among
// sinks and returns, per computing step of the adversary, the tick values
// it sent (in send order).
func adversaryTicks(t *testing.T, n int, adv sim.Process) [][]int {
	t.Helper()
	res, err := sim.Run(sim.Config{
		N:         n,
		Spawn:     func(sim.ProcessID) sim.Process { return sink() },
		Faults:    map[sim.ProcessID]sim.Fault{0: sim.ByzantineFault(adv)},
		Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:      1,
		MaxEvents: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	bySend := make(map[int][]int)
	maxStep := -1
	for _, m := range res.Trace.Msgs {
		if m.IsWakeup() || m.From != 0 {
			continue
		}
		tick, ok := m.Payload.(Tick)
		if !ok {
			continue
		}
		bySend[m.SendStep] = append(bySend[m.SendStep], tick.K)
		if m.SendStep > maxStep {
			maxStep = m.SendStep
		}
	}
	out := make([][]int, maxStep+1)
	for step, ks := range bySend {
		out[step] = ks
	}
	return out
}

func TestRusherBroadcastsAheadUntilBudget(t *testing.T) {
	const n, budget, ahead = 2, 3, 5
	steps := adversaryTicks(t, n, &Rusher{Ahead: ahead, Budget: budget})
	active := 0
	for _, ks := range steps {
		if len(ks) == 0 {
			continue
		}
		active++
		if len(ks) != n {
			t.Errorf("rusher broadcast reached %d processes, want %d", len(ks), n)
		}
		want := active * ahead
		for _, k := range ks {
			if k != want {
				t.Errorf("rusher step %d sent tick %d, want %d", active, k, want)
			}
		}
	}
	if active != budget {
		t.Errorf("rusher took %d sending steps, budget is %d", active, budget)
	}
}

func TestEquivocatorSendsDifferentTicksPerRecipient(t *testing.T) {
	steps := adversaryTicks(t, 3, &Equivocator{Seed: 7, Budget: 4})
	split := false
	sending := 0
	for _, ks := range steps {
		if len(ks) == 0 {
			continue
		}
		sending++
		for _, k := range ks[1:] {
			if k != ks[0] {
				split = true
			}
		}
	}
	if sending != 4 {
		t.Errorf("equivocator took %d sending steps, budget is 4", sending)
	}
	if !split {
		t.Error("equivocator never sent different ticks to different processes")
	}

	// Deterministic per seed, distinct across seeds.
	flatten := func(steps [][]int) []int {
		var out []int
		for _, ks := range steps {
			out = append(out, ks...)
		}
		return out
	}
	a := flatten(adversaryTicks(t, 3, &Equivocator{Seed: 9, Budget: 4}))
	b := flatten(adversaryTicks(t, 3, &Equivocator{Seed: 9, Budget: 4}))
	c := flatten(adversaryTicks(t, 3, &Equivocator{Seed: 10, Budget: 4}))
	if len(a) == 0 {
		t.Fatal("equivocator sent nothing")
	}
	same := func(x, y []int) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Errorf("equivocator not deterministic for one seed:\n%v\n%v", a, b)
	}
	if same(a, c) {
		t.Errorf("distinct seeds produced identical tick sequences: %v", a)
	}
}

func TestLaggardReplaysTickZero(t *testing.T) {
	steps := adversaryTicks(t, 2, &Laggard{Budget: 3})
	sending := 0
	for _, ks := range steps {
		for _, k := range ks {
			sending++
			if k != 0 {
				t.Errorf("laggard sent tick %d, want 0", k)
			}
		}
	}
	if sending == 0 {
		t.Error("laggard sent nothing")
	}
}

// TestMalformedSenderIsIgnored pins the input validation of Algorithm 1:
// negative ticks and junk payloads from a Byzantine process neither crash
// a correct process nor advance its clock.
func TestMalformedSenderIsIgnored(t *testing.T) {
	var correct *Proc
	res, err := sim.Run(sim.Config{
		N: 2,
		Spawn: func(p sim.ProcessID) sim.Process {
			// Thresholds of a 4-process system: no single sender can ever
			// form a quorum, so only malformed input reaches the process.
			pr := New(4, 1)
			if p == 1 {
				correct = pr
			}
			return pr
		},
		Faults:    map[sim.ProcessID]sim.Fault{0: sim.ByzantineFault(&MalformedSender{Budget: 5})},
		Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:      2,
		MaxEvents: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("run truncated: malformed traffic never quiesced")
	}
	if got := correct.Clock(); got != 0 {
		t.Errorf("correct clock moved to %d on malformed input alone", got)
	}
}

// TestCorrectClocksProgressUnderEachAdversary runs Algorithm 1 to a
// target against every adversary kind individually: none may prevent
// progress or real-time precision.
func TestCorrectClocksProgressUnderEachAdversary(t *testing.T) {
	const n, f, target = 4, 1, 5
	advs := map[string]sim.Process{
		"rusher":      &Rusher{Ahead: 5, Budget: 60},
		"equivocator": &Equivocator{Seed: 3, Budget: 60},
		"laggard":     &Laggard{Budget: 60},
		"malformed":   &MalformedSender{Budget: 60},
	}
	for name, adv := range advs {
		t.Run(name, func(t *testing.T) {
			faults := map[sim.ProcessID]sim.Fault{n - 1: sim.ByzantineFault(adv)}
			res, err := sim.Run(sim.Config{
				N:         n,
				Spawn:     Spawner(n, f),
				Faults:    faults,
				Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
				Seed:      4,
				Until:     AllReached(target, faults),
				MaxEvents: 100000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Truncated {
				t.Fatal("truncated before reaching the target")
			}
			if err := CheckProgress(res.Trace, target); err != nil {
				t.Errorf("progress: %v", err)
			}
			if err := CheckMonotone(res.Trace); err != nil {
				t.Errorf("monotonicity: %v", err)
			}
		})
	}
}

// TestAdversariesAssortment pins the deterministic assortment used by the
// experiments: f entries on the top process IDs, cycling through the four
// adversary kinds, all Byzantine.
func TestAdversariesAssortment(t *testing.T) {
	const n, f = 13, 4
	faults := Adversaries(n, f, 9)
	if len(faults) != f {
		t.Fatalf("got %d faults, want %d", len(faults), f)
	}
	wantKinds := []any{
		&Equivocator{}, &Rusher{}, &Laggard{}, &MalformedSender{},
	}
	for i := 0; i < f; i++ {
		id := sim.ProcessID(n - 1 - i)
		fault, ok := faults[id]
		if !ok {
			t.Fatalf("no fault for process %d", id)
		}
		if fault.Byzantine == nil {
			t.Fatalf("process %d fault is not Byzantine", id)
		}
		switch wantKinds[i%4].(type) {
		case *Equivocator:
			if _, ok := fault.Byzantine.(*Equivocator); !ok {
				t.Errorf("process %d: got %T, want *Equivocator", id, fault.Byzantine)
			}
		case *Rusher:
			if _, ok := fault.Byzantine.(*Rusher); !ok {
				t.Errorf("process %d: got %T, want *Rusher", id, fault.Byzantine)
			}
		case *Laggard:
			if _, ok := fault.Byzantine.(*Laggard); !ok {
				t.Errorf("process %d: got %T, want *Laggard", id, fault.Byzantine)
			}
		case *MalformedSender:
			if _, ok := fault.Byzantine.(*MalformedSender); !ok {
				t.Errorf("process %d: got %T, want *MalformedSender", id, fault.Byzantine)
			}
		}
	}
}
