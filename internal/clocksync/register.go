package clocksync

import (
	"fmt"

	"repro/internal/causality"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The clocksync workload is Algorithm 1 — Byzantine fault-tolerant tick
// generation — run until every correct clock reaches the target. Its
// domain verdict checks the Section 3 theorems on admissible, complete
// runs: progress (Thm. 1), monotonicity, real-time precision ⌈2Ξ⌉
// (Thm. 3), the causal-cone property (Lemma 4), synchrony on consistent
// cuts (Thm. 2), and bounded progress with ϱ = 2⌈2Ξ⌉+1 (Thm. 4).
func init() {
	workload.Register(workload.Source{
		Name: "clocksync",
		Doc:  "Byzantine clock synchronization (Algorithm 1) with Section 3 theorem monitors",
		Params: append([]workload.Param{
			{Name: "n", Kind: workload.Int, Default: "4", Doc: "number of processes (n >= 3f+1)"},
			{Name: "f", Kind: workload.Int, Default: "1", Doc: "Byzantine fault bound"},
			{Name: "xi", Kind: workload.Rational, Default: "2", Doc: "model parameter Ξ"},
			{Name: "target", Kind: workload.Int, Default: "10", Doc: "clock value every correct process must reach"},
			{Name: "min", Kind: workload.Rational, Default: "1", Doc: "minimum message delay"},
			{Name: "max", Kind: workload.Rational, Default: "3/2", Doc: "maximum message delay"},
			{Name: "adversaries", Kind: workload.Bool, Default: "false", Doc: "run f live Byzantine adversaries (off: the f slots stay silent but count)"},
			{Name: "advseed", Kind: workload.Int64, Default: "-1", Doc: "adversary seed; -1 derives it from the job seed"},
			{Name: "maxevents", Kind: workload.Int, Default: "200000", Doc: "receive-event budget"},
		}, append(workload.FaultParams(), append(workload.TraceParams(), workload.ShardParams()...)...)...),
		Job:     clockSyncJob,
		Verdict: clockSyncVerdict,
		// The Section 3 monitors replay the recorded clock notes and the
		// execution graph — bounded retention cannot support them.
		VerdictNeedsTrace: true,
	})
}

// clockSyncByz is the ByzFactory behind the shared fault axis: the
// deterministic adversary assortment, seeded by faultseed (the job seed
// when negative, matching advseed's convention).
func clockSyncByz(v workload.Values, seed int64) workload.ByzFactory {
	fseed := v.Int64("faultseed")
	if fseed < 0 {
		fseed = seed
	}
	return func(i int, id sim.ProcessID, budget int) sim.Process {
		return Adversary(i, uint64(fseed), budget)
	}
}

func clockSyncJob(v workload.Values, seed int64) (runner.Job, error) {
	n, f := v.Int("n"), v.Int("f")
	if f < 0 || n < 3*f+1 {
		return runner.Job{}, fmt.Errorf("clocksync: need n >= 3f+1, got n=%d f=%d", n, f)
	}
	faults, net, err := workload.SharedOrLegacyFaults(v, n, nil,
		clockSyncByz(v, seed), v.Bool("adversaries"), "adversaries=true",
		func() map[sim.ProcessID]sim.Fault {
			advseed := v.Int64("advseed")
			if advseed < 0 {
				advseed = seed
			}
			return Adversaries(n, f, uint64(advseed))
		})
	if err != nil {
		return runner.Job{}, err
	}
	if len(faults) > f {
		return runner.Job{}, fmt.Errorf("clocksync: fault spec %q injects %d faults, bound is f=%d", v.String("faults"), len(faults), f)
	}
	cfg := sim.Config{
		N:         n,
		Spawn:     Spawner(n, f),
		Faults:    faults,
		Net:       net,
		Delays:    sim.UniformDelay{Min: v.Rat("min"), Max: v.Rat("max")},
		Seed:      seed,
		Until:     AllReached(v.Int("target"), faults),
		MaxEvents: v.Int("maxevents"),
	}
	return runner.Job{Cfg: &cfg}, nil
}

// clockSyncVerdict runs the Section 3 theorem monitors. The theorems
// presuppose an admissible execution and a completed run, so inadmissible,
// truncated, or watch-aborted results are skipped rather than failed. The
// bounds derive from r.Xi — the Ξ the admissibility check actually ran
// against, which a sweep may have overridden past the xi parameter.
func clockSyncVerdict(v workload.Values, r *runner.JobResult) error {
	if !r.CompletedAdmissible(true) {
		return nil
	}
	// The Section 3 theorems assume a reliable network; under message-level
	// faults only the admissibility verdict stands. Recovered processes
	// need no special case: they are marked faulty for the whole run and
	// count against f, so every correct-process claim already skips them.
	if workload.NetFaulty(v) {
		return nil
	}
	x := r.Xi.MulInt(2).Ceil() // precision bound X = ⌈2Ξ⌉
	if err := CheckProgress(r.Trace, v.Int("target")); err != nil {
		return err
	}
	if err := CheckMonotone(r.Trace); err != nil {
		return err
	}
	if err := CheckRealTimePrecision(r.Trace, x); err != nil {
		return err
	}
	if err := CheckCausalCone(r.Trace, x); err != nil {
		return err
	}
	g := r.Graph
	if g == nil {
		g = causality.Build(r.Trace, causality.Options{})
	}
	if err := CheckConsistentCutSynchrony(g, x); err != nil {
		return err
	}
	return CheckBoundedProgress(g, 2*x+1)
}
