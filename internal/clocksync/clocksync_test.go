package clocksync

import (
	"testing"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/rat"
	"repro/internal/sim"
)

// runSync runs Algorithm 1 with the given fault map until all correct
// clocks reach targetClock, returning the trace and graph. Delays are
// drawn from [1, theta] (Θ-scheduling, which Theorem 6 guarantees is
// ABC-admissible when Θ < Ξ).
func runSync(t *testing.T, n, f int, faults map[sim.ProcessID]sim.Fault, targetClock int, theta rat.Rat, seed int64) (*sim.Trace, *causality.Graph) {
	t.Helper()
	res, err := sim.Run(sim.Config{
		N:         n,
		Spawn:     Spawner(n, f),
		Faults:    faults,
		Delays:    sim.UniformDelay{Min: rat.One, Max: theta},
		Seed:      seed,
		Until:     AllReached(targetClock, faults),
		MaxEvents: 150000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("run truncated before clocks reached target")
	}
	return res.Trace, causality.Build(res.Trace, causality.Options{})
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(3, 1) did not panic (needs n >= 3f+1)")
		}
	}()
	New(3, 1)
}

func TestFaultFreeProgress(t *testing.T) {
	model := core.MustModel(rat.FromInt(2))
	tr, g := runSync(t, 4, 1, nil, 20, rat.New(3, 2), 1)

	v, err := model.Admissible(g)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admissible {
		t.Fatalf("Θ-scheduled execution not admissible: witness %v", v.Witness)
	}
	if err := CheckProgress(tr, 20); err != nil {
		t.Error(err)
	}
	if err := CheckMonotone(tr); err != nil {
		t.Error(err)
	}
}

func TestTheoremsFaultFree(t *testing.T) {
	model := core.MustModel(rat.FromInt(2))
	x := model.PrecisionBound() // 4
	tr, g := runSync(t, 4, 1, nil, 15, rat.New(3, 2), 2)

	if err := CheckCausalCone(tr, x); err != nil {
		t.Errorf("Lemma 4: %v", err)
	}
	if err := CheckRealTimePrecision(tr, x); err != nil {
		t.Errorf("Theorem 3: %v", err)
	}
	if err := CheckConsistentCutSynchrony(g, x); err != nil {
		t.Errorf("Theorem 2: %v", err)
	}
	if err := CheckBoundedProgress(g, model.BoundedProgressRho()); err != nil {
		t.Errorf("Theorem 4: %v", err)
	}
}

func TestWithCrashFault(t *testing.T) {
	model := core.MustModel(rat.FromInt(2))
	x := model.PrecisionBound()
	faults := map[sim.ProcessID]sim.Fault{3: sim.Crash(5)}
	tr, g := runSync(t, 4, 1, faults, 12, rat.New(3, 2), 3)

	v, err := model.Admissible(g)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admissible {
		t.Fatalf("execution not admissible: witness %v", v.Witness)
	}
	if err := CheckProgress(tr, 12); err != nil {
		t.Error(err)
	}
	if err := CheckCausalCone(tr, x); err != nil {
		t.Errorf("Lemma 4: %v", err)
	}
	if err := CheckRealTimePrecision(tr, x); err != nil {
		t.Errorf("Theorem 3: %v", err)
	}
	if err := CheckConsistentCutSynchrony(g, x); err != nil {
		t.Errorf("Theorem 2: %v", err)
	}
}

func TestWithByzantineAdversaries(t *testing.T) {
	model := core.MustModel(rat.FromInt(2))
	x := model.PrecisionBound()
	cases := []struct {
		name string
		n, f int
		seed int64
	}{
		{"n4f1", 4, 1, 4},
		{"n7f2", 7, 2, 5},
		{"n10f3", 10, 3, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faults := Adversaries(tc.n, tc.f, uint64(tc.seed))
			tr, g := runSync(t, tc.n, tc.f, faults, 10, rat.New(3, 2), tc.seed)

			v, err := model.Admissible(g)
			if err != nil {
				t.Fatal(err)
			}
			if !v.Admissible {
				t.Fatalf("execution not admissible: witness %v", v.Witness)
			}
			if err := CheckProgress(tr, 10); err != nil {
				t.Error(err)
			}
			if err := CheckMonotone(tr); err != nil {
				t.Error(err)
			}
			if err := CheckCausalCone(tr, x); err != nil {
				t.Errorf("Lemma 4: %v", err)
			}
			if err := CheckRealTimePrecision(tr, x); err != nil {
				t.Errorf("Theorem 3: %v", err)
			}
			if err := CheckConsistentCutSynchrony(g, x); err != nil {
				t.Errorf("Theorem 2: %v", err)
			}
			if err := CheckBoundedProgress(g, model.BoundedProgressRho()); err != nil {
				t.Errorf("Theorem 4: %v", err)
			}
		})
	}
}

func TestSilentByzantineMinority(t *testing.T) {
	// f completely silent processes: the remaining n-f >= 2f+1 correct
	// processes still make progress (advance needs n-f ticks).
	faults := map[sim.ProcessID]sim.Fault{6: sim.Silent(), 5: sim.Silent()}
	tr, _ := runSync(t, 7, 2, faults, 10, rat.New(3, 2), 7)
	if err := CheckProgress(tr, 10); err != nil {
		t.Error(err)
	}
}

func TestRationalXi(t *testing.T) {
	// Ξ = 3/2: X = ⌈3⌉ = 3.
	model := core.MustModel(rat.New(3, 2))
	x := model.PrecisionBound()
	if x != 3 {
		t.Fatalf("X = %d, want 3", x)
	}
	tr, g := runSync(t, 4, 1, nil, 10, rat.New(5, 4), 8)
	v, err := model.Admissible(g)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admissible {
		t.Fatalf("not admissible at Ξ=3/2: %v", v.Witness)
	}
	if err := CheckCausalCone(tr, x); err != nil {
		t.Errorf("Lemma 4: %v", err)
	}
	if err := CheckRealTimePrecision(tr, x); err != nil {
		t.Errorf("Theorem 3: %v", err)
	}
}

func TestCatchUpRule(t *testing.T) {
	// A process whose links are slow and heavily reordering receives late
	// ticks out of order and catches up via the f+1 rule, jumping its
	// clock by more than one in a single step. (Admissibility is not the
	// point of this test; the catch-up code path is.)
	n, f := 4, 1
	slowLinks := map[sim.Link]sim.DelayPolicy{}
	for p := sim.ProcessID(0); p < 3; p++ {
		slowLinks[sim.Link{From: p, To: 3}] = sim.UniformDelay{Min: rat.FromInt(20), Max: rat.FromInt(60)}
	}
	res, err := sim.Run(sim.Config{
		N:     n,
		Spawn: Spawner(n, f),
		Delays: sim.PerLinkDelay{
			Default: sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
			Links:   slowLinks,
		},
		Seed:      9,
		Until:     AllReached(8, nil),
		MaxEvents: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// p3 must have executed a catch-up step: some single step raising its
	// clock by more than 1.
	prev := 0
	jumped := false
	for _, ev := range res.Trace.Events {
		if ev.Proc != 3 {
			continue
		}
		if c, ok := clockOf(ev); ok {
			if c > prev+1 {
				jumped = true
			}
			prev = c
		}
	}
	if !jumped {
		t.Error("late starter never caught up by more than one tick")
	}
	if err := CheckMonotone(res.Trace); err != nil {
		t.Error(err)
	}
}

func TestNoteAnnotations(t *testing.T) {
	tr, _ := runSync(t, 4, 0, nil, 5, rat.New(3, 2), 10)
	sawDistinguished := false
	for _, ev := range tr.Events {
		if n, ok := ev.Note.(Note); ok && n.Advanced && n.Broadcast {
			sawDistinguished = true
		}
	}
	if !sawDistinguished {
		t.Error("no distinguished events recorded")
	}
}

func TestMessageComplexityBounded(t *testing.T) {
	// Each process broadcasts each tick at most once: total tick messages
	// <= n * (maxClock+2) * n recipients.
	tr, _ := runSync(t, 4, 0, nil, 10, rat.New(3, 2), 11)
	maxClock := 0
	for _, ev := range tr.Events {
		if c, ok := clockOf(ev); ok && c > maxClock {
			maxClock = c
		}
	}
	ticks := 0
	for _, m := range tr.Msgs {
		if _, ok := m.Payload.(Tick); ok {
			ticks++
		}
	}
	bound := 4 * (maxClock + 2) * 4
	if ticks > bound {
		t.Errorf("sent %d tick messages, [once] bound is %d", ticks, bound)
	}
}
