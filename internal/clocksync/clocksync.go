// Package clocksync implements Algorithm 1 of the ABC paper: Byzantine
// fault-tolerant tick generation for n >= 3f+1 processes in a fully
// connected network, originally from Widder & Schmid's Θ-Model work and
// proved correct in the ABC model in Section 3.
//
// Every process maintains a clock k, initially broadcasting (tick 0).
// Receiving f+1 distinct (tick l) messages with l > k lets it catch up to
// l (at least one sender is correct); receiving n−f distinct (tick k)
// messages lets it advance to k+1. Each (tick j) is broadcast at most once.
//
// The theorems of Section 3 are implemented as trace monitors in
// monitor.go: progress (Theorem 1), the causal-cone property (Lemma 4),
// synchrony on consistent cuts (Theorem 2), real-time precision
// (Theorem 3), and bounded progress (Theorem 4).
package clocksync

import (
	"fmt"

	"repro/internal/sim"
)

// Tick is the message payload of Algorithm 1.
type Tick struct {
	K int
	// Round piggybacks lock-step round data (Algorithm 2): nil when no
	// round message is attached. Piggybacking matters: the round r message
	// must travel inside (tick 2Ξr), since Theorem 5's proof identifies
	// receiving that tick with receiving the round message.
	Round *RoundData
}

// RoundData is a lock-step round message attached to a tick.
type RoundData struct {
	R       int
	Payload any
}

// Note is attached to each receive event (via Env.SetNote) for the
// monitors.
type Note struct {
	// Clock is the process's clock value after the step.
	Clock int
	// Advanced is true when the clock changed in this step.
	Advanced bool
	// Broadcast is true when at least one tick was broadcast in this step.
	// A step with Advanced && Broadcast is a "distinguished event" in the
	// sense of Theorem 4.
	Broadcast bool
}

// Proc is one Algorithm 1 process. Create with New; it implements
// sim.Process.
type Proc struct {
	n, f int
	k    int
	sent int // highest tick broadcast so far ([once] guard); -1 before wake-up
	// recv[l] is the set of distinct senders of (tick l) seen so far.
	recv map[int]map[sim.ProcessID]bool
	// attach, when non-nil, is invoked right before broadcasting tick j to
	// obtain piggybacked round data (used by internal/lockstep).
	attach func(env *sim.Env, j int) *RoundData
	// attachPer, when non-nil, replaces the uniform broadcast by
	// per-recipient sends with individually chosen round data — the
	// equivocation a Byzantine process may commit at the round level while
	// still ticking correctly. Takes precedence over attach.
	attachPer func(env *sim.Env, j int, to sim.ProcessID) *RoundData
	// onReceive, when non-nil, observes piggybacked round data.
	onReceive func(from sim.ProcessID, rd *RoundData)
}

// New returns an Algorithm 1 process for an n-process system tolerating f
// Byzantine faults. It panics unless n >= 3f+1 and f >= 0 — a misconfigured
// resilience bound is a programming error, not a runtime condition.
func New(n, f int) *Proc {
	if f < 0 || n < 3*f+1 {
		panic(fmt.Sprintf("clocksync: need n >= 3f+1, got n=%d f=%d", n, f))
	}
	return &Proc{
		n:    n,
		f:    f,
		k:    0,
		sent: -1,
		recv: make(map[int]map[sim.ProcessID]bool),
	}
}

// Clock returns the current clock value k.
func (p *Proc) Clock() int { return p.k }

// SetPiggyback installs the hooks used by Algorithm 2 (internal/lockstep):
// attach is called right before broadcasting each tick j to obtain round
// data to piggyback; onReceive observes round data on incoming ticks. Must
// be called before the process takes its first step.
func (p *Proc) SetPiggyback(
	attach func(env *sim.Env, j int) *RoundData,
	onReceive func(from sim.ProcessID, rd *RoundData),
) {
	p.attach = attach
	p.onReceive = onReceive
}

// SetEquivocatingPiggyback installs a per-recipient piggyback hook: the
// process still runs Algorithm 1 faithfully (so it does not disturb clock
// progress) but may attach different round data for different recipients —
// the round-level equivocation available to Byzantine processes.
func (p *Proc) SetEquivocatingPiggyback(
	attachPer func(env *sim.Env, j int, to sim.ProcessID) *RoundData,
	onReceive func(from sim.ProcessID, rd *RoundData),
) {
	p.attachPer = attachPer
	p.onReceive = onReceive
}

// Step implements sim.Process.
func (p *Proc) Step(env *sim.Env, msg sim.Message) {
	advanced := false
	broadcast := false

	send := func(j int) {
		// [once]: each tick value is broadcast at most once.
		if j <= p.sent {
			return
		}
		p.sent = j
		if p.attachPer != nil {
			for to := sim.ProcessID(0); int(to) < env.N(); to++ {
				env.Send(to, Tick{K: j, Round: p.attachPer(env, j, to)})
			}
		} else {
			tick := Tick{K: j}
			if p.attach != nil {
				tick.Round = p.attach(env, j)
			}
			env.Broadcast(tick)
		}
		broadcast = true
	}

	switch m := msg.Payload.(type) {
	case sim.Wakeup:
		// Line 2: send (tick 0) to all [once].
		send(0)
	case Tick:
		if m.K < 0 {
			break // malformed; only Byzantine processes send these
		}
		if p.onReceive != nil && m.Round != nil {
			p.onReceive(msg.From, m.Round)
		}
		senders := p.recv[m.K]
		if senders == nil {
			senders = make(map[sim.ProcessID]bool)
			p.recv[m.K] = senders
		}
		senders[msg.From] = true
	}

	// Apply catch-up and advance rules to fixpoint. Multiple rules can be
	// enabled by one reception (e.g. a catch-up unlocking an advance).
	for {
		progressed := false

		// Catch-up rule (line 3): received (tick l) from f+1 distinct
		// processes with l > k. Apply with the largest such l.
		best := p.k
		for l, senders := range p.recv {
			if l > best && len(senders) >= p.f+1 {
				best = l
			}
		}
		if best > p.k {
			for j := p.k + 1; j <= best; j++ {
				send(j)
			}
			p.k = best
			advanced = true
			progressed = true
		}

		// Advance rule (line 6): received (tick k) from n−f distinct
		// processes.
		if len(p.recv[p.k]) >= p.n-p.f {
			send(p.k + 1)
			p.k++
			advanced = true
			progressed = true
		}

		if !progressed {
			break
		}
	}

	env.SetNote(Note{Clock: p.k, Advanced: advanced, Broadcast: broadcast})
}

// Spawner returns a sim.Config Spawn function creating Algorithm 1
// processes.
func Spawner(n, f int) func(sim.ProcessID) sim.Process {
	return func(sim.ProcessID) sim.Process { return New(n, f) }
}

// AllReached returns a sim.Config Until predicate that stops the run once
// every correct process's clock is at least k. Faulty process IDs are
// skipped.
func AllReached(k int, faulty map[sim.ProcessID]sim.Fault) func([]sim.Process) bool {
	return func(procs []sim.Process) bool {
		for id, pr := range procs {
			if _, bad := faulty[sim.ProcessID(id)]; bad {
				continue
			}
			cs, ok := pr.(*Proc)
			if !ok || cs.Clock() < k {
				return false
			}
		}
		return true
	}
}
