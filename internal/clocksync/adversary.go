package clocksync

import (
	"repro/internal/sim"
)

// Byzantine adversaries for Algorithm 1 experiments. All are deterministic
// given their seed, per the repository's reproducibility rule.

// xorshift is a tiny deterministic PRNG so adversaries do not share state
// with the simulator's delay randomness.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	if v == 0 {
		v = 0x9E3779B97F4A7C15
	}
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

// Adversaries carry a step budget: a Byzantine process reacting to every
// reception with fresh broadcasts — including receptions from other
// Byzantine processes — would otherwise amplify traffic without bound and
// the simulation would never quiesce. Budgeted misbehavior loses no
// generality for the finite prefixes the experiments examine.

// Rusher broadcasts ticks far ahead of the legitimate clock on every step,
// trying to drag correct clocks forward. With at most f Byzantine
// processes, the f+1 catch-up threshold makes this harmless.
type Rusher struct {
	Ahead  int
	Budget int
	step   int
}

// Step implements sim.Process.
func (r *Rusher) Step(env *sim.Env, msg sim.Message) {
	if r.step >= r.Budget {
		return
	}
	r.step++
	env.Broadcast(Tick{K: r.step * r.Ahead})
}

// Equivocator sends different tick values to different processes in the
// same step — the classic Byzantine behavior the distinct-sender counting
// of Algorithm 1 must withstand.
type Equivocator struct {
	Seed   uint64
	Budget int
	rng    xorshift
	init   bool
	step   int
}

// Step implements sim.Process.
func (e *Equivocator) Step(env *sim.Env, msg sim.Message) {
	if !e.init {
		e.rng = xorshift(e.Seed | 1)
		e.init = true
	}
	if e.step >= e.Budget {
		return
	}
	e.step++
	for q := sim.ProcessID(0); int(q) < env.N(); q++ {
		env.Send(q, Tick{K: e.rng.intn(20)})
	}
}

// Laggard replays old ticks only, trying to hold correct clocks back.
type Laggard struct {
	Budget int
	step   int
}

// Step implements sim.Process.
func (l *Laggard) Step(env *sim.Env, msg sim.Message) {
	if l.step >= l.Budget {
		return
	}
	l.step++
	env.Broadcast(Tick{K: 0})
}

// MalformedSender emits negative ticks and junk payloads, exercising input
// validation at correct processes.
type MalformedSender struct {
	Budget int
	step   int
}

// Step implements sim.Process.
func (m *MalformedSender) Step(env *sim.Env, msg sim.Message) {
	if m.step >= m.Budget {
		return
	}
	m.step++
	env.Broadcast(Tick{K: -3})
	env.Broadcast("junk")
}

// Adversary returns the i-th member of the deterministic Byzantine
// assortment, cycling through the adversary kinds. It is the per-slot
// form of Adversaries, used as the workload.ByzFactory behind the shared
// fault axis (`faults=byz/K`).
func Adversary(i int, seed uint64, budget int) sim.Process {
	switch i % 4 {
	case 0:
		return &Equivocator{Seed: seed + uint64(i), Budget: budget}
	case 1:
		return &Rusher{Ahead: 5, Budget: budget}
	case 2:
		return &Laggard{Budget: budget}
	default:
		return &MalformedSender{Budget: budget}
	}
}

// Adversaries returns a deterministic assortment of Byzantine behaviors
// for f faulty processes (IDs n-f .. n-1), cycling through the adversary
// kinds. Used by experiments and benchmarks.
func Adversaries(n, f int, seed uint64) map[sim.ProcessID]sim.Fault {
	faults := make(map[sim.ProcessID]sim.Fault, f)
	const budget = 60
	for i := 0; i < f; i++ {
		faults[sim.ProcessID(n-1-i)] = sim.ByzantineFault(Adversary(i, seed, budget))
	}
	return faults
}
