package clocksync

import (
	"context"
	"fmt"

	"repro/internal/causality"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Monitors turn the theorems of Section 3 into trace-level checks. They
// observe only the Note annotations and message structure of a finished
// trace — never the algorithm's internals — so they validate exactly what
// the theorems claim.

// clockOf returns the clock value recorded at a processed event, or
// (0, false) for unprocessed events or foreign notes.
func clockOf(ev sim.Event) (int, bool) {
	n, ok := ev.Note.(Note)
	if !ok {
		return 0, false
	}
	return n.Clock, true
}

// CheckProgress verifies Theorem 1's conclusion on a finite prefix: every
// correct process's clock reached at least min by the end of the trace.
func CheckProgress(t *sim.Trace, min int) error {
	final := make(map[sim.ProcessID]int)
	for _, ev := range t.Events {
		if c, ok := clockOf(ev); ok {
			final[ev.Proc] = c
		}
	}
	for _, p := range t.CorrectProcesses() {
		if final[p] < min {
			return fmt.Errorf("clocksync: process %d reached clock %d < %d", p, final[p], min)
		}
	}
	return nil
}

// CheckMonotone verifies that correct clocks never decrease — immediate
// from the code of Algorithm 1, and a prerequisite for frontier clock
// values being well defined.
func CheckMonotone(t *sim.Trace) error {
	last := make(map[sim.ProcessID]int)
	for _, ev := range t.Events {
		c, ok := clockOf(ev)
		if !ok {
			continue
		}
		if prev, seen := last[ev.Proc]; seen && c < prev {
			return fmt.Errorf("clocksync: clock of %d decreased from %d to %d", ev.Proc, prev, c)
		}
		last[ev.Proc] = c
	}
	return nil
}

// CheckRealTimePrecision verifies Theorem 3: at every real time t,
// |Cp(t) − Cq(t)| <= bound for all correct p, q. Clocks are 0 before the
// first event (Algorithm 1 initializes k to 0).
func CheckRealTimePrecision(t *sim.Trace, bound int64) error {
	clocks := make([]int, t.N)
	correct := make([]bool, t.N)
	for _, p := range t.CorrectProcesses() {
		correct[p] = true
	}
	for i := 0; i < len(t.Events); {
		// Apply the whole group of simultaneous events, then snapshot.
		j := i
		for j < len(t.Events) && t.Events[j].Time.Equal(t.Events[i].Time) {
			ev := t.Events[j]
			if c, ok := clockOf(ev); ok {
				clocks[ev.Proc] = c
			}
			j++
		}
		min, max := -1, -1
		for p := 0; p < t.N; p++ {
			if !correct[p] {
				continue
			}
			if min == -1 || clocks[p] < min {
				min = clocks[p]
			}
			if clocks[p] > max {
				max = clocks[p]
			}
		}
		if min >= 0 && int64(max-min) > bound {
			return fmt.Errorf("clocksync: precision %d exceeds %d at time %v", max-min, bound, t.Events[i].Time)
		}
		i = j
	}
	return nil
}

// CheckCausalCone verifies Lemma 4 (with the integerized bound X): whenever
// a correct process p's clock reaches c at an event, p has already received
// (tick ℓ) from every correct process for every ℓ <= c − X.
func CheckCausalCone(t *sim.Trace, x int64) error {
	correct := t.CorrectProcesses()
	isCorrect := make([]bool, t.N)
	for _, p := range correct {
		isCorrect[p] = true
	}
	// maxTick[p][q] is the highest tick p has received from q so far; -1
	// when none. Ticks are broadcast cumulatively (each value once, in
	// order), so "received (tick ℓ) for all ℓ <= k" is "maxTick >= k".
	maxTick := make([][]int, t.N)
	for p := range maxTick {
		maxTick[p] = make([]int, t.N)
		for q := range maxTick[p] {
			maxTick[p][q] = -1
		}
	}
	for _, ev := range t.Events {
		m := t.Msgs[ev.Trigger]
		if tick, ok := m.Payload.(Tick); ok && m.From >= 0 {
			if tick.K > maxTick[ev.Proc][m.From] {
				maxTick[ev.Proc][m.From] = tick.K
			}
		}
		if !isCorrect[ev.Proc] {
			continue
		}
		c, ok := clockOf(ev)
		if !ok {
			continue
		}
		k := int64(c) - x
		if k < 0 {
			continue
		}
		for _, q := range correct {
			if int64(maxTick[ev.Proc][q]) < k {
				return fmt.Errorf(
					"clocksync: p%d reached clock %d at event %d but has only tick %d from correct p%d (need >= %d)",
					ev.Proc, c, ev.Index, maxTick[ev.Proc][q], q, k)
			}
		}
	}
	return nil
}

// CheckConsistentCutSynchrony verifies Theorem 2 on a family of consistent
// cuts: the causal cone of every node (the finest consistent cuts
// available) plus every real-time cut. For each cut S containing an event
// of every correct process, |Cp(S) − Cq(S)| <= bound.
//
// Each cut's check is independent and the execution graph is immutable, so
// the cuts are sharded across GOMAXPROCS goroutines (runner.Map). The
// check is the dominant cost of the E10 evaluation on trace-sized graphs —
// one cone closure per node is O(V·(V+E)) total. The reported error is the
// first in the deterministic cone-then-time-cut order, independent of
// scheduling.
func CheckConsistentCutSynchrony(g *causality.Graph, bound int64) error {
	t := g.Trace()
	correct := t.CorrectProcesses()

	checkCut := func(cut *causality.Cut, what string) error {
		min, max := -1, -1
		for _, p := range correct {
			f := cut.Frontier(p)
			if f < 0 {
				return nil // not a consistent cut per Definition 5; skip
			}
			c, ok := clockOf(t.Events[g.Node(f).TracePos])
			if !ok {
				// Frontier is an unprocessed reception at a correct
				// process; cannot happen, but treat as clock 0.
				c = 0
			}
			if min == -1 || c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if min >= 0 && int64(max-min) > bound {
			return fmt.Errorf("clocksync: cut %s has spread %d > %d", what, max-min, bound)
		}
		return nil
	}

	// One task per node cone, then one per distinct occurrence time.
	var times []sim.Time
	seen := map[string]bool{}
	for id := 0; id < g.NumNodes(); id++ {
		ts := g.Node(causality.NodeID(id)).Time
		key := ts.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		times = append(times, ts)
	}
	task := func(i int) error {
		if i < g.NumNodes() {
			id := causality.NodeID(i)
			return checkCut(g.CausalCone(id), fmt.Sprintf("cone(%v)", g.Node(id)))
		}
		ts := times[i-g.NumNodes()]
		return checkCut(g.CutAtTime(ts), "time "+ts.String())
	}
	total := g.NumNodes() + len(times)

	// Parallel sweep with early exit: the first violation cancels the
	// remaining dispatch. Which violation a racing sweep reports is
	// schedule-dependent (and skipped tasks surface as ctx.Err), so on
	// failure re-scan serially — that stops at the first cut in the
	// canonical cone-then-time order, exactly like the pre-fleet serial
	// loop, and costs no more than that loop did. Passing traces (the
	// common case) pay only the parallel sweep.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := runner.Map(ctx, total, 0, func(i int) (struct{}, error) {
		err := task(i)
		if err != nil {
			cancel()
		}
		return struct{}{}, err
	})
	if err == nil {
		return nil
	}
	for i := 0; i < total; i++ {
		if err := task(i); err != nil {
			return err
		}
	}
	return nil
}

// CheckBoundedProgress verifies Theorem 4: whenever a correct process
// performs rho distinguished events (clock increment + broadcast) within a
// consistent cut interval, every correct process performs at least one
// distinguished event in that interval.
func CheckBoundedProgress(g *causality.Graph, rho int64) error {
	t := g.Trace()
	correct := t.CorrectProcesses()

	// Distinguished nodes per correct process, in local order.
	dist := make(map[sim.ProcessID][]causality.NodeID)
	for _, p := range correct {
		for _, id := range g.NodesOf(p) {
			n, ok := t.Events[g.Node(id).TracePos].Note.(Note)
			if ok && n.Advanced && n.Broadcast {
				dist[p] = append(dist[p], id)
			}
		}
	}

	for _, p := range correct {
		ds := dist[p]
		for i := 0; int64(i)+rho < int64(len(ds)); i += int(rho) {
			phi, phiPrime := ds[i], ds[i+int(rho)]
			inner := g.Interval(phi, phiPrime) // contains ds[i+1..i+rho]: rho events
			for _, q := range correct {
				found := false
				for _, e := range dist[q] {
					if inner.Contains(e) {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf(
						"clocksync: p%d performed %d distinguished events in [⟨%v⟩,⟨%v⟩] but p%d performed none",
						p, rho, g.Node(phi), g.Node(phiPrime), q)
				}
			}
		}
	}
	return nil
}
