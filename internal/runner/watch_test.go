package runner

import (
	"context"
	"testing"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/rat"
	"repro/internal/sim"
)

func watchConfig(seed int64) *sim.Config {
	// Odd seeds draw from a tight delay interval (admissible at Ξ=3/2 in
	// practice), even seeds from a wide one (usually violating), so a
	// sweep exercises both watch outcomes.
	delays := sim.UniformDelay{Min: rat.One, Max: rat.FromInt(3)}
	if seed%2 == 1 {
		delays = sim.UniformDelay{Min: rat.One, Max: rat.New(17, 16)}
	}
	return &sim.Config{
		N: 3,
		Spawn: func(p sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < 5 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays:    delays,
		Seed:      seed,
		MaxEvents: 60,
	}
}

// TestWatchJobs streams incremental verdicts through the fleet and
// cross-checks every job against a batch check of the full (unwatched)
// run: watch inadmissible => batch inadmissible, watch admissible =>
// identical trace and verdict.
func TestWatchJobs(t *testing.T) {
	xi := rat.New(3, 2)
	const n = 24
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Key: "watch", Cfg: watchConfig(int64(i)), Xi: xi, Watch: true}
	}
	results, stats, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errored != 0 {
		t.Fatalf("%d jobs errored", stats.Errored)
	}
	violated := 0
	for i, r := range results {
		if r.Verdict == nil {
			t.Fatalf("job %d: no verdict", i)
		}
		full, err := sim.Run(*watchConfig(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		bv, err := check.ABC(causality.Build(full.Trace, causality.Options{}), xi)
		if err != nil {
			t.Fatal(err)
		}
		if r.Verdict.Admissible {
			if r.FirstViolation != -1 {
				t.Fatalf("job %d: admissible but FirstViolation=%d", i, r.FirstViolation)
			}
			if !bv.Admissible {
				t.Fatalf("job %d: watch admissible, batch inadmissible", i)
			}
			if r.Trace.Hash() != full.Trace.Hash() {
				t.Fatalf("job %d: watched run diverged from unwatched run", i)
			}
		} else {
			violated++
			if bv.Admissible {
				t.Fatalf("job %d: watch inadmissible, batch admissible", i)
			}
			if r.FirstViolation != len(r.Trace.Events)-1 {
				t.Fatalf("job %d: FirstViolation=%d, trace ends at %d",
					i, r.FirstViolation, len(r.Trace.Events)-1)
			}
			if r.Verdict.Witness == nil {
				t.Fatalf("job %d: inadmissible without witness", i)
			}
		}
	}
	if violated == 0 || violated == n {
		t.Fatalf("degenerate sweep: %d/%d violations", violated, n)
	}
	if stats.Admissible+stats.Inadmissible != n || stats.Inadmissible != violated {
		t.Fatalf("stats %+v inconsistent with %d violations", stats, violated)
	}
}

// TestWatchJobValidation pins the Watch precondition errors.
func TestWatchJobValidation(t *testing.T) {
	cfg := watchConfig(1)
	for name, job := range map[string]Job{
		"no-xi":       {Key: "w", Cfg: cfg, Watch: true},
		"trace-only":  {Key: "w", Trace: &sim.Trace{N: 1}, Watch: true, Xi: rat.FromInt(2)},
		"own-monitor": {Key: "w", Cfg: &sim.Config{N: cfg.N, Spawn: cfg.Spawn, Delays: cfg.Delays, Monitor: func(*sim.Trace) error { return nil }}, Watch: true, Xi: rat.FromInt(2)},
	} {
		results, _, err := Run(context.Background(), []Job{job}, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Err == nil {
			t.Errorf("%s: invalid watch job not rejected", name)
		}
	}
}

// TestWatchWithRatio: the ratio search runs on the watched (possibly
// aborted) trace's graph and agrees with a direct search on that trace.
func TestWatchWithRatio(t *testing.T) {
	xi := rat.New(3, 2)
	jobs := []Job{{Key: "w", Cfg: watchConfig(2), Xi: xi, Watch: true, Ratio: true}}
	results, _, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	ratio, found, err := check.MaxRelevantRatio(causality.Build(r.Trace, causality.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if found != r.RatioFound || (found && !ratio.Equal(r.Ratio)) {
		t.Fatalf("ratio (%v,%v) != direct (%v,%v)", r.Ratio, r.RatioFound, ratio, found)
	}
}
