package runner

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/rat"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// broadcastCfg is the small reference workload used across the package's
// tests: n processes, each broadcasting for the first `steps` steps.
func broadcastCfg(n, steps int, seed int64) *sim.Config {
	return &sim.Config{
		N: n,
		Spawn: func(sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < steps {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:      seed,
		MaxEvents: 100000,
	}
}

func TestRunCollectsInSubmissionOrder(t *testing.T) {
	jobs := SeedJobs("order", Seeds(0, 9), func(seed int64) Job {
		return Job{Cfg: broadcastCfg(3, 4, seed)}
	})
	results, stats, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		if want := fmt.Sprintf("order/seed=%d", i); r.Key != want {
			t.Errorf("result %d key %q, want %q", i, r.Key, want)
		}
		if r.Err != nil {
			t.Errorf("result %d: %v", i, r.Err)
		}
		if r.Trace == nil || len(r.Trace.Events) == 0 {
			t.Errorf("result %d has empty trace", i)
		}
	}
	if stats.Jobs != 9 || stats.Errored != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Events == 0 || stats.Msgs == 0 {
		t.Errorf("stats did not aggregate trace sizes: %+v", stats)
	}
}

func TestJobChecksAndVerdicts(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		// Fig. 1's relevant cycle has the exactly known critical ratio
		// 5/4: admissible at Ξ=2, and the ratio search must find it.
		{Key: "fig1", Trace: scenario.BuildFig1().Trace, Xi: rat.FromInt(2), Ratio: true},
		{Key: "check-fails", Cfg: broadcastCfg(3, 4, 2), Check: func(*sim.Result) error { return boom }},
		{Key: "bad-config", Cfg: &sim.Config{N: -1}},
		{Key: "empty"},
	}
	results, stats, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Admissible() {
		t.Errorf("Fig. 1 not admissible at Ξ=2: %+v", results[0].Verdict)
	}
	if results[0].Graph == nil {
		t.Error("graph not retained for checked job")
	}
	if !results[0].RatioFound || !results[0].Ratio.Equal(rat.New(5, 4)) {
		t.Errorf("Fig. 1 critical ratio = %v (found=%v), want 5/4",
			results[0].Ratio, results[0].RatioFound)
	}
	if !errors.Is(results[1].CheckErr, boom) {
		t.Errorf("CheckErr = %v, want boom", results[1].CheckErr)
	}
	if results[2].Err == nil {
		t.Error("invalid config did not error")
	}
	if !errors.Is(results[3].Err, errJobEmpty) {
		t.Errorf("empty job error = %v", results[3].Err)
	}
	if stats.Errored != 2 || stats.CheckFailed != 1 || stats.Admissible != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if !stats.MaxRatioFound || stats.MaxRatioKey != "fig1" {
		t.Errorf("max ratio not aggregated: %+v", stats)
	}
}

func TestTraceOnlyJobs(t *testing.T) {
	// A pre-built trace (no simulation) still supports checks: run a
	// simulation once, then submit its trace as a trace-only job.
	sr, err := sim.Run(*broadcastCfg(3, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{{Key: "trace", Trace: sr.Trace, Xi: rat.FromInt(2)}}
	results, _, err := Run(context.Background(), jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Sim != nil {
		t.Error("trace-only job has a Sim result")
	}
	if !results[0].Admissible() {
		t.Error("trace-only job not checked")
	}
}

func TestGridExpansionOrderAndKeys(t *testing.T) {
	g := Grid{
		Name:       "g",
		Seeds:      []int64{0, 1},
		Ns:         []int{2, 3},
		Delays:     []string{"fast", "slow"},
		Topologies: []string{"full"},
		Make: func(p Point) (Job, error) {
			return Job{Cfg: broadcastCfg(p.N, 2, p.Seed)}, nil
		},
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 8 {
		t.Fatalf("got %d jobs, want 8", len(jobs))
	}
	// Row-major, seed innermost: first four cells cover delay "fast".
	want := []string{
		"g/n=2/seed=0/delay=fast/topology=full", "g/n=2/seed=1/delay=fast/topology=full",
		"g/n=3/seed=0/delay=fast/topology=full", "g/n=3/seed=1/delay=fast/topology=full",
		"g/n=2/seed=0/delay=slow/topology=full", "g/n=2/seed=1/delay=slow/topology=full",
		"g/n=3/seed=0/delay=slow/topology=full", "g/n=3/seed=1/delay=slow/topology=full",
	}
	for i, j := range jobs {
		if j.Key != want[i] {
			t.Errorf("job %d key %q, want %q", i, j.Key, want[i])
		}
	}

	// Expansion is pure: a second call yields the same keys.
	again, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Key != again[i].Key {
			t.Errorf("grid expansion unstable at %d", i)
		}
	}

	gridErr := errors.New("no such cell")
	g.Make = func(p Point) (Job, error) { return Job{}, gridErr }
	if _, err := g.Jobs(); !errors.Is(err, gridErr) {
		t.Errorf("grid error not propagated: %v", err)
	}
}

// TestPointKeyNoCollisions pins the name=value segment format of Point.Key.
// The former bare-value join made distinct points collide once axis values
// contained "/" — exactly what generated topology specs like "torus/4x4"
// do — because a slash inside a value was indistinguishable from a segment
// separator.
func TestPointKeyNoCollisions(t *testing.T) {
	points := []Point{
		{Seed: 1, N: 4, Delay: "a/b"},
		{Seed: 1, N: 4, Delay: "a", Fault: "b"},
		{Seed: 1, N: 4, Delay: "a", Topology: "b"},
		{Seed: 1, N: 4, Topology: "torus/4x4"},
		{Seed: 1, N: 4, Fault: "torus", Topology: "4x4"},
	}
	seen := make(map[string]Point, len(points))
	for _, p := range points {
		k := p.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("key %q collides: %+v and %+v", k, prev, p)
		}
		seen[k] = p
	}
}

func TestMapOrderAndErrors(t *testing.T) {
	got, err := Map(context.Background(), 20, 4, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Errorf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
	mapErr := errors.New("task 7 failed")
	_, err = Map(context.Background(), 20, 4, func(i int) (int, error) {
		if i == 7 {
			return 0, mapErr
		}
		return i, nil
	})
	if !errors.Is(err, mapErr) {
		t.Errorf("Map error = %v", err)
	}
}

func TestStreamDeliversEveryJobExactlyOnce(t *testing.T) {
	jobs := SeedJobs("stream", Seeds(0, 16), func(seed int64) Job {
		return Job{Cfg: broadcastCfg(2, 3, seed)}
	})
	seen := make(map[int]int)
	for r := range Stream(context.Background(), jobs, Options{Workers: 3}) {
		seen[r.Index]++
	}
	for i := range jobs {
		if seen[i] != 1 {
			t.Errorf("job %d delivered %d times", i, seen[i])
		}
	}
}
