package runner

import "fmt"

// Point is one cell of a Grid sweep: the selected value of every axis.
// Axes left empty on the Grid appear here as their zero value.
type Point struct {
	Seed     int64
	N        int
	Delay    string
	Fault    string
	Topology string
}

// Key renders the point as a stable human-readable label.
func (p Point) Key() string {
	s := fmt.Sprintf("seed=%d", p.Seed)
	if p.N > 0 {
		s = fmt.Sprintf("n=%d/%s", p.N, s)
	}
	for _, part := range []string{p.Delay, p.Fault, p.Topology} {
		if part != "" {
			s += "/" + part
		}
	}
	return s
}

// Grid describes a rectangular sweep over the fleet's canonical axes:
// seed × N × delay policy × fault set × topology. Empty axes contribute a
// single default cell. Jobs are emitted in row-major order with the
// topology axis outermost and the seed axis innermost, so job indices —
// and therefore the order of collected results — are a pure function of
// the grid, independent of worker count.
type Grid struct {
	// Name prefixes every generated job key.
	Name string
	// Axes. Delay/Fault/Topology axes are named; Make maps the names to
	// concrete policies, keeping the grid declarative and its expansion
	// order obvious.
	Seeds      []int64
	Ns         []int
	Delays     []string
	Faults     []string
	Topologies []string
	// Make builds the job for one cell. A returned job with an empty Key
	// gets "Name/Point.Key()".
	Make func(p Point) (Job, error)
}

// Jobs expands the grid into a job batch.
func (g Grid) Jobs() ([]Job, error) {
	if g.Make == nil {
		return nil, fmt.Errorf("runner: grid %q has no Make", g.Name)
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	ns := g.Ns
	if len(ns) == 0 {
		ns = []int{0}
	}
	orOne := func(axis []string) []string {
		if len(axis) == 0 {
			return []string{""}
		}
		return axis
	}
	delays, faults, topos := orOne(g.Delays), orOne(g.Faults), orOne(g.Topologies)

	var jobs []Job
	for _, topo := range topos {
		for _, fault := range faults {
			for _, delay := range delays {
				for _, n := range ns {
					for _, seed := range seeds {
						p := Point{Seed: seed, N: n, Delay: delay, Fault: fault, Topology: topo}
						job, err := g.Make(p)
						if err != nil {
							return nil, fmt.Errorf("runner: grid %q at %s: %w", g.Name, p.Key(), err)
						}
						if job.Key == "" {
							job.Key = g.Name + "/" + p.Key()
						}
						jobs = append(jobs, job)
					}
				}
			}
		}
	}
	return jobs, nil
}

// SeedJobs is the common one-axis sweep: the same configuration replicated
// across seeds. mk receives the seed and must return a config seeded with
// it.
func SeedJobs(name string, seeds []int64, mk func(seed int64) Job) []Job {
	jobs := make([]Job, 0, len(seeds))
	for _, seed := range seeds {
		job := mk(seed)
		if job.Key == "" {
			job.Key = fmt.Sprintf("%s/seed=%d", name, seed)
		}
		jobs = append(jobs, job)
	}
	return jobs
}

// Seeds returns the contiguous seed range [from, from+count).
func Seeds(from int64, count int) []int64 {
	out := make([]int64, count)
	for i := range out {
		out[i] = from + int64(i)
	}
	return out
}
