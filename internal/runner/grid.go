package runner

import "fmt"

// Point is one cell of a Grid sweep: the selected value of every axis.
// Axes left empty on the Grid appear here as their zero value.
type Point struct {
	Seed     int64
	N        int
	Delay    string
	Fault    string
	Topology string
}

// Key renders the point as a stable human-readable label. Every segment is
// an explicit name=value pair: bare values joined by "/" were ambiguous
// once axis values themselves contain "/" (topology specs like
// "torus/4x4"), letting distinct points collide on one key.
func (p Point) Key() string {
	var s string
	if p.N > 0 {
		s = fmt.Sprintf("n=%d/", p.N)
	}
	s += fmt.Sprintf("seed=%d", p.Seed)
	for _, part := range []struct{ name, value string }{
		{"delay", p.Delay}, {"fault", p.Fault}, {"topology", p.Topology},
	} {
		if part.value != "" {
			s += "/" + part.name + "=" + part.value
		}
	}
	return s
}

// Grid describes a rectangular sweep over the fleet's canonical axes:
// seed × N × delay policy × fault set × topology. Empty axes contribute a
// single default cell. Jobs are emitted in row-major order with the
// topology axis outermost and the seed axis innermost, so job indices —
// and therefore the order of collected results — are a pure function of
// the grid, independent of worker count.
type Grid struct {
	// Name prefixes every generated job key.
	Name string
	// Axes. Delay/Fault/Topology axes are named; Make maps the names to
	// concrete policies, keeping the grid declarative and its expansion
	// order obvious.
	Seeds      []int64
	Ns         []int
	Delays     []string
	Faults     []string
	Topologies []string
	// Make builds the job for one cell. A returned job with an empty Key
	// gets "Name/Point.Key()".
	Make func(p Point) (Job, error)
}

// Jobs expands the grid into a job batch.
func (g Grid) Jobs() ([]Job, error) {
	if g.Make == nil {
		return nil, fmt.Errorf("runner: grid %q has no Make", g.Name)
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	ns := g.Ns
	if len(ns) == 0 {
		ns = []int{0}
	}
	orOne := func(axis []string) []string {
		if len(axis) == 0 {
			return []string{""}
		}
		return axis
	}
	delays, faults, topos := orOne(g.Delays), orOne(g.Faults), orOne(g.Topologies)

	var jobs []Job
	for _, topo := range topos {
		for _, fault := range faults {
			for _, delay := range delays {
				for _, n := range ns {
					for _, seed := range seeds {
						p := Point{Seed: seed, N: n, Delay: delay, Fault: fault, Topology: topo}
						job, err := g.Make(p)
						if err != nil {
							return nil, fmt.Errorf("runner: grid %q at %s: %w", g.Name, p.Key(), err)
						}
						if job.Key == "" {
							job.Key = g.Name + "/" + p.Key()
						}
						jobs = append(jobs, job)
					}
				}
			}
		}
	}
	return jobs, nil
}

// SeedJobs is the common one-axis sweep: the same configuration replicated
// across seeds. mk receives the seed and must return a config seeded with
// it.
func SeedJobs(name string, seeds []int64, mk func(seed int64) Job) []Job {
	jobs := make([]Job, 0, len(seeds))
	for _, seed := range seeds {
		job := mk(seed)
		if job.Key == "" {
			job.Key = fmt.Sprintf("%s/seed=%d", name, seed)
		}
		jobs = append(jobs, job)
	}
	return jobs
}

// Axis is one named dimension of a ParamGrid sweep.
type Axis struct {
	// Param is the parameter name the axis varies.
	Param string
	// Values are the settings to sweep, in sweep order.
	Values []string
}

// ParamGrid is the generic workload sweep: named string-valued axes
// expanded row-major — the first axis outermost, the seed axis innermost —
// so job indices, and therefore the order of collected results, are a pure
// function of the grid, independent of worker count. It is the
// registry-facing counterpart of Grid: axes carry arbitrary workload
// parameters instead of the fleet's canonical ones.
type ParamGrid struct {
	// Name prefixes every generated job key.
	Name string
	// Axes are the swept parameters; an axis with no values contributes a
	// single cell with the empty setting.
	Axes []Axis
	// Seeds is the innermost axis; empty means the single seed 0.
	Seeds []int64
	// Make builds the job for one cell from the axis assignment (one entry
	// per axis) and the seed. A returned job with an empty Key gets
	// "Name/param=value/.../seed=N" with one segment per multi-valued axis.
	Make func(params map[string]string, seed int64) (Job, error)
}

// Jobs expands the grid into a job batch.
func (g ParamGrid) Jobs() ([]Job, error) {
	if g.Make == nil {
		return nil, fmt.Errorf("runner: param grid %q has no Make", g.Name)
	}
	seen := make(map[string]bool, len(g.Axes))
	for _, ax := range g.Axes {
		if ax.Param == "" {
			return nil, fmt.Errorf("runner: param grid %q has an unnamed axis", g.Name)
		}
		if seen[ax.Param] {
			// A duplicate axis would silently let the later one win while
			// the job keys name both values — mislabeled sweeps.
			return nil, fmt.Errorf("runner: param grid %q sweeps %q twice", g.Name, ax.Param)
		}
		seen[ax.Param] = true
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	cells := 1
	for _, ax := range g.Axes {
		if n := len(ax.Values); n > 0 {
			cells *= n
		}
	}
	jobs := make([]Job, 0, cells*len(seeds))
	assign := make([]string, len(g.Axes))
	var expand func(axis int) error
	expand = func(axis int) error {
		if axis == len(g.Axes) {
			params := make(map[string]string, len(g.Axes))
			key := g.Name
			for i, ax := range g.Axes {
				params[ax.Param] = assign[i]
				if len(ax.Values) > 1 {
					key += fmt.Sprintf("/%s=%s", ax.Param, assign[i])
				}
			}
			for _, seed := range seeds {
				job, err := g.Make(params, seed)
				if err != nil {
					return fmt.Errorf("runner: param grid %q at %v seed=%d: %w", g.Name, params, seed, err)
				}
				if job.Key == "" {
					job.Key = fmt.Sprintf("%s/seed=%d", key, seed)
				}
				jobs = append(jobs, job)
			}
			return nil
		}
		values := g.Axes[axis].Values
		if len(values) == 0 {
			values = []string{""}
		}
		for _, v := range values {
			assign[axis] = v
			if err := expand(axis + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := expand(0); err != nil {
		return nil, err
	}
	return jobs, nil
}

// Seeds returns the contiguous seed range [from, from+count).
func Seeds(from int64, count int) []int64 {
	out := make([]int64, count)
	for i := range out {
		out[i] = from + int64(i)
	}
	return out
}
