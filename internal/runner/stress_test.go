package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// TestFleetStressLargeBatchTinyPool pushes a large batch through a
// deliberately undersized pool. Run under -race in CI, this exercises the
// index-channel handoff, per-worker engine reuse, and the streaming
// aggregation concurrently and at volume.
func TestFleetStressLargeBatchTinyPool(t *testing.T) {
	const batch = 400
	jobs := SeedJobs("stress", Seeds(0, batch), func(seed int64) Job {
		// Vary the shape with the seed so pooled engine arrays grow and
		// shrink continuously across one worker's job stream.
		n := 2 + int(seed%4)
		return Job{Cfg: broadcastCfg(n, 3, seed)}
	})
	results, stats, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs != batch || stats.Errored != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// Spot-check determinism inside the stress volume: job i must equal a
	// serial run of its config.
	for _, i := range []int{0, 17, batch - 1} {
		serial, err := sim.Run(*jobs[i].Cfg)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Trace.Hash() != serial.Trace.Hash() {
			t.Errorf("job %d trace differs from serial run", i)
		}
	}
}

// TestFleetCancelledMidBatch cancels the context from inside an early
// job's check. Every submitted job must still produce exactly one result:
// completed jobs a valid one, unstarted jobs a context error.
func TestFleetCancelledMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const batch = 200
	var cancelled atomic.Bool
	jobs := SeedJobs("cancel", Seeds(0, batch), func(seed int64) Job {
		job := Job{Cfg: broadcastCfg(2, 3, seed)}
		if seed == 3 {
			job.Check = func(*sim.Result) error {
				cancel()
				cancelled.Store(true)
				return nil
			}
		}
		return job
	})

	results, stats, err := Run(ctx, jobs, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if !cancelled.Load() {
		t.Fatal("cancelling check never ran")
	}
	if len(results) != batch || stats.Jobs != batch {
		t.Fatalf("got %d results / %d stats jobs, want %d", len(results), stats.Jobs, batch)
	}
	completed, skipped := 0, 0
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		switch {
		case r.Err == nil:
			completed++
			if r.Trace == nil || len(r.Trace.Events) == 0 {
				t.Errorf("completed job %d has no trace", i)
			}
		case errors.Is(r.Err, context.Canceled):
			skipped++
		default:
			t.Errorf("job %d unexpected error: %v", i, r.Err)
		}
	}
	if completed == 0 {
		t.Error("no job completed before cancellation")
	}
	if skipped == 0 {
		t.Error("cancellation mid-batch skipped nothing")
	}
	if stats.Errored != skipped {
		t.Errorf("stats.Errored = %d, want %d", stats.Errored, skipped)
	}
}

// TestFleetCancelledBeforeStart submits to an already-cancelled context:
// every job must come back promptly with the context error.
func TestFleetCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := SeedJobs("dead", Seeds(0, 50), func(seed int64) Job {
		return Job{Cfg: broadcastCfg(2, 3, seed)}
	})
	results, stats, err := Run(ctx, jobs, Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v", err)
	}
	if stats.Errored != len(jobs) {
		t.Errorf("stats.Errored = %d, want %d", stats.Errored, len(jobs))
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d error = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestMapCancelledMidBatch mirrors the cancellation contract for the
// generic fan-out.
func TestMapCancelledMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Map(ctx, 100, 2, func(i int) (int, error) {
		if i == 5 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Map error = %v, want context.Canceled", err)
	}
}
