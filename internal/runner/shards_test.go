package runner

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/rat"
	"repro/internal/sim"
)

// TestShardSplit pins the worker/shard split so the two auto-sizers can
// never drift into oversubscribing each other: whenever either knob is
// auto-sized, the resolved workers × shards product must stay within
// GOMAXPROCS. Explicitly setting both knobs is the caller's business and
// bypasses the guard (the W3/S3-on-8 row).
func TestShardSplit(t *testing.T) {
	cases := []struct {
		name                    string
		procs, w, s, jobs       int
		wantWorkers, wantShards int
	}{
		{"defaults-wide-batch", 8, 0, 0, 100, 8, 1},
		{"auto-shards-wide-batch", 8, 0, ShardsAuto, 100, 8, 1},
		{"auto-shards-two-jobs", 8, 0, ShardsAuto, 2, 2, 4},
		{"auto-shards-three-jobs", 8, 0, ShardsAuto, 3, 3, 2},
		{"auto-shards-explicit-workers", 8, 2, ShardsAuto, 100, 2, 4},
		{"explicit-shards-auto-workers", 8, 0, 4, 100, 2, 4},
		{"both-explicit-oversubscribed", 8, 3, 3, 100, 3, 3},
		{"explicit-shards-one", 8, 0, 1, 100, 8, 1},
		{"single-core-defaults", 1, 0, 0, 5, 1, 1},
		{"single-core-auto-shards", 1, 0, ShardsAuto, 5, 1, 1},
		{"workers-exceed-procs", 4, 8, ShardsAuto, 100, 8, 1},
		{"empty-batch", 8, 0, 0, 0, 8, 1},
		{"shards-exceed-procs", 4, 0, 8, 100, 1, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := Options{Workers: tc.w, Shards: tc.s}
			workers, shards := o.split(tc.jobs, tc.procs)
			if workers != tc.wantWorkers || shards != tc.wantShards {
				t.Fatalf("split(jobs=%d, procs=%d) with W=%d S=%d = (%d, %d), want (%d, %d)",
					tc.jobs, tc.procs, tc.w, tc.s, workers, shards, tc.wantWorkers, tc.wantShards)
			}
		})
	}
}

// TestShardSplitNeverOversubscribes sweeps the auto-sizing space
// exhaustively: for every processor count, batch size, and auto
// combination (Workers unset and/or Shards = ShardsAuto), the product of
// the resolved split must not exceed the processor count — unless one
// side was pinned explicitly above it by the caller.
func TestShardSplitNeverOversubscribes(t *testing.T) {
	for procs := 1; procs <= 16; procs++ {
		for jobs := 0; jobs <= 20; jobs++ {
			for _, w := range []int{0, 1, 2, procs} {
				o := Options{Workers: w, Shards: ShardsAuto}
				workers, shards := o.split(jobs, procs)
				if workers < 1 || shards < 1 {
					t.Fatalf("procs=%d jobs=%d W=%d: degenerate split (%d, %d)", procs, jobs, w, workers, shards)
				}
				if w > 0 && w > procs {
					continue // caller pinned workers above the machine
				}
				if workers*shards > procs {
					t.Errorf("procs=%d jobs=%d W=%d: %d workers × %d shards oversubscribes", procs, jobs, w, workers, shards)
				}
			}
		}
	}
}

// TestFleetShardDeterminism is the fleet-level half of the shard
// invisibility contract: the golden grid run with per-job sharding
// (explicit and auto) hashes identically to the serial-engine fleet.
// Together with TestFleetGoldenTraceDeterminism (fleet == serial sim.Run)
// this pins sharded fleet == serial sim.Run across the whole grid.
func TestFleetShardDeterminism(t *testing.T) {
	jobs := goldenJobs(t)
	base, stats, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errored != 0 {
		t.Fatalf("%d baseline jobs errored", stats.Errored)
	}
	for _, opts := range []Options{
		{Workers: 2, Shards: 2},
		{Workers: 2, Shards: ShardsAuto},
	} {
		name := fmt.Sprintf("workers=%d/shards=%d", opts.Workers, opts.Shards)
		t.Run(name, func(t *testing.T) {
			results, stats, err := Run(context.Background(), jobs, opts)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Errored != 0 {
				t.Fatalf("%d jobs errored", stats.Errored)
			}
			sharded := 0
			for i, r := range results {
				if r.Trace.Hash() != base[i].Trace.Hash() {
					t.Errorf("%s: sharded fleet trace differs from serial fleet", r.Key)
				}
				if r.Sim != nil && r.Sim.Shards > 1 {
					sharded++
				}
				if r.Elapsed <= 0 {
					t.Errorf("%s: Elapsed not recorded", r.Key)
				}
			}
			if opts.Shards > 1 && sharded == 0 {
				t.Error("no job actually ran on the sharded engine (all fell back)")
			}
		})
	}
}

// TestFleetJobShardsWin verifies that a job which chooses its own
// Cfg.Shards is not overridden by the fleet-level knob.
func TestFleetJobShardsWin(t *testing.T) {
	spawn := func(sim.ProcessID) sim.Process {
		return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
			if env.StepIndex() < 4 {
				env.Broadcast(env.StepIndex())
			}
		})
	}
	mk := func(shards int) *sim.Config {
		return &sim.Config{
			N: 8, Spawn: spawn, Shards: shards,
			Delays: sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
			Seed:   5, MaxEvents: 50000,
		}
	}
	jobs := []Job{
		{Key: "own-serial", Cfg: mk(1)},
		{Key: "own-two", Cfg: mk(2)},
		{Key: "fleet-decides", Cfg: mk(0)},
	}
	results, _, err := Run(context.Background(), jobs, Options{Workers: 1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Key, r.Err)
		}
		if r.Sim.Shards != want[i] {
			t.Errorf("%s: ran with %d shards, want %d", r.Key, r.Sim.Shards, want[i])
		}
	}
}
