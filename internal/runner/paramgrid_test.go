package runner

import (
	"errors"
	"fmt"
	"testing"
)

func TestParamGridExpansion(t *testing.T) {
	var got []string
	g := ParamGrid{
		Name: "pg",
		Axes: []Axis{
			{Param: "a", Values: []string{"1", "2"}},
			{Param: "b", Values: []string{"x"}},
			{Param: "c", Values: nil}, // empty axis: single cell, empty setting
		},
		Seeds: []int64{7, 8},
		Make: func(params map[string]string, seed int64) (Job, error) {
			got = append(got, fmt.Sprintf("a=%s b=%s c=%s seed=%d",
				params["a"], params["b"], params["c"], seed))
			return Job{Trace: nil, Cfg: nil, Key: ""}, nil
		},
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	wantCells := []string{
		"a=1 b=x c= seed=7", "a=1 b=x c= seed=8",
		"a=2 b=x c= seed=7", "a=2 b=x c= seed=8",
	}
	if len(got) != len(wantCells) {
		t.Fatalf("expanded %d cells, want %d: %v", len(got), len(wantCells), got)
	}
	for i := range wantCells {
		if got[i] != wantCells[i] {
			t.Errorf("cell %d: %q, want %q", i, got[i], wantCells[i])
		}
	}
	// Keys mention only the multi-valued axis, the seed always.
	wantKeys := []string{
		"pg/a=1/seed=7", "pg/a=1/seed=8",
		"pg/a=2/seed=7", "pg/a=2/seed=8",
	}
	for i, job := range jobs {
		if job.Key != wantKeys[i] {
			t.Errorf("job %d: key %q, want %q", i, job.Key, wantKeys[i])
		}
	}
}

func TestParamGridDefaultsAndErrors(t *testing.T) {
	g := ParamGrid{Name: "pg"}
	if _, err := g.Jobs(); err == nil {
		t.Error("grid without Make accepted")
	}

	g.Make = func(params map[string]string, seed int64) (Job, error) {
		if seed != 0 {
			t.Errorf("default seed = %d, want 0", seed)
		}
		return Job{Key: "preset"}, nil
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Key != "preset" {
		t.Errorf("axis-free grid = %+v, want one job with its preset key", jobs)
	}

	boom := errors.New("boom")
	g.Make = func(map[string]string, int64) (Job, error) { return Job{}, boom }
	if _, err := g.Jobs(); !errors.Is(err, boom) {
		t.Errorf("Make error not propagated: %v", err)
	}

	g.Make = func(map[string]string, int64) (Job, error) { return Job{}, nil }
	g.Axes = []Axis{{Param: "a", Values: []string{"1"}}, {Param: "a", Values: []string{"2"}}}
	if _, err := g.Jobs(); err == nil {
		t.Error("duplicate axis accepted")
	}
	g.Axes = []Axis{{Param: "", Values: []string{"1"}}}
	if _, err := g.Jobs(); err == nil {
		t.Error("unnamed axis accepted")
	}
}
