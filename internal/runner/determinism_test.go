package runner

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/rat"
	"repro/internal/sim"
)

// pointerPayload mimics workloads like lockstep whose messages carry
// pointers: the %v rendering of such payloads would expose heap addresses
// (allocation accidents) if trace serialization did not mask them, so the
// golden grid must include this payload class (it once hid a hash
// instability that int/string payloads cannot reveal).
type pointerPayload struct {
	Step int
	Data *[3]int
}

// goldenJobs is the golden fleet: a grid over seeds, system sizes, delay
// policies, fault sets, and topologies, deliberately covering every
// randomized delay policy (the only RNG consumers), crash, silent, and
// scripted-Byzantine faults, and both plain and pointer-carrying payloads.
func goldenJobs(t testing.TB) []Job {
	spawn := func(steps int) func(sim.ProcessID) sim.Process {
		return func(sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < steps {
					env.Broadcast(env.StepIndex())
				}
			})
		}
	}
	spawnPtr := func(steps int) func(sim.ProcessID) sim.Process {
		return func(sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < steps {
					env.Broadcast(pointerPayload{Step: env.StepIndex(), Data: &[3]int{1, 2, env.StepIndex()}})
				}
			})
		}
	}
	// legalTarget picks a topology-legal scripted-send recipient for the
	// Byzantine process: its first out-neighbor, or itself when isolated
	// (self-sends are always legal).
	legalTarget := func(topo sim.Topology, from sim.ProcessID, n int) sim.ProcessID {
		if topo == nil {
			return 0
		}
		for to := sim.ProcessID(0); int(to) < n; to++ {
			if to != from && topo.Linked(from, to) {
				return to
			}
		}
		return from
	}
	grid := Grid{
		Name:   "golden",
		Seeds:  Seeds(0, 4),
		Ns:     []int{2, 5},
		Delays: []string{"uniform", "growing", "perlink", "override"},
		Faults: []string{"none", "mixed"},
		// "ringfn" is the predicate-backed ring (the TopologyFunc path);
		// the rest are CSR generators parsed by sim.ParseTopology,
		// including a disconnected one (islands/2).
		Topologies: []string{"full", "ringfn", "ring", "torus", "regular/1", "scalefree/1", "islands/2"},
		Make: func(p Point) (Job, error) {
			cfg := sim.Config{
				N:         p.N,
				Spawn:     spawn(5),
				Seed:      p.Seed,
				MaxEvents: 50000,
			}
			switch p.Delay {
			case "uniform":
				cfg.Delays = sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)}
			case "growing":
				cfg.Delays = sim.GrowingDelay{Base: rat.One, Rate: rat.New(1, 20), Spread: rat.New(6, 5)}
			case "perlink":
				cfg.Delays = sim.PerLinkDelay{
					Default: sim.UniformDelay{Min: rat.One, Max: rat.FromInt(2)},
					Links: map[sim.Link]sim.DelayPolicy{
						{From: 0, To: 1}: sim.ConstantDelay{D: rat.New(1, 2)},
					},
				}
			case "override":
				cfg.Delays = sim.OverrideDelay{
					Base: sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
					Match: func(m sim.Message) bool {
						v, ok := m.Payload.(int)
						return ok && v == 1
					},
					Override: sim.UniformDelay{Min: rat.FromInt(3), Max: rat.FromInt(5)},
				}
			}
			switch p.Topology {
			case "full":
			case "ringfn":
				n := p.N
				cfg.Topology = sim.TopologyFunc(func(from, to sim.ProcessID) bool {
					return to == (from+1)%sim.ProcessID(n) || from == to
				})
			default:
				topo, err := sim.ParseTopology(p.Topology, p.N, p.Seed)
				if err != nil {
					return Job{}, err
				}
				cfg.Topology = topo
			}
			if p.Fault == "mixed" {
				cfg.Faults = map[sim.ProcessID]sim.Fault{
					0: sim.Crash(3),
					1: {CrashAfter: sim.NeverCrash, Script: []sim.ScriptedSend{
						{At: rat.FromInt(2), To: legalTarget(cfg.Topology, 1, p.N), Payload: "forged"},
					}},
				}
			}
			return Job{Cfg: &cfg}, nil
		},
	}
	jobs, err := grid.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range Seeds(0, 4) {
		jobs = append(jobs, Job{
			Key: fmt.Sprintf("golden/ptr-payload/seed=%d", seed),
			Cfg: &sim.Config{
				N: 4, Spawn: spawnPtr(5),
				Delays: sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
				Seed:   seed, MaxEvents: 50000,
			},
		})
	}
	return jobs
}

// TestFleetGoldenTraceDeterminism is the bit-identity contract of the
// fleet: for every job in the golden grid, the trace produced by the
// parallel runner hashes identically to a serial sim.Run of the same
// Config, for every worker count in {1, 2, 8}. The test body is
// order-independent, so it holds under go test -shuffle=on (which CI
// runs).
func TestFleetGoldenTraceDeterminism(t *testing.T) {
	jobs := goldenJobs(t)

	// Golden hashes from the strictly serial path.
	golden := make([]uint64, len(jobs))
	for i, job := range jobs {
		res, err := sim.Run(*job.Cfg)
		if err != nil {
			t.Fatalf("serial %s: %v", job.Key, err)
		}
		golden[i] = res.Trace.Hash()
	}

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			results, stats, err := Run(context.Background(), jobs, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Errored != 0 {
				t.Fatalf("%d jobs errored", stats.Errored)
			}
			for i, r := range results {
				if got := r.Trace.Hash(); got != golden[i] {
					t.Errorf("%s: fleet trace %x != serial trace %x", r.Key, got, golden[i])
				}
			}
		})
	}
}

// TestFleetRunsAreRepeatable re-runs the same batch at the same width and
// asserts hash-identical results — no hidden per-run state in the fleet.
func TestFleetRunsAreRepeatable(t *testing.T) {
	jobs := goldenJobs(t)
	first, _, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if first[i].Trace.Hash() != second[i].Trace.Hash() {
			t.Errorf("%s: repeated fleet run produced a different trace", jobs[i].Key)
		}
	}
}
