package runner

import (
	"context"
	"sync"
)

// Map fans f(0..n-1) out over the given number of workers and returns the
// results in index order. It is the generic sibling of Run for work that
// is not a simulation job — e.g. running whole experiment functions
// concurrently. The first error encountered (in index order) is returned
// alongside the full result slice; slots whose f was skipped due to
// cancellation hold the zero value and the context error is returned.
func Map[T any](ctx context.Context, n, workers int, f func(i int) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers, _ = Options{}.Plan(n)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	indices := make(chan int)
	go func() {
		defer close(indices)
		for i := 0; i < n; i++ {
			select {
			case indices <- i:
			case <-ctx.Done():
				for j := i; j < n; j++ {
					errs[j] = ctx.Err()
				}
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				results[i], errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
