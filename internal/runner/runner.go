// Package runner is a worker-pool fleet for simulation and admissibility
// checking. It shards batches of jobs — each a sim.Config to execute and/or
// a trace to check — across GOMAXPROCS-bounded goroutines, streams per-job
// results over a channel as they complete, and collects them back into the
// stable (batch, index) order so that aggregate outcomes are independent of
// worker count and scheduling.
//
// Determinism contract: every job carries its own seed inside its
// sim.Config, every worker runs jobs on a private sim.Engine, and no state
// is shared between jobs, so the trace produced for a job is bit-identical
// (sim.Trace.Hash-equal) to a serial sim.Run of the same Config regardless
// of Workers — and, because the sharded engine is itself byte-identical at
// every shard count, regardless of Shards. The golden-trace test in this
// package pins that contract for workers ∈ {1, 2, 8}.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/rat"
	"repro/internal/sim"
)

// Job is one unit of fleet work: either a simulation to run (Cfg) or a
// pre-built trace to analyze (Trace), optionally followed by an ABC
// admissibility check, a critical-ratio search, and a custom check.
type Job struct {
	// Key labels the job in results and stats (e.g. "E9/seed=3").
	Key string
	// Cfg, when non-nil, is the simulation to execute.
	Cfg *sim.Config
	// Trace, when non-nil (and Cfg is nil), is an existing trace to
	// analyze — e.g. a hand-built scenario figure.
	Trace *sim.Trace
	// Xi, when > 0, requests an ABC(Ξ) admissibility check of the job's
	// trace; the verdict lands in JobResult.Verdict.
	Xi rat.Rat
	// Watch streams the ABC(Ξ=Xi) check through the incremental engine
	// while the simulation runs (requires Cfg and Xi > 0): the run aborts
	// at the first violating event, JobResult.FirstViolation records its
	// trace position, and Verdict comes from the monitor instead of a
	// batch re-check. The job's Cfg must not set its own sim Monitor.
	Watch bool
	// Ratio requests the exact critical-ratio search on the job's trace.
	Ratio bool
	// Check, when non-nil, runs on the worker after the simulation; its
	// error is recorded in JobResult.CheckErr (a check failure, distinct
	// from the infrastructure error in JobResult.Err).
	Check func(*sim.Result) error
	// Post, when non-nil, runs on the worker after everything else with
	// the complete job result — trace, graph, verdict, ratio. It is the
	// domain-check hook of the workload pipeline (internal/workload):
	// theorem monitors, protocol invariants, model comparisons. Its error
	// is recorded in JobResult.CheckErr when Check did not already fail.
	Post func(*JobResult) error
}

// JobResult is the outcome of one job. Exactly one result is produced per
// submitted job, carrying the job's batch index so collected slices are in
// submission order.
type JobResult struct {
	// Index is the job's position in the submitted batch.
	Index int
	// Key echoes Job.Key.
	Key string
	// Sim is the simulation result (nil for trace-only jobs).
	Sim *sim.Result
	// Trace is the analyzed trace: Sim.Trace for simulation jobs, the
	// submitted trace otherwise.
	Trace *sim.Trace
	// Graph is the execution graph, built only when the job requested an
	// admissibility check or ratio search.
	Graph *causality.Graph
	// Xi echoes Job.Xi — the Ξ the admissibility check (if any) ran
	// against, which Post hooks need when a sweep overrides the
	// workload's own parameter.
	Xi rat.Rat
	// Verdict is the ABC(Ξ) verdict when Job.Xi > 0.
	Verdict *check.Verdict
	// Ratio and RatioFound report the critical-ratio search when
	// Job.Ratio was set.
	Ratio      rat.Rat
	RatioFound bool
	// FirstViolation is the Trace.Events position of the earliest event
	// whose prefix graph is inadmissible, for Watch jobs; -1 when the run
	// stayed admissible or the job did not watch.
	FirstViolation int
	// CheckErr is the error returned by Job.Check, if any.
	CheckErr error
	// Elapsed is the wall-clock time the job spent on its worker, from
	// pickup to result — simulation, graph build, checks, and hooks
	// included. Zero for jobs cancelled before they started.
	Elapsed time.Duration
	// Err reports an infrastructure failure: invalid config, checker
	// error, or context cancellation before the job started.
	Err error
}

// Admissible reports whether the job's ABC check passed (false when no
// check was requested or the job errored).
func (r JobResult) Admissible() bool {
	return r.Err == nil && r.Verdict != nil && r.Verdict.Admissible
}

// CompletedAdmissible reports whether a simulation job ran to completion
// (neither truncated nor aborted at a watch violation) without being
// proven inadmissible — the shared precondition of the domain theorem
// verdicts in the workload registrations. requireVerdict additionally
// demands that an ABC check actually ran: theorems that presuppose
// perpetual admissibility (Sections 3/5) must pass true, while checks
// whose claims survive without it (the ◇ABC variants) pass false.
func (r JobResult) CompletedAdmissible(requireVerdict bool) bool {
	if r.Sim == nil || r.Sim.Truncated || r.FirstViolation >= 0 {
		return false
	}
	if r.Verdict == nil {
		return !requireVerdict
	}
	return r.Verdict.Admissible
}

// ShardsAuto asks the fleet to derive the per-job shard count from
// whatever parallelism the worker pool leaves unused (see Options.Shards).
const ShardsAuto = -1

// Options configures a fleet run.
type Options struct {
	// Workers is the number of concurrent workers; <= 0 means derive it
	// from runtime.GOMAXPROCS(0), leaving room for the shard count when
	// one is set explicitly.
	Workers int
	// Shards is the intra-job shard count stamped into each job's
	// sim.Config (jobs that set Cfg.Shards themselves are left alone):
	// 0 leaves configs untouched (serial engines), 1 forces the serial
	// path, n > 1 runs every simulation on n shards, and ShardsAuto
	// derives the count from the cores the worker pool leaves idle.
	//
	// The two auto-sizers never oversubscribe each other: the derived
	// workers × shards product stays ≤ runtime.GOMAXPROCS(0). Small
	// batches on big machines therefore parallelize inside jobs
	// (few workers × many shards) while large batches parallelize
	// across them (many workers × 1 shard). Explicitly setting both
	// knobs bypasses the guard — the caller's product wins.
	Shards int
}

// Plan resolves the worker count and per-job shard count for a batch of
// the given size, applying the workers × shards ≤ GOMAXPROCS rule to
// every auto-sized knob. Stream uses it internally; callers that report
// fleet geometry (e.g. JSON footers) can call it to see the same split.
func (o Options) Plan(jobs int) (workers, shards int) {
	return o.split(jobs, runtime.GOMAXPROCS(0))
}

// split is Plan with the processor count injected for tests.
func (o Options) split(jobs, procs int) (workers, shards int) {
	if procs < 1 {
		procs = 1
	}
	workers = o.Workers
	if workers <= 0 {
		workers = procs
		if o.Shards > 1 {
			// An explicit shard count reserves cores inside each job;
			// shrink the auto-sized pool so the product stays ≤ procs.
			workers = procs / o.Shards
		}
		if workers < 1 {
			workers = 1
		}
	}
	if jobs > 0 && workers > jobs {
		workers = jobs
	}
	switch {
	case o.Shards == ShardsAuto:
		// Give each job the cores the pool leaves idle.
		shards = procs / workers
		if shards < 1 {
			shards = 1
		}
	case o.Shards > 0:
		shards = o.Shards
	default:
		shards = 1
	}
	return workers, shards
}

// Stats aggregates a completed batch.
type Stats struct {
	// Jobs is the number of submitted jobs; Errored counts jobs with a
	// non-nil Err (including cancellations), CheckFailed those whose
	// custom check failed, Truncated those whose simulation hit its
	// event or time budget.
	Jobs, Errored, CheckFailed, Truncated int
	// Admissible and Inadmissible count ABC verdicts (jobs without an
	// Xi check count toward neither).
	Admissible, Inadmissible int
	// Events and Msgs total the trace sizes across successful jobs.
	Events, Msgs int
	// MaxRatio is the largest critical ratio observed across jobs that
	// requested the ratio search; MaxRatioKey names the job.
	MaxRatio      rat.Rat
	MaxRatioFound bool
	MaxRatioKey   string
}

// add folds one result into the aggregate.
func (s *Stats) add(r JobResult) {
	s.Jobs++
	if r.Err != nil {
		s.Errored++
		return
	}
	if r.CheckErr != nil {
		s.CheckFailed++
	}
	if r.Sim != nil && r.Sim.Truncated {
		s.Truncated++
	}
	if r.Trace != nil {
		// Totals, not slice lengths: bounded-retention traces count every
		// event and message the run produced, not just those retained.
		s.Events += r.Trace.TotalEvents()
		s.Msgs += r.Trace.TotalMsgs()
	}
	if r.Verdict != nil {
		if r.Verdict.Admissible {
			s.Admissible++
		} else {
			s.Inadmissible++
		}
	}
	if r.RatioFound && (!s.MaxRatioFound || r.Ratio.Greater(s.MaxRatio)) {
		s.MaxRatio, s.MaxRatioFound, s.MaxRatioKey = r.Ratio, true, r.Key
	}
}

// errJobEmpty is returned for jobs with neither a Cfg nor a Trace.
var errJobEmpty = errors.New("runner: job has neither Cfg nor Trace")

// Stream executes the batch and delivers results over the returned channel
// in completion order (use Run for submission order). The channel is
// closed once every job has produced exactly one result. When ctx is
// cancelled, jobs not yet started complete immediately with Err set to the
// context's error; jobs already in flight finish normally.
func Stream(ctx context.Context, jobs []Job, opts Options) <-chan JobResult {
	workers, shards := opts.Plan(len(jobs))
	indices := make(chan int)
	out := make(chan JobResult, workers)

	go func() {
		defer close(indices)
		for i := range jobs {
			select {
			case indices <- i:
			case <-ctx.Done():
				// Drain the remaining indices as cancelled results so
				// every job is accounted for.
				for j := i; j < len(jobs); j++ {
					out <- JobResult{Index: j, Key: jobs[j].Key, Err: ctx.Err(), FirstViolation: -1}
				}
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			engine := sim.NewEngine()
			for i := range indices {
				if err := ctx.Err(); err != nil {
					out <- JobResult{Index: i, Key: jobs[i].Key, Err: err, FirstViolation: -1}
					continue
				}
				start := time.Now()
				r := execute(engine, i, jobs[i], shards)
				r.Elapsed = time.Since(start)
				out <- r
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Run executes the batch and returns one result per job, in submission
// order, together with aggregate statistics. The returned error is the
// context's error if the run was cancelled; per-job failures are reported
// in the results, not as a run error.
func Run(ctx context.Context, jobs []Job, opts Options) ([]JobResult, Stats, error) {
	results := make([]JobResult, len(jobs))
	for r := range Stream(ctx, jobs, opts) {
		results[r.Index] = r
	}
	var stats Stats
	for _, r := range results {
		stats.add(r)
	}
	return results, stats, ctx.Err()
}

// execute runs one job on a worker's private engine. shards, when > 1,
// is stamped into the simulation config unless the job chose its own
// shard count.
func execute(engine *sim.Engine, index int, job Job, shards int) JobResult {
	res := JobResult{Index: index, Key: job.Key, Xi: job.Xi, FirstViolation: -1}
	var watcher *check.Watcher
	switch {
	case job.Cfg != nil:
		cfg := *job.Cfg
		if shards > 1 && cfg.Shards == 0 {
			cfg.Shards = shards
		}
		if job.Watch {
			if job.Xi.Sign() <= 0 {
				res.Err = fmt.Errorf("runner: job %d (%s): Watch requires Xi > 0", index, job.Key)
				return res
			}
			if cfg.Monitor != nil {
				res.Err = fmt.Errorf("runner: job %d (%s): Watch conflicts with Cfg.Monitor", index, job.Key)
				return res
			}
			w, err := check.NewWatcher(job.Xi, causality.Options{})
			if err != nil {
				res.Err = fmt.Errorf("runner: job %d (%s): %w", index, job.Key, err)
				return res
			}
			watcher = w
			cfg.Monitor = w.Monitor
		}
		sr, err := engine.Run(cfg)
		if err != nil {
			res.Err = fmt.Errorf("runner: job %d (%s): %w", index, job.Key, err)
			return res
		}
		if sr.MonitorErr != nil && sr.MonitorErr != check.ErrInadmissible {
			res.Err = fmt.Errorf("runner: job %d (%s): watch: %w", index, job.Key, sr.MonitorErr)
			return res
		}
		res.Sim, res.Trace = sr, sr.Trace
	case job.Trace != nil:
		if job.Watch {
			res.Err = fmt.Errorf("runner: job %d (%s): Watch requires Cfg", index, job.Key)
			return res
		}
		res.Trace = job.Trace
	default:
		res.Err = errJobEmpty
		return res
	}

	if watcher != nil {
		v := watcher.Verdict()
		res.Verdict = &v
		res.FirstViolation = watcher.FirstViolation()
		res.Graph = watcher.Graph()
		if res.Graph == nil { // empty run: no event ever fired
			res.Graph = causality.Build(res.Trace, causality.Options{})
		}
	} else if job.Xi.Sign() > 0 || job.Ratio {
		if !res.Trace.Complete() {
			res.Err = fmt.Errorf("runner: job %d (%s): batch admissibility/ratio analysis needs a complete trace, got %v retention (use Watch for incremental checking, or full retention)",
				index, job.Key, res.Trace.Retention())
			return res
		}
		res.Graph = causality.Build(res.Trace, causality.Options{})
	}
	if job.Xi.Sign() > 0 && watcher == nil {
		v, err := check.ABC(res.Graph, job.Xi)
		if err != nil {
			res.Err = fmt.Errorf("runner: job %d (%s): ABC check: %w", index, job.Key, err)
			return res
		}
		res.Verdict = &v
	}
	if job.Ratio {
		ratio, found, err := check.MaxRelevantRatio(res.Graph)
		if err != nil {
			res.Err = fmt.Errorf("runner: job %d (%s): ratio search: %w", index, job.Key, err)
			return res
		}
		res.Ratio, res.RatioFound = ratio, found
	}
	if job.Check != nil {
		res.CheckErr = job.Check(res.Sim)
	}
	if job.Post != nil && res.CheckErr == nil {
		res.CheckErr = job.Post(&res)
	}
	return res
}
