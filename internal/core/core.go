// Package core defines the ABC model itself (Section 2 of the paper): the
// synchrony parameter Ξ, admissibility of executions (Definition 4), the
// derived algorithmic constants used by Section 3's algorithms, and helpers
// for running simulations whose traces are verified admissible.
//
// The model's single constraint is that in the execution graph of an
// admissible execution, every relevant cycle Z satisfies |Z−|/|Z+| < Ξ.
// Everything else — individual delays, step times, communication patterns —
// is unconstrained.
package core

import (
	"errors"
	"fmt"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/rat"
	"repro/internal/sim"
)

// Model is an ABC model instance with a known, perpetually holding Ξ.
// The weaker variants of Section 6 (unknown and/or eventual Ξ) live in
// internal/variants.
type Model struct {
	xi rat.Rat
}

// ErrBadXi is returned for Ξ <= 1; the ABC model requires a rational
// Ξ > 1 (footnote 16 of the paper).
var ErrBadXi = errors.New("core: Ξ must be a rational > 1")

// NewModel returns the ABC model with parameter Ξ.
func NewModel(xi rat.Rat) (Model, error) {
	if !xi.Greater(rat.One) {
		return Model{}, ErrBadXi
	}
	return Model{xi: xi}, nil
}

// MustModel is NewModel, panicking on error; for tests and examples.
func MustModel(xi rat.Rat) Model {
	m, err := NewModel(xi)
	if err != nil {
		panic(err)
	}
	return m
}

// Xi returns the synchrony parameter.
func (m Model) Xi() rat.Rat { return m.xi }

// PhasesPerRound returns X = ⌈2Ξ⌉, the number of clock phases per
// lock-step round used by Algorithm 2. The paper uses 2Ξ and notes it is
// only a lower bound; rounding up keeps clock arithmetic integral for
// rational Ξ while preserving every proof (any X >= 2Ξ makes the Lemma 4
// cycle ratio at least X/2 >= Ξ).
func (m Model) PhasesPerRound() int64 {
	return m.xi.MulInt(2).Ceil()
}

// PrecisionBound returns the clock synchronization precision guaranteed by
// Theorem 2/3 in integer phases: X = ⌈2Ξ⌉.
func (m Model) PrecisionBound() int64 { return m.PhasesPerRound() }

// BoundedProgressRho returns ϱ = 2X + 1 (Theorem 4's 4Ξ + 1, integerized
// through X = ⌈2Ξ⌉): whenever a correct process performs ϱ distinguished
// events in a consistent cut interval, every correct process performs at
// least one.
func (m Model) BoundedProgressRho() int64 { return 2*m.PhasesPerRound() + 1 }

// MinProcesses returns the smallest system size tolerating f Byzantine
// faults, n = 3f + 1.
func MinProcesses(f int) int { return 3*f + 1 }

// MaxFaults returns the largest f tolerated by an n-process system,
// f = ⌊(n−1)/3⌋.
func MaxFaults(n int) int {
	if n <= 0 {
		return 0
	}
	return (n - 1) / 3
}

// Admissible checks the execution graph against Definition 4.
func (m Model) Admissible(g *causality.Graph) (check.Verdict, error) {
	return check.ABC(g, m.xi)
}

// AdmissibleTrace builds the execution graph of a trace and checks it.
func (m Model) AdmissibleTrace(t *sim.Trace) (check.Verdict, error) {
	return m.Admissible(causality.Build(t, causality.Options{}))
}

// ThetaDelays returns a delay policy with delays uniform in [d, Θ·d] for
// Θ < Ξ; executions scheduled by it are Θ-Model admissible and hence
// ABC-admissible (Theorem 6).
func (m Model) ThetaDelays(d rat.Rat, theta rat.Rat) (sim.DelayPolicy, error) {
	if !theta.Less(m.xi) || theta.Less(rat.One) {
		return nil, fmt.Errorf("core: Θ = %v must satisfy 1 <= Θ < Ξ = %v", theta, m.xi)
	}
	return sim.UniformDelay{Min: d, Max: d.Mul(theta)}, nil
}

// GrowingDelays returns a delay policy whose base delay grows by the given
// rate per unit of send time while the instantaneous spread stays below Ξ.
// It models the paper's spacecraft-formation example (Section 5.3):
// delays grow without bound — inadmissible in any static Θ or ParSync
// model — yet the execution remains ABC-admissible.
func (m Model) GrowingDelays(base, ratePerUnit, spread rat.Rat) (sim.DelayPolicy, error) {
	if !spread.Less(m.xi) || spread.Less(rat.One) {
		return nil, fmt.Errorf("core: spread = %v must satisfy 1 <= spread < Ξ = %v", spread, m.xi)
	}
	return sim.GrowingDelay{Base: base, Rate: ratePerUnit, Spread: spread}, nil
}

// RunVerified runs the simulation and verifies the resulting trace is
// ABC-admissible for this model, returning the trace, its execution graph,
// and the checker verdict. A non-admissible result is not an error — the
// verdict carries the violating cycle — but callers generating executions
// for algorithm experiments should treat it as one.
func (m Model) RunVerified(cfg sim.Config) (*sim.Result, *causality.Graph, check.Verdict, error) {
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, nil, check.Verdict{}, err
	}
	g := causality.Build(res.Trace, causality.Options{})
	verdict, err := check.ABC(g, m.xi)
	if err != nil {
		return nil, nil, check.Verdict{}, err
	}
	return res, g, verdict, nil
}
