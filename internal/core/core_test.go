package core

import (
	"errors"
	"testing"

	"repro/internal/rat"
	"repro/internal/sim"
)

func TestNewModelValidation(t *testing.T) {
	for _, xi := range []rat.Rat{rat.One, rat.Zero, rat.New(1, 2), rat.FromInt(-3)} {
		if _, err := NewModel(xi); !errors.Is(err, ErrBadXi) {
			t.Errorf("NewModel(%v) err = %v, want ErrBadXi", xi, err)
		}
	}
	if _, err := NewModel(rat.New(101, 100)); err != nil {
		t.Errorf("NewModel(101/100) rejected: %v", err)
	}
}

func TestMustModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustModel(1) did not panic")
		}
	}()
	MustModel(rat.One)
}

func TestDerivedConstants(t *testing.T) {
	tests := []struct {
		xi      rat.Rat
		x, rho  int64
		comment string
	}{
		{rat.FromInt(2), 4, 9, "2Ξ = 4"},
		{rat.New(3, 2), 3, 7, "2Ξ = 3"},
		{rat.New(5, 4), 3, 7, "2Ξ = 5/2, X = 3"},
		{rat.FromInt(3), 6, 13, "2Ξ = 6"},
	}
	for _, tt := range tests {
		m := MustModel(tt.xi)
		if got := m.PhasesPerRound(); got != tt.x {
			t.Errorf("Ξ=%v: X = %d, want %d (%s)", tt.xi, got, tt.x, tt.comment)
		}
		if got := m.PrecisionBound(); got != tt.x {
			t.Errorf("Ξ=%v: precision = %d, want %d", tt.xi, got, tt.x)
		}
		if got := m.BoundedProgressRho(); got != tt.rho {
			t.Errorf("Ξ=%v: ϱ = %d, want %d", tt.xi, got, tt.rho)
		}
		if !m.Xi().Equal(tt.xi) {
			t.Errorf("Xi() = %v, want %v", m.Xi(), tt.xi)
		}
	}
}

func TestResilienceBounds(t *testing.T) {
	if MinProcesses(1) != 4 || MinProcesses(0) != 1 || MinProcesses(3) != 10 {
		t.Error("MinProcesses wrong")
	}
	tests := []struct{ n, f int }{{0, 0}, {1, 0}, {3, 0}, {4, 1}, {6, 1}, {7, 2}, {10, 3}}
	for _, tt := range tests {
		if got := MaxFaults(tt.n); got != tt.f {
			t.Errorf("MaxFaults(%d) = %d, want %d", tt.n, got, tt.f)
		}
	}
}

func TestThetaDelaysValidation(t *testing.T) {
	m := MustModel(rat.FromInt(2))
	if _, err := m.ThetaDelays(rat.One, rat.FromInt(2)); err == nil {
		t.Error("Θ = Ξ accepted")
	}
	if _, err := m.ThetaDelays(rat.One, rat.New(1, 2)); err == nil {
		t.Error("Θ < 1 accepted")
	}
	pol, err := m.ThetaDelays(rat.One, rat.New(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if pol == nil {
		t.Fatal("nil policy")
	}
}

func TestGrowingDelaysValidation(t *testing.T) {
	m := MustModel(rat.FromInt(2))
	if _, err := m.GrowingDelays(rat.One, rat.One, rat.FromInt(2)); err == nil {
		t.Error("spread = Ξ accepted")
	}
	if _, err := m.GrowingDelays(rat.One, rat.One, rat.New(3, 2)); err != nil {
		t.Errorf("valid growing policy rejected: %v", err)
	}
}

func TestRunVerified(t *testing.T) {
	m := MustModel(rat.FromInt(2))
	theta, err := m.ThetaDelays(rat.One, rat.New(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, g, verdict, err := m.RunVerified(sim.Config{
		N: 3,
		Spawn: func(p sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < 3 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays: theta,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Admissible {
		t.Fatalf("Θ-scheduled run not admissible: %v", verdict.Witness)
	}
	if res == nil || g == nil || g.NumNodes() == 0 {
		t.Error("missing results")
	}
	// AdmissibleTrace agrees.
	v2, err := m.AdmissibleTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Admissible != verdict.Admissible {
		t.Error("AdmissibleTrace disagrees with Admissible")
	}
}

func TestGrowingDelaysAdmissible(t *testing.T) {
	// The spacecraft scenario: delays grow without bound but the execution
	// stays ABC-admissible (spread below Ξ).
	m := MustModel(rat.FromInt(2))
	growing, err := m.GrowingDelays(rat.One, rat.New(1, 10), rat.New(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	_, _, verdict, err := m.RunVerified(sim.Config{
		N: 3,
		Spawn: func(p sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < 8 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays: growing,
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Admissible {
		t.Fatalf("growing-delay run not admissible: %v", verdict.Witness)
	}
}
