package causality

import (
	"repro/internal/sim"
)

// Cut is a set of nodes of an execution graph. Cuts represent global system
// states; the consistent ones (Definition 5) are exactly the left-closed
// sets containing at least one event of every correct process.
type Cut struct {
	g  *Graph
	in []bool
}

// NewCut returns an empty cut over g.
func NewCut(g *Graph) *Cut {
	return &Cut{g: g, in: make([]bool, g.NumNodes())}
}

// Contains reports whether n is in the cut.
func (c *Cut) Contains(n NodeID) bool { return c.in[n] }

// Add inserts n into the cut.
func (c *Cut) Add(n NodeID) { c.in[n] = true }

// Remove deletes n from the cut.
func (c *Cut) Remove(n NodeID) { c.in[n] = false }

// Size returns the number of nodes in the cut.
func (c *Cut) Size() int {
	k := 0
	for _, b := range c.in {
		if b {
			k++
		}
	}
	return k
}

// Nodes returns the cut's members in ascending NodeID order.
func (c *Cut) Nodes() []NodeID {
	var out []NodeID
	for i, b := range c.in {
		if b {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Clone returns an independent copy of the cut.
func (c *Cut) Clone() *Cut {
	in := make([]bool, len(c.in))
	copy(in, c.in)
	return &Cut{g: c.g, in: in}
}

// Minus returns the set difference c \ d as a cut (not necessarily
// consistent). Used for consistent cut intervals (Definition 6):
// [⟨φ⟩, ⟨ψ⟩] = ⟨ψ⟩ \ ⟨φ⟩.
func (c *Cut) Minus(d *Cut) *Cut {
	out := NewCut(c.g)
	for i := range c.in {
		out.in[i] = c.in[i] && !d.in[i]
	}
	return out
}

// IsLeftClosed reports whether the cut contains the full causal past of
// each of its members (closure under the reflexive-transitive predecessor
// relation of the execution graph).
func (c *Cut) IsLeftClosed() bool {
	for i, b := range c.in {
		if !b {
			continue
		}
		for _, eid := range c.g.In(NodeID(i)) {
			if !c.in[c.g.Edge(eid).From] {
				return false
			}
		}
	}
	return true
}

// IsConsistent reports whether the cut is consistent per Definition 5:
// left-closed and containing at least one event of every correct process.
func (c *Cut) IsConsistent() bool {
	if !c.IsLeftClosed() {
		return false
	}
	for _, p := range c.g.Trace().CorrectProcesses() {
		found := false
		for _, n := range c.g.NodesOf(p) {
			if c.in[n] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Frontier returns the last node of process p within the cut (the node
// whose post-state defines C_p(S)), or -1 if the cut has no event of p.
// Local order coincides with causal order at a single process, so the last
// kept node in the cut is the maximum w.r.t. the closure of the edge
// relation.
func (c *Cut) Frontier(p sim.ProcessID) NodeID {
	nodes := c.g.NodesOf(p)
	for i := len(nodes) - 1; i >= 0; i-- {
		if c.in[nodes[i]] {
			return nodes[i]
		}
	}
	return -1
}

// LeftClosure returns ⟨φ1, ..., φk⟩: the smallest left-closed set
// containing the given nodes — their joint causal past, inclusive.
func (g *Graph) LeftClosure(nodes ...NodeID) *Cut {
	c := NewCut(g)
	stack := make([]NodeID, 0, len(nodes))
	for _, n := range nodes {
		if !c.in[n] {
			c.in[n] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range g.In(v) {
			u := g.Edge(eid).From
			if !c.in[u] {
				c.in[u] = true
				stack = append(stack, u)
			}
		}
	}
	return c
}

// Close left-closes the cut in place, adding the causal past of all
// members, and returns the receiver.
func (c *Cut) Close() *Cut {
	closed := c.g.LeftClosure(c.Nodes()...)
	copy(c.in, closed.in)
	return c
}

// CutAtTime returns the real-time cut at time t: all nodes with occurrence
// time <= t. Real-time cuts are always left-closed (messages are never
// received before they are sent), which is the transfer used by Theorem 3.
func (g *Graph) CutAtTime(t sim.Time) *Cut {
	c := NewCut(g)
	for i := range g.nodes {
		if g.nodes[i].Time.LessEq(t) {
			c.in[i] = true
		}
	}
	return c
}

// Interval returns the consistent cut interval [⟨φ⟩, ⟨ψ⟩] := ⟨ψ⟩ \ ⟨φ⟩ of
// Definition 6.
func (g *Graph) Interval(phi, psi NodeID) *Cut {
	return g.LeftClosure(psi).Minus(g.LeftClosure(phi))
}

// HappensBefore reports whether a ∗→ b (reflexive-transitive closure of
// the edge relation).
func (g *Graph) HappensBefore(a, b NodeID) bool {
	if a == b {
		return true
	}
	// Search backwards from b: the in-degree of execution graphs is at most
	// 2 (one local, one message edge), so the reverse search is linear.
	seen := make([]bool, g.NumNodes())
	stack := []NodeID{b}
	seen[b] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range g.In(v) {
			u := g.Edge(eid).From
			if u == a {
				return true
			}
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return false
}

// CausalCone returns the cut ⟨φ⟩ — all events that happen-before φ,
// inclusive. It is the object of Lemma 4 (the causal cone property).
func (g *Graph) CausalCone(phi NodeID) *Cut { return g.LeftClosure(phi) }
