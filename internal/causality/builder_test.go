package causality

import (
	"fmt"
	"testing"

	"repro/internal/rat"
	"repro/internal/sim"
)

// edgeKey is an order-independent identity for comparing edge sets: the
// Builder interleaves local and message edges in event order while Build
// groups them, so IDs differ but the sets must match exactly.
type edgeKey struct {
	From, To NodeID
	Kind     EdgeKind
	Msg      sim.MsgID
}

func edgeSet(g *Graph) map[edgeKey]int {
	set := make(map[edgeKey]int, g.NumEdges())
	for _, e := range g.Edges() {
		set[edgeKey{e.From, e.To, e.Kind, e.Msg}]++
	}
	return set
}

func equalEdgeSets(a, b map[edgeKey]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// checkMatchesBatch asserts that the incrementally built graph is
// semantically identical to a batch Build of the same (sub)trace.
func checkMatchesBatch(t *testing.T, ctx string, inc, batch *Graph) {
	t.Helper()
	if inc.NumNodes() != batch.NumNodes() {
		t.Fatalf("%s: nodes %d != %d", ctx, inc.NumNodes(), batch.NumNodes())
	}
	if inc.NumEdges() != batch.NumEdges() {
		t.Fatalf("%s: edges %d != %d", ctx, inc.NumEdges(), batch.NumEdges())
	}
	if inc.MessageCount() != batch.MessageCount() {
		t.Fatalf("%s: messages %d != %d", ctx, inc.MessageCount(), batch.MessageCount())
	}
	for i := 0; i < inc.NumNodes(); i++ {
		if inc.Node(NodeID(i)) != batch.Node(NodeID(i)) {
			t.Fatalf("%s: node %d: %+v != %+v", ctx, i, inc.Node(NodeID(i)), batch.Node(NodeID(i)))
		}
	}
	if !equalEdgeSets(edgeSet(inc), edgeSet(batch)) {
		t.Fatalf("%s: edge sets differ", ctx)
	}
	// Adjacency views agree with the edge list.
	for id := NodeID(0); int(id) < inc.NumNodes(); id++ {
		for _, eid := range inc.Out(id) {
			if inc.Edge(eid).From != id {
				t.Fatalf("%s: out edge %d not from %d", ctx, eid, id)
			}
		}
		for _, eid := range inc.In(id) {
			if inc.Edge(eid).To != id {
				t.Fatalf("%s: in edge %d not to %d", ctx, eid, id)
			}
		}
		if len(inc.Out(id))+len(inc.In(id)) != len(batch.Out(id))+len(batch.In(id)) {
			t.Fatalf("%s: degree of %d differs", ctx, id)
		}
	}
	if !inc.IsDAG() {
		t.Fatalf("%s: incremental graph not a DAG", ctx)
	}
}

// randomTrace simulates a small broadcast workload, optionally with a
// faulty process and a drop option exercised.
func randomTrace(t *testing.T, seed int64, n int, faulty bool) *sim.Trace {
	t.Helper()
	cfg := sim.Config{
		N: n,
		Spawn: func(p sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < 4 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays:    sim.UniformDelay{Min: rat.Zero, Max: rat.FromInt(2)},
		Seed:      seed,
		MaxEvents: 80,
	}
	if faulty {
		cfg.Faults = map[sim.ProcessID]sim.Fault{0: {CrashAfter: 2}}
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func TestBuilderMatchesBatchBuild(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, faulty := range []bool{false, true} {
			tr := randomTrace(t, seed, 3+int(seed%3), faulty)
			opts := Options{}
			if seed%4 == 0 {
				opts.DropMessage = func(m sim.Message) bool { return m.To == 1 }
			}
			b, err := NewBuilder(tr, opts)
			if err != nil {
				t.Fatal(err)
			}
			consumed, err := b.Append()
			if err != nil {
				t.Fatal(err)
			}
			if consumed != len(tr.Events) {
				t.Fatalf("consumed %d of %d events", consumed, len(tr.Events))
			}
			ctx := fmt.Sprintf("seed=%d faulty=%v", seed, faulty)
			checkMatchesBatch(t, ctx, b.Finalize(), Build(tr, opts))
		}
	}
}

// TestBuilderIncrementalPrefixes grows the graph in chunks and checks
// every intermediate state against a batch Build of the same prefix.
func TestBuilderIncrementalPrefixes(t *testing.T) {
	tr := randomTrace(t, 42, 4, false)
	shell := &sim.Trace{N: tr.N, Msgs: tr.Msgs, Faulty: tr.Faulty}
	b, err := NewBuilder(shell, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j := 3; ; j += 3 {
		if j > len(tr.Events) {
			j = len(tr.Events)
		}
		shell.Events = tr.Events[:j]
		if _, err := b.Append(); err != nil {
			t.Fatal(err)
		}
		if b.Consumed() != j {
			t.Fatalf("consumed %d, want %d", b.Consumed(), j)
		}
		events := make([]sim.Event, j)
		copy(events, tr.Events[:j])
		sub, err := sim.Reassemble(tr.N, events, tr.Msgs, tr.Faulty)
		if err != nil {
			t.Fatal(err)
		}
		checkMatchesBatch(t, fmt.Sprintf("prefix=%d", j), b.Graph(), Build(sub, Options{}))
		if j == len(tr.Events) {
			break
		}
	}
}

// reorderedTrace builds a valid trace whose events are not in causal
// delivery order: p0's wake-up is listed after the receive of a message
// it sent. Build handles it (backward edge in node order); the Builder
// must reject it.
func reorderedTrace(t *testing.T) *sim.Trace {
	t.Helper()
	wake0 := sim.Message{ID: 0, From: sim.External, To: 0, SendStep: sim.SendStepExternal, Payload: sim.Wakeup{}}
	wake1 := sim.Message{ID: 1, From: sim.External, To: 1, SendStep: sim.SendStepExternal, Payload: sim.Wakeup{}}
	m := sim.Message{ID: 2, From: 0, To: 1, SendStep: 0, SendTime: rat.Zero, RecvTime: rat.One}
	events := []sim.Event{
		{Proc: 1, Index: 0, Trigger: 1, Processed: true},
		{Proc: 1, Index: 1, Time: rat.One, Trigger: 2, Processed: true},
		{Proc: 0, Index: 0, Trigger: 0, Processed: true}, // sender's step listed last
	}
	tr, err := sim.Reassemble(2, events, []sim.Message{wake0, wake1, m}, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuilderRejectsNonCausalOrder(t *testing.T) {
	tr := reorderedTrace(t)
	b, err := NewBuilder(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append(); err == nil {
		t.Fatal("Append accepted a trace out of causal delivery order")
	}
}

// TestIsDAGKahnFallback exercises the slow path: the reordered trace's
// graph has a backward edge in node order yet is acyclic, and a
// hand-built time-paradox trace (two messages at equal times triggering
// each other) is cyclic.
func TestIsDAGKahnFallback(t *testing.T) {
	g := Build(reorderedTrace(t), Options{})
	if !g.IsDAG() {
		t.Fatal("acyclic reordered graph reported cyclic")
	}

	ma := sim.Message{ID: 0, From: 1, To: 0, SendStep: 0, SendTime: rat.One, RecvTime: rat.One}
	mb := sim.Message{ID: 1, From: 0, To: 1, SendStep: 0, SendTime: rat.One, RecvTime: rat.One}
	events := []sim.Event{
		{Proc: 0, Index: 0, Time: rat.One, Trigger: 0, Processed: true},
		{Proc: 1, Index: 0, Time: rat.One, Trigger: 1, Processed: true},
	}
	tr, err := sim.Reassemble(2, events, []sim.Message{ma, mb}, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	if Build(tr, Options{}).IsDAG() {
		t.Fatal("time-paradox graph reported acyclic")
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder(&sim.Trace{N: 0}, Options{}); err == nil {
		t.Error("NewBuilder accepted N=0")
	}
	if _, err := NewBuilder(&sim.Trace{N: 2, Faulty: []bool{false}}, Options{}); err == nil {
		t.Error("NewBuilder accepted short Faulty")
	}
}
