package causality

import (
	"fmt"

	"repro/internal/sim"
)

// Builder grows an execution graph incrementally as its trace is appended
// to, in O(new events) per batch. It is the substrate of the online
// admissibility engine (check.Incremental): a monitor holds one Builder
// against the simulator's live trace and consumes newly recorded events
// after every step instead of rebuilding the graph from scratch.
//
// The Builder requires the trace to be in causal delivery order: every
// message's sending event must appear in Trace.Events before its receive
// event, and each process's events must appear with dense, increasing
// indices. Every trace the simulator or TraceBuilder produces satisfies
// this (a message cannot be delivered before the step that sent it);
// Append reports an error otherwise. Batch Build has no such requirement.
//
// Unlike Build — which emits all local edges before all message edges —
// the Builder interleaves edges in event order: each consumed event
// appends its local edge (if any) and then its message edge (if kept).
// Edge IDs therefore differ between the two constructions of the same
// trace; the node set, node order, edge set, and all derived semantics
// (cycles, cuts, verdicts) are identical.
//
// The Builder maintains its own (process, index) → position index, so it
// also works on bare prefix views of a trace (a sim.Trace value whose
// Events slice is truncated), which lack the EventAt index.
//
// The Builder reads the trace exclusively through the retention-safe
// accessors (TotalEvents, EventByPos, TriggerOf), so it also consumes
// window-retention traces (sim.RetainWindow) — provided it is invoked
// often enough that no unconsumed event slides out of the window, which
// any per-event Monitor guarantees. A consumed-then-evicted event is
// fine; an evicted-before-consumption event is an error.
type Builder struct {
	g    *Graph
	opts Options
	// eventPos[p][i] is the trace position of process p's i-th consumed
	// event; used to resolve message edges without t.EventAt.
	eventPos [][]int32
	consumed int
}

// NewBuilder returns a Builder over t that has consumed no events yet;
// call Append to consume whatever the trace currently holds.
func NewBuilder(t *sim.Trace, opts Options) (*Builder, error) {
	if t.N <= 0 {
		return nil, fmt.Errorf("causality: trace has N = %d", t.N)
	}
	if len(t.Faulty) != t.N {
		return nil, fmt.Errorf("causality: Faulty has length %d, want %d", len(t.Faulty), t.N)
	}
	return &Builder{
		g: &Graph{
			trace:     t,
			procNodes: make([][]NodeID, t.N),
		},
		opts:     opts,
		eventPos: make([][]int32, t.N),
	}, nil
}

// Append consumes every trace event recorded since the last call,
// appending one node per event plus its local and (kept) message edges.
// It returns the number of events consumed. On error the graph is left at
// the last fully consumed event.
func (b *Builder) Append() (int, error) {
	g, t := b.g, b.g.trace
	start := b.consumed
	for pos := start; pos < t.TotalEvents(); pos++ {
		ev, ok := t.EventByPos(pos)
		if !ok {
			return pos - start, fmt.Errorf("causality: event %d was evicted by bounded retention before consumption (widen the window or consume more often)", pos)
		}
		if ev.Proc < 0 || int(ev.Proc) >= t.N {
			return pos - start, fmt.Errorf("causality: event %d has process %d out of range", pos, ev.Proc)
		}
		m, ok := t.TriggerOf(pos)
		if !ok {
			return pos - start, fmt.Errorf("causality: event %d has dangling trigger %d", pos, ev.Trigger)
		}
		if ev.Index != len(b.eventPos[ev.Proc]) {
			return pos - start, fmt.Errorf("causality: event %d at p%d has index %d, want %d (builder requires dense per-process order)",
				pos, ev.Proc, ev.Index, len(b.eventPos[ev.Proc]))
		}

		id := NodeID(len(g.nodes))
		g.nodes = append(g.nodes, Node{
			Proc:     ev.Proc,
			Index:    ev.Index,
			Time:     ev.Time,
			TracePos: pos,
			Wakeup:   m.IsWakeup(),
		})
		g.nodeByEvent = append(g.nodeByEvent, id)
		if pn := g.procNodes[ev.Proc]; len(pn) > 0 {
			g.edges = append(g.edges, Edge{From: pn[len(pn)-1], To: id, Kind: Local, Msg: -1})
		}
		g.procNodes[ev.Proc] = append(g.procNodes[ev.Proc], id)
		b.eventPos[ev.Proc] = append(b.eventPos[ev.Proc], int32(pos))

		if !m.IsWakeup() && !dropped(t, b.opts, m) {
			if m.SendStep < 0 {
				// Scripted send without a step: dangling, like Build.
				b.consumed = pos + 1
				continue
			}
			if m.SendStep >= len(b.eventPos[m.From]) {
				return pos - start, fmt.Errorf("causality: event %d received before its sending step p%d/%d (builder requires causal delivery order)",
					pos, m.From, m.SendStep)
			}
			from := g.nodeByEvent[b.eventPos[m.From][m.SendStep]]
			g.edges = append(g.edges, Edge{From: from, To: id, Kind: Message, Msg: m.ID})
			g.msgCount++
		}
		b.consumed = pos + 1
	}
	return b.consumed - start, nil
}

// Consumed returns the number of trace events consumed so far.
func (b *Builder) Consumed() int { return b.consumed }

// Graph returns the graph under construction. It is a live view: later
// Append calls grow it in place, and its adjacency accessors (Out/In,
// IsDAG's slow path) rebuild the CSR layout on demand. Confine it to the
// building goroutine until Finalize.
func (b *Builder) Graph() *Graph { return b.g }

// Finalize rebuilds the CSR adjacency for everything consumed so far and
// returns the graph, which is then safe for concurrent reads — provided
// no further Append follows.
func (b *Builder) Finalize() *Graph {
	b.g.ensureCSR()
	return b.g
}
