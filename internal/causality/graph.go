// Package causality implements the execution graph of Definition 1 of the
// ABC paper and the causal-order machinery built on it: happens-before
// reachability, left closures, consistent cuts and their frontiers
// (Definition 5), consistent cut intervals (Definition 6), and real-time
// cuts in the sense of Mattern used by Theorem 3.
//
// The execution graph G_α of an admissible execution α has one node per
// receive event and two kinds of edges: non-local edges ("messages") from
// the computing step that sent a message to its receive event, and local
// edges between consecutive events at the same process.
//
// Messages sent by faulty processes are dropped per Definition 1. The
// definition also drops their receive events; this implementation instead
// keeps the receive event as a node without an incoming message edge.
// The two graphs are equivalent for every Definition 3/4 purpose: local
// edges are never counted in |Z−| or |Z+|, and subdividing a local chain
// with an extra node changes neither a cycle's message counts nor its
// orientation or relevance. Keeping the node additionally anchors
// messages a correct process sent from such a step at their true causal
// position (the paper is silent on that corner), preserves the physical
// event order, and makes exempting messages (Section 2's restriction
// mechanism, used by the Section 6 variants) monotone: dropping more
// messages never creates constraints.
package causality

import (
	"fmt"

	"repro/internal/graphutil"
	"repro/internal/sim"
)

// NodeID indexes a node (receive event) within a Graph.
type NodeID int

// Node is a receive event kept in the execution graph.
type Node struct {
	Proc  sim.ProcessID
	Index int // the event's per-process index in the underlying trace
	Time  sim.Time
	// TracePos is the event's position in Trace.Events.
	TracePos int
	// Wakeup is true for the externally triggered initial event.
	Wakeup bool
}

// EdgeKind distinguishes local edges from messages (non-local edges).
type EdgeKind uint8

// Edge kinds. Only Message edges count toward cycle lengths |Z−| and |Z+|
// (Definition 2: the length of a chain is its number of non-local edges).
const (
	Local EdgeKind = iota + 1
	Message
)

func (k EdgeKind) String() string {
	switch k {
	case Local:
		return "local"
	case Message:
		return "message"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// EdgeID indexes an edge within a Graph.
type EdgeID int

// Edge is a directed edge of the execution graph.
type Edge struct {
	From, To NodeID
	Kind     EdgeKind
	// Msg is the underlying message for Message edges, -1 for local edges.
	Msg sim.MsgID
}

// Graph is the execution graph G_α. It is immutable after Build.
type Graph struct {
	trace *sim.Trace
	nodes []Node
	edges []Edge
	// out and in hold edge IDs per node.
	out, in [][]EdgeID
	// nodeByEvent maps a trace event position to its node, -1 if dropped.
	nodeByEvent []NodeID
	// procNodes lists each process's kept nodes in local order.
	procNodes [][]NodeID
}

// Options configure Build.
type Options struct {
	// DropMessage, when non-nil, exempts additional messages from the graph
	// (and hence from the ABC synchrony condition), as suggested in
	// Section 2 for messages "of some specific type or sent/received by
	// some specific processes" and used by the weaker models of Section 6.
	// The receive events of dropped messages are removed like those of
	// faulty-sent messages.
	DropMessage func(m sim.Message) bool
}

// Build constructs the execution graph of a trace.
func Build(t *sim.Trace, opts Options) *Graph {
	g := &Graph{
		trace:       t,
		nodeByEvent: make([]NodeID, len(t.Events)),
		procNodes:   make([][]NodeID, t.N),
	}

	dropped := func(m sim.Message) bool {
		if m.IsWakeup() {
			return false
		}
		if m.From >= 0 && m.SendStep == sim.SendStepScripted {
			return true // scripted sends come only from faulty processes
		}
		if t.Faulty[m.From] {
			return true
		}
		return opts.DropMessage != nil && opts.DropMessage(m)
	}

	// Pass 1: create a node for every receive event. Events triggered by
	// dropped messages stay as nodes (see the package comment) but will
	// get no incoming message edge.
	for pos, ev := range t.Events {
		m := t.Msgs[ev.Trigger]
		id := NodeID(len(g.nodes))
		g.nodes = append(g.nodes, Node{
			Proc:     ev.Proc,
			Index:    ev.Index,
			Time:     ev.Time,
			TracePos: pos,
			Wakeup:   m.IsWakeup(),
		})
		g.nodeByEvent[pos] = id
		g.procNodes[ev.Proc] = append(g.procNodes[ev.Proc], id)
	}

	// Pass 2: local edges between consecutive kept events of each process.
	for p := 0; p < t.N; p++ {
		nodes := g.procNodes[p]
		for i := 1; i < len(nodes); i++ {
			g.edges = append(g.edges, Edge{From: nodes[i-1], To: nodes[i], Kind: Local, Msg: -1})
		}
	}

	// Pass 3: message edges for kept messages, from the sending step's
	// node to the receive event's node.
	for pos, ev := range t.Events {
		to := g.nodeByEvent[pos]
		m := t.Msgs[ev.Trigger]
		if m.IsWakeup() || dropped(m) {
			continue // external trigger or exempted: no message edge
		}
		sendPos := t.EventAt(m.From, m.SendStep)
		if sendPos < 0 {
			continue // scripted send without a step: dangling
		}
		from := g.nodeByEvent[sendPos]
		g.edges = append(g.edges, Edge{From: from, To: to, Kind: Message, Msg: m.ID})
	}

	g.out = make([][]EdgeID, len(g.nodes))
	g.in = make([][]EdgeID, len(g.nodes))
	for i, e := range g.edges {
		g.out[e.From] = append(g.out[e.From], EdgeID(i))
		g.in[e.To] = append(g.in[e.To], EdgeID(i))
	}
	return g
}

// Trace returns the underlying trace.
func (g *Graph) Trace() *sim.Trace { return g.trace }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Edges returns all edges. The caller must not modify the result.
func (g *Graph) Edges() []Edge { return g.edges }

// Out returns the IDs of edges leaving n. The caller must not modify it.
func (g *Graph) Out(n NodeID) []EdgeID { return g.out[n] }

// In returns the IDs of edges entering n. The caller must not modify it.
func (g *Graph) In(n NodeID) []EdgeID { return g.in[n] }

// NodesOf returns process p's kept nodes in local order.
func (g *Graph) NodesOf(p sim.ProcessID) []NodeID { return g.procNodes[p] }

// NodeByEvent returns the node for the trace event at position pos, or -1
// if the event was dropped.
func (g *Graph) NodeByEvent(pos int) NodeID { return g.nodeByEvent[pos] }

// MessageCount returns the number of non-local edges.
func (g *Graph) MessageCount() int {
	n := 0
	for _, e := range g.edges {
		if e.Kind == Message {
			n++
		}
	}
	return n
}

// Digraph converts the execution graph to a graphutil.Digraph with edge
// labels equal to edge IDs, for topological sorting and DOT export.
func (g *Graph) Digraph() *graphutil.Digraph {
	d := graphutil.New(len(g.nodes))
	for i, e := range g.edges {
		d.AddEdge(int(e.From), int(e.To), 0, int32(i))
	}
	return d
}

// String renders a node as "p3/7" (process 3, event index 7).
func (n Node) String() string { return fmt.Sprintf("p%d/%d", n.Proc, n.Index) }
