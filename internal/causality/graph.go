// Package causality implements the execution graph of Definition 1 of the
// ABC paper and the causal-order machinery built on it: happens-before
// reachability, left closures, consistent cuts and their frontiers
// (Definition 5), consistent cut intervals (Definition 6), and real-time
// cuts in the sense of Mattern used by Theorem 3.
//
// The execution graph G_α of an admissible execution α has one node per
// receive event and two kinds of edges: non-local edges ("messages") from
// the computing step that sent a message to its receive event, and local
// edges between consecutive events at the same process.
//
// Messages sent by faulty processes are dropped per Definition 1. The
// definition also drops their receive events; this implementation instead
// keeps the receive event as a node without an incoming message edge.
// The two graphs are equivalent for every Definition 3/4 purpose: local
// edges are never counted in |Z−| or |Z+|, and subdividing a local chain
// with an extra node changes neither a cycle's message counts nor its
// orientation or relevance. Keeping the node additionally anchors
// messages a correct process sent from such a step at their true causal
// position (the paper is silent on that corner), preserves the physical
// event order, and makes exempting messages (Section 2's restriction
// mechanism, used by the Section 6 variants) monotone: dropping more
// messages never creates constraints.
//
// Graphs come in two flavors: Build constructs the complete graph of a
// finished trace in one shot, and Builder grows a graph event by event as
// its trace is appended to (the substrate of the incremental admissibility
// engine in internal/check). Both store adjacency in a flat CSR layout
// (offsets + edge IDs) rather than per-node slices, so adjacency walks are
// two contiguous array reads.
package causality

import (
	"fmt"

	"repro/internal/graphutil"
	"repro/internal/sim"
)

// NodeID indexes a node (receive event) within a Graph.
type NodeID int

// Node is a receive event kept in the execution graph.
type Node struct {
	Proc  sim.ProcessID
	Index int // the event's per-process index in the underlying trace
	Time  sim.Time
	// TracePos is the event's position in Trace.Events.
	TracePos int
	// Wakeup is true for the externally triggered initial event.
	Wakeup bool
}

// EdgeKind distinguishes local edges from messages (non-local edges).
type EdgeKind uint8

// Edge kinds. Only Message edges count toward cycle lengths |Z−| and |Z+|
// (Definition 2: the length of a chain is its number of non-local edges).
const (
	Local EdgeKind = iota + 1
	Message
)

func (k EdgeKind) String() string {
	switch k {
	case Local:
		return "local"
	case Message:
		return "message"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// EdgeID indexes an edge within a Graph.
type EdgeID int

// Edge is a directed edge of the execution graph.
type Edge struct {
	From, To NodeID
	Kind     EdgeKind
	// Msg is the underlying message for Message edges, -1 for local edges.
	Msg sim.MsgID
}

// Graph is the execution graph G_α. Graphs returned by Build (and
// Builder.Finalize) are immutable and safe for concurrent reads; a graph
// still being grown by a Builder must be confined to one goroutine.
type Graph struct {
	trace *sim.Trace
	nodes []Node
	edges []Edge
	// msgCount is the number of Message edges, maintained at build time so
	// MessageCount is O(1) (it is on the per-call path of every
	// MaxRelevantRatio/Constrained invocation).
	msgCount int
	// CSR adjacency: outIDs[outOff[n]:outOff[n+1]] are the IDs of edges
	// leaving n, inIDs likewise for edges entering n. Valid for the first
	// csrNodes nodes and csrEdges edges; a Builder append invalidates the
	// layout and the next adjacency access rebuilds it.
	outOff, inOff      []int32
	outIDs, inIDs      []EdgeID
	csrNodes, csrEdges int
	// nodeByEvent maps a trace event position to its node, -1 if dropped.
	nodeByEvent []NodeID
	// procNodes lists each process's kept nodes in local order.
	procNodes [][]NodeID
}

// Options configure Build.
type Options struct {
	// DropMessage, when non-nil, exempts additional messages from the graph
	// (and hence from the ABC synchrony condition), as suggested in
	// Section 2 for messages "of some specific type or sent/received by
	// some specific processes" and used by the weaker models of Section 6.
	// The receive events of dropped messages are removed like those of
	// faulty-sent messages.
	DropMessage func(m sim.Message) bool
}

// dropped reports whether message m is exempt from the graph (and hence
// from the synchrony condition) under opts.
func dropped(t *sim.Trace, opts Options, m sim.Message) bool {
	if m.IsWakeup() {
		return false
	}
	if m.From >= 0 && m.SendStep == sim.SendStepScripted {
		return true // scripted sends come only from faulty processes
	}
	if t.Faulty[m.From] {
		return true
	}
	return opts.DropMessage != nil && opts.DropMessage(m)
}

// Build constructs the execution graph of a trace.
func Build(t *sim.Trace, opts Options) *Graph {
	g := &Graph{
		trace:       t,
		nodeByEvent: make([]NodeID, len(t.Events)),
		procNodes:   make([][]NodeID, t.N),
	}

	// Pass 1: create a node for every receive event. Events triggered by
	// dropped messages stay as nodes (see the package comment) but will
	// get no incoming message edge.
	for pos, ev := range t.Events {
		m := t.Msgs[ev.Trigger]
		id := NodeID(len(g.nodes))
		g.nodes = append(g.nodes, Node{
			Proc:     ev.Proc,
			Index:    ev.Index,
			Time:     ev.Time,
			TracePos: pos,
			Wakeup:   m.IsWakeup(),
		})
		g.nodeByEvent[pos] = id
		g.procNodes[ev.Proc] = append(g.procNodes[ev.Proc], id)
	}

	// Pass 2: local edges between consecutive kept events of each process.
	for p := 0; p < t.N; p++ {
		nodes := g.procNodes[p]
		for i := 1; i < len(nodes); i++ {
			g.edges = append(g.edges, Edge{From: nodes[i-1], To: nodes[i], Kind: Local, Msg: -1})
		}
	}

	// Pass 3: message edges for kept messages, from the sending step's
	// node to the receive event's node.
	for pos, ev := range t.Events {
		to := g.nodeByEvent[pos]
		m := t.Msgs[ev.Trigger]
		if m.IsWakeup() || dropped(t, opts, m) {
			continue // external trigger or exempted: no message edge
		}
		sendPos := t.EventAt(m.From, m.SendStep)
		if sendPos < 0 {
			continue // scripted send without a step: dangling
		}
		from := g.nodeByEvent[sendPos]
		g.edges = append(g.edges, Edge{From: from, To: to, Kind: Message, Msg: m.ID})
		g.msgCount++
	}

	g.ensureCSR()
	return g
}

// ensureCSR (re)builds the flat adjacency arrays when nodes or edges were
// appended since the last build. It is a no-op on finalized graphs.
func (g *Graph) ensureCSR() {
	if g.csrNodes == len(g.nodes) && g.csrEdges == len(g.edges) {
		return
	}
	n := len(g.nodes)
	outOff := make([]int32, n+1)
	inOff := make([]int32, n+1)
	for _, e := range g.edges {
		outOff[e.From+1]++
		inOff[e.To+1]++
	}
	for i := 0; i < n; i++ {
		outOff[i+1] += outOff[i]
		inOff[i+1] += inOff[i]
	}
	outIDs := make([]EdgeID, len(g.edges))
	inIDs := make([]EdgeID, len(g.edges))
	fillO := make([]int32, n)
	fillI := make([]int32, n)
	for i, e := range g.edges {
		outIDs[outOff[e.From]+fillO[e.From]] = EdgeID(i)
		fillO[e.From]++
		inIDs[inOff[e.To]+fillI[e.To]] = EdgeID(i)
		fillI[e.To]++
	}
	g.outOff, g.inOff, g.outIDs, g.inIDs = outOff, inOff, outIDs, inIDs
	g.csrNodes, g.csrEdges = n, len(g.edges)
}

// Trace returns the underlying trace.
func (g *Graph) Trace() *sim.Trace { return g.trace }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Edges returns all edges. The caller must not modify the result.
func (g *Graph) Edges() []Edge { return g.edges }

// Out returns the IDs of edges leaving n. The caller must not modify it.
func (g *Graph) Out(n NodeID) []EdgeID {
	g.ensureCSR()
	return g.outIDs[g.outOff[n]:g.outOff[n+1]]
}

// In returns the IDs of edges entering n. The caller must not modify it.
func (g *Graph) In(n NodeID) []EdgeID {
	g.ensureCSR()
	return g.inIDs[g.inOff[n]:g.inOff[n+1]]
}

// NodesOf returns process p's kept nodes in local order.
func (g *Graph) NodesOf(p sim.ProcessID) []NodeID { return g.procNodes[p] }

// NodeByEvent returns the node for the trace event at position pos, or -1
// if the event was dropped.
func (g *Graph) NodeByEvent(pos int) NodeID { return g.nodeByEvent[pos] }

// MessageCount returns the number of non-local edges. It is O(1): the
// count is maintained at build time.
func (g *Graph) MessageCount() int { return g.msgCount }

// IsDAG reports whether the graph is acyclic. Graphs of traces in causal
// delivery order — everything the simulator or TraceBuilder produces —
// have every edge pointing from a lower to a higher node ID, which a
// single scan certifies; only externally loaded traces with reordered
// events pay for a Kahn topological sort over the CSR adjacency.
func (g *Graph) IsDAG() bool {
	ordered := true
	for _, e := range g.edges {
		if e.To <= e.From {
			ordered = false
			break
		}
	}
	if ordered {
		return true
	}
	g.ensureCSR()
	n := len(g.nodes)
	indeg := make([]int32, n)
	for _, e := range g.edges {
		indeg[e.To]++
	}
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, eid := range g.outIDs[g.outOff[v]:g.outOff[v+1]] {
			w := g.edges[eid].To
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, int32(w))
			}
		}
	}
	return seen == n
}

// Digraph converts the execution graph to a graphutil.Digraph with edge
// labels equal to edge IDs, for topological sorting and DOT export.
func (g *Graph) Digraph() *graphutil.Digraph {
	d := graphutil.New(len(g.nodes))
	for i, e := range g.edges {
		d.AddEdge(int(e.From), int(e.To), 0, int32(i))
	}
	return d
}

// String renders a node as "p3/7" (process 3, event index 7).
func (n Node) String() string { return fmt.Sprintf("p%d/%d", n.Proc, n.Index) }
