package causality

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rat"
	"repro/internal/sim"
)

// randomExec builds a random execution graph from a seeded simulation.
func randomExec(seed int64) *Graph {
	if seed < 0 {
		seed = -seed
	}
	n := 2 + int(seed%3)
	res, err := sim.Run(sim.Config{
		N: n,
		Spawn: func(p sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < 4 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays: sim.UniformDelay{Min: rat.One, Max: rat.FromInt(2)},
		Seed:   seed,
	})
	if err != nil {
		panic(err)
	}
	return Build(res.Trace, Options{})
}

// Property: left closure is idempotent and monotone.
func TestClosureIdempotentProperty(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		g := randomExec(seed)
		if g.NumNodes() == 0 {
			return true
		}
		n := NodeID(int(pick) % g.NumNodes())
		c1 := g.LeftClosure(n)
		c2 := c1.Clone().Close()
		if c1.Size() != c2.Size() {
			return false
		}
		return c1.IsLeftClosed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a consistent cut interval [⟨φ⟩, ⟨ψ⟩] never intersects ⟨φ⟩ and
// its union with ⟨φ⟩ is exactly ⟨ψ⟩ when φ ∗→ ψ.
func TestIntervalPartitionProperty(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		g := randomExec(seed)
		if g.NumNodes() < 2 {
			return true
		}
		x := NodeID(int(a) % g.NumNodes())
		y := NodeID(int(b) % g.NumNodes())
		if !g.HappensBefore(x, y) {
			return true
		}
		phi, psi := g.LeftClosure(x), g.LeftClosure(y)
		iv := g.Interval(x, y)
		for _, n := range iv.Nodes() {
			if phi.Contains(n) {
				return false
			}
			if !psi.Contains(n) {
				return false
			}
		}
		return iv.Size()+phi.Size() == psi.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: HappensBefore is a partial order — antisymmetric on distinct
// nodes (the graph is a DAG) and transitive.
func TestHappensBeforePartialOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		g := randomExec(int64(trial))
		n := g.NumNodes()
		if n < 3 {
			continue
		}
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		c := NodeID(rng.Intn(n))
		if a != b && g.HappensBefore(a, b) && g.HappensBefore(b, a) {
			t.Fatalf("antisymmetry violated between %v and %v", g.Node(a), g.Node(b))
		}
		if g.HappensBefore(a, b) && g.HappensBefore(b, c) && !g.HappensBefore(a, c) {
			t.Fatalf("transitivity violated: %v -> %v -> %v", g.Node(a), g.Node(b), g.Node(c))
		}
	}
}

// Property: real-time cuts are consistent at every event time (Mattern's
// transfer, used by Theorem 3).
func TestRealTimeCutsConsistentProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomExec(seed)
		for i := 0; i < g.NumNodes(); i += 3 {
			cut := g.CutAtTime(g.Node(NodeID(i)).Time)
			if !cut.IsLeftClosed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: frontier nodes are maximal within the cut for their process.
func TestFrontierMaximalProperty(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		g := randomExec(seed)
		if g.NumNodes() == 0 {
			return true
		}
		cut := g.LeftClosure(NodeID(int(pick) % g.NumNodes()))
		for p := sim.ProcessID(0); int(p) < g.Trace().N; p++ {
			fr := cut.Frontier(p)
			if fr < 0 {
				continue
			}
			for _, n := range g.NodesOf(p) {
				if cut.Contains(n) && g.Node(n).Index > g.Node(fr).Index {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
