package causality

import (
	"testing"

	"repro/internal/rat"
	"repro/internal/sim"
)

// chainTrace builds a 3-process trace:
//
//	p0: w0 ──m1──> p1: e1 ──m2──> p2: e2
//	p0: w0 ──m3────────────────────> p2: e3
func chainTrace(t *testing.T) *sim.Trace {
	t.Helper()
	b := sim.NewTraceBuilder(3)
	b.WakeAll(rat.Zero)
	b.MsgAt(0, 0, 1, 1, "m1")
	b.MsgAt(1, 1, 2, 2, "m2")
	b.MsgAt(0, 0, 2, 3, "m3")
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildBasic(t *testing.T) {
	g := Build(chainTrace(t), Options{})
	if g.NumNodes() != 6 {
		t.Fatalf("got %d nodes, want 6 (3 wake-ups + 3 receives)", g.NumNodes())
	}
	locals, msgs := 0, 0
	for _, e := range g.Edges() {
		switch e.Kind {
		case Local:
			locals++
		case Message:
			msgs++
		}
	}
	// Local: p1 has 2 events (1 edge), p2 has 3 events (2 edges).
	if locals != 3 {
		t.Errorf("got %d local edges, want 3", locals)
	}
	if msgs != 3 {
		t.Errorf("got %d message edges, want 3", msgs)
	}
	if g.MessageCount() != 3 {
		t.Errorf("MessageCount = %d, want 3", g.MessageCount())
	}
	// The graph is a DAG.
	if !g.Digraph().IsDAG() {
		t.Error("execution graph is not a DAG")
	}
}

func TestEdgeKindString(t *testing.T) {
	if Local.String() != "local" || Message.String() != "message" {
		t.Error("EdgeKind String wrong")
	}
	if EdgeKind(9).String() != "EdgeKind(9)" {
		t.Error("unknown EdgeKind String wrong")
	}
}

func TestHappensBefore(t *testing.T) {
	tr := chainTrace(t)
	g := Build(tr, Options{})
	w0 := g.NodesOf(0)[0]
	e1 := g.NodesOf(1)[1]
	e2 := g.NodesOf(2)[1]
	w2 := g.NodesOf(2)[0]

	tests := []struct {
		a, b NodeID
		want bool
	}{
		{w0, e1, true},
		{w0, e2, true},
		{e1, e2, true},
		{e2, e1, false},
		{e1, w0, false},
		{w2, e2, true}, // local order
		{e1, e1, true}, // reflexive
	}
	for _, tt := range tests {
		if got := g.HappensBefore(tt.a, tt.b); got != tt.want {
			t.Errorf("HappensBefore(%v, %v) = %v, want %v", g.Node(tt.a), g.Node(tt.b), got, tt.want)
		}
	}
}

func TestFaultyMessageDropping(t *testing.T) {
	// p1 is faulty: m1 (p0->p1) keeps its message edge (correct sender);
	// m2 (p1->p2) loses its message edge. All receive events remain as
	// nodes (see the package comment: node-preserving dropping is
	// equivalent for all cycle purposes).
	b := sim.NewTraceBuilder(3)
	b.SetFaulty(1)
	b.WakeAll(rat.Zero)
	b.MsgAt(0, 0, 1, 1, "m1")
	b.MsgAt(1, 1, 2, 2, "m2")
	tr := b.MustBuild()
	g := Build(tr, Options{})

	if g.NumNodes() != 5 {
		t.Fatalf("got %d nodes, want 5 (all receive events)", g.NumNodes())
	}
	if g.MessageCount() != 1 {
		t.Errorf("got %d message edges, want 1 (only m1)", g.MessageCount())
	}
	// m2's receive event exists but has no incoming message edge.
	recv := g.NodesOf(2)[1]
	for _, eid := range g.In(recv) {
		if g.Edge(eid).Kind == Message {
			t.Error("dropped message still has a message edge")
		}
	}
}

func TestMessageFromStepTriggeredByFaulty(t *testing.T) {
	// p1 faulty sends to p0; p0's step triggered by that message sends to
	// p2. The correct message anchors at its true sending step (p0's
	// event 1), which remains a node.
	b := sim.NewTraceBuilder(3)
	b.SetFaulty(1)
	b.WakeAll(rat.Zero)
	b.MsgAt(1, 0, 0, 1, "faulty")
	b.MsgAt(0, 1, 2, 2, "fromTriggered") // sent from p0's event 1
	tr := b.MustBuild()
	g := Build(tr, Options{})

	var msgEdge *Edge
	for i := range g.Edges() {
		if g.Edges()[i].Kind == Message {
			e := g.Edges()[i]
			msgEdge = &e
		}
	}
	if msgEdge == nil {
		t.Fatal("no message edge for correct message from triggered step")
	}
	from := g.Node(msgEdge.From)
	if from.Proc != 0 || from.Index != 1 {
		t.Errorf("message anchored at %v, want p0/1", from)
	}
}

func TestDropMessageOption(t *testing.T) {
	tr := chainTrace(t)
	g := Build(tr, Options{
		DropMessage: func(m sim.Message) bool {
			s, ok := m.Payload.(string)
			return ok && s == "m3"
		},
	})
	if g.MessageCount() != 2 {
		t.Errorf("got %d messages after drop, want 2", g.MessageCount())
	}
}

func TestLeftClosureAndCuts(t *testing.T) {
	tr := chainTrace(t)
	g := Build(tr, Options{})
	e2 := g.NodesOf(2)[1] // receive of m2 at p2

	cone := g.CausalCone(e2)
	// Causal past of e2: e2 itself, p2's wake-up, e1, p1's wake-up, p0's
	// wake-up. Not p2's event 2 (m3 receive).
	if cone.Size() != 5 {
		t.Errorf("cone size = %d, want 5", cone.Size())
	}
	if !cone.IsLeftClosed() {
		t.Error("causal cone not left-closed")
	}
	if !cone.IsConsistent() {
		t.Error("causal cone should be consistent (covers every process)")
	}

	// Removing an interior node breaks left-closure.
	broken := cone.Clone()
	broken.Remove(g.NodesOf(1)[0])
	if broken.IsLeftClosed() {
		t.Error("cut missing causal past reported left-closed")
	}
	if broken.IsConsistent() {
		t.Error("non-left-closed cut reported consistent")
	}
}

func TestConsistencyRequiresAllCorrectProcesses(t *testing.T) {
	tr := chainTrace(t)
	g := Build(tr, Options{})
	c := g.LeftClosure(g.NodesOf(0)[0]) // only p0's wake-up
	if !c.IsLeftClosed() {
		t.Error("singleton wake-up closure not left-closed")
	}
	if c.IsConsistent() {
		t.Error("cut without events of p1, p2 reported consistent")
	}
}

func TestFrontier(t *testing.T) {
	tr := chainTrace(t)
	g := Build(tr, Options{})
	e3 := g.NodesOf(2)[2]
	cone := g.CausalCone(e3)
	// Frontier at p2 is e3 itself; at p0 its wake-up.
	if f := cone.Frontier(2); f != e3 {
		t.Errorf("frontier(p2) = %v, want %v", f, e3)
	}
	if f := cone.Frontier(0); f != g.NodesOf(0)[0] {
		t.Errorf("frontier(p0) = %v", f)
	}
	empty := NewCut(g)
	if f := empty.Frontier(0); f != -1 {
		t.Errorf("frontier on empty cut = %v, want -1", f)
	}
}

func TestCutAtTime(t *testing.T) {
	tr := chainTrace(t)
	g := Build(tr, Options{})
	c := g.CutAtTime(rat.FromInt(1))
	// At time 1: all wake-ups (t=0) + receive of m1 (t=1).
	if c.Size() != 4 {
		t.Errorf("cut at t=1 has %d nodes, want 4", c.Size())
	}
	// Real-time cuts are always left-closed.
	if !c.IsLeftClosed() {
		t.Error("real-time cut not left-closed")
	}
	if !c.IsConsistent() {
		t.Error("real-time cut at t=1 should be consistent")
	}
}

func TestInterval(t *testing.T) {
	tr := chainTrace(t)
	g := Build(tr, Options{})
	w0 := g.NodesOf(0)[0]
	e2 := g.NodesOf(2)[1]
	iv := g.Interval(w0, e2)
	// ⟨e2⟩ has 5 nodes, ⟨w0⟩ has 1; the interval has 4.
	if iv.Size() != 4 {
		t.Errorf("interval size = %d, want 4", iv.Size())
	}
	if iv.Contains(w0) {
		t.Error("interval contains left endpoint's closure")
	}
	if !iv.Contains(e2) {
		t.Error("interval missing right endpoint")
	}
}

func TestCloseInPlace(t *testing.T) {
	tr := chainTrace(t)
	g := Build(tr, Options{})
	c := NewCut(g)
	c.Add(g.NodesOf(2)[1])
	c.Close()
	if !c.IsLeftClosed() || c.Size() != 5 {
		t.Errorf("Close: leftClosed=%v size=%d", c.IsLeftClosed(), c.Size())
	}
}

func TestNodesAndAccessors(t *testing.T) {
	tr := chainTrace(t)
	g := Build(tr, Options{})
	if g.Trace() != tr {
		t.Error("Trace accessor wrong")
	}
	n := g.Node(g.NodesOf(1)[0])
	if n.Proc != 1 || n.Index != 0 || !n.Wakeup {
		t.Errorf("node = %+v", n)
	}
	if n.String() != "p1/0" {
		t.Errorf("String = %q", n.String())
	}
	// In/Out adjacency is mutually consistent.
	for id := NodeID(0); int(id) < g.NumNodes(); id++ {
		for _, eid := range g.Out(id) {
			if g.Edge(eid).From != id {
				t.Errorf("out edge %d not from %d", eid, id)
			}
		}
		for _, eid := range g.In(id) {
			if g.Edge(eid).To != id {
				t.Errorf("in edge %d not to %d", eid, id)
			}
		}
	}
	// NodeByEvent round-trip.
	for pos := range tr.Events {
		id := g.NodeByEvent(pos)
		if id >= 0 && g.Node(id).TracePos != pos {
			t.Errorf("NodeByEvent(%d) round-trip failed", pos)
		}
	}
}

// Every receive event node has at most one incoming message edge and at
// most one incoming local edge — the structural fact behind "every cycle
// has at least one local edge" (see DESIGN.md).
func TestInDegreeInvariant(t *testing.T) {
	res, err := sim.Run(sim.Config{
		N: 4,
		Spawn: func(p sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < 5 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays: sim.UniformDelay{Min: rat.One, Max: rat.FromInt(3)},
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := Build(res.Trace, Options{})
	for id := NodeID(0); int(id) < g.NumNodes(); id++ {
		msgs, locals := 0, 0
		for _, eid := range g.In(id) {
			switch g.Edge(eid).Kind {
			case Message:
				msgs++
			case Local:
				locals++
			}
		}
		if msgs > 1 || locals > 1 {
			t.Fatalf("node %v has %d message and %d local in-edges", g.Node(id), msgs, locals)
		}
	}
	if !g.Digraph().IsDAG() {
		t.Error("simulated execution graph not a DAG")
	}
}
