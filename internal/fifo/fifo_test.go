package fifo

import (
	"testing"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/rat"
	"repro/internal/sim"
)

func TestMinChainLen(t *testing.T) {
	tests := []struct {
		xi   rat.Rat
		want int
	}{
		{rat.FromInt(4), 3}, // ratio k+1 = 4 >= 4
		{rat.FromInt(2), 1}, // ratio 2 >= 2
		{rat.New(3, 2), 1},  // ratio 2 >= 3/2
		{rat.New(5, 2), 2},  // ratio 3 >= 5/2
		{rat.New(9, 4), 2},  // ratio 3 >= 9/4
	}
	for _, tt := range tests {
		if got := MinChainLen(tt.xi); got != tt.want {
			t.Errorf("MinChainLen(%v) = %d, want %d", tt.xi, got, tt.want)
		}
	}
}

// fifoConfig wires sender 0, helper 1, receiver 2.
func fifoConfig(items int, chainLen int, delays sim.DelayPolicy, seed int64) sim.Config {
	payloads := make([]any, items)
	for i := range payloads {
		payloads[i] = i * 10
	}
	return sim.Config{
		N: 3,
		Spawn: func(p sim.ProcessID) sim.Process {
			switch p {
			case 0:
				return &Sender{Receiver: 2, Helper: 1, Items: payloads, ChainLen: chainLen}
			case 1:
				return Helper{}
			default:
				return &Receiver{}
			}
		},
		Delays:    delays,
		Seed:      seed,
		MaxEvents: 20000,
	}
}

// Fig. 10's guarantee: in every ABC(4)-admissible execution the receiver
// sees items in order, even with wildly varying per-message delays.
func TestFIFOHoldsInAdmissibleExecutions(t *testing.T) {
	xi := rat.FromInt(4)
	chain := 4 // the figure's value (2 ping-pongs), above the minimum 3
	admissible, reordered := 0, 0
	for seed := int64(0); seed < 60; seed++ {
		// Heavy-tailed delays on the data link, quick chain.
		delays := sim.OverrideDelay{
			Base: sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
			Match: func(m sim.Message) bool {
				_, isItem := m.Payload.(Item)
				return isItem
			},
			Override: sim.UniformDelay{Min: rat.One, Max: rat.FromInt(6)},
		}
		res, err := sim.Run(fifoConfig(5, chain, delays, seed))
		if err != nil {
			t.Fatal(err)
		}
		g := causality.Build(res.Trace, causality.Options{})
		v, err := check.ABC(g, xi)
		if err != nil {
			t.Fatal(err)
		}
		recv := res.Procs[2].(*Receiver)
		if !v.Admissible {
			// Inadmissible schedules are outside the model; not counted.
			continue
		}
		admissible++
		if !recv.InOrder() {
			reordered++
			t.Errorf("seed %d: admissible execution delivered out of order: %v", seed, recv.Got)
		}
		if len(recv.Got) != 5 {
			t.Errorf("seed %d: received %d items, want 5", seed, len(recv.Got))
		}
	}
	if admissible < 10 {
		t.Fatalf("only %d admissible runs; experiment underpowered", admissible)
	}
	t.Logf("admissible=%d reordered=%d", admissible, reordered)
}

// The converse: a handcrafted execution in which item 1 overtakes item 0
// forms a relevant cycle with ratio chain+1 — inadmissible for Ξ = 4 when
// chain = 4 (the figure's ratio-5 cycle).
func TestReorderingIsInadmissible(t *testing.T) {
	// sender = 0, helper = 1, receiver = 2. Receiver events are appended
	// in arrival order: item1 first (t=5), then the overtaken item0
	// (t=20), both sent from the sender's earlier steps.
	b := sim.NewTraceBuilder(3)
	b.WakeAll(rat.Zero)
	// chain of 4: ping/pong twice.
	b.MsgAt(0, 0, 1, 1, "ping0")
	b.MsgAt(1, 1, 0, 2, "pong0")
	b.MsgAt(0, 1, 1, 3, "ping1")
	b.MsgAt(1, 2, 0, 4, "pong1")
	// item1 sent after the chain (sender event 2), arrives first.
	b.MsgAt(0, 2, 2, 5, "item1") // receiver event 1
	// item0 sent at the wake-up (sender event 0), arrives last: overtaken.
	b.MsgAt(0, 0, 2, 20, "item0") // receiver event 2
	tr := b.MustBuild()
	g := causality.Build(tr, causality.Options{})

	v, err := check.ABC(g, rat.FromInt(4))
	if err != nil {
		t.Fatal(err)
	}
	if v.Admissible {
		t.Fatal("reordered execution admissible at Ξ=4; Fig. 10 argument broken")
	}
	if v.WitnessClass.Ratio().Less(rat.FromInt(4)) {
		t.Errorf("witness ratio %v below 4", v.WitnessClass.Ratio())
	}
	// The same pattern is admissible for a larger Ξ (reordering allowed
	// when the model is weak).
	v, err = check.ABC(g, rat.FromInt(6))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admissible {
		t.Error("reordering should be admissible at Ξ=6 (ratio 5 < 6)")
	}
}

// With a chain shorter than the minimum, reordering becomes admissible —
// the bound in MinChainLen is tight.
func TestChainTooShortAllowsReordering(t *testing.T) {
	b := sim.NewTraceBuilder(3)
	b.WakeAll(rat.Zero)
	// chain of only 2 messages.
	b.MsgAt(0, 0, 1, 1, "ping0")
	b.MsgAt(1, 1, 0, 2, "pong0")
	b.MsgAt(0, 1, 2, 5, "item1")  // receiver event 1
	b.MsgAt(0, 0, 2, 20, "item0") // receiver event 2: overtaken
	tr := b.MustBuild()
	g := causality.Build(tr, causality.Options{})
	v, err := check.ABC(g, rat.FromInt(4))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admissible {
		t.Error("ratio-3 reorder cycle should be admissible at Ξ=4")
	}
}
