// Package fifo implements FIFO channels over non-FIFO links using only the
// ABC synchrony condition — the Fig. 10 construction of the paper
// (Section 5.1).
//
// The sender interleaves each pair of consecutive data messages with a
// causal chain of k messages (ping-pongs with a helper process). If a
// later data message overtook an earlier one, the receive events would
// close a relevant cycle with one forward message (the overtaken one) and
// k+1 backward messages (the overtaking one plus the chain) — ratio
// (k+1)/1. With k >= Ξ−1 that ratio reaches Ξ, so overtaking is
// inadmissible: messages arrive in order even though their delays are
// unbounded and the links deliver out of order in general. No sequence
// numbers are attached — ordering is a property of the model, which is
// what enables bounded message size and stable identifiers (paper,
// Section 5.1).
package fifo

import (
	"repro/internal/rat"
	"repro/internal/sim"
)

// Item is a data message carrying an opaque value. Seq exists only for
// test verification; the protocol never reads it.
type Item struct {
	Seq int
	V   any
}

// chainPing and chainPong are the inter-send causal chain messages.
type (
	chainPing struct{ Seq int }
	chainPong struct{ Seq int }
)

// MinChainLen returns the smallest number k of chain messages between
// consecutive sends that makes overtaking inadmissible for the given Ξ:
// the overtaking cycle has ratio (k+1)/1, which must reach Ξ, so
// k = ⌈Ξ⌉ − 1 (at least 1).
func MinChainLen(xi rat.Rat) int {
	k := xi.Ceil() - 1
	if xi.IsInt() {
		// ratio k+1 = Ξ: violation needs >= Ξ, so Ξ−1 suffices exactly.
		k = xi.Num() - 1
	}
	if k < 1 {
		k = 1
	}
	return int(k)
}

// Sender emits Items to Receiver in order, inserting a ChainLen-message
// chain (via Helper) between consecutive sends.
type Sender struct {
	Receiver, Helper sim.ProcessID
	Items            []any
	ChainLen         int

	next int
	legs int
}

var _ sim.Process = (*Sender)(nil)

// Step implements sim.Process.
func (s *Sender) Step(env *sim.Env, msg sim.Message) {
	switch pl := msg.Payload.(type) {
	case sim.Wakeup:
		s.sendNext(env)
	case chainPong:
		s.legs += 2
		if s.legs >= s.ChainLen {
			s.sendNext(env)
			return
		}
		env.Send(s.Helper, chainPing{Seq: pl.Seq + 1})
	}
}

// sendNext emits the next item (if any) and starts the next chain.
func (s *Sender) sendNext(env *sim.Env) {
	if s.next >= len(s.Items) {
		return
	}
	env.Send(s.Receiver, Item{Seq: s.next, V: s.Items[s.next]})
	s.next++
	s.legs = 0
	if s.next < len(s.Items) {
		env.Send(s.Helper, chainPing{Seq: 0})
	}
}

// Helper bounces chain pings back.
type Helper struct{}

var _ sim.Process = Helper{}

// Step implements sim.Process.
func (Helper) Step(env *sim.Env, msg sim.Message) {
	if p, ok := msg.Payload.(chainPing); ok {
		env.Send(msg.From, chainPong{Seq: p.Seq})
	}
}

// Receiver records items in arrival order.
type Receiver struct {
	Got []Item
}

var _ sim.Process = (*Receiver)(nil)

// Step implements sim.Process.
func (r *Receiver) Step(env *sim.Env, msg sim.Message) {
	if it, ok := msg.Payload.(Item); ok {
		r.Got = append(r.Got, it)
	}
}

// InOrder reports whether the received sequence is exactly 0, 1, 2, ...
func (r *Receiver) InOrder() bool {
	for i, it := range r.Got {
		if it.Seq != i {
			return false
		}
	}
	return true
}
