package cyclespace

import (
	"math/rand"
	"testing"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/cycles"
	"repro/internal/rat"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// fig2Cycles materializes the X and Y cycles of Fig. 2 as Cycle values.
func fig2Cycles(t *testing.T) (fig scenario.Fig2, x, y cycles.Cycle) {
	t.Helper()
	fig = scenario.BuildFig2()
	x = cycles.MustCycle(fig.Graph, []cycles.Step{
		{Edge: fig.X[0], Forward: true},  // e
		{Edge: fig.X[1], Forward: false}, // local at p
		{Edge: fig.X[2], Forward: false}, // m2
		{Edge: fig.X[3], Forward: false}, // m1
	})
	y = cycles.MustCycle(fig.Graph, []cycles.Step{
		{Edge: fig.Y[0], Forward: true},  // m4
		{Edge: fig.Y[1], Forward: false}, // local at r
		{Edge: fig.Y[2], Forward: false}, // m3
		{Edge: fig.Y[3], Forward: false}, // e
	})
	return fig, x, y
}

func TestFig2CyclesRelevant(t *testing.T) {
	_, x, y := fig2Cycles(t)
	for name, c := range map[string]cycles.Cycle{"X": x, "Y": y} {
		cl := cycles.Classify(c)
		if !cl.Relevant {
			t.Errorf("%s not relevant", name)
		}
		if cl.Forward != 1 || cl.Backward != 2 {
			t.Errorf("%s: |Z+|=%d |Z−|=%d, want 1, 2", name, cl.Forward, cl.Backward)
		}
	}
}

func TestSignVectorFig2(t *testing.T) {
	fig, x, y := fig2Cycles(t)
	vx, vy := SignVector(x), SignVector(y)
	// e is forward in X (coefficient −1) and backward in Y (+1).
	if vx[fig.E] != -1 {
		t.Errorf("X coefficient of e = %d, want -1", vx[fig.E])
	}
	if vy[fig.E] != +1 {
		t.Errorf("Y coefficient of e = %d, want +1", vy[fig.E])
	}
	// X: backward messages m1, m2 get +1.
	if vx[fig.X[2]] != 1 || vx[fig.X[3]] != 1 {
		t.Errorf("X backward coefficients: m2=%d m1=%d, want 1, 1", vx[fig.X[2]], vx[fig.X[3]])
	}
}

func TestAddCancelsSharedEdge(t *testing.T) {
	fig, x, y := fig2Cycles(t)
	sum := Add(SignVector(x), SignVector(y))
	if _, ok := sum[fig.E]; ok {
		t.Error("e did not cancel in X ⊕ Y")
	}
	// 5 messages remain (m1..m4 and m3).
	if len(sum) != 4 {
		t.Errorf("X ⊕ Y has %d message coefficients, want 4", len(sum))
	}
}

func TestConsistency(t *testing.T) {
	_, x, y := fig2Cycles(t)
	if got := Consistent(x, y); got != OConsistent {
		t.Errorf("X vs Y: %v, want o-consistent", got)
	}
	if got := Consistent(x, x); got != IConsistent {
		t.Errorf("X vs X: %v, want i-consistent", got)
	}
	if OConsistent.String() != "o-consistent" || IConsistent.String() != "i-consistent" ||
		Inconsistent.String() != "inconsistent" {
		t.Error("Consistency String() wrong")
	}
}

func TestAddCyclesFig2(t *testing.T) {
	fig, x, y := fig2Cycles(t)
	ms, err := AddCycles(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("X ⊕ Y decomposed into %d cycles, want 1", len(ms))
	}
	m := ms[0]
	// The combined cycle has all 6 edges except e.
	if m.Len() != 6 {
		t.Errorf("combined cycle has %d edges, want 6", m.Len())
	}
	for _, s := range m.Steps() {
		if s.Edge == fig.E {
			t.Error("combined cycle still contains e")
		}
	}
	// It is relevant with ratio 3/1 — worse than its constituents' 2/1.
	cl := cycles.Classify(m)
	if !cl.Relevant || !cl.Ratio().Equal(rat.FromInt(3)) {
		t.Errorf("combined cycle: relevant=%v ratio=%v, want relevant ratio 3", cl.Relevant, cl.Ratio())
	}
	// Its vector equals the vector sum.
	if got, want := SignVector(m), Add(SignVector(x), SignVector(y)); !vectorsEqual(got, want) {
		t.Errorf("SignVector(X⊕Y) = %v, want %v", got, want)
	}
	// And i-consistent with both constituents (Lemma 8).
	if Consistent(m, x) != IConsistent || Consistent(m, y) != IConsistent {
		t.Error("X ⊕ Y not i-consistent with constituents")
	}
}

func vectorsEqual(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for e, c := range a {
		if b[e] != c {
			return false
		}
	}
	return true
}

func TestAddCyclesDoubleEdge(t *testing.T) {
	_, x, _ := fig2Cycles(t)
	if _, err := AddCycles(x, x); err != ErrDoubleEdge {
		t.Errorf("X ⊕ X error = %v, want ErrDoubleEdge", err)
	}
}

func TestRowVectorSignFlip(t *testing.T) {
	// A non-relevant cycle's row vector is the negated sign vector.
	fig := scenario.BuildFig4()
	all, _ := cycles.Enumerate(fig.Graph, 1000)
	for _, c := range all {
		sv, rv := SignVector(c), RowVector(c)
		relevant := cycles.Classify(c).Relevant
		for e := range sv {
			want := sv[e]
			if !relevant {
				want = -want
			}
			if rv[e] != want {
				t.Fatalf("RowVector mismatch on edge %d (relevant=%v)", e, relevant)
			}
		}
	}
}

func TestScale(t *testing.T) {
	_, x, _ := fig2Cycles(t)
	v := SignVector(x)
	tr := Scale(v, 3)
	for e, c := range v {
		if tr[e] != 3*c {
			t.Errorf("Scale: edge %d = %d, want %d", e, tr[e], 3*c)
		}
	}
	if len(Scale(v, 0)) != 0 {
		t.Error("Scale by 0 not empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Scale did not panic")
		}
	}()
	Scale(v, -1)
}

func TestSumsConvention(t *testing.T) {
	v := Vector{1: -2, 2: 3, 3: -1, 4: 4}
	sPlus, sMinus := v.Sums()
	if sPlus != -3 || sMinus != 7 {
		t.Errorf("Sums = %d, %d, want -3, 7", sPlus, sMinus)
	}
}

// Lemma 7 (non-relevant sum property): any non-negative combination s_N of
// non-relevant row vectors satisfies Ξ·s− + s+ < 0 where the roles are the
// restrictions — equivalently, with row vectors, Ξ·s+ + s− < 0.
func TestLemma7NonRelevantSums(t *testing.T) {
	figs := []*causality.Graph{scenario.BuildFig4().Graph, scenario.BuildFig2().Graph}
	xi := rat.FromInt(2)
	rng := rand.New(rand.NewSource(1))
	for _, g := range figs {
		all, _ := cycles.Enumerate(g, 1000)
		var nonRel []Vector
		for _, c := range all {
			if !cycles.Classify(c).Relevant {
				nonRel = append(nonRel, RowVector(c))
			}
		}
		if len(nonRel) == 0 {
			continue
		}
		for trial := 0; trial < 50; trial++ {
			var parts []Vector
			for _, v := range nonRel {
				parts = append(parts, Scale(v, int64(rng.Intn(4))))
			}
			sum := Add(parts...)
			if len(sum) == 0 {
				continue
			}
			if !sum.SatisfiesSumProperty(xi) {
				t.Fatalf("non-relevant combination violates (9): %v", sum)
			}
		}
	}
}

// Corollary 1 / Lemma 11 (relevant sum property): in a Ξ-admissible graph,
// every non-negative integer combination of relevant cycle vectors
// satisfies Ξ·s+ + s− < 0 — i.e. the combined "cycle" still respects the
// ABC synchrony condition. This is the empirical counterpart of the
// mixed-free decomposition (Theorem 11).
func TestCorollary1RelevantSums(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for seed := int64(0); seed < 8; seed++ {
		res, err := sim.Run(sim.Config{
			N: 3,
			Spawn: func(p sim.ProcessID) sim.Process {
				return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
					if env.StepIndex() < 3 {
						env.Broadcast(env.StepIndex())
					}
				})
			},
			Delays: sim.UniformDelay{Min: rat.One, Max: rat.New(5, 4)},
			Seed:   seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := causality.Build(res.Trace, causality.Options{})
		// Find the smallest Ξ for which g is admissible, then use a
		// slightly larger one.
		maxR, found, err := check.MaxRelevantRatio(g)
		if err != nil {
			t.Fatal(err)
		}
		xi := rat.FromInt(2)
		if found {
			xi = maxR.Add(rat.New(1, 10))
		}
		all, complete := cycles.Enumerate(g, 20000)
		if !complete {
			continue
		}
		var rel []Vector
		for _, c := range all {
			if cycles.Classify(c).Relevant {
				rel = append(rel, SignVector(c))
			}
		}
		if len(rel) == 0 {
			continue
		}
		for trial := 0; trial < 30; trial++ {
			var parts []Vector
			for _, v := range rel {
				parts = append(parts, Scale(v, int64(rng.Intn(3))))
			}
			sum := Add(parts...)
			if len(sum) == 0 {
				continue
			}
			if !sum.SatisfiesSumProperty(xi) {
				t.Fatalf("seed %d: relevant combination violates (9) at Ξ=%v: %v", seed, xi, sum)
			}
		}
	}
}
