// Package cyclespace implements the non-standard cycle space of Section 4.1
// of the ABC paper: cycle vectors over the messages of an execution graph,
// the cycle addition ⊕, the consistency notions of Definition 10
// (i-consistent / o-consistent), the mixed-edge removal of Lemma 8, and the
// sum properties (Lemma 7, Corollary 1/Lemma 11) that drive the Farkas
// argument behind Theorem 7.
//
// The space differs from the classical graph-theoretic cycle space: cycles
// live in the undirected shadow graph but coefficients remember edge
// orientation relative to the cycle's Definition 3 orientation — backward
// messages contribute +1 and forward messages −1.
package cyclespace

import (
	"errors"
	"fmt"

	"repro/internal/causality"
	"repro/internal/cycles"
	"repro/internal/rat"
)

// Vector is a sparse cycle-space element: a map from message edge ID to an
// integer coefficient. Plain cycles have coefficients in {−1, +1};
// combinations may have arbitrary integers (multi-edges).
type Vector map[causality.EdgeID]int64

// SignVector returns the signed incidence vector of a cycle: +1 for each
// backward message (e ∈ Z−), −1 for each forward message (e ∈ Z+), under
// the cycle's Definition 3 orientation. Local edges do not appear.
func SignVector(c cycles.Cycle) Vector {
	cl := cycles.Classify(c)
	v := make(Vector)
	for _, s := range c.Steps() {
		e := c.Graph().Edge(s.Edge)
		if e.Kind != causality.Message {
			continue
		}
		// Under traversal order, forward steps are the "with" class; the
		// Definition 3 orientation may be the reverse of traversal order.
		forward := s.Forward != cl.OrientationReversed
		if forward {
			v[s.Edge] = -1
		} else {
			v[s.Edge] = +1
		}
	}
	return v
}

// RowVector returns the coefficient row this cycle contributes to the
// linear system Ax < b of Fig. 6: the SignVector for relevant cycles and
// its negation for non-relevant cycles (the paper's "sign-flipped version
// of (6)"). Fig. 7's z1 and z2 are RowVectors.
func RowVector(c cycles.Cycle) Vector {
	v := SignVector(c)
	if !cycles.Classify(c).Relevant {
		for e := range v {
			v[e] = -v[e]
		}
	}
	return v
}

// Add returns the coefficient-wise sum of vectors (the ⊕ of cycle-space
// elements, at the vector level). Coefficients that cancel to zero are
// removed.
func Add(vs ...Vector) Vector {
	out := make(Vector)
	for _, v := range vs {
		for e, c := range v {
			out[e] += c
			if out[e] == 0 {
				delete(out, e)
			}
		}
	}
	return out
}

// Scale returns v multiplied by the non-negative integer λ.
func Scale(v Vector, lambda int64) Vector {
	if lambda < 0 {
		panic("cyclespace: negative coefficient in non-negative combination")
	}
	out := make(Vector, len(v))
	if lambda == 0 {
		return out
	}
	for e, c := range v {
		out[e] = c * lambda
	}
	return out
}

// Sums returns s+ (the sum of all negative coefficients, a non-positive
// number) and s− (the sum of all non-negative coefficients), following the
// paper's convention around Equation (9).
func (v Vector) Sums() (sPlus, sMinus int64) {
	for _, c := range v {
		if c < 0 {
			sPlus += c
		} else {
			sMinus += c
		}
	}
	return sPlus, sMinus
}

// SatisfiesSumProperty reports whether Ξ·s+ + s− < 0 (Equation (9)): the
// inequality every canonical Farkas combination must satisfy. For a vector
// representing a single relevant cycle it is equivalent to the ABC
// synchrony condition |Z−|/|Z+| < Ξ.
func (v Vector) SatisfiesSumProperty(xi rat.Rat) bool {
	sPlus, sMinus := v.Sums()
	lhs := xi.MulInt(sPlus).Add(rat.FromInt(sMinus))
	return lhs.Sign() < 0
}

// Consistency is the Definition 10 relation between two cycles.
type Consistency int

// Consistency values.
const (
	// Inconsistent: some shared messages identically and some oppositely
	// oriented.
	Inconsistent Consistency = iota
	// IConsistent: disjoint, or all shared messages identically oriented.
	IConsistent
	// OConsistent: all shared messages oppositely oriented.
	OConsistent
)

func (c Consistency) String() string {
	switch c {
	case Inconsistent:
		return "inconsistent"
	case IConsistent:
		return "i-consistent"
	case OConsistent:
		return "o-consistent"
	default:
		return fmt.Sprintf("Consistency(%d)", int(c))
	}
}

// Consistent classifies the pair (Z1, Z2) per Definition 10, comparing the
// orientations of shared messages. Disjoint cycles are i-consistent by
// definition.
func Consistent(z1, z2 cycles.Cycle) Consistency {
	v1, v2 := SignVector(z1), SignVector(z2)
	sawSame, sawOpposite := false, false
	for e, c1 := range v1 {
		c2, ok := v2[e]
		if !ok {
			continue
		}
		if c1*c2 > 0 {
			sawSame = true
		} else {
			sawOpposite = true
		}
	}
	switch {
	case sawSame && sawOpposite:
		return Inconsistent
	case sawOpposite:
		return OConsistent
	default:
		return IConsistent
	}
}

// ErrDoubleEdge is returned by AddCycles when the two cycles share an
// identically traversed edge, so their sum contains a double edge and is
// not a union of plain cycles.
var ErrDoubleEdge = errors.New("cyclespace: cycle sum contains a double edge")

// AddCycles computes Z1 ⊕ Z2 at the subgraph level (Lemma 8's operation):
// shared edges traversed oppositely cancel, and the remaining edge set is
// decomposed into edge-disjoint simple cycles — for o-consistent cycles
// whose common chains consist of oppositely oriented edges these are the
// disjoint cycles M1, ..., Mn of Lemma 8. Identically traversed shared
// edges yield ErrDoubleEdge.
func AddCycles(z1, z2 cycles.Cycle) ([]cycles.Cycle, error) {
	g := z1.Graph()
	if g != z2.Graph() {
		return nil, errors.New("cyclespace: cycles from different graphs")
	}
	// Collect surviving steps: cancel opposite traversals of shared edges.
	traversal := make(map[causality.EdgeID]bool, z1.Len()+z2.Len()) // edge -> Forward
	for _, s := range z1.Steps() {
		traversal[s.Edge] = s.Forward
	}
	for _, s := range z2.Steps() {
		if dir, ok := traversal[s.Edge]; ok {
			if dir == s.Forward {
				return nil, ErrDoubleEdge
			}
			delete(traversal, s.Edge) // oppositely traversed: cancels
			continue
		}
		traversal[s.Edge] = s.Forward
	}

	// The surviving steps are in/out balanced at every vertex: a cycle is a
	// balanced oriented closed walk, and each cancellation removes one
	// in-step and one out-step at each endpoint. Decompose them into
	// vertex-simple cycles by an Eulerian walk that splits off a cycle
	// whenever a vertex repeats.
	endpoints := func(s cycles.Step) (from, to causality.NodeID) {
		e := g.Edge(s.Edge)
		if s.Forward {
			return e.From, e.To
		}
		return e.To, e.From
	}
	unused := make(map[causality.NodeID][]cycles.Step)
	remaining := 0
	for e, fwd := range traversal {
		s := cycles.Step{Edge: e, Forward: fwd}
		from, _ := endpoints(s)
		unused[from] = append(unused[from], s)
		remaining++
	}

	var out []cycles.Cycle
	emit := func(steps []cycles.Step) error {
		c, err := cycles.NewCycle(g, steps)
		if err != nil {
			return fmt.Errorf("cyclespace: %w", err)
		}
		out = append(out, c)
		return nil
	}

	for remaining > 0 {
		// Deterministic start: smallest vertex with unused out-steps.
		start := causality.NodeID(-1)
		for v, ss := range unused {
			if len(ss) > 0 && (start == -1 || v < start) {
				start = v
			}
		}
		var path []cycles.Step
		pos := map[causality.NodeID]int{start: 0} // vertex -> its index as a step start (len(path) = head)
		cur := start
		for {
			ss := unused[cur]
			if len(ss) == 0 {
				if len(path) != 0 {
					return nil, fmt.Errorf("cyclespace: unbalanced vertex %d in cycle sum", cur)
				}
				delete(unused, cur)
				break
			}
			s := ss[len(ss)-1]
			unused[cur] = ss[:len(ss)-1]
			remaining--
			_, to := endpoints(s)
			path = append(path, s)
			if at, seen := pos[to]; seen {
				// Split off the vertex-simple cycle path[at:].
				sub := make([]cycles.Step, len(path)-at)
				copy(sub, path[at:])
				if err := emit(sub); err != nil {
					return nil, err
				}
				for _, st := range sub {
					from, _ := endpoints(st)
					delete(pos, from)
				}
				path = path[:at]
				pos[to] = at // head again
				cur = to
				continue
			}
			pos[to] = len(path)
			cur = to
		}
	}
	return out, nil
}
