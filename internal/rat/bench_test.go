package rat

// Micro-benchmarks separating the small-word fast path from the promoted
// big path, with the pre-rewrite implementation's cost visible as the
// bigrat reference series (every op through a freshly allocated big.Rat,
// exactly what the old wrapper did). Run with
//
//	go test -bench=. -benchmem ./internal/rat
import (
	"math/big"
	"testing"
)

var sinkRat Rat
var sinkInt int

func benchOperands(form string) (Rat, Rat) {
	switch form {
	case "small":
		return New(355, 113), New(-113, 355)
	case "big":
		return MustParse("36893488147419103232/3"), MustParse("-7/18446744073709551629")
	}
	panic("unknown form")
}

func BenchmarkRatAdd(b *testing.B) {
	for _, form := range []string{"small", "big"} {
		x, y := benchOperands(form)
		b.Run(form, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkRat = x.Add(y)
			}
		})
	}
}

func BenchmarkRatMul(b *testing.B) {
	for _, form := range []string{"small", "big"} {
		x, y := benchOperands(form)
		b.Run(form, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkRat = x.Mul(y)
			}
		})
	}
}

func BenchmarkRatCmp(b *testing.B) {
	for _, form := range []string{"small", "big"} {
		x, y := benchOperands(form)
		b.Run(form, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkInt = x.Cmp(y)
			}
		})
	}
}

func BenchmarkRatNew(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkRat = New(int64(i)|1, 360)
	}
}

// BenchmarkBigRatReference is the old implementation's cost model: one
// big.Rat allocation per operation regardless of magnitude.
func BenchmarkBigRatReference(b *testing.B) {
	x, y := big.NewRat(355, 113), big.NewRat(-113, 355)
	b.Run("add", func(b *testing.B) {
		b.ReportAllocs()
		var sink *big.Rat
		for i := 0; i < b.N; i++ {
			sink = new(big.Rat).Add(x, y)
		}
		_ = sink
	})
	b.Run("cmp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkInt = x.Cmp(y)
		}
	})
}
