package rat

// Zero-value and concurrency coverage: the uninitialized Rat{} must behave
// as the exact rational 0 through every public method, and values — in
// both representations — must be safely shareable across goroutines
// without synchronization. Run the race test under the race detector:
//
//	go test -race -run TestConcurrentSharedRat ./internal/rat
import (
	"fmt"
	"sync"
	"testing"
)

// TestZeroValueEveryMethod proves the zero value behaves as 0 through
// every public method of the API.
func TestZeroValueEveryMethod(t *testing.T) {
	var z Rat // never initialized
	two := FromInt(2)

	cases := []struct {
		name string
		got  any
		want any
	}{
		{"Add", z.Add(two).String(), "2"},
		{"Add-zero-rhs", two.Add(z).String(), "2"},
		{"Sub", z.Sub(two).String(), "-2"},
		{"Sub-zero-rhs", two.Sub(z).String(), "2"},
		{"Mul", z.Mul(two).String(), "0"},
		{"Mul-zero-rhs", two.Mul(z).String(), "0"},
		{"Div", z.Div(two).String(), "0"},
		{"Neg", z.Neg().String(), "0"},
		{"Abs", z.Abs().String(), "0"},
		{"MulInt", z.MulInt(7).String(), "0"},
		{"Cmp", z.Cmp(Zero), 0},
		{"Cmp-vs-one", z.Cmp(One), -1},
		{"Less", z.Less(One), true},
		{"LessEq", z.LessEq(Zero), true},
		{"Greater", z.Greater(One), false},
		{"GreaterEq", z.GreaterEq(Zero), true},
		{"Equal", z.Equal(Zero), true},
		{"Sign", z.Sign(), 0},
		{"IsInt", z.IsInt(), true},
		{"Num", z.Num(), int64(0)},
		{"Den", z.Den(), int64(1)},
		{"Float64", z.Float64(), 0.0},
		{"Ceil", z.Ceil(), int64(0)},
		{"Floor", z.Floor(), int64(0)},
		{"Min", Min(z, One).String(), "0"},
		{"Max", Max(z, One).String(), "1"},
		{"Sum", Sum(z, z, One).String(), "1"},
		{"String", z.String(), "0"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("zero value %s = %v, want %v", c.name, c.got, c.want)
		}
	}

	// Div and Inv by/of the zero value must panic like division by zero.
	for name, f := range map[string]func(){
		"Div-by-zero": func() { One.Div(z) },
		"Inv":         func() { z.Inv() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on zero value did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestConcurrentSharedRat shares single Rat values — one per
// representation, plus the uninitialized zero value — across goroutines
// that hammer every read path concurrently. Run with -race; immutability
// means no synchronization is required.
func TestConcurrentSharedRat(t *testing.T) {
	shared := []Rat{
		{},                                  // zero value
		New(3, 7),                           // small form
		MustParse("36893488147419103232/3"), // 2^65/3: big form
	}
	for i, x := range shared {
		if (x.br != nil) != (i == 2) {
			t.Fatalf("test setup: value %d in unexpected representation", i)
		}
	}

	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			y := New(int64(g)+1, 3)
			for i := 0; i < iters; i++ {
				for _, x := range shared {
					_ = x.Add(y)
					_ = x.Sub(y)
					_ = x.Mul(y)
					_ = x.Div(y)
					_ = x.Neg()
					_ = x.Abs()
					_ = x.Cmp(y)
					_ = x.Sign()
					_ = x.IsInt()
					_ = x.Float64()
					_ = x.String()
					_ = Min(x, y)
					_ = Max(x, y)
					_ = Sum(x, y, x)
				}
			}
		}(g)
	}
	wg.Wait()

	// The shared values must be unchanged afterwards.
	for i, want := range []string{"0", "3/7", "36893488147419103232/3"} {
		if got := shared[i].String(); got != want {
			t.Errorf("shared value %d mutated: %s, want %s", i, got, want)
		}
	}
}

// TestRepresentationTransitions documents the promote/demote contract at
// the API level: results that fit int64 are always small, results that do
// not are big, independent of operand representations.
func TestRepresentationTransitions(t *testing.T) {
	big62 := FromInt(1 << 62)
	promoted := big62.Add(big62) // 2^63 overflows int64
	if promoted.br == nil {
		t.Fatalf("2^62 + 2^62 should promote to big form")
	}
	demoted := promoted.Sub(big62) // back to 2^62
	if demoted.br != nil {
		t.Fatalf("2^63 − 2^62 should demote to small form, got %v", demoted)
	}
	if !demoted.Equal(big62) {
		t.Fatalf("2^63 − 2^62 = %v, want %v", demoted, big62)
	}
	for _, s := range []string{"1/3", "-9223372036854775807", "9223372036854775807"} {
		if r := MustParse(s); r.br != nil {
			t.Errorf("Parse(%q) should demote to small form", s)
		}
	}
	var _ fmt.Stringer = promoted // Rat must satisfy fmt.Stringer in both forms
}
