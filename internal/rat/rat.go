// Package rat provides exact rational arithmetic with value semantics.
//
// The ABC model's synchrony parameter Ξ is a rational number (Definition 4 of
// the paper), and the normalized delay assignment of Theorem 7 must satisfy
// strict rational inequalities 1 < τ(e) < Ξ. Floating point cannot represent
// these constraints exactly, so all model-level arithmetic in this repository
// goes through this package. Rat wraps math/big.Rat behind an immutable value
// API: every operation returns a fresh value and never mutates its operands,
// which makes Rat safe to share across goroutines and store in maps.
package rat

import (
	"fmt"
	"math/big"
)

// Rat is an immutable arbitrary-precision rational number.
// The zero value is 0/1 and is ready to use.
type Rat struct {
	// br is nil for the zero value; all accessors treat nil as 0.
	br *big.Rat
}

// Zero is the rational number 0.
var Zero = Rat{}

// One is the rational number 1.
var One = FromInt(1)

// New returns the rational num/den. It panics if den == 0.
func New(num, den int64) Rat {
	if den == 0 {
		panic("rat: zero denominator")
	}
	return Rat{br: big.NewRat(num, den)}
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat {
	return Rat{br: big.NewRat(n, 1)}
}

// FromBig returns a Rat copying the given big.Rat. A nil argument yields 0.
func FromBig(r *big.Rat) Rat {
	if r == nil {
		return Rat{}
	}
	return Rat{br: new(big.Rat).Set(r)}
}

// FromFloat returns the exact rational value of f.
// It panics if f is NaN or infinite.
func FromFloat(f float64) Rat {
	br := new(big.Rat).SetFloat64(f)
	if br == nil {
		panic(fmt.Sprintf("rat: cannot represent %v", f))
	}
	return Rat{br: br}
}

// Parse parses a string in fraction ("3/2") or decimal ("1.5") form.
func Parse(s string) (Rat, error) {
	br, ok := new(big.Rat).SetString(s)
	if !ok {
		return Rat{}, fmt.Errorf("rat: cannot parse %q", s)
	}
	return Rat{br: br}, nil
}

// MustParse is Parse, panicking on error. Intended for constants in tests
// and examples.
func MustParse(s string) Rat {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

// big returns the underlying big.Rat, treating the zero value as 0.
// Callers must not mutate the result.
func (x Rat) big() *big.Rat {
	if x.br == nil {
		return new(big.Rat)
	}
	return x.br
}

// Add returns x + y.
func (x Rat) Add(y Rat) Rat { return Rat{br: new(big.Rat).Add(x.big(), y.big())} }

// Sub returns x - y.
func (x Rat) Sub(y Rat) Rat { return Rat{br: new(big.Rat).Sub(x.big(), y.big())} }

// Mul returns x * y.
func (x Rat) Mul(y Rat) Rat { return Rat{br: new(big.Rat).Mul(x.big(), y.big())} }

// Div returns x / y. It panics if y is zero.
func (x Rat) Div(y Rat) Rat {
	if y.Sign() == 0 {
		panic("rat: division by zero")
	}
	return Rat{br: new(big.Rat).Quo(x.big(), y.big())}
}

// Neg returns -x.
func (x Rat) Neg() Rat { return Rat{br: new(big.Rat).Neg(x.big())} }

// Inv returns 1/x. It panics if x is zero.
func (x Rat) Inv() Rat {
	if x.Sign() == 0 {
		panic("rat: inverse of zero")
	}
	return Rat{br: new(big.Rat).Inv(x.big())}
}

// Abs returns |x|.
func (x Rat) Abs() Rat { return Rat{br: new(big.Rat).Abs(x.big())} }

// MulInt returns x * n.
func (x Rat) MulInt(n int64) Rat { return x.Mul(FromInt(n)) }

// Cmp compares x and y and returns -1, 0, or +1.
func (x Rat) Cmp(y Rat) int { return x.big().Cmp(y.big()) }

// Less reports whether x < y.
func (x Rat) Less(y Rat) bool { return x.Cmp(y) < 0 }

// LessEq reports whether x <= y.
func (x Rat) LessEq(y Rat) bool { return x.Cmp(y) <= 0 }

// Greater reports whether x > y.
func (x Rat) Greater(y Rat) bool { return x.Cmp(y) > 0 }

// GreaterEq reports whether x >= y.
func (x Rat) GreaterEq(y Rat) bool { return x.Cmp(y) >= 0 }

// Equal reports whether x == y.
func (x Rat) Equal(y Rat) bool { return x.Cmp(y) == 0 }

// Sign returns -1, 0, or +1 according to the sign of x.
func (x Rat) Sign() int { return x.big().Sign() }

// IsInt reports whether x is an integer.
func (x Rat) IsInt() bool { return x.big().IsInt() }

// Num returns the numerator of x in lowest terms.
// It panics if the numerator does not fit in an int64.
func (x Rat) Num() int64 {
	n := x.big().Num()
	if !n.IsInt64() {
		panic("rat: numerator overflows int64")
	}
	return n.Int64()
}

// Den returns the denominator of x in lowest terms (always positive).
// It panics if the denominator does not fit in an int64.
func (x Rat) Den() int64 {
	d := x.big().Denom()
	if !d.IsInt64() {
		panic("rat: denominator overflows int64")
	}
	return d.Int64()
}

// Float64 returns the nearest float64 value to x.
func (x Rat) Float64() float64 {
	f, _ := x.big().Float64()
	return f
}

// Ceil returns the smallest integer >= x, as an int64.
func (x Rat) Ceil() int64 {
	num := x.big().Num()
	den := x.big().Denom()
	q, m := new(big.Int).QuoRem(num, den, new(big.Int))
	if m.Sign() > 0 {
		q.Add(q, big.NewInt(1))
	}
	if !q.IsInt64() {
		panic("rat: ceil overflows int64")
	}
	return q.Int64()
}

// Floor returns the largest integer <= x, as an int64.
func (x Rat) Floor() int64 {
	num := x.big().Num()
	den := x.big().Denom()
	q, m := new(big.Int).QuoRem(num, den, new(big.Int))
	if m.Sign() < 0 {
		q.Sub(q, big.NewInt(1))
	}
	if !q.IsInt64() {
		panic("rat: floor overflows int64")
	}
	return q.Int64()
}

// Min returns the smaller of x and y.
func Min(x, y Rat) Rat {
	if x.Cmp(y) <= 0 {
		return x
	}
	return y
}

// Max returns the larger of x and y.
func Max(x, y Rat) Rat {
	if x.Cmp(y) >= 0 {
		return x
	}
	return y
}

// Sum returns the sum of all values, or 0 for an empty slice.
func Sum(xs ...Rat) Rat {
	acc := new(big.Rat)
	for _, x := range xs {
		acc.Add(acc, x.big())
	}
	return Rat{br: acc}
}

// String renders x as "n" for integers and "n/d" otherwise.
func (x Rat) String() string {
	if x.IsInt() {
		return x.big().Num().String()
	}
	return x.big().RatString()
}
