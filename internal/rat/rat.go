// Package rat provides exact rational arithmetic with value semantics.
//
// The ABC model's synchrony parameter Ξ is a rational number (Definition 4 of
// the paper), and the normalized delay assignment of Theorem 7 must satisfy
// strict rational inequalities 1 < τ(e) < Ξ. Floating point cannot represent
// these constraints exactly, so all model-level arithmetic in this repository
// goes through this package.
//
// Rat is a two-representation value type. The fast path stores the value
// inline as a reduced int64 numerator/denominator pair and performs
// arithmetic with math/bits overflow detection, allocating nothing. Only
// when a result cannot be represented exactly with int64 words does a value
// promote to an arbitrary-precision *big.Rat; big results that fit int64
// again are demoted eagerly, so promotion is confined to genuinely large
// values. Both representations are exact — promotion never rounds — and the
// differential tests in this package check every operation against a pure
// big.Rat oracle, including inputs straddling the int64 overflow boundary.
//
// Every operation returns a fresh value and never mutates its operands,
// which makes Rat safe to share across goroutines and store in maps.
package rat

import (
	"fmt"
	"math"
	"math/big"
	"math/bits"
	"strconv"
)

// Rat is an immutable exact rational number.
// The zero value is 0/1 and is ready to use.
//
// Invariants: when br == nil the value is num/den in lowest terms with
// 0 < den <= MaxInt64 and |num| <= MaxInt64 (MinInt64 never appears, so
// negation cannot overflow), except that the zero value has den == 0 and is
// read as 0/1. When br != nil the value is *br, num and den are 0, and the
// value does not fit the small form (demotion is eager); br is never
// mutated after creation.
type Rat struct {
	num, den int64
	br       *big.Rat
}

// Zero is the rational number 0.
var Zero = Rat{}

// One is the rational number 1.
var One = FromInt(1)

// abs64 returns |n| as a uint64, correct for MinInt64.
func abs64(n int64) uint64 {
	if n < 0 {
		return -uint64(n)
	}
	return uint64(n)
}

// gcd returns the greatest common divisor of a and b by the binary
// algorithm; gcd(a, 0) = a.
func gcd(a, b uint64) uint64 {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	az := bits.TrailingZeros64(a)
	bz := bits.TrailingZeros64(b)
	a >>= uint(az)
	b >>= uint(bz)
	for a != b {
		if a < b {
			a, b = b, a
		}
		a -= b
		a >>= uint(bits.TrailingZeros64(a))
	}
	k := az
	if bz < k {
		k = bz
	}
	return a << uint(k)
}

// smallFrom builds a small Rat from a sign and reduced magnitudes known to
// fit int64.
func smallFrom(neg bool, num, den uint64) Rat {
	n := int64(num)
	if neg {
		n = -n
	}
	return Rat{num: n, den: int64(den)}
}

// reduceSmall reduces sign+magnitude operands to lowest terms and returns
// the small form, or ok=false when the reduced value does not fit int64.
func reduceSmall(neg bool, num, den uint64) (Rat, bool) {
	if num == 0 {
		return Rat{num: 0, den: 1}, true
	}
	g := gcd(num, den)
	num /= g
	den /= g
	if num > math.MaxInt64 || den > math.MaxInt64 {
		return Rat{}, false
	}
	return smallFrom(neg, num, den), true
}

// parts returns the numerator and (positive) denominator of a small-form
// value, mapping the zero value's den == 0 to 0/1.
func (x Rat) parts() (int64, int64) {
	if x.den == 0 {
		return 0, 1
	}
	return x.num, x.den
}

// toBig returns x as a *big.Rat, using scratch for small values so the
// caller controls allocation. Callers must not mutate the result.
func (x Rat) toBig(scratch *big.Rat) *big.Rat {
	if x.br != nil {
		return x.br
	}
	n, d := x.parts()
	return scratch.SetFrac64(n, d)
}

// demote returns br as a Rat, converting to the small form when the value
// fits int64. br must be freshly allocated and is retained when it does not
// fit.
func demote(br *big.Rat) Rat {
	if n, d := br.Num(), br.Denom(); n.IsInt64() && d.IsInt64() {
		ni, di := n.Int64(), d.Int64()
		if ni != math.MinInt64 { // big.Rat denominators are positive
			return Rat{num: ni, den: di}
		}
	}
	return Rat{br: br}
}

// bigBinOp computes op(x, y) through big.Rat and demotes the result. It is
// the slow path shared by the arithmetic methods.
func bigBinOp(op func(z, x, y *big.Rat) *big.Rat, x, y Rat) Rat {
	var sx, sy big.Rat
	return demote(op(new(big.Rat), x.toBig(&sx), y.toBig(&sy)))
}

// New returns the rational num/den. It panics if den == 0.
func New(num, den int64) Rat {
	if den == 0 {
		panic("rat: zero denominator")
	}
	neg := (num < 0) != (den < 0)
	if r, ok := reduceSmall(neg, abs64(num), abs64(den)); ok {
		return r
	}
	return Rat{br: big.NewRat(num, den)}
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat {
	if n == math.MinInt64 {
		return Rat{br: big.NewRat(n, 1)}
	}
	return Rat{num: n, den: 1}
}

// FromBig returns a Rat copying the given big.Rat. A nil argument yields 0.
func FromBig(r *big.Rat) Rat {
	if r == nil {
		return Rat{}
	}
	return demote(new(big.Rat).Set(r))
}

// FromFloat returns the exact rational value of f.
// It panics if f is NaN or infinite.
func FromFloat(f float64) Rat {
	br := new(big.Rat).SetFloat64(f)
	if br == nil {
		panic(fmt.Sprintf("rat: cannot represent %v", f))
	}
	return demote(br)
}

// Parse parses a string in fraction ("3/2") or decimal ("1.5") form.
func Parse(s string) (Rat, error) {
	br, ok := new(big.Rat).SetString(s)
	if !ok {
		return Rat{}, fmt.Errorf("rat: cannot parse %q", s)
	}
	return demote(br), nil
}

// MustParse is Parse, panicking on error. Intended for constants in tests
// and examples.
func MustParse(s string) Rat {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

// big returns the underlying big.Rat, treating the zero value as 0.
// Callers must not mutate the result.
func (x Rat) big() *big.Rat {
	if x.br != nil {
		return x.br
	}
	n, d := x.parts()
	return new(big.Rat).SetFrac64(n, d)
}

// addSmall computes xn/xd + yn/yd in int64 words. ok is false when any
// intermediate or the reduced result overflows, in which case the caller
// must take the big path. Denominators are positive; numerators exceed
// MinInt64, so negation is safe.
//
// Reduction follows Knuth 4.5.1: with both operands in lowest terms and
// g = gcd(xd, yd), the sum over the common denominator xd·(yd/g) shares
// factors with it only through g, so when g == 1 the result is already
// reduced and otherwise one gcd against g (not the full magnitudes)
// finishes the job.
func addSmall(xn, xd, yn, yd int64) (Rat, bool) {
	bu, du := uint64(xd), uint64(yd)
	g := gcd(bu, du)
	db, da := du, bu // yd/g, xd/g
	if g > 1 {
		db, da = du/g, bu/g
	}
	hi, den := bits.Mul64(bu, db)
	if hi != 0 {
		return Rat{}, false
	}
	h1, m1 := bits.Mul64(abs64(xn), db)
	h2, m2 := bits.Mul64(abs64(yn), da)
	if h1 != 0 || h2 != 0 {
		return Rat{}, false
	}
	neg1, neg2 := xn < 0, yn < 0
	var mag uint64
	var neg bool
	if neg1 == neg2 {
		var carry uint64
		mag, carry = bits.Add64(m1, m2, 0)
		if carry != 0 {
			return Rat{}, false
		}
		neg = neg1
	} else if m1 >= m2 {
		mag, neg = m1-m2, neg1
	} else {
		mag, neg = m2-m1, neg2
	}
	if mag == 0 {
		return Rat{num: 0, den: 1}, true
	}
	if g > 1 {
		if g2 := gcd(mag%g, g); g2 > 1 {
			mag /= g2
			den /= g2
		}
	}
	if mag > math.MaxInt64 || den > math.MaxInt64 {
		return Rat{}, false
	}
	return smallFrom(neg, mag, den), true
}

// mulSmall computes (xn/xd)·(yn/yd) in int64 words, cross-cancelling first
// so that reduced operands yield a reduced product. ok is false on
// overflow.
func mulSmall(xn, xd, yn, yd int64) (Rat, bool) {
	if xn == 0 || yn == 0 {
		return Rat{num: 0, den: 1}, true
	}
	a, b := abs64(xn), uint64(xd)
	c, d := abs64(yn), uint64(yd)
	if g := gcd(a, d); g > 1 {
		a, d = a/g, d/g
	}
	if g := gcd(c, b); g > 1 {
		c, b = c/g, b/g
	}
	hn, num := bits.Mul64(a, c)
	hd, den := bits.Mul64(b, d)
	if hn != 0 || hd != 0 || num > math.MaxInt64 || den > math.MaxInt64 {
		return Rat{}, false
	}
	return smallFrom((xn < 0) != (yn < 0), num, den), true
}

// Add returns x + y.
func (x Rat) Add(y Rat) Rat {
	if x.br == nil && y.br == nil {
		xn, xd := x.parts()
		yn, yd := y.parts()
		if r, ok := addSmall(xn, xd, yn, yd); ok {
			return r
		}
	}
	return bigBinOp((*big.Rat).Add, x, y)
}

// Sub returns x - y.
func (x Rat) Sub(y Rat) Rat {
	if x.br == nil && y.br == nil {
		xn, xd := x.parts()
		yn, yd := y.parts()
		if r, ok := addSmall(xn, xd, -yn, yd); ok {
			return r
		}
	}
	return bigBinOp((*big.Rat).Sub, x, y)
}

// Mul returns x * y.
func (x Rat) Mul(y Rat) Rat {
	if x.br == nil && y.br == nil {
		xn, xd := x.parts()
		yn, yd := y.parts()
		if r, ok := mulSmall(xn, xd, yn, yd); ok {
			return r
		}
	}
	return bigBinOp((*big.Rat).Mul, x, y)
}

// Div returns x / y. It panics if y is zero.
func (x Rat) Div(y Rat) Rat {
	if y.Sign() == 0 {
		panic("rat: division by zero")
	}
	if x.br == nil && y.br == nil {
		xn, xd := x.parts()
		yn, yd := y.parts()
		// x / (yn/yd) = x · (yd/yn); the inverse of a reduced small value
		// is itself small, so mulSmall's cross-cancellation applies as is.
		in, id := yd, yn
		if yn < 0 {
			in, id = -yd, -yn
		}
		if r, ok := mulSmall(xn, xd, in, id); ok {
			return r
		}
	}
	return bigBinOp((*big.Rat).Quo, x, y)
}

// Neg returns -x.
func (x Rat) Neg() Rat {
	if x.br == nil {
		n, d := x.parts()
		return Rat{num: -n, den: d}
	}
	return demote(new(big.Rat).Neg(x.br))
}

// Inv returns 1/x. It panics if x is zero.
func (x Rat) Inv() Rat {
	if x.Sign() == 0 {
		panic("rat: inverse of zero")
	}
	if x.br == nil {
		if x.num < 0 {
			return Rat{num: -x.den, den: -x.num}
		}
		return Rat{num: x.den, den: x.num}
	}
	return demote(new(big.Rat).Inv(x.br))
}

// Abs returns |x|.
func (x Rat) Abs() Rat {
	if x.br == nil {
		n, d := x.parts()
		if n < 0 {
			n = -n
		}
		return Rat{num: n, den: d}
	}
	return demote(new(big.Rat).Abs(x.br))
}

// MulInt returns x * n.
func (x Rat) MulInt(n int64) Rat { return x.Mul(FromInt(n)) }

// Cmp compares x and y and returns -1, 0, or +1.
func (x Rat) Cmp(y Rat) int {
	if x.br == nil && y.br == nil {
		xn, xd := x.parts()
		yn, yd := y.parts()
		if xn == 0 || yn == 0 || (xn < 0) != (yn < 0) {
			// Signs differ (or one side is zero): the sign ordering decides.
			sx, sy := sgn(xn), sgn(yn)
			switch {
			case sx < sy:
				return -1
			case sx > sy:
				return 1
			}
			return 0
		}
		// Same nonzero sign: compare |xn|·yd against |yn|·xd in 128 bits
		// (denominators are positive), flipping for negatives.
		h1, l1 := bits.Mul64(abs64(xn), uint64(yd))
		h2, l2 := bits.Mul64(abs64(yn), uint64(xd))
		var r int
		switch {
		case h1 != h2:
			r = 1
			if h1 < h2 {
				r = -1
			}
		case l1 != l2:
			r = 1
			if l1 < l2 {
				r = -1
			}
		}
		if xn < 0 {
			r = -r
		}
		return r
	}
	var sx, sy big.Rat
	return x.toBig(&sx).Cmp(y.toBig(&sy))
}

func sgn(n int64) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}

// Less reports whether x < y.
func (x Rat) Less(y Rat) bool { return x.Cmp(y) < 0 }

// LessEq reports whether x <= y.
func (x Rat) LessEq(y Rat) bool { return x.Cmp(y) <= 0 }

// Greater reports whether x > y.
func (x Rat) Greater(y Rat) bool { return x.Cmp(y) > 0 }

// GreaterEq reports whether x >= y.
func (x Rat) GreaterEq(y Rat) bool { return x.Cmp(y) >= 0 }

// Equal reports whether x == y.
func (x Rat) Equal(y Rat) bool { return x.Cmp(y) == 0 }

// Sign returns -1, 0, or +1 according to the sign of x.
func (x Rat) Sign() int {
	if x.br == nil {
		return sgn(x.num)
	}
	return x.br.Sign()
}

// IsInt reports whether x is an integer.
func (x Rat) IsInt() bool {
	if x.br == nil {
		return x.den <= 1 // den == 0 is the zero value
	}
	return x.br.IsInt()
}

// Num returns the numerator of x in lowest terms.
// It panics if the numerator does not fit in an int64.
func (x Rat) Num() int64 {
	if x.br == nil {
		return x.num
	}
	n := x.br.Num()
	if !n.IsInt64() {
		panic("rat: numerator overflows int64")
	}
	return n.Int64()
}

// Den returns the denominator of x in lowest terms (always positive).
// It panics if the denominator does not fit in an int64.
func (x Rat) Den() int64 {
	if x.br == nil {
		_, d := x.parts()
		return d
	}
	d := x.br.Denom()
	if !d.IsInt64() {
		panic("rat: denominator overflows int64")
	}
	return d.Int64()
}

// Inline returns the numerator and positive denominator of x in lowest
// terms when the value is held in the inline int64 fast path, with
// ok = false for promoted (big.Rat-backed) values. Unlike Num/Den it
// never panics and never allocates, which makes it the right accessor
// for hashing hot paths that fold rationals into a running digest and
// fall back to String() only for promoted values.
func (x Rat) Inline() (num, den int64, ok bool) {
	if x.br != nil {
		return 0, 0, false
	}
	n, d := x.parts()
	return n, d, true
}

// Float64 returns the nearest float64 value to x.
func (x Rat) Float64() float64 {
	if x.br == nil {
		n, d := x.parts()
		// Both operands exact in float64 ⇒ IEEE division rounds the true
		// quotient correctly, matching big.Rat.Float64.
		if abs64(n) <= 1<<53 && uint64(d) <= 1<<53 {
			return float64(n) / float64(d)
		}
	}
	var s big.Rat
	f, _ := x.toBig(&s).Float64()
	return f
}

// Ceil returns the smallest integer >= x, as an int64.
func (x Rat) Ceil() int64 {
	if x.br == nil {
		n, d := x.parts()
		q := n / d
		if n%d > 0 {
			q++
		}
		return q
	}
	num, den := x.br.Num(), x.br.Denom()
	q, m := new(big.Int).QuoRem(num, den, new(big.Int))
	if m.Sign() > 0 {
		q.Add(q, big.NewInt(1))
	}
	if !q.IsInt64() {
		panic("rat: ceil overflows int64")
	}
	return q.Int64()
}

// Floor returns the largest integer <= x, as an int64.
func (x Rat) Floor() int64 {
	if x.br == nil {
		n, d := x.parts()
		q := n / d
		if n%d < 0 {
			q--
		}
		return q
	}
	num, den := x.br.Num(), x.br.Denom()
	q, m := new(big.Int).QuoRem(num, den, new(big.Int))
	if m.Sign() < 0 {
		q.Sub(q, big.NewInt(1))
	}
	if !q.IsInt64() {
		panic("rat: floor overflows int64")
	}
	return q.Int64()
}

// Min returns the smaller of x and y.
func Min(x, y Rat) Rat {
	if x.Cmp(y) <= 0 {
		return x
	}
	return y
}

// Max returns the larger of x and y.
func Max(x, y Rat) Rat {
	if x.Cmp(y) >= 0 {
		return x
	}
	return y
}

// Sum returns the sum of all values, or 0 for an empty slice.
func Sum(xs ...Rat) Rat {
	acc := Rat{num: 0, den: 1}
	for _, x := range xs {
		acc = acc.Add(x)
	}
	return acc
}

// String renders x as "n" for integers and "n/d" otherwise.
func (x Rat) String() string {
	if x.br == nil {
		n, d := x.parts()
		if d == 1 {
			return strconv.FormatInt(n, 10)
		}
		return strconv.FormatInt(n, 10) + "/" + strconv.FormatInt(d, 10)
	}
	if x.br.IsInt() {
		return x.br.Num().String()
	}
	return x.br.RatString()
}
