package rat

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var z Rat
	if z.Sign() != 0 {
		t.Errorf("zero value Sign() = %d, want 0", z.Sign())
	}
	if got := z.Add(One); !got.Equal(One) {
		t.Errorf("0 + 1 = %v, want 1", got)
	}
	if got := z.String(); got != "0" {
		t.Errorf("zero String() = %q, want \"0\"", got)
	}
	if !z.Equal(Zero) {
		t.Errorf("zero value != Zero")
	}
}

func TestNew(t *testing.T) {
	tests := []struct {
		num, den int64
		want     string
	}{
		{1, 2, "1/2"},
		{2, 4, "1/2"},
		{-3, 2, "-3/2"},
		{3, -2, "-3/2"},
		{0, 5, "0"},
		{7, 1, "7"},
	}
	for _, tt := range tests {
		if got := New(tt.num, tt.den).String(); got != tt.want {
			t.Errorf("New(%d, %d) = %q, want %q", tt.num, tt.den, got, tt.want)
		}
	}
}

func TestNewPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(1, 0) did not panic")
		}
	}()
	New(1, 0)
}

func TestArithmetic(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)

	tests := []struct {
		name string
		got  Rat
		want Rat
	}{
		{"add", half.Add(third), New(5, 6)},
		{"sub", half.Sub(third), New(1, 6)},
		{"mul", half.Mul(third), New(1, 6)},
		{"div", half.Div(third), New(3, 2)},
		{"neg", half.Neg(), New(-1, 2)},
		{"inv", third.Inv(), FromInt(3)},
		{"abs", New(-7, 3).Abs(), New(7, 3)},
		{"mulint", third.MulInt(6), FromInt(2)},
	}
	for _, tt := range tests {
		if !tt.got.Equal(tt.want) {
			t.Errorf("%s: got %v, want %v", tt.name, tt.got, tt.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	a, b := New(1, 3), New(1, 2)
	if !a.Less(b) || a.Greater(b) || a.Equal(b) {
		t.Errorf("ordering of 1/3 vs 1/2 wrong")
	}
	if !a.LessEq(a) || !a.GreaterEq(a) {
		t.Errorf("reflexive comparisons wrong")
	}
	if Min(a, b) != a || Max(a, b) != b {
		t.Errorf("Min/Max wrong")
	}
}

func TestCeilFloor(t *testing.T) {
	tests := []struct {
		x           Rat
		ceil, floor int64
	}{
		{New(3, 2), 2, 1},
		{New(-3, 2), -1, -2},
		{FromInt(4), 4, 4},
		{Zero, 0, 0},
		{New(7, 3), 3, 2},
		{New(-7, 3), -2, -3},
	}
	for _, tt := range tests {
		if got := tt.x.Ceil(); got != tt.ceil {
			t.Errorf("Ceil(%v) = %d, want %d", tt.x, got, tt.ceil)
		}
		if got := tt.x.Floor(); got != tt.floor {
			t.Errorf("Floor(%v) = %d, want %d", tt.x, got, tt.floor)
		}
	}
}

func TestParse(t *testing.T) {
	tests := []struct {
		in   string
		want Rat
		ok   bool
	}{
		{"3/2", New(3, 2), true},
		{"1.5", New(3, 2), true},
		{"-2", FromInt(-2), true},
		{"abc", Zero, false},
		{"", Zero, false},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if (err == nil) != tt.ok {
			t.Errorf("Parse(%q) error = %v, want ok=%v", tt.in, err, tt.ok)
			continue
		}
		if err == nil && !got.Equal(tt.want) {
			t.Errorf("Parse(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse(\"x\") did not panic")
		}
	}()
	MustParse("x")
}

func TestNumDen(t *testing.T) {
	x := New(6, -4)
	if x.Num() != -3 || x.Den() != 2 {
		t.Errorf("Num/Den of 6/-4 = %d/%d, want -3/2", x.Num(), x.Den())
	}
}

func TestFromBig(t *testing.T) {
	src := big.NewRat(3, 7)
	x := FromBig(src)
	src.SetInt64(99) // mutating the source must not affect x
	if !x.Equal(New(3, 7)) {
		t.Errorf("FromBig aliased its argument")
	}
	if !FromBig(nil).Equal(Zero) {
		t.Errorf("FromBig(nil) != 0")
	}
}

func TestFromFloat(t *testing.T) {
	if got := FromFloat(0.5); !got.Equal(New(1, 2)) {
		t.Errorf("FromFloat(0.5) = %v, want 1/2", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum(); !got.Equal(Zero) {
		t.Errorf("Sum() = %v, want 0", got)
	}
	if got := Sum(One, New(1, 2), New(1, 2)); !got.Equal(FromInt(2)) {
		t.Errorf("Sum(1, 1/2, 1/2) = %v, want 2", got)
	}
}

// Property: immutability. Operations never change their operands.
func TestImmutability(t *testing.T) {
	f := func(an, bn int64) bool {
		a, b := New(an, 7), New(bn, 5)
		ac, bc := New(an, 7), New(bn, 5)
		_ = a.Add(b)
		_ = a.Sub(b)
		_ = a.Mul(b)
		_ = a.Neg()
		return a.Equal(ac) && b.Equal(bc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: field axioms on a sample of rationals.
func TestFieldProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	mk := func(n int64, d int64) Rat {
		if d == 0 {
			d = 1
		}
		return New(n%1000, d%1000+1001) // keep denominators positive and small
	}
	commutative := func(an, ad, bn, bd int64) bool {
		a, b := mk(an, ad), mk(bn, bd)
		return a.Add(b).Equal(b.Add(a)) && a.Mul(b).Equal(b.Mul(a))
	}
	if err := quick.Check(commutative, cfg); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	distributive := func(an, ad, bn, bd, cn, cd int64) bool {
		a, b, c := mk(an, ad), mk(bn, bd), mk(cn, cd)
		return a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c)))
	}
	if err := quick.Check(distributive, cfg); err != nil {
		t.Errorf("distributivity: %v", err)
	}
	addInverse := func(an, ad int64) bool {
		a := mk(an, ad)
		return a.Add(a.Neg()).Sign() == 0
	}
	if err := quick.Check(addInverse, cfg); err != nil {
		t.Errorf("additive inverse: %v", err)
	}
}

// Property: Ceil/Floor bracket the value.
func TestCeilFloorBracket(t *testing.T) {
	f := func(n int64, d int64) bool {
		if d == 0 {
			d = 1
		}
		x := New(n%100000, d%100000+100001)
		c, fl := FromInt(x.Ceil()), FromInt(x.Floor())
		return fl.LessEq(x) && x.LessEq(c) && c.Sub(fl).LessEq(One)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
