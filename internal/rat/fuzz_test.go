package rat

// Fuzz targets cross-checking the two-representation Rat against the pure
// big.Rat oracle on fuzzer-chosen inputs. The seed corpus pins the int64
// overflow boundary from both sides (±2^62, MaxInt64, MinInt64, coprime
// near-overflow pairs) so even short fuzz runs exercise promotion and
// demotion. Run with
//
//	go test -fuzz=FuzzArith -fuzztime=30s ./internal/rat
//	go test -fuzz=FuzzParse -fuzztime=30s ./internal/rat
import (
	"math"
	"math/big"
	"testing"
)

// fuzzCheckRep is checkRep for fuzz targets (testing.F shares t.Helper
// semantics through the inner *testing.T).
func fuzzAgree(t *testing.T, what string, x Rat, oracle *big.Rat) {
	t.Helper()
	if x.br == nil {
		n, d := x.parts()
		if d <= 0 || n == math.MinInt64 || (n != 0 && gcd(abs64(n), uint64(d)) != 1) {
			t.Fatalf("%s: invalid small form %d/%d", what, n, d)
		}
	} else if n, d := x.br.Num(), x.br.Denom(); n.IsInt64() && d.IsInt64() && n.Int64() != math.MinInt64 {
		t.Fatalf("%s: missed demotion of %s", what, x.br.RatString())
	}
	if x.big().Cmp(oracle) != 0 {
		t.Fatalf("%s: fast path %s, oracle %s", what, x.big().RatString(), oracle.RatString())
	}
}

// FuzzArith drives the four binary operations and the comparison through
// two fuzzer-chosen fractions and requires bit-exact oracle agreement.
func FuzzArith(f *testing.F) {
	seeds := [][4]int64{
		{1, 2, 1, 3},
		{1 << 62, 1, 1 << 62, 1},       // Add overflows into big
		{-(1 << 62), 1, -(1 << 62), 1}, // ... in the negative direction
		{(1 << 62) - 1, (1 << 61) - 1, (1 << 61) - 1, 1 << 62}, // coprime near-overflow pair
		{math.MaxInt64, math.MaxInt64 - 1, math.MaxInt64 - 1, math.MaxInt64},
		{math.MinInt64, 1, 1, math.MaxInt64},
		{3037000499, 3037000500, 3037000500, 3037000499}, // √MaxInt64 straddle
		{0, 1, 0, -1},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2], s[3])
	}
	f.Fuzz(func(t *testing.T, an, ad, bn, bd int64) {
		if ad == 0 || bd == 0 {
			return
		}
		a, b := New(an, ad), New(bn, bd)
		ao, bo := big.NewRat(an, ad), big.NewRat(bn, bd)
		fuzzAgree(t, "New(a)", a, ao)
		fuzzAgree(t, "New(b)", b, bo)
		fuzzAgree(t, "Add", a.Add(b), new(big.Rat).Add(ao, bo))
		fuzzAgree(t, "Sub", a.Sub(b), new(big.Rat).Sub(ao, bo))
		fuzzAgree(t, "Mul", a.Mul(b), new(big.Rat).Mul(ao, bo))
		if bo.Sign() != 0 {
			fuzzAgree(t, "Div", a.Div(b), new(big.Rat).Quo(ao, bo))
		}
		if got, want := a.Cmp(b), ao.Cmp(bo); got != want {
			t.Fatalf("Cmp = %d, oracle %d", got, want)
		}
		if got, want := a.String(), ao.RatString(); got != want {
			t.Fatalf("String = %q, oracle %q", got, want)
		}
	})
}

// FuzzParse cross-checks Parse against big.Rat.SetString on arbitrary
// strings: both must accept or both reject, and accepted values must agree.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"3/2", "-3/2", "1.5", "-0.125", "0", "7", "",
		"abc", "1/0", "9223372036854775807", "-9223372036854775808",
		"4611686018427387904/4611686018427387903", // 2^62 over 2^62−1
		"18446744073709551616/3",                  // 2^64 numerator: stays big
		"2305843009213693951/9223372036854775807", // Mersenne 2^61−1 over MaxInt64
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got, err := Parse(s)
		oracle, ok := new(big.Rat).SetString(s)
		if (err == nil) != ok {
			t.Fatalf("Parse(%q) err=%v, oracle ok=%v", s, err, ok)
		}
		if err != nil {
			return
		}
		fuzzAgree(t, "Parse", got, oracle)
		// The round trip through String must be lossless.
		back, err := Parse(got.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)): %v", s, err)
		}
		fuzzAgree(t, "roundtrip", back, oracle)
	})
}
