package rat

// Differential test harness: every public operation is executed
// simultaneously on the two-representation Rat and on a pure big.Rat
// oracle, and the results must agree bit-exactly. Operand generation mixes
// uniformly random values, values pinned to the int64 overflow boundary
// (±2^62, ±(2^63−1), coprime near-overflow pairs), already-promoted big
// values, and values derived by chains of prior operations — so the suite
// exercises both directions across the small↔big boundary: small results
// that must promote, and big intermediates that must demote.
//
// Each TestDifferential* property checks at least 10,000 operation pairs
// (opsPerProperty); run them with
//
//	go test -run=TestDifferential ./internal/rat
import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// opsPerProperty is the minimum number of oracle-checked operation pairs
// per differential property.
const opsPerProperty = 12000

// checkRep fails the test when x violates the representation invariant:
// small values are in lowest terms with positive int64 denominator and a
// numerator above MinInt64; big values must not fit the small form.
func checkRep(t *testing.T, x Rat) {
	t.Helper()
	if x.br == nil {
		n, d := x.parts()
		if d <= 0 {
			t.Fatalf("small form with non-positive denominator: %d/%d", n, d)
		}
		if n == math.MinInt64 {
			t.Fatalf("small form holds MinInt64 numerator")
		}
		if n == 0 {
			if x.num != 0 {
				t.Fatalf("inconsistent zero: num=%d den=%d", x.num, x.den)
			}
			return
		}
		if g := gcd(abs64(n), uint64(d)); g != 1 {
			t.Fatalf("small form not reduced: %d/%d (gcd %d)", n, d, g)
		}
		return
	}
	if x.num != 0 || x.den != 0 {
		t.Fatalf("big form with stale small fields: %d/%d", x.num, x.den)
	}
	n, d := x.br.Num(), x.br.Denom()
	if n.IsInt64() && d.IsInt64() && n.Int64() != math.MinInt64 {
		t.Fatalf("big form holds small-representable value %s (missed demotion)", x.br.RatString())
	}
}

// agree fails the test unless x equals the oracle value exactly.
func agree(t *testing.T, what string, x Rat, oracle *big.Rat) {
	t.Helper()
	checkRep(t, x)
	if x.big().Cmp(oracle) != 0 {
		t.Fatalf("%s: fast path %s, oracle %s", what, x.big().RatString(), oracle.RatString())
	}
}

// boundary holds int64 values engineered to straddle the overflow
// boundary: powers of two around 2^62, the extremes, values near √MaxInt64
// (whose pairwise products land on either side of 2^63), and the Mersenne
// prime 2^61−1 for coprime near-overflow pairs.
var boundary = []int64{
	0, 1, -1, 2, -2, 3, 6, 7, 10,
	1 << 31, (1 << 31) - 1, -(1 << 31), (1 << 32) + 1,
	3037000499, 3037000500, -3037000499, // ⌊√MaxInt64⌋ and neighbors
	(1 << 61) - 1, -((1 << 61) - 1), // Mersenne prime 2^61−1
	1 << 62, -(1 << 62), (1 << 62) - 1, (1 << 62) + 1,
	math.MaxInt64, math.MaxInt64 - 1, -math.MaxInt64, math.MinInt64,
}

// pair is a Rat and its independently maintained big.Rat oracle.
type pair struct {
	r Rat
	o *big.Rat
}

// genPair draws one operand. The Rat and the oracle are constructed from
// the same primitive integers through separate code paths, or derived in
// lockstep from previous pairs, so agreement is never assumed — only
// checked.
func genPair(t *testing.T, rng *rand.Rand) pair {
	t.Helper()
	nonZero := func(n int64) int64 {
		if n == 0 {
			return 1
		}
		return n
	}
	switch rng.Intn(6) {
	case 0: // small everyday values
		n := rng.Int63n(2001) - 1000
		d := rng.Int63n(1000) + 1
		return pair{New(n, d), big.NewRat(n, d)}
	case 1: // boundary numerator and denominator
		n := boundary[rng.Intn(len(boundary))]
		d := nonZero(boundary[rng.Intn(len(boundary))])
		return pair{New(n, d), big.NewRat(n, d)}
	case 2: // uniform full-range int64 pair
		n := rng.Int63() - rng.Int63()
		d := nonZero(rng.Int63() - rng.Int63())
		return pair{New(n, d), big.NewRat(n, d)}
	case 3: // genuinely big: 128-bit numerator over 64-bit denominator
		hi, lo := rng.Int63(), rng.Int63()
		n := new(big.Int).Lsh(big.NewInt(hi), 64)
		n.Add(n, big.NewInt(lo))
		if rng.Intn(2) == 0 {
			n.Neg(n)
		}
		o := new(big.Rat).SetFrac(n, big.NewInt(nonZero(rng.Int63())))
		return pair{FromBig(o), o}
	case 4: // derived: one arithmetic step over two fresh operands
		a, b := genPair(t, rng), genPair(t, rng)
		switch rng.Intn(3) {
		case 0:
			return pair{a.r.Add(b.r), new(big.Rat).Add(a.o, b.o)}
		case 1:
			return pair{a.r.Sub(b.r), new(big.Rat).Sub(a.o, b.o)}
		default:
			return pair{a.r.Mul(b.r), new(big.Rat).Mul(a.o, b.o)}
		}
	default: // near-overflow coprime fraction around 2^31.5
		n := rng.Int63n(1<<33) + 1<<31
		d := rng.Int63n(1<<33) + 1<<31
		if rng.Intn(2) == 0 {
			n = -n
		}
		return pair{New(n, d), big.NewRat(n, d)}
	}
}

func TestDifferentialAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < opsPerProperty; i++ {
		a, b := genPair(t, rng), genPair(t, rng)
		agree(t, "Add", a.r.Add(b.r), new(big.Rat).Add(a.o, b.o))
	}
}

func TestDifferentialSub(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < opsPerProperty; i++ {
		a, b := genPair(t, rng), genPair(t, rng)
		agree(t, "Sub", a.r.Sub(b.r), new(big.Rat).Sub(a.o, b.o))
	}
}

func TestDifferentialMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < opsPerProperty; i++ {
		a, b := genPair(t, rng), genPair(t, rng)
		agree(t, "Mul", a.r.Mul(b.r), new(big.Rat).Mul(a.o, b.o))
	}
}

func TestDifferentialDiv(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < opsPerProperty; {
		a, b := genPair(t, rng), genPair(t, rng)
		if b.o.Sign() == 0 {
			continue
		}
		agree(t, "Div", a.r.Div(b.r), new(big.Rat).Quo(a.o, b.o))
		i++
	}
}

func TestDifferentialCmp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < opsPerProperty; i++ {
		a, b := genPair(t, rng), genPair(t, rng)
		if got, want := a.r.Cmp(b.r), a.o.Cmp(b.o); got != want {
			t.Fatalf("Cmp(%s, %s) = %d, oracle %d", a.o.RatString(), b.o.RatString(), got, want)
		}
		// The derived predicates must be consistent with Cmp.
		if a.r.Less(b.r) != (a.o.Cmp(b.o) < 0) || a.r.Equal(b.r) != (a.o.Cmp(b.o) == 0) ||
			a.r.Greater(b.r) != (a.o.Cmp(b.o) > 0) || a.r.LessEq(b.r) != (a.o.Cmp(b.o) <= 0) ||
			a.r.GreaterEq(b.r) != (a.o.Cmp(b.o) >= 0) {
			t.Fatalf("comparison predicates disagree with oracle for (%s, %s)", a.o.RatString(), b.o.RatString())
		}
	}
}

func TestDifferentialUnary(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < opsPerProperty; i++ {
		a := genPair(t, rng)
		agree(t, "Neg", a.r.Neg(), new(big.Rat).Neg(a.o))
		agree(t, "Abs", a.r.Abs(), new(big.Rat).Abs(a.o))
		if a.o.Sign() != 0 {
			agree(t, "Inv", a.r.Inv(), new(big.Rat).Inv(a.o))
		}
		if got, want := a.r.Sign(), a.o.Sign(); got != want {
			t.Fatalf("Sign(%s) = %d, oracle %d", a.o.RatString(), got, want)
		}
		if got, want := a.r.IsInt(), a.o.IsInt(); got != want {
			t.Fatalf("IsInt(%s) = %v, oracle %v", a.o.RatString(), got, want)
		}
		n := rng.Int63n(2001) - 1000
		agree(t, "MulInt", a.r.MulInt(n), new(big.Rat).Mul(a.o, big.NewRat(n, 1)))
	}
}

func TestDifferentialMinMaxSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < opsPerProperty; i++ {
		a, b, c := genPair(t, rng), genPair(t, rng), genPair(t, rng)
		oMin, oMax := a.o, a.o
		if b.o.Cmp(oMin) < 0 {
			oMin = b.o
		}
		if b.o.Cmp(oMax) > 0 {
			oMax = b.o
		}
		agree(t, "Min", Min(a.r, b.r), oMin)
		agree(t, "Max", Max(a.r, b.r), oMax)
		oSum := new(big.Rat).Add(a.o, b.o)
		oSum.Add(oSum, c.o)
		agree(t, "Sum", Sum(a.r, b.r, c.r), oSum)
	}
}

// oracleFloorCeil computes ⌊x⌋ and ⌈x⌉ of the oracle as big.Ints.
func oracleFloorCeil(o *big.Rat) (floor, ceil *big.Int) {
	q, m := new(big.Int).QuoRem(o.Num(), o.Denom(), new(big.Int))
	floor = new(big.Int).Set(q)
	ceil = new(big.Int).Set(q)
	if m.Sign() < 0 {
		floor.Sub(floor, big.NewInt(1))
	}
	if m.Sign() > 0 {
		ceil.Add(ceil, big.NewInt(1))
	}
	return floor, ceil
}

func TestDifferentialFloorCeil(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < opsPerProperty; i++ {
		a := genPair(t, rng)
		oFloor, oCeil := oracleFloorCeil(a.o)
		if oFloor.IsInt64() {
			if got := a.r.Floor(); got != oFloor.Int64() {
				t.Fatalf("Floor(%s) = %d, oracle %s", a.o.RatString(), got, oFloor)
			}
		}
		if oCeil.IsInt64() {
			if got := a.r.Ceil(); got != oCeil.Int64() {
				t.Fatalf("Ceil(%s) = %d, oracle %s", a.o.RatString(), got, oCeil)
			}
		}
	}
}

func TestDifferentialStringParse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < opsPerProperty; i++ {
		a := genPair(t, rng)
		want := a.o.RatString()
		if got := a.r.String(); got != want {
			t.Fatalf("String: fast path %q, oracle %q", got, want)
		}
		// Round trip: String → Parse must reproduce the value, and Parse
		// must agree with the oracle's own parser on the same input.
		back, err := Parse(want)
		if err != nil {
			t.Fatalf("Parse(%q): %v", want, err)
		}
		oBack, ok := new(big.Rat).SetString(want)
		if !ok {
			t.Fatalf("oracle cannot parse %q", want)
		}
		agree(t, "Parse", back, oBack)
	}
}

func TestDifferentialFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < opsPerProperty; i++ {
		a := genPair(t, rng)
		want, _ := a.o.Float64()
		if got := a.r.Float64(); got != want {
			t.Fatalf("Float64(%s) = %g, oracle %g", a.o.RatString(), got, want)
		}
	}
}

func TestDifferentialNumDen(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < opsPerProperty; i++ {
		a := genPair(t, rng)
		if a.o.Num().IsInt64() {
			if got := a.r.Num(); got != a.o.Num().Int64() {
				t.Fatalf("Num(%s) = %d, oracle %s", a.o.RatString(), got, a.o.Num())
			}
		}
		if a.o.Denom().IsInt64() {
			if got := a.r.Den(); got != a.o.Denom().Int64() {
				t.Fatalf("Den(%s) = %d, oracle %s", a.o.RatString(), got, a.o.Denom())
			}
		}
	}
}

// TestDifferentialOverflowStraddle aims every operation squarely at the
// int64 overflow boundary: operands are chosen so that exact products and
// sums land just below or just above 2^63, forcing the promotion check to
// decide each time — and follows promoted values with a shrinking step so
// demotion back to the small form is exercised in the same pass.
func TestDifferentialOverflowStraddle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	near := func() int64 {
		// Magnitudes in [2^31, 2^32): pairwise products cover
		// (2^62, 2^64), straddling MaxInt64 from both sides.
		v := rng.Int63n(1<<31) + 1<<31
		if rng.Intn(2) == 0 {
			return -v
		}
		return v
	}
	for i := 0; i < opsPerProperty; i++ {
		a, b := New(near(), rng.Int63n(1<<32)+1), New(near(), rng.Int63n(1<<32)+1)
		ao, bo := big.NewRat(a.Num(), a.Den()), big.NewRat(b.Num(), b.Den())

		prod := a.Mul(b)
		oProd := new(big.Rat).Mul(ao, bo)
		agree(t, "straddle Mul", prod, oProd)

		sum := a.Add(b)
		oSum := new(big.Rat).Add(ao, bo)
		agree(t, "straddle Add", sum, oSum)

		// Shrink the product back below the boundary: a promoted value
		// divided by its own first factor must demote to exactly b.
		if a.Sign() != 0 {
			back := prod.Div(a)
			agree(t, "straddle Div (demotion)", back, new(big.Rat).Quo(oProd, ao))
			if back.br != nil && back.Num() == b.Num() && back.Den() == b.Den() {
				t.Fatalf("straddle: %s stayed promoted though it fits int64", back)
			}
		}
	}
}
