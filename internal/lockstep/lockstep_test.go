package lockstep

import (
	"fmt"
	"testing"

	"repro/internal/causality"
	"repro/internal/clocksync"
	"repro/internal/core"
	"repro/internal/rat"
	"repro/internal/sim"
)

// counterApp broadcasts its round number and records everything it saw.
type counterApp struct {
	self sim.ProcessID
	seen [][]any
}

func (c *counterApp) Init(self sim.ProcessID, n int) any {
	c.self = self
	return fmt.Sprintf("r0 from %d", self)
}

func (c *counterApp) Round(r int, received []any) any {
	cp := make([]any, len(received))
	copy(cp, received)
	c.seen = append(c.seen, cp)
	return fmt.Sprintf("r%d from %d", r, c.self)
}

func runLockstep(t *testing.T, n, f, rounds int, faults map[sim.ProcessID]sim.Fault, seed int64) *sim.Result {
	t.Helper()
	m := core.MustModel(rat.FromInt(2))
	res, err := sim.Run(sim.Config{
		N:         n,
		Spawn:     Spawner(m, n, f, func(sim.ProcessID) App { return &counterApp{} }),
		Faults:    faults,
		Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:      seed,
		Until:     AllReachedRound(rounds, faults),
		MaxEvents: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("truncated before reaching target round")
	}
	return res
}

func TestLockStepFaultFree(t *testing.T) {
	res := runLockstep(t, 4, 1, 6, nil, 1)
	if err := CheckLockStep(res.Procs, nil); err != nil {
		t.Fatal(err)
	}
	// Every process's round r view contains all four round r-1 messages.
	for id, pr := range res.Procs {
		ls := pr.(*Proc)
		for _, rec := range ls.Records() {
			for q, payload := range rec.Received {
				want := fmt.Sprintf("r%d from %d", rec.R-1, q)
				if payload != want {
					t.Fatalf("p%d round %d: received[%d] = %v, want %q", id, rec.R, q, payload, want)
				}
			}
		}
	}
}

func TestLockStepAdmissible(t *testing.T) {
	m := core.MustModel(rat.FromInt(2))
	res := runLockstep(t, 4, 1, 4, nil, 2)
	g := causality.Build(res.Trace, causality.Options{})
	v, err := m.Admissible(g)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admissible {
		t.Fatalf("lock-step execution not admissible: %v", v.Witness)
	}
}

func TestLockStepWithCrash(t *testing.T) {
	faults := map[sim.ProcessID]sim.Fault{3: sim.Crash(8)}
	res := runLockstep(t, 4, 1, 5, faults, 3)
	if err := CheckLockStep(res.Procs, faults); err != nil {
		t.Fatal(err)
	}
	// Uniform lock-step (paper's remark after Theorem 5): the crashed
	// process also obeyed rounds until it stopped.
	if err := CheckUniformLockStep(res.Procs, faults); err != nil {
		t.Fatalf("uniform lock-step: %v", err)
	}
}

func TestLockStepWithByzantine(t *testing.T) {
	for _, tc := range []struct {
		n, f int
		seed int64
	}{{4, 1, 4}, {7, 2, 5}} {
		faults := clocksync.Adversaries(tc.n, tc.f, uint64(tc.seed))
		res := runLockstep(t, tc.n, tc.f, 5, faults, tc.seed)
		if err := CheckLockStep(res.Procs, faults); err != nil {
			t.Fatalf("n=%d f=%d: %v", tc.n, tc.f, err)
		}
	}
}

func TestRoundsProgressTogether(t *testing.T) {
	// Theorem 5 corollary: at every instant, round numbers of correct
	// processes differ by at most 1... they proceed in lock-step, so a
	// process can be at most one start() ahead of the slowest. Verify via
	// per-event round observation (notes carry clocks; rounds = clock/X).
	m := core.MustModel(rat.FromInt(2))
	x := m.PhasesPerRound()
	res := runLockstep(t, 4, 1, 6, nil, 6)
	cur := make([]int, 4)
	for _, ev := range res.Trace.Events {
		if n, ok := ev.Note.(clocksync.Note); ok {
			cur[ev.Proc] = n.Clock / int(x)
			min, max := cur[0], cur[0]
			for _, r := range cur {
				if r < min {
					min = r
				}
				if r > max {
					max = r
				}
			}
			if max-min > 1 {
				t.Fatalf("round spread %d at event %v (rounds %v)", max-min, ev, cur)
			}
		}
	}
}

func TestCheckLockStepDetectsViolation(t *testing.T) {
	// Fabricate a Proc with a hole in its records and verify the monitor
	// reports it.
	m := core.MustModel(rat.FromInt(2))
	p := New(m, 3, 0, &counterApp{})
	p.records = []RoundRecord{{R: 1, Received: []any{"a", nil, "c"}}}
	err := CheckLockStep([]sim.Process{p}, nil)
	if err == nil {
		t.Fatal("monitor accepted missing round message")
	}
}
