// Package lockstep implements Algorithm 2 of the ABC paper: a lock-step
// round simulation layered on the Byzantine clock synchronization of
// Algorithm 1 (internal/clocksync). Clocks are treated as phase counters;
// a round consists of X = ⌈2Ξ⌉ phases, and the round r message of each
// process is piggybacked on its (tick r·X) broadcast — piggybacking is
// essential, since Theorem 5's proof identifies receiving (tick r·X) from q
// with receiving q's round r message.
//
// Theorem 5 (lock-step rounds): every correct process receives the round r
// messages of all correct processes before it starts round r+1. The
// package records what each round computation actually received, so the
// theorem is checked by CheckLockStep against the trace.
package lockstep

import (
	"fmt"

	"repro/internal/clocksync"
	"repro/internal/core"
	"repro/internal/sim"
)

// App is a deterministic round-based application driven by the lock-step
// simulation — the interface a synchronous algorithm (e.g. consensus)
// programs against.
type App interface {
	// Init returns the round 0 message, broadcast at start(0) from the
	// process's wake-up step.
	Init(self sim.ProcessID, n int) any
	// Round executes the round r computation (r >= 1): received holds the
	// round r−1 messages indexed by sender (nil for processes whose
	// message did not arrive — possible only for faulty senders, by
	// Theorem 5). It returns the round r message to broadcast.
	Round(r int, received []any) any
}

// RoundRecord is what one round computation observed, kept for monitors.
type RoundRecord struct {
	R        int
	Received []any
}

// Proc merges Algorithm 2 with an Algorithm 1 core. It implements
// sim.Process.
type Proc struct {
	cs       *clocksync.Proc
	app      App
	boundary func(r int) int64
	self     sim.ProcessID
	n        int
	r        int
	// buf[r][q] is the round r payload received from q (first write wins).
	buf     map[int][]any
	records []RoundRecord
}

// New returns a lock-step process for model m running app, in a system of
// n processes with f Byzantine faults. Round r starts at tick r·X with
// X = ⌈2Ξ⌉.
func New(m core.Model, n, f int, app App) *Proc {
	x := m.PhasesPerRound()
	return NewWithBoundary(n, f, app, func(r int) int64 { return int64(r) * x })
}

// NewWithBoundary is New with a custom round-boundary function: round r
// starts when the clock broadcasts tick boundary(r). boundary must be
// strictly increasing with boundary(0) == 0. The eventual-model variants
// of Section 6 use doubling round durations (internal/variants).
func NewWithBoundary(n, f int, app App, boundary func(r int) int64) *Proc {
	if boundary(0) != 0 {
		panic("lockstep: boundary(0) must be 0")
	}
	p := &Proc{
		cs:       clocksync.New(n, f),
		app:      app,
		boundary: boundary,
		n:        n,
		r:        -1,
		buf:      make(map[int][]any),
	}
	p.cs.SetPiggyback(p.attach, p.onReceive)
	return p
}

// Step implements sim.Process by delegating to the Algorithm 1 core; round
// logic runs inside the tick-broadcast hook.
func (p *Proc) Step(env *sim.Env, msg sim.Message) {
	if _, ok := msg.Payload.(sim.Wakeup); ok {
		p.self = env.Self()
	}
	p.cs.Step(env, msg)
}

// attach is invoked by the clock core just before broadcasting tick j; it
// returns the piggybacked round data, if tick j is a round boundary.
func (p *Proc) attach(env *sim.Env, j int) *clocksync.RoundData {
	// The [once] guard broadcasts each tick exactly once, in order, so the
	// only boundary j can match is the next round's.
	if int64(j) != p.boundary(p.r+1) {
		return nil
	}
	r := p.r + 1
	p.r = r
	var payload any
	if r == 0 {
		payload = p.app.Init(env.Self(), p.n)
	} else {
		received := p.take(r - 1)
		p.records = append(p.records, RoundRecord{R: r, Received: received})
		payload = p.app.Round(r, received)
	}
	return &clocksync.RoundData{R: r, Payload: payload}
}

// onReceive stores piggybacked round data from incoming ticks.
func (p *Proc) onReceive(from sim.ProcessID, rd *clocksync.RoundData) {
	if rd.R < 0 || from < 0 || int(from) >= p.n {
		return
	}
	slot := p.buf[rd.R]
	if slot == nil {
		slot = make([]any, p.n)
		p.buf[rd.R] = slot
	}
	if slot[from] == nil {
		slot[from] = rd.Payload
	}
}

// take removes and returns the buffered round r messages.
func (p *Proc) take(r int) []any {
	received := p.buf[r]
	if received == nil {
		received = make([]any, p.n)
	}
	delete(p.buf, r)
	return received
}

// Round returns the highest round this process has started.
func (p *Proc) Round() int { return p.r }

// Clock exposes the underlying Algorithm 1 clock.
func (p *Proc) Clock() int { return p.cs.Clock() }

// App returns the application state machine.
func (p *Proc) App() App { return p.app }

// Records returns the per-round observations (for Theorem 5 checking).
func (p *Proc) Records() []RoundRecord { return p.records }

// Spawner returns a sim.Config Spawn function; newApp creates each
// process's application instance.
func Spawner(m core.Model, n, f int, newApp func(sim.ProcessID) App) func(sim.ProcessID) sim.Process {
	return func(id sim.ProcessID) sim.Process { return New(m, n, f, newApp(id)) }
}

// AllReachedRound returns an Until predicate stopping the run once every
// correct process has started round r.
func AllReachedRound(r int, faults map[sim.ProcessID]sim.Fault) func([]sim.Process) bool {
	return func(procs []sim.Process) bool {
		for id, pr := range procs {
			if _, bad := faults[sim.ProcessID(id)]; bad {
				continue
			}
			ls, ok := pr.(*Proc)
			if !ok || ls.Round() < r {
				return false
			}
		}
		return true
	}
}

// CheckLockStep verifies Theorem 5 against the final process states: every
// round computation at a correct process received the round message of
// every correct process.
func CheckLockStep(procs []sim.Process, faults map[sim.ProcessID]sim.Fault) error {
	return checkLockStep(procs, faults, false)
}

// CheckUniformLockStep verifies the uniform variant the paper notes after
// Theorem 5: lock-step rounds are also obeyed by faulty processes until
// they first behave erroneously. Crash-faulty processes execute the
// correct algorithm up to their crash, so every round they did start must
// also have seen all correct round messages. Byzantine processes are
// excluded (they need not run the algorithm at all).
func CheckUniformLockStep(procs []sim.Process, faults map[sim.ProcessID]sim.Fault) error {
	return checkLockStep(procs, faults, true)
}

func checkLockStep(procs []sim.Process, faults map[sim.ProcessID]sim.Fault, uniform bool) error {
	for id, pr := range procs {
		if f, bad := faults[sim.ProcessID(id)]; bad {
			if !uniform || f.Byzantine != nil {
				continue
			}
			// Crash-faulty with the correct algorithm: include its
			// pre-crash records in the uniform check.
		}
		ls, ok := pr.(*Proc)
		if !ok {
			return fmt.Errorf("lockstep: process %d is not a lockstep.Proc", id)
		}
		for _, rec := range ls.Records() {
			for q := 0; q < ls.n; q++ {
				if _, bad := faults[sim.ProcessID(q)]; bad {
					continue
				}
				if rec.Received[q] == nil {
					return fmt.Errorf(
						"lockstep: p%d started round %d without the round %d message of correct p%d",
						id, rec.R, rec.R-1, q)
				}
			}
		}
	}
	return nil
}
