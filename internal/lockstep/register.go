package lockstep

import (
	"fmt"

	"repro/internal/clocksync"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// EchoApp is the trivial round application: round 0 carries the process
// ID, round r carries r. It exercises the full lock-step machinery with
// deterministic payloads and is the app behind the lockstep workload,
// cmd/abcsim sweeps, and the experiments.
type EchoApp struct{}

// Init implements App.
func (EchoApp) Init(self sim.ProcessID, n int) any { return int(self) }

// Round implements App.
func (EchoApp) Round(r int, received []any) any { return r }

// The lockstep workload is Algorithm 2 — lock-step rounds over the
// Algorithm 1 clock — run until every correct process starts the target
// round. Its domain verdict is Theorem 5: every round computation of a
// correct process received the previous-round message of every correct
// process.
func init() {
	workload.Register(workload.Source{
		Name: "lockstep",
		Doc:  "lock-step round simulation (Algorithm 2) with the Theorem 5 verdict",
		Params: append([]workload.Param{
			{Name: "n", Kind: workload.Int, Default: "4", Doc: "number of processes (n >= 3f+1)"},
			{Name: "f", Kind: workload.Int, Default: "1", Doc: "Byzantine fault bound"},
			{Name: "xi", Kind: workload.Rational, Default: "2", Doc: "model parameter Ξ (round = ⌈2Ξ⌉ phases)"},
			{Name: "target", Kind: workload.Int, Default: "6", Doc: "round every correct process must start"},
			{Name: "min", Kind: workload.Rational, Default: "1", Doc: "minimum message delay"},
			{Name: "max", Kind: workload.Rational, Default: "3/2", Doc: "maximum message delay"},
			{Name: "adversaries", Kind: workload.Bool, Default: "false", Doc: "run f live Byzantine adversaries"},
			{Name: "advseed", Kind: workload.Int64, Default: "-1", Doc: "adversary seed; -1 derives it from the job seed"},
			{Name: "maxevents", Kind: workload.Int, Default: "300000", Doc: "receive-event budget"},
		}, append(workload.FaultParams(), append(workload.TraceParams(), workload.ShardParams()...)...)...),
		Job:     lockStepJob,
		Verdict: lockStepVerdict,
		// Theorem 5 presupposes a verified-admissible run, and the batch
		// ABC check it gates on needs the complete trace.
		VerdictNeedsTrace: true,
	})
}

func lockStepJob(v workload.Values, seed int64) (runner.Job, error) {
	n, f := v.Int("n"), v.Int("f")
	m, err := core.NewModel(v.Rat("xi"))
	if err != nil {
		return runner.Job{}, err
	}
	if f < 0 || n < 3*f+1 {
		return runner.Job{}, fmt.Errorf("lockstep: need n >= 3f+1, got n=%d f=%d", n, f)
	}
	fseed := v.Int64("faultseed")
	if fseed < 0 {
		fseed = seed
	}
	faults, net, err := workload.SharedOrLegacyFaults(v, n, nil,
		func(i int, id sim.ProcessID, budget int) sim.Process {
			return clocksync.Adversary(i, uint64(fseed), budget)
		},
		v.Bool("adversaries"), "adversaries=true",
		func() map[sim.ProcessID]sim.Fault {
			advseed := v.Int64("advseed")
			if advseed < 0 {
				advseed = seed
			}
			return clocksync.Adversaries(n, f, uint64(advseed))
		})
	if err != nil {
		return runner.Job{}, err
	}
	if len(faults) > f {
		return runner.Job{}, fmt.Errorf("lockstep: fault spec %q injects %d faults, bound is f=%d", v.String("faults"), len(faults), f)
	}
	cfg := sim.Config{
		N:         n,
		Spawn:     Spawner(m, n, f, func(sim.ProcessID) App { return EchoApp{} }),
		Faults:    faults,
		Net:       net,
		Delays:    sim.UniformDelay{Min: v.Rat("min"), Max: v.Rat("max")},
		Seed:      seed,
		Until:     AllReachedRound(v.Int("target"), faults),
		MaxEvents: v.Int("maxevents"),
	}
	return runner.Job{Cfg: &cfg}, nil
}

// lockStepVerdict checks Theorem 5 against the final process states.
// Membership in the fault set is reconstructed from the trace (the
// non-uniform check needs only which processes were faulty), so the
// verdict works on any completed admissible run. Theorem 5 presupposes
// admissibility, so a run without an ABC verdict is skipped.
func lockStepVerdict(v workload.Values, r *runner.JobResult) error {
	if !r.CompletedAdmissible(true) {
		return nil
	}
	// Theorem 5 assumes a reliable network: a dropped round message is a
	// counterexample by construction, not an algorithm bug. Recovered
	// processes need no gate — they are marked faulty for the whole run,
	// so traceFaults already excludes them from the correct set.
	if workload.NetFaulty(v) {
		return nil
	}
	return CheckLockStep(r.Sim.Procs, traceFaults(r.Trace))
}

// traceFaults rebuilds a membership-only fault map from the trace's
// faulty markers.
func traceFaults(t *sim.Trace) map[sim.ProcessID]sim.Fault {
	var faults map[sim.ProcessID]sim.Fault
	for p, bad := range t.Faulty {
		if bad {
			if faults == nil {
				faults = make(map[sim.ProcessID]sim.Fault)
			}
			faults[sim.ProcessID(p)] = sim.Fault{CrashAfter: sim.NeverCrash}
		}
	}
	return faults
}
