package vlsi

import (
	"testing"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/rat"
	"repro/internal/sim"
)

func TestNewChipValidation(t *testing.T) {
	if _, err := NewChip(0, rat.One, rat.FromInt(2)); err == nil {
		t.Error("zero modules accepted")
	}
	if _, err := NewChip(4, rat.FromInt(2), rat.One); err == nil {
		t.Error("inverted range accepted")
	}
	c, err := NewChip(4, rat.One, rat.New(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if c.Modules() != 4 {
		t.Errorf("Modules = %d", c.Modules())
	}
	if err := c.SetWire(0, 1, rat.FromInt(2), rat.One); err == nil {
		t.Error("inverted wire range accepted")
	}
}

func TestNames(t *testing.T) {
	c, _ := NewChip(2, rat.One, rat.One)
	if c.Name(0) != "M0" {
		t.Errorf("default name %q", c.Name(0))
	}
	c.SetName(0, "tickgen")
	if c.Name(0) != "tickgen" {
		t.Error("SetName failed")
	}
}

func TestWireLookup(t *testing.T) {
	c, _ := NewChip(3, rat.One, rat.FromInt(2))
	if err := c.SetWire(0, 1, rat.FromInt(3), rat.FromInt(4)); err != nil {
		t.Fatal(err)
	}
	if w := c.Wire(0, 1); !w.Min.Equal(rat.FromInt(3)) || !w.Max.Equal(rat.FromInt(4)) {
		t.Errorf("explicit wire = %+v", w)
	}
	if w := c.Wire(1, 0); !w.Min.Equal(rat.One) {
		t.Errorf("default wire = %+v", w)
	}
}

func TestMigratePreservesRatios(t *testing.T) {
	c, _ := NewChip(3, rat.One, rat.New(3, 2))
	_ = c.SetWire(0, 1, rat.FromInt(2), rat.FromInt(3))
	half, err := c.Migrate(rat.New(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	w := half.Wire(0, 1)
	if !w.Min.Equal(rat.One) || !w.Max.Equal(rat.New(3, 2)) {
		t.Errorf("migrated wire = %+v", w)
	}
	d := half.Wire(2, 1) // default scaled too
	if !d.Min.Equal(rat.New(1, 2)) {
		t.Errorf("migrated default = %+v", d)
	}
	if _, err := c.Migrate(rat.Zero); err == nil {
		t.Error("zero factor accepted")
	}
}

func TestClockGenerationFaultFree(t *testing.T) {
	xi := rat.FromInt(2)
	c, _ := NewChip(4, rat.One, rat.New(3, 2))
	rep, err := RunClockGeneration(c, xi, 1, 10, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Admissible {
		t.Error("chip execution not admissible")
	}
	if !rep.PrecisionOK {
		t.Error("precision bound violated")
	}
	if rep.MaxTick < 10 {
		t.Errorf("max tick %d < 10", rep.MaxTick)
	}
	if rep.CriticalRatio.GreaterEq(xi) {
		t.Errorf("critical ratio %v >= Ξ", rep.CriticalRatio)
	}
}

func TestClockGenerationWithByzantineModule(t *testing.T) {
	xi := rat.FromInt(2)
	c, _ := NewChip(4, rat.One, rat.New(3, 2))
	faults := map[sim.ProcessID]sim.Fault{3: sim.Silent()}
	rep, err := RunClockGeneration(c, xi, 1, 8, faults, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Admissible || !rep.PrecisionOK {
		t.Errorf("report %+v", rep)
	}
}

// Technology migration: the same design at half delays yields the same
// admissibility and precision — Ξ carries over unchanged.
func TestMigrationKeepsXiValid(t *testing.T) {
	xi := rat.FromInt(2)
	c, _ := NewChip(4, rat.One, rat.New(3, 2))
	before, err := RunClockGeneration(c, xi, 1, 8, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	faster, err := c.Migrate(rat.New(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	after, err := RunClockGeneration(faster, xi, 1, 8, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !before.Admissible || !after.Admissible {
		t.Error("admissibility lost in migration")
	}
	if !before.PrecisionOK || !after.PrecisionOK {
		t.Error("precision lost in migration")
	}
	// Same seed, uniformly scaled delays: identical logical executions,
	// hence identical critical ratios.
	if !before.CriticalRatio.Equal(after.CriticalRatio) {
		t.Errorf("critical ratio changed: %v -> %v", before.CriticalRatio, after.CriticalRatio)
	}
}

// Fig. 9: grossly mismatched individual wires — ratio far above Ξ link-by-
// link — remain admissible because only cumulative cycle ratios matter.
func TestFig9CumulativeDelays(t *testing.T) {
	// q=0 exchanges directly with p=1 (1-hop, delay ~5) and indirectly
	// with s=3 via r=2 (2-hop path with one slow and one fast wire).
	b := sim.NewTraceBuilder(4)
	b.WakeAll(rat.Zero)
	// Round trip q -> p -> q: delays 5 and 5.
	b.MsgAt(0, 0, 1, 5, "qp")
	b.MsgAt(1, 1, 0, 10, "pq")
	// Path q -> r -> s -> r -> q: wire q-r is very slow (9), r-s very
	// fast (1/2): individually mismatched by a factor 18.
	b.MsgAt(0, 0, 2, 9, "qr")
	b.Msg(2, 1, 3, rat.New(19, 2), "rs")
	b.MsgAt(3, 1, 2, 10, "sr")
	b.MsgAt(2, 2, 0, 19, "rq") // q event 2, after the p round trip
	tr := b.MustBuild()
	g := causality.Build(tr, causality.Options{})

	// Per-wire ratio 18 >> Ξ = 3, yet the execution is admissible: the
	// 4-hop path (sum 19) is spanned by... the cycle q->r->s->r->q vs two
	// q<->p round trips would need those roundtrips; here the only
	// relevant constraint is cumulative.
	v, err := check.ABC(g, rat.FromInt(3))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admissible {
		t.Fatalf("Fig.9 execution not admissible at Ξ=3: witness %v", v.Witness)
	}
}
