// Package vlsi models the paper's VLSI Systems-on-Chip application domain
// (Section 5.3): a chip is a set of functional modules connected by wires
// whose min/max propagation delays are fixed by place-and-route. Running
// the Byzantine tick generation of Algorithm 1 over such a chip is the
// DARTS-style fault-tolerant clock generation the paper cites (which was
// migrated from an FPGA to an ASIC without change — the re-use argument
// reproduced by the Migrate experiment here).
//
// Two of the paper's points are directly expressible:
//
//   - Technology migration: scaling all wire delays by a common factor
//     (a faster process node) preserves every cycle's delay ratios, so the
//     algorithm's Ξ continues to hold without re-validation.
//   - Cumulative, per-cycle constraints (Fig. 9): individual wires may be
//     arbitrarily mismatched (ratio far above Ξ) as long as the cumulative
//     delays along relevant cycles stay within Ξ — far weaker than the
//     per-link constraints a ParSync or Θ design flow would impose.
package vlsi

import (
	"fmt"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/clocksync"
	"repro/internal/rat"
	"repro/internal/sim"
)

// Wire is a directed link with place-and-route delay bounds.
type Wire struct {
	Min, Max rat.Rat
}

// Chip is a placed-and-routed system of modules. The zero value is not
// usable; create with NewChip.
type Chip struct {
	n     int
	names []string
	wires map[sim.Link]Wire
	// Default applies to links without an explicit wire.
	def Wire
}

// NewChip returns a chip with n modules and a default wire delay range.
func NewChip(n int, defaultMin, defaultMax rat.Rat) (*Chip, error) {
	if n <= 0 {
		return nil, fmt.Errorf("vlsi: chip needs modules, got %d", n)
	}
	if defaultMin.Sign() < 0 || defaultMax.Less(defaultMin) {
		return nil, fmt.Errorf("vlsi: bad default delay range [%v, %v]", defaultMin, defaultMax)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("M%d", i)
	}
	return &Chip{
		n:     n,
		names: names,
		wires: make(map[sim.Link]Wire),
		def:   Wire{Min: defaultMin, Max: defaultMax},
	}, nil
}

// SetName labels a module.
func (c *Chip) SetName(m sim.ProcessID, name string) { c.names[m] = name }

// Name returns a module's label.
func (c *Chip) Name(m sim.ProcessID) string { return c.names[m] }

// Modules returns the module count.
func (c *Chip) Modules() int { return c.n }

// SetWire fixes the delay range of one directed link.
func (c *Chip) SetWire(from, to sim.ProcessID, min, max rat.Rat) error {
	if min.Sign() < 0 || max.Less(min) {
		return fmt.Errorf("vlsi: bad delay range [%v, %v]", min, max)
	}
	c.wires[sim.Link{From: from, To: to}] = Wire{Min: min, Max: max}
	return nil
}

// Wire returns the delay range of a link.
func (c *Chip) Wire(from, to sim.ProcessID) Wire {
	if w, ok := c.wires[sim.Link{From: from, To: to}]; ok {
		return w
	}
	return c.def
}

// Migrate returns a copy of the chip with every wire delay scaled by the
// given positive factor — the technology-migration scenario. Scaling all
// paths uniformly preserves all delay ratios, hence the Ξ of any ABC
// algorithm running on the chip.
func (c *Chip) Migrate(factor rat.Rat) (*Chip, error) {
	if factor.Sign() <= 0 {
		return nil, fmt.Errorf("vlsi: scale factor %v must be positive", factor)
	}
	out := &Chip{
		n:     c.n,
		names: append([]string(nil), c.names...),
		wires: make(map[sim.Link]Wire, len(c.wires)),
		def:   Wire{Min: c.def.Min.Mul(factor), Max: c.def.Max.Mul(factor)},
	}
	for l, w := range c.wires {
		out.wires[l] = Wire{Min: w.Min.Mul(factor), Max: w.Max.Mul(factor)}
	}
	return out, nil
}

// DelayPolicy returns the simulation delay policy induced by the chip's
// wires: per-link uniform within [Min, Max].
func (c *Chip) DelayPolicy() sim.DelayPolicy {
	links := make(map[sim.Link]sim.DelayPolicy, len(c.wires))
	for l, w := range c.wires {
		links[l] = sim.UniformDelay{Min: w.Min, Max: w.Max}
	}
	return sim.PerLinkDelay{
		Default: sim.UniformDelay{Min: c.def.Min, Max: c.def.Max},
		Links:   links,
	}
}

// ClockGenReport summarizes a clock generation run.
type ClockGenReport struct {
	// Admissible is the ABC verdict of the produced execution.
	Admissible bool
	// CriticalRatio is the execution's exact worst relevant-cycle ratio
	// (zero if unconstrained).
	CriticalRatio rat.Rat
	// MaxTick is the highest clock value reached by a correct module.
	MaxTick int
	// PrecisionOK reports Theorem 3's bound ⌈2Ξ⌉ held at all times.
	PrecisionOK bool
	Events      int
}

// RunClockGeneration runs DARTS-style tick generation (Algorithm 1) on the
// chip for a model with parameter Ξ, tolerating f Byzantine modules, until
// every correct module reaches targetTick.
func RunClockGeneration(c *Chip, xi rat.Rat, f, targetTick int, faults map[sim.ProcessID]sim.Fault, seed int64) (ClockGenReport, error) {
	res, err := sim.Run(sim.Config{
		N:         c.n,
		Spawn:     clocksync.Spawner(c.n, f),
		Faults:    faults,
		Delays:    c.DelayPolicy(),
		Seed:      seed,
		Until:     clocksync.AllReached(targetTick, faults),
		MaxEvents: 400000,
	})
	if err != nil {
		return ClockGenReport{}, err
	}
	if res.Truncated {
		return ClockGenReport{}, fmt.Errorf("vlsi: clock generation truncated before tick %d", targetTick)
	}
	g := causality.Build(res.Trace, causality.Options{})
	v, err := check.ABC(g, xi)
	if err != nil {
		return ClockGenReport{}, err
	}
	ratio, found, err := check.MaxRelevantRatio(g)
	if err != nil {
		return ClockGenReport{}, err
	}
	if !found {
		ratio = rat.Zero
	}
	x := xi.MulInt(2).Ceil()
	precisionErr := clocksync.CheckRealTimePrecision(res.Trace, x)
	maxTick := 0
	for id, pr := range res.Procs {
		if _, bad := faults[sim.ProcessID(id)]; bad {
			continue
		}
		if cs, ok := pr.(*clocksync.Proc); ok && cs.Clock() > maxTick {
			maxTick = cs.Clock()
		}
	}
	return ClockGenReport{
		Admissible:    v.Admissible,
		CriticalRatio: ratio,
		MaxTick:       maxTick,
		PrecisionOK:   precisionErr == nil,
		Events:        len(res.Trace.Events),
	}, nil
}
