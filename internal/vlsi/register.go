package vlsi

import (
	"fmt"

	"repro/internal/clocksync"
	"repro/internal/rat"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The vlsi workload is DARTS-style clock generation (Section 5.3):
// Algorithm 1 over a placed-and-routed chip whose wire delays come from
// the default range, optionally scaled by a migration factor (a faster
// process node scales every wire uniformly, preserving all cycle ratios
// and hence Ξ). `silent` dead modules model fab defects. The domain
// verdict is the Theorem 3 precision bound on admissible, complete runs.
func init() {
	workload.Register(workload.Source{
		Name: "vlsi",
		Doc:  "VLSI clock generation on a placed-and-routed chip (Section 5.3), with technology migration",
		Params: append([]workload.Param{
			{Name: "n", Kind: workload.Int, Default: "4", Doc: "number of chip modules (n >= 3f+1)"},
			{Name: "f", Kind: workload.Int, Default: "1", Doc: "Byzantine fault bound"},
			{Name: "xi", Kind: workload.Rational, Default: "2", Doc: "model parameter Ξ"},
			{Name: "target", Kind: workload.Int, Default: "10", Doc: "tick every correct module must reach"},
			{Name: "min", Kind: workload.Rational, Default: "1", Doc: "default wire delay lower bound"},
			{Name: "max", Kind: workload.Rational, Default: "3/2", Doc: "default wire delay upper bound"},
			{Name: "scale", Kind: workload.Rational, Default: "1", Doc: "technology-migration factor applied to every wire"},
			{Name: "silent", Kind: workload.Int, Default: "0", Doc: "number of dead modules (fab defects), IDs n-1 downward"},
			{Name: "maxevents", Kind: workload.Int, Default: "400000", Doc: "receive-event budget"},
		}, append(workload.TopologyParams(), append(workload.FaultParams(), append(workload.TraceParams(), workload.ShardParams()...)...)...)...),
		Job:     vlsiJob,
		Verdict: vlsiVerdict,
		// The Theorem 3 precision check replays the recorded clock notes.
		VerdictNeedsTrace: true,
	})
}

func vlsiJob(v workload.Values, seed int64) (runner.Job, error) {
	n, f := v.Int("n"), v.Int("f")
	chip, err := NewChip(n, v.Rat("min"), v.Rat("max"))
	if err != nil {
		return runner.Job{}, err
	}
	if scale := v.Rat("scale"); !scale.Equal(rat.One) {
		if chip, err = chip.Migrate(scale); err != nil {
			return runner.Job{}, err
		}
	}
	silent := v.Int("silent")
	if silent < 0 || silent > f {
		return runner.Job{}, fmt.Errorf("vlsi: silent=%d must be within [0, f=%d]", silent, f)
	}
	topo, err := workload.ResolveTopology(v, n)
	if err != nil {
		return runner.Job{}, err
	}
	// The chip has no live Byzantine family (dead modules and stuck
	// drivers, not adversarial logic): the nil factory rejects byz
	// clauses, crash/script model fab defects and glitching wires.
	faults, net, err := workload.SharedOrLegacyFaults(v, n, topo, nil,
		silent > 0, "silent>0",
		func() map[sim.ProcessID]sim.Fault {
			m := make(map[sim.ProcessID]sim.Fault, silent)
			for i := 0; i < silent; i++ {
				m[sim.ProcessID(n-1-i)] = sim.Silent()
			}
			return m
		})
	if err != nil {
		return runner.Job{}, err
	}
	if len(faults) > f {
		return runner.Job{}, fmt.Errorf("vlsi: fault spec %q injects %d faults, bound is f=%d", v.String("faults"), len(faults), f)
	}
	cfg := sim.Config{
		N:         n,
		Spawn:     clocksync.Spawner(n, f),
		Faults:    faults,
		Net:       net,
		Delays:    chip.DelayPolicy(),
		Topology:  topo,
		Seed:      seed,
		Until:     clocksync.AllReached(v.Int("target"), faults),
		MaxEvents: v.Int("maxevents"),
	}
	return runner.Job{Cfg: &cfg}, nil
}

// vlsiVerdict checks the Theorem 3 precision bound ⌈2Ξ⌉ — the property
// technology migration must preserve — on admissible, complete runs. The
// bound derives from r.Xi, the Ξ the admissibility check actually ran
// against (a sweep may override the xi parameter).
//
// The check only applies on the fully-connected fabric: Algorithm 1's
// quorum progress (and with it the Theorem 3 bound) is proven for
// all-to-all broadcast, so sparse-topology sweeps run the chip for
// admissibility and scale measurements without the precision claim.
func vlsiVerdict(v workload.Values, r *runner.JobResult) error {
	if v.String("topology") != "full" || !r.CompletedAdmissible(true) {
		return nil
	}
	// Theorem 3 assumes every broadcast arrives; lossy-wire sweeps run
	// the chip for admissibility only.
	if workload.NetFaulty(v) {
		return nil
	}
	return clocksync.CheckRealTimePrecision(r.Trace, r.Xi.MulInt(2).Ceil())
}
