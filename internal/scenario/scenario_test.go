package scenario

import (
	"testing"

	"repro/internal/causality"
)

func TestFig1Shape(t *testing.T) {
	fig := BuildFig1()
	if err := fig.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if fig.Trace.N != 9 {
		t.Errorf("N = %d, want 9", fig.Trace.N)
	}
	if fig.Graph.MessageCount() != 9 {
		t.Errorf("messages = %d, want 9 (m1..m9)", fig.Graph.MessageCount())
	}
	// ψ1 happens before ψ2 at p.
	if !fig.Graph.HappensBefore(fig.Psi1, fig.Psi2) {
		t.Error("ψ1 must precede ψ2")
	}
	// The zero-delay message m3 exists.
	zero := false
	for _, m := range fig.Trace.Msgs {
		if s, ok := m.Payload.(string); ok && s == "m3" && m.RecvTime.Equal(m.SendTime) {
			zero = true
		}
	}
	if !zero {
		t.Error("m3 is not zero-delay")
	}
}

func TestFig2Shape(t *testing.T) {
	fig := BuildFig2()
	if err := fig.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(fig.X) != 4 || len(fig.Y) != 4 {
		t.Fatalf("X/Y have %d/%d edges, want 4/4", len(fig.X), len(fig.Y))
	}
	// e is the only edge shared by X and Y.
	shared := 0
	for _, ex := range fig.X {
		for _, ey := range fig.Y {
			if ex == ey {
				shared++
				if ex != fig.E {
					t.Errorf("unexpected shared edge %d", ex)
				}
			}
		}
	}
	if shared != 1 {
		t.Errorf("X and Y share %d edges, want 1", shared)
	}
	if fig.Graph.Edge(fig.E).Kind != causality.Message {
		t.Error("e is not a message edge")
	}
}

func TestFig3Fig4Divergence(t *testing.T) {
	f3, f4 := BuildFig3(), BuildFig4()
	if err := f3.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := f4.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	// Same number of messages, different local order at p.
	if f3.Graph.MessageCount() != f4.Graph.MessageCount() {
		t.Errorf("message counts differ: %d vs %d",
			f3.Graph.MessageCount(), f4.Graph.MessageCount())
	}
	// Fig 3: ψ before the reply. Fig 4: reply (φ) before ψ.
	if !f3.Graph.HappensBefore(f3.Psi, f3.PhiReply) {
		t.Error("Fig.3: ψ must precede the reply")
	}
	if !f4.Graph.HappensBefore(f4.Phi, f4.Psi) {
		t.Error("Fig.4: φ must precede ψ")
	}
	// The triggering payloads of ψ match ("pong2" closes the chain).
	psiEv := f3.Trace.Events[f3.Graph.Node(f3.Psi).TracePos]
	if pl := f3.Trace.Msgs[psiEv.Trigger].Payload; pl != "pong2" {
		t.Errorf("Fig.3 ψ triggered by %v, want pong2", pl)
	}
}
