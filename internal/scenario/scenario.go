// Package scenario reconstructs the space–time diagrams of the ABC paper's
// figures as concrete traces and execution graphs. Tests use them as ground
// truth for the cycle machinery and checkers, and the benchmark harness
// (bench_test.go, cmd/abcbench) regenerates each figure's claimed property
// from them.
package scenario

import (
	"repro/internal/causality"
	"repro/internal/rat"
	"repro/internal/sim"
)

// Fig1 is the relevant cycle of Fig. 1: a "slow" chain C1 of 4 consecutive
// messages from q to p spans a causal chain C2 of 5 messages (including the
// zero-delay m3) plus local edges from q to p.
//
// Process layout: q = 0, p = 1; C1 relays via 2, 3, 4; C2 relays via
// 5, 6, 7, 8. The cycle's Definition 3 classification is |Z+| = 4 (C1),
// |Z−| = 5 (C2), so the execution is ABC-admissible exactly for Ξ > 5/4.
type Fig1 struct {
	Trace *sim.Trace
	Graph *causality.Graph
	// Q and P are the endpoints of both chains.
	Q, P sim.ProcessID
	// Psi1 is p's receive event of C2's last message m5; Psi2 is p's
	// receive event of C1's last message m9 (ψ1 happens before ψ2).
	Psi1, Psi2 causality.NodeID
}

// BuildFig1 constructs the Fig. 1 scenario.
func BuildFig1() Fig1 {
	b := sim.NewTraceBuilder(9)
	b.WakeAll(rat.Zero)
	// C2: the fast chain q -> 5 -> 6 -> 7 -> 8 -> p; m3 (6 -> 7) has zero
	// delay (send and receive at time 2).
	b.MsgAt(0, 0, 5, 1, "m1")
	b.MsgAt(5, 1, 6, 2, "m2")
	b.MsgAt(6, 1, 7, 2, "m3") // zero delay
	b.MsgAt(7, 1, 8, 3, "m4")
	b.MsgAt(8, 1, 1, 4, "m5")
	// C1: the slow chain q -> 2 -> 3 -> 4 -> p spanning C2.
	b.MsgAt(0, 0, 2, 3, "m6")
	b.MsgAt(2, 1, 3, 6, "m7")
	b.MsgAt(3, 1, 4, 8, "m8")
	b.MsgAt(4, 1, 1, 10, "m9")
	tr := b.MustBuild()
	g := causality.Build(tr, causality.Options{})
	return Fig1{
		Trace: tr,
		Graph: g,
		Q:     0,
		P:     1,
		Psi1:  g.NodesOf(1)[1],
		Psi2:  g.NodesOf(1)[2],
	}
}

// Fig3 is the timeout scenario of Fig. 3 with Ξ = 2: process p broadcasts
// to p_slow and p_fast, then ping-pongs 2Ξ = 4 messages with p_fast. The
// reply of p_slow arrives only after the last pong event ψ, closing a
// relevant cycle with |Z−|/|Z+| = 4/2 = Ξ — violating the synchrony
// condition (2), which is why p may time out p_slow at ψ.
type Fig3 struct {
	Trace *sim.Trace
	Graph *causality.Graph
	// P, Fast, Slow are the processes (0, 1, 2).
	P, Fast, Slow sim.ProcessID
	// Psi is p's event closing the 4-message ping-pong chain; PhiReply is
	// p's receive event of p_slow's late reply.
	Psi, PhiReply causality.NodeID
}

// BuildFig3 constructs the Fig. 3 scenario (late reply, violating cycle).
func BuildFig3() Fig3 {
	tr := buildPingPong(true)
	g := causality.Build(tr, causality.Options{})
	return Fig3{
		Trace: tr, Graph: g, P: 0, Fast: 1, Slow: 2,
		Psi:      g.NodesOf(0)[2],
		PhiReply: g.NodesOf(0)[3],
	}
}

// Fig4 is the same communication pattern as Fig. 3, but the reply of
// p_slow arrives before event ψ: the cycle N closed by ψ is non-relevant
// (its local edge (φ, ψ) has the cycle's orientation), so no synchrony
// violation occurs for any Ξ.
type Fig4 struct {
	Trace *sim.Trace
	Graph *causality.Graph
	// Phi is p's receive event of the timely reply; Psi is the later
	// ping-pong completion event.
	Phi, Psi causality.NodeID
}

// BuildFig4 constructs the Fig. 4 scenario (timely reply, non-relevant
// cycle).
func BuildFig4() Fig4 {
	tr := buildPingPong(false)
	g := causality.Build(tr, causality.Options{})
	return Fig4{
		Trace: tr, Graph: g,
		Phi: g.NodesOf(0)[2],
		Psi: g.NodesOf(0)[3],
	}
}

// buildPingPong lays out the common pattern of Figs. 3 and 4: p (0)
// broadcasts at its wake-up to p_fast (1) and p_slow (2); p and p_fast
// exchange a 4-message ping-pong chain (2Ξ messages for Ξ = 2); p_slow's
// reply is late (after the chain's last event ψ, Fig. 3) or timely
// (before ψ, Fig. 4).
func buildPingPong(late bool) *sim.Trace {
	b := sim.NewTraceBuilder(3)
	b.WakeAll(rat.Zero)
	// Initial broadcast from p's wake-up step.
	b.MsgAt(0, 0, 1, 1, "ping1") // to p_fast: chain message 1
	b.MsgAt(0, 0, 2, 1, "query") // to p_slow
	b.MsgAt(1, 1, 0, 2, "pong1") // chain message 2; p event 1
	b.MsgAt(0, 1, 1, 3, "ping2") // chain message 3; fast event 2
	if late {
		b.MsgAt(1, 2, 0, 4, "pong2") // chain message 4; p event 2 = ψ
		b.MsgAt(2, 1, 0, 6, "reply") // p event 3 = φ'': closes the violating cycle
	} else {
		b.Msg(2, 1, 0, rat.New(7, 2), "reply") // p event 2 = φ: timely
		b.MsgAt(1, 2, 0, 4, "pong2")           // p event 3 = ψ: closes non-relevant N
	}
	return b.MustBuild()
}

// Fig9 is the cumulative-constraint scenario of Fig. 9 (Section 5.3): the
// q↔p ping-pong spans a three-hop path q→r→s→r→q whose individual wires
// are mismatched by a factor of 18 (rs takes 1/2 a time unit, qr takes 9),
// yet the cumulative delays along every relevant cycle stay within Ξ = 3 —
// per-wire ratios do not matter, only per-cycle message counts.
type Fig9 struct {
	Trace *sim.Trace
	Graph *causality.Graph
}

// BuildFig9 constructs the Fig. 9 scenario.
func BuildFig9() Fig9 {
	b := sim.NewTraceBuilder(4)
	b.WakeAll(rat.Zero)
	b.MsgAt(0, 0, 1, 5, "qp")
	b.MsgAt(1, 1, 0, 10, "pq")
	b.MsgAt(0, 0, 2, 9, "qr") // slow wire
	b.Msg(2, 1, 3, rat.New(19, 2), "rs")
	b.MsgAt(3, 1, 2, 10, "sr")
	b.MsgAt(2, 2, 0, 19, "rq")
	tr := b.MustBuild()
	return Fig9{Trace: tr, Graph: causality.Build(tr, causality.Options{})}
}

// Fig2 is the execution graph of Fig. 2: two relevant cycles X and Y that
// share one message e with opposite orientations (e ∈ X+ and e ∈ Y−), so
// that the combined cycle X ⊕ Y consists of all edges except e.
//
// Layout: q = 0, p = 1, a = 2, r = 3.
//
//	X: the direct message e (q→p) spans the 2-message chain q→a→p
//	   (messages m1, m2):     |X+| = 1, |X−| = 2.
//	Y: the direct message m4 (q→r) spans the 2-message chain q→p→r
//	   (messages e, m3):      |Y+| = 1, |Y−| = 2.
//
// X ⊕ Y is the relevant cycle where m4 spans the 3-message chain
// q→a→p→r, with ratio 3/1 — larger than either constituent's 2/1, which is
// precisely why the Farkas argument of Section 4.1 must handle cycle
// combinations.
type Fig2 struct {
	Trace *sim.Trace
	Graph *causality.Graph
	// X and Y are the two relevant cycles as step sequences; E is the
	// shared message's edge ID.
	X, Y []causality.EdgeID
	E    causality.EdgeID
}

// BuildFig2 constructs the Fig. 2 scenario.
func BuildFig2() Fig2 {
	b := sim.NewTraceBuilder(4)
	b.WakeAll(rat.Zero)
	b.MsgAt(0, 0, 2, 1, "m1") // q -> a
	b.MsgAt(2, 1, 1, 2, "m2") // a -> p   (p event 1 = u1)
	b.MsgAt(0, 0, 1, 3, "e")  // q -> p   (p event 2 = u2)
	b.MsgAt(1, 2, 3, 4, "m3") // p -> r   (r event 1)
	b.MsgAt(0, 0, 3, 5, "m4") // q -> r   (r event 2)
	tr := b.MustBuild()
	g := causality.Build(tr, causality.Options{})

	find := func(name string) causality.EdgeID {
		for i, e := range g.Edges() {
			if e.Kind != causality.Message {
				continue
			}
			if s, ok := tr.Msgs[e.Msg].Payload.(string); ok && s == name {
				return causality.EdgeID(i)
			}
		}
		panic("scenario: message " + name + " not found")
	}
	localAt := func(p sim.ProcessID, fromIdx int) causality.EdgeID {
		nodes := g.NodesOf(p)
		for i, e := range g.Edges() {
			if e.Kind == causality.Local && e.From == nodes[fromIdx] && e.To == nodes[fromIdx+1] {
				return causality.EdgeID(i)
			}
		}
		panic("scenario: local edge not found")
	}

	return Fig2{
		Trace: tr,
		Graph: g,
		X:     []causality.EdgeID{find("e"), localAt(1, 1), find("m2"), find("m1")},
		Y:     []causality.EdgeID{find("m4"), localAt(3, 1), find("m3"), find("e")},
		E:     find("e"),
	}
}
