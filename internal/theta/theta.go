// Package theta implements the Θ-Model of Le Lann, Schmid and Widder that
// Section 4 of the ABC paper proves indistinguishable from the ABC model
// for message-driven algorithms: the ratio of the maximum to the minimum
// end-to-end delay of messages (simultaneously in transit, in the dynamic
// variant) is bounded by Θ.
//
// The package provides admissibility checkers for both the static variant
// (global bounds τ−, τ+ with τ+/τ− <= Θ) and the dynamic variant
// (τ+(t)/τ−(t) <= Θ at every time t), plus the Theorem 9 bridge: timing an
// admissible ABC execution graph with its normalized delay assignment
// (Theorem 7) yields a Θ-admissible timed execution for every Θ >= Ξ.
//
// Together with Theorem 6 (every Θ-admissible execution with Θ < Ξ is
// ABC-admissible, tested in internal/check) this gives both directions of
// the containment story: M_Θ ⊆ M_ABC strictly — e.g. zero-delay messages
// (Fig. 1's m3) are ABC-admissible but violate every Θ.
package theta

import (
	"fmt"
	"sort"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/rat"
	"repro/internal/sim"
)

// Report is the outcome of a Θ-admissibility check.
type Report struct {
	// Admissible is true when the checked condition holds.
	Admissible bool
	// MinDelay and MaxDelay are the extreme correct-message delays
	// observed (static check) or the worst simultaneous pair (dynamic
	// check). Zero MinDelay makes every Θ inadmissible.
	MinDelay, MaxDelay rat.Rat
	// Messages is the number of correct messages considered.
	Messages int
	// Reason describes the violation, empty when admissible.
	Reason string
}

// correctMessages yields the non-wakeup messages sent and received by
// correct processes — the ones the Θ-Model constrains.
func correctMessages(t *sim.Trace) []sim.Message {
	var out []sim.Message
	for _, m := range t.Msgs {
		if m.IsWakeup() || m.SendStep == sim.SendStepScripted {
			continue
		}
		if t.Faulty[m.From] || t.Faulty[m.To] {
			continue
		}
		out = append(out, m)
	}
	return out
}

// CheckStatic verifies the static Θ-Model condition: there exist bounds
// 0 < τ− <= delay(m) <= τ+ < ∞ for every correct message m with
// τ+/τ− <= Θ — equivalently, maxDelay/minDelay <= Θ with minDelay > 0.
func CheckStatic(t *sim.Trace, theta rat.Rat) Report {
	msgs := correctMessages(t)
	r := Report{Admissible: true, Messages: len(msgs)}
	for i, m := range msgs {
		d := m.RecvTime.Sub(m.SendTime)
		if i == 0 {
			r.MinDelay, r.MaxDelay = d, d
			continue
		}
		r.MinDelay = rat.Min(r.MinDelay, d)
		r.MaxDelay = rat.Max(r.MaxDelay, d)
	}
	if len(msgs) == 0 {
		return r
	}
	if r.MinDelay.Sign() <= 0 {
		r.Admissible = false
		r.Reason = "zero-delay message: no positive τ− exists"
		return r
	}
	if ratio := r.MaxDelay.Div(r.MinDelay); ratio.Greater(theta) {
		r.Admissible = false
		r.Reason = fmt.Sprintf("delay ratio %.3g exceeds Θ = %v", ratio.Float64(), theta)
	}
	return r
}

// CheckDynamic verifies the dynamic Θ-Model condition: for every time t,
// the delays of correct messages simultaneously in transit at t satisfy
// τ+(t)/τ−(t) <= Θ. A message is in transit during [send, recv); a
// zero-delay message is never in transit.
func CheckDynamic(t *sim.Trace, theta rat.Rat) Report {
	msgs := correctMessages(t)
	r := Report{Admissible: true, Messages: len(msgs)}
	if len(msgs) == 0 {
		return r
	}
	// Sweep the distinct send times; the in-transit set only grows at send
	// instants, so checking each send time covers all maxima.
	times := make([]rat.Rat, 0, len(msgs))
	for _, m := range msgs {
		times = append(times, m.SendTime)
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Less(times[j]) })
	for _, t0 := range times {
		var min, max rat.Rat
		found := false
		for _, m := range msgs {
			if m.SendTime.Greater(t0) || m.RecvTime.LessEq(t0) {
				continue // not in transit at t0
			}
			d := m.RecvTime.Sub(m.SendTime)
			if !found {
				min, max, found = d, d, true
				continue
			}
			min = rat.Min(min, d)
			max = rat.Max(max, d)
		}
		if found && max.Div(min).Greater(theta) {
			return Report{
				Admissible: false,
				MinDelay:   min,
				MaxDelay:   max,
				Messages:   len(msgs),
				Reason:     fmt.Sprintf("in-transit ratio %v exceeds Θ = %v at time %v", max.Div(min), theta, t0),
			}
		}
	}
	return r
}

// TimeFromAssignment retimes an execution graph with a normalized delay
// assignment (Theorem 7) and reports the static Θ-admissibility of the
// result. Since the assignment places every message delay strictly inside
// (1, Ξ), the retimed execution is statically Θ-admissible for any
// Θ >= Ξ — the constructive content of Theorem 9's model
// indistinguishability.
func TimeFromAssignment(g *causality.Graph, a *check.Assignment, theta rat.Rat) Report {
	r := Report{Admissible: true}
	first := true
	for i, e := range g.Edges() {
		if e.Kind != causality.Message {
			continue
		}
		d := a.Delay(causality.EdgeID(i))
		r.Messages++
		if first {
			r.MinDelay, r.MaxDelay = d, d
			first = false
			continue
		}
		r.MinDelay = rat.Min(r.MinDelay, d)
		r.MaxDelay = rat.Max(r.MaxDelay, d)
	}
	if r.Messages == 0 {
		return r
	}
	if r.MinDelay.Sign() <= 0 || r.MaxDelay.Div(r.MinDelay).Greater(theta) {
		r.Admissible = false
		r.Reason = fmt.Sprintf("assigned delays [%v, %v] exceed Θ = %v", r.MinDelay, r.MaxDelay, theta)
	}
	return r
}
