package theta

import (
	"fmt"

	"repro/internal/rat"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The theta workload generates Θ-Model executions: all-to-all broadcast
// under delays drawn uniformly from [base, base·Θ], so the realized
// delay ratio is bounded by Θ by construction. Its domain verdict is the
// containment direction of Theorem 6: every Θ-admissible execution with
// Θ < Ξ must be ABC(Ξ)-admissible — the static Θ check must accept the
// trace, and whenever Θ < Ξ the ABC check must too.
func init() {
	workload.Register(workload.Source{
		Name: "theta",
		Doc:  "Θ-Model executions (delays within [base, base·Θ]) with the Theorem 6 containment verdict",
		Params: append([]workload.Param{
			{Name: "n", Kind: workload.Int, Default: "4", Doc: "number of processes"},
			{Name: "steps", Kind: workload.Int, Default: "4", Doc: "broadcasting steps per process"},
			{Name: "base", Kind: workload.Rational, Default: "1", Doc: "minimum end-to-end delay τ−"},
			{Name: "theta", Kind: workload.Rational, Default: "7/4", Doc: "Θ bound on the delay ratio τ+/τ−"},
			{Name: "xi", Kind: workload.Rational, Default: "2", Doc: "model parameter Ξ for the ABC check"},
			{Name: "maxevents", Kind: workload.Int, Default: "0", Doc: "receive-event budget (0 = simulator default)"},
		}, append(workload.TraceParams(), workload.ShardParams()...)...),
		// CheckStatic scans every recorded message's realized delay.
		VerdictNeedsTrace: true,
		Job: func(v workload.Values, seed int64) (runner.Job, error) {
			base, th := v.Rat("base"), v.Rat("theta")
			if base.Sign() <= 0 {
				return runner.Job{}, fmt.Errorf("theta: base delay %v must be positive", base)
			}
			if th.Less(rat.One) {
				return runner.Job{}, fmt.Errorf("theta: Θ = %v must be at least 1", th)
			}
			cfg := sim.Config{
				N:         v.Int("n"),
				Spawn:     workload.BroadcastSpawner(v.Int("steps")),
				Delays:    sim.UniformDelay{Min: base, Max: base.Mul(th)},
				Seed:      seed,
				MaxEvents: v.Int("maxevents"),
			}
			return runner.Job{Cfg: &cfg}, nil
		},
		Verdict: func(v workload.Values, r *runner.JobResult) error {
			th := v.Rat("theta")
			if rep := CheckStatic(r.Trace, th); !rep.Admissible {
				return fmt.Errorf("theta: execution escaped its own Θ=%v bound: %s", th, rep.Reason)
			}
			// Theorem 6: Θ < Ξ forces ABC admissibility.
			if r.Verdict != nil && th.Less(r.Xi) && !r.Verdict.Admissible {
				return fmt.Errorf("theta: Θ(%v)-admissible execution rejected by ABC(%v) — Theorem 6 violated", th, r.Xi)
			}
			return nil
		},
	})
}
