package theta

import (
	"testing"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/rat"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func broadcastSpawn(steps int) func(sim.ProcessID) sim.Process {
	return func(sim.ProcessID) sim.Process {
		return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
			if env.StepIndex() < steps {
				env.Broadcast(env.StepIndex())
			}
		})
	}
}

func TestCheckStatic(t *testing.T) {
	res, err := sim.Run(sim.Config{
		N:      3,
		Spawn:  broadcastSpawn(3),
		Delays: sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := CheckStatic(res.Trace, rat.FromInt(2))
	if !r.Admissible {
		t.Errorf("delays in [1, 3/2] rejected for Θ=2: %s", r.Reason)
	}
	r = CheckStatic(res.Trace, rat.New(11, 10))
	if r.Admissible && r.MaxDelay.Div(r.MinDelay).Greater(rat.New(11, 10)) {
		t.Error("ratio above Θ accepted")
	}
}

func TestZeroDelayBreaksEveryTheta(t *testing.T) {
	// Fig. 1 contains the zero-delay message m3: ABC-admissible for Ξ = 2
	// but statically Θ-inadmissible for every Θ — the strictness direction
	// of the containment (M_ABC ⊄ M_Θ).
	fig := scenario.BuildFig1()
	v, err := check.ABC(fig.Graph, rat.FromInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admissible {
		t.Fatal("Fig.1 should be ABC(2)-admissible")
	}
	for _, theta := range []rat.Rat{rat.New(3, 2), rat.FromInt(10), rat.FromInt(1000)} {
		if r := CheckStatic(fig.Trace, theta); r.Admissible {
			t.Errorf("zero-delay trace accepted for Θ=%v", theta)
		}
	}
}

func TestCheckDynamic(t *testing.T) {
	// Growing delays: statically unbounded ratio over time, but the
	// in-transit ratio stays bounded.
	res, err := sim.Run(sim.Config{
		N:      3,
		Spawn:  broadcastSpawn(8),
		Delays: sim.GrowingDelay{Base: rat.One, Rate: rat.New(1, 4), Spread: rat.New(5, 4)},
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	static := CheckStatic(res.Trace, rat.FromInt(2))
	dynamic := CheckDynamic(res.Trace, rat.FromInt(3))
	if static.Admissible {
		t.Log("note: growth too slow to break static Θ=2 in this prefix")
	}
	if !dynamic.Admissible {
		t.Errorf("dynamic Θ=3 rejected growing delays: %s", dynamic.Reason)
	}
}

func TestDynamicTighterThanStatic(t *testing.T) {
	// A slow early message and fast late message never overlap: dynamic
	// admissible, static not.
	b := sim.NewTraceBuilder(2)
	b.WakeAll(rat.Zero)
	b.MsgAt(0, 0, 1, 10, "slow") // delay 10
	b.MsgAt(1, 1, 0, 11, "fast") // delay 1, starts at t=10
	tr := b.MustBuild()
	if r := CheckStatic(tr, rat.FromInt(2)); r.Admissible {
		t.Error("static check accepted ratio-10 delays")
	}
	if r := CheckDynamic(tr, rat.FromInt(2)); !r.Admissible {
		t.Errorf("dynamic check rejected non-overlapping messages: %s", r.Reason)
	}
}

func TestFaultyMessagesExempt(t *testing.T) {
	// Messages from faulty processes are not constrained by Θ.
	b := sim.NewTraceBuilder(2)
	b.SetFaulty(1)
	b.WakeAll(rat.Zero)
	b.MsgAt(0, 0, 1, 1, "correct") // delay 1
	b.MsgAt(1, 1, 0, 50, "faulty") // delay 49, but sender faulty
	if r := CheckStatic(b.MustBuild(), rat.FromInt(2)); !r.Admissible {
		t.Errorf("faulty message constrained: %s", r.Reason)
	}
}

func TestEmptyTrace(t *testing.T) {
	b := sim.NewTraceBuilder(2)
	b.WakeAll(rat.Zero)
	tr := b.MustBuild()
	if r := CheckStatic(tr, rat.FromInt(2)); !r.Admissible || r.Messages != 0 {
		t.Error("empty trace mishandled")
	}
	if r := CheckDynamic(tr, rat.FromInt(2)); !r.Admissible {
		t.Error("empty trace mishandled by dynamic check")
	}
}

// Theorem 9 bridge: the normalized assignment of an admissible ABC graph
// is Θ-admissible for Θ = Ξ, even when the original timing was not
// Θ-admissible for any Θ.
func TestTimeFromAssignment(t *testing.T) {
	fig := scenario.BuildFig1() // contains a zero-delay message
	xi := rat.FromInt(2)
	v, err := check.ABC(fig.Graph, xi)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admissible {
		t.Fatal("Fig.1 not admissible at Ξ=2")
	}
	r := TimeFromAssignment(fig.Graph, v.Assignment, xi)
	if !r.Admissible {
		t.Fatalf("retimed execution not Θ(Ξ)-admissible: %s", r.Reason)
	}
	if r.MinDelay.LessEq(rat.One) || r.MaxDelay.GreaterEq(xi) {
		t.Errorf("assigned delays [%v, %v] outside (1, Ξ)", r.MinDelay, r.MaxDelay)
	}
	// The retimed graph preserves causal order: delays positive on every
	// edge (already guaranteed by Assignment.Validate, asserted here
	// against the theta-view).
	for i, e := range fig.Graph.Edges() {
		if e.Kind == causality.Message && v.Assignment.Delay(causality.EdgeID(i)).Sign() <= 0 {
			t.Fatal("non-positive assigned delay")
		}
	}
}

// Theorem 6 direction at the theta package level: executions passing
// CheckStatic with Θ < Ξ are ABC-admissible.
func TestStaticThetaImpliesABC(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		res, err := sim.Run(sim.Config{
			N:      4,
			Spawn:  broadcastSpawn(4),
			Delays: sim.UniformDelay{Min: rat.One, Max: rat.New(7, 4)},
			Seed:   seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r := CheckStatic(res.Trace, rat.New(7, 4)); !r.Admissible {
			t.Fatalf("seed %d: Θ-scheduled run not Θ-admissible: %s", seed, r.Reason)
		}
		g := causality.Build(res.Trace, causality.Options{})
		v, err := check.ABC(g, rat.FromInt(2))
		if err != nil {
			t.Fatal(err)
		}
		if !v.Admissible {
			t.Fatalf("seed %d: Θ(7/4)-admissible execution not ABC(2)-admissible", seed)
		}
	}
}
