package check

import (
	"errors"

	"repro/internal/causality"
	"repro/internal/rat"
)

// Constrained reports whether the execution graph contains a relevant
// cycle with ratio |Z−|/|Z+| strictly above 1, i.e. whether any Ξ > 1
// exists for which the graph is inadmissible. Graphs without such cycles
// (isolated chains, pure one-way communication, or balanced cycles with
// |Z+| = |Z−|) are ABC-admissible for every Ξ > 1 — the paper's point that
// processes that do not exchange messages are entirely unconstrained.
//
// A relevant ratio is a fraction p/q with p, q bounded by the message
// count K, so any ratio above 1 is at least K/(K−1); one Bellman–Ford run
// at Ξ = K/(K−1) decides the question.
func Constrained(g *causality.Graph) (bool, error) {
	k := int64(g.MessageCount())
	if k < 2 {
		return false, nil // a relevant cycle needs |Z+| >= 1 and |Z−| >= 1
	}
	p, err := newProber(g)
	if err != nil {
		return false, err
	}
	return p.constrained(k)
}

// constrained is Constrained for an already-built prober.
func (p *prober) constrained(k int64) (bool, error) {
	v, err := p.probe(k, k-1, false)
	if err != nil {
		return false, err
	}
	return !v.Admissible, nil
}

// MaxRelevantRatio computes the exact critical ratio of the execution
// graph: the maximum of |Z−|/|Z+| over all relevant cycles Z, provided it
// exceeds 1. The graph is ABC-admissible for Ξ exactly when Ξ > this ratio
// (strictly). found is false when no relevant cycle has ratio above 1, in
// which case the graph is admissible for every Ξ > 1 and imposes no
// constraint (ratio-1 cycles never violate Definition 4 since Ξ > 1).
//
// The ratio is found without enumerating cycles: "some relevant ratio >= x"
// is a monotone predicate decided by one Bellman–Ford run, and the answer
// is a fraction with numerator and denominator bounded by the message
// count K, so a Stern–Brocot descent with galloping locates it exactly
// with O(log² K) oracle calls.
func MaxRelevantRatio(g *causality.Graph) (ratio rat.Rat, found bool, err error) {
	k := int64(g.MessageCount())
	if k < 2 {
		return rat.Zero, false, nil // a relevant cycle needs |Z+| >= 1 and |Z−| >= 1
	}
	if k > 1<<20 {
		return rat.Zero, false, errors.New("check: graph too large for exact ratio search")
	}
	// maxNum caps probe numerators: the answer's numerator is at most k·den
	// with den <= k, and Stern–Brocot neighbors stay within (k+2)², so the
	// cap never cuts off a reachable answer; it only bounds galloping.
	maxNum := (k + 2) * (k + 2)
	// One prober serves every Bellman–Ford probe of the search: the
	// constraint topology is fixed, only weights change per candidate.
	p, err := newProber(g)
	if err != nil {
		return rat.Zero, false, err
	}
	violated := func(num, den int64) (bool, error) {
		v, err := p.probe(num, den, false)
		if err != nil {
			return false, err
		}
		return !v.Admissible, nil
	}

	has, err := p.constrained(k)
	if err != nil {
		return rat.Zero, false, err
	}
	if !has {
		return rat.Zero, false, nil
	}

	// Stern–Brocot descent over the interval [L, R) with the tree's
	// boundary R = 1/0 (infinity). Invariants:
	//   the answer lies in [L, R); not violated(R); violated(L) once L has
	//   moved off its initial 1/1 (and it must move, since the answer
	//   exceeds 1 strictly and has denominator <= k);
	//   L and R are tree-adjacent: pl·qh − ph·ql = −1.
	// Adjacency means the mediant is the unique minimum-denominator
	// fraction strictly inside (L, R); once its denominator exceeds k, no
	// candidate with denominator <= k remains inside and the answer is L.
	pl, ql := int64(1), int64(1)
	ph, qh := int64(1), int64(0)

	const maxIters = 512 // defensive; the walk is O(log² k) in practice
	for iter := 0; ql+qh <= k; iter++ {
		if iter >= maxIters {
			return rat.Zero, false, errors.New("check: Stern–Brocot descent did not converge")
		}
		v, err := violated(pl+ph, ql+qh)
		if err != nil {
			return rat.Zero, false, err
		}
		if v {
			// Move L rightward through L_j = (pl+j·ph)/(ql+j·qh), galloping
			// j while the step stays representable and violated.
			ok := func(j int64) (bool, error) {
				if ql+j*qh > k || pl+j*ph > maxNum {
					return false, nil
				}
				return violated(pl+j*ph, ql+j*qh)
			}
			lo, err := gallop(ok)
			if err != nil {
				return rat.Zero, false, err
			}
			pl, ql = pl+lo*ph, ql+lo*qh
		} else {
			// Move R leftward through R_j = (ph+j·pl)/(qh+j·ql), galloping
			// j while the step stays representable and not violated.
			ok := func(j int64) (bool, error) {
				if ph+j*pl > maxNum || qh+j*ql > maxNum {
					return false, nil
				}
				v, err := violated(ph+j*pl, qh+j*ql)
				if err != nil {
					return false, err
				}
				return !v, nil
			}
			lo, err := gallop(ok)
			if err != nil {
				return rat.Zero, false, err
			}
			ph, qh = ph+lo*pl, qh+lo*ql
		}
	}
	return rat.New(pl, ql), true, nil
}

// gallop finds the largest j >= 1 with ok(j), assuming ok(1) holds and ok
// is monotone (once false, stays false). It doubles j and then binary
// searches, using O(log j) probes.
func gallop(ok func(int64) (bool, error)) (int64, error) {
	j := int64(1)
	for {
		good, err := ok(j * 2)
		if err != nil {
			return 0, err
		}
		if !good {
			break
		}
		j *= 2
	}
	lo, hi := j, j*2 // ok(lo), !ok(hi)
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		good, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if good {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
