package check

import (
	"fmt"
	"sort"

	"repro/internal/causality"
	"repro/internal/sim"
)

// Retime materializes the timed execution graph Gτ of Section 4 as an
// actual trace: the same processes, events and messages as the original
// execution, but with occurrence times replaced by the normalized
// assignment's times. The result is causally equivalent to the original
// (same execution graph) while every message delay lies strictly inside
// (1, Ξ) — the constructive half of the model indistinguishability between
// the ABC model and the Θ-Model (Theorems 7 and 9).
//
// Messages without a message edge in the graph (faulty-sent or exempted)
// carry no delay constraints; when the assignment places their endpoints
// out of order, their send time is clamped to the receive time to keep the
// trace well-formed.
func (a *Assignment) Retime() (*sim.Trace, error) {
	old := a.g.Trace()

	// New time per trace event: every event is a node of the graph (see
	// internal/causality), so every event has an assigned time.
	newTime := make([]sim.Time, len(old.Events))
	for pos := range old.Events {
		newTime[pos] = a.Time(a.g.NodeByEvent(pos))
	}

	// Rebuild messages with shifted send/recv times. Messages without a
	// message edge in the execution graph (faulty-sent or exempted) carry
	// no delay constraints and may need clamping.
	kept := make(map[sim.MsgID]bool)
	for _, e := range a.g.Edges() {
		if e.Kind == causality.Message {
			kept[e.Msg] = true
		}
	}
	msgs := make([]sim.Message, len(old.Msgs))
	recvPosOf := make(map[sim.MsgID]int, len(old.Events))
	for pos, ev := range old.Events {
		recvPosOf[ev.Trigger] = pos
	}
	for i, m := range old.Msgs {
		nm := m
		if m.IsWakeup() {
			if pos, ok := recvPosOf[m.ID]; ok {
				nm.SendTime = newTime[pos]
				nm.RecvTime = newTime[pos]
			}
			msgs[i] = nm
			continue
		}
		dropped := !kept[m.ID]
		if pos, ok := recvPosOf[m.ID]; ok {
			nm.RecvTime = newTime[pos]
		}
		if sendPos := old.EventAt(m.From, m.SendStep); sendPos >= 0 {
			nm.SendTime = newTime[sendPos]
		}
		if nm.RecvTime.Less(nm.SendTime) {
			if !dropped {
				return nil, fmt.Errorf("check: retime produced negative delay for kept message %d", i)
			}
			// The message is exempt from the model (faulty sender or
			// explicitly dropped): the assignment gives its endpoints no
			// consistent times, so clamp the send to keep the trace
			// well-formed. Exempt messages carry no delay constraints.
			nm.SendTime = nm.RecvTime
		}
		msgs[i] = nm
	}

	// Re-order events globally by (new time, original order) and rebuild.
	order := make([]int, len(old.Events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return newTime[order[i]].Less(newTime[order[j]])
	})
	events := make([]sim.Event, len(old.Events))
	for newPos, oldPos := range order {
		ev := old.Events[oldPos]
		ev.Time = newTime[oldPos]
		events[newPos] = ev
	}
	out, err := sim.Reassemble(old.N, events, msgs, old.Faulty)
	if err != nil {
		return nil, fmt.Errorf("check: retime: %w", err)
	}
	return out, nil
}
