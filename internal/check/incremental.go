package check

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/causality"
	"repro/internal/rat"
	"repro/internal/sim"
)

// Incremental is a streaming admissibility monitor: it decides the ABC
// synchrony condition (Definition 4) for a fixed Ξ over a growing trace,
// at a cost proportional to what changed rather than to the whole trace.
//
// The batch checker re-solves the full difference-constraint system with
// Bellman–Ford (O(V·E)) on every call. Incremental instead keeps the
// constraint digraph and a feasible potential alive across appends:
//
//   - Constraint weights are lexicographic pairs (m, k): m accumulates the
//     integer bound of the constraint scaled by b (working in x = b·t, the
//     upper bound contributes +a, the lower bound −b, local edges 0) and k
//     counts strict tightenings (−1 per edge). A cycle violates the system
//     exactly when its pair sum is lexicographically negative — strictness
//     handled without the batch checker's global E+1 scale, which would
//     change on every append and invalidate all existing weights. Pair
//     weights never change once written, which is what makes the system
//     append-only.
//   - Each new constraint arc is inserted with a Cotton–Maler repair
//     (SAT-solver-style incremental difference-constraint propagation):
//     the previous potential makes every old arc's reduced cost
//     non-negative, so a Dijkstra over reduced costs starting at the new
//     arc's head repairs the potential touching only the affected region,
//     ~O(affected·log affected) per arc. Popping the new arc's tail proves
//     a lexicographically negative cycle through the arc — infeasibility.
//   - On infeasibility the engine falls back once to the exact batch
//     Yen-sweep Bellman–Ford prober to extract the violating relevant
//     cycle (Theorem 7 witness), then latches: the graph only grows, and
//     inadmissibility is monotone under growth.
//
// Arc insertions follow event order, so the first infeasible insertion
// identifies the exact minimal trace prefix whose execution graph is
// inadmissible (FailedAt), even when Step consumes events in batches.
//
// An Incremental is not safe for concurrent use.
type Incremental struct {
	bld  *causality.Builder
	xi   rat.Rat
	a, b int64

	// out is the constraint digraph's out-adjacency; dist the feasible
	// potential (super-source semantics: new nodes start at (0, 0)).
	out  [][]carc
	dist []pair

	// Dijkstra repair scratch, generation-stamped so per-repair resets are
	// O(affected), not O(V).
	cand    []pair
	candGen []uint32
	doneGen []uint32
	gen     uint32
	heap    []repairItem

	infeasible bool
	verdict    Verdict
	failedAt   int
}

// pair is a lexicographic (m, k) weight/distance.
type pair struct{ m, k int64 }

func (p pair) less(q pair) bool { return p.m < q.m || (p.m == q.m && p.k < q.k) }

// carc is one constraint arc: head node and the m component of its weight
// (every arc's k component is −1).
type carc struct {
	to int32
	m  int64
}

type repairItem struct {
	key  pair // γ = candidate − dist, lexicographically negative
	node int32
}

// NewIncremental returns a monitor for ABC(Ξ) over t, which may be empty,
// a prefix, or complete; Step consumes whatever has been appended since
// the last call. The trace must grow in causal delivery order (anything
// the simulator produces does; see causality.Builder).
func NewIncremental(t *sim.Trace, xi rat.Rat, opts causality.Options) (*Incremental, error) {
	if !xi.Greater(rat.One) {
		return nil, ErrXiOutOfRange
	}
	bld, err := causality.NewBuilder(t, opts)
	if err != nil {
		return nil, err
	}
	return &Incremental{
		bld:      bld,
		xi:       xi,
		a:        xi.Num(),
		b:        xi.Den(),
		failedAt: -1,
	}, nil
}

// Step consumes the trace events appended since the last call and returns
// the verdict for the graph so far. Admissible verdicts carry no
// assignment (use Certify); inadmissible verdicts carry the witness cycle
// and are latched — the trace can only grow, and growth never removes a
// violating cycle.
func (inc *Incremental) Step() (Verdict, error) {
	if inc.infeasible {
		return inc.verdict, nil
	}
	g := inc.bld.Graph()
	prevE := g.NumEdges()
	if _, err := inc.bld.Append(); err != nil {
		return Verdict{}, err
	}
	v := int64(g.NumNodes())
	maxW := inc.a
	if inc.b > maxW {
		maxW = inc.b
	}
	// Overflow guard for the pair arithmetic: every m value is a walk sum,
	// |m| <= (V+1)·max(a,b), and the repair heap keys subtract two such
	// values. Guard 4·(V+2)·max(a,b) once per step.
	if maxW > math.MaxInt64/4/(v+2) {
		return Verdict{}, fmt.Errorf("check: graph too large for exact int64 arithmetic (V=%d, Ξ=%d/%d)", v, inc.a, inc.b)
	}

	for int64(len(inc.dist)) < v {
		inc.dist = append(inc.dist, pair{})
		inc.out = append(inc.out, nil)
		inc.cand = append(inc.cand, pair{})
		inc.candGen = append(inc.candGen, 0)
		inc.doneGen = append(inc.doneGen, 0)
	}

	// New edges arrive grouped by their head — every edge's To is that
	// batch event's fresh node (local edge first, then the message edge,
	// in builder order). Before inserting a node's arcs, seed its
	// potential at the highest feasible value: the message upper bound
	// dist[sender] + (a, −1) when it has one, one message-width above its
	// local predecessor otherwise. A fresh node's potential is a free
	// choice (it has no arcs yet), and seeding high leaves the lower-bound
	// arcs slack, so the common insert is a no-op instead of a repair
	// cascade through the node's whole causal past.
	edges := g.Edges()
	for i := prevE; i < len(edges); {
		node := edges[i].To
		j := i
		seed := pair{}
		seeded := false
		for ; j < len(edges) && edges[j].To == node; j++ {
			from := edges[j].From
			if edges[j].Kind == causality.Message {
				// At most one incoming message per event; its upper bound
				// caps the node, overriding any local-based seed.
				seed = pair{inc.dist[from].m + inc.a, inc.dist[from].k - 1}
				seeded = true
				break
			}
			if !seeded {
				seed = pair{inc.dist[from].m + inc.a, inc.dist[from].k - 1}
				seeded = true
			}
		}
		for ; j < len(edges) && edges[j].To == node; j++ {
		}
		inc.dist[node] = seed

		for ; i < j; i++ {
			e := edges[i]
			feasible := true
			switch e.Kind {
			case causality.Message:
				// 1 < t(v) − t(u) < a/b: upper arc u→v with m=+a, lower
				// arc v→u with m=−b.
				feasible = inc.insert(int32(e.From), carc{to: int32(e.To), m: inc.a}) &&
					inc.insert(int32(e.To), carc{to: int32(e.From), m: -inc.b})
			case causality.Local:
				// t(v) − t(u) > 0: arc v→u with m=0.
				feasible = inc.insert(int32(e.To), carc{to: int32(e.From), m: 0})
			default:
				return Verdict{}, fmt.Errorf("check: unknown edge kind %v", e.Kind)
			}
			if !feasible {
				inc.failedAt = g.Node(e.To).TracePos
				return inc.fallback(g)
			}
		}
	}
	inc.verdict = Verdict{Admissible: true}
	return inc.verdict, nil
}

// insert adds the constraint arc tail→a and repairs the potential.
// It reports false when the arc closes a lexicographically negative cycle
// (the system became infeasible).
func (inc *Incremental) insert(tail int32, a carc) bool {
	inc.out[tail] = append(inc.out[tail], a)
	nd := pair{inc.dist[tail].m + a.m, inc.dist[tail].k - 1}
	if !nd.less(inc.dist[a.to]) {
		return true // potential already satisfies the new arc
	}
	return inc.repair(tail, a.to, nd)
}

// repair restores d(x) <= d(u) + w(u, x) for all arcs after inserting
// tail→head with candidate head value nd < d(head). It is a Dijkstra over
// reduced costs: for old arcs (x, y), w + d(x) − d(y) >= 0, so the
// improvement γ(y) = cand(y) − d(y) is non-decreasing along propagation
// paths and nodes finalize in γ order, each at most once. Reaching the
// inserted arc's tail with an improvement means the new arc would relax
// again — a negative cycle through it — and repair reports false.
func (inc *Incremental) repair(tail, head int32, nd pair) bool {
	inc.gen++
	gen := inc.gen
	inc.cand[head] = nd
	inc.candGen[head] = gen
	inc.heap = inc.heap[:0]
	inc.push(repairItem{key: pair{nd.m - inc.dist[head].m, nd.k - inc.dist[head].k}, node: head})

	for len(inc.heap) > 0 {
		it := inc.pop()
		x := it.node
		if inc.doneGen[x] == gen || inc.candGen[x] != gen {
			continue // already finalized, or a leftover from no queue entry
		}
		// dist[x] is untouched until x finalizes, so the pushed key still
		// reconstructs its candidate; a mismatch means a better candidate
		// superseded this entry (lazy decrease-key).
		if (pair{it.key.m + inc.dist[x].m, it.key.k + inc.dist[x].k}) != inc.cand[x] {
			continue
		}
		if x == tail {
			return false // the new arc relaxes again: negative cycle
		}
		inc.doneGen[x] = gen
		inc.dist[x] = inc.cand[x]
		dx := inc.dist[x]
		for _, arc := range inc.out[x] {
			y := arc.to
			if inc.doneGen[y] == gen {
				continue
			}
			c := pair{dx.m + arc.m, dx.k - 1}
			if !c.less(inc.dist[y]) {
				continue
			}
			if inc.candGen[y] == gen && !c.less(inc.cand[y]) {
				continue
			}
			inc.cand[y] = c
			inc.candGen[y] = gen
			inc.push(repairItem{key: pair{c.m - inc.dist[y].m, c.k - inc.dist[y].k}, node: y})
		}
	}
	return true
}

// fallback extracts the witness cycle with the exact batch prober once the
// incremental potential proves infeasibility, and latches the verdict.
func (inc *Incremental) fallback(g *causality.Graph) (Verdict, error) {
	p, err := newProber(g)
	if err != nil {
		return Verdict{}, err
	}
	v, err := p.probe(inc.a, inc.b, true)
	if err != nil {
		return Verdict{}, err
	}
	if v.Admissible {
		return Verdict{}, errors.New("check: internal error: incremental engine infeasible but batch checker admissible")
	}
	inc.infeasible = true
	inc.verdict = v
	return inc.verdict, nil
}

// Certify returns the current verdict with certificates materialized: for
// an admissible graph, a normalized delay assignment (Theorem 7) built
// from the live potential in O(V); for an inadmissible one, the latched
// witness verdict.
func (inc *Incremental) Certify() (Verdict, error) {
	if inc.infeasible {
		return inc.verdict, nil
	}
	g := inc.bld.Graph()
	n := int64(g.NumNodes())
	// Convert pair potentials to exact rationals: x(v) = m(v) + k(v)·ε
	// with ε = 1/S for any S > max|k_i − k_j| keeps every strict
	// inequality strict, and t = x/b. S is derived from the live
	// potential, so the bound is tight rather than worst-case.
	var maxM, maxK int64
	for _, d := range inc.dist[:n] {
		if a := abs64(d.m); a > maxM {
			maxM = a
		}
		if a := abs64(d.k); a > maxK {
			maxK = a
		}
	}
	s := 2*maxK + 3
	if maxM > (math.MaxInt64-maxK)/s || inc.b > math.MaxInt64/s {
		return Verdict{}, fmt.Errorf("check: potential too large for exact certificate (V=%d, Ξ=%d/%d)", n, inc.a, inc.b)
	}
	scaled := make([]int64, n)
	for i, d := range inc.dist[:n] {
		scaled[i] = d.m*s + d.k
	}
	return Verdict{Admissible: true, Assignment: newAssignment(g, scaled, inc.b*s)}, nil
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Verdict returns the most recent Step verdict.
func (inc *Incremental) Verdict() Verdict { return inc.verdict }

// FailedAt returns the position in Trace.Events of the earliest event
// whose prefix graph is inadmissible, or -1 while the graph is admissible.
func (inc *Incremental) FailedAt() int { return inc.failedAt }

// Graph returns the execution graph built so far, with its adjacency
// finalized so the snapshot is safe to read concurrently — as long as no
// further Step interleaves with those reads.
func (inc *Incremental) Graph() *causality.Graph { return inc.bld.Finalize() }

// Trace returns the monitored trace.
func (inc *Incremental) Trace() *sim.Trace { return inc.bld.Graph().Trace() }

// push/pop implement a binary min-heap over lexicographic γ keys without
// interface indirection.
func (inc *Incremental) push(it repairItem) {
	h := append(inc.heap, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].key.less(h[parent].key) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	inc.heap = h
}

func (inc *Incremental) pop() repairItem {
	h := inc.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].key.less(h[small].key) {
			small = l
		}
		if r < len(h) && h[r].key.less(h[small].key) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	inc.heap = h
	return top
}
