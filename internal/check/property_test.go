package check

import (
	"testing"
	"testing/quick"

	"repro/internal/causality"
	"repro/internal/rat"
	"repro/internal/sim"
)

func randomTrace(seed int64) *sim.Trace {
	if seed < 0 {
		seed = -seed
	}
	res, err := sim.Run(sim.Config{
		N: 3 + int(seed%2),
		Spawn: func(p sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < 3 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays: sim.UniformDelay{Min: rat.One, Max: rat.FromInt(2)},
		Seed:   seed,
	})
	if err != nil {
		panic(err)
	}
	return res.Trace
}

// Property (Theorem 9, strong form): retiming an admissible execution with
// its normalized assignment yields a causally equivalent trace — same
// critical ratio, still admissible, all message delays inside (1, Ξ).
func TestRetimeRoundTripProperty(t *testing.T) {
	xi := rat.FromInt(3)
	f := func(seed int64) bool {
		tr := randomTrace(seed)
		g := causality.Build(tr, causality.Options{})
		v, err := ABC(g, xi)
		if err != nil || !v.Admissible {
			// Ratio-2 scheduling is always admissible at Ξ=3 (Thm. 6);
			// treat an inadmissible run as a property failure.
			return false
		}
		retimed, err := v.Assignment.Retime()
		if err != nil {
			return false
		}
		g2 := causality.Build(retimed, causality.Options{})
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		r1, f1, err := MaxRelevantRatio(g)
		if err != nil {
			return false
		}
		r2, f2, err := MaxRelevantRatio(g2)
		if err != nil {
			return false
		}
		if f1 != f2 || (f1 && !r1.Equal(r2)) {
			return false
		}
		for _, m := range retimed.Msgs {
			if m.IsWakeup() {
				continue
			}
			d := m.RecvTime.Sub(m.SendTime)
			if !d.Greater(rat.One) || !d.Less(xi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: the checker's verdict is monotone in Ξ — admissible at Ξ
// implies admissible at every larger Ξ'.
func TestAdmissibilityMonotoneProperty(t *testing.T) {
	xis := []rat.Rat{rat.New(5, 4), rat.New(3, 2), rat.FromInt(2), rat.FromInt(3), rat.FromInt(5)}
	f := func(seed int64) bool {
		tr := randomTrace(seed)
		g := causality.Build(tr, causality.Options{})
		prev := false
		for _, xi := range xis {
			v, err := ABC(g, xi)
			if err != nil {
				return false
			}
			if prev && !v.Admissible {
				return false // monotonicity violated
			}
			prev = v.Admissible
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the critical ratio is exactly the admissibility threshold —
// inadmissible at Ξ = ratio, admissible just above it.
func TestCriticalRatioThresholdProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(seed)
		g := causality.Build(tr, causality.Options{})
		ratio, found, err := MaxRelevantRatio(g)
		if err != nil {
			return false
		}
		if !found {
			return true
		}
		if ratio.Greater(rat.One) {
			at, err := ABC(g, ratio)
			if err != nil || at.Admissible {
				return false // must violate exactly at the ratio
			}
		}
		above := ratio.Add(rat.New(1, 1000))
		v, err := ABC(g, above)
		return err == nil && v.Admissible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Restricting the synchrony condition to a subset of processes (the
// WTL-style weakening sketched in Sections 2 and 6) only removes
// constraints: the restricted graph's critical ratio never exceeds the
// full one.
func TestRestrictedConditionWeakensModel(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := randomTrace(seed)
		full := causality.Build(tr, causality.Options{})
		restricted := causality.Build(tr, causality.Options{
			DropMessage: func(m sim.Message) bool {
				// Exempt everything not between processes 0 and 1.
				return m.From > 1 || m.To > 1
			},
		})
		rFull, foundFull, err := MaxRelevantRatio(full)
		if err != nil {
			t.Fatal(err)
		}
		rRestr, foundRestr, err := MaxRelevantRatio(restricted)
		if err != nil {
			t.Fatal(err)
		}
		if foundRestr && !foundFull {
			t.Fatalf("seed %d: restriction created constraints", seed)
		}
		if foundRestr && foundFull && rRestr.Greater(rFull) {
			t.Fatalf("seed %d: restricted ratio %v exceeds full %v", seed, rRestr, rFull)
		}
	}
}
