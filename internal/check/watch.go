package check

import (
	"errors"

	"repro/internal/causality"
	"repro/internal/rat"
	"repro/internal/sim"
)

// ErrInadmissible is the sentinel with which Watcher.Monitor stops a
// simulation at the first admissibility violation. It lands in
// sim.Result.MonitorErr.
var ErrInadmissible = errors.New("check: execution became ABC-inadmissible")

// Watcher adapts the incremental admissibility engine to the simulator's
// online-monitor hook (sim.Config.Monitor): the execution graph and the
// constraint potential grow with the run, and the run is aborted the
// moment the ABC condition first fails. A Watcher serves one run; give
// each job its own.
type Watcher struct {
	xi   rat.Rat
	opts causality.Options
	inc  *Incremental
}

// NewWatcher returns a watcher for ABC(Ξ). The incremental engine binds
// to the run's trace on the first Monitor call.
func NewWatcher(xi rat.Rat, opts causality.Options) (*Watcher, error) {
	if !xi.Greater(rat.One) {
		return nil, ErrXiOutOfRange
	}
	return &Watcher{xi: xi, opts: opts}, nil
}

// Monitor is the sim.Config.Monitor hook. It returns ErrInadmissible at
// the first event whose prefix graph violates the synchrony condition,
// stopping the run.
func (w *Watcher) Monitor(t *sim.Trace) error {
	if w.inc == nil {
		inc, err := NewIncremental(t, w.xi, w.opts)
		if err != nil {
			return err
		}
		w.inc = inc
	} else if w.inc.Trace() != t {
		return errors.New("check: Watcher reused across runs; create one per run")
	}
	v, err := w.inc.Step()
	if err != nil {
		return err
	}
	if !v.Admissible {
		return ErrInadmissible
	}
	return nil
}

// Verdict returns the final verdict: the witness-carrying inadmissible
// verdict if the run was aborted, otherwise the admissible verdict.
// It returns a zero Verdict when Monitor never ran (an empty run).
func (w *Watcher) Verdict() Verdict {
	if w.inc == nil {
		return Verdict{Admissible: true}
	}
	return w.inc.Verdict()
}

// FirstViolation returns the position in Trace.Events of the earliest
// event whose prefix graph is inadmissible, -1 when the run stayed
// admissible.
func (w *Watcher) FirstViolation() int {
	if w.inc == nil {
		return -1
	}
	return w.inc.FailedAt()
}

// Graph returns the execution graph built during the run, or nil when
// Monitor never ran.
func (w *Watcher) Graph() *causality.Graph {
	if w.inc == nil {
		return nil
	}
	return w.inc.Graph()
}
