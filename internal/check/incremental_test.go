package check

import (
	"fmt"
	"testing"

	"repro/internal/causality"
	"repro/internal/cycles"
	"repro/internal/rat"
	"repro/internal/sim"
)

// prefixTrace materializes the first j events of tr as a standalone,
// validated trace — what a batch user re-checking a grown execution from
// scratch would construct.
func prefixTrace(t testing.TB, tr *sim.Trace, j int) *sim.Trace {
	t.Helper()
	events := make([]sim.Event, j)
	copy(events, tr.Events[:j])
	sub, err := sim.Reassemble(tr.N, events, tr.Msgs, tr.Faulty)
	if err != nil {
		t.Fatalf("prefix %d: %v", j, err)
	}
	return sub
}

// shellFor returns a trace view sharing tr's messages and fault vector
// whose Events slice the caller truncates to feed an Incremental step by
// step, replaying the growth of a finished trace.
func shellFor(tr *sim.Trace) *sim.Trace {
	return &sim.Trace{N: tr.N, Msgs: tr.Msgs, Faulty: tr.Faulty}
}

// checkAgreement compares the incremental verdict against a batch
// recheck-from-scratch of the same prefix and validates both certificates.
func checkAgreement(t *testing.T, ctx string, tr *sim.Trace, j int, inc *Incremental, v Verdict, xi rat.Rat) {
	t.Helper()
	sub := prefixTrace(t, tr, j)
	bg := causality.Build(sub, causality.Options{})
	bv, err := ABC(bg, xi)
	if err != nil {
		t.Fatalf("%s: batch ABC: %v", ctx, err)
	}
	if bv.Admissible != v.Admissible {
		t.Fatalf("%s: incremental admissible=%v, batch=%v", ctx, v.Admissible, bv.Admissible)
	}
	if v.Admissible {
		cert, err := inc.Certify()
		if err != nil {
			t.Fatalf("%s: Certify: %v", ctx, err)
		}
		if err := cert.Assignment.Validate(xi); err != nil {
			t.Fatalf("%s: incremental assignment invalid: %v", ctx, err)
		}
		return
	}
	// Both witnesses must be relevant cycles at or above Ξ; they need not
	// be the same cycle.
	for _, w := range []struct {
		name string
		v    Verdict
	}{{"incremental", v}, {"batch", bv}} {
		if w.v.Witness == nil {
			t.Fatalf("%s: %s verdict has no witness", ctx, w.name)
		}
		cl := cycles.Classify(*w.v.Witness)
		if !cl.Relevant {
			t.Fatalf("%s: %s witness not relevant: %v", ctx, w.name, *w.v.Witness)
		}
		if cl.Ratio().Less(xi) {
			t.Fatalf("%s: %s witness ratio %v below Ξ=%v", ctx, w.name, cl.Ratio(), xi)
		}
	}
	if fa := inc.FailedAt(); fa < 0 || fa >= j {
		t.Fatalf("%s: FailedAt = %d outside prefix [0,%d)", ctx, fa, j)
	}
}

// TestIncrementalDifferential replays randomized executions through the
// incremental engine under many append schedules and cross-checks every
// checkpoint against the batch checker: same verdict, valid certificates
// on both sides (witness relevance and ratio, assignment strictness).
// The grid spans seed × topology × delay policy × Ξ × append chunk and
// exceeds 10k schedules in full mode (CI runs it under -race; -short
// trims the seed axis).
func TestIncrementalDifferential(t *testing.T) {
	type topo struct {
		name string
		fn   func(n int) sim.Topology
	}
	topos := []topo{
		{"full", func(int) sim.Topology { return nil }},
		{"ring", func(n int) sim.Topology {
			return sim.TopologyFunc(func(from, to sim.ProcessID) bool {
				return to == (from+1)%sim.ProcessID(n) || to == from
			})
		}},
		{"star", func(n int) sim.Topology {
			return sim.TopologyFunc(func(from, to sim.ProcessID) bool {
				return from == 0 || to == 0 || from == to
			})
		}},
		{"pair", func(n int) sim.Topology {
			return sim.TopologyFunc(func(from, to sim.ProcessID) bool { return from/2 == to/2 })
		}},
	}
	delays := []struct {
		name   string
		policy sim.DelayPolicy
	}{
		{"tight", sim.UniformDelay{Min: rat.One, Max: rat.New(9, 8)}},
		{"wide", sim.UniformDelay{Min: rat.One, Max: rat.FromInt(3)}},
		{"zeroish", sim.UniformDelay{Min: rat.Zero, Max: rat.New(1, 2)}},
		{"constant", sim.ConstantDelay{D: rat.One}},
		{"growing", sim.GrowingDelay{Base: rat.One, Rate: rat.New(1, 4), Spread: rat.New(3, 2)}},
	}
	xis := []rat.Rat{rat.New(9, 8), rat.New(3, 2), rat.FromInt(2), rat.FromInt(3), rat.New(5, 4)}
	chunks := []int{1, 7}
	seeds := 50
	if testing.Short() {
		seeds = 5
	}

	engine := sim.NewEngine()
	schedules, violations := 0, 0
	for _, tp := range topos {
		for _, dl := range delays {
			for xiIdx, xi := range xis {
				for _, chunk := range chunks {
					for seed := 0; seed < seeds; seed++ {
						n := 2 + (seed+xiIdx)%3
						res, err := engine.Run(sim.Config{
							N: n,
							Spawn: func(p sim.ProcessID) sim.Process {
								return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
									if env.StepIndex() < 4 {
										env.Broadcast(env.StepIndex())
									}
								})
							},
							Delays:    dl.policy,
							Topology:  tp.fn(n),
							Seed:      int64(seed)*7919 + int64(xiIdx),
							MaxEvents: 40,
						})
						if err != nil {
							t.Fatal(err)
						}
						tr := res.Trace
						schedules++

						shell := shellFor(tr)
						inc, err := NewIncremental(shell, xi, causality.Options{})
						if err != nil {
							t.Fatal(err)
						}
						for j := chunk; ; j += chunk {
							if j > len(tr.Events) {
								j = len(tr.Events)
							}
							shell.Events = tr.Events[:j]
							v, err := inc.Step()
							if err != nil {
								t.Fatal(err)
							}
							ctx := fmt.Sprintf("topo=%s delay=%s xi=%v chunk=%d seed=%d prefix=%d",
								tp.name, dl.name, xi, chunk, seed, j)
							checkAgreement(t, ctx, tr, j, inc, v, xi)
							if !v.Admissible {
								violations++
								// The engine latches; the monitor would have
								// aborted the run here.
								break
							}
							if j == len(tr.Events) {
								break
							}
						}
					}
				}
			}
		}
	}
	t.Logf("%d schedules, %d ended inadmissible", schedules, violations)
	if min := 10000; !testing.Short() && schedules < min {
		t.Fatalf("grid produced %d schedules, want >= %d", schedules, min)
	}
	if violations == 0 || violations == schedules {
		t.Fatalf("degenerate grid: %d/%d violations — both verdict classes must be exercised", violations, schedules)
	}
}

// TestIncrementalFailedAtIsMinimal pins FailedAt exactness: the reported
// position must be the minimal prefix whose batch check fails, found
// independently by bisection (inadmissibility is monotone under growth).
func TestIncrementalFailedAtIsMinimal(t *testing.T) {
	engine := sim.NewEngine()
	found := 0
	for seed := int64(0); seed < 30; seed++ {
		res, err := engine.Run(sim.Config{
			N: 3,
			Spawn: func(p sim.ProcessID) sim.Process {
				return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
					if env.StepIndex() < 5 {
						env.Broadcast(env.StepIndex())
					}
				})
			},
			Delays:    sim.UniformDelay{Min: rat.One, Max: rat.FromInt(3)},
			Seed:      seed,
			MaxEvents: 60,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := res.Trace
		xi := rat.New(3, 2)

		shell := shellFor(tr)
		inc, err := NewIncremental(shell, xi, causality.Options{})
		if err != nil {
			t.Fatal(err)
		}
		shell.Events = tr.Events
		v, err := inc.Step()
		if err != nil {
			t.Fatal(err)
		}
		if v.Admissible {
			continue
		}
		found++

		admissibleAt := func(j int) bool {
			bg := causality.Build(prefixTrace(t, tr, j), causality.Options{})
			bv, err := ABC(bg, xi)
			if err != nil {
				t.Fatal(err)
			}
			return bv.Admissible
		}
		lo, hi := 0, len(tr.Events) // admissibleAt(lo), !admissibleAt(hi)
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if admissibleAt(mid) {
				lo = mid
			} else {
				hi = mid
			}
		}
		if want := hi - 1; inc.FailedAt() != want {
			t.Fatalf("seed %d: FailedAt = %d, bisection says first failing event is %d", seed, inc.FailedAt(), want)
		}
	}
	if found == 0 {
		t.Fatal("no inadmissible execution in the sweep; workload too tame")
	}
}

// TestWatcherAbortsRun wires the watcher into a live simulation and checks
// the run stops at the violation, with MonitorErr set and the partial
// trace ending exactly at the first failing event.
func TestWatcherAbortsRun(t *testing.T) {
	xi := rat.New(3, 2)
	cfg := sim.Config{
		N: 3,
		Spawn: func(p sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < 5 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays:    sim.UniformDelay{Min: rat.One, Max: rat.FromInt(3)},
		MaxEvents: 60,
	}
	aborted := 0
	for seed := int64(0); seed < 20; seed++ {
		cfg.Seed = seed
		w, err := NewWatcher(xi, causality.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Monitor = w.Monitor
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.MonitorErr == nil {
			if w.FirstViolation() != -1 || !w.Verdict().Admissible {
				t.Fatalf("seed %d: clean run but watcher reports violation", seed)
			}
			continue
		}
		aborted++
		if res.MonitorErr != ErrInadmissible {
			t.Fatalf("seed %d: MonitorErr = %v", seed, res.MonitorErr)
		}
		if got, want := w.FirstViolation(), len(res.Trace.Events)-1; got != want {
			t.Fatalf("seed %d: aborted at event %d but FirstViolation = %d", seed, want, got)
		}
		if w.Verdict().Admissible || w.Verdict().Witness == nil {
			t.Fatalf("seed %d: aborted run lacks witness verdict", seed)
		}
		// The full (unmonitored) run of the same seed must also be
		// inadmissible — aborting cannot invent violations.
		cfg2 := cfg
		cfg2.Monitor = nil
		full, err := sim.Run(cfg2)
		if err != nil {
			t.Fatal(err)
		}
		bv, err := ABC(causality.Build(full.Trace, causality.Options{}), xi)
		if err != nil {
			t.Fatal(err)
		}
		if bv.Admissible {
			t.Fatalf("seed %d: watcher aborted but full run is admissible", seed)
		}
	}
	if aborted == 0 {
		t.Fatal("no watcher abort in the sweep; workload too tame")
	}
}

// TestWatcherReuseRejected pins the one-run-per-watcher contract.
func TestWatcherReuseRejected(t *testing.T) {
	w, err := NewWatcher(rat.FromInt(2), causality.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		N:       1,
		Spawn:   func(sim.ProcessID) sim.Process { return sim.ProcessFunc(func(*sim.Env, sim.Message) {}) },
		Delays:  sim.ConstantDelay{D: rat.One},
		Monitor: w.Monitor,
	}
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MonitorErr == nil {
		t.Fatal("second run with the same watcher not rejected")
	}
}

// TestIncrementalOnScenarios replays the paper's hand-built figures event
// by event: Fig. 3's violating cycle must flip the incremental verdict at
// the position of ψ's closing event, Fig. 4 must stay admissible.
func TestIncrementalOnScenarios(t *testing.T) {
	xi := rat.FromInt(2)
	t.Run("fig3", func(t *testing.T) {
		// Rebuild Fig. 3 via the scenario's trace (import cycle keeps the
		// scenario package out; replay its trace shape directly).
		b := sim.NewTraceBuilder(3)
		b.WakeAll(rat.Zero)
		b.MsgAt(0, 0, 1, 1, "ping1")
		b.MsgAt(0, 0, 2, 1, "query")
		b.MsgAt(1, 1, 0, 2, "pong1")
		b.MsgAt(0, 1, 1, 3, "ping2")
		b.MsgAt(1, 2, 0, 4, "pong2")
		b.MsgAt(2, 1, 0, 6, "reply")
		tr := b.MustBuild()

		shell := shellFor(tr)
		inc, err := NewIncremental(shell, xi, causality.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j <= len(tr.Events); j++ {
			shell.Events = tr.Events[:j]
			v, err := inc.Step()
			if err != nil {
				t.Fatal(err)
			}
			if wantAdm := j < len(tr.Events); v.Admissible != wantAdm {
				t.Fatalf("prefix %d: admissible=%v, want %v", j, v.Admissible, wantAdm)
			}
		}
		if got, want := inc.FailedAt(), len(tr.Events)-1; got != want {
			t.Fatalf("FailedAt = %d, want %d (the reply's receive event)", got, want)
		}
		cl := cycles.Classify(*inc.Verdict().Witness)
		if !cl.Relevant || cl.Ratio().Less(xi) {
			t.Fatalf("witness classification %+v", cl)
		}
	})
	t.Run("fig4", func(t *testing.T) {
		b := sim.NewTraceBuilder(3)
		b.WakeAll(rat.Zero)
		b.MsgAt(0, 0, 1, 1, "ping1")
		b.MsgAt(0, 0, 2, 1, "query")
		b.MsgAt(1, 1, 0, 2, "pong1")
		b.MsgAt(0, 1, 1, 3, "ping2")
		b.Msg(2, 1, 0, rat.New(7, 2), "reply")
		b.MsgAt(1, 2, 0, 4, "pong2")
		tr := b.MustBuild()

		shell := shellFor(tr)
		inc, err := NewIncremental(shell, xi, causality.Options{})
		if err != nil {
			t.Fatal(err)
		}
		shell.Events = tr.Events
		v, err := inc.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !v.Admissible {
			t.Fatal("Fig. 4 (timely reply) must stay admissible")
		}
		cert, err := inc.Certify()
		if err != nil {
			t.Fatal(err)
		}
		if err := cert.Assignment.Validate(xi); err != nil {
			t.Fatal(err)
		}
	})
}
