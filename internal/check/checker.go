// Package check decides ABC admissibility (Definition 4) of execution
// graphs and produces certificates either way:
//
//   - when the graph is admissible, a normalized delay assignment τ with
//     1 < τ(message) < Ξ and τ(local) > 0 whose existence is the content of
//     Theorem 7/Theorem 12 — returned as concrete exact rationals;
//   - when it is not, a violating relevant cycle Z with |Z−|/|Z+| >= Ξ.
//
// The checker avoids enumerating the exponentially many cycles by the
// observation (proved in the paper via Farkas' lemma, and elementary in the
// converse direction) that the ABC condition holds if and only if the
// strict difference-constraint system over event occurrence times
//
//	1 < t(v) − t(u) < Ξ   for every message edge (u, v)
//	0 < t(v) − t(u)       for every local edge (u, v)
//
// is feasible. Feasibility of difference constraints is the absence of a
// negative cycle in the constraint digraph. Strict inequalities and the
// rational Ξ = a/b are handled exactly by scaling: all times are multiplied
// by b·(E+1), where E is the number of constraint-relevant edges, making
// every constant an integer, and each strict bound is tightened by 1. Any
// simple cycle has at most E edges, so the accumulated tightenings (at most
// E) can never flip the sign of a scaled integer sum (multiples of E+1).
//
// A negative cycle in the constraint digraph maps back to a relevant cycle
// violating Definition 4: upper-bound edges are its forward messages,
// lower-bound edges its backward messages, and local edges are only ever
// traversable backward — precisely the relevance condition of Definition 3.
package check

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/causality"
	"repro/internal/cycles"
	"repro/internal/graphutil"
	"repro/internal/rat"
)

// ErrXiOutOfRange is returned when Ξ <= 1 (the ABC model requires Ξ > 1;
// see footnote 16 of the paper).
var ErrXiOutOfRange = errors.New("check: Ξ must be a rational > 1")

// Verdict is the outcome of an admissibility check.
type Verdict struct {
	// Admissible reports whether every relevant cycle Z satisfies
	// |Z−|/|Z+| < Ξ.
	Admissible bool
	// Witness is a violating relevant cycle when Admissible is false.
	Witness *cycles.Cycle
	// WitnessClass is the Definition 3 classification of Witness.
	WitnessClass cycles.Class
	// Assignment is a normalized delay assignment when Admissible is true
	// (Theorem 7).
	Assignment *Assignment
}

// ABC checks the execution graph against the ABC synchrony condition for
// the given Ξ. It runs in O(V·E) time and is exact.
func ABC(g *causality.Graph, xi rat.Rat) (Verdict, error) {
	if !xi.Greater(rat.One) {
		return Verdict{}, ErrXiOutOfRange
	}
	a, b := xi.Num(), xi.Den()
	p, err := newProber(g)
	if err != nil {
		return Verdict{}, err
	}
	return p.probe(a, b, true)
}

// constraint edge label encoding: label = 3*edgeID + kind.
const (
	labelUpper = 0 // message upper bound, traversed forward
	labelLower = 1 // message lower bound, traversed backward
	labelLocal = 2 // local edge, traversed backward
)

// prober is a reusable admissibility oracle for one execution graph. The
// constraint digraph topology does not depend on the probed ratio — only
// the edge weights do — so it is built once and re-weighted per probe.
// This matters for the Stern–Brocot critical-ratio search, which issues
// O(log² K) probes against the same graph.
type prober struct {
	g  *causality.Graph
	cg *graphutil.Digraph
	e  int64 // constraint-relevant execution edges
	v  int64 // execution nodes
	// dist is the distance vector of the most recent feasible probe,
	// reused to warm-start the next probe's Bellman–Ford: consecutive
	// Stern–Brocot candidates are close, so the previous solution is
	// nearly feasible for the new weights and the sweep count collapses.
	dist []int64
}

// newProber validates the execution graph and builds the constraint
// digraph topology with placeholder weights. The DAG check runs directly
// on the execution graph's CSR adjacency — no Digraph copy.
func newProber(g *causality.Graph) (*prober, error) {
	if !g.IsDAG() {
		return nil, errors.New("check: execution graph is not a DAG")
	}
	edges := g.Edges()
	cg := graphutil.New(g.NumNodes())
	for i, edge := range edges {
		switch edge.Kind {
		case causality.Message:
			cg.AddEdge(int(edge.From), int(edge.To), 0, int32(3*i+labelUpper))
			cg.AddEdge(int(edge.To), int(edge.From), 0, int32(3*i+labelLower))
		case causality.Local:
			cg.AddEdge(int(edge.To), int(edge.From), 0, int32(3*i+labelLocal))
		default:
			return nil, fmt.Errorf("check: unknown edge kind %v", edge.Kind)
		}
	}
	return &prober{g: g, cg: cg, e: int64(len(edges)), v: int64(g.NumNodes())}, nil
}

// probe solves the scaled constraint system for Ξ = a/b. wantCerts
// controls whether certificates (assignment/witness) are built.
func (p *prober) probe(a, b int64, wantCerts bool) (Verdict, error) {
	s := p.e + 1 // strictness scale
	// Overflow guard: the largest |path sum| is bounded by (V+1)·max|w|,
	// with max|w| <= max(a,b)·S + 1. Guard the guard's own products too:
	// maxW·s+1 must not wrap before it is used as a divisor.
	maxW := a
	if b > maxW {
		maxW = b
	}
	if maxW > 0 && (maxW > (math.MaxInt64-1)/s || (p.v+2) > math.MaxInt64/(maxW*s+1)) {
		return Verdict{}, fmt.Errorf("check: graph too large for exact int64 arithmetic (V=%d, E=%d, Ξ=%d/%d)", p.v, p.e, a, b)
	}

	for i, ce := range p.cg.Edges() {
		switch ce.Label % 3 {
		case labelUpper:
			// t(v) - t(u) < a/b  =>  T(v) - T(u) <= a·S − 1.
			p.cg.SetWeight(i, a*s-1)
		case labelLower:
			// t(v) - t(u) > 1    =>  T(u) - T(v) <= −b·S − 1.
			p.cg.SetWeight(i, -b*s-1)
		case labelLocal:
			// t(v) - t(u) > 0    =>  T(u) - T(v) <= −1.
			p.cg.SetWeight(i, -1)
		}
	}

	// Warm start from the previous feasible probe's distances when their
	// magnitude leaves overflow headroom for this probe's path sums
	// (|init| + (V+2)·(max|w|+1), with the second term already certified
	// finite by the guard above).
	var init []int64
	if p.dist != nil {
		var maxInit int64
		for _, d := range p.dist {
			if d > maxInit {
				maxInit = d
			} else if -d > maxInit {
				maxInit = -d
			}
		}
		if maxInit <= math.MaxInt64-(p.v+2)*(maxW*s+1) {
			init = p.dist
		}
	}

	g := p.g
	res := p.cg.BellmanFordFrom(init)
	if res.Feasible {
		p.dist = res.Dist
		verdict := Verdict{Admissible: true}
		if wantCerts {
			verdict.Assignment = newAssignment(g, res.Dist, b*s)
		}
		return verdict, nil
	}

	verdict := Verdict{Admissible: false}
	if wantCerts {
		w, err := witnessFromNegativeCycle(g, res.NegativeCycle)
		if err != nil {
			return Verdict{}, err
		}
		verdict.Witness = &w
		verdict.WitnessClass = cycles.Classify(w)
	}
	return verdict, nil
}

// witnessFromNegativeCycle maps a negative cycle of the constraint digraph
// back to a violating relevant cycle of the execution graph.
func witnessFromNegativeCycle(g *causality.Graph, neg []graphutil.Edge) (cycles.Cycle, error) {
	steps := make([]cycles.Step, len(neg))
	for i, ce := range neg {
		edgeID := causality.EdgeID(ce.Label / 3)
		switch ce.Label % 3 {
		case labelUpper:
			steps[i] = cycles.Step{Edge: edgeID, Forward: true}
		case labelLower, labelLocal:
			steps[i] = cycles.Step{Edge: edgeID, Forward: false}
		}
	}
	c, err := cycles.NewCycle(g, steps)
	if err != nil {
		return cycles.Cycle{}, fmt.Errorf("check: internal error mapping witness: %w", err)
	}
	if cl := cycles.Classify(c); !cl.Relevant {
		return cycles.Cycle{}, fmt.Errorf("check: internal error: witness cycle not relevant: %v", c)
	}
	return c, nil
}
