package check

import (
	"testing"

	"repro/internal/causality"
	"repro/internal/rat"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Theorem 9's constructive content: retiming an admissible execution with
// its normalized assignment yields a causally equivalent trace that is
// statically Θ-admissible for Θ = Ξ.
func TestRetimePreservesStructure(t *testing.T) {
	fig := scenario.BuildFig1() // contains a zero-delay message
	xi := rat.FromInt(2)
	v, err := ABC(fig.Graph, xi)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admissible {
		t.Fatal("Fig.1 not admissible at Ξ=2")
	}

	retimed, err := v.Assignment.Retime()
	if err != nil {
		t.Fatal(err)
	}
	// Causal equivalence: the execution graphs match edge for edge.
	g2 := causality.Build(retimed, causality.Options{})
	if g2.NumNodes() != fig.Graph.NumNodes() || g2.NumEdges() != fig.Graph.NumEdges() {
		t.Fatalf("retimed graph shape %d/%d, want %d/%d",
			g2.NumNodes(), g2.NumEdges(), fig.Graph.NumNodes(), fig.Graph.NumEdges())
	}
	type key struct {
		fp sim.ProcessID
		fi int
		tp sim.ProcessID
		ti int
		k  causality.EdgeKind
	}
	edgeSet := func(g *causality.Graph) map[key]int {
		m := make(map[key]int)
		for _, e := range g.Edges() {
			f, to := g.Node(e.From), g.Node(e.To)
			m[key{f.Proc, f.Index, to.Proc, to.Index, e.Kind}]++
		}
		return m
	}
	a, b := edgeSet(fig.Graph), edgeSet(g2)
	for k, c := range a {
		if b[k] != c {
			t.Fatalf("edge multiset differs at %+v: %d vs %d", k, c, b[k])
		}
	}

	// The original has a zero-delay message (no positive τ− exists); the
	// retimed trace has all message delays strictly inside (1, Ξ) — the
	// static Θ(Ξ)-admissibility of Theorem 9. (The Θ-package view of this
	// same fact is tested in internal/theta to avoid an import cycle.)
	sawZero := false
	for _, m := range fig.Trace.Msgs {
		if !m.IsWakeup() && m.RecvTime.Equal(m.SendTime) {
			sawZero = true
		}
	}
	if !sawZero {
		t.Error("Fig.1 lost its zero-delay message")
	}
	for _, m := range retimed.Msgs {
		if m.IsWakeup() {
			continue
		}
		d := m.RecvTime.Sub(m.SendTime)
		if !d.Greater(rat.One) || !d.Less(xi) {
			t.Fatalf("retimed delay %v outside (1, %v)", d, xi)
		}
	}
	// And of course still ABC-admissible.
	v2, err := ABC(g2, xi)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Admissible {
		t.Error("retimed trace lost ABC admissibility")
	}
}

// Retiming works on simulator-produced traces with faulty processes whose
// dropped events need predecessor re-timing.
func TestRetimeWithFaults(t *testing.T) {
	res, err := sim.Run(sim.Config{
		N: 4,
		Spawn: func(p sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < 3 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Faults: map[sim.ProcessID]sim.Fault{3: sim.Crash(2)},
		Delays: sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := causality.Build(res.Trace, causality.Options{})
	v, err := ABC(g, rat.FromInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admissible {
		t.Skip("seed produced inadmissible run")
	}
	retimed, err := v.Assignment.Retime()
	if err != nil {
		t.Fatal(err)
	}
	if err := retimed.Validate(); err != nil {
		t.Fatal(err)
	}
	g2 := causality.Build(retimed, causality.Options{})
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("retimed graph has %d edges, want %d", g2.NumEdges(), g.NumEdges())
	}
}

func TestReassembleRejectsBroken(t *testing.T) {
	fig := scenario.BuildFig1()
	tr := fig.Trace
	// Break message recv/event time coherence.
	events := append([]sim.Event(nil), tr.Events...)
	events[3].Time = events[3].Time.Add(rat.One)
	if _, err := sim.Reassemble(tr.N, events, tr.Msgs, tr.Faulty); err == nil {
		t.Error("incoherent reassembly accepted")
	}
}
