package check

import (
	"fmt"

	"repro/internal/causality"
	"repro/internal/rat"
)

// Assignment is a normalized delay assignment for an execution graph
// (Section 4.1): exact rational occurrence times for all events such that
// every message edge has delay strictly between 1 and Ξ and every local
// edge has strictly positive duration. Its existence for every admissible
// ABC execution graph is Theorem 7; Timed executions built from it are
// admissible in the Θ-Model, which is the bridge used by the model
// indistinguishability results (Theorems 9 and 12).
type Assignment struct {
	g *causality.Graph
	// times[n] is the assigned occurrence time of node n.
	times []rat.Rat
}

// newAssignment converts scaled integer Bellman–Ford potentials into
// rational times: t(n) = dist[n] / scale, with scale = b·(E+1).
func newAssignment(g *causality.Graph, dist []int64, scale int64) *Assignment {
	times := make([]rat.Rat, len(dist))
	for i, d := range dist {
		times[i] = rat.New(d, scale)
	}
	return &Assignment{g: g, times: times}
}

// Time returns the assigned occurrence time of node n.
func (a *Assignment) Time(n causality.NodeID) rat.Rat { return a.times[n] }

// Delay returns the assigned weight τ(e) of edge e: the end-to-end delay
// for message edges, the inter-event gap for local edges.
func (a *Assignment) Delay(e causality.EdgeID) rat.Rat {
	edge := a.g.Edge(e)
	return a.times[edge.To].Sub(a.times[edge.From])
}

// MinMaxMessageDelay returns the smallest and largest assigned message
// delay, or ok=false when the graph has no message edges. For a valid
// normalized assignment the ratio max/min is strictly below Ξ, which is
// how Θ-admissibility (Equation 3) follows.
func (a *Assignment) MinMaxMessageDelay() (min, max rat.Rat, ok bool) {
	for i, edge := range a.g.Edges() {
		if edge.Kind != causality.Message {
			continue
		}
		d := a.Delay(causality.EdgeID(i))
		if !ok {
			min, max, ok = d, d, true
			continue
		}
		// One comparison per bound instead of rat.Min+rat.Max's two.
		if d.Less(min) {
			min = d
		} else if d.Greater(max) {
			max = d
		}
	}
	return min, max, ok
}

// Validate checks that the assignment is normalized for the given Ξ:
// 1 < τ(e) < Ξ for all messages e, τ(ē) > 0 for all local edges ē
// (conditions (4) and (5) of the paper).
func (a *Assignment) Validate(xi rat.Rat) error {
	for i, edge := range a.g.Edges() {
		d := a.Delay(causality.EdgeID(i))
		switch edge.Kind {
		case causality.Message:
			if !d.Greater(rat.One) || !d.Less(xi) {
				return fmt.Errorf("check: message edge %d has delay %v outside (1, %v)", i, d, xi)
			}
		case causality.Local:
			if d.Sign() <= 0 {
				return fmt.Errorf("check: local edge %d has non-positive duration %v", i, d)
			}
		}
	}
	return nil
}
