package check

import (
	"repro/internal/causality"
	"repro/internal/cycles"
	"repro/internal/rat"
)

// Exhaustive checks Definition 4 directly by enumerating all simple cycles
// of the shadow graph, classifying each, and comparing ratios. It is
// exponential and exists as the ground-truth oracle for validating the
// scalable checker; complete is false when the enumeration limit truncated
// the search (in which case a true verdict is only partial).
func Exhaustive(g *causality.Graph, xi rat.Rat, limit int) (verdict Verdict, complete bool, err error) {
	if !xi.Greater(rat.One) {
		return Verdict{}, false, ErrXiOutOfRange
	}
	all, complete := cycles.Enumerate(g, limit)
	worst := Verdict{Admissible: true}
	var worstRatio rat.Rat
	for _, c := range all {
		cl := cycles.Classify(c)
		if !cl.Relevant {
			continue
		}
		if r := cl.Ratio(); r.GreaterEq(xi) && r.Greater(worstRatio) {
			worstRatio = r
			c := c
			worst = Verdict{Admissible: false, Witness: &c, WitnessClass: cl}
		}
	}
	return worst, complete, nil
}

// MaxRelevantRatioExhaustive returns the largest |Z−|/|Z+| over all
// relevant cycles by enumeration, with found=false when the graph has no
// relevant cycle. complete is false if the limit truncated enumeration.
func MaxRelevantRatioExhaustive(g *causality.Graph, limit int) (max rat.Rat, found, complete bool) {
	all, complete := cycles.Enumerate(g, limit)
	for _, c := range all {
		cl := cycles.Classify(c)
		if !cl.Relevant {
			continue
		}
		if r := cl.Ratio(); !found || r.Greater(max) {
			max = r
			found = true
		}
	}
	return max, found, complete
}
