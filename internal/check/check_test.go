package check

import (
	"errors"
	"testing"

	"repro/internal/causality"
	"repro/internal/cycles"
	"repro/internal/rat"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func TestXiValidation(t *testing.T) {
	fig := scenario.BuildFig1()
	for _, xi := range []rat.Rat{rat.One, rat.New(1, 2), rat.Zero, rat.FromInt(-2)} {
		if _, err := ABC(fig.Graph, xi); !errors.Is(err, ErrXiOutOfRange) {
			t.Errorf("ABC with Ξ=%v: err = %v, want ErrXiOutOfRange", xi, err)
		}
	}
}

func TestFig1Admissibility(t *testing.T) {
	fig := scenario.BuildFig1()
	// Critical ratio is 5/4: admissible for Ξ > 5/4 only.
	tests := []struct {
		xi   rat.Rat
		want bool
	}{
		{rat.FromInt(2), true},
		{rat.New(13, 10), true},
		{rat.New(5, 4), false},
		{rat.New(6, 5), false},
		{rat.New(101, 100), false},
	}
	for _, tt := range tests {
		v, err := ABC(fig.Graph, tt.xi)
		if err != nil {
			t.Fatal(err)
		}
		if v.Admissible != tt.want {
			t.Errorf("Ξ=%v: admissible=%v, want %v", tt.xi, v.Admissible, tt.want)
		}
		if v.Admissible {
			if v.Assignment == nil {
				t.Fatalf("Ξ=%v: no assignment", tt.xi)
			}
			if err := v.Assignment.Validate(tt.xi); err != nil {
				t.Errorf("Ξ=%v: invalid assignment: %v", tt.xi, err)
			}
		} else {
			if v.Witness == nil {
				t.Fatalf("Ξ=%v: no witness", tt.xi)
			}
			if !v.WitnessClass.Relevant {
				t.Errorf("Ξ=%v: witness not relevant", tt.xi)
			}
			if v.WitnessClass.Ratio().Less(tt.xi) {
				t.Errorf("Ξ=%v: witness ratio %v below Ξ", tt.xi, v.WitnessClass.Ratio())
			}
		}
	}
}

func TestFig3Violation(t *testing.T) {
	fig := scenario.BuildFig3()
	v, err := ABC(fig.Graph, rat.FromInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if v.Admissible {
		t.Fatal("Fig.3 execution admissible at Ξ=2; the late reply must violate")
	}
	if got := v.WitnessClass.Ratio(); !got.GreaterEq(rat.FromInt(2)) {
		t.Errorf("witness ratio %v, want >= 2", got)
	}
	// Admissible at Ξ just above 2.
	v, err = ABC(fig.Graph, rat.New(21, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admissible {
		t.Error("Fig.3 execution must be admissible at Ξ=21/10")
	}
}

func TestFig4AdmissibleEverywhere(t *testing.T) {
	fig := scenario.BuildFig4()
	// The timely reply makes the cycle non-relevant; admissible for small Ξ.
	for _, xi := range []rat.Rat{rat.New(101, 100), rat.FromInt(2), rat.FromInt(10)} {
		v, err := ABC(fig.Graph, xi)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Admissible {
			t.Errorf("Fig.4 not admissible at Ξ=%v", xi)
		}
	}
}

func TestAssignmentProperties(t *testing.T) {
	fig := scenario.BuildFig1()
	xi := rat.FromInt(2)
	v, err := ABC(fig.Graph, xi)
	if err != nil {
		t.Fatal(err)
	}
	a := v.Assignment
	if err := a.Validate(xi); err != nil {
		t.Fatal(err)
	}
	// Delay ratio below Ξ (Θ-Model admissibility, Theorem 9's bridge).
	min, max, ok := a.MinMaxMessageDelay()
	if !ok {
		t.Fatal("no message delays")
	}
	if !max.Div(min).Less(xi) {
		t.Errorf("delay ratio %v not below Ξ=%v", max.Div(min), xi)
	}
	// Times respect causal order along every edge.
	for i := range fig.Graph.Edges() {
		if a.Delay(causality.EdgeID(i)).Sign() <= 0 {
			t.Errorf("edge %d has non-positive assigned delay", i)
		}
	}
}

func TestConstrained(t *testing.T) {
	fig := scenario.BuildFig1()
	has, err := Constrained(fig.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if !has {
		t.Error("Fig.1 graph must be constrained (ratio 5/4 > 1)")
	}

	// An isolated chain has no cycles at all.
	b := sim.NewTraceBuilder(3)
	b.WakeAll(rat.Zero)
	b.MsgAt(0, 0, 1, 1, nil)
	b.MsgAt(1, 1, 2, 2, nil)
	g := causality.Build(b.MustBuild(), causality.Options{})
	has, err = Constrained(g)
	if err != nil {
		t.Fatal(err)
	}
	if has {
		t.Error("isolated chain reported constrained")
	}
	// A message parallel to a local chain forms only a non-relevant cycle.
	b2 := sim.NewTraceBuilder(2)
	b2.WakeAll(rat.Zero)
	b2.MsgAt(0, 0, 1, 1, nil)
	b2.MsgAt(0, 0, 1, 2, nil)
	g2 := causality.Build(b2.MustBuild(), causality.Options{})
	has, err = Constrained(g2)
	if err != nil {
		t.Fatal(err)
	}
	if has {
		t.Error("two one-way messages reported constrained")
	}
}

func TestMaxRelevantRatioFigures(t *testing.T) {
	tests := []struct {
		name  string
		g     *causality.Graph
		want  rat.Rat
		found bool
	}{
		{"fig1", scenario.BuildFig1().Graph, rat.New(5, 4), true},
		{"fig3", scenario.BuildFig3().Graph, rat.FromInt(2), true},
	}
	for _, tt := range tests {
		got, found, err := MaxRelevantRatio(tt.g)
		if err != nil {
			t.Fatalf("%s: %v", tt.name, err)
		}
		if found != tt.found || !got.Equal(tt.want) {
			t.Errorf("%s: ratio=%v found=%v, want %v, %v", tt.name, got, found, tt.want, tt.found)
		}
	}
}

func TestMaxRelevantRatioNoCycles(t *testing.T) {
	b := sim.NewTraceBuilder(2)
	b.WakeAll(rat.Zero)
	b.MsgAt(0, 0, 1, 1, nil)
	g := causality.Build(b.MustBuild(), causality.Options{})
	_, found, err := MaxRelevantRatio(g)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("found a ratio in a cycle-free graph")
	}
}

func TestExhaustiveAgreesOnFigures(t *testing.T) {
	for _, g := range []*causality.Graph{
		scenario.BuildFig1().Graph,
		scenario.BuildFig3().Graph,
		scenario.BuildFig4().Graph,
	} {
		for _, xi := range []rat.Rat{rat.New(6, 5), rat.New(5, 4), rat.FromInt(2), rat.FromInt(3)} {
			fast, err := ABC(g, xi)
			if err != nil {
				t.Fatal(err)
			}
			slow, complete, err := Exhaustive(g, xi, 100000)
			if err != nil {
				t.Fatal(err)
			}
			if !complete {
				t.Fatal("exhaustive truncated on figure graph")
			}
			if fast.Admissible != slow.Admissible {
				t.Errorf("Ξ=%v: BF says %v, exhaustive says %v", xi, fast.Admissible, slow.Admissible)
			}
		}
	}
}

// randomGraph produces a small random execution trace via the simulator.
func randomGraph(t *testing.T, seed int64, n, steps int, min, max rat.Rat) *causality.Graph {
	t.Helper()
	res, err := sim.Run(sim.Config{
		N: n,
		Spawn: func(p sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < steps {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays: sim.UniformDelay{Min: min, Max: max},
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return causality.Build(res.Trace, causality.Options{})
}

// Cross-validation: on random small graphs, the Bellman–Ford checker, the
// exhaustive oracle, and the exact ratio search must all agree.
func TestCheckerCrossValidation(t *testing.T) {
	xis := []rat.Rat{rat.New(3, 2), rat.FromInt(2), rat.FromInt(3), rat.New(7, 3)}
	for seed := int64(0); seed < 12; seed++ {
		g := randomGraph(t, seed, 3, 3, rat.One, rat.FromInt(2))
		maxR, found, err := MaxRelevantRatio(g)
		if err != nil {
			t.Fatal(err)
		}
		exR, exFound, complete := MaxRelevantRatioExhaustive(g, 200000)
		if !complete {
			continue // graph too dense to enumerate; skip oracle comparison
		}
		// MaxRelevantRatio reports only constraining ratios (> 1); the
		// exhaustive oracle also sees ratio-1 relevant cycles.
		wantFound := exFound && exR.Greater(rat.One)
		if found != wantFound {
			t.Fatalf("seed %d: ratio found=%v, exhaustive: found=%v max=%v", seed, found, exFound, exR)
		}
		if found && !maxR.Equal(exR) {
			t.Fatalf("seed %d: MaxRelevantRatio=%v, exhaustive=%v", seed, maxR, exR)
		}
		for _, xi := range xis {
			fast, err := ABC(g, xi)
			if err != nil {
				t.Fatal(err)
			}
			slow, _, err := Exhaustive(g, xi, 200000)
			if err != nil {
				t.Fatal(err)
			}
			if fast.Admissible != slow.Admissible {
				t.Fatalf("seed %d Ξ=%v: BF=%v exhaustive=%v", seed, xi, fast.Admissible, slow.Admissible)
			}
			if fast.Admissible {
				if err := fast.Assignment.Validate(xi); err != nil {
					t.Fatalf("seed %d Ξ=%v: %v", seed, xi, err)
				}
			} else if !cycles.Satisfies(*fast.Witness, xi) {
				// Witness must itself violate the condition.
				continue
			} else {
				t.Fatalf("seed %d Ξ=%v: witness does not violate", seed, xi)
			}
		}
	}
}

// Executions scheduled with delay ratio below Ξ are always admissible
// (Theorem 6 direction: Θ-admissible implies ABC-admissible).
func TestThetaScheduledAlwaysAdmissible(t *testing.T) {
	xi := rat.FromInt(2)
	for seed := int64(0); seed < 10; seed++ {
		// Delays in [1, 1.9]: ratio <= 1.9 < 2.
		g := randomGraph(t, seed, 4, 4, rat.One, rat.New(19, 10))
		v, err := ABC(g, xi)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Admissible {
			w := v.Witness
			t.Fatalf("seed %d: Θ(1.9)-scheduled execution not ABC(2)-admissible; witness %v", seed, w)
		}
	}
}

func TestCheckerOnNonDAG(t *testing.T) {
	// Corrupted graphs must be rejected, not mis-checked. Build a legal
	// trace, then a graph, and check the DAG guard via the public API only
	// (executions from the simulator are always DAGs, so this exercises
	// the defensive path using a hand-made cyclic digraph is not possible
	// through the public API; the guard is still worth asserting on a
	// valid graph returning no error).
	fig := scenario.BuildFig1()
	if _, err := ABC(fig.Graph, rat.FromInt(2)); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
}

func TestExhaustiveXiValidation(t *testing.T) {
	fig := scenario.BuildFig1()
	if _, _, err := Exhaustive(fig.Graph, rat.One, 10); !errors.Is(err, ErrXiOutOfRange) {
		t.Errorf("Exhaustive accepted Ξ=1: %v", err)
	}
}
