package cycles

import (
	"repro/internal/causality"
)

// Enumerate lists every simple cycle of the undirected shadow graph of g,
// each exactly once (up to rotation and reversal), stopping after limit
// cycles. The second return value is false when the limit truncated the
// enumeration. Cycle counts grow exponentially with graph size, so this is
// a ground-truth oracle for small graphs and figure scenarios; the scalable
// admissibility checker lives in internal/check.
func Enumerate(g *causality.Graph, limit int) ([]Cycle, bool) {
	e := &enumerator{g: g, limit: limit}
	e.buildAdjacency()
	for v := 0; v < g.NumNodes(); v++ {
		if !e.dfsFrom(causality.NodeID(v)) {
			return e.found, false
		}
	}
	return e.found, true
}

// halfEdge is an undirected view of one execution-graph edge as seen from
// one endpoint.
type halfEdge struct {
	edge causality.EdgeID
	to   causality.NodeID
	// forward is true when leaving this endpoint follows the edge's
	// direction.
	forward bool
}

type enumerator struct {
	g     *causality.Graph
	limit int
	adj   [][]halfEdge
	found []Cycle

	// DFS state.
	root    causality.NodeID
	inPath  []bool
	path    []Step
	usedEdg map[causality.EdgeID]bool
}

func (e *enumerator) buildAdjacency() {
	n := e.g.NumNodes()
	e.adj = make([][]halfEdge, n)
	for i, edge := range e.g.Edges() {
		id := causality.EdgeID(i)
		e.adj[edge.From] = append(e.adj[edge.From], halfEdge{edge: id, to: edge.To, forward: true})
		e.adj[edge.To] = append(e.adj[edge.To], halfEdge{edge: id, to: edge.From, forward: false})
	}
	e.inPath = make([]bool, n)
	e.usedEdg = make(map[causality.EdgeID]bool)
}

// dfsFrom enumerates all simple cycles whose minimum vertex is root.
// Intermediate vertices must exceed root; the duplicate traversal direction
// is suppressed by requiring the first step's edge ID to be smaller than
// the closing step's edge ID. It returns false when the limit was hit.
func (e *enumerator) dfsFrom(root causality.NodeID) bool {
	e.root = root
	e.inPath[root] = true
	ok := e.extend(root)
	e.inPath[root] = false
	return ok
}

func (e *enumerator) extend(v causality.NodeID) bool {
	for _, he := range e.adj[v] {
		if e.usedEdg[he.edge] {
			continue
		}
		step := Step{Edge: he.edge, Forward: he.forward}
		if he.to == e.root {
			// Closing edge: record the cycle if this direction is the
			// canonical one (first edge ID < closing edge ID) and the
			// cycle has >= 2 edges.
			if len(e.path) >= 1 && e.path[0].Edge < he.edge {
				steps := make([]Step, len(e.path)+1)
				copy(steps, e.path)
				steps[len(e.path)] = step
				e.found = append(e.found, Cycle{g: e.g, steps: steps})
				if e.limit > 0 && len(e.found) >= e.limit {
					return false
				}
			}
			continue
		}
		if he.to < e.root || e.inPath[he.to] {
			continue
		}
		e.inPath[he.to] = true
		e.usedEdg[he.edge] = true
		e.path = append(e.path, step)
		ok := e.extend(he.to)
		e.path = e.path[:len(e.path)-1]
		e.usedEdg[he.edge] = false
		e.inPath[he.to] = false
		if !ok {
			return false
		}
	}
	return true
}

// Relevant returns the relevant cycles of g, up to limit enumerated cycles;
// complete is false when enumeration was truncated.
func Relevant(g *causality.Graph, limit int) (relevant []Cycle, complete bool) {
	all, complete := Enumerate(g, limit)
	for _, c := range all {
		if Classify(c).Relevant {
			relevant = append(relevant, c)
		}
	}
	return relevant, complete
}
