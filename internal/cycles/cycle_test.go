package cycles

import (
	"testing"

	"repro/internal/causality"
	"repro/internal/rat"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// findCycleThrough returns all enumerated cycles containing the given node.
func cyclesThrough(t *testing.T, g *causality.Graph, n causality.NodeID) []Cycle {
	t.Helper()
	all, complete := Enumerate(g, 10000)
	if !complete {
		t.Fatal("enumeration truncated")
	}
	var out []Cycle
	for _, c := range all {
		for _, v := range c.Vertices() {
			if v == n {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

func TestFig1RelevantCycle(t *testing.T) {
	fig := scenario.BuildFig1()
	all, complete := Enumerate(fig.Graph, 1000)
	if !complete {
		t.Fatal("enumeration truncated")
	}
	if len(all) != 1 {
		t.Fatalf("Fig.1 graph has %d cycles, want exactly 1", len(all))
	}
	cl := Classify(all[0])
	if !cl.Relevant {
		t.Fatal("Fig.1 cycle classified non-relevant")
	}
	if cl.Forward != 4 || cl.Backward != 5 {
		t.Errorf("|Z+|=%d |Z−|=%d, want 4, 5", cl.Forward, cl.Backward)
	}
	if got := cl.Ratio(); !got.Equal(rat.New(5, 4)) {
		t.Errorf("ratio = %v, want 5/4", got)
	}
	// Admissible exactly for Ξ > 5/4.
	if !Satisfies(all[0], rat.FromInt(2)) {
		t.Error("Fig.1 cycle should satisfy Ξ=2")
	}
	if Satisfies(all[0], rat.New(5, 4)) {
		t.Error("Fig.1 cycle must violate Ξ=5/4 (strict inequality)")
	}
	if Satisfies(all[0], rat.New(6, 5)) {
		t.Error("Fig.1 cycle must violate Ξ=6/5")
	}
}

func TestFig3ViolatingRelevantCycle(t *testing.T) {
	fig := scenario.BuildFig3()
	through := cyclesThrough(t, fig.Graph, fig.PhiReply)
	if len(through) == 0 {
		t.Fatal("no cycle through the late-reply event")
	}
	// The cycle through the full 4-message chain is relevant with ratio
	// 4/2 = 2, violating Ξ = 2.
	var worst rat.Rat
	for _, c := range through {
		cl := Classify(c)
		if cl.Relevant && cl.Ratio().Greater(worst) {
			worst = cl.Ratio()
		}
	}
	if !worst.Equal(rat.FromInt(2)) {
		t.Errorf("worst relevant ratio through reply = %v, want 2", worst)
	}
	// Hence with Ξ=2 some relevant cycle violates the condition.
	violated := false
	for _, c := range through {
		if !Satisfies(c, rat.FromInt(2)) {
			violated = true
		}
	}
	if !violated {
		t.Error("Fig.3 late reply does not violate Ξ=2")
	}
}

func TestFig4NonRelevantCycle(t *testing.T) {
	fig := scenario.BuildFig4()
	// All cycles closed by ψ (through the timely reply pattern) satisfy
	// any Ξ: the cycle N is non-relevant.
	all, complete := Enumerate(fig.Graph, 1000)
	if !complete {
		t.Fatal("enumeration truncated")
	}
	for _, c := range all {
		if !Satisfies(c, rat.FromInt(2)) {
			t.Errorf("Fig.4 cycle violates Ξ=2: %v", c)
		}
	}
	// And there exists a non-relevant cycle through both φ and ψ.
	foundN := false
	for _, c := range all {
		hasPhi, hasPsi := false, false
		for _, v := range c.Vertices() {
			if v == fig.Phi {
				hasPhi = true
			}
			if v == fig.Psi {
				hasPsi = true
			}
		}
		if hasPhi && hasPsi && !Classify(c).Relevant {
			foundN = true
		}
	}
	if !foundN {
		t.Error("non-relevant cycle N through φ and ψ not found")
	}
}

func TestNewCycleValidation(t *testing.T) {
	fig := scenario.BuildFig1()
	g := fig.Graph
	all, _ := Enumerate(g, 10)
	c := all[0]

	// Valid round-trip through NewCycle.
	if _, err := NewCycle(g, c.Steps()); err != nil {
		t.Errorf("valid cycle rejected: %v", err)
	}
	// Too short.
	if _, err := NewCycle(g, c.Steps()[:1]); err == nil {
		t.Error("1-step cycle accepted")
	}
	// Broken chain: reverse one interior step.
	bad := make([]Step, c.Len())
	copy(bad, c.Steps())
	bad[1].Forward = !bad[1].Forward
	if _, err := NewCycle(g, bad); err == nil {
		t.Error("broken walk accepted")
	}
	// Repeated edge.
	dup := append([]Step{}, c.Steps()...)
	dup[len(dup)-1] = dup[0]
	if _, err := NewCycle(g, dup); err == nil {
		t.Error("repeated edge accepted")
	}
}

func TestMustCyclePanics(t *testing.T) {
	fig := scenario.BuildFig1()
	defer func() {
		if recover() == nil {
			t.Error("MustCycle did not panic")
		}
	}()
	MustCycle(fig.Graph, nil)
}

func TestReversedClassificationInvariant(t *testing.T) {
	// Classification is invariant under traversal reversal (the orientation
	// is intrinsic, per Definition 3).
	fig := scenario.BuildFig3()
	all, _ := Enumerate(fig.Graph, 1000)
	for _, c := range all {
		a, b := Classify(c), Classify(c.Reversed())
		if a.Relevant != b.Relevant || a.Forward != b.Forward || a.Backward != b.Backward {
			t.Errorf("classification not reversal-invariant: %+v vs %+v for %v", a, b, c)
		}
	}
}

func TestTwoCycleParallelEdges(t *testing.T) {
	// A self-message delivered as the process's next event creates a
	// message edge parallel to a local edge — the smallest possible cycle.
	b := sim.NewTraceBuilder(1)
	b.Wake(0, rat.Zero)
	b.MsgAt(0, 0, 0, 1, "self")
	tr := b.MustBuild()
	g := causality.Build(tr, causality.Options{})
	all, complete := Enumerate(g, 10)
	if !complete || len(all) != 1 {
		t.Fatalf("got %d cycles, want 1", len(all))
	}
	c := all[0]
	if c.Len() != 2 {
		t.Fatalf("cycle length %d, want 2", c.Len())
	}
	cl := Classify(c)
	// One message and one local edge, identically directed. Definition 3
	// picks the orientation with fewer messages as forward — the local
	// edge's side (0 messages vs 1) — so the local edge is a forward edge
	// and the cycle is non-relevant. This is exactly right: a local chain
	// spanning a message chain only says the messages were fast, which the
	// ABC model never constrains.
	if cl.Relevant {
		t.Error("parallel message/local 2-cycle must be non-relevant")
	}
	if cl.Forward != 0 || cl.Backward != 1 {
		t.Errorf("|Z+|=%d |Z−|=%d, want 0, 1", cl.Forward, cl.Backward)
	}
	if !Satisfies(c, rat.New(3, 2)) {
		t.Error("non-relevant cycle must satisfy any Ξ")
	}
}

func TestEnumerateLimit(t *testing.T) {
	fig := scenario.BuildFig3()
	_, complete := Enumerate(fig.Graph, 1)
	// Fig. 3's graph has several cycles; limit 1 must truncate.
	if complete {
		t.Error("limit did not truncate enumeration")
	}
}

func TestEnumerateEmptyAndAcyclic(t *testing.T) {
	b := sim.NewTraceBuilder(2)
	b.WakeAll(rat.Zero)
	b.MsgAt(0, 0, 1, 1, nil)
	g := causality.Build(b.MustBuild(), causality.Options{})
	all, complete := Enumerate(g, 100)
	if !complete || len(all) != 0 {
		t.Errorf("acyclic graph: %d cycles, complete=%v", len(all), complete)
	}
}

func TestVerticesAndString(t *testing.T) {
	fig := scenario.BuildFig1()
	all, _ := Enumerate(fig.Graph, 10)
	c := all[0]
	vs := c.Vertices()
	if len(vs) != c.Len() {
		t.Errorf("Vertices length %d != cycle length %d", len(vs), c.Len())
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
	if c.Graph() != fig.Graph {
		t.Error("Graph accessor wrong")
	}
}

// Structural invariant from DESIGN.md: every cycle of an execution graph
// contains at least one local edge, hence |Z+| >= 1 for relevant cycles.
func TestEveryCycleHasLocalEdge(t *testing.T) {
	res, err := sim.Run(sim.Config{
		N: 3,
		Spawn: func(p sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < 4 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays: sim.UniformDelay{Min: rat.One, Max: rat.FromInt(2)},
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := causality.Build(res.Trace, causality.Options{})
	all, complete := Enumerate(g, 50000)
	if !complete {
		t.Skip("too many cycles to enumerate")
	}
	for _, c := range all {
		hasLocal := false
		for _, s := range c.Steps() {
			if g.Edge(s.Edge).Kind == causality.Local {
				hasLocal = true
				break
			}
		}
		if !hasLocal {
			t.Fatalf("cycle without local edge: %v", c)
		}
		cl := Classify(c)
		if cl.Relevant && cl.Forward == 0 {
			t.Fatalf("relevant cycle with |Z+| = 0: %v", c)
		}
	}
}
