// Package cycles implements Definitions 2–4 of the ABC paper: causal
// chains, cycles in the undirected shadow graph of an execution graph,
// their partition into forward and backward edges, the orientation rule
// |Z+| <= |Z−|, the relevant/non-relevant classification, and the ABC
// synchrony condition |Z−|/|Z+| < Ξ. It also provides exhaustive
// enumeration of simple cycles, which serves as the ground-truth oracle the
// scalable checker of internal/check is validated against.
package cycles

import (
	"fmt"

	"repro/internal/causality"
	"repro/internal/rat"
)

// Step is a single edge traversal within a cycle: the edge and whether it
// is traversed along its direction ("causally forward") or against it.
type Step struct {
	Edge    causality.EdgeID
	Forward bool
}

// Cycle is a simple cycle in the undirected shadow graph Ĝ of an execution
// graph: a closed walk with pairwise distinct vertices and a fixed
// traversal order. Traversal order is bookkeeping only; Definition 3's
// orientation is computed by Classify.
type Cycle struct {
	g     *causality.Graph
	steps []Step
}

// NewCycle constructs a cycle over g from traversal steps, validating that
// the steps form a closed, vertex-simple walk with at least two edges.
func NewCycle(g *causality.Graph, steps []Step) (Cycle, error) {
	if len(steps) < 2 {
		return Cycle{}, fmt.Errorf("cycles: %d steps, need at least 2", len(steps))
	}
	seen := make(map[causality.NodeID]bool, len(steps))
	seenEdge := make(map[causality.EdgeID]bool, len(steps))
	for i, s := range steps {
		if seenEdge[s.Edge] {
			return Cycle{}, fmt.Errorf("cycles: edge %d repeated", s.Edge)
		}
		seenEdge[s.Edge] = true
		start := stepStart(g, s)
		if seen[start] {
			return Cycle{}, fmt.Errorf("cycles: vertex %d repeated", start)
		}
		seen[start] = true
		next := steps[(i+1)%len(steps)]
		if stepEnd(g, s) != stepStart(g, next) {
			return Cycle{}, fmt.Errorf("cycles: step %d ends at %d, next starts at %d",
				i, stepEnd(g, s), stepStart(g, next))
		}
	}
	return Cycle{g: g, steps: steps}, nil
}

// MustCycle is NewCycle, panicking on error.
func MustCycle(g *causality.Graph, steps []Step) Cycle {
	c, err := NewCycle(g, steps)
	if err != nil {
		panic(err)
	}
	return c
}

func stepStart(g *causality.Graph, s Step) causality.NodeID {
	e := g.Edge(s.Edge)
	if s.Forward {
		return e.From
	}
	return e.To
}

func stepEnd(g *causality.Graph, s Step) causality.NodeID {
	e := g.Edge(s.Edge)
	if s.Forward {
		return e.To
	}
	return e.From
}

// Graph returns the execution graph the cycle lives in.
func (c Cycle) Graph() *causality.Graph { return c.g }

// Steps returns the traversal steps. The caller must not modify them.
func (c Cycle) Steps() []Step { return c.steps }

// Len returns the number of edges in the cycle.
func (c Cycle) Len() int { return len(c.steps) }

// Vertices returns the cycle's vertices in traversal order.
func (c Cycle) Vertices() []causality.NodeID {
	out := make([]causality.NodeID, len(c.steps))
	for i, s := range c.steps {
		out[i] = stepStart(c.g, s)
	}
	return out
}

// Reversed returns the same cycle traversed in the opposite direction.
func (c Cycle) Reversed() Cycle {
	rev := make([]Step, len(c.steps))
	for i, s := range c.steps {
		rev[len(c.steps)-1-i] = Step{Edge: s.Edge, Forward: !s.Forward}
	}
	return Cycle{g: c.g, steps: rev}
}

// String renders the cycle as a vertex sequence with edge kinds.
func (c Cycle) String() string {
	out := ""
	for i, s := range c.steps {
		e := c.g.Edge(s.Edge)
		dir := "→"
		if !s.Forward {
			dir = "←"
		}
		kind := "m"
		if e.Kind == causality.Local {
			kind = "l"
		}
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%v %s%s", c.g.Node(stepStart(c.g, s)), dir, kind)
	}
	return out
}

// Class is the Definition 3 classification of a cycle.
type Class struct {
	// Relevant is true when all local edges are backward edges under the
	// Definition 3 orientation.
	Relevant bool
	// Forward = |Z+| and Backward = |Z−|: the number of messages in the
	// forward and backward class under the orientation.
	Forward, Backward int
	// LocalForward and LocalBackward count local edges per class.
	LocalForward, LocalBackward int
	// OrientationReversed is true when the Definition 3 orientation is
	// opposite to the cycle's traversal order.
	OrientationReversed bool
}

// Ratio returns |Z−| / |Z+|. It panics when |Z+| = 0, which cannot occur
// for cycles of an execution graph (a cycle with all messages in one
// direction and all locals backward would be a directed cycle in a DAG).
func (cl Class) Ratio() rat.Rat {
	if cl.Forward == 0 {
		panic("cycles: cycle with |Z+| = 0")
	}
	return rat.New(int64(cl.Backward), int64(cl.Forward))
}

// Classify computes the Definition 3 classification: identically directed
// edges share a class, the forward class is the one whose message count
// does not exceed the other's (|Z+| <= |Z−|), and the cycle is relevant
// when every local edge is a backward edge. When the message counts tie
// and the locals do not force a side, the orientation with all locals
// backward is preferred (making the tie relevant), matching the paper's
// reading that Ẑ+ = Z+ must be achievable.
func Classify(c Cycle) Class {
	var msgWith, msgAgainst, locWith, locAgainst int
	for _, s := range c.steps {
		e := c.g.Edge(s.Edge)
		switch {
		case e.Kind == causality.Message && s.Forward:
			msgWith++
		case e.Kind == causality.Message && !s.Forward:
			msgAgainst++
		case e.Kind == causality.Local && s.Forward:
			locWith++
		default:
			locAgainst++
		}
	}

	// Candidate orientation A: traversal order (forward = traversed-with).
	// Candidate orientation B: reversed.
	aValid := msgWith <= msgAgainst
	bValid := msgAgainst <= msgWith
	aRelevant := aValid && locWith == 0
	bRelevant := bValid && locAgainst == 0

	switch {
	case aRelevant:
		return Class{
			Relevant: true, Forward: msgWith, Backward: msgAgainst,
			LocalForward: locWith, LocalBackward: locAgainst,
		}
	case bRelevant:
		return Class{
			Relevant: true, Forward: msgAgainst, Backward: msgWith,
			LocalForward: locAgainst, LocalBackward: locWith,
			OrientationReversed: true,
		}
	case aValid:
		return Class{
			Relevant: false, Forward: msgWith, Backward: msgAgainst,
			LocalForward: locWith, LocalBackward: locAgainst,
		}
	default:
		return Class{
			Relevant: false, Forward: msgAgainst, Backward: msgWith,
			LocalForward: locAgainst, LocalBackward: locWith,
			OrientationReversed: true,
		}
	}
}

// Satisfies reports whether the cycle satisfies the ABC synchrony
// condition for the given Ξ: non-relevant cycles always do; relevant
// cycles require |Z−|/|Z+| < Ξ (Definition 4).
func Satisfies(c Cycle, xi rat.Rat) bool {
	cl := Classify(c)
	if !cl.Relevant {
		return true
	}
	return cl.Ratio().Less(xi)
}
