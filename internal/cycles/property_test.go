package cycles

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/causality"
	"repro/internal/rat"
	"repro/internal/sim"
)

func smallGraph(seed int64) *causality.Graph {
	if seed < 0 {
		seed = -seed
	}
	res, err := sim.Run(sim.Config{
		N: 3,
		Spawn: func(p sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < 2+int(seed%2) {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays: sim.UniformDelay{Min: rat.One, Max: rat.FromInt(2)},
		Seed:   seed,
	})
	if err != nil {
		panic(err)
	}
	return causality.Build(res.Trace, causality.Options{})
}

// canonical returns a canonical string key for a cycle's edge set.
func canonical(c Cycle) string {
	ids := make([]int, c.Len())
	for i, s := range c.Steps() {
		ids[i] = int(s.Edge)
	}
	sort.Ints(ids)
	out := ""
	for _, id := range ids {
		out += string(rune(id)) + ","
	}
	return out
}

// Property: enumeration yields each simple cycle exactly once (no
// duplicate edge sets — a simple cycle is determined by its edge set).
func TestEnumerationUniqueProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := smallGraph(seed)
		all, complete := Enumerate(g, 30000)
		if !complete {
			return true // skip dense graphs
		}
		seen := make(map[string]bool, len(all))
		for _, c := range all {
			k := canonical(c)
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: every enumerated cycle is a valid vertex-simple closed walk
// (NewCycle accepts its own output).
func TestEnumerationValidityProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := smallGraph(seed)
		all, complete := Enumerate(g, 30000)
		if !complete {
			return true
		}
		for _, c := range all {
			if _, err := NewCycle(g, c.Steps()); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: classification is stable under cyclic rotation of the step
// sequence.
func TestClassificationRotationInvariantProperty(t *testing.T) {
	f := func(seed int64, rot uint8) bool {
		g := smallGraph(seed)
		all, complete := Enumerate(g, 5000)
		if !complete || len(all) == 0 {
			return true
		}
		c := all[int(rot)%len(all)]
		k := 1 + int(rot)%c.Len()
		steps := append(append([]Step{}, c.Steps()[k:]...), c.Steps()[:k]...)
		rotated, err := NewCycle(g, steps)
		if err != nil {
			return false
		}
		a, b := Classify(c), Classify(rotated)
		return a.Relevant == b.Relevant && a.Forward == b.Forward && a.Backward == b.Backward
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
