package graphutil

// TopoSort returns a topological order of the nodes, or ok=false if the
// graph contains a directed cycle. Execution graphs (Definition 1 of the
// paper) are DAGs — messages cannot be sent backwards in time — and several
// packages rely on processing events in causal order.
func (g *Digraph) TopoSort() (order []int, ok bool) {
	indeg := make([]int, g.n)
	for _, e := range g.edges {
		indeg[e.To]++
	}
	adj := g.adjacency()
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order = make([]int, 0, g.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, ei := range adj[v] {
			w := g.edges[ei].To
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != g.n {
		return nil, false
	}
	return order, true
}

// IsDAG reports whether the graph is acyclic.
func (g *Digraph) IsDAG() bool {
	_, ok := g.TopoSort()
	return ok
}

// Reachable returns the set of nodes reachable from the given start nodes
// (inclusive) following edge direction. The result is a boolean vector
// indexed by node. This is the primitive behind causal-past computations.
func (g *Digraph) Reachable(starts ...int) []bool {
	adj := g.adjacency()
	seen := make([]bool, g.n)
	stack := make([]int, 0, len(starts))
	for _, s := range starts {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range adj[v] {
			w := g.edges[ei].To
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// Reverse returns a new digraph with every edge reversed. Weights and
// labels are preserved.
func (g *Digraph) Reverse() *Digraph {
	r := New(g.n)
	r.edges = make([]Edge, len(g.edges))
	for i, e := range g.edges {
		r.edges[i] = Edge{From: e.To, To: e.From, Weight: e.Weight, Label: e.Label}
	}
	return r
}
