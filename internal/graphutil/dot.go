package graphutil

import (
	"fmt"
	"io"
	"strings"
)

// DOTOptions controls DOT rendering.
type DOTOptions struct {
	// Name is the graph name; defaults to "G".
	Name string
	// NodeLabel, if non-nil, supplies a label per node id.
	NodeLabel func(v int) string
	// EdgeAttr, if non-nil, supplies extra attributes (e.g. `style=dashed`)
	// per edge index.
	EdgeAttr func(i int, e Edge) string
}

// WriteDOT renders the digraph in Graphviz DOT format, used by cmd/abcsim
// to visualize space–time diagrams and violating cycles.
func (g *Digraph) WriteDOT(w io.Writer, opts DOTOptions) error {
	name := opts.Name
	if name == "" {
		name = "G"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", name)
	for v := 0; v < g.n; v++ {
		label := fmt.Sprintf("%d", v)
		if opts.NodeLabel != nil {
			label = opts.NodeLabel(v)
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, label)
	}
	for i, e := range g.edges {
		attr := ""
		if opts.EdgeAttr != nil {
			attr = opts.EdgeAttr(i, e)
		}
		if attr != "" {
			fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", e.From, e.To, attr)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
