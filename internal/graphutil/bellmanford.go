package graphutil

// BFResult is the outcome of a Bellman–Ford run.
type BFResult struct {
	// Feasible is true when the graph contains no negative-weight cycle.
	Feasible bool
	// Dist holds, for each node, the shortest-path distance from a virtual
	// super-source connected to every node with a zero-weight edge. Valid
	// only when Feasible is true. For a difference-constraint system with
	// edges u->v of weight w meaning x[v] - x[u] <= w, Dist is a solution
	// (x := Dist satisfies every constraint).
	Dist []int64
	// NegativeCycle is a minimal witness when Feasible is false: a sequence
	// of edges e1..ek with e[i].To == e[i+1].From (cyclically) whose weights
	// sum to a negative value. Empty when Feasible is true.
	NegativeCycle []Edge
}

// BellmanFord solves single-source shortest paths from a virtual
// super-source that reaches every node with weight 0, detecting negative
// cycles. This formulation (rather than a caller-chosen source) is the one
// needed for difference-constraint feasibility: the system is feasible if
// and only if the constraint graph has no negative cycle, and the distances
// from the super-source form a concrete solution.
//
// The implementation is the standard O(V·E) edge-relaxation loop with early
// exit, followed by predecessor-walking to extract a simple negative cycle
// if one exists.
func (g *Digraph) BellmanFord() BFResult {
	n := g.n
	dist := make([]int64, n) // all zero: super-source initialization
	pred := make([]int32, n) // index into g.edges of the relaxing edge
	for i := range pred {
		pred[i] = -1
	}

	var lastRelaxed int32 = -1
	for iter := 0; iter <= n; iter++ {
		lastRelaxed = -1
		for i, e := range g.edges {
			if nd := dist[e.From] + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				pred[e.To] = int32(i)
				lastRelaxed = int32(i)
			}
		}
		if lastRelaxed == -1 {
			return BFResult{Feasible: true, Dist: dist}
		}
	}

	// An edge relaxed on iteration n+1: a negative cycle is reachable from
	// the predecessor chain of that edge's head. Walk back n steps to land
	// inside the cycle, then collect it.
	v := g.edges[lastRelaxed].To
	for i := 0; i < n; i++ {
		v = g.edges[pred[v]].From
	}
	start := v
	var cycleRev []Edge
	for {
		e := g.edges[pred[v]]
		cycleRev = append(cycleRev, e)
		v = e.From
		if v == start {
			break
		}
	}
	// cycleRev lists edges from head back to tail; reverse into forward order.
	cycle := make([]Edge, len(cycleRev))
	for i, e := range cycleRev {
		cycle[len(cycleRev)-1-i] = e
	}
	return BFResult{Feasible: false, NegativeCycle: cycle}
}

// CycleWeight returns the total weight of a sequence of edges.
func CycleWeight(cycle []Edge) int64 {
	var sum int64
	for _, e := range cycle {
		sum += e.Weight
	}
	return sum
}
