package graphutil

// BFResult is the outcome of a Bellman–Ford run.
type BFResult struct {
	// Feasible is true when the graph contains no negative-weight cycle.
	Feasible bool
	// Dist holds, for each node, the shortest-path distance from a virtual
	// super-source connected to every node with a zero-weight edge (or, for
	// BellmanFordFrom, with the caller's initial labels). Valid only when
	// Feasible is true. For a difference-constraint system with edges u->v
	// of weight w meaning x[v] - x[u] <= w, Dist is a solution (x := Dist
	// satisfies every constraint).
	Dist []int64
	// NegativeCycle is a minimal witness when Feasible is false: a sequence
	// of edges e1..ek with e[i].To == e[i+1].From (cyclically) whose weights
	// sum to a negative value. Empty when Feasible is true.
	NegativeCycle []Edge
}

// bfPlan is the direction-partitioned CSR edge layout used by the
// relaxation loop. It depends only on the topology — never on weights —
// so it is built once per Digraph and reused across BellmanFord runs
// (the Stern–Brocot ratio search re-weights and re-solves the same graph
// O(log² K) times). AddEdge and Grow invalidate it.
type bfPlan struct {
	offF, offB []int32
	adjF, adjB []int32
}

func (g *Digraph) bfplan() *bfPlan {
	if g.plan != nil {
		return g.plan
	}
	n := g.n
	p := &bfPlan{offF: make([]int32, n+1), offB: make([]int32, n+1)}
	for _, e := range g.edges {
		if e.To >= e.From {
			p.offF[e.From+1]++
		} else {
			p.offB[e.From+1]++
		}
	}
	for i := 0; i < n; i++ {
		p.offF[i+1] += p.offF[i]
		p.offB[i+1] += p.offB[i]
	}
	p.adjF = make([]int32, p.offF[n])
	p.adjB = make([]int32, p.offB[n])
	fillF := make([]int32, n)
	fillB := make([]int32, n)
	for i, e := range g.edges {
		if e.To >= e.From {
			p.adjF[p.offF[e.From]+fillF[e.From]] = int32(i)
			fillF[e.From]++
		} else {
			p.adjB[p.offB[e.From]+fillB[e.From]] = int32(i)
			fillB[e.From]++
		}
	}
	g.plan = p
	return p
}

// BellmanFord solves single-source shortest paths from a virtual
// super-source that reaches every node with weight 0, detecting negative
// cycles. This formulation (rather than a caller-chosen source) is the one
// needed for difference-constraint feasibility: the system is feasible if
// and only if the constraint graph has no negative cycle, and the distances
// from the super-source form a concrete solution.
//
// The relaxation loop uses Yen's two-sweep improvement of the classic
// O(V·E) pass structure: edges are partitioned by direction in the node
// order (To >= From "forward", To < From "backward"); each pass relaxes
// forward edges in ascending node order and then backward edges in
// descending node order. A single pass thereby propagates a distance
// update along an entire monotone chain instead of one hop, so the pass
// count is bounded by the direction-alternation depth of shortest paths
// rather than their length. Execution graphs insert events in trace order,
// which makes the node order nearly topological and the alternation depth
// small. Yen's scheme converges within ⌈n/2⌉+1 passes when no negative
// cycle exists, so — as with plain Bellman–Ford — a relaxation in pass
// n+1 certifies a negative cycle, which predecessor-walking extracts.
func (g *Digraph) BellmanFord() BFResult {
	return g.BellmanFordFrom(nil)
}

// BellmanFordFrom is BellmanFord warm-started from the given initial node
// labels (nil means all zero). It is equivalent to attaching the virtual
// super-source with per-node edge weights init[v] instead of 0: any init
// is sound — negative-cycle detection is unaffected and a feasible result
// still satisfies every constraint — but an init close to a feasible
// solution (e.g. the Dist of a previous probe of the same topology under
// nearby weights) converges in far fewer passes. The caller must ensure
// init magnitudes leave headroom for path sums (|init| + (n+1)·max|w|
// must not overflow int64); init is not retained.
func (g *Digraph) BellmanFordFrom(init []int64) BFResult {
	n := g.n
	dist := make([]int64, n)
	if init != nil {
		copy(dist, init)
	}
	pred := make([]int32, n) // index into g.edges of the relaxing edge
	for i := range pred {
		pred[i] = -1
	}
	if len(g.edges) == 0 {
		return BFResult{Feasible: true, Dist: dist}
	}
	p := g.bfplan()

	var lastRelaxed int32 = -1
	for iter := 0; iter <= n; iter++ {
		lastRelaxed = -1
		for u := 0; u < n; u++ {
			du := dist[u]
			for _, ei := range p.adjF[p.offF[u]:p.offF[u+1]] {
				e := g.edges[ei]
				if nd := du + e.Weight; nd < dist[e.To] {
					dist[e.To] = nd
					pred[e.To] = ei
					lastRelaxed = ei
				}
			}
		}
		for u := n - 1; u >= 0; u-- {
			du := dist[u]
			for _, ei := range p.adjB[p.offB[u]:p.offB[u+1]] {
				e := g.edges[ei]
				if nd := du + e.Weight; nd < dist[e.To] {
					dist[e.To] = nd
					pred[e.To] = ei
					lastRelaxed = ei
				}
			}
		}
		if lastRelaxed == -1 {
			return BFResult{Feasible: true, Dist: dist}
		}
	}

	// An edge relaxed on iteration n+1: a negative cycle is reachable from
	// the predecessor chain of that edge's head. Walk back n steps to land
	// inside the cycle, then collect it.
	v := g.edges[lastRelaxed].To
	for i := 0; i < n; i++ {
		v = g.edges[pred[v]].From
	}
	start := v
	var cycleRev []Edge
	for {
		e := g.edges[pred[v]]
		cycleRev = append(cycleRev, e)
		v = e.From
		if v == start {
			break
		}
	}
	// cycleRev lists edges from head back to tail; reverse into forward order.
	cycle := make([]Edge, len(cycleRev))
	for i, e := range cycleRev {
		cycle[len(cycleRev)-1-i] = e
	}
	return BFResult{Feasible: false, NegativeCycle: cycle}
}

// CycleWeight returns the total weight of a sequence of edges.
func CycleWeight(cycle []Edge) int64 {
	var sum int64
	for _, e := range cycle {
		sum += e.Weight
	}
	return sum
}
