package graphutil

import (
	"math/rand"
	"testing"
)

// randomConstraintGraph generates a digraph shaped like the checker's
// constraint systems: mostly forward edges plus backward lower-bound
// edges, with weights drawn so that both feasible and infeasible
// instances occur.
func randomConstraintGraph(rng *rand.Rand, n int) *Digraph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(rng.Intn(i), i, rng.Int63n(9)-1, int32(i))
		if rng.Intn(2) == 0 {
			g.AddEdge(i, rng.Intn(i), rng.Int63n(6)-4, int32(-i))
		}
	}
	return g
}

func checkPotential(t *testing.T, g *Digraph, dist []int64) {
	t.Helper()
	for _, e := range g.Edges() {
		if dist[e.To] > dist[e.From]+e.Weight {
			t.Fatalf("dist violates edge %+v: %d > %d + %d", e, dist[e.To], dist[e.From], e.Weight)
		}
	}
}

// TestBellmanFordFromAgreesWithCold runs warm-started solves from
// arbitrary (even adversarial) initial labels: feasibility verdicts must
// match the cold run, warm distances must still satisfy every constraint,
// and negative-cycle witnesses must still sum negative.
func TestBellmanFordFromAgreesWithCold(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	feasible, infeasible := 0, 0
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(30)
		g := randomConstraintGraph(rng, n)
		cold := g.BellmanFord()

		for warmTrial := 0; warmTrial < 3; warmTrial++ {
			init := make([]int64, n)
			for i := range init {
				init[i] = rng.Int63n(41) - 20
			}
			warm := g.BellmanFordFrom(init)
			if warm.Feasible != cold.Feasible {
				t.Fatalf("trial %d: warm feasible=%v, cold=%v", trial, warm.Feasible, cold.Feasible)
			}
			if warm.Feasible {
				checkPotential(t, g, warm.Dist)
			} else if w := CycleWeight(warm.NegativeCycle); w >= 0 {
				t.Fatalf("trial %d: warm negative cycle has weight %d", trial, w)
			}
		}
		if cold.Feasible {
			feasible++
			checkPotential(t, g, cold.Dist)
			// Re-solving warm from the solution itself must converge
			// immediately to the same verdict.
			again := g.BellmanFordFrom(cold.Dist)
			if !again.Feasible {
				t.Fatalf("trial %d: solution-warmed solve infeasible", trial)
			}
			checkPotential(t, g, again.Dist)
		} else {
			infeasible++
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("degenerate sweep: %d feasible, %d infeasible", feasible, infeasible)
	}
}

// TestPlanInvalidation pins that the cached relaxation plan tracks
// topology changes: solve, add a negative cycle, solve again.
func TestPlanInvalidation(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1, 0)
	if res := g.BellmanFord(); !res.Feasible {
		t.Fatal("chain infeasible")
	}
	g.AddEdge(1, 2, -3, 1)
	g.AddEdge(2, 1, 1, 2)
	if res := g.BellmanFord(); res.Feasible {
		t.Fatal("negative cycle missed after AddEdge on a solved graph")
	}
	first := g.Grow(1)
	g.AddEdge(first, 0, 0, 3) // must not panic against a stale plan
	if res := g.BellmanFord(); res.Feasible {
		t.Fatal("negative cycle missed after Grow")
	}
	// SetWeight keeps the plan but must be reflected in the next solve.
	g.SetWeight(1, 3)
	if res := g.BellmanFord(); !res.Feasible {
		t.Fatal("reweighted graph (cycle now positive) reported infeasible")
	}
}
