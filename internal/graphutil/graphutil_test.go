package graphutil

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdgeRangeCheck(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Error("AddEdge out of range did not panic")
		}
	}()
	g.AddEdge(0, 2, 1, 0)
}

func TestGrow(t *testing.T) {
	g := New(3)
	first := g.Grow(2)
	if first != 3 || g.N() != 5 {
		t.Errorf("Grow: first=%d N=%d, want 3, 5", first, g.N())
	}
	g.AddEdge(4, 0, 1, 0) // must not panic
}

func TestBellmanFordFeasible(t *testing.T) {
	// Classic difference constraints: x1-x0 <= 3, x2-x1 <= -2, x2-x0 <= 5.
	g := New(3)
	g.AddEdge(0, 1, 3, 0)
	g.AddEdge(1, 2, -2, 1)
	g.AddEdge(0, 2, 5, 2)
	res := g.BellmanFord()
	if !res.Feasible {
		t.Fatal("feasible system reported infeasible")
	}
	x := res.Dist
	if !(x[1]-x[0] <= 3 && x[2]-x[1] <= -2 && x[2]-x[0] <= 5) {
		t.Errorf("Dist %v does not satisfy constraints", x)
	}
}

func TestBellmanFordNegativeCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 2, -3, 11)
	g.AddEdge(2, 1, 1, 12) // cycle 1->2->1 of weight -2
	g.AddEdge(2, 3, 5, 13)
	res := g.BellmanFord()
	if res.Feasible {
		t.Fatal("negative cycle not detected")
	}
	if CycleWeight(res.NegativeCycle) >= 0 {
		t.Errorf("witness cycle weight %d is not negative", CycleWeight(res.NegativeCycle))
	}
	// Witness must be a closed edge walk.
	c := res.NegativeCycle
	for i, e := range c {
		next := c[(i+1)%len(c)]
		if e.To != next.From {
			t.Errorf("witness not closed at position %d: %v -> %v", i, e, next)
		}
	}
}

func TestBellmanFordZeroCycleFeasible(t *testing.T) {
	// A zero-weight cycle is not negative; system remains feasible.
	g := New(2)
	g.AddEdge(0, 1, 2, 0)
	g.AddEdge(1, 0, -2, 1)
	res := g.BellmanFord()
	if !res.Feasible {
		t.Error("zero-weight cycle incorrectly reported as negative")
	}
}

func TestBellmanFordSelfLoop(t *testing.T) {
	g := New(1)
	g.AddEdge(0, 0, -1, 0)
	res := g.BellmanFord()
	if res.Feasible {
		t.Error("negative self-loop not detected")
	}
	if len(res.NegativeCycle) != 1 {
		t.Errorf("self-loop witness has %d edges, want 1", len(res.NegativeCycle))
	}
}

func TestBellmanFordEmpty(t *testing.T) {
	g := New(0)
	if res := g.BellmanFord(); !res.Feasible {
		t.Error("empty graph infeasible")
	}
	g = New(5)
	res := g.BellmanFord()
	if !res.Feasible || len(res.Dist) != 5 {
		t.Error("edgeless graph mishandled")
	}
}

func TestTopoSort(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 0, 0)
	g.AddEdge(0, 2, 0, 0)
	g.AddEdge(1, 3, 0, 0)
	g.AddEdge(2, 3, 0, 0)
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("DAG reported cyclic")
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge (%d,%d) violates topo order %v", e.From, e.To, order)
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 0, 0)
	g.AddEdge(1, 0, 0, 0)
	if _, ok := g.TopoSort(); ok {
		t.Error("cyclic graph reported as DAG")
	}
	if g.IsDAG() {
		t.Error("IsDAG true for cyclic graph")
	}
}

func TestReachable(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 0, 0)
	g.AddEdge(1, 2, 0, 0)
	g.AddEdge(3, 4, 0, 0)
	seen := g.Reachable(0)
	want := []bool{true, true, true, false, false}
	for v, w := range want {
		if seen[v] != w {
			t.Errorf("Reachable(0)[%d] = %v, want %v", v, seen[v], w)
		}
	}
	seen = g.Reachable(0, 3)
	if !seen[4] {
		t.Error("multi-source reachability missed node 4")
	}
}

func TestReverse(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 7, 42)
	r := g.Reverse()
	e := r.Edges()[0]
	if e.From != 1 || e.To != 0 || e.Weight != 7 || e.Label != 42 {
		t.Errorf("Reverse edge = %+v", e)
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1, 0)
	var sb strings.Builder
	err := g.WriteDOT(&sb, DOTOptions{
		Name:      "test",
		NodeLabel: func(v int) string { return "ev" },
		EdgeAttr:  func(i int, e Edge) string { return "style=dashed" },
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph test", `label="ev"`, "n0 -> n1 [style=dashed]"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Default options path.
	var sb2 strings.Builder
	if err := g.WriteDOT(&sb2, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "digraph G") {
		t.Error("default graph name not used")
	}
}

// Property: on random graphs, BellmanFord either returns distances
// satisfying every constraint edge, or a genuinely negative witness cycle.
func TestBellmanFordProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := New(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), int64(rng.Intn(21)-10), int32(i))
		}
		res := g.BellmanFord()
		if res.Feasible {
			for _, e := range g.Edges() {
				if res.Dist[e.To] > res.Dist[e.From]+e.Weight {
					return false
				}
			}
			return true
		}
		if CycleWeight(res.NegativeCycle) >= 0 {
			return false
		}
		for i, e := range res.NegativeCycle {
			if e.To != res.NegativeCycle[(i+1)%len(res.NegativeCycle)].From {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
