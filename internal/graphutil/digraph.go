// Package graphutil provides the small set of generic directed-graph
// algorithms the ABC reproduction is built on: an edge-list digraph with
// parallel edges, Bellman–Ford shortest paths with negative-cycle
// extraction (the engine behind the difference-constraint ABC checker of
// internal/check), topological sorting, and DOT export for debugging
// space–time diagrams.
package graphutil

import "fmt"

// Edge is a weighted, labelled edge in a Digraph. Label is caller-defined
// and is preserved verbatim; internal/check uses it to map constraint edges
// back to messages and local edges of the execution graph.
type Edge struct {
	From, To int
	Weight   int64
	Label    int32
}

// Digraph is a directed multigraph over nodes 0..n-1 with int64 edge
// weights. Parallel edges and self-loops are allowed. The zero value is an
// empty graph with no nodes; use New to create a graph with nodes.
//
// A Digraph is not safe for concurrent use: BellmanFord caches its edge
// layout inside the graph on first use (SetWeight keeps the cache;
// AddEdge and Grow invalidate it).
type Digraph struct {
	n     int
	edges []Edge
	// plan is the cached Bellman–Ford edge layout; nil until first use,
	// reset by topology changes.
	plan *bfPlan
}

// New returns a digraph with n nodes and no edges.
// It panics if n is negative.
func New(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graphutil: negative node count %d", n))
	}
	return &Digraph{n: n}
}

// N returns the number of nodes.
func (g *Digraph) N() int { return g.n }

// M returns the number of edges.
func (g *Digraph) M() int { return len(g.edges) }

// AddEdge appends an edge from -> to with the given weight and label.
// It panics if either endpoint is out of range.
func (g *Digraph) AddEdge(from, to int, weight int64, label int32) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("graphutil: edge (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	g.edges = append(g.edges, Edge{From: from, To: to, Weight: weight, Label: label})
	g.plan = nil
}

// Edges returns the edge list. The caller must not modify the result.
func (g *Digraph) Edges() []Edge { return g.edges }

// SetWeight updates the weight of edge i (in insertion order). It allows
// callers that probe the same topology under many weightings — like the
// Stern–Brocot critical-ratio search — to reuse one graph instead of
// rebuilding it per probe.
func (g *Digraph) SetWeight(i int, weight int64) { g.edges[i].Weight = weight }

// Grow adds k nodes and returns the index of the first new node.
func (g *Digraph) Grow(k int) int {
	first := g.n
	g.n += k
	g.plan = nil
	return first
}

// adjacency returns per-node outgoing edge index lists.
func (g *Digraph) adjacency() [][]int32 {
	adj := make([][]int32, g.n)
	counts := make([]int32, g.n)
	for _, e := range g.edges {
		counts[e.From]++
	}
	for i := range adj {
		adj[i] = make([]int32, 0, counts[i])
	}
	for i, e := range g.edges {
		adj[e.From] = append(adj[e.From], int32(i))
	}
	return adj
}
