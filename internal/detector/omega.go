package detector

import (
	"repro/internal/sim"
)

// LeaderMsg disseminates a core member's current leader choice. Phase is
// the electing member's phase number at the time of the announcement; it
// orders announcements (followers adopt the highest-phase choice they
// hear) and bounds relaying — a relaying process forwards each phase at
// most once, so dissemination over sparse topologies terminates.
type LeaderMsg struct {
	Leader sim.ProcessID
	Phase  int
}

// OmegaCore is a member of the f+2 core implementing the Ω sketch of
// Section 6 for crash faults: in repeated phases it queries all other core
// members and runs timeout chains with each of them in parallel; when any
// single chain reaches ⌈2Ξ⌉ messages the phase ends, the suspicion set is
// recomputed from that phase's replies alone, the smallest unsuspected
// core id is chosen as leader, and the choice is broadcast to the whole
// system.
//
// Suspicion is per phase, not permanent: a member that missed a phase
// (down under a recovery schedule) is suspected for exactly the phases it
// missed and rehabilitated by its first reply after coming back, so the
// detector re-elects the smallest live core id across crash-recovery
// faults. Under permanent crashes the two policies coincide — a crashed
// member never replies again, so its suspicion re-derives every phase —
// and because beginPhase queries every core member regardless of
// suspicion, the message structure is identical too. The Fig. 3 accuracy
// argument applies per phase, so suspicion is perfect; once the last
// crash (or recovery) has settled, every later phase elects the same
// leader at every correct core member.
//
// Core members communicate pairwise (Query/Ping go through Env.Send), so
// the communication graph must link every pair of core members — on
// sparse fabrics, place the core on a fully connected overlay (see
// CoreTopology). Leader announcements, by contrast, travel by broadcast:
// on a sparse topology a single broadcast only reaches out-neighbors, so
// set Relay on every process (core and follower) to flood each phase's
// announcement hop by hop across the network.
type OmegaCore struct {
	Core     []sim.ProcessID // the f+2 core members, including self
	ChainLen int
	MaxPhase int // stop starting new phases after this many (keeps runs finite)
	// Relay, when set, re-broadcasts received leader announcements whose
	// phase is newer than any this process has broadcast or relayed —
	// required for dissemination beyond one hop on sparse topologies,
	// redundant (and therefore off by default) on the fully connected one.
	Relay bool

	self      sim.ProcessID
	phase     int
	relayed   int                   // highest announcement phase broadcast or relayed, -1 initially
	legs      map[sim.ProcessID]int // per-partner chain length this phase
	replied   map[sim.ProcessID]bool
	suspected map[sim.ProcessID]bool
	leader    sim.ProcessID
	started   bool
}

var _ sim.Process = (*OmegaCore)(nil)

// Leader returns the current leader choice.
func (o *OmegaCore) Leader() sim.ProcessID { return o.leader }

// Phase returns the current phase number.
func (o *OmegaCore) Phase() int { return o.phase }

// Suspects reports whether q is suspected.
func (o *OmegaCore) Suspects(q sim.ProcessID) bool { return o.suspected[q] }

// Step implements sim.Process.
func (o *OmegaCore) Step(env *sim.Env, msg sim.Message) {
	switch pl := msg.Payload.(type) {
	case sim.Wakeup:
		o.self = env.Self()
		o.suspected = make(map[sim.ProcessID]bool)
		o.leader = o.self
		o.relayed = -1
		o.started = true
		o.beginPhase(env)
	case Query:
		env.Send(msg.From, Reply{Phase: pl.Phase})
	case Ping:
		env.Send(msg.From, Pong{Phase: pl.Phase, Seq: pl.Seq})
	case Reply:
		if pl.Phase == o.phase {
			o.replied[msg.From] = true
		}
	case LeaderMsg:
		if o.Relay && pl.Phase > o.relayed {
			o.relayed = pl.Phase
			env.Broadcast(pl)
		}
	case Pong:
		if pl.Phase != o.phase {
			return // stale chain from a finished phase
		}
		o.legs[msg.From] += 2
		if o.legs[msg.From] >= o.ChainLen {
			o.endPhase(env)
			return
		}
		env.Send(msg.From, Ping{Phase: o.phase, Seq: pl.Seq + 1})
	}
}

func (o *OmegaCore) beginPhase(env *sim.Env) {
	o.legs = make(map[sim.ProcessID]int)
	o.replied = make(map[sim.ProcessID]bool)
	for _, q := range o.Core {
		if q == o.self {
			continue
		}
		env.Send(q, Query{Phase: o.phase})
		env.Send(q, Ping{Phase: o.phase, Seq: 0})
	}
}

func (o *OmegaCore) endPhase(env *sim.Env) {
	for _, q := range o.Core {
		if q == o.self {
			continue
		}
		o.suspected[q] = !o.replied[q]
	}
	// Elect the smallest unsuspected core member (self is never
	// self-suspected).
	o.leader = o.self
	for _, q := range o.Core {
		if !o.suspected[q] && q < o.leader {
			o.leader = q
		}
	}
	if o.phase > o.relayed {
		o.relayed = o.phase
	}
	env.Broadcast(LeaderMsg{Leader: o.leader, Phase: o.phase})
	o.phase++
	if o.phase < o.MaxPhase {
		o.beginPhase(env)
	}
}

// OmegaFollower is a non-core process: it adopts the highest-phase leader
// announcement it receives (ties keep the first arrival, so adoption is
// deterministic under the engine's delivery order).
type OmegaFollower struct {
	// Relay re-broadcasts each newly adopted announcement once, flooding
	// it across sparse topologies where the core's own broadcast reaches
	// only its out-neighbors. Followers beyond one hop from the core never
	// hear a leader without it.
	Relay bool

	leader sim.ProcessID
	phase  int
	heard  bool
}

var _ sim.Process = (*OmegaFollower)(nil)

// Leader returns the adopted leader and whether any announcement arrived.
func (o *OmegaFollower) Leader() (sim.ProcessID, bool) { return o.leader, o.heard }

// Step implements sim.Process.
func (o *OmegaFollower) Step(env *sim.Env, msg sim.Message) {
	lm, ok := msg.Payload.(LeaderMsg)
	if !ok {
		return
	}
	if !o.heard || lm.Phase > o.phase {
		o.leader, o.phase, o.heard = lm.Leader, lm.Phase, true
		if o.Relay {
			env.Broadcast(lm)
		}
	}
}

// CoreTopology augments base with a fully connected overlay among the
// core members: Ω's pairwise Query/Ping traffic requires direct links
// between every two core members, which sparse fabrics do not provide.
// The overlay models the standard deployment — a small designated
// monitoring core on dedicated interconnect, with leader announcements
// flooding the ordinary (sparse) network via Relay. A nil base (fully
// connected) is returned unchanged.
func CoreTopology(base sim.Topology, core []sim.ProcessID) sim.Topology {
	if base == nil {
		return nil
	}
	inCore := make(map[sim.ProcessID]bool, len(core))
	for _, q := range core {
		inCore[q] = true
	}
	return sim.TopologyFunc(func(from, to sim.ProcessID) bool {
		if inCore[from] && inCore[to] {
			return true
		}
		return base.Linked(from, to)
	})
}
