package detector

import (
	"repro/internal/sim"
)

// LeaderMsg disseminates a core member's current leader choice.
type LeaderMsg struct{ Leader sim.ProcessID }

// OmegaCore is a member of the f+2 core implementing the Ω sketch of
// Section 6 for crash faults: in repeated phases it queries all other core
// members and runs timeout chains with each of them in parallel; when any
// single chain reaches ⌈2Ξ⌉ messages the phase ends, members that did not
// reply are suspected permanently, the smallest unsuspected core id is
// chosen as leader, and the choice is broadcast to the whole system.
//
// Because crashes are permanent and the Fig. 3 accuracy argument applies
// per phase, suspicion is perfect; once the last crash has happened, every
// later phase elects the same correct leader at every correct core member.
type OmegaCore struct {
	Core     []sim.ProcessID // the f+2 core members, including self
	ChainLen int
	MaxPhase int // stop starting new phases after this many (keeps runs finite)

	self      sim.ProcessID
	phase     int
	legs      map[sim.ProcessID]int // per-partner chain length this phase
	replied   map[sim.ProcessID]bool
	suspected map[sim.ProcessID]bool
	leader    sim.ProcessID
	started   bool
}

var _ sim.Process = (*OmegaCore)(nil)

// Leader returns the current leader choice.
func (o *OmegaCore) Leader() sim.ProcessID { return o.leader }

// Phase returns the current phase number.
func (o *OmegaCore) Phase() int { return o.phase }

// Suspects reports whether q is suspected.
func (o *OmegaCore) Suspects(q sim.ProcessID) bool { return o.suspected[q] }

// Step implements sim.Process.
func (o *OmegaCore) Step(env *sim.Env, msg sim.Message) {
	switch pl := msg.Payload.(type) {
	case sim.Wakeup:
		o.self = env.Self()
		o.suspected = make(map[sim.ProcessID]bool)
		o.leader = o.self
		o.started = true
		o.beginPhase(env)
	case Query:
		env.Send(msg.From, Reply{Phase: pl.Phase})
	case Ping:
		env.Send(msg.From, Pong{Phase: pl.Phase, Seq: pl.Seq})
	case Reply:
		if pl.Phase == o.phase {
			o.replied[msg.From] = true
		}
	case Pong:
		if pl.Phase != o.phase {
			return // stale chain from a finished phase
		}
		o.legs[msg.From] += 2
		if o.legs[msg.From] >= o.ChainLen {
			o.endPhase(env)
			return
		}
		env.Send(msg.From, Ping{Phase: o.phase, Seq: pl.Seq + 1})
	}
}

func (o *OmegaCore) beginPhase(env *sim.Env) {
	o.legs = make(map[sim.ProcessID]int)
	o.replied = make(map[sim.ProcessID]bool)
	for _, q := range o.Core {
		if q == o.self {
			continue
		}
		env.Send(q, Query{Phase: o.phase})
		env.Send(q, Ping{Phase: o.phase, Seq: 0})
	}
}

func (o *OmegaCore) endPhase(env *sim.Env) {
	for _, q := range o.Core {
		if q == o.self || o.suspected[q] {
			continue
		}
		if !o.replied[q] {
			o.suspected[q] = true
		}
	}
	// Elect the smallest unsuspected core member (self is never
	// self-suspected).
	o.leader = o.self
	for _, q := range o.Core {
		if !o.suspected[q] && q < o.leader {
			o.leader = q
		}
	}
	env.Broadcast(LeaderMsg{Leader: o.leader})
	o.phase++
	if o.phase < o.MaxPhase {
		o.beginPhase(env)
	}
}

// OmegaFollower is a non-core process: it adopts the most recent leader
// announcement it receives.
type OmegaFollower struct {
	leader sim.ProcessID
	heard  bool
}

var _ sim.Process = (*OmegaFollower)(nil)

// Leader returns the adopted leader and whether any announcement arrived.
func (o *OmegaFollower) Leader() (sim.ProcessID, bool) { return o.leader, o.heard }

// Step implements sim.Process.
func (o *OmegaFollower) Step(env *sim.Env, msg sim.Message) {
	if lm, ok := msg.Payload.(LeaderMsg); ok {
		o.leader = lm.Leader
		o.heard = true
	}
}
