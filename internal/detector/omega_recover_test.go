package detector

import (
	"testing"

	"repro/internal/rat"
	"repro/internal/sim"
)

// TestOmegaReelectsAfterRecovery pins the crash-recovery behavior of the
// per-phase suspicion rule: the initial leader (core member 0) goes down
// for a span covering a couple of phases and comes back. While it is
// down, the live members must demote it — some LeaderMsg announcing a
// leader other than 0 appears in the trace — and once it has recovered
// and answered a full phase again, every live member must have
// rehabilitated it and re-elected it, so the final leader is 0 again.
func TestOmegaReelectsAfterRecovery(t *testing.T) {
	xi := rat.FromInt(2)
	core := []sim.ProcessID{0, 1, 2}
	// ChainLen(2) = 4 messages per chain, delays in [1, 3/2]: each phase
	// spans roughly 4–6 time units. Down [4, 12) therefore covers at
	// least one full phase at every live member, and 8 phases (~32–48
	// time) leave several complete phases after the recovery at t=12.
	down := sim.Interval{From: rat.FromInt(4), Until: rat.FromInt(12)}
	cfg := sim.Config{
		N: 3,
		Spawn: func(sim.ProcessID) sim.Process {
			return &OmegaCore{Core: core, ChainLen: ChainLen(xi), MaxPhase: 8}
		},
		Faults: map[sim.ProcessID]sim.Fault{
			0: {CrashAfter: sim.NeverCrash, Down: []sim.Interval{down}},
		},
		Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:      3,
		MaxEvents: 100000,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trace.Faulty[0] {
		t.Error("recovering process 0 not marked faulty in the trace")
	}

	// Mid-run demotion: a live member announced a non-0 leader while 0
	// was down.
	demoted := false
	for _, m := range res.Trace.Msgs {
		lm, ok := m.Payload.(LeaderMsg)
		if !ok || m.From == 0 {
			continue
		}
		if lm.Leader != 0 {
			demoted = true
			if lm.Leader != 1 {
				t.Errorf("member %d demoted 0 to %d, want 1 (smallest live id)", m.From, lm.Leader)
			}
		}
	}
	if !demoted {
		t.Errorf("no live member ever announced a leader other than 0 during the down span %v", down)
	}

	// Final re-election: both live members finished every phase, cleared
	// their suspicion of 0, and elected it again.
	for _, p := range []sim.ProcessID{1, 2} {
		oc := res.Procs[p].(*OmegaCore)
		if oc.Phase() != 8 {
			t.Errorf("member %d finished %d/8 phases", p, oc.Phase())
		}
		if oc.Suspects(0) {
			t.Errorf("member %d still suspects recovered member 0", p)
		}
		if got := oc.Leader(); got != 0 {
			t.Errorf("member %d elected %d after recovery, want 0", p, got)
		}
	}
}
