package detector

import (
	"fmt"
	"strings"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The omega workload is Section 6's Ω sketch: the f+2 core members
// {0..f+1} monitor each other with ⌈2Ξ⌉ timeout chains in repeated
// phases and broadcast the smallest unsuspected core id; the remaining
// processes are followers adopting the highest-phase announcement. On
// sparse fabrics the core runs on a fully connected overlay
// (CoreTopology) and every process relays announcements, flooding them
// hop by hop. The fault axis is crash-only — Ω here is a crash-fault
// detector, so byz clauses are rejected; recover clauses model crash
// with repair and drive re-election — and crash clauses claim IDs
// n-1 downward: with followers present they crash followers first; set
// n = f+2 (or an explicit pI target) to aim them at core members.
func init() {
	workload.Register(workload.Source{
		Name: "omega",
		Doc:  "Ω failure detector (Section 6 sketch): f+2-member core, phase-wise timeout chains, leader dissemination",
		Params: append(append([]workload.Param{
			{Name: "n", Kind: workload.Int, Default: "5", Doc: "number of processes (core is {0..f+1}, the rest follow)"},
			{Name: "f", Kind: workload.Int, Default: "1", Doc: "crash-fault bound; at most f core members may crash"},
			{Name: "xi", Kind: workload.Rational, Default: "2", Doc: "model parameter Ξ (timeout chain = ⌈2Ξ⌉ messages)"},
			{Name: "phases", Kind: workload.Int, Default: "6", Doc: "monitoring phases each core member runs"},
			{Name: "min", Kind: workload.Rational, Default: "1", Doc: "minimum message delay"},
			{Name: "max", Kind: workload.Rational, Default: "3/2", Doc: "maximum message delay"},
			{Name: "maxevents", Kind: workload.Int, Default: "200000", Doc: "receive-event budget"},
		}, workload.TopologyParams()...), append(workload.FaultParams(), append(workload.TraceParams(), workload.ShardParams()...)...)...),
		Job:     omegaJob,
		Verdict: omegaVerdict,
		// The verdict gates on a verified-admissible run, and the batch
		// ABC check needs the complete trace.
		VerdictNeedsTrace: true,
	})
}

// omegaCoreIDs returns the core {0..f+1}.
func omegaCoreIDs(f int) []sim.ProcessID {
	core := make([]sim.ProcessID, f+2)
	for i := range core {
		core[i] = sim.ProcessID(i)
	}
	return core
}

func omegaJob(v workload.Values, seed int64) (runner.Job, error) {
	n, f := v.Int("n"), v.Int("f")
	if f < 0 || n < f+2 {
		return runner.Job{}, fmt.Errorf("omega: core needs f+2 processes, got n=%d f=%d", n, f)
	}
	phases := v.Int("phases")
	if phases < 1 {
		return runner.Job{}, fmt.Errorf("omega: need at least one phase, got %d", phases)
	}
	base, err := workload.ResolveTopology(v, n)
	if err != nil {
		return runner.Job{}, err
	}
	core := omegaCoreIDs(f)
	topo := CoreTopology(base, core)
	// Crash-only fault axis: the nil ByzFactory rejects byz clauses, and
	// scripted noise is rejected explicitly — a scripted process counts as
	// faulty yet keeps responding, which is neither a crash (completeness
	// would wrongly demand its suspicion) nor correct behavior.
	if strings.Contains(v.String("faults"), "script") {
		return runner.Job{}, fmt.Errorf("omega: crash faults only (fault spec %q)", v.String("faults"))
	}
	faults, net, err := workload.ResolveFaults(v, n, topo, nil)
	if err != nil {
		return runner.Job{}, err
	}
	crashedCore := 0
	for p := range faults {
		if int(p) < len(core) {
			crashedCore++
		}
	}
	if crashedCore > f {
		return runner.Job{}, fmt.Errorf("omega: fault spec %q crashes %d core members, bound is f=%d", v.String("faults"), crashedCore, f)
	}
	// Relaying is needed (and enabled) exactly when the base fabric is
	// sparse; on the fully connected default every broadcast already
	// reaches everyone and relays would only add traffic.
	relay := base != nil
	cfg := sim.Config{
		N: n,
		Spawn: func(p sim.ProcessID) sim.Process {
			if int(p) < len(core) {
				return &OmegaCore{Core: core, ChainLen: ChainLen(v.Rat("xi")), MaxPhase: phases, Relay: relay}
			}
			return &OmegaFollower{Relay: relay}
		},
		Faults:    faults,
		Net:       net,
		Topology:  topo,
		Delays:    sim.UniformDelay{Min: v.Rat("min"), Max: v.Rat("max")},
		Seed:      seed,
		MaxEvents: v.Int("maxevents"),
	}
	return runner.Job{Cfg: &cfg}, nil
}

// connectedTopology reports whether the topology spec guarantees a
// strongly connected graph, making follower dissemination checkable. The
// randomized generators (regular, scalefree) and islands give no such
// guarantee, so follower checks are skipped there.
func connectedTopology(spec string) bool {
	name, _, _ := strings.Cut(spec, "/")
	return name == "full" || name == "" || name == "ring" || name == "torus"
}

// omegaVerdict checks the Ω guarantees on a completed admissible run:
// every correct core member finishes all phases, never suspects a
// correct core member (strong accuracy — the Fig. 3 argument applied per
// phase), suspects every silent-from-the-start core member (strong
// completeness), and elects a plausible leader — exactly the smallest
// surviving core id when all core crashes are silent, some non-silent
// core member otherwise (crashes at a positive step and recoveries leave
// phases in transient disagreement, so only the membership claim is
// timing-independent; a recovered member is a legitimate winner, which is
// exactly the re-election the dedicated recovery test pins down). On
// connected topologies every correct follower must have heard and
// adopted a leader meeting the same bound. The crash/recovery schedule
// is reconstructed from the fault parameters, which omegaJob already
// validated. Timeout chains presuppose a reliable network — a dropped
// chain message suspends the phase, not the member — so under
// message-level faults only the admissibility verdict stands.
func omegaVerdict(v workload.Values, r *runner.JobResult) error {
	if !r.CompletedAdmissible(true) {
		return nil
	}
	n, f, phases := v.Int("n"), v.Int("f"), v.Int("phases")
	faults, net, err := workload.ResolveFaults(v, n, nil, nil)
	if err != nil {
		return err
	}
	if net != nil {
		return nil
	}
	core := omegaCoreIDs(f)
	silentCore := make(map[sim.ProcessID]bool)
	transient := false // crashes at a positive step, or down/up schedules
	for p, ft := range faults {
		if int(p) < len(core) && ft.CrashAfter == 0 {
			silentCore[p] = true
		} else if ft.CrashAfter > 0 || len(ft.Down) > 0 {
			transient = true
		}
	}
	// The expected leader when suspicion has converged identically at
	// every member: the smallest core id that is not silent from the
	// start. Transient faults only weaken the claim to membership.
	expect := sim.ProcessID(-1)
	for _, q := range core {
		if !silentCore[q] {
			expect = q
			break
		}
	}
	leaderOK := func(who string, p, leader sim.ProcessID) error {
		if !transient {
			if leader != expect {
				return fmt.Errorf("omega: %s %d elected %d, want %d", who, p, leader, expect)
			}
			return nil
		}
		if int(leader) >= len(core) || silentCore[leader] {
			return fmt.Errorf("omega: %s %d elected %d, not a live core member", who, p, leader)
		}
		return nil
	}

	for _, p := range core {
		if _, bad := faults[p]; bad {
			continue
		}
		oc, ok := r.Sim.Procs[p].(*OmegaCore)
		if !ok {
			return fmt.Errorf("omega: process %d is not an OmegaCore", p)
		}
		if oc.Phase() != phases {
			return fmt.Errorf("omega: core member %d finished %d/%d phases", p, oc.Phase(), phases)
		}
		for _, q := range core {
			if q == p {
				continue
			}
			if _, bad := faults[q]; !bad && oc.Suspects(q) {
				return fmt.Errorf("omega: core member %d suspects correct member %d (accuracy)", p, q)
			}
			if silentCore[q] && !oc.Suspects(q) {
				return fmt.Errorf("omega: core member %d does not suspect silent member %d (completeness)", p, q)
			}
		}
		if err := leaderOK("core member", p, oc.Leader()); err != nil {
			return err
		}
	}
	if !connectedTopology(v.String("topology")) {
		return nil
	}
	for p := sim.ProcessID(len(core)); int(p) < n; p++ {
		if _, bad := faults[p]; bad {
			continue
		}
		fo, ok := r.Sim.Procs[p].(*OmegaFollower)
		if !ok {
			return fmt.Errorf("omega: process %d is not an OmegaFollower", p)
		}
		leader, heard := fo.Leader()
		if !heard {
			return fmt.Errorf("omega: follower %d heard no announcement", p)
		}
		if err := leaderOK("follower", p, leader); err != nil {
			return err
		}
	}
	return nil
}
