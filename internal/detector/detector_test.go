package detector

import (
	"testing"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/rat"
	"repro/internal/sim"
)

func TestChainLen(t *testing.T) {
	tests := []struct {
		xi   rat.Rat
		want int
	}{
		{rat.FromInt(2), 4},
		{rat.New(3, 2), 3},
		{rat.New(5, 4), 3},
		{rat.FromInt(3), 6},
	}
	for _, tt := range tests {
		if got := ChainLen(tt.xi); got != tt.want {
			t.Errorf("ChainLen(%v) = %d, want %d", tt.xi, got, tt.want)
		}
	}
}

// monitorConfig builds the Fig. 3 system: monitor 0, partner 1, target 2.
func monitorConfig(xi rat.Rat, delays sim.DelayPolicy, faults map[sim.ProcessID]sim.Fault, seed int64) sim.Config {
	return sim.Config{
		N: 3,
		Spawn: func(p sim.ProcessID) sim.Process {
			if p == 0 {
				return &Monitor{Partner: 1, Targets: []sim.ProcessID{2}, ChainLen: ChainLen(xi)}
			}
			return Responder{}
		},
		Faults:    faults,
		Delays:    delays,
		Seed:      seed,
		MaxEvents: 10000,
	}
}

func TestCompletenessCrashedTargetSuspected(t *testing.T) {
	xi := rat.FromInt(2)
	res, err := sim.Run(monitorConfig(xi,
		sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		map[sim.ProcessID]sim.Fault{2: sim.Silent()}, 1))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Procs[0].(*Monitor)
	if !m.Done() {
		t.Fatal("chain never completed")
	}
	if !m.Suspects(2) {
		t.Error("crashed target not suspected (completeness violated)")
	}
	if m.AccuracyViolations != 0 {
		t.Error("spurious accuracy violations")
	}
}

// Accuracy: over many admissible executions with adversarial delay spreads,
// a correct target is never suspected. Inadmissible runs are skipped — the
// guarantee is conditional on the ABC synchrony condition, which is the
// whole point.
func TestAccuracyCorrectTargetNeverSuspected(t *testing.T) {
	xi := rat.FromInt(2)
	admissible, suspectedCorrect, skipped := 0, 0, 0
	for seed := int64(0); seed < 40; seed++ {
		// Wide delay spread: replies are often nearly too slow.
		res, err := sim.Run(monitorConfig(xi,
			sim.UniformDelay{Min: rat.One, Max: rat.New(19, 10)}, nil, seed))
		if err != nil {
			t.Fatal(err)
		}
		g := causality.Build(res.Trace, causality.Options{})
		v, err := check.ABC(g, xi)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Admissible {
			skipped++
			continue
		}
		admissible++
		m := res.Procs[0].(*Monitor)
		if m.Suspects(2) {
			suspectedCorrect++
		}
		if m.AccuracyViolations > 0 {
			t.Errorf("seed %d: reply after suspicion in admissible run", seed)
		}
	}
	if admissible == 0 {
		t.Fatal("no admissible runs at all")
	}
	if suspectedCorrect > 0 {
		t.Errorf("correct target suspected in %d/%d admissible runs", suspectedCorrect, admissible)
	}
	t.Logf("admissible=%d skipped=%d", admissible, skipped)
}

// The converse experiment: when the reply is slower than the model allows,
// the monitor wrongly suspects — and the checker flags the execution as
// violating Ξ. The synchrony condition is exactly the price of accuracy.
func TestSlowReplyIsInadmissible(t *testing.T) {
	xi := rat.FromInt(2)
	delays := sim.OverrideDelay{
		Base: sim.ConstantDelay{D: rat.One},
		Match: func(m sim.Message) bool {
			_, isReply := m.Payload.(Reply)
			return isReply
		},
		Override: sim.ConstantDelay{D: rat.FromInt(50)},
	}
	res, err := sim.Run(monitorConfig(xi, delays, nil, 7))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Procs[0].(*Monitor)
	if !m.Suspects(2) {
		t.Fatal("slow reply not suspected")
	}
	if m.AccuracyViolations == 0 {
		t.Fatal("late reply did not register as accuracy violation")
	}
	g := causality.Build(res.Trace, causality.Options{})
	v, err := check.ABC(g, xi)
	if err != nil {
		t.Fatal(err)
	}
	if v.Admissible {
		t.Error("execution with late reply is admissible — the timeout argument would be unsound")
	}
}

func TestOmegaElectsCorrectLeader(t *testing.T) {
	// n = 5, f = 1: core = {0, 1, 2}; process 0 crashes. All correct
	// processes must eventually agree on leader 1 (smallest correct core
	// member).
	xi := rat.FromInt(2)
	core := []sim.ProcessID{0, 1, 2}
	faults := map[sim.ProcessID]sim.Fault{0: sim.Crash(3)}
	res, err := sim.Run(sim.Config{
		N: 5,
		Spawn: func(p sim.ProcessID) sim.Process {
			for _, c := range core {
				if p == c {
					return &OmegaCore{Core: core, ChainLen: ChainLen(xi), MaxPhase: 8}
				}
			}
			return &OmegaFollower{}
		},
		Faults:    faults,
		Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:      3,
		MaxEvents: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []sim.ProcessID{1, 2} {
		oc := res.Procs[p].(*OmegaCore)
		if oc.Leader() != 1 {
			t.Errorf("core member %d elected %d, want 1", p, oc.Leader())
		}
		if !oc.Suspects(0) {
			t.Errorf("core member %d does not suspect crashed 0", p)
		}
		if oc.Suspects(1) || oc.Suspects(2) {
			t.Errorf("core member %d suspects a correct member", p)
		}
	}
	for _, p := range []sim.ProcessID{3, 4} {
		f := res.Procs[p].(*OmegaFollower)
		leader, heard := f.Leader()
		if !heard {
			t.Errorf("follower %d heard no announcement", p)
		} else if leader != 1 {
			t.Errorf("follower %d adopted leader %d, want 1", p, leader)
		}
	}
}

// omegaRingConfig builds Ω on a ring fabric: the core runs on the
// CoreTopology overlay (pairwise Query/Ping needs direct links), and
// every process relays announcements so they flood hop by hop — the
// satellite-2 scenario where a plain broadcast would reach only the
// core's immediate ring neighbors.
func omegaRingConfig(n int, core []sim.ProcessID, faults map[sim.ProcessID]sim.Fault, seed int64) sim.Config {
	xi := rat.FromInt(2)
	topo := CoreTopology(sim.Ring(n), core)
	return sim.Config{
		N: n,
		Spawn: func(p sim.ProcessID) sim.Process {
			if int(p) < len(core) {
				return &OmegaCore{Core: core, ChainLen: ChainLen(xi), MaxPhase: 6, Relay: true}
			}
			return &OmegaFollower{Relay: true}
		},
		Faults:    faults,
		Topology:  topo,
		Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:      seed,
		MaxEvents: 200000,
	}
}

// TestOmegaRingDissemination pins leader dissemination beyond one hop:
// on an 8-ring with core {0,1,2} and core member 0 silent, every correct
// core member elects 1 and every follower — including 4, 5, 6, three to
// four hops from any core member — hears and adopts leader 1.
func TestOmegaRingDissemination(t *testing.T) {
	core := []sim.ProcessID{0, 1, 2}
	res, err := sim.Run(omegaRingConfig(8, core,
		map[sim.ProcessID]sim.Fault{0: sim.Silent()}, 9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("ring run truncated — relaying did not terminate")
	}
	for _, p := range []sim.ProcessID{1, 2} {
		oc := res.Procs[p].(*OmegaCore)
		if !oc.Suspects(0) {
			t.Errorf("core member %d does not suspect silent 0", p)
		}
		if oc.Leader() != 1 {
			t.Errorf("core member %d elected %d, want 1", p, oc.Leader())
		}
	}
	for p := sim.ProcessID(3); p < 8; p++ {
		f := res.Procs[p].(*OmegaFollower)
		leader, heard := f.Leader()
		if !heard {
			t.Errorf("follower %d heard no announcement through the ring", p)
		} else if leader != 1 {
			t.Errorf("follower %d adopted leader %d, want 1", p, leader)
		}
	}
}

// TestOmegaRingWithoutRelayStrands shows why satellite 2 matters: the
// same ring without relaying leaves far followers deaf — the core's
// broadcasts stop at its ring neighbors.
func TestOmegaRingWithoutRelayStrands(t *testing.T) {
	xi := rat.FromInt(2)
	core := []sim.ProcessID{0, 1, 2}
	n := 8
	res, err := sim.Run(sim.Config{
		N: n,
		Spawn: func(p sim.ProcessID) sim.Process {
			if int(p) < len(core) {
				return &OmegaCore{Core: core, ChainLen: ChainLen(xi), MaxPhase: 6}
			}
			return &OmegaFollower{}
		},
		Topology:  CoreTopology(sim.Ring(n), core),
		Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:      9,
		MaxEvents: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	deaf := 0
	for p := sim.ProcessID(3); int(p) < n; p++ {
		if _, heard := res.Procs[p].(*OmegaFollower).Leader(); !heard {
			deaf++
		}
	}
	if deaf == 0 {
		t.Fatal("every follower heard without relaying — the regression scenario no longer reproduces")
	}
}

func TestCoreTopology(t *testing.T) {
	core := []sim.ProcessID{0, 1, 2}
	if CoreTopology(nil, core) != nil {
		t.Error("nil (fully connected) base must stay nil")
	}
	topo := CoreTopology(sim.Ring(6), core)
	// Core pairs are always linked, even non-adjacent ones.
	if !topo.Linked(0, 2) {
		t.Error("core pair 0-2 not linked by the overlay")
	}
	// Non-core pairs follow the base ring.
	if !topo.Linked(3, 4) {
		t.Error("ring edge 3-4 lost")
	}
	if topo.Linked(3, 5) {
		t.Error("chord 3-5 invented outside the core")
	}
	// Core-to-follower links also follow the base.
	if !topo.Linked(2, 3) {
		t.Error("ring edge 2-3 lost")
	}
	if topo.Linked(0, 4) {
		t.Error("core member 0 linked to distant follower 4")
	}
}

func TestOmegaFaultFree(t *testing.T) {
	xi := rat.FromInt(2)
	core := []sim.ProcessID{0, 1, 2}
	res, err := sim.Run(sim.Config{
		N: 4,
		Spawn: func(p sim.ProcessID) sim.Process {
			if int(p) < len(core) {
				return &OmegaCore{Core: core, ChainLen: ChainLen(xi), MaxPhase: 5}
			}
			return &OmegaFollower{}
		},
		Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:      4,
		MaxEvents: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range core {
		oc := res.Procs[p].(*OmegaCore)
		if oc.Leader() != 0 {
			t.Errorf("member %d elected %d, want 0 (no crashes)", p, oc.Leader())
		}
		if oc.Phase() == 0 {
			t.Errorf("member %d made no phase progress", p)
		}
	}
}
