// Package detector implements failure detection in the ABC model for
// systems with crash faults.
//
// The timeout mechanism is exactly Fig. 3 of the paper: a monitor process
// p sends a query to a target and, from the same computing step, starts a
// ping-pong chain with partner processes. The ABC synchrony condition
// makes the absence of a reply meaningful: if the reply arrived after a
// causal chain of ⌈2Ξ⌉ messages has completed, it would close a relevant
// cycle with ratio >= Ξ — inadmissible. Hence once the chain completes
// without a reply, the target has crashed (strong accuracy), and a crashed
// target is eventually suspected because the chain keeps growing (strong
// completeness). This yields a perfect failure detector.
//
// Omega (Section 6's sketch) restricts the mechanism to a core of f+2
// processes that monitor each other in repeated phases and disseminate the
// smallest unsuspected core id as leader.
package detector

import (
	"repro/internal/rat"
	"repro/internal/sim"
)

// Message payloads.
type (
	// Query asks the target to reply; Phase tags repeated monitoring
	// rounds (0 for one-shot monitors).
	Query struct{ Phase int }
	// Reply answers a Query.
	Reply struct{ Phase int }
	// Ping and Pong form the timeout chains.
	Ping struct{ Phase, Seq int }
	Pong struct{ Phase, Seq int }
)

// ChainLen returns the timeout chain length ⌈2Ξ⌉ for a given Ξ: a reply
// arriving after a chain of that many messages would close a relevant
// cycle with |Z−|/|Z+| >= Ξ.
func ChainLen(xi rat.Rat) int {
	return int(xi.MulInt(2).Ceil())
}

// Monitor is a one-shot perfect failure detector (the exact Fig. 3
// scenario): it queries all targets at wake-up and ping-pongs with its
// partner; targets that have not replied when the chain completes are
// suspected, permanently.
type Monitor struct {
	Partner  sim.ProcessID
	Targets  []sim.ProcessID
	ChainLen int

	legs      int
	replied   map[sim.ProcessID]bool
	suspected map[sim.ProcessID]bool
	done      bool
	// AccuracyViolations counts replies that arrived from an
	// already-suspected target — impossible in admissible executions.
	AccuracyViolations int
}

var _ sim.Process = (*Monitor)(nil)

// Suspects returns whether the target is currently suspected.
func (m *Monitor) Suspects(q sim.ProcessID) bool { return m.suspected[q] }

// Done reports whether the chain has completed.
func (m *Monitor) Done() bool { return m.done }

// Step implements sim.Process.
func (m *Monitor) Step(env *sim.Env, msg sim.Message) {
	if m.replied == nil {
		m.replied = make(map[sim.ProcessID]bool)
		m.suspected = make(map[sim.ProcessID]bool)
	}
	switch pl := msg.Payload.(type) {
	case sim.Wakeup:
		for _, q := range m.Targets {
			env.Send(q, Query{})
		}
		env.Send(m.Partner, Ping{Seq: 0})
	case Reply:
		if m.suspected[msg.From] {
			m.AccuracyViolations++
		}
		m.replied[msg.From] = true
	case Pong:
		if m.done {
			return
		}
		m.legs += 2 // the ping and its pong extend the chain by two
		if m.legs >= m.ChainLen {
			m.done = true
			for _, q := range m.Targets {
				if !m.replied[q] {
					m.suspected[q] = true
				}
			}
			return
		}
		env.Send(m.Partner, Ping{Seq: pl.Seq + 1})
	}
}

// Responder answers queries and pings; run it on partner and target
// processes.
type Responder struct{}

var _ sim.Process = Responder{}

// Step implements sim.Process.
func (Responder) Step(env *sim.Env, msg sim.Message) {
	switch pl := msg.Payload.(type) {
	case Query:
		env.Send(msg.From, Reply{Phase: pl.Phase})
	case Ping:
		env.Send(msg.From, Pong{Phase: pl.Phase, Seq: pl.Seq})
	}
}
