package sim

import "hash/fnv"

// Hash returns a stable FNV-64a digest of the complete trace: process
// count, fault marks, every event (exact rational time, trigger, processed
// flag, note) and every message (endpoints, exact send/receive times,
// payload rendered with %v, heap addresses masked — see renderValue). Two
// traces hash equal iff their canonical JSON serializations are
// byte-identical, which is the bit-level determinism contract the fleet
// runner guarantees against the serial path (see internal/runner's
// golden-trace test, which covers pointer-carrying payloads too).
func (t *Trace) Hash() uint64 {
	h := fnv.New64a()
	// WriteJSON is deterministic (struct field order, exact rational
	// strings) and fnv's Write never fails.
	if err := t.WriteJSON(h); err != nil {
		panic("sim: hashing trace: " + err.Error())
	}
	return h.Sum64()
}
