package sim

import (
	"fmt"
	"strconv"
	"strings"
)

// RetentionMode selects how much of the execution record a run keeps.
type RetentionMode int

const (
	// RetainFullMode keeps every event and message — the default, and the
	// only mode whose Trace is complete (Trace.Complete reports true).
	RetainFullMode RetentionMode = iota
	// RetainWindowMode keeps a sliding window of the last K events (and
	// their trigger messages) — enough to feed the incremental
	// admissibility engine through Config.Monitor while bounding memory.
	RetainWindowMode
	// RetainNoneMode keeps only counters and the running stream digest —
	// the throughput mode for sweeps that never inspect the trace.
	RetainNoneMode
)

func (m RetentionMode) String() string {
	switch m {
	case RetainFullMode:
		return "full"
	case RetainWindowMode:
		return "window"
	case RetainNoneMode:
		return "none"
	default:
		return fmt.Sprintf("RetentionMode(%d)", int(m))
	}
}

// Retention is the storage policy a Sink asks the engine to apply.
type Retention struct {
	Mode RetentionMode
	// Window is the number of most-recent events retained in
	// RetainWindowMode; it must be at least 1 and is ignored otherwise.
	Window int
}

// Sink receives each Event and Message as the engine finalizes it and
// declares the trace-retention policy of the run. The built-in sinks
// (RetainAll, RetainWindow, RetainNone) carry a policy and observe
// nothing; custom implementations can stream the execution elsewhere —
// the callbacks fire in record order regardless of what the Trace
// retains. Callbacks must not retain the pointed-to values: the engine
// reuses the backing storage.
type Sink interface {
	// Retention returns the storage policy the engine applies to the
	// run's Trace.
	Retention() Retention
	// Event observes one finalized receive event, immediately after it is
	// recorded (and before Config.Monitor runs).
	Event(ev *Event)
	// Message observes one finalized message at send time, after its
	// receive time has been assigned.
	Message(m *Message)
}

// retentionSink is the no-op observer behind the built-in policies.
type retentionSink struct{ r Retention }

func (s retentionSink) Retention() Retention { return s.r }
func (s retentionSink) Event(*Event)         {}
func (s retentionSink) Message(*Message)     {}

// RetainAll returns the default policy: keep the complete trace. A nil
// Config.Sink is equivalent.
func RetainAll() Sink { return retentionSink{Retention{Mode: RetainFullMode}} }

// RetainWindow returns the sliding-window policy keeping the last k
// events. Run rejects k < 1.
func RetainWindow(k int) Sink {
	return retentionSink{Retention{Mode: RetainWindowMode, Window: k}}
}

// RetainNone returns the counters-and-digest-only policy.
func RetainNone() Sink { return retentionSink{Retention{Mode: RetainNoneMode}} }

// ParseRetention parses the textual retention spec used by the workload
// layer's trace parameter: "full", "window/K" (K >= 1), or "none".
func ParseRetention(spec string) (Sink, error) {
	switch {
	case spec == "" || spec == "full":
		return RetainAll(), nil
	case spec == "none":
		return RetainNone(), nil
	case strings.HasPrefix(spec, "window/"):
		k, err := strconv.Atoi(strings.TrimPrefix(spec, "window/"))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("sim: retention %q: want window/K with K >= 1", spec)
		}
		return RetainWindow(k), nil
	default:
		return nil, fmt.Errorf("sim: unknown retention %q (want full, window/K, none)", spec)
	}
}

// streamDigest is a pair of running FNV-64a accumulators over the
// execution record: one folding events in record order, one folding
// messages in ID (send) order. It is maintained incrementally by the
// engine under bounded retention and recomputed on demand for complete
// traces, so RetainAll and RetainNone runs of the same Config digest
// equal (the sink-equivalence contract). Payloads and notes are
// deliberately excluded: folding them would force a reflective rendering
// allocation per event on the throughput path, and the delivery schedule
// already pins every structural choice the engine makes.
type streamDigest struct {
	events uint64
	msgs   uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// fnvTime folds an exact rational time: the inline num/den fast path is
// allocation-free; promoted values fall back to the canonical string
// rendering, which is unique per value, so equal times always fold
// identically regardless of representation history.
func fnvTime(h uint64, t Time) uint64 {
	if num, den, ok := t.Inline(); ok {
		h = fnvUint64(h, uint64(num))
		return fnvUint64(h, uint64(den))
	}
	h = fnvUint64(h, ^uint64(0)) // promoted marker, distinct from any inline den
	return fnvString(h, t.String())
}

func (d *streamDigest) init() {
	d.events = fnvOffset64
	d.msgs = fnvOffset64
}

func (d *streamDigest) foldEvent(ev *Event) {
	h := d.events
	h = fnvUint64(h, uint64(ev.Proc))
	h = fnvUint64(h, uint64(ev.Index))
	h = fnvTime(h, ev.Time)
	h = fnvUint64(h, uint64(ev.Trigger))
	if ev.Processed {
		h = fnvUint64(h, 1)
	} else {
		h = fnvUint64(h, 0)
	}
	d.events = h
}

func (d *streamDigest) foldMessage(m *Message) {
	h := d.msgs
	h = fnvUint64(h, uint64(m.ID))
	h = fnvUint64(h, uint64(m.From))
	h = fnvUint64(h, uint64(m.To))
	h = fnvUint64(h, uint64(m.SendStep))
	h = fnvTime(h, m.SendTime)
	h = fnvTime(h, m.RecvTime)
	if m.Dropped {
		// Folded only for dropped messages, so digests of fault-free runs
		// are unchanged byte for byte.
		h = fnvUint64(h, 1)
	}
	d.msgs = h
}

// sum combines the two streams into one digest.
func (d *streamDigest) sum() uint64 {
	return fnvUint64(fnvUint64(fnvOffset64, d.events), d.msgs)
}
