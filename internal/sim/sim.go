package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/rat"
)

// Config describes one simulation run.
type Config struct {
	// N is the number of processes.
	N int
	// Spawn creates the correct-process state machine for process p.
	// Faulty processes with a Byzantine handler ignore it.
	Spawn func(p ProcessID) Process
	// Faults maps process IDs to their failure behavior. Processes not
	// present are correct.
	Faults map[ProcessID]Fault
	// Delays assigns end-to-end delays; required.
	Delays DelayPolicy
	// Topology reports whether a directed link exists. nil means fully
	// connected. Wake-up delivery is unaffected by topology.
	Topology func(from, to ProcessID) bool
	// Seed seeds the deterministic random source used by delay policies.
	Seed int64
	// MaxEvents bounds the number of receive events; 0 means the default
	// of 200000. Exceeding the bound stops the run (Result.Truncated).
	MaxEvents int
	// MaxTime, when positive, stops the run once simulated time exceeds it.
	MaxTime Time
	// Until, when non-nil, is evaluated after every computing step; the run
	// stops once it returns true. It receives the process state machines
	// (indexable by ProcessID) for inspection.
	Until func(procs []Process) bool
	// StartTimes optionally staggers wake-up times; nil means all zero.
	StartTimes []Time
}

// Result of a run.
type Result struct {
	Trace *Trace
	// Procs are the final process state machines, indexable by ProcessID.
	Procs []Process
	// Truncated is true when the run stopped due to MaxEvents or MaxTime
	// rather than quiescence or the Until predicate.
	Truncated bool
}

// defaultMaxEvents bounds runaway executions of non-terminating algorithms
// such as Algorithm 1, whose clocks progress forever (Theorem 1).
const defaultMaxEvents = 200000

// Run executes the configured simulation to quiescence or a stop condition
// and returns the recorded trace. It returns an error only for invalid
// configurations; algorithm panics propagate.
func Run(cfg Config) (*Result, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sim: N = %d, need at least 1", cfg.N)
	}
	if cfg.Spawn == nil {
		return nil, errors.New("sim: Spawn is required")
	}
	if cfg.Delays == nil {
		return nil, errors.New("sim: Delays is required")
	}
	if cfg.StartTimes != nil && len(cfg.StartTimes) != cfg.N {
		return nil, fmt.Errorf("sim: StartTimes has length %d, want %d", len(cfg.StartTimes), cfg.N)
	}
	for p, f := range cfg.Faults {
		if p < 0 || int(p) >= cfg.N {
			return nil, fmt.Errorf("sim: fault for invalid process %d", p)
		}
		if f.CrashAfter < NeverCrash {
			return nil, fmt.Errorf("sim: fault for process %d has CrashAfter = %d", p, f.CrashAfter)
		}
	}
	maxEvents := cfg.MaxEvents
	if maxEvents <= 0 {
		maxEvents = defaultMaxEvents
	}

	cfg.Delays = compileDelays(cfg.Delays)
	r := &runner{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		trace: &Trace{N: cfg.N, Faulty: make([]bool, cfg.N), eventAt: make(map[eventKey]int)},
	}
	r.procs = make([]Process, cfg.N)
	r.crashAfter = make([]int, cfg.N)
	r.woke = make([]bool, cfg.N)
	r.stepCount = make([]int, cfg.N)
	r.eventCount = make([]int, cfg.N)
	for p := ProcessID(0); int(p) < cfg.N; p++ {
		r.crashAfter[p] = NeverCrash
		handler := cfg.Spawn(p)
		if f, ok := cfg.Faults[p]; ok {
			r.trace.Faulty[p] = true
			r.crashAfter[p] = f.CrashAfter
			if f.Byzantine != nil {
				handler = f.Byzantine
			}
		}
		if handler == nil {
			return nil, fmt.Errorf("sim: nil handler for process %d", p)
		}
		r.procs[p] = handler
	}

	// Schedule wake-ups first so that, at equal times, the deterministic
	// (time, seq) order delivers each process's wake-up before any peer
	// message (Section 2's assumption on the very first step).
	r.wakeTime = make([]Time, cfg.N)
	for p := ProcessID(0); int(p) < cfg.N; p++ {
		at := rat.Zero
		if cfg.StartTimes != nil {
			at = cfg.StartTimes[p]
		}
		r.wakeTime[p] = at
		id := r.addMessage(Message{
			From: External, To: p, SendStep: SendStepExternal,
			SendTime: at, RecvTime: at, Payload: Wakeup{},
		})
		r.queue.push(delivery{at: at, seq: r.nextSeq(), msg: id})
	}
	// Scripted Byzantine sends, in process order for determinism (map
	// iteration order is randomized).
	for p := ProcessID(0); int(p) < cfg.N; p++ {
		f, ok := cfg.Faults[p]
		if !ok {
			continue
		}
		for _, s := range f.Script {
			r.sendMessage(p, SendStepScripted, s.At, s.To, s.Payload)
		}
	}

	truncated := r.loop(maxEvents)
	return &Result{Trace: r.trace, Procs: r.procs, Truncated: truncated}, nil
}

// Wakeup is the payload of the external message that triggers each
// process's first computing step.
type Wakeup struct{}

type runner struct {
	cfg        Config
	rng        *rand.Rand
	trace      *Trace
	queue      deliveryQueue
	seq        int64
	procs      []Process
	crashAfter []int
	stepCount  []int // computing steps executed per process
	eventCount []int // receive events recorded per process
	woke       []bool
	wakeTime   []Time
}

func (r *runner) nextSeq() int64 {
	r.seq++
	return r.seq
}

func (r *runner) addMessage(m Message) MsgID {
	m.ID = MsgID(len(r.trace.Msgs))
	r.trace.Msgs = append(r.trace.Msgs, m)
	return m.ID
}

// sendMessage assigns a delay and schedules the delivery. Delivery never
// precedes the recipient's wake-up (receive times are clamped to the wake
// time; the wake-up's earlier queue seq breaks the tie).
func (r *runner) sendMessage(from ProcessID, sendStep int, sendTime Time, to ProcessID, payload any) {
	m := Message{
		From: from, To: to, SendStep: sendStep,
		SendTime: sendTime, Payload: payload,
	}
	m.ID = MsgID(len(r.trace.Msgs))
	d := r.cfg.Delays.Delay(m, r.rng)
	if d.Sign() < 0 {
		panic(fmt.Sprintf("sim: delay policy returned negative delay %v", d))
	}
	recv := sendTime.Add(d)
	if recv.Less(r.wakeTime[to]) {
		recv = r.wakeTime[to]
	}
	m.RecvTime = recv
	r.trace.Msgs = append(r.trace.Msgs, m)
	r.queue.push(delivery{at: recv, seq: r.nextSeq(), msg: m.ID})
}

func (r *runner) loop(maxEvents int) (truncated bool) {
	for len(r.queue) > 0 {
		if len(r.trace.Events) >= maxEvents {
			return true
		}
		d := r.queue.pop()
		m := r.trace.Msgs[d.msg]
		if r.cfg.MaxTime.Sign() > 0 && m.RecvTime.Greater(r.cfg.MaxTime) {
			return true
		}
		p := m.To

		crashed := r.crashAfter[p] != NeverCrash && r.stepCount[p] >= r.crashAfter[p]
		ev := Event{
			Proc:    p,
			Index:   r.eventCount[p],
			Time:    m.RecvTime,
			Trigger: m.ID,
		}
		r.eventCount[p]++

		if !crashed {
			env := &Env{
				self:      p,
				n:         r.cfg.N,
				stepIndex: r.stepCount[p],
				connected: r.cfg.Topology,
			}
			r.procs[p].Step(env, m)
			r.stepCount[p]++
			ev.Processed = true
			ev.Note = env.note
			for _, out := range env.out {
				r.sendMessage(p, ev.Index, m.RecvTime, out.to, out.payload)
			}
		}
		pos := len(r.trace.Events)
		r.trace.Events = append(r.trace.Events, ev)
		r.trace.eventAt[eventKey{p, ev.Index}] = pos
		if !r.woke[p] {
			r.woke[p] = true
		}

		if ev.Processed && r.cfg.Until != nil && r.cfg.Until(r.procs) {
			return false
		}
	}
	return false
}
