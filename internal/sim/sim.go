package sim

// Config describes one simulation run.
type Config struct {
	// N is the number of processes.
	N int
	// Spawn creates the correct-process state machine for process p.
	// Faulty processes with a Byzantine handler ignore it.
	Spawn func(p ProcessID) Process
	// Faults maps process IDs to their failure behavior. Processes not
	// present are correct.
	Faults map[ProcessID]Fault
	// Net, when non-nil, enables the message-level fault layer: seeded
	// deterministic drop/duplicate/delay-spike rules and transient link
	// partitions, validated at Run setup and applied at send time in the
	// deterministic delivery order. nil is a perfect network — and draws
	// nothing from the RNG, so legacy traces are untouched byte for byte.
	Net *NetFaults
	// Delays assigns end-to-end delays; required.
	Delays DelayPolicy
	// Topology is the communication graph; nil means fully connected.
	// Use a *Links (see the generators Ring, Torus, RandomRegular,
	// ScaleFree, Islands, or ParseTopology) for sparse systems — the
	// engine then broadcasts along precomputed neighbor lists instead of
	// scanning all N processes per send. Self-delivery is always available
	// regardless of topology, and wake-up delivery is unaffected by it.
	Topology Topology
	// Queue selects the delivery-queue implementation; the default
	// QueueAuto picks by system size. The choice never affects results:
	// every implementation realizes the same exact (time, seq) delivery
	// order.
	Queue QueueKind
	// Seed seeds the deterministic random source used by delay policies.
	Seed int64
	// MaxEvents bounds the number of receive events; 0 means the default
	// of 200000. Exceeding the bound stops the run (Result.Truncated).
	MaxEvents int
	// MaxTime, when positive, stops the run once simulated time exceeds it.
	MaxTime Time
	// Until, when non-nil, is evaluated after every computing step; the run
	// stops once it returns true. It receives the process state machines
	// (indexable by ProcessID) for inspection.
	Until func(procs []Process) bool
	// Monitor, when non-nil, observes the live trace after every recorded
	// receive event (check-as-you-simulate). A non-nil return stops the
	// run immediately; the error lands in Result.MonitorErr. The argument
	// is the run's own growing trace — monitors must not mutate it, and
	// anything retained from it aliases the returned Result.Trace.
	Monitor func(t *Trace) error
	// StartTimes optionally staggers wake-up times; nil means all zero.
	StartTimes []Time
	// Sink, when non-nil, observes each finalized Event and Message and
	// selects the trace-retention policy (see RetainAll, RetainWindow,
	// RetainNone). nil keeps the complete trace — identical to the
	// pre-sink engine. Bounded retention trades Trace completeness for
	// memory: see Trace.Complete and the TotalEvents/StreamHash
	// accessors, which work in every mode.
	Sink Sink
	// Shards, when > 1, asks the engine to execute the run on that many
	// process shards with a conservative lookahead window (see shard.go):
	// shards drain their calendar queues in parallel up to the global safe
	// horizon, and the window is merged serially in the exact (time, seq)
	// delivery order, so traces, digests, and verdicts are byte-identical
	// at every shard count — sharding only changes wall-clock time. 0 and
	// 1 select the serial engine. Configurations the conservative window
	// cannot handle (Monitor/Until callbacks, Byzantine or amnesia faults,
	// negative start times, or a delay policy with no positive lower
	// bound, the zero-lookahead case) silently fall back to the serial
	// path; Result.Shards reports the mode actually used.
	Shards int
}

// Result of a run.
type Result struct {
	Trace *Trace
	// Procs are the final process state machines, indexable by ProcessID.
	Procs []Process
	// Truncated is true when the run stopped due to MaxEvents or MaxTime
	// rather than quiescence or the Until predicate.
	Truncated bool
	// MonitorErr is the error with which Config.Monitor stopped the run,
	// nil when no monitor was set or it never objected.
	MonitorErr error
	// Shards is the shard count the engine actually executed with: 1 for
	// the serial path (including every fallback from a Config.Shards > 1
	// request — see Config.Shards for the fallback conditions), the
	// effective shard count otherwise. Results are identical either way;
	// the field exists so tests can assert which path ran.
	Shards int
}

// defaultMaxEvents bounds runaway executions of non-terminating algorithms
// such as Algorithm 1, whose clocks progress forever (Theorem 1).
const defaultMaxEvents = 200000

// Run executes the configured simulation to quiescence or a stop condition
// and returns the recorded trace. It returns an error only for invalid
// configurations; algorithm panics propagate.
//
// Run is a convenience wrapper over a throwaway Engine; callers executing
// many simulations (fleet sweeps, internal/runner workers) should hold an
// Engine and call its Run method to amortize the scheduler's allocations.
func Run(cfg Config) (*Result, error) {
	return new(Engine).Run(cfg)
}

// Wakeup is the payload of the external message that triggers each
// process's first computing step.
type Wakeup struct{}

// QueueKind selects the Engine's delivery-queue implementation.
type QueueKind int

const (
	// QueueAuto uses the binary heap for small systems and the bucketed
	// calendar queue once N reaches autoBucketN.
	QueueAuto QueueKind = iota
	// QueueHeap forces the binary min-heap.
	QueueHeap
	// QueueBucket forces the bucketed calendar queue.
	QueueBucket
)

// autoBucketN is the system size at which QueueAuto switches to the
// bucketed queue: below it the heap's constants win, above it the heap's
// per-operation sift cost does not.
const autoBucketN = 4096
