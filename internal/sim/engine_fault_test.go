package sim

import (
	"strings"
	"testing"

	"repro/internal/rat"
)

// relay broadcasts one token on wake-up and re-broadcasts every token it
// receives whose hop budget is not exhausted, noting its own step count —
// enough traffic to exercise recovery, loss, and duplication, and a
// per-machine counter that distinguishes durable resumption from an
// amnesia respawn.
type relay struct {
	steps  int
	budget int
}

type token struct{ Hop int }

func (r *relay) Step(env *Env, msg Message) {
	r.steps++
	env.SetNote(r.steps)
	switch m := msg.Payload.(type) {
	case Wakeup:
		env.Broadcast(token{Hop: 0})
	case token:
		if m.Hop < r.budget {
			env.Broadcast(token{Hop: m.Hop + 1})
		}
	}
}

func relayConfig(n, budget int) Config {
	return Config{
		N:      n,
		Spawn:  func(p ProcessID) Process { return &relay{budget: budget} },
		Delays: ConstantDelay{D: rat.One},
	}
}

// TestRunFaultValidationErrors pins the setup-time validation of
// recovery schedules and the message-level fault layer: like scripted
// sends, a malformed configuration is an error before any step executes,
// with text naming the defect.
func TestRunFaultValidationErrors(t *testing.T) {
	iv := func(a, b int64) Interval { return Interval{From: rat.FromInt(a), Until: rat.FromInt(b)} }
	cases := []struct {
		name string
		mut  func(cfg *Config)
		want string
	}{
		{"crash and down", func(cfg *Config) {
			cfg.Faults = map[ProcessID]Fault{0: {CrashAfter: 2, Down: []Interval{iv(1, 2)}}}
		}, "sets both CrashAfter and a Down schedule"},
		{"negative interval start", func(cfg *Config) {
			cfg.Faults = map[ProcessID]Fault{0: {CrashAfter: NeverCrash, Down: []Interval{{From: rat.FromInt(-1), Until: rat.One}}}}
		}, "starts at negative time"},
		{"empty interval", func(cfg *Config) {
			cfg.Faults = map[ProcessID]Fault{0: {CrashAfter: NeverCrash, Down: []Interval{iv(2, 2)}}}
		}, "is empty"},
		{"overlapping intervals", func(cfg *Config) {
			cfg.Faults = map[ProcessID]Fault{0: {CrashAfter: NeverCrash, Down: []Interval{iv(1, 4), iv(3, 6)}}}
		}, "overlap or are unsorted"},
		{"unsorted intervals", func(cfg *Config) {
			cfg.Faults = map[ProcessID]Fault{0: {CrashAfter: NeverCrash, Down: []Interval{iv(5, 6), iv(1, 2)}}}
		}, "overlap or are unsorted"},
		{"unknown recovery policy", func(cfg *Config) {
			cfg.Faults = map[ProcessID]Fault{0: {CrashAfter: NeverCrash, Down: []Interval{iv(1, 2)}, Recovery: 7}}
		}, "unknown recovery policy"},
		{"unknown inflight policy", func(cfg *Config) {
			cfg.Faults = map[ProcessID]Fault{0: {CrashAfter: NeverCrash, Down: []Interval{iv(1, 2)}, Inflight: 7}}
		}, "unknown in-flight policy"},
		{"amnesia byzantine", func(cfg *Config) {
			cfg.Faults = map[ProcessID]Fault{0: {
				CrashAfter: NeverCrash, Down: []Interval{iv(1, 2)}, Recovery: RecoverAmnesia,
				Byzantine: ProcessFunc(func(env *Env, msg Message) {}),
			}}
		}, "amnesia recovery of a Byzantine process"},
		{"drop probability", func(cfg *Config) {
			cfg.Net = &NetFaults{Drop: 1.5}
		}, "drop probability 1.5 outside [0, 1]"},
		{"dup probability", func(cfg *Config) {
			cfg.Net = &NetFaults{Dup: -0.25}
		}, "duplicate probability -0.25 outside [0, 1]"},
		{"spike probability", func(cfg *Config) {
			cfg.Net = &NetFaults{Spike: SpikeRule{Prob: 2}}
		}, "spike probability 2 outside [0, 1]"},
		{"negative spike", func(cfg *Config) {
			cfg.Net = &NetFaults{Spike: SpikeRule{Prob: 0.5, Extra: rat.FromInt(-1)}}
		}, "spike adds negative delay"},
		{"partition negative start", func(cfg *Config) {
			cfg.Net = &NetFaults{Partitions: []Partition{{From: rat.FromInt(-1), Until: rat.One, A: []ProcessID{0}}}}
		}, "partition 0 starts at negative time"},
		{"partition empty interval", func(cfg *Config) {
			cfg.Net = &NetFaults{Partitions: []Partition{{From: rat.One, Until: rat.One, A: []ProcessID{0}}}}
		}, "partition 0 interval is empty"},
		{"partition beyond horizon", func(cfg *Config) {
			cfg.MaxTime = rat.FromInt(5)
			cfg.Net = &NetFaults{Partitions: []Partition{{From: rat.One, Until: rat.FromInt(9), A: []ProcessID{0}}}}
		}, "beyond the run horizon"},
		{"partition side A empty", func(cfg *Config) {
			cfg.Net = &NetFaults{Partitions: []Partition{{From: rat.Zero, Until: rat.One}}}
		}, "partition side A is empty"},
		{"partition side out of range", func(cfg *Config) {
			cfg.Net = &NetFaults{Partitions: []Partition{{From: rat.Zero, Until: rat.One, A: []ProcessID{9}}}}
		}, "side A has process 9 outside [0, 4)"},
		{"partition side listed twice", func(cfg *Config) {
			cfg.Net = &NetFaults{Partitions: []Partition{{From: rat.Zero, Until: rat.One, A: []ProcessID{0, 0}}}}
		}, "side A lists process 0 twice"},
		{"process on both sides", func(cfg *Config) {
			cfg.Net = &NetFaults{Partitions: []Partition{{From: rat.Zero, Until: rat.One, A: []ProcessID{0}, B: []ProcessID{0}}}}
		}, "process 0 is on both partition sides"},
		{"side A covers everything", func(cfg *Config) {
			cfg.Net = &NetFaults{Partitions: []Partition{{From: rat.Zero, Until: rat.One, A: []ProcessID{0, 1, 2, 3}}}}
		}, "covers every process"},
		{"partition cuts no link", func(cfg *Config) {
			cfg.Topology = Islands(4, 2)
			cfg.Net = &NetFaults{Partitions: []Partition{{From: rat.Zero, Until: rat.One, A: []ProcessID{0, 1}}}}
		}, "partition 0 cuts no link of the topology"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := relayConfig(4, 2)
			tc.mut(&cfg)
			_, err := Run(cfg)
			if err == nil {
				t.Fatalf("run accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestRecoverDurableResumes pins the basic recovery contract: during the
// down interval receptions occur without steps, and after the interval
// the same machine resumes — its step counter (recorded via notes)
// continues where it left off.
func TestRecoverDurableResumes(t *testing.T) {
	cfg := relayConfig(3, 6)
	cfg.Faults = map[ProcessID]Fault{2: {
		CrashAfter: NeverCrash,
		Down:       []Interval{{From: rat.FromInt(2), Until: rat.FromInt(4)}},
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tr.Faulty[2] {
		t.Error("recoverable process 2 is not marked faulty")
	}
	var maxNote int
	sawDownReception, sawResumption := false, false
	for _, pos := range tr.EventsOf(2) {
		ev := tr.Events[pos]
		down := !ev.Time.Less(rat.FromInt(2)) && ev.Time.Less(rat.FromInt(4))
		if down {
			if ev.Processed {
				t.Fatalf("event at %v processed during the down interval", ev.Time)
			}
			sawDownReception = true
		}
		if n, ok := ev.Note.(int); ok {
			if n <= maxNote {
				t.Fatalf("step counter went %d -> %d at %v: machine was respawned, want durable", maxNote, n, ev.Time)
			}
			maxNote = n
			if !ev.Time.Less(rat.FromInt(4)) {
				sawResumption = true
			}
		}
	}
	if !sawDownReception {
		t.Error("no reception during the down interval")
	}
	if !sawResumption {
		t.Error("process 2 took no step after its recovery")
	}
}

// TestRecoverAmnesiaRespawns pins the amnesia policy: the recovery
// wake-up at the interval's end respawns the machine, so its step counter
// restarts at 1 and its step indices restart at 0 — while event indices
// stay dense and monotone, keeping causality intact.
func TestRecoverAmnesiaRespawns(t *testing.T) {
	cfg := relayConfig(3, 8)
	cfg.Faults = map[ProcessID]Fault{2: {
		CrashAfter: NeverCrash,
		Down:       []Interval{{From: rat.FromInt(2), Until: rat.FromInt(4)}},
		Recovery:   RecoverAmnesia,
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	recovery := rat.FromInt(4)
	var beforeMax, firstAfter int
	for _, pos := range tr.EventsOf(2) {
		ev := tr.Events[pos]
		n, ok := ev.Note.(int)
		if !ok {
			continue
		}
		if ev.Time.Less(recovery) {
			beforeMax = n
		} else if firstAfter == 0 {
			firstAfter = n
			if !ev.Time.Equal(recovery) {
				t.Errorf("first post-recovery step at %v, want the recovery wake-up at %v", ev.Time, recovery)
			}
			if _, isWake := tr.Msgs[ev.Trigger].Payload.(Wakeup); !isWake {
				t.Errorf("first post-recovery step triggered by %T, want the recovery wake-up", tr.Msgs[ev.Trigger].Payload)
			}
		}
	}
	if beforeMax < 1 {
		t.Fatal("process 2 took no step before going down")
	}
	if firstAfter != 1 {
		t.Fatalf("first post-recovery step counter = %d, want 1 (fresh machine)", firstAfter)
	}
}

// TestWakeupDeferredPastDownInterval pins the no-lost-wake-up rule: a
// down interval covering a process's start time defers the wake-up to the
// interval's end instead of swallowing it, under both in-flight policies.
func TestWakeupDeferredPastDownInterval(t *testing.T) {
	for _, inflight := range []InflightPolicy{InflightDrop, InflightHold} {
		cfg := relayConfig(3, 4)
		cfg.Faults = map[ProcessID]Fault{1: {
			CrashAfter: NeverCrash,
			Down:       []Interval{{From: rat.Zero, Until: rat.FromInt(3)}},
			Inflight:   inflight,
		}}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr := res.Trace
		positions := tr.EventsOf(1)
		if len(positions) == 0 {
			t.Fatal("process 1 recorded no events")
		}
		wake := tr.Events[positions[0]]
		if !wake.Time.Equal(rat.FromInt(3)) {
			t.Errorf("inflight=%v: wake-up at %v, want deferred to 3", inflight, wake.Time)
		}
		if !wake.Processed {
			t.Errorf("inflight=%v: deferred wake-up was not processed", inflight)
		}
	}
}

// TestInflightHoldDefersDeliveries pins the hold policy: a delivery whose
// receive time falls in a down interval is deferred to the interval's
// end and processed there, instead of arriving as an unprocessed
// reception.
func TestInflightHoldDefersDeliveries(t *testing.T) {
	down := Interval{From: rat.FromInt(2), Until: rat.FromInt(5)}
	run := func(inflight InflightPolicy) *Trace {
		cfg := relayConfig(3, 3)
		cfg.Faults = map[ProcessID]Fault{2: {
			CrashAfter: NeverCrash, Down: []Interval{down}, Inflight: inflight,
		}}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace
	}

	held := run(InflightHold)
	for _, pos := range held.EventsOf(2) {
		ev := held.Events[pos]
		if down.Contains(ev.Time) {
			t.Fatalf("inflight=hold: delivery at %v inside the down interval", ev.Time)
		}
		if !ev.Processed {
			t.Fatalf("inflight=hold: unprocessed reception at %v", ev.Time)
		}
	}

	dropped := run(InflightDrop)
	sawUnprocessed := false
	for _, pos := range dropped.EventsOf(2) {
		ev := dropped.Events[pos]
		if down.Contains(ev.Time) && !ev.Processed {
			sawUnprocessed = true
		}
	}
	if !sawUnprocessed {
		t.Error("inflight=drop: no unprocessed reception during the down interval")
	}
}

// TestNetFaultDrop pins the drop rule: with Drop = 1 every cross-process
// message is recorded as Dropped with RecvTime == SendTime, no receive
// event has one as its trigger, and the run still validates.
func TestNetFaultDrop(t *testing.T) {
	cfg := relayConfig(3, 4)
	cfg.Net = &NetFaults{Drop: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	droppedCount := 0
	for _, m := range tr.Msgs {
		if m.IsWakeup() || m.From == m.To {
			// Wake-ups and self-deliveries are not the network's to lose.
			if m.Dropped {
				t.Fatalf("local message %d marked dropped", m.ID)
			}
			continue
		}
		if !m.Dropped {
			t.Fatalf("message %d survived Drop = 1", m.ID)
		}
		if !m.RecvTime.Equal(m.SendTime) {
			t.Fatalf("dropped message %d has RecvTime %v != SendTime %v", m.ID, m.RecvTime, m.SendTime)
		}
		droppedCount++
	}
	if droppedCount == 0 {
		t.Fatal("no cross-process messages were sent")
	}
	// Every delivered event was triggered by a wake-up or a self-delivery.
	for _, ev := range tr.Events {
		if m := tr.Msgs[ev.Trigger]; !m.IsWakeup() && m.From != m.To {
			t.Fatalf("event at %v triggered by cross-process message %d under Drop = 1", ev.Time, m.ID)
		}
	}
}

// TestNetFaultDupAndSpike pins duplication and delay spikes: with
// Dup = 1 every delivered cross-process message appears twice (the
// duplicate drawing its own delay), and a certain spike shifts every
// cross-process delivery by Extra.
func TestNetFaultDupAndSpike(t *testing.T) {
	base := relayConfig(2, 1)
	noFault, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	dup := relayConfig(2, 1)
	dup.Net = &NetFaults{Dup: 1}
	dupRes, err := Run(dup)
	if err != nil {
		t.Fatal(err)
	}
	baseCross, dupCross := 0, 0
	for _, m := range noFault.Trace.Msgs {
		if !m.IsWakeup() && m.From != m.To {
			baseCross++
		}
	}
	for _, m := range dupRes.Trace.Msgs {
		if !m.IsWakeup() && m.From != m.To {
			dupCross++
		}
	}
	if dupCross <= baseCross {
		t.Fatalf("Dup = 1 sent %d cross-process messages, fault-free run sent %d", dupCross, baseCross)
	}

	spike := relayConfig(2, 1)
	spike.Net = &NetFaults{Spike: SpikeRule{Prob: 1, Extra: rat.FromInt(10)}}
	spikeRes, err := Run(spike)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range spikeRes.Trace.Msgs {
		if m.IsWakeup() || m.From == m.To {
			continue
		}
		// ConstantDelay 1 + certain spike 10.
		if got := m.RecvTime.Sub(m.SendTime); !got.Equal(rat.FromInt(11)) {
			t.Fatalf("spiked delivery took %v, want 11", got)
		}
	}
}

// TestPartitionCutsCrossTraffic pins transient partitions: sends
// crossing the cut during its interval are dropped, sends within one
// side (and after the healing) are delivered.
func TestPartitionCutsCrossTraffic(t *testing.T) {
	cfg := relayConfig(4, 3)
	cfg.Net = &NetFaults{Partitions: []Partition{{
		From: rat.Zero, Until: rat.FromInt(2), A: []ProcessID{0, 1},
	}}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	side := func(p ProcessID) int {
		if p <= 1 {
			return 1
		}
		return 2
	}
	sawHealedCrossing := false
	for _, m := range tr.Msgs {
		if m.IsWakeup() {
			continue
		}
		crossing := side(m.From) != side(m.To)
		active := m.SendTime.Less(rat.FromInt(2))
		if crossing && active && !m.Dropped {
			t.Fatalf("message %d crossed the active partition at %v", m.ID, m.SendTime)
		}
		if (!crossing || !active) && m.Dropped {
			t.Fatalf("message %d dropped outside the partition (%d->%d at %v)", m.ID, m.From, m.To, m.SendTime)
		}
		if crossing && !active {
			sawHealedCrossing = true
		}
	}
	if !sawHealedCrossing {
		t.Error("no cross-side traffic after the partition healed")
	}
}

// TestNetFaultDeterminismAndSinkEquivalence pins the determinism
// contract of the full fault plane: identical configs produce identical
// stream digests, and the digest (with totals and truncation) is
// invariant across retention modes full/window/none.
func TestNetFaultDeterminismAndSinkEquivalence(t *testing.T) {
	build := func() Config {
		cfg := relayConfig(5, 6)
		cfg.Delays = UniformDelay{Min: rat.One, Max: rat.FromInt(2)}
		cfg.Seed = 7
		cfg.Net = &NetFaults{
			Drop: 0.2, Dup: 0.15, Spike: SpikeRule{Prob: 0.1, Extra: rat.FromInt(3)},
			Partitions: []Partition{{From: rat.FromInt(2), Until: rat.FromInt(4), A: []ProcessID{0, 1}}},
		}
		cfg.Faults = map[ProcessID]Fault{4: {
			CrashAfter: NeverCrash,
			Down:       []Interval{{From: rat.One, Until: rat.FromInt(3)}},
			Recovery:   RecoverAmnesia,
			Inflight:   InflightHold,
		}}
		return cfg
	}
	engine := NewEngine()
	full, err := engine.Run(build())
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if full.Trace.TotalEvents() == 0 {
		t.Fatal("run recorded no events")
	}
	again, err := engine.Run(build())
	if err != nil {
		t.Fatal(err)
	}
	if again.Trace.StreamHash() != full.Trace.StreamHash() {
		t.Fatalf("same config, different stream hashes: %016x vs %016x",
			again.Trace.StreamHash(), full.Trace.StreamHash())
	}
	for _, sink := range []Sink{RetainWindow(16), RetainNone()} {
		cfg := build()
		cfg.Sink = sink
		res, err := engine.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bt := res.Trace
		if bt.TotalEvents() != full.Trace.TotalEvents() || bt.TotalMsgs() != full.Trace.TotalMsgs() {
			t.Fatalf("%v: totals (%d, %d), want (%d, %d)", sink.Retention().Mode,
				bt.TotalEvents(), bt.TotalMsgs(), full.Trace.TotalEvents(), full.Trace.TotalMsgs())
		}
		if bt.StreamHash() != full.Trace.StreamHash() {
			t.Fatalf("%v: stream hash %016x, want %016x", sink.Retention().Mode,
				bt.StreamHash(), full.Trace.StreamHash())
		}
		if res.Truncated != full.Truncated {
			t.Fatalf("%v: truncated %v, want %v", sink.Retention().Mode, res.Truncated, full.Truncated)
		}
	}
}
