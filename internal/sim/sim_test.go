package sim

import (
	"reflect"
	"testing"

	"repro/internal/rat"
)

// echo replies to every ping with a pong, up to a budget.
type echo struct {
	pings  int
	budget int
}

type ping struct{ Hop int }

func (e *echo) Step(env *Env, msg Message) {
	switch m := msg.Payload.(type) {
	case Wakeup:
		if env.Self() == 0 {
			env.Send(1, ping{Hop: 0})
		}
	case ping:
		e.pings++
		if m.Hop < e.budget {
			to := ProcessID(1 - int(env.Self()))
			env.Send(to, ping{Hop: m.Hop + 1})
		}
		env.SetNote(m.Hop)
	}
}

func twoProcConfig(budget int) Config {
	return Config{
		N:      2,
		Spawn:  func(p ProcessID) Process { return &echo{budget: budget} },
		Delays: ConstantDelay{D: rat.One},
	}
}

func TestPingPong(t *testing.T) {
	res, err := Run(twoProcConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Error("run unexpectedly truncated")
	}
	// 2 wake-ups + 6 pings (hops 0..5).
	if got := len(tr.Events); got != 8 {
		t.Errorf("got %d events, want 8", got)
	}
	// Notes record hop numbers on ping steps.
	var hops []int
	for _, ev := range tr.Events {
		if h, ok := ev.Note.(int); ok {
			hops = append(hops, h)
		}
	}
	if want := []int{0, 1, 2, 3, 4, 5}; !reflect.DeepEqual(hops, want) {
		t.Errorf("hops = %v, want %v", hops, want)
	}
	// Times advance by one per hop.
	last := tr.Events[len(tr.Events)-1]
	if !last.Time.Equal(rat.FromInt(6)) {
		t.Errorf("final event at %v, want 6", last.Time)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Trace {
		cfg := Config{
			N:      3,
			Spawn:  func(p ProcessID) Process { return &echo{budget: 10} },
			Delays: UniformDelay{Min: rat.One, Max: rat.FromInt(3)},
			Seed:   42,
		}
		cfg.Spawn = func(p ProcessID) Process {
			return ProcessFunc(func(env *Env, msg Message) {
				if _, ok := msg.Payload.(Wakeup); ok {
					env.Broadcast(ping{})
				}
			})
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace
	}
	a, b := run(), run()
	if len(a.Events) != len(b.Events) || len(a.Msgs) != len(b.Msgs) {
		t.Fatalf("nondeterministic sizes: %d/%d events, %d/%d msgs",
			len(a.Events), len(b.Events), len(a.Msgs), len(b.Msgs))
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Proc != eb.Proc || ea.Index != eb.Index || !ea.Time.Equal(eb.Time) {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestWakeupFirst(t *testing.T) {
	// Process 1 starts late; a zero-delay message sent to it at time 0 must
	// still be received only at/after its wake-up, and after the wake-up in
	// delivery order.
	var order []string
	cfg := Config{
		N: 2,
		Spawn: func(p ProcessID) Process {
			return ProcessFunc(func(env *Env, msg Message) {
				switch msg.Payload.(type) {
				case Wakeup:
					order = append(order, "wake")
					if env.Self() == 0 {
						env.Send(1, ping{})
					}
				case ping:
					order = append(order, "ping")
				}
			})
		},
		Delays:     ConstantDelay{D: rat.Zero},
		StartTimes: []Time{rat.Zero, rat.FromInt(10)},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"wake", "wake", "ping"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
	// The ping's receive time is clamped to the wake-up time.
	var pingMsg *Message
	for i := range res.Trace.Msgs {
		if _, ok := res.Trace.Msgs[i].Payload.(ping); ok {
			pingMsg = &res.Trace.Msgs[i]
		}
	}
	if pingMsg == nil {
		t.Fatal("ping message not found")
	}
	if !pingMsg.RecvTime.Equal(rat.FromInt(10)) {
		t.Errorf("ping received at %v, want 10", pingMsg.RecvTime)
	}
}

func TestCrashFault(t *testing.T) {
	cfg := twoProcConfig(10)
	cfg.Faults = map[ProcessID]Fault{1: Crash(2)} // wake-up + one ping
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if !tr.Faulty[1] || tr.Faulty[0] {
		t.Errorf("Faulty = %v, want [false true]", tr.Faulty)
	}
	if got := tr.StepCount(1); got != 2 {
		t.Errorf("crashed process executed %d steps, want 2", got)
	}
	// Receive events at the crashed process still occur (Processed=false).
	sawUnprocessed := false
	for _, ev := range tr.Events {
		if ev.Proc == 1 && !ev.Processed {
			sawUnprocessed = true
		}
	}
	if !sawUnprocessed {
		t.Error("no unprocessed receive event at crashed process")
	}
}

func TestSilentProcess(t *testing.T) {
	cfg := twoProcConfig(3)
	cfg.Faults = map[ProcessID]Fault{1: Silent()}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Trace.StepCount(1); got != 0 {
		t.Errorf("silent process executed %d steps, want 0", got)
	}
	if res.Trace.StepCount(0) != 1 {
		t.Errorf("process 0 should only execute its wake-up")
	}
}

func TestByzantineFault(t *testing.T) {
	// Byzantine process 1 replies with forged hop numbers.
	byz := ProcessFunc(func(env *Env, msg Message) {
		if _, ok := msg.Payload.(ping); ok {
			env.Send(0, ping{Hop: 999})
		}
	})
	cfg := twoProcConfig(3)
	cfg.Faults = map[ProcessID]Fault{1: ByzantineFault(byz)}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	forged := false
	for _, m := range res.Trace.Msgs {
		if p, ok := m.Payload.(ping); ok && p.Hop == 999 {
			forged = true
		}
	}
	if !forged {
		t.Error("Byzantine handler did not run")
	}
}

func TestScriptedSends(t *testing.T) {
	got := 0
	cfg := Config{
		N: 2,
		Spawn: func(p ProcessID) Process {
			return ProcessFunc(func(env *Env, msg Message) {
				if s, ok := msg.Payload.(string); ok && s == "scripted" {
					got++
				}
			})
		},
		Delays: ConstantDelay{D: rat.One},
		Faults: map[ProcessID]Fault{1: {
			CrashAfter: NeverCrash,
			Script: []ScriptedSend{
				{At: rat.FromInt(5), To: 0, Payload: "scripted"},
				{At: rat.FromInt(7), To: 0, Payload: "scripted"},
			},
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("received %d scripted messages, want 2", got)
	}
	// Scripted messages carry the faulty sender's ID.
	for _, m := range res.Trace.Msgs {
		if s, ok := m.Payload.(string); ok && s == "scripted" {
			if m.From != 1 || m.SendStep != SendStepScripted {
				t.Errorf("scripted message attribution wrong: %+v", m)
			}
		}
	}
}

func TestMaxEventsTruncation(t *testing.T) {
	// Two processes ping forever.
	cfg := Config{
		N: 2,
		Spawn: func(p ProcessID) Process {
			return ProcessFunc(func(env *Env, msg Message) {
				switch msg.Payload.(type) {
				case Wakeup:
					if env.Self() == 0 {
						env.Send(1, ping{})
					}
				case ping:
					env.Send(ProcessID(1-int(env.Self())), ping{})
				}
			})
		},
		Delays:    ConstantDelay{D: rat.One},
		MaxEvents: 50,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("expected truncation")
	}
	if len(res.Trace.Events) > 50 {
		t.Errorf("%d events exceed MaxEvents", len(res.Trace.Events))
	}
}

func TestUntilPredicate(t *testing.T) {
	cfg := twoProcConfig(100)
	cfg.Until = func(procs []Process) bool {
		return procs[0].(*echo).pings >= 3
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Error("Until stop reported as truncation")
	}
	if got := res.Procs[0].(*echo).pings; got != 3 {
		t.Errorf("stopped at %d pings, want 3", got)
	}
}

func TestTopologyRestriction(t *testing.T) {
	// Ring topology 0->1->2->0 via a predicate that excludes from == to.
	// Broadcast reaches the next process in the ring plus — regardless of
	// the predicate — the sender itself: self-delivery is unconditional
	// (Algorithm 1's assumption), so each process receives exactly two
	// copies, one from itself and one from its predecessor.
	recv := make([]int, 3)
	cfg := Config{
		N: 3,
		Spawn: func(p ProcessID) Process {
			return ProcessFunc(func(env *Env, msg Message) {
				switch msg.Payload.(type) {
				case Wakeup:
					env.Broadcast("hi")
				case string:
					recv[env.Self()]++
				}
			})
		},
		Topology: TopologyFunc(func(from, to ProcessID) bool { return (int(from)+1)%3 == int(to) }),
		Delays:   ConstantDelay{D: rat.One},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recv, []int{2, 2, 2}) {
		t.Errorf("receive counts %v, want [2 2 2]", recv)
	}
}

func TestSendOutsideTopologyPanics(t *testing.T) {
	cfg := Config{
		N: 2,
		Spawn: func(p ProcessID) Process {
			return ProcessFunc(func(env *Env, msg Message) {
				if _, ok := msg.Payload.(Wakeup); ok && env.Self() == 0 {
					env.Send(1, "x")
				}
			})
		},
		Topology: TopologyFunc(func(from, to ProcessID) bool { return false }),
		Delays:   ConstantDelay{D: rat.One},
	}
	defer func() {
		if recover() == nil {
			t.Error("send outside topology did not panic")
		}
	}()
	_, _ = Run(cfg)
}

func TestConfigValidation(t *testing.T) {
	valid := twoProcConfig(1)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero N", func(c *Config) { c.N = 0 }},
		{"nil spawn", func(c *Config) { c.Spawn = nil }},
		{"nil delays", func(c *Config) { c.Delays = nil }},
		{"bad start times", func(c *Config) { c.StartTimes = []Time{rat.Zero} }},
		{"fault out of range", func(c *Config) { c.Faults = map[ProcessID]Fault{5: Crash(1)} }},
		{"bad crash after", func(c *Config) { c.Faults = map[ProcessID]Fault{0: {CrashAfter: -7}} }},
	}
	for _, tt := range tests {
		cfg := valid
		tt.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: no error", tt.name)
		}
	}
}

func TestZeroDelayMessages(t *testing.T) {
	// Zero delays are explicitly allowed by the ABC model (Fig. 1's m3).
	res, err := Run(Config{
		N: 2,
		Spawn: func(p ProcessID) Process {
			return ProcessFunc(func(env *Env, msg Message) {
				if _, ok := msg.Payload.(Wakeup); ok && env.Self() == 0 {
					env.Send(1, ping{})
				}
			})
		},
		Delays: ConstantDelay{D: rat.Zero},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, m := range tr.Msgs {
		if _, ok := m.Payload.(ping); ok && !m.RecvTime.Equal(m.SendTime) {
			t.Errorf("zero-delay message has recv %v != send %v", m.RecvTime, m.SendTime)
		}
	}
}

func TestTraceAccessors(t *testing.T) {
	res, err := Run(twoProcConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if pos := tr.EventAt(0, 0); pos < 0 || tr.Events[pos].Proc != 0 || tr.Events[pos].Index != 0 {
		t.Errorf("EventAt(0,0) = %d", pos)
	}
	if pos := tr.EventAt(0, 99); pos != -1 {
		t.Errorf("EventAt(0,99) = %d, want -1", pos)
	}
	if got := tr.CorrectProcesses(); len(got) != 2 {
		t.Errorf("CorrectProcesses = %v", got)
	}
	evs := tr.EventsOf(1)
	for _, pos := range evs {
		if tr.Events[pos].Proc != 1 {
			t.Errorf("EventsOf(1) contains event of p%d", tr.Events[pos].Proc)
		}
	}
	if tr.MaxTime().Sign() <= 0 {
		t.Error("MaxTime not positive")
	}
}
