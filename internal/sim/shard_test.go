package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rat"
)

// shardCounts is the determinism grid's shard axis (ISSUE 10 acceptance:
// byte-identical traces for shards ∈ {1, 2, 4, 8} and vs serial).
var shardCounts = []int{1, 2, 4, 8}

// TestShardedMatchesSerial is the core byte-identity contract: for every
// heterogeneous engine config, every shard count produces exactly the
// serial engine's trace, truncation flag, and hash — on a fresh engine
// and on one pooled engine that hops between modes.
func TestShardedMatchesSerial(t *testing.T) {
	pooled := NewEngine()
	for name, cfg := range engineTestConfigs() {
		serial, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: serial: %v", name, err)
		}
		want := serial.Trace.Hash()
		if serial.Shards != 1 {
			t.Fatalf("%s: serial run reports Shards = %d", name, serial.Shards)
		}
		for _, shards := range shardCounts {
			scfg := cfg
			scfg.Shards = shards
			for runner, eng := range map[string]*Engine{"fresh": NewEngine(), "pooled": pooled} {
				res, err := eng.Run(scfg)
				if err != nil {
					t.Fatalf("%s shards=%d %s: %v", name, shards, runner, err)
				}
				if h := res.Trace.Hash(); h != want {
					t.Errorf("%s shards=%d %s: trace hash %x, serial %x", name, shards, runner, h, want)
				}
				if res.Truncated != serial.Truncated {
					t.Errorf("%s shards=%d %s: truncated %v, serial %v", name, shards, runner, res.Truncated, serial.Truncated)
				}
			}
		}
	}
}

// TestShardedRetention pins sink equivalence under sharding: for each
// retention mode, the stream hash and totals at every shard count equal
// the serial run's, and the full-retention stream hash agrees with the
// bounded modes (the PR 8 sink-equivalence property, now on the sharded
// path).
func TestShardedRetention(t *testing.T) {
	base := Config{
		N: 64,
		Spawn: func(ProcessID) Process {
			return ProcessFunc(func(env *Env, msg Message) {
				if env.StepIndex() < 6 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays:   UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Topology: Ring(64),
		Seed:     5,
	}
	sinks := map[string]Sink{"full": nil, "window": RetainWindow(32), "none": RetainNone()}
	for mode, sink := range sinks {
		cfg := base
		cfg.Sink = sink
		serial, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s serial: %v", mode, err)
		}
		for _, shards := range shardCounts[1:] {
			scfg := cfg
			scfg.Shards = shards
			res, err := Run(scfg)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", mode, shards, err)
			}
			if res.Shards != shards {
				t.Fatalf("%s shards=%d: ran with Shards = %d (unexpected fallback)", mode, shards, res.Shards)
			}
			if res.Trace.StreamHash() != serial.Trace.StreamHash() {
				t.Errorf("%s shards=%d: stream hash differs from serial", mode, shards)
			}
			if res.Trace.TotalEvents() != serial.Trace.TotalEvents() || res.Trace.TotalMsgs() != serial.Trace.TotalMsgs() {
				t.Errorf("%s shards=%d: totals %d/%d, serial %d/%d", mode, shards,
					res.Trace.TotalEvents(), res.Trace.TotalMsgs(), serial.Trace.TotalEvents(), serial.Trace.TotalMsgs())
			}
		}
	}
}

// TestShardedNetFaults drives the message-level fault plane (drop, dup,
// spike, a transient partition) and crash-recovery (durable, both
// in-flight policies) through the sharded engine: every RNG draw happens
// at the serial merge, so the faulty traces must be byte-identical too.
func TestShardedNetFaults(t *testing.T) {
	spawn := func(ProcessID) Process {
		return ProcessFunc(func(env *Env, msg Message) {
			if env.StepIndex() < 8 {
				env.Broadcast(env.StepIndex())
			}
		})
	}
	cfgs := map[string]Config{
		"lossy": {
			N: 24, Spawn: spawn,
			Delays: UniformDelay{Min: rat.One, Max: rat.FromInt(2)},
			Net: &NetFaults{
				Drop: 0.15, Dup: 0.1,
				Spike: SpikeRule{Prob: 0.2, Extra: rat.FromInt(3)},
			},
			Topology: Ring(24), Seed: 9,
		},
		"partition": {
			N: 16, Spawn: spawn,
			Delays: UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
			Net: &NetFaults{
				Partitions: []Partition{{
					From: rat.FromInt(2), Until: rat.FromInt(5),
					A: []ProcessID{0, 1, 2, 3, 4, 5, 6, 7},
				}},
			},
			Topology: Ring(16), Seed: 13,
		},
		"recovery-hold": {
			N: 12, Spawn: spawn,
			Faults: map[ProcessID]Fault{
				3: {CrashAfter: NeverCrash, Inflight: InflightHold,
					Down: []Interval{{From: rat.FromInt(2), Until: rat.FromInt(6)}}},
				7: {CrashAfter: NeverCrash, Inflight: InflightDrop,
					Down: []Interval{{From: rat.One, Until: rat.FromInt(4)}}},
			},
			Delays:   UniformDelay{Min: rat.One, Max: rat.FromInt(2)},
			Topology: Ring(12), Seed: 21,
		},
	}
	for name, cfg := range cfgs {
		serial, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		want := serial.Trace.Hash()
		for _, shards := range shardCounts[1:] {
			scfg := cfg
			scfg.Shards = shards
			res, err := Run(scfg)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			if res.Shards != shards {
				t.Fatalf("%s shards=%d: ran with Shards = %d (unexpected fallback)", name, shards, res.Shards)
			}
			if res.Trace.Hash() != want {
				t.Errorf("%s shards=%d: trace differs from serial", name, shards)
			}
		}
	}
}

// TestShardedTruncation pins the truncation byte-identity: a MaxEvents
// budget that lands mid-run (the serial-tail path) and a MaxTime horizon
// must stop a sharded run at exactly the serial engine's event.
func TestShardedTruncation(t *testing.T) {
	base := Config{
		N: 50,
		Spawn: func(ProcessID) Process {
			return ProcessFunc(func(env *Env, msg Message) {
				if env.StepIndex() < 20 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays:   UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Topology: Ring(50),
		Seed:     17,
	}
	cases := map[string]func(*Config){
		"max-events": func(c *Config) { c.MaxEvents = 777 },
		"max-time":   func(c *Config) { c.MaxTime = rat.FromInt(5) },
		"both":       func(c *Config) { c.MaxEvents = 500; c.MaxTime = rat.FromInt(4) },
	}
	for name, tweak := range cases {
		cfg := base
		tweak(&cfg)
		serial, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		if !serial.Truncated {
			t.Fatalf("%s: serial run did not truncate; the case tests nothing", name)
		}
		for _, shards := range []int{2, 8} {
			scfg := cfg
			scfg.Shards = shards
			res, err := Run(scfg)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			if !res.Truncated {
				t.Errorf("%s shards=%d: not truncated", name, shards)
			}
			if res.Trace.Hash() != serial.Trace.Hash() {
				t.Errorf("%s shards=%d: truncated trace differs from serial", name, shards)
			}
			if res.Trace.TotalEvents() != serial.Trace.TotalEvents() {
				t.Errorf("%s shards=%d: %d events, serial %d", name, shards,
					res.Trace.TotalEvents(), serial.Trace.TotalEvents())
			}
		}
	}
}

// TestShardedFallbacks pins every serial-fallback gate: configurations
// the conservative window cannot execute must run serially
// (Result.Shards == 1) and still produce the serial trace. The
// zero-lookahead case — a delay policy with no positive minimum — is the
// ISSUE's named CI case.
func TestShardedFallbacks(t *testing.T) {
	spawn := func(ProcessID) Process {
		return ProcessFunc(func(env *Env, msg Message) {
			if env.StepIndex() < 4 {
				env.Broadcast(env.StepIndex())
			}
		})
	}
	base := Config{
		N: 8, Spawn: spawn,
		Delays: UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:   3, Shards: 4,
	}
	cases := map[string]func(*Config){
		"zero-bound-constant": func(c *Config) { c.Delays = ConstantDelay{D: rat.Zero} },
		"zero-bound-uniform":  func(c *Config) { c.Delays = UniformDelay{Min: rat.Zero, Max: rat.One} },
		"zero-bound-override": func(c *Config) {
			c.Delays = OverrideDelay{
				Base:     UniformDelay{Min: rat.One, Max: rat.FromInt(2)},
				Match:    func(m Message) bool { return false },
				Override: ConstantDelay{D: rat.Zero},
			}
		},
		"opaque-policy": func(c *Config) {
			c.Delays = DelayFunc(func(m Message, rng *rand.Rand) Time { return rat.One })
		},
		"until":   func(c *Config) { c.Until = func([]Process) bool { return false } },
		"monitor": func(c *Config) { c.Monitor = func(*Trace) error { return nil } },
		"amnesia": func(c *Config) {
			c.Faults = map[ProcessID]Fault{2: {CrashAfter: NeverCrash, Recovery: RecoverAmnesia,
				Down: []Interval{{From: rat.One, Until: rat.FromInt(2)}}}}
		},
		"byzantine": func(c *Config) {
			c.Faults = map[ProcessID]Fault{1: {CrashAfter: NeverCrash,
				Byzantine: ProcessFunc(func(env *Env, msg Message) {})}}
		},
		"negative-start": func(c *Config) {
			st := make([]Time, c.N)
			st[0] = rat.FromInt(-1)
			c.StartTimes = st
		},
		"shards-one":  func(c *Config) { c.Shards = 1 },
		"shards-zero": func(c *Config) { c.Shards = 0 },
	}
	for name, tweak := range cases {
		cfg := base
		tweak(&cfg)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Shards != 1 {
			t.Errorf("%s: ran sharded (Shards = %d), want serial fallback", name, res.Shards)
		}
		serial := cfg
		serial.Shards = 0
		want, err := Run(serial)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		if res.Trace.Hash() != want.Trace.Hash() {
			t.Errorf("%s: fallback trace differs from serial", name)
		}
	}
	// Sanity: the base config itself (positive bound, no callbacks) does
	// NOT fall back — otherwise every case above passes vacuously.
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 {
		t.Fatalf("eligible base config ran with Shards = %d, want 4", res.Shards)
	}
}

// TestShardedQueueKinds runs the shard grid under both forced queue
// implementations: the per-shard queue choice must be invisible, like the
// engine-level one.
func TestShardedQueueKinds(t *testing.T) {
	cfg := Config{
		N: 40,
		Spawn: func(ProcessID) Process {
			return ProcessFunc(func(env *Env, msg Message) {
				if env.StepIndex() < 6 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays:   GrowingDelay{Base: rat.One, Rate: rat.New(1, 20), Spread: rat.New(6, 5)},
		Topology: Torus(8, 5),
		Seed:     23,
	}
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Trace.Hash()
	for _, kind := range []QueueKind{QueueHeap, QueueBucket} {
		for _, shards := range []int{2, 4} {
			scfg := cfg
			scfg.Queue = kind
			scfg.Shards = shards
			res, err := Run(scfg)
			if err != nil {
				t.Fatalf("queue=%v shards=%d: %v", kind, shards, err)
			}
			if res.Trace.Hash() != want {
				t.Errorf("queue=%v shards=%d: trace differs from serial", kind, shards)
			}
		}
	}
}

// TestShardRanges pins the partitioner's contract: p contiguous,
// non-empty, exhaustive ranges for any n >= p, with and without a CSR
// topology (degree-weighted cuts).
func TestShardRanges(t *testing.T) {
	check := func(name string, n, p int, links *Links) {
		t.Helper()
		bounds := shardRanges(n, p, links)
		if len(bounds) != p+1 || bounds[0] != 0 || bounds[p] != n {
			t.Fatalf("%s: bounds %v do not span [0, %d]", name, bounds, n)
		}
		for i := 1; i <= p; i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("%s: empty shard %d in %v", name, i-1, bounds)
			}
		}
	}
	check("uniform", 100, 8, nil)
	check("n-equals-p", 8, 8, nil)
	check("ring", 1000, 8, Ring(1000))
	check("scalefree", 500, 4, ScaleFree(500, 2, 1))
	check("hubs-first", 64, 8, ScaleFree(64, 4, 7))
}

// TestShardedPanicPropagates verifies a panic inside a process step on a
// worker shard surfaces on the Run caller, and the engine remains usable
// afterwards.
func TestShardedPanicPropagates(t *testing.T) {
	e := NewEngine()
	cfg := Config{
		N: 8,
		Spawn: func(p ProcessID) Process {
			return ProcessFunc(func(env *Env, msg Message) {
				if p == 7 && env.StepIndex() == 1 {
					panic("boom")
				}
				if env.StepIndex() < 4 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays: UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:   1, Shards: 4,
	}
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("worker panic did not propagate")
			} else if fmt.Sprint(r) != "boom" {
				t.Errorf("panic = %v, want boom", r)
			}
		}()
		_, _ = e.Run(cfg)
	}()
	// The engine must still run cleanly after the aborted sharded run.
	clean := engineTestConfigs()["uniform-n6"]
	fresh, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace.Hash() != fresh.Trace.Hash() {
		t.Error("engine run after sharded panic differs from fresh run")
	}
}

// TestMinDelayBound pins the lookahead derivation per policy class.
func TestMinDelayBound(t *testing.T) {
	half := rat.New(1, 2)
	cases := []struct {
		name string
		p    DelayPolicy
		want Time
		ok   bool
	}{
		{"constant", ConstantDelay{D: half}, half, true},
		{"constant-zero", ConstantDelay{D: rat.Zero}, rat.Zero, true},
		{"constant-negative", ConstantDelay{D: rat.FromInt(-1)}, rat.Zero, false},
		{"uniform", UniformDelay{Min: rat.One, Max: rat.FromInt(2)}, rat.One, true},
		{"uniform-inverted", UniformDelay{Min: rat.FromInt(2), Max: rat.One}, rat.One, true},
		{"growing", GrowingDelay{Base: half, Rate: rat.New(1, 10), Spread: rat.New(6, 5)}, half, true},
		{"growing-negative-rate", GrowingDelay{Base: half, Rate: rat.FromInt(-1)}, rat.Zero, false},
		{"perlink", PerLinkDelay{
			Default: UniformDelay{Min: rat.One, Max: rat.FromInt(2)},
			Links:   map[Link]DelayPolicy{{0, 1}: ConstantDelay{D: half}},
		}, half, true},
		{"override", OverrideDelay{
			Base:     UniformDelay{Min: rat.One, Max: rat.FromInt(2)},
			Override: ConstantDelay{D: half},
		}, half, true},
		{"opaque", DelayFunc(func(Message, *rand.Rand) Time { return rat.One }), rat.Zero, false},
	}
	for _, c := range cases {
		// The engine sees compiled policies; the bound must agree on both.
		for _, variant := range []DelayPolicy{c.p, compileDelays(c.p)} {
			got, ok := minDelayBound(variant)
			if ok != c.ok {
				t.Errorf("%s: ok = %v, want %v", c.name, ok, c.ok)
				continue
			}
			if ok && !got.Equal(c.want) {
				t.Errorf("%s: bound = %v, want %v", c.name, got, c.want)
			}
		}
	}
}
