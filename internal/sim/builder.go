package sim

import (
	"fmt"

	"repro/internal/rat"
)

// TraceBuilder constructs traces by hand, event by event. It exists so that
// the exact space–time diagrams of the paper's figures (Figs. 1–5 and 8–10)
// can be stated directly, with explicit occurrence times and message
// patterns, rather than coaxed out of a scheduler.
//
// Usage: Wake each process, then chain Msg calls. Each Msg names an
// existing sending event (process, event index) and appends a new receive
// event at the destination. Build validates and returns the trace.
type TraceBuilder struct {
	n      int
	events []Event
	msgs   []Message
	faulty []bool
	last   []Time // last event time per process; -1 length marker via woke
	count  []int  // events per process
	err    error
}

// NewTraceBuilder returns a builder for an n-process system.
func NewTraceBuilder(n int) *TraceBuilder {
	if n <= 0 {
		panic(fmt.Sprintf("sim: NewTraceBuilder(%d)", n))
	}
	return &TraceBuilder{
		n:      n,
		faulty: make([]bool, n),
		last:   make([]Time, n),
		count:  make([]int, n),
	}
}

// SetFaulty marks p as faulty; its sent messages will be dropped from the
// execution graph.
func (b *TraceBuilder) SetFaulty(p ProcessID) *TraceBuilder {
	b.faulty[p] = true
	return b
}

// Wake appends process p's wake-up event at time t. It must precede any
// other event of p.
func (b *TraceBuilder) Wake(p ProcessID, t Time) *TraceBuilder {
	if b.err != nil {
		return b
	}
	if b.count[p] != 0 {
		b.err = fmt.Errorf("sim: Wake(p%d) after %d events", p, b.count[p])
		return b
	}
	id := MsgID(len(b.msgs))
	b.msgs = append(b.msgs, Message{
		ID: id, From: External, To: p, SendStep: SendStepExternal,
		SendTime: t, RecvTime: t, Payload: Wakeup{},
	})
	b.appendEvent(p, t, id)
	return b
}

// WakeAll wakes every process at time t.
func (b *TraceBuilder) WakeAll(t Time) *TraceBuilder {
	for p := ProcessID(0); int(p) < b.n; p++ {
		b.Wake(p, t)
	}
	return b
}

// Msg appends a message from the existing event (from, fromIdx) to process
// `to`, received at time recvT, creating to's next receive event. The send
// time is the sending event's time. Payload may be nil.
func (b *TraceBuilder) Msg(from ProcessID, fromIdx int, to ProcessID, recvT Time, payload any) *TraceBuilder {
	if b.err != nil {
		return b
	}
	if fromIdx < 0 || fromIdx >= b.count[from] {
		b.err = fmt.Errorf("sim: Msg from nonexistent event p%d/%d", from, fromIdx)
		return b
	}
	sendT := b.eventTime(from, fromIdx)
	if recvT.Less(sendT) {
		b.err = fmt.Errorf("sim: message from p%d/%d received at %v before sent at %v", from, fromIdx, recvT, sendT)
		return b
	}
	if b.count[to] == 0 {
		b.err = fmt.Errorf("sim: message to p%d before its wake-up", to)
		return b
	}
	if recvT.Less(b.last[to]) {
		b.err = fmt.Errorf("sim: receive at p%d at %v precedes its last event at %v", to, recvT, b.last[to])
		return b
	}
	id := MsgID(len(b.msgs))
	b.msgs = append(b.msgs, Message{
		ID: id, From: from, To: to, SendStep: fromIdx,
		SendTime: sendT, RecvTime: recvT, Payload: payload,
	})
	b.appendEvent(to, recvT, id)
	return b
}

// MsgAt is Msg with integer times, for brevity in tests.
func (b *TraceBuilder) MsgAt(from ProcessID, fromIdx int, to ProcessID, recvT int64, payload any) *TraceBuilder {
	return b.Msg(from, fromIdx, to, rat.FromInt(recvT), payload)
}

// LastIndex returns the index of p's most recent event, or -1 if none.
func (b *TraceBuilder) LastIndex(p ProcessID) int { return b.count[p] - 1 }

func (b *TraceBuilder) appendEvent(p ProcessID, t Time, trigger MsgID) {
	b.events = append(b.events, Event{
		Proc: p, Index: b.count[p], Time: t, Trigger: trigger, Processed: true,
	})
	b.count[p]++
	b.last[p] = t
}

func (b *TraceBuilder) eventTime(p ProcessID, idx int) Time {
	for _, ev := range b.events {
		if ev.Proc == p && ev.Index == idx {
			return ev.Time
		}
	}
	panic("sim: eventTime on missing event")
}

// Build finalizes and validates the trace.
func (b *TraceBuilder) Build() (*Trace, error) {
	if b.err != nil {
		return nil, b.err
	}
	t := &Trace{
		N:      b.n,
		Events: b.events,
		Msgs:   b.msgs,
		Faulty: b.faulty,
	}
	t.indexEvents()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustBuild is Build, panicking on error. For tests and examples.
func (b *TraceBuilder) MustBuild() *Trace {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
