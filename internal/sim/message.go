// Package sim is a deterministic discrete-event simulator for asynchronous
// message-driven distributed systems, faithful to the system model of
// Section 2 of the ABC paper:
//
//   - every process is a state machine executing atomic, zero-time computing
//     steps, each triggered by the reception of exactly one message;
//   - an external wake-up message initiates each process's very first step,
//     and that step occurs before any message from another process is
//     received;
//   - message delays are finite but otherwise arbitrary, supplied by a
//     pluggable DelayPolicy (including zero and growing delays);
//   - up to f processes may be faulty: crash faults stop a process's
//     computing steps while receive events keep occurring at it (the paper's
//     distinction between reception, which the network controls, and
//     processing, which the receiver controls), and Byzantine faults replace
//     the process's state machine with arbitrary behavior.
//
// The simulator records a complete Trace of receive events and messages from
// which internal/causality reconstructs the execution graph G_α of
// Definition 1.
package sim

import (
	"fmt"

	"repro/internal/rat"
)

// Time is a point in simulated real time. Algorithms in the ABC model are
// time-free and never observe Time; it exists so that admissibility checkers
// for timed models (Θ-Model, ParSync) and real-time cuts (Theorem 3) can be
// exact.
type Time = rat.Rat

// ProcessID identifies a process, 0 <= id < N.
type ProcessID int

// External is the pseudo-sender of wake-up messages (the externally
// triggered initial computing step of Section 2).
const External ProcessID = -1

// MsgID indexes a message within a Trace.
type MsgID int

// SendStep values with special meaning.
const (
	// SendStepExternal marks wake-up messages, which have no sending step.
	SendStepExternal = -1
	// SendStepScripted marks messages injected by a Byzantine script rather
	// than by a computing step.
	SendStepScripted = -2
)

// Message is a single point-to-point message, either in transit or
// delivered. Wake-up messages have From == External.
type Message struct {
	ID       MsgID
	From     ProcessID
	To       ProcessID
	SendStep int  // index of the sender's triggering event; see SendStep* consts
	SendTime Time // when the sending step occurred
	RecvTime Time // when the receive event occurred at To
	Payload  any
	// Dropped marks a message the network lost (Config.Net drop rule or an
	// active partition). Dropped messages carry RecvTime == SendTime, are
	// never delivered — no receive event has one as its trigger — and are
	// invisible to the causality graph; they are recorded so the trace
	// commits to the loss pattern (Hash and StreamHash both fold it).
	Dropped bool
}

// IsWakeup reports whether m is an external wake-up message.
func (m Message) IsWakeup() bool { return m.From == External }

// Event is a receive event, in the sense of Section 2: the reception of one
// message at one process. For a correct process the receive event and the
// computing step it triggers coincide (Processed == true); for a crashed
// process the reception still occurs but no step is executed
// (Processed == false).
type Event struct {
	Proc    ProcessID
	Index   int // per-process receive-event sequence number; 0 is the wake-up
	Time    Time
	Trigger MsgID
	// Processed is false when the receiving process had already crashed and
	// therefore executed no computing step for this reception.
	Processed bool
	// Note is an algorithm-supplied annotation recorded via Env.SetNote
	// during the triggered step, e.g. the clock value after executing
	// Algorithm 1's rules. It is nil when unset.
	Note any
}

// Trace is the record of one execution: receive events in their global
// delivery order and messages. Under the default full retention
// (Config.Sink nil or RetainAll) it is complete — every event and
// message, the input to causality.Build. Under bounded retention
// (RetainWindow, RetainNone) Events and Msgs hold only the retained
// suffix (or nothing) while TotalEvents/TotalMsgs/StreamHash still
// describe the whole run; consumers must go through EventByPos/TriggerOf
// instead of indexing the slices absolutely, and Complete reports which
// regime a trace is in.
type Trace struct {
	N      int
	Events []Event
	Msgs   []Message
	// Faulty[p] is true when process p was configured with a fault
	// (crash or Byzantine).
	Faulty []bool
	// eventPos[p][i] is the position in Events of process p's i-th receive
	// event. Dense per-process rows replace the former (proc, index) hash
	// map: the engine appends one entry per recorded event, and EventAt is
	// two bounds checks and a load. int32 positions are ample — traces are
	// memory-bound far below 2^31 events. Bounded-retention traces do not
	// maintain it (positions slide).
	eventPos [][]int32

	// Bounded-retention bookkeeping; zero values describe a complete
	// trace, so hand-built and reassembled traces need no setup. Under
	// RetainWindowMode, Events is the sliding window and Msgs is parallel
	// to it — Msgs[i] is the trigger message of Events[i], not the
	// ID-indexed message table — with firstEvent the absolute position of
	// Events[0]. Under RetainNoneMode both slices stay empty.
	mode        RetentionMode
	firstEvent  int
	totalEvents int
	totalMsgs   int
	digest      streamDigest
}

// Complete reports whether the trace retains the full execution record —
// Events and Msgs hold everything and may be indexed absolutely. Only
// complete traces may feed causality.Build, Hash, WriteJSON, and the
// per-process index accessors.
func (t *Trace) Complete() bool { return t.mode == RetainFullMode }

// Retention returns the trace's retention mode.
func (t *Trace) Retention() RetentionMode { return t.mode }

// TotalEvents returns the number of receive events the run recorded,
// including any discarded by bounded retention.
func (t *Trace) TotalEvents() int {
	if t.mode == RetainFullMode {
		return len(t.Events)
	}
	return t.totalEvents
}

// TotalMsgs returns the number of messages the run sent (wake-ups
// included), including any not retained.
func (t *Trace) TotalMsgs() int {
	if t.mode == RetainFullMode {
		return len(t.Msgs)
	}
	return t.totalMsgs
}

// FirstRetained returns the absolute position of the earliest retained
// event: 0 for complete traces, the window start under window retention.
// (Under RetainNoneMode Events is always empty, so the value is unused.)
func (t *Trace) FirstRetained() int {
	if t.mode == RetainFullMode {
		return 0
	}
	return t.firstEvent
}

// EventByPos returns the event at absolute trace position pos, with
// ok = false when pos is out of range or the event was discarded by
// bounded retention.
func (t *Trace) EventByPos(pos int) (Event, bool) {
	i := pos - t.FirstRetained()
	if i < 0 || i >= len(t.Events) {
		return Event{}, false
	}
	return t.Events[i], true
}

// TriggerOf returns the trigger message of the event at absolute trace
// position pos, with ok = false when the event or its message is not
// retained (or the trigger dangles).
func (t *Trace) TriggerOf(pos int) (Message, bool) {
	i := pos - t.FirstRetained()
	if i < 0 || i >= len(t.Events) {
		return Message{}, false
	}
	if t.mode == RetainWindowMode {
		// Msgs is parallel to Events under window retention.
		if i >= len(t.Msgs) {
			return Message{}, false
		}
		return t.Msgs[i], true
	}
	tr := t.Events[i].Trigger
	if tr < 0 || int(tr) >= len(t.Msgs) {
		return Message{}, false
	}
	return t.Msgs[tr], true
}

// StreamHash returns the FNV-64a digest of the run's event and message
// streams (structure and exact times; payloads and notes excluded — see
// streamDigest). It is maintained incrementally under bounded retention
// and computed on demand for complete traces, so runs of the same Config
// under different retention modes hash equal. It is unrelated to Hash,
// which digests the canonical JSON of a complete trace including
// payloads.
func (t *Trace) StreamHash() uint64 {
	if t.mode != RetainFullMode {
		return t.digest.sum()
	}
	var d streamDigest
	d.init()
	for i := range t.Events {
		d.foldEvent(&t.Events[i])
	}
	for i := range t.Msgs {
		d.foldMessage(&t.Msgs[i])
	}
	return d.sum()
}

// EventAt returns the position in Events of process p's index-th receive
// event, or -1 if it does not exist.
func (t *Trace) EventAt(p ProcessID, index int) int {
	if p < 0 || int(p) >= len(t.eventPos) {
		return -1
	}
	row := t.eventPos[p]
	if index < 0 || index >= len(row) {
		return -1
	}
	return int(row[index])
}

// indexEvents rebuilds eventPos from Events. Entries that are out of range
// or not dense per process are skipped; Validate reports them.
func (t *Trace) indexEvents() {
	if t.N <= 0 {
		return
	}
	t.eventPos = make([][]int32, t.N)
	for i, ev := range t.Events {
		if ev.Proc < 0 || int(ev.Proc) >= t.N || ev.Index != len(t.eventPos[ev.Proc]) {
			continue
		}
		t.eventPos[ev.Proc] = append(t.eventPos[ev.Proc], int32(i))
	}
}

// EventsOf returns the positions (into Events) of all receive events at p,
// in order. With the dense per-process index present (every engine- or
// builder-produced trace) it is O(events of p) instead of an O(E) scan;
// bare trace shells without the index fall back to scanning.
func (t *Trace) EventsOf(p ProcessID) []int {
	if t.eventPos != nil {
		if p < 0 || int(p) >= len(t.eventPos) {
			return nil
		}
		row := t.eventPos[p]
		if len(row) == 0 {
			return nil
		}
		out := make([]int, len(row))
		for i, pos := range row {
			out[i] = int(pos)
		}
		return out
	}
	var out []int
	for i, ev := range t.Events {
		if ev.Proc == p {
			out = append(out, i)
		}
	}
	return out
}

// StepCount returns the number of computing steps process p executed
// (receive events with Processed == true). Like EventsOf it walks the
// dense per-process index row when present instead of all of Events.
func (t *Trace) StepCount(p ProcessID) int {
	n := 0
	if t.eventPos != nil {
		if p < 0 || int(p) >= len(t.eventPos) {
			return 0
		}
		for _, pos := range t.eventPos[p] {
			if t.Events[pos].Processed {
				n++
			}
		}
		return n
	}
	for _, ev := range t.Events {
		if ev.Proc == p && ev.Processed {
			n++
		}
	}
	return n
}

// CorrectProcesses returns the IDs of all non-faulty processes.
func (t *Trace) CorrectProcesses() []ProcessID {
	var out []ProcessID
	for p := 0; p < t.N; p++ {
		if !t.Faulty[p] {
			out = append(out, ProcessID(p))
		}
	}
	return out
}

// MaxTime returns the occurrence time of the last event, or 0 for an empty
// trace.
func (t *Trace) MaxTime() Time {
	var max Time
	for _, ev := range t.Events {
		if ev.Time.Greater(max) {
			max = ev.Time
		}
	}
	return max
}

// Reassemble builds a Trace from raw parts and validates it. It is used by
// consumers that transform traces (e.g. the Theorem 9 retiming in
// internal/check) and must therefore rebuild the event index.
func Reassemble(n int, events []Event, msgs []Message, faulty []bool) (*Trace, error) {
	t := &Trace{
		N:      n,
		Events: events,
		Msgs:   msgs,
		Faulty: faulty,
	}
	t.indexEvents()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Validate checks internal consistency of the trace: event indices are
// dense and per-process increasing, message recv times are not before send
// times, and triggers resolve. It is used by tests and by cmd/abccheck when
// loading external traces.
func (t *Trace) Validate() error {
	if t.N <= 0 {
		return fmt.Errorf("sim: trace has N = %d", t.N)
	}
	if len(t.Faulty) != t.N {
		return fmt.Errorf("sim: Faulty has length %d, want %d", len(t.Faulty), t.N)
	}
	next := make([]int, t.N)
	for i, ev := range t.Events {
		if ev.Proc < 0 || int(ev.Proc) >= t.N {
			return fmt.Errorf("sim: event %d has process %d out of range", i, ev.Proc)
		}
		if ev.Index != next[ev.Proc] {
			return fmt.Errorf("sim: event %d at p%d has index %d, want %d", i, ev.Proc, ev.Index, next[ev.Proc])
		}
		next[ev.Proc]++
		if ev.Trigger < 0 || int(ev.Trigger) >= len(t.Msgs) {
			return fmt.Errorf("sim: event %d has dangling trigger %d", i, ev.Trigger)
		}
		m := t.Msgs[ev.Trigger]
		if m.To != ev.Proc {
			return fmt.Errorf("sim: event %d at p%d triggered by message to p%d", i, ev.Proc, m.To)
		}
		if m.Dropped {
			return fmt.Errorf("sim: event %d triggered by dropped message %d", i, ev.Trigger)
		}
		if !m.RecvTime.Equal(ev.Time) {
			return fmt.Errorf("sim: event %d time %v != message recv time %v", i, ev.Time, m.RecvTime)
		}
	}
	for i, m := range t.Msgs {
		if int(m.ID) != i {
			return fmt.Errorf("sim: message %d has ID %d", i, m.ID)
		}
		if !m.IsWakeup() && m.RecvTime.Less(m.SendTime) {
			return fmt.Errorf("sim: message %d received at %v before sent at %v", i, m.RecvTime, m.SendTime)
		}
	}
	return nil
}
