package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rat"
)

func TestConstantDelay(t *testing.T) {
	p := ConstantDelay{D: rat.New(3, 2)}
	if got := p.Delay(Message{}, nil); !got.Equal(rat.New(3, 2)) {
		t.Errorf("got %v", got)
	}
}

func TestUniformDelayRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := UniformDelay{Min: rat.One, Max: rat.FromInt(3)}
	for i := 0; i < 500; i++ {
		d := p.Delay(Message{}, rng)
		if d.Less(rat.One) || d.Greater(rat.FromInt(3)) {
			t.Fatalf("delay %v outside [1, 3]", d)
		}
	}
	// Degenerate range.
	p = UniformDelay{Min: rat.FromInt(2), Max: rat.FromInt(2)}
	if d := p.Delay(Message{}, rng); !d.Equal(rat.FromInt(2)) {
		t.Errorf("degenerate range returned %v", d)
	}
}

func TestGrowingDelayGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := GrowingDelay{Base: rat.One, Rate: rat.One, Spread: rat.One}
	early := p.Delay(Message{SendTime: rat.Zero}, rng)
	late := p.Delay(Message{SendTime: rat.FromInt(10)}, rng)
	if !early.Equal(rat.One) {
		t.Errorf("delay at t=0 is %v, want 1", early)
	}
	if !late.Equal(rat.FromInt(11)) {
		t.Errorf("delay at t=10 is %v, want 11", late)
	}
	// Spread below 1 is clamped to 1 (deterministic).
	p = GrowingDelay{Base: rat.One, Rate: rat.Zero, Spread: rat.New(1, 2)}
	if d := p.Delay(Message{SendTime: rat.Zero}, rng); !d.Equal(rat.One) {
		t.Errorf("clamped spread returned %v", d)
	}
}

func TestPerLinkDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := PerLinkDelay{
		Default: ConstantDelay{D: rat.One},
		Links: map[Link]DelayPolicy{
			{From: 0, To: 1}: ConstantDelay{D: rat.FromInt(7)},
		},
	}
	if d := p.Delay(Message{From: 0, To: 1}, rng); !d.Equal(rat.FromInt(7)) {
		t.Errorf("link override not applied: %v", d)
	}
	if d := p.Delay(Message{From: 1, To: 0}, rng); !d.Equal(rat.One) {
		t.Errorf("default not applied: %v", d)
	}
}

func TestOverrideDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := OverrideDelay{
		Base: ConstantDelay{D: rat.One},
		Match: func(m Message) bool {
			s, ok := m.Payload.(string)
			return ok && s == "slow"
		},
		Override: ConstantDelay{D: rat.FromInt(50)},
	}
	if d := p.Delay(Message{Payload: "slow"}, rng); !d.Equal(rat.FromInt(50)) {
		t.Errorf("override not applied: %v", d)
	}
	if d := p.Delay(Message{Payload: "fast"}, rng); !d.Equal(rat.One) {
		t.Errorf("base not applied: %v", d)
	}
	// Nil Match behaves as base.
	p.Match = nil
	if d := p.Delay(Message{Payload: "slow"}, rng); !d.Equal(rat.One) {
		t.Errorf("nil match misrouted: %v", d)
	}
}

func TestDelayFunc(t *testing.T) {
	p := DelayFunc(func(m Message, rng *rand.Rand) Time { return m.SendTime })
	if d := p.Delay(Message{SendTime: rat.FromInt(9)}, nil); !d.Equal(rat.FromInt(9)) {
		t.Errorf("got %v", d)
	}
}

// Property: uniform delays always land inside the configured interval.
func TestUniformDelayProperty(t *testing.T) {
	f := func(seed int64, a, b uint16) bool {
		lo := rat.New(int64(a%100)+1, 7)
		hi := lo.Add(rat.New(int64(b%100)+1, 3))
		rng := rand.New(rand.NewSource(seed))
		p := UniformDelay{Min: lo, Max: hi}
		d := p.Delay(Message{}, rng)
		return d.GreaterEq(lo) && d.LessEq(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the simulator never delivers before sending under any policy
// from this file.
func TestSimulatorDelayNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		res, err := Run(Config{
			N: 3,
			Spawn: func(p ProcessID) Process {
				return ProcessFunc(func(env *Env, msg Message) {
					if env.StepIndex() < 3 {
						env.Broadcast(env.StepIndex())
					}
				})
			},
			Delays: GrowingDelay{Base: rat.One, Rate: rat.New(1, 2), Spread: rat.New(3, 2)},
			Seed:   seed,
		})
		if err != nil {
			return false
		}
		for _, m := range res.Trace.Msgs {
			if m.RecvTime.Less(m.SendTime) {
				return false
			}
		}
		return res.Trace.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
