package sim

import (
	"strings"
	"testing"

	"repro/internal/rat"
)

// sinkTestConfig is a mid-size broadcast run with a crash fault, so the
// record contains processed and unprocessed events, wake-ups, and real
// traffic — everything the digest folds.
func sinkTestConfig() Config {
	return Config{
		N:      6,
		Spawn:  broadcastSpawn(5),
		Faults: map[ProcessID]Fault{5: {CrashAfter: 2}},
		Delays: UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:   7,
	}
}

func TestParseRetention(t *testing.T) {
	good := map[string]Retention{
		"":          {Mode: RetainFullMode},
		"full":      {Mode: RetainFullMode},
		"none":      {Mode: RetainNoneMode},
		"window/1":  {Mode: RetainWindowMode, Window: 1},
		"window/64": {Mode: RetainWindowMode, Window: 64},
	}
	for spec, want := range good {
		s, err := ParseRetention(spec)
		if err != nil {
			t.Fatalf("ParseRetention(%q): %v", spec, err)
		}
		if s.Retention() != want {
			t.Fatalf("ParseRetention(%q) = %+v, want %+v", spec, s.Retention(), want)
		}
	}
	for _, spec := range []string{"window/0", "window/-3", "window/", "window/x", "ring", "Full"} {
		if _, err := ParseRetention(spec); err == nil {
			t.Fatalf("ParseRetention(%q): want error", spec)
		}
	}
}

// TestRetentionEquivalence is the sink-equivalence contract at the engine
// level: the same Config run under full, window, and none retention agrees
// on every total and on the stream digest, and the window's retained
// suffix is exactly the tail of the complete record.
func TestRetentionEquivalence(t *testing.T) {
	cfg := sinkTestConfig()
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ft := full.Trace
	if !ft.Complete() || ft.Retention() != RetainFullMode {
		t.Fatalf("default run not complete (retention %v)", ft.Retention())
	}
	if ft.TotalEvents() != len(ft.Events) || ft.TotalMsgs() != len(ft.Msgs) {
		t.Fatalf("complete totals (%d, %d) != lengths (%d, %d)",
			ft.TotalEvents(), ft.TotalMsgs(), len(ft.Events), len(ft.Msgs))
	}
	if len(ft.Events) < 40 {
		t.Fatalf("test run too small: %d events", len(ft.Events))
	}

	const k = 16
	engine := NewEngine() // shared engine: also exercises cross-mode reuse
	for _, tc := range []struct {
		name string
		sink Sink
	}{
		{"retain-all-sink", RetainAll()},
		{"window", RetainWindow(k)},
		{"none", RetainNone()},
	} {
		cfg := sinkTestConfig()
		cfg.Sink = tc.sink
		res, err := engine.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		bt := res.Trace
		if bt.TotalEvents() != ft.TotalEvents() || bt.TotalMsgs() != ft.TotalMsgs() {
			t.Fatalf("%s: totals (%d, %d), want (%d, %d)",
				tc.name, bt.TotalEvents(), bt.TotalMsgs(), ft.TotalEvents(), ft.TotalMsgs())
		}
		if bt.StreamHash() != ft.StreamHash() {
			t.Fatalf("%s: stream hash %016x, want %016x", tc.name, bt.StreamHash(), ft.StreamHash())
		}
		if res.Truncated != full.Truncated {
			t.Fatalf("%s: truncated %v, want %v", tc.name, res.Truncated, full.Truncated)
		}
		switch bt.Retention() {
		case RetainFullMode:
			if ft.Hash() != bt.Hash() {
				t.Fatalf("%s: complete trace hash diverged", tc.name)
			}
		case RetainWindowMode:
			if len(bt.Events) < k || len(bt.Events) >= 2*k {
				t.Fatalf("window holds %d events, want within [%d, %d)", len(bt.Events), k, 2*k)
			}
			if len(bt.Msgs) != len(bt.Events) {
				t.Fatalf("window Msgs length %d, want parallel to Events %d", len(bt.Msgs), len(bt.Events))
			}
			first := bt.FirstRetained()
			if first+len(bt.Events) != bt.TotalEvents() {
				t.Fatalf("window [%d, %d) does not end at total %d", first, first+len(bt.Events), bt.TotalEvents())
			}
			for pos := first; pos < bt.TotalEvents(); pos++ {
				ev, ok := bt.EventByPos(pos)
				if !ok {
					t.Fatalf("window: event %d not retrievable", pos)
				}
				if want := ft.Events[pos]; ev != want {
					t.Fatalf("window event %d = %+v, want %+v", pos, ev, want)
				}
				m, ok := bt.TriggerOf(pos)
				if !ok {
					t.Fatalf("window: trigger of %d not retrievable", pos)
				}
				if want := ft.Msgs[ft.Events[pos].Trigger]; m != want {
					t.Fatalf("window trigger %d = %+v, want %+v", pos, m, want)
				}
			}
			if _, ok := bt.EventByPos(first - 1); ok {
				t.Fatal("window: evicted event still retrievable")
			}
		case RetainNoneMode:
			if len(bt.Events) != 0 || len(bt.Msgs) != 0 {
				t.Fatalf("none retained %d events, %d messages", len(bt.Events), len(bt.Msgs))
			}
			if _, ok := bt.EventByPos(0); ok {
				t.Fatal("none: EventByPos(0) succeeded")
			}
		}
	}

	// The shared engine must still produce byte-identical full traces
	// after bounded-mode runs (hermeticity across retention modes).
	again, err := engine.Run(sinkTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if again.Trace.Hash() != ft.Hash() {
		t.Fatal("full-retention trace changed after bounded-mode engine reuse")
	}
}

// recordingSink counts callbacks and checks stream positions.
type recordingSink struct {
	r      Retention
	events int
	msgs   int
	lastID MsgID
}

func (s *recordingSink) Retention() Retention { return s.r }
func (s *recordingSink) Event(*Event)         { s.events++ }
func (s *recordingSink) Message(m *Message) {
	if s.msgs > 0 && m.ID != s.lastID+1 {
		panic("messages observed out of ID order")
	}
	s.lastID = m.ID
	s.msgs++
}

func TestCustomSinkObservesEverything(t *testing.T) {
	for _, r := range []Retention{
		{Mode: RetainFullMode},
		{Mode: RetainWindowMode, Window: 8},
		{Mode: RetainNoneMode},
	} {
		sink := &recordingSink{r: r}
		cfg := sinkTestConfig()
		cfg.Sink = sink
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", r.Mode, err)
		}
		if sink.events != res.Trace.TotalEvents() {
			t.Fatalf("%v: sink saw %d events, trace has %d", r.Mode, sink.events, res.Trace.TotalEvents())
		}
		if sink.msgs != res.Trace.TotalMsgs() {
			t.Fatalf("%v: sink saw %d messages, trace has %d", r.Mode, sink.msgs, res.Trace.TotalMsgs())
		}
	}
}

func TestRetentionConfigErrors(t *testing.T) {
	cfg := sinkTestConfig()
	cfg.Sink = RetainWindow(0)
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "Window") {
		t.Fatalf("window 0: err = %v, want Window error", err)
	}
	cfg = sinkTestConfig()
	cfg.Sink = RetainNone()
	cfg.Monitor = func(*Trace) error { return nil }
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "Monitor") {
		t.Fatalf("monitor+none: err = %v, want Monitor error", err)
	}
}

// TestEventsOfIndexedMatchesScan pins the dense-row fast path of EventsOf
// and StepCount against the legacy O(E) scan they replaced.
func TestEventsOfIndexedMatchesScan(t *testing.T) {
	res, err := Run(sinkTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr.eventPos == nil {
		t.Fatal("engine trace lacks the event index")
	}
	shell := &Trace{N: tr.N, Events: tr.Events, Msgs: tr.Msgs, Faulty: tr.Faulty}
	for p := ProcessID(0); int(p) < tr.N; p++ {
		fast, slow := tr.EventsOf(p), shell.EventsOf(p)
		if len(fast) != len(slow) {
			t.Fatalf("p%d: indexed EventsOf has %d entries, scan %d", p, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("p%d: EventsOf[%d] = %d (indexed) vs %d (scan)", p, i, fast[i], slow[i])
			}
		}
		if a, b := tr.StepCount(p), shell.StepCount(p); a != b {
			t.Fatalf("p%d: StepCount %d (indexed) vs %d (scan)", p, a, b)
		}
	}
}
