package sim

import (
	"errors"
	"testing"

	"repro/internal/rat"
)

func broadcastConfig(steps int) Config {
	return Config{
		N: 3,
		Spawn: func(p ProcessID) Process {
			return ProcessFunc(func(env *Env, msg Message) {
				if env.StepIndex() < steps {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays: ConstantDelay{D: rat.One},
		Seed:   1,
	}
}

// TestMonitorSeesEveryEvent pins the hook contract: called once per
// recorded receive event, with the live trace ending at that event.
func TestMonitorSeesEveryEvent(t *testing.T) {
	cfg := broadcastConfig(3)
	calls := 0
	cfg.Monitor = func(tr *Trace) error {
		calls++
		if len(tr.Events) != calls {
			t.Fatalf("call %d sees %d events", calls, len(tr.Events))
		}
		last := tr.Events[len(tr.Events)-1]
		if pos := tr.EventAt(last.Proc, last.Index); pos != len(tr.Events)-1 {
			t.Fatalf("event index not yet registered for the observed event")
		}
		return nil
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MonitorErr != nil {
		t.Fatalf("MonitorErr = %v", res.MonitorErr)
	}
	if calls != len(res.Trace.Events) {
		t.Fatalf("monitor called %d times for %d events", calls, len(res.Trace.Events))
	}
}

// TestMonitorStopsRun pins early abort: the error is surfaced, the trace
// ends at the aborting event, and Truncated stays false.
func TestMonitorStopsRun(t *testing.T) {
	cfg := broadcastConfig(5)
	sentinel := errors.New("stop here")
	cfg.Monitor = func(tr *Trace) error {
		if len(tr.Events) == 7 {
			return sentinel
		}
		return nil
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MonitorErr != sentinel {
		t.Fatalf("MonitorErr = %v, want sentinel", res.MonitorErr)
	}
	if len(res.Trace.Events) != 7 {
		t.Fatalf("trace has %d events, want 7", len(res.Trace.Events))
	}
	if res.Truncated {
		t.Fatal("monitor abort flagged as truncation")
	}
}

// TestMonitorHermeticity: a monitored run yields the same trace prefix as
// the unmonitored run of the same config, and a pooled engine carries no
// monitor state into the next run.
func TestMonitorHermeticity(t *testing.T) {
	e := NewEngine()
	full, err := e.Run(broadcastConfig(4))
	if err != nil {
		t.Fatal(err)
	}

	cfg := broadcastConfig(4)
	stop := errors.New("stop")
	cfg.Monitor = func(tr *Trace) error {
		if len(tr.Events) == 5 {
			return stop
		}
		return nil
	}
	aborted, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if aborted.MonitorErr != stop || len(aborted.Trace.Events) != 5 {
		t.Fatalf("aborted run: err=%v events=%d", aborted.MonitorErr, len(aborted.Trace.Events))
	}
	for i, ev := range aborted.Trace.Events {
		if ev.Proc != full.Trace.Events[i].Proc || ev.Index != full.Trace.Events[i].Index ||
			!ev.Time.Equal(full.Trace.Events[i].Time) {
			t.Fatalf("event %d differs between monitored and unmonitored run", i)
		}
	}

	again, err := e.Run(broadcastConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if again.MonitorErr != nil {
		t.Fatal("monitor error leaked into a later pooled run")
	}
	if again.Trace.Hash() != full.Trace.Hash() {
		t.Fatal("pooled engine not hermetic after a monitored run")
	}
}
