package sim

import "fmt"

// Interval is a half-open span [From, Until) of simulated time. It is the
// unit of the recoverable-fault schedule (Fault.Down) and of transient
// partitions (Partition embeds one per side-pair).
type Interval struct {
	From  Time
	Until Time
}

// Contains reports whether t lies in [From, Until).
func (iv Interval) Contains(t Time) bool {
	return !t.Less(iv.From) && t.Less(iv.Until)
}

// RecoveryPolicy selects the state a process resumes with after a Down
// interval ends.
type RecoveryPolicy int

const (
	// RecoverDurable resumes the process with the state it held when it
	// went down — the process "wrote its state to disk". The process
	// machine is untouched; it simply starts taking steps again.
	RecoverDurable RecoveryPolicy = iota
	// RecoverAmnesia respawns the process from Config.Spawn at the end of
	// each down interval and resets its computing-step counter: all
	// volatile state is lost, and the process re-executes its wake-up
	// logic on the recovery wake-up delivered at the interval's end.
	RecoverAmnesia
)

// InflightPolicy selects the fate of messages whose delivery time falls
// inside one of the recipient's Down intervals.
type InflightPolicy int

const (
	// InflightDrop delivers such messages normally but, the process being
	// down, they trigger no computing step (Processed=false receptions,
	// exactly like deliveries to a crashed process). This models a
	// receiver whose network buffer dies with it.
	InflightDrop InflightPolicy = iota
	// InflightHold defers such deliveries to the end of the covering down
	// interval: the message waits in the network and is processed on
	// recovery. This models a durable mailbox.
	InflightHold
)

// NetFaults is the message-level fault layer: seeded, deterministic
// perturbations applied at delivery time, below the delay policy. All
// draws come from the run's single seeded RNG in deterministic
// (time, seq) delivery order, so a faulty network is exactly as
// reproducible as a healthy one — same seed, same losses — and
// fleet==serial determinism is untouched.
//
// Dropped messages are recorded in the trace with Message.Dropped set
// (and RecvTime = SendTime: the network never delivered them), so
// Trace.Hash and Trace.StreamHash commit to the loss pattern across
// worker counts and retention modes. They trigger no receive event and
// are invisible to the causality graph.
type NetFaults struct {
	// Drop is the i.i.d. probability in [0, 1] that a message is lost.
	Drop float64
	// Dup is the i.i.d. probability in [0, 1] that a delivered message is
	// delivered twice; the duplicate draws its own delay (and spike) and
	// is itself never dropped or re-duplicated.
	Dup float64
	// Spike adds a delay penalty to a random subset of deliveries.
	Spike SpikeRule
	// Partitions are transient link cuts; a message crossing an active
	// partition is dropped with certainty (no RNG draw).
	Partitions []Partition
}

// SpikeRule adds Extra to the drawn delay of each delivery with
// probability Prob — a delay spike on top of the configured policy. The
// spiked delivery must still respect the run's delay bounds for the
// trace to be admissible; spikes exist to push executions outside the
// [min, max] window that Ξ was computed from.
type SpikeRule struct {
	Prob  float64
	Extra Time
}

// Partition cuts every link between side A and side B for simulated
// times in [From, Until). B == nil means "the complement of A", the
// common two-way split. Sends inside one side, or entirely outside
// A ∪ B, are unaffected; self-sends are never cut. Validation at Run
// setup mirrors scripted sends: endpoints must be within the run
// horizon (when MaxTime is set), sides must be disjoint non-empty
// in-range process sets, and the cut must sever at least one link of
// the configured topology (a partition that cuts nothing is a spec
// error, not a no-op).
type Partition struct {
	From  Time
	Until Time
	A     []ProcessID
	B     []ProcessID
}

// partitionSides flattens a Partition into a per-process side vector:
// 1 for side A, 2 for side B (or the complement when B is nil), 0 for
// unaffected processes. Returns a validation error naming the defect.
func partitionSides(pt Partition, n int) ([]int8, error) {
	sides := make([]int8, n)
	if len(pt.A) == 0 {
		return nil, fmt.Errorf("sim: partition side A is empty")
	}
	for _, p := range pt.A {
		if int(p) < 0 || int(p) >= n {
			return nil, fmt.Errorf("sim: partition side A has process %d outside [0, %d)", p, n)
		}
		if sides[p] != 0 {
			return nil, fmt.Errorf("sim: partition side A lists process %d twice", p)
		}
		sides[p] = 1
	}
	if pt.B == nil {
		rest := 0
		for p := range sides {
			if sides[p] == 0 {
				sides[p] = 2
				rest++
			}
		}
		if rest == 0 {
			return nil, fmt.Errorf("sim: partition side A covers every process, nothing to cut off")
		}
		return sides, nil
	}
	if len(pt.B) == 0 {
		return nil, fmt.Errorf("sim: partition side B is empty")
	}
	for _, p := range pt.B {
		if int(p) < 0 || int(p) >= n {
			return nil, fmt.Errorf("sim: partition side B has process %d outside [0, %d)", p, n)
		}
		switch sides[p] {
		case 1:
			return nil, fmt.Errorf("sim: process %d is on both partition sides", p)
		case 2:
			return nil, fmt.Errorf("sim: partition side B lists process %d twice", p)
		}
		sides[p] = 2
	}
	return sides, nil
}
