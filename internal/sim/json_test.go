package sim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rat"
)

func TestJSONRoundTrip(t *testing.T) {
	cfg := twoProcConfig(4)
	cfg.Faults = map[ProcessID]Fault{1: Crash(3)}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := res.Trace

	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != orig.N || len(back.Events) != len(orig.Events) || len(back.Msgs) != len(orig.Msgs) {
		t.Fatalf("shape mismatch: N=%d/%d events=%d/%d msgs=%d/%d",
			back.N, orig.N, len(back.Events), len(orig.Events), len(back.Msgs), len(orig.Msgs))
	}
	for i := range orig.Events {
		a, b := orig.Events[i], back.Events[i]
		if a.Proc != b.Proc || a.Index != b.Index || !a.Time.Equal(b.Time) ||
			a.Trigger != b.Trigger || a.Processed != b.Processed {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	for i := range orig.Msgs {
		a, b := orig.Msgs[i], back.Msgs[i]
		if a.From != b.From || a.To != b.To || a.SendStep != b.SendStep ||
			!a.SendTime.Equal(b.SendTime) || !a.RecvTime.Equal(b.RecvTime) ||
			a.IsWakeup() != b.IsWakeup() {
			t.Fatalf("message %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	if back.Faulty[1] != true {
		t.Error("faulty flag lost")
	}
}

func TestJSONRationalTimes(t *testing.T) {
	b := NewTraceBuilder(2)
	b.WakeAll(rat.Zero)
	b.Msg(0, 0, 1, rat.New(7, 3), "x")
	tr := b.MustBuild()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "7/3") {
		t.Error("rational time not serialized exactly")
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Msgs[2].RecvTime.Equal(rat.New(7, 3)) {
		t.Error("rational time not parsed back exactly")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"n":0}`)); err == nil {
		t.Error("invalid trace accepted")
	}
	if _, err := ReadJSON(strings.NewReader(
		`{"n":1,"faulty":[false],"events":[{"proc":0,"index":0,"time":"x","trigger":0,"processed":true}],"messages":[]}`)); err == nil {
		t.Error("bad time accepted")
	}
}
