package sim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/rat"
)

func broadcastSpawn(steps int) func(ProcessID) Process {
	return func(ProcessID) Process {
		return ProcessFunc(func(env *Env, msg Message) {
			if env.StepIndex() < steps {
				env.Broadcast(env.StepIndex())
			}
		})
	}
}

func TestRingStructure(t *testing.T) {
	l := Ring(5)
	if l.N() != 5 || l.NumLinks() != 5 || l.MaxOutDegree() != 1 {
		t.Fatalf("Ring(5): n=%d links=%d maxOut=%d", l.N(), l.NumLinks(), l.MaxOutDegree())
	}
	for p := ProcessID(0); p < 5; p++ {
		next := (p + 1) % 5
		if !l.Linked(p, next) {
			t.Errorf("missing link %d -> %d", p, next)
		}
		if l.Linked(next, p) {
			t.Errorf("unexpected reverse link %d -> %d", next, p)
		}
	}
}

func TestTorusStructure(t *testing.T) {
	l := Torus(3, 4)
	if l.N() != 12 {
		t.Fatalf("Torus(3,4): n=%d", l.N())
	}
	// Every interior-equivalent node of a wraparound grid has degree 4, and
	// links are bidirectional.
	for p := ProcessID(0); int(p) < l.N(); p++ {
		if d := len(l.Out(p)); d != 4 {
			t.Errorf("process %d has out-degree %d, want 4", p, d)
		}
		for _, q := range l.Out(p) {
			if !l.Linked(q, p) {
				t.Errorf("torus link %d -> %d not bidirectional", p, q)
			}
		}
	}
	// Degenerate dimensions collapse duplicates rather than double-count.
	if d := Torus(1, 4).MaxOutDegree(); d != 2 {
		t.Errorf("Torus(1,4) max out-degree %d, want 2", d)
	}
}

func TestRandomRegularStructure(t *testing.T) {
	l := RandomRegular(20, 3, 7)
	for p := ProcessID(0); p < 20; p++ {
		if d := len(l.Out(p)); d != 3 {
			t.Errorf("process %d has out-degree %d, want 3", p, d)
		}
		if l.Linked(p, p) {
			t.Errorf("process %d has a self-loop", p)
		}
	}
	// Same seed, same graph; different seed, (overwhelmingly) different.
	if a, b := RandomRegular(20, 3, 7), RandomRegular(20, 3, 7); !sameLinks(a, b) {
		t.Error("RandomRegular not deterministic for a fixed seed")
	}
	if a, b := RandomRegular(20, 3, 7), RandomRegular(20, 3, 8); sameLinks(a, b) {
		t.Error("RandomRegular ignores the seed")
	}
}

func TestScaleFreeStructure(t *testing.T) {
	l := ScaleFree(60, 2, 3)
	// Bidirectional; every node after the first attaches to >= 1 earlier
	// node, so the graph is connected and has at least n-1 undirected edges.
	if l.NumLinks() < 2*(60-1) {
		t.Errorf("ScaleFree(60,2): %d directed links, want >= %d", l.NumLinks(), 2*59)
	}
	for p := ProcessID(0); int(p) < l.N(); p++ {
		for _, q := range l.Out(p) {
			if !l.Linked(q, p) {
				t.Errorf("scale-free link %d -> %d not bidirectional", p, q)
			}
		}
	}
	if a, b := ScaleFree(60, 2, 3), ScaleFree(60, 2, 3); !sameLinks(a, b) {
		t.Error("ScaleFree not deterministic for a fixed seed")
	}
}

func TestIslandsStructure(t *testing.T) {
	l := Islands(7, 3) // sizes 3, 2, 2
	for p := ProcessID(0); p < 7; p++ {
		for q := ProcessID(0); q < 7; q++ {
			want := p != q && IslandOf(7, 3, p) == IslandOf(7, 3, q)
			if got := l.Linked(p, q); got != want {
				t.Errorf("Islands(7,3).Linked(%d,%d) = %v, want %v", p, q, got, want)
			}
		}
	}
}

func sameLinks(a, b *Links) bool {
	if a.N() != b.N() || a.NumLinks() != b.NumLinks() {
		return false
	}
	for p := ProcessID(0); int(p) < a.N(); p++ {
		ao, bo := a.Out(p), b.Out(p)
		if len(ao) != len(bo) {
			return false
		}
		for i := range ao {
			if ao[i] != bo[i] {
				return false
			}
		}
	}
	return true
}

func TestNewLinksSortsAndDedups(t *testing.T) {
	l := NewLinks(4, [][]ProcessID{{3, 1, 3, 1, 2}})
	if got := fmt.Sprint(l.Out(0)); got != "[1 2 3]" {
		t.Errorf("Out(0) = %s, want [1 2 3]", got)
	}
	if l.MaxOutDegree() != 3 {
		t.Errorf("max out-degree %d, want 3", l.MaxOutDegree())
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range neighbor did not panic")
		}
	}()
	NewLinks(2, [][]ProcessID{{2}})
}

func TestParseTopology(t *testing.T) {
	ok := []struct {
		spec  string
		n     int
		full  bool
		links int
	}{
		{"full", 9, true, 0},
		{"", 9, true, 0},
		{"ring", 9, false, 9},
		{"torus", 9, false, 9 * 4},
		{"torus/3x3", 9, false, 9 * 4},
		{"regular/2", 9, false, 9 * 2},
		{"scalefree/1", 9, false, 2 * 8},
		{"islands/3", 9, false, 9 * 2},
	}
	for _, tc := range ok {
		topo, err := ParseTopology(tc.spec, tc.n, 1)
		if err != nil {
			t.Errorf("ParseTopology(%q, %d): %v", tc.spec, tc.n, err)
			continue
		}
		if tc.full {
			if topo != nil {
				t.Errorf("ParseTopology(%q) = %v, want nil (fully connected)", tc.spec, topo)
			}
			continue
		}
		l, okType := topo.(*Links)
		if !okType {
			t.Errorf("ParseTopology(%q) returned %T, want *Links", tc.spec, topo)
			continue
		}
		if l.NumLinks() != tc.links {
			t.Errorf("ParseTopology(%q, %d): %d links, want %d", tc.spec, tc.n, l.NumLinks(), tc.links)
		}
	}
	bad := []struct {
		spec string
		n    int
	}{
		{"full/x", 4}, {"ring/3", 4}, {"torus/2x3", 4}, {"torus/ab", 4},
		{"regular/4", 4}, {"regular/x", 4}, {"scalefree/0", 4},
		{"islands/5", 4}, {"islands/0", 4}, {"mesh", 4}, {"ring", 0},
	}
	for _, tc := range bad {
		if _, err := ParseTopology(tc.spec, tc.n, 1); err == nil {
			t.Errorf("ParseTopology(%q, %d) accepted", tc.spec, tc.n)
		}
	}
}

// TestBroadcastSelfDeliveryUnconditional pins the semantics decision for
// the self-delivery bug: a topology predicate returning false for
// from == to must not suppress the broadcast's self-copy (Algorithm 1
// assumes unconditional self-delivery; a topology describes network links,
// and reaching oneself needs none).
func TestBroadcastSelfDeliveryUnconditional(t *testing.T) {
	for _, tc := range []struct {
		name string
		topo Topology
	}{
		{"predicate", TopologyFunc(func(from, to ProcessID) bool { return false })},
		{"links", NewLinks(3, nil)}, // no links at all
	} {
		t.Run(tc.name, func(t *testing.T) {
			recv := make([]int, 3)
			_, err := Run(Config{
				N: 3,
				Spawn: func(p ProcessID) Process {
					return ProcessFunc(func(env *Env, msg Message) {
						switch msg.Payload.(type) {
						case Wakeup:
							env.Broadcast("hi")
						case string:
							recv[env.Self()]++
						}
					})
				},
				Topology: tc.topo,
				Delays:   ConstantDelay{D: rat.One},
			})
			if err != nil {
				t.Fatal(err)
			}
			for p, n := range recv {
				if n != 1 {
					t.Errorf("process %d received %d self-copies, want 1", p, n)
				}
			}
		})
	}
}

// TestSendToSelfAlwaysAllowed: Env.Send(self) is legal under any topology,
// matching the unconditional self-delivery of Broadcast.
func TestSendToSelfAlwaysAllowed(t *testing.T) {
	got := 0
	_, err := Run(Config{
		N: 2,
		Spawn: func(p ProcessID) Process {
			return ProcessFunc(func(env *Env, msg Message) {
				if _, ok := msg.Payload.(Wakeup); ok {
					env.Send(env.Self(), "note-to-self")
				} else if env.Self() == 0 {
					got++
				}
			})
		},
		Topology: TopologyFunc(func(from, to ProcessID) bool { return false }),
		Delays:   ConstantDelay{D: rat.One},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("process 0 received %d self-sends, want 1", got)
	}
}

// TestBroadcastLinksMatchesPredicate: the same topology expressed as a
// *Links and as a predicate produces bit-identical traces — the CSR fast
// path is an optimization, not a semantics change.
func TestBroadcastLinksMatchesPredicate(t *testing.T) {
	const n = 6
	ring := Ring(n)
	pred := TopologyFunc(func(from, to ProcessID) bool { return ring.Linked(from, to) })
	base := Config{
		N:      n,
		Spawn:  broadcastSpawn(4),
		Delays: UniformDelay{Min: rat.One, Max: rat.FromInt(2)},
		Seed:   11,
	}
	asLinks, asPred := base, base
	asLinks.Topology = ring
	asPred.Topology = pred
	rl, err := Run(asLinks)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(asPred)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Trace.Hash() != rp.Trace.Hash() {
		t.Errorf("links trace %016x != predicate trace %016x", rl.Trace.Hash(), rp.Trace.Hash())
	}
}

// TestIslandsTrafficStaysInPartition pins the disconnected-graph behavior:
// messages never cross a partition, each island quiesces independently.
func TestIslandsTrafficStaysInPartition(t *testing.T) {
	const n, k = 7, 3
	res, err := Run(Config{
		N:        n,
		Spawn:    broadcastSpawn(3),
		Topology: Islands(n, k),
		Delays:   UniformDelay{Min: rat.One, Max: rat.FromInt(2)},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Error("disconnected run did not quiesce")
	}
	for _, m := range res.Trace.Msgs {
		if m.IsWakeup() {
			continue
		}
		if m.From != m.To && IslandOf(n, k, m.From) != IslandOf(n, k, m.To) {
			t.Errorf("message %d -> %d crosses partitions", m.From, m.To)
		}
	}
}

func TestScriptedSendValidation(t *testing.T) {
	base := func() Config {
		return Config{
			N:        3,
			Spawn:    broadcastSpawn(1),
			Topology: Ring(3),
			Delays:   ConstantDelay{D: rat.One},
		}
	}
	for _, tc := range []struct {
		name    string
		to      ProcessID
		at      rat.Rat
		wantErr string
	}{
		{"out-of-range", 3, rat.One, "invalid process"},
		{"cross-link", 0, rat.One, "non-existent link"}, // ring has 1 -> 2 only
		{"negative-time", 2, rat.FromInt(-1), "negative time"},
		{"legal-link", 2, rat.One, ""},
		{"self", 1, rat.One, ""}, // self-sends always legal
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			cfg.Faults = map[ProcessID]Fault{1: {CrashAfter: NeverCrash, Script: []ScriptedSend{
				{At: tc.at, To: tc.to, Payload: "forged"},
			}}}
			_, err := Run(cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("legal scripted send rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want %q", err, tc.wantErr)
			}
		})
	}
}

func TestTopologySizeMismatchRejected(t *testing.T) {
	cfg := Config{
		N:        4,
		Spawn:    broadcastSpawn(1),
		Topology: Ring(5),
		Delays:   ConstantDelay{D: rat.One},
	}
	if _, err := Run(cfg); err == nil {
		t.Error("Links over 5 processes accepted for N=4")
	}
}

// TestQueueImplementationsAgree is the heap-vs-calendar differential: both
// delivery queues must realize the identical exact (time, seq) order, so
// forcing either implementation yields bit-identical traces. Zero delays
// maximize time ties; growing delays spread keys across many calendar
// windows.
func TestQueueImplementationsAgree(t *testing.T) {
	delays := []struct {
		name   string
		policy DelayPolicy
	}{
		{"uniform", UniformDelay{Min: rat.One, Max: rat.New(3, 2)}},
		{"zero", ConstantDelay{D: rat.Zero}},
		{"growing", GrowingDelay{Base: rat.One, Rate: rat.New(1, 3), Spread: rat.FromInt(2)}},
	}
	topos := []struct {
		name string
		topo Topology
	}{
		{"full", nil},
		{"ring", Ring(40)},
		{"torus", Torus(5, 8)},
	}
	for _, dl := range delays {
		for _, tp := range topos {
			for seed := int64(0); seed < 3; seed++ {
				cfg := Config{
					N: 40, Spawn: broadcastSpawn(4),
					Topology: tp.topo, Delays: dl.policy,
					Seed: seed, MaxEvents: 30000,
				}
				heapCfg, bucketCfg := cfg, cfg
				heapCfg.Queue = QueueHeap
				bucketCfg.Queue = QueueBucket
				rh, err := Run(heapCfg)
				if err != nil {
					t.Fatal(err)
				}
				rb, err := Run(bucketCfg)
				if err != nil {
					t.Fatal(err)
				}
				if rh.Trace.Hash() != rb.Trace.Hash() {
					t.Errorf("delay=%s topo=%s seed=%d: heap %016x != bucket %016x (%d vs %d events)",
						dl.name, tp.name, seed, rh.Trace.Hash(), rb.Trace.Hash(),
						len(rh.Trace.Events), len(rb.Trace.Events))
				}
			}
		}
	}
}

// TestEngineReuseAcrossQueueKinds: one pooled Engine alternating between
// queue implementations stays hermetic.
func TestEngineReuseAcrossQueueKinds(t *testing.T) {
	e := NewEngine()
	cfg := Config{
		N: 10, Spawn: broadcastSpawn(3),
		Topology: Ring(10),
		Delays:   UniformDelay{Min: rat.One, Max: rat.FromInt(2)},
		Seed:     9,
	}
	want := uint64(0)
	for i := 0; i < 6; i++ {
		c := cfg
		c.Queue = []QueueKind{QueueHeap, QueueBucket}[i%2]
		res, err := e.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		h := res.Trace.Hash()
		if i == 0 {
			want = h
		} else if h != want {
			t.Fatalf("run %d (queue %v): hash %016x, want %016x", i, c.Queue, h, want)
		}
	}
}
