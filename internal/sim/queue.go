package sim

import (
	"math"
	"slices"
)

// delivery is a scheduled message reception. key is the float64 image of
// at under rat.Float64 (clamped to ±MaxFloat64): the conversion is
// correctly rounded and therefore monotone — a < b implies key(a) <=
// key(b), and equal times have equal keys — so float comparisons and
// bucket assignments can never contradict the exact order, they can only
// fail to distinguish values the exact (at, seq) comparison then settles.
type delivery struct {
	at  Time
	key float64
	seq int64 // insertion order; total tie-break for determinism
	msg MsgID
}

// before is the exact total delivery order (at, seq).
func (d delivery) before(o delivery) bool {
	if c := d.at.Cmp(o.at); c != 0 {
		return c < 0
	}
	return d.seq < o.seq
}

// cmpDelivery is the (key, at, seq) comparison for slices.SortFunc: the
// cached float key decides almost every comparison in one branch, falling
// back to the exact rational comparison only on float ties. seq is unique
// per delivery, so the order is total and every correct sort produces the
// identical sequence.
func cmpDelivery(a, b delivery) int {
	switch {
	case a.key < b.key:
		return -1
	case a.key > b.key:
		return 1
	case a.before(b):
		return -1
	default:
		return 1
	}
}

// deliveryKey clamps the monotone float64 image of t into the finite
// range so bucket arithmetic stays NaN-free.
func deliveryKey(t Time) float64 {
	f := t.Float64()
	if f > math.MaxFloat64 {
		return math.MaxFloat64
	}
	if f < -math.MaxFloat64 {
		return -math.MaxFloat64
	}
	return f
}

// eventQueue is the delivery scheduler: push in any order, pop in the
// exact (at, seq) order. Both implementations — heapQueue and bucketQueue
// — realize the identical total order, so which one a run uses never
// changes its trace (pinned by TestQueueImplementationsAgree and the
// golden determinism grid).
type eventQueue interface {
	push(d delivery)
	pop() delivery
	// peek returns the delivery the next pop would return without
	// consuming it (false when empty). The sharded engine's window loop
	// uses it to find each shard's next-event time and to stop a drain at
	// the safe horizon.
	peek() (delivery, bool)
	len() int
}

// deliveryLess is the exact total order (at, seq) with the cached float
// key deciding most comparisons in one branch, as in heapQueue.less.
func deliveryLess(a, b delivery) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.before(b)
}

// heapQueue is a hand-rolled binary min-heap ordered by (key, at, seq).
// It deliberately avoids container/heap: boxing every delivery through
// the heap.Interface `any` parameters cost one allocation per push and
// pop, which at sparse scale was a measurable slice of the engine's
// allocation volume. Pop order is the unique (at, seq) total order, so
// the heap's internal layout never influences results.
type heapQueue []delivery

func (q heapQueue) less(i, j int) bool {
	if q[i].key != q[j].key {
		return q[i].key < q[j].key
	}
	return q[i].before(q[j])
}

func (q *heapQueue) push(d delivery) {
	*q = append(*q, d)
	q.up(len(*q) - 1)
}

func (q *heapQueue) pop() delivery {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	d := h[n]
	*q = h[:n]
	if n > 0 {
		h[:n].down(0)
	}
	return d
}

func (q *heapQueue) peek() (delivery, bool) {
	if len(*q) == 0 {
		return delivery{}, false
	}
	return (*q)[0], true
}

func (q *heapQueue) len() int { return len(*q) }

func (q heapQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (q heapQueue) down(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		j := l
		if r := l + 1; r < n && q.less(r, l) {
			j = r
		}
		if !q.less(j, i) {
			return
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
}

// Calendar sizing. The wheel starts at 1024 buckets and grows with the
// system size (one bucket per two processes, capped) so the expected
// bucket population stays a handful of deliveries from N ≈ 10^3 to 10^6.
// Bucket count is pure performance tuning: routing is monotone in the
// float key at any width, so the pop order — and therefore every trace —
// is identical for any wheel size.
const (
	bucketQueueMinBuckets = 1024
	bucketQueueMaxBuckets = 1 << 19
	// bucketSortThreshold is the run length above which the drain sort
	// radix-refines by float key before the exact comparison sort; below
	// it a plain comparison sort of a handful of items wins.
	bucketSortThreshold = 64
)

// bucketsFor returns the wheel size for a system of n processes.
func bucketsFor(n int) int {
	b := bucketQueueMinBuckets
	for b < bucketQueueMaxBuckets && b < n/2 {
		b <<= 1
	}
	return b
}

// bucketQueue is a calendar ("event wheel") queue: deliveries are binned
// by their float key into a window of equal-width buckets; the bucket
// being drained is sorted once by the exact (at, seq) order, later
// arrivals merge into the sorted run by binary insertion, and deliveries
// beyond the window wait in an overflow heap that re-seeds the window when
// it empties. At sparse scale the heap's O(log n) rational-flavored sift
// per operation becomes the engine bottleneck; the calendar amortizes to
// O(1) routing per push and a small exact sort per bucket.
//
// Exactness: bucket routing is a monotone function of the (monotone) float
// key, so an earlier bucket never holds a delivery that must pop after one
// in a later bucket; everything sharing a bucket is ordered by the exact
// comparison. Pushes during a drain always belong at or after the current
// position because the engine only schedules at or after the time it is
// currently delivering.
//
// Degenerate windows are the wheel's failure mode: when the overflow's
// keys span nothing at rebuild time (every wake-up at t = 0) the width
// falls back to 1 and the whole run can land in a handful of buckets,
// turning each drain into a sort of 10^5+ deliveries. sortRun handles
// that case by radix-refining oversized runs on the float key — an O(m)
// distribution pass into per-drain bins, recursively, before the exact
// sort of each small bin — so the drain cost stays near-linear however
// badly the window width guessed.
type bucketQueue struct {
	buckets [][]delivery
	over    heapQueue // beyond the window (or before it is primed)
	overMax float64   // max key ever pushed to over since last rebuild

	base   float64 // window start key
	width  float64 // bucket width, > 0 and finite
	bkt    int     // next bucket ordinal to drain
	cur    []delivery
	curIdx int

	// radix-refinement scratch, recycled across drains.
	bins [][]delivery

	size   int
	primed bool
}

func newBucketQueue() *bucketQueue {
	return &bucketQueue{buckets: make([][]delivery, bucketQueueMinBuckets)}
}

// reset clears the queue for reuse, retaining bucket storage. n is the
// system size the next run schedules for; the wheel grows to match.
func (q *bucketQueue) reset(n int) {
	if want := bucketsFor(n); want > len(q.buckets) {
		q.buckets = make([][]delivery, want)
	}
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.over = q.over[:0]
	q.overMax = math.Inf(-1)
	q.cur = q.cur[:0]
	q.curIdx = 0
	q.bkt = 0
	q.size = 0
	q.primed = false
}

func (q *bucketQueue) len() int { return q.size }

func (q *bucketQueue) pushOver(d delivery) {
	if d.key > q.overMax {
		q.overMax = d.key
	}
	q.over.push(d)
}

func (q *bucketQueue) push(d delivery) {
	q.size++
	if !q.primed {
		q.pushOver(d)
		return
	}
	o := (d.key - q.base) / q.width
	switch {
	case o < float64(q.bkt):
		// Belongs to already-drained territory: merge into the exact run.
		q.insertCur(d)
	case o < float64(len(q.buckets)):
		i := int(o)
		q.buckets[i] = append(q.buckets[i], d)
	default:
		q.pushOver(d)
	}
}

// insertCur splices d into the sorted current run at its exact position.
// The insertion point is always at or after curIdx: everything already
// popped is (at, seq)-before any new delivery, because sends never
// schedule earlier than the reception being processed and seq grows
// monotonically.
func (q *bucketQueue) insertCur(d delivery) {
	lo, hi := q.curIdx, len(q.cur)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d.before(q.cur[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	q.cur = append(q.cur, delivery{})
	copy(q.cur[lo+1:], q.cur[lo:])
	q.cur[lo] = d
}

func (q *bucketQueue) pop() delivery {
	for q.curIdx >= len(q.cur) {
		q.advance()
	}
	d := q.cur[q.curIdx]
	q.curIdx++
	q.size--
	return d
}

// peek primes the drain position exactly like pop and returns the head
// without consuming it.
func (q *bucketQueue) peek() (delivery, bool) {
	if q.size == 0 {
		return delivery{}, false
	}
	for q.curIdx >= len(q.cur) {
		q.advance()
	}
	return q.cur[q.curIdx], true
}

// advance moves the drain position to the next non-empty bucket, sorting
// it into the current run; when the window is exhausted it re-seeds
// base/width from the overflow heap. Callers guarantee size > 0.
func (q *bucketQueue) advance() {
	q.cur = q.cur[:0]
	q.curIdx = 0
	for q.bkt < len(q.buckets) {
		b := q.bkt
		q.bkt++
		if len(q.buckets[b]) > 0 {
			q.cur = append(q.cur, q.buckets[b]...)
			q.buckets[b] = q.buckets[b][:0]
			q.sortRun()
			return
		}
	}
	q.rebuild()
}

// sortRun orders q.cur by the exact (at, seq) order. Small runs sort
// directly; oversized runs — the product of a degenerate window width —
// are first distributed into ~len/4 bins by float key (monotone, so bin
// order respects the exact order and only bin-mates need comparing), then
// each bin is sorted and copied back over the run in bin order. The
// distribution pass is O(m); key-identical runs (where no float width can
// discriminate) fall through to the comparison sort, which resolves them
// on the cheap seq tie-break.
func (q *bucketQueue) sortRun() {
	run := q.cur
	if len(run) <= bucketSortThreshold {
		slices.SortFunc(run, cmpDelivery)
		return
	}
	lo, hi := run[0].key, run[0].key
	for _, d := range run[1:] {
		if d.key < lo {
			lo = d.key
		}
		if d.key > hi {
			hi = d.key
		}
	}
	nbins := bucketSortBins(len(run))
	width := (hi - lo) / float64(nbins-1)
	if !(width > 0) || math.IsInf(width, 0) {
		// Keys indistinguishable (or span overflow): comparison sort
		// settles it on (at, seq).
		slices.SortFunc(run, cmpDelivery)
		return
	}
	if len(q.bins) < nbins {
		q.bins = make([][]delivery, nbins)
	}
	for _, d := range run {
		b := int((d.key - lo) / width)
		q.bins[b] = append(q.bins[b], d)
	}
	pos := 0
	for i := 0; i < nbins; i++ {
		bin := q.bins[i]
		if len(bin) == 0 {
			continue
		}
		slices.SortFunc(bin, cmpDelivery)
		pos += copy(run[pos:], bin)
		q.bins[i] = bin[:0]
	}
}

// bucketSortBins picks the refinement bin count: about a quarter of the
// run length, clamped so the scratch table stays modest and small runs
// still spread.
func bucketSortBins(m int) int {
	n := 256
	for n < 1<<16 && n < m/4 {
		n <<= 1
	}
	return n
}

// rebuild starts a fresh window at the overflow minimum. The width spreads
// the overflow's key span across the buckets; degenerate spans (all keys
// equal, or spans that overflow float64) fall back to width 1, which
// degrades to sorted-run behavior but stays exact — sortRun's radix
// refinement keeps even that case near-linear.
func (q *bucketQueue) rebuild() {
	q.primed = true
	q.base = q.over[0].key
	q.width = (q.overMax - q.base) / float64(len(q.buckets)-1)
	if !(q.width > 0) || math.IsInf(q.width, 0) {
		q.width = 1
	}
	for len(q.over) > 0 {
		o := (q.over[0].key - q.base) / q.width
		if !(o < float64(len(q.buckets))) {
			break
		}
		d := q.over.pop()
		q.buckets[int(o)] = append(q.buckets[int(o)], d)
	}
	if len(q.over) == 0 {
		q.overMax = math.Inf(-1)
	}
	q.bkt = 0
}
