package sim

import (
	"container/heap"
	"math"
	"sort"
)

// delivery is a scheduled message reception. key is the float64 image of
// at under rat.Float64 (clamped to ±MaxFloat64): the conversion is
// correctly rounded and therefore monotone — a < b implies key(a) <=
// key(b), and equal times have equal keys — so float comparisons and
// bucket assignments can never contradict the exact order, they can only
// fail to distinguish values the exact (at, seq) comparison then settles.
type delivery struct {
	at  Time
	key float64
	seq int64 // insertion order; total tie-break for determinism
	msg MsgID
}

// before is the exact total delivery order (at, seq).
func (d delivery) before(o delivery) bool {
	if c := d.at.Cmp(o.at); c != 0 {
		return c < 0
	}
	return d.seq < o.seq
}

// deliveryKey clamps the monotone float64 image of t into the finite
// range so bucket arithmetic stays NaN-free.
func deliveryKey(t Time) float64 {
	f := t.Float64()
	if f > math.MaxFloat64 {
		return math.MaxFloat64
	}
	if f < -math.MaxFloat64 {
		return -math.MaxFloat64
	}
	return f
}

// eventQueue is the delivery scheduler: push in any order, pop in the
// exact (at, seq) order. Both implementations — heapQueue and bucketQueue
// — realize the identical total order, so which one a run uses never
// changes its trace (pinned by TestQueueImplementationsAgree and the
// golden determinism grid).
type eventQueue interface {
	push(d delivery)
	pop() delivery
	len() int
}

// heapQueue is a min-heap ordered by (key, at, seq): the cached float key
// decides almost every comparison in one branch, falling back to the exact
// rational comparison only on float ties.
type heapQueue []delivery

func (q heapQueue) Len() int { return len(q) }

func (q heapQueue) Less(i, j int) bool {
	if q[i].key != q[j].key {
		return q[i].key < q[j].key
	}
	return q[i].before(q[j])
}

func (q heapQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *heapQueue) Push(x any) { *q = append(*q, x.(delivery)) }

func (q *heapQueue) Pop() any {
	old := *q
	n := len(old)
	d := old[n-1]
	*q = old[:n-1]
	return d
}

func (q *heapQueue) push(d delivery) { heap.Push(q, d) }

func (q *heapQueue) pop() delivery { return heap.Pop(q).(delivery) }

func (q *heapQueue) len() int { return len(*q) }

// bucketQueueBuckets is the window size of the calendar. 1024 buckets keep
// the per-window rebuild cost trivial while making the expected bucket
// population a handful of deliveries at N ≈ 10^5.
const bucketQueueBuckets = 1024

// bucketQueue is a calendar ("event wheel") queue: deliveries are binned
// by their float key into a window of equal-width buckets; the bucket
// being drained is sorted once by the exact (at, seq) order, later
// arrivals merge into the sorted run by binary insertion, and deliveries
// beyond the window wait in an overflow heap that re-seeds the window when
// it empties. At sparse scale the heap's O(log n) rational-flavored sift
// per operation becomes the engine bottleneck; the calendar amortizes to
// O(1) routing per push and a small exact sort per bucket.
//
// Exactness: bucket routing is a monotone function of the (monotone) float
// key, so an earlier bucket never holds a delivery that must pop after one
// in a later bucket; everything sharing a bucket is ordered by the exact
// comparison. Pushes during a drain always belong at or after the current
// position because the engine only schedules at or after the time it is
// currently delivering.
type bucketQueue struct {
	buckets [][]delivery
	over    heapQueue // beyond the window (or before it is primed)
	overMax float64   // max key ever pushed to over since last rebuild

	base   float64 // window start key
	width  float64 // bucket width, > 0 and finite
	bkt    int     // next bucket ordinal to drain
	cur    []delivery
	curIdx int

	size   int
	primed bool
}

func newBucketQueue() *bucketQueue {
	return &bucketQueue{buckets: make([][]delivery, bucketQueueBuckets)}
}

// reset clears the queue for reuse, retaining bucket storage.
func (q *bucketQueue) reset() {
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.over = q.over[:0]
	q.overMax = math.Inf(-1)
	q.cur = q.cur[:0]
	q.curIdx = 0
	q.bkt = 0
	q.size = 0
	q.primed = false
}

func (q *bucketQueue) len() int { return q.size }

func (q *bucketQueue) pushOver(d delivery) {
	if d.key > q.overMax {
		q.overMax = d.key
	}
	q.over.push(d)
}

func (q *bucketQueue) push(d delivery) {
	q.size++
	if !q.primed {
		q.pushOver(d)
		return
	}
	o := (d.key - q.base) / q.width
	switch {
	case o < float64(q.bkt):
		// Belongs to already-drained territory: merge into the exact run.
		q.insertCur(d)
	case o < bucketQueueBuckets:
		i := int(o)
		q.buckets[i] = append(q.buckets[i], d)
	default:
		q.pushOver(d)
	}
}

// insertCur splices d into the sorted current run at its exact position.
// The insertion point is always at or after curIdx: everything already
// popped is (at, seq)-before any new delivery, because sends never
// schedule earlier than the reception being processed and seq grows
// monotonically.
func (q *bucketQueue) insertCur(d delivery) {
	i := q.curIdx + sort.Search(len(q.cur)-q.curIdx, func(i int) bool {
		return d.before(q.cur[q.curIdx+i])
	})
	q.cur = append(q.cur, delivery{})
	copy(q.cur[i+1:], q.cur[i:])
	q.cur[i] = d
}

func (q *bucketQueue) pop() delivery {
	for q.curIdx >= len(q.cur) {
		q.advance()
	}
	d := q.cur[q.curIdx]
	q.curIdx++
	q.size--
	return d
}

// advance moves the drain position to the next non-empty bucket, sorting
// it into the current run; when the window is exhausted it re-seeds
// base/width from the overflow heap. Callers guarantee size > 0.
func (q *bucketQueue) advance() {
	q.cur = q.cur[:0]
	q.curIdx = 0
	for q.bkt < bucketQueueBuckets {
		b := q.bkt
		q.bkt++
		if len(q.buckets[b]) > 0 {
			q.cur = append(q.cur, q.buckets[b]...)
			q.buckets[b] = q.buckets[b][:0]
			sort.Slice(q.cur, func(i, j int) bool { return q.cur[i].before(q.cur[j]) })
			return
		}
	}
	q.rebuild()
}

// rebuild starts a fresh window at the overflow minimum. The width spreads
// the overflow's key span across the buckets; degenerate spans (all keys
// equal, or spans that overflow float64) fall back to width 1, which
// degrades to sorted-run behavior but stays exact.
func (q *bucketQueue) rebuild() {
	q.primed = true
	q.base = q.over[0].key
	q.width = (q.overMax - q.base) / (bucketQueueBuckets - 1)
	if !(q.width > 0) || math.IsInf(q.width, 0) {
		q.width = 1
	}
	for len(q.over) > 0 {
		o := (q.over[0].key - q.base) / q.width
		if !(o < bucketQueueBuckets) {
			break
		}
		d := q.over.pop()
		q.buckets[int(o)] = append(q.buckets[int(o)], d)
	}
	if len(q.over) == 0 {
		q.overMax = math.Inf(-1)
	}
	q.bkt = 0
}
