package sim

import "container/heap"

// delivery is a scheduled message reception.
type delivery struct {
	at  Time
	seq int64 // insertion order; total tie-break for determinism
	msg MsgID
}

// deliveryQueue is a min-heap ordered by (at, seq).
type deliveryQueue []delivery

func (q deliveryQueue) Len() int { return len(q) }

func (q deliveryQueue) Less(i, j int) bool {
	if c := q[i].at.Cmp(q[j].at); c != 0 {
		return c < 0
	}
	return q[i].seq < q[j].seq
}

func (q deliveryQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *deliveryQueue) Push(x any) { *q = append(*q, x.(delivery)) }

func (q *deliveryQueue) Pop() any {
	old := *q
	n := len(old)
	d := old[n-1]
	*q = old[:n-1]
	return d
}

func (q *deliveryQueue) push(d delivery) { heap.Push(q, d) }

func (q *deliveryQueue) pop() delivery { return heap.Pop(q).(delivery) }
