package sim

import (
	"testing"

	"repro/internal/rat"
)

// engineTestConfigs is a set of deliberately heterogeneous configurations:
// different N (larger and smaller than each other, to exercise both growth
// and shrinking of the pooled arrays), different delay policies (uniform,
// growing, per-link, override), faults (crash, silent, Byzantine script),
// topology restrictions, and staggered start times.
func engineTestConfigs() map[string]Config {
	broadcast := func(steps int) func(ProcessID) Process {
		return func(ProcessID) Process {
			return ProcessFunc(func(env *Env, msg Message) {
				if env.StepIndex() < steps {
					env.Broadcast(env.StepIndex())
				}
			})
		}
	}
	return map[string]Config{
		"uniform-n6": {
			N: 6, Spawn: broadcast(8),
			Delays: UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
			Seed:   11, MaxEvents: 50000,
		},
		"growing-n3-faults": {
			N: 3, Spawn: broadcast(6),
			Faults: map[ProcessID]Fault{
				1: Crash(3),
				2: {CrashAfter: NeverCrash, Script: []ScriptedSend{
					{At: rat.New(5, 2), To: 0, Payload: "forged"},
				}},
			},
			Delays: GrowingDelay{Base: rat.One, Rate: rat.New(1, 10), Spread: rat.New(5, 4)},
			Seed:   7, MaxEvents: 20000,
		},
		"perlink-ring-n5": {
			N: 5, Spawn: broadcast(5),
			Delays: PerLinkDelay{
				Default: UniformDelay{Min: rat.One, Max: rat.FromInt(2)},
				Links: map[Link]DelayPolicy{
					{From: 0, To: 1}: ConstantDelay{D: rat.New(1, 2)},
				},
			},
			Topology: TopologyFunc(func(from, to ProcessID) bool {
				return to == (from+1)%5 || from == to
			}),
			Seed: 3, MaxEvents: 20000,
		},
		"override-stagger-n4": {
			N: 4, Spawn: broadcast(7),
			Delays: OverrideDelay{
				Base: UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
				Match: func(m Message) bool {
					v, ok := m.Payload.(int)
					return ok && v == 2
				},
				Override: UniformDelay{Min: rat.FromInt(4), Max: rat.FromInt(6)},
			},
			StartTimes: []Time{rat.Zero, rat.One, rat.New(1, 2), rat.FromInt(2)},
			Seed:       42, MaxEvents: 20000,
		},
	}
}

// TestEngineMatchesRun pins the wrapper contract: for every configuration,
// an Engine produces a trace bit-identical to the one-shot sim.Run.
func TestEngineMatchesRun(t *testing.T) {
	e := NewEngine()
	for name, cfg := range engineTestConfigs() {
		fresh, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		pooled, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: Engine.Run: %v", name, err)
		}
		if fresh.Trace.Hash() != pooled.Trace.Hash() {
			t.Errorf("%s: engine trace differs from sim.Run trace", name)
		}
		if fresh.Truncated != pooled.Truncated {
			t.Errorf("%s: truncated %v vs %v", name, fresh.Truncated, pooled.Truncated)
		}
	}
}

// TestEngineReuseHermetic is the pooling-hermeticity property: running
// config A, then any interfering config B, then A again on the same Engine
// yields a trace identical to a fresh run of A. Every ordered pair of the
// heterogeneous test configs is exercised, so the pooled arrays shrink,
// grow, and change delay policy, fault set, and topology between the two
// A runs.
func TestEngineReuseHermetic(t *testing.T) {
	cfgs := engineTestConfigs()
	for nameA, cfgA := range cfgs {
		fresh, err := Run(cfgA)
		if err != nil {
			t.Fatalf("%s: fresh run: %v", nameA, err)
		}
		want := fresh.Trace.Hash()
		for nameB, cfgB := range cfgs {
			e := NewEngine()
			first, err := e.Run(cfgA)
			if err != nil {
				t.Fatalf("%s then %s: first A: %v", nameA, nameB, err)
			}
			if _, err := e.Run(cfgB); err != nil {
				t.Fatalf("%s then %s: B: %v", nameA, nameB, err)
			}
			second, err := e.Run(cfgA)
			if err != nil {
				t.Fatalf("%s then %s: second A: %v", nameA, nameB, err)
			}
			if h := first.Trace.Hash(); h != want {
				t.Errorf("A=%s B=%s: first engine run of A differs from fresh run", nameA, nameB)
			}
			if h := second.Trace.Hash(); h != want {
				t.Errorf("A=%s B=%s: A after B differs from fresh run of A (state leak)", nameA, nameB)
			}
		}
	}
}

// TestEngineShardModeSwitchHermetic extends the reuse-hermeticity suite
// across execution modes: running config A serial, then B sharded, then A
// serial again (and the mirrored parallel→serial→parallel order) on one
// pooled Engine must reproduce a fresh run of A exactly. The sharded
// mode's pooled state — shard queues, inboxes, window buffers, the
// lookahead — must be as invisible between runs as the serial pools are.
func TestEngineShardModeSwitchHermetic(t *testing.T) {
	cfgs := engineTestConfigs()
	for nameA, cfgA := range cfgs {
		for _, aShards := range []int{1, 4} {
			a := cfgA
			a.Shards = aShards
			fresh, err := Run(a)
			if err != nil {
				t.Fatalf("%s: fresh run: %v", nameA, err)
			}
			want := fresh.Trace.Hash()
			for nameB, cfgB := range cfgs {
				// B runs in the opposite mode of A, forcing a mode switch
				// both into and out of the sharded engine.
				b := cfgB
				if aShards == 1 {
					b.Shards = 4
				} else {
					b.Shards = 1
				}
				e := NewEngine()
				first, err := e.Run(a)
				if err != nil {
					t.Fatalf("A=%s(x%d) B=%s: first A: %v", nameA, aShards, nameB, err)
				}
				if _, err := e.Run(b); err != nil {
					t.Fatalf("A=%s(x%d) B=%s: B: %v", nameA, aShards, nameB, err)
				}
				second, err := e.Run(a)
				if err != nil {
					t.Fatalf("A=%s(x%d) B=%s: second A: %v", nameA, aShards, nameB, err)
				}
				if first.Trace.Hash() != want {
					t.Errorf("A=%s(x%d) B=%s: first engine run of A differs from fresh run", nameA, aShards, nameB)
				}
				if second.Trace.Hash() != want {
					t.Errorf("A=%s(x%d) B=%s: A after mode-switched B differs from fresh run (state leak)", nameA, aShards, nameB)
				}
			}
		}
	}
}

// TestEngineResultsDoNotAlias asserts that results of consecutive runs
// share no mutable state: the first run's trace must be unchanged (same
// hash) after the engine has executed a different configuration.
func TestEngineResultsDoNotAlias(t *testing.T) {
	cfgs := engineTestConfigs()
	e := NewEngine()
	a, err := e.Run(cfgs["uniform-n6"])
	if err != nil {
		t.Fatal(err)
	}
	before := a.Trace.Hash()
	if _, err := e.Run(cfgs["growing-n3-faults"]); err != nil {
		t.Fatal(err)
	}
	if a.Trace.Hash() != before {
		t.Error("first result's trace mutated by a later engine run")
	}
}

// TestEngineRecoversFromConfigError verifies an Engine stays usable after
// a rejected configuration.
func TestEngineRecoversFromConfigError(t *testing.T) {
	e := NewEngine()
	if _, err := e.Run(Config{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	cfg := engineTestConfigs()["uniform-n6"]
	fresh, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace.Hash() != fresh.Trace.Hash() {
		t.Error("engine run after config error differs from fresh run")
	}
}
