package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strings"

	"repro/internal/rat"
)

// JSON serialization of traces, used by cmd/abcsim (export) and
// cmd/abccheck (import). Times are serialized as exact rational strings
// ("3/2"); payloads are rendered to strings with %v — sufficient for all
// admissibility checking, which depends only on the communication
// structure, never on payload contents.
//
// Payloads holding pointers (e.g. lockstep round messages) would render
// heap addresses, making serialization — and therefore Trace.Hash and
// cross-run trace diffs — depend on allocation accidents. renderValue
// masks hex addresses, trading the (meaningless) address text for
// deterministic output.

// addrPattern matches %v-rendered pointer addresses.
var addrPattern = regexp.MustCompile(`0x[0-9a-f]+`)

// renderValue renders a payload or note deterministically: like %v, but
// with heap addresses replaced by "0xPTR".
func renderValue(v any) string {
	s := fmt.Sprintf("%v", v)
	if strings.Contains(s, "0x") {
		s = addrPattern.ReplaceAllString(s, "0xPTR")
	}
	return s
}

type jsonTrace struct {
	N      int           `json:"n"`
	Faulty []bool        `json:"faulty"`
	Events []jsonEvent   `json:"events"`
	Msgs   []jsonMessage `json:"messages"`
}

type jsonEvent struct {
	Proc      int    `json:"proc"`
	Index     int    `json:"index"`
	Time      string `json:"time"`
	Trigger   int    `json:"trigger"`
	Processed bool   `json:"processed"`
	Note      string `json:"note,omitempty"`
}

type jsonMessage struct {
	ID       int    `json:"id"`
	From     int    `json:"from"`
	To       int    `json:"to"`
	SendStep int    `json:"sendStep"`
	SendTime string `json:"sendTime"`
	RecvTime string `json:"recvTime"`
	Payload  string `json:"payload,omitempty"`
	Wakeup   bool   `json:"wakeup,omitempty"`
	Dropped  bool   `json:"dropped,omitempty"`
}

// WriteJSON serializes the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	jt := jsonTrace{N: t.N, Faulty: t.Faulty}
	jt.Events = make([]jsonEvent, len(t.Events))
	for i, ev := range t.Events {
		note := ""
		if ev.Note != nil {
			note = renderValue(ev.Note)
		}
		jt.Events[i] = jsonEvent{
			Proc: int(ev.Proc), Index: ev.Index, Time: ev.Time.String(),
			Trigger: int(ev.Trigger), Processed: ev.Processed, Note: note,
		}
	}
	jt.Msgs = make([]jsonMessage, len(t.Msgs))
	for i, m := range t.Msgs {
		payload := ""
		if m.Payload != nil {
			payload = renderValue(m.Payload)
		}
		jt.Msgs[i] = jsonMessage{
			ID: int(m.ID), From: int(m.From), To: int(m.To), SendStep: m.SendStep,
			SendTime: m.SendTime.String(), RecvTime: m.RecvTime.String(),
			Payload: payload, Wakeup: m.IsWakeup(), Dropped: m.Dropped,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// ReadJSON deserializes a trace written by WriteJSON and validates it.
// Payloads and notes come back as strings.
func ReadJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("sim: decoding trace: %w", err)
	}
	t := &Trace{
		N:      jt.N,
		Faulty: jt.Faulty,
		Events: make([]Event, len(jt.Events)),
		Msgs:   make([]Message, len(jt.Msgs)),
	}
	for i, je := range jt.Events {
		tm, err := rat.Parse(je.Time)
		if err != nil {
			return nil, fmt.Errorf("sim: event %d time: %w", i, err)
		}
		var note any
		if je.Note != "" {
			note = je.Note
		}
		t.Events[i] = Event{
			Proc: ProcessID(je.Proc), Index: je.Index, Time: tm,
			Trigger: MsgID(je.Trigger), Processed: je.Processed, Note: note,
		}
	}
	for i, jm := range jt.Msgs {
		st, err := rat.Parse(jm.SendTime)
		if err != nil {
			return nil, fmt.Errorf("sim: message %d send time: %w", i, err)
		}
		rt, err := rat.Parse(jm.RecvTime)
		if err != nil {
			return nil, fmt.Errorf("sim: message %d recv time: %w", i, err)
		}
		var payload any
		if jm.Payload != "" {
			payload = jm.Payload
		}
		if jm.Wakeup {
			payload = Wakeup{}
		}
		t.Msgs[i] = Message{
			ID: MsgID(jm.ID), From: ProcessID(jm.From), To: ProcessID(jm.To),
			SendStep: jm.SendStep, SendTime: st, RecvTime: rt, Payload: payload,
			Dropped: jm.Dropped,
		}
	}
	t.indexEvents()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
