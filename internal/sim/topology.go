package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Topology describes which directed communication links exist. A nil
// Topology in Config means fully connected. The engine treats self-delivery
// as always available regardless of the topology: a process can deliver to
// itself without a network link (see Env.Broadcast and Env.Send).
//
// Implementations backed by explicit neighbor lists should be *Links — the
// engine recognizes it and routes Env.Broadcast through the precomputed
// out-neighbor slices instead of the O(N) predicate scan, which is what
// makes N ≈ 10^5 sparse systems tractable.
type Topology interface {
	// Linked reports whether the directed link from → to exists.
	Linked(from, to ProcessID) bool
}

// TopologyFunc adapts a predicate to the Topology interface.
type TopologyFunc func(from, to ProcessID) bool

// Linked implements Topology.
func (f TopologyFunc) Linked(from, to ProcessID) bool { return f(from, to) }

// Links is a sparse directed graph in compressed sparse row form: one
// sorted out-neighbor slice per process, following the CSR layout of
// causality.Graph. It implements Topology; Linked answers by binary search
// and Out exposes the neighbor slice the engine's broadcast fast path
// iterates directly.
type Links struct {
	n      int
	off    []int32
	to     []ProcessID
	maxOut int
}

// NewLinks builds a Links topology for n processes from per-process
// out-neighbor lists. adj may be shorter than n (missing rows mean no out
// links); rows are copied, sorted, and deduplicated, so the caller's slices
// are not retained. Neighbors outside [0, n) panic: topologies are built by
// generators at configuration time, where a stray ID is a programming
// error.
func NewLinks(n int, adj [][]ProcessID) *Links {
	if n <= 0 {
		panic(fmt.Sprintf("sim: NewLinks(%d)", n))
	}
	if len(adj) > n {
		panic(fmt.Sprintf("sim: NewLinks with %d rows for %d processes", len(adj), n))
	}
	l := &Links{n: n, off: make([]int32, n+1)}
	total := 0
	for _, row := range adj {
		total += len(row)
	}
	l.to = make([]ProcessID, 0, total)
	scratch := make([]ProcessID, 0, 8)
	for p := 0; p < n; p++ {
		var row []ProcessID
		if p < len(adj) {
			row = adj[p]
		}
		scratch = append(scratch[:0], row...)
		sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
		prev := ProcessID(-1)
		for _, q := range scratch {
			if q < 0 || int(q) >= n {
				panic(fmt.Sprintf("sim: NewLinks: neighbor %d of %d out of range", q, p))
			}
			if q == prev {
				continue
			}
			l.to = append(l.to, q)
			prev = q
		}
		l.off[p+1] = int32(len(l.to))
		if d := int(l.off[p+1] - l.off[p]); d > l.maxOut {
			l.maxOut = d
		}
	}
	return l
}

// N returns the number of processes the topology spans.
func (l *Links) N() int { return l.n }

// NumLinks returns the number of directed links.
func (l *Links) NumLinks() int { return len(l.to) }

// Out returns the sorted out-neighbors of p. The slice aliases the
// topology's storage and must not be mutated.
func (l *Links) Out(p ProcessID) []ProcessID { return l.to[l.off[p]:l.off[p+1]] }

// MaxOutDegree returns the largest out-degree.
func (l *Links) MaxOutDegree() int { return l.maxOut }

// Linked implements Topology by binary search over the sorted neighbor
// slice.
func (l *Links) Linked(from, to ProcessID) bool {
	if from < 0 || int(from) >= l.n {
		return false
	}
	nb := l.Out(from)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= to })
	return i < len(nb) && nb[i] == to
}

// Ring returns the directed cycle 0 → 1 → ... → n-1 → 0.
func Ring(n int) *Links {
	adj := make([][]ProcessID, n)
	for i := 0; i < n; i++ {
		adj[i] = []ProcessID{ProcessID((i + 1) % n)}
	}
	return NewLinks(n, adj)
}

// Torus returns the rows×cols wraparound grid with bidirectional links to
// the four axis neighbors — the canonical chip-interconnect layout of the
// VLSI application (Section 5.3). Degenerate dimensions (a 1×c or r×1
// torus) collapse duplicate neighbors.
func Torus(rows, cols int) *Links {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sim: Torus(%d, %d)", rows, cols))
	}
	n := rows * cols
	adj := make([][]ProcessID, n)
	at := func(r, c int) ProcessID {
		return ProcessID(((r+rows)%rows)*cols + (c+cols)%cols)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			p := at(r, c)
			for _, q := range [4]ProcessID{at(r-1, c), at(r+1, c), at(r, c-1), at(r, c+1)} {
				if q != p { // a degenerate dimension folds onto itself
					adj[p] = append(adj[p], q)
				}
			}
		}
	}
	return NewLinks(n, adj)
}

// nearSquare factors n as rows×cols with rows the largest divisor of n not
// exceeding √n, so a bare "torus" spec gets the squarest possible grid.
func nearSquare(n int) (rows, cols int) {
	rows = 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			rows = d
		}
	}
	return rows, n / rows
}

// RandomRegular returns a random directed graph where every process has
// out-degree d: each picks d distinct targets other than itself, uniformly,
// from a deterministic seed. It requires 0 <= d <= n-1. This is the
// out-regular digraph family of the asynchronous maximum/minimum diffusion
// literature; in-degrees vary.
func RandomRegular(n, d int, seed int64) *Links {
	if d < 0 || d > n-1 {
		panic(fmt.Sprintf("sim: RandomRegular(n=%d, d=%d) needs 0 <= d <= n-1", n, d))
	}
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]ProcessID, n)
	// Partial Fisher–Yates over the n-1 candidate targets of each process:
	// d draws without replacement, O(n·d) total.
	pool := make([]ProcessID, n-1)
	for p := 0; p < n; p++ {
		pool = pool[:0]
		for q := 0; q < n; q++ {
			if q != p {
				pool = append(pool, ProcessID(q))
			}
		}
		row := make([]ProcessID, d)
		for i := 0; i < d; i++ {
			j := i + rng.Intn(len(pool)-i)
			pool[i], pool[j] = pool[j], pool[i]
			row[i] = pool[i]
		}
		adj[p] = row
	}
	return NewLinks(n, adj)
}

// ScaleFree returns an undirected (bidirectional-link) Barabási–Albert
// preferential-attachment graph: nodes join one at a time, each attaching
// to min(m, #existing) distinct earlier nodes chosen proportionally to
// their current degree. Hub degrees follow the power law that models
// irregular fabrics and router-dominated interconnects.
func ScaleFree(n, m int, seed int64) *Links {
	if m < 1 {
		panic(fmt.Sprintf("sim: ScaleFree(n=%d, m=%d) needs m >= 1", n, m))
	}
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]ProcessID, n)
	// repeated lists every endpoint once per incident edge; sampling from
	// it is degree-proportional selection.
	repeated := make([]ProcessID, 0, 2*m*n)
	for v := 1; v < n; v++ {
		k := m
		if v < m {
			k = v
		}
		targets := make(map[ProcessID]bool, k)
		for len(targets) < k {
			var t ProcessID
			if len(repeated) == 0 {
				t = ProcessID(rng.Intn(v))
			} else if rng.Intn(2) == 0 {
				// Mix in a uniform draw so early graphs stay connected and
				// sampling cannot stall on a degenerate repeated list.
				t = ProcessID(rng.Intn(v))
			} else {
				t = repeated[rng.Intn(len(repeated))]
			}
			if int(t) >= v || targets[t] {
				continue
			}
			targets[t] = true
		}
		for t := range targets {
			adj[v] = append(adj[v], t)
		}
		// Map iteration order is randomized; canonicalize before touching
		// the rng-independent repeated list so generation is deterministic.
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
		for _, t := range adj[v] {
			adj[t] = append(adj[t], ProcessID(v))
			repeated = append(repeated, ProcessID(v), t)
		}
	}
	return NewLinks(n, adj)
}

// Islands returns k disjoint fully-connected components ("islands") of as
// equal size as possible — the canonical disconnected topology for
// partition experiments. Processes in different islands share no link.
func Islands(n, k int) *Links {
	if k < 1 || k > n {
		panic(fmt.Sprintf("sim: Islands(n=%d, k=%d) needs 1 <= k <= n", n, k))
	}
	adj := make([][]ProcessID, n)
	start := 0
	for i := 0; i < k; i++ {
		size := n / k
		if i < n%k {
			size++
		}
		for p := start; p < start+size; p++ {
			row := make([]ProcessID, 0, size-1)
			for q := start; q < start+size; q++ {
				if q != p {
					row = append(row, ProcessID(q))
				}
			}
			adj[p] = row
		}
		start += size
	}
	return NewLinks(n, adj)
}

// IslandOf returns the component index of p under the Islands(n, k)
// layout, for tests pinning that traffic never crosses a partition.
func IslandOf(n, k int, p ProcessID) int {
	start := 0
	for i := 0; i < k; i++ {
		size := n / k
		if i < n%k {
			size++
		}
		if int(p) < start+size {
			return i
		}
		start += size
	}
	return k - 1
}

// ParseTopology builds a topology from its textual spec — the declared
// workload-parameter syntax shared by the registry sources and swept with
// `abcsim -sweep topology=...`:
//
//	full          fully connected (returns nil, the engine's default)
//	ring          directed cycle
//	torus         wraparound grid, squarest rows×cols factorization of n
//	torus/RxC     explicit rows×cols wraparound grid (R·C must equal n)
//	regular/D     random out-degree-D digraph (seeded)
//	scalefree/M   Barabási–Albert with M attachments per node (seeded)
//	islands/K     K disjoint fully-connected components (disconnected)
//
// Note that generated names contain '/' — axis labels must therefore use
// explicit key=value segments (see runner.Point.Key).
func ParseTopology(spec string, n int, seed int64) (Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sim: topology %q needs n > 0, got %d", spec, n)
	}
	name, arg, _ := strings.Cut(spec, "/")
	switch name {
	case "full", "":
		if arg != "" {
			return nil, fmt.Errorf("sim: topology full takes no argument, got %q", spec)
		}
		return nil, nil
	case "ring":
		if arg != "" {
			return nil, fmt.Errorf("sim: topology ring takes no argument, got %q", spec)
		}
		return Ring(n), nil
	case "torus":
		rows, cols := nearSquare(n)
		if arg != "" {
			rs, cs, ok := strings.Cut(arg, "x")
			if !ok {
				return nil, fmt.Errorf("sim: topology %q: want torus/RxC", spec)
			}
			var err1, err2 error
			rows, err1 = strconv.Atoi(rs)
			cols, err2 = strconv.Atoi(cs)
			if err1 != nil || err2 != nil || rows <= 0 || cols <= 0 {
				return nil, fmt.Errorf("sim: topology %q: bad dimensions", spec)
			}
		}
		if rows*cols != n {
			return nil, fmt.Errorf("sim: topology %q: %d×%d != n=%d", spec, rows, cols, n)
		}
		return Torus(rows, cols), nil
	case "regular":
		d, err := strconv.Atoi(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("sim: topology %q: want regular/D with D >= 0", spec)
		}
		if d > n-1 {
			return nil, fmt.Errorf("sim: topology %q: degree %d exceeds n-1=%d", spec, d, n-1)
		}
		return RandomRegular(n, d, seed), nil
	case "scalefree":
		m, err := strconv.Atoi(arg)
		if err != nil || m < 1 {
			return nil, fmt.Errorf("sim: topology %q: want scalefree/M with M >= 1", spec)
		}
		return ScaleFree(n, m, seed), nil
	case "islands":
		k, err := strconv.Atoi(arg)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("sim: topology %q: want islands/K with K >= 1", spec)
		}
		if k > n {
			return nil, fmt.Errorf("sim: topology %q: %d islands exceed n=%d", spec, k, n)
		}
		return Islands(n, k), nil
	default:
		return nil, fmt.Errorf("sim: unknown topology %q (want full, ring, torus[/RxC], regular/D, scalefree/M, islands/K)", spec)
	}
}
