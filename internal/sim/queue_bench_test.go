package sim

import (
	"math/rand"
	"testing"

	"repro/internal/rat"
)

// BenchmarkDeliveryQueue is the 10^7-event scheduler microbenchmark behind
// the calendar-queue tuning: prime the queue with an engine-like in-flight
// population, then run a hold pattern — every pop schedules a successor a
// small random delay later — until ten million deliveries have passed
// through, and drain.
//
// The spread load starts deliveries across a wide key range (steady-state
// traffic). The degenerate-start load is the wheel's historical failure
// mode: every primed delivery at t = 0, exactly what a simulation's wake-up
// burst looks like — the first rebuild then sees a zero key span, falls
// back to width 1, and lands the entire population in one bucket. Before
// the sortRun radix refinement and the size-adaptive wheel
// (bucketsFor), that one bucket cost a single reflective sort of 10^5+
// deliveries per drain; with them the drain stays near-linear, which this
// benchmark pins against the heap baseline.
func BenchmarkDeliveryQueue(b *testing.B) {
	const total = 10_000_000
	const inflight = 1 << 17

	impls := []struct {
		name string
		mk   func(n int) eventQueue
	}{
		{"heap", func(int) eventQueue { return new(heapQueue) }},
		{"calendar", func(n int) eventQueue {
			q := newBucketQueue()
			q.reset(n)
			return q
		}},
	}
	loads := []struct {
		name      string
		sameStart bool
	}{
		{"spread", false},
		{"degenerate-start", true},
	}
	for _, impl := range impls {
		for _, load := range loads {
			b.Run(impl.name+"/"+load.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					q := impl.mk(inflight)
					rng := rand.New(rand.NewSource(1))
					seq := int64(0)
					push := func(at Time) {
						seq++
						q.push(delivery{at: at, key: deliveryKey(at), seq: seq, msg: MsgID(seq)})
					}
					for j := 0; j < inflight; j++ {
						at := rat.Zero
						if !load.sameStart {
							at = rat.New(int64(rng.Intn(4096)), 4)
						}
						push(at)
					}
					lastKey := deliveryKey(rat.Zero)
					for j := 0; j < total-inflight; j++ {
						d := q.pop()
						if d.key < lastKey {
							b.Fatalf("pop went backwards: key %v after %v", d.key, lastKey)
						}
						lastKey = d.key
						// Successor delay in [1, 3/2], quarter-granular —
						// the same shape UniformDelay feeds the engine.
						push(d.at.Add(rat.New(4+int64(rng.Intn(3)), 4)))
					}
					for q.len() > 0 {
						q.pop()
					}
				}
				b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
			})
		}
	}
}
