package sim

import "fmt"

// Process is a message-driven state machine. Implementations must be
// deterministic: the sequence of steps is fully determined by the sequence
// of received messages. Algorithms intended for the ABC model must be
// time-free — they observe only message contents and senders, never
// simulated time.
type Process interface {
	// Step executes one atomic computing step triggered by msg. The step
	// takes zero simulated time; messages emitted through env are sent at
	// the instant the triggering message was received.
	Step(env *Env, msg Message)
}

// ProcessFunc adapts a function to the Process interface.
type ProcessFunc func(env *Env, msg Message)

// Step implements Process.
func (f ProcessFunc) Step(env *Env, msg Message) { f(env, msg) }

// Env is the interface a computing step uses to interact with the system.
// An Env is only valid for the duration of one Step call.
type Env struct {
	self      ProcessID
	n         int
	stepIndex int
	out       []pendingSend
	note      any
	topo      Topology
	links     *Links // non-nil iff topo is a *Links; enables O(degree) fan-out
}

type pendingSend struct {
	to      ProcessID
	payload any
}

// Self returns the executing process's ID.
func (e *Env) Self() ProcessID { return e.self }

// N returns the number of processes in the system.
func (e *Env) N() int { return e.n }

// StepIndex returns the index of the current computing step at this process
// (0 for the wake-up step). Counting own steps is permitted in
// message-driven models; observing real time is not.
func (e *Env) StepIndex() int { return e.stepIndex }

// Send emits a message to the given process as part of the current step.
// Sending to a process not connected by the topology panics: in a
// point-to-point network an algorithm can only use existing links, and
// attempting otherwise is a programming error. Sending to oneself is
// always permitted — self-delivery is a local operation, not a network
// link (Algorithm 1 assumes it unconditionally).
func (e *Env) Send(to ProcessID, payload any) {
	if to < 0 || int(to) >= e.n {
		panic(fmt.Sprintf("sim: send to invalid process %d", to))
	}
	if to != e.self && e.topo != nil && !e.topo.Linked(e.self, to) {
		panic(fmt.Sprintf("sim: no link %d -> %d in topology", e.self, to))
	}
	e.out = append(e.out, pendingSend{to: to, payload: payload})
}

// Broadcast sends payload to every out-neighbor in the topology and to the
// sender itself. Self-delivery is unconditional — the paper assumes it for
// Algorithm 1, and a topology describes network links, which a process does
// not need to reach itself — so a predicate excluding from == to cannot
// suppress it.
//
// All three paths emit sends in ascending recipient order (with self woven
// into its sorted position), so the same topology expressed as a predicate
// or as a *Links produces the identical trace; the *Links path just does it
// in O(out-degree) instead of O(N).
func (e *Env) Broadcast(payload any) {
	switch {
	case e.links != nil:
		selfDone := false
		for _, to := range e.links.Out(e.self) {
			if !selfDone && to >= e.self {
				selfDone = true
				if to != e.self {
					e.out = append(e.out, pendingSend{to: e.self, payload: payload})
				}
			}
			e.out = append(e.out, pendingSend{to: to, payload: payload})
		}
		if !selfDone {
			e.out = append(e.out, pendingSend{to: e.self, payload: payload})
		}
	case e.topo != nil:
		for to := ProcessID(0); int(to) < e.n; to++ {
			if to != e.self && !e.topo.Linked(e.self, to) {
				continue
			}
			e.out = append(e.out, pendingSend{to: to, payload: payload})
		}
	default:
		for to := ProcessID(0); int(to) < e.n; to++ {
			e.out = append(e.out, pendingSend{to: to, payload: payload})
		}
	}
}

// SetNote attaches an annotation to the receive event of the current step;
// it is stored in Event.Note. Monitors use it to observe algorithm state
// (e.g. Algorithm 1's clock value) without breaking encapsulation.
func (e *Env) SetNote(v any) { e.note = v }
