package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/rat"
)

// Engine is a reusable simulation executor. A zero-value Engine is ready to
// use; Run may be called any number of times, and each call produces a
// result bit-identical to a fresh sim.Run of the same Config (the
// hermeticity property pinned by TestEngineReuseHermetic).
//
// The point of an Engine over the one-shot Run is fan-out cost: the fleet
// runner (internal/runner) executes thousands of short simulations per
// worker, and the delivery queue, per-process scratch arrays, RNG, and the
// step environment's send buffer are all reused across runs instead of
// reallocated. Everything that escapes into the Result — the Trace and the
// process state machines — is freshly allocated per run, so results from
// consecutive runs never alias.
//
// An Engine is not safe for concurrent use; give each goroutine its own.
type Engine struct {
	// Pooled across runs.
	rng        *rand.Rand
	heapQ      heapQueue
	wheelQ     *bucketQueue
	queue      eventQueue // points at heapQ or wheelQ per Config.Queue
	crashAfter []int
	stepCount  []int // computing steps executed per process
	eventCount []int // receive events recorded per process
	wakeTime   []Time
	out        []pendingSend // Env send buffer, recycled between steps

	// Per-run state; reset at the top of Run.
	cfg        Config
	links      *Links // cfg.Topology when it is a *Links, else nil
	trace      *Trace
	procs      []Process
	seq        int64
	monitorErr error
}

// NewEngine returns an empty Engine. Equivalent to new(Engine); it exists
// for discoverability next to Run.
func NewEngine() *Engine { return new(Engine) }

// Run executes the configured simulation to quiescence or a stop condition
// and returns the recorded trace. It returns an error only for invalid
// configurations; algorithm panics propagate. The Engine's pooled storage
// is recycled, but the returned Result shares no state with the Engine or
// with earlier results.
func (e *Engine) Run(cfg Config) (*Result, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sim: N = %d, need at least 1", cfg.N)
	}
	if cfg.Spawn == nil {
		return nil, errors.New("sim: Spawn is required")
	}
	if cfg.Delays == nil {
		return nil, errors.New("sim: Delays is required")
	}
	if cfg.StartTimes != nil && len(cfg.StartTimes) != cfg.N {
		return nil, fmt.Errorf("sim: StartTimes has length %d, want %d", len(cfg.StartTimes), cfg.N)
	}
	var links *Links
	if l, ok := cfg.Topology.(*Links); ok && l != nil {
		if l.N() != cfg.N {
			return nil, fmt.Errorf("sim: topology is over %d processes, config has N = %d", l.N(), cfg.N)
		}
		links = l
	}
	for p, f := range cfg.Faults {
		if p < 0 || int(p) >= cfg.N {
			return nil, fmt.Errorf("sim: fault for invalid process %d", p)
		}
		if f.CrashAfter < NeverCrash {
			return nil, fmt.Errorf("sim: fault for process %d has CrashAfter = %d", p, f.CrashAfter)
		}
		// Scripted sends go through the same wiring rules as Env.Send: a
		// Byzantine process controls its behavior, not the network — it
		// cannot message across links that do not exist (see the adversary
		// model note in fault.go). Self-sends are always legal.
		for _, s := range f.Script {
			if s.To < 0 || int(s.To) >= cfg.N {
				return nil, fmt.Errorf("sim: scripted send from %d to invalid process %d", p, s.To)
			}
			if s.At.Sign() < 0 {
				return nil, fmt.Errorf("sim: scripted send from %d at negative time %v", p, s.At)
			}
			if s.To != p && cfg.Topology != nil && !cfg.Topology.Linked(p, s.To) {
				return nil, fmt.Errorf("sim: scripted send from %d to %d crosses a non-existent link", p, s.To)
			}
		}
	}
	maxEvents := cfg.MaxEvents
	if maxEvents <= 0 {
		maxEvents = defaultMaxEvents
	}

	cfg.Delays = compileDelays(cfg.Delays)
	e.reset(cfg)
	e.links = links
	if links != nil && cap(e.out) < links.MaxOutDegree()+1 {
		// Pre-size the pooled send buffer to the worst-case broadcast
		// fan-out (+1 for the woven-in self-delivery) so steps never grow
		// it incrementally.
		e.out = make([]pendingSend, 0, links.MaxOutDegree()+1)
	}

	for p := ProcessID(0); int(p) < cfg.N; p++ {
		handler := cfg.Spawn(p)
		if f, ok := cfg.Faults[p]; ok {
			e.trace.Faulty[p] = true
			e.crashAfter[p] = f.CrashAfter
			if f.Byzantine != nil {
				handler = f.Byzantine
			}
		}
		if handler == nil {
			return nil, fmt.Errorf("sim: nil handler for process %d", p)
		}
		e.procs[p] = handler
	}

	// Schedule wake-ups first so that, at equal times, the deterministic
	// (time, seq) order delivers each process's wake-up before any peer
	// message (Section 2's assumption on the very first step).
	for p := ProcessID(0); int(p) < cfg.N; p++ {
		at := rat.Zero
		if cfg.StartTimes != nil {
			at = cfg.StartTimes[p]
		}
		e.wakeTime[p] = at
		id := e.addMessage(Message{
			From: External, To: p, SendStep: SendStepExternal,
			SendTime: at, RecvTime: at, Payload: Wakeup{},
		})
		e.queue.push(delivery{at: at, key: deliveryKey(at), seq: e.nextSeq(), msg: id})
	}
	// Scripted Byzantine sends, in process order for determinism (map
	// iteration order is randomized).
	for p := ProcessID(0); int(p) < cfg.N; p++ {
		f, ok := cfg.Faults[p]
		if !ok {
			continue
		}
		for _, s := range f.Script {
			e.sendMessage(p, SendStepScripted, s.At, s.To, s.Payload)
		}
	}

	truncated := e.loop(maxEvents)
	res := &Result{Trace: e.trace, Procs: e.procs, Truncated: truncated, MonitorErr: e.monitorErr}
	// Drop the escaping references so pooled state never aliases a result.
	e.trace, e.procs, e.cfg, e.links, e.monitorErr = nil, nil, Config{}, nil, nil
	return res, nil
}

// reset prepares the pooled storage for a new run: the queue and scratch
// arrays are cleared and resized to cfg.N, the RNG is reseeded (producing
// the same draw sequence as a fresh rand.New(rand.NewSource(seed))), and
// per-run outputs are freshly allocated.
func (e *Engine) reset(cfg Config) {
	e.cfg = cfg
	e.seq = 0
	e.monitorErr = nil
	if cfg.Queue == QueueBucket || (cfg.Queue == QueueAuto && cfg.N >= autoBucketN) {
		if e.wheelQ == nil {
			e.wheelQ = newBucketQueue()
		}
		e.wheelQ.reset()
		e.queue = e.wheelQ
	} else {
		e.heapQ = e.heapQ[:0]
		e.queue = &e.heapQ
	}
	if e.rng == nil {
		e.rng = rand.New(rand.NewSource(cfg.Seed))
	} else {
		e.rng.Seed(cfg.Seed)
	}
	e.crashAfter = resizeInts(e.crashAfter, cfg.N)
	e.stepCount = resizeInts(e.stepCount, cfg.N)
	e.eventCount = resizeInts(e.eventCount, cfg.N)
	e.wakeTime = resizeTimes(e.wakeTime, cfg.N)
	for p := 0; p < cfg.N; p++ {
		e.crashAfter[p] = NeverCrash
	}

	// Escaping per-run state: always fresh.
	e.trace = &Trace{N: cfg.N, Faulty: make([]bool, cfg.N), eventPos: make([][]int32, cfg.N)}
	e.procs = make([]Process, cfg.N)
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeTimes(s []Time, n int) []Time {
	if cap(s) < n {
		return make([]Time, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = rat.Zero
	}
	return s
}

func (e *Engine) nextSeq() int64 {
	e.seq++
	return e.seq
}

func (e *Engine) addMessage(m Message) MsgID {
	m.ID = MsgID(len(e.trace.Msgs))
	e.trace.Msgs = append(e.trace.Msgs, m)
	return m.ID
}

// sendMessage assigns a delay and schedules the delivery. Delivery never
// precedes the recipient's wake-up (receive times are clamped to the wake
// time; the wake-up's earlier queue seq breaks the tie).
func (e *Engine) sendMessage(from ProcessID, sendStep int, sendTime Time, to ProcessID, payload any) {
	m := Message{
		From: from, To: to, SendStep: sendStep,
		SendTime: sendTime, Payload: payload,
	}
	m.ID = MsgID(len(e.trace.Msgs))
	d := e.cfg.Delays.Delay(m, e.rng)
	if d.Sign() < 0 {
		panic(fmt.Sprintf("sim: delay policy returned negative delay %v", d))
	}
	recv := sendTime.Add(d)
	if recv.Less(e.wakeTime[to]) {
		recv = e.wakeTime[to]
	}
	m.RecvTime = recv
	e.trace.Msgs = append(e.trace.Msgs, m)
	e.queue.push(delivery{at: recv, key: deliveryKey(recv), seq: e.nextSeq(), msg: m.ID})
}

func (e *Engine) loop(maxEvents int) (truncated bool) {
	for e.queue.len() > 0 {
		if len(e.trace.Events) >= maxEvents {
			return true
		}
		d := e.queue.pop()
		m := e.trace.Msgs[d.msg]
		if e.cfg.MaxTime.Sign() > 0 && m.RecvTime.Greater(e.cfg.MaxTime) {
			return true
		}
		p := m.To

		crashed := e.crashAfter[p] != NeverCrash && e.stepCount[p] >= e.crashAfter[p]
		ev := Event{
			Proc:    p,
			Index:   e.eventCount[p],
			Time:    m.RecvTime,
			Trigger: m.ID,
		}
		e.eventCount[p]++

		if !crashed {
			env := Env{
				self:      p,
				n:         e.cfg.N,
				stepIndex: e.stepCount[p],
				topo:      e.cfg.Topology,
				links:     e.links,
				out:       e.out[:0],
			}
			e.procs[p].Step(&env, m)
			e.stepCount[p]++
			ev.Processed = true
			ev.Note = env.note
			for _, out := range env.out {
				e.sendMessage(p, ev.Index, m.RecvTime, out.to, out.payload)
			}
			// Keep the (possibly grown) send buffer, cleared of payload
			// references so pooled storage does not pin process data.
			e.out = env.out[:0]
			clearSends(env.out)
		}
		pos := len(e.trace.Events)
		e.trace.Events = append(e.trace.Events, ev)
		// ev.Index == len(eventPos[p]) by construction, so this appends the
		// dense per-process index row.
		e.trace.eventPos[p] = append(e.trace.eventPos[p], int32(pos))

		if e.cfg.Monitor != nil {
			if err := e.cfg.Monitor(e.trace); err != nil {
				e.monitorErr = err
				return false
			}
		}
		if ev.Processed && e.cfg.Until != nil && e.cfg.Until(e.procs) {
			return false
		}
	}
	return false
}

func clearSends(s []pendingSend) {
	for i := range s {
		s[i] = pendingSend{}
	}
}
