package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/rat"
)

// Engine is a reusable simulation executor. A zero-value Engine is ready to
// use; Run may be called any number of times, and each call produces a
// result bit-identical to a fresh sim.Run of the same Config (the
// hermeticity property pinned by TestEngineReuseHermetic).
//
// The point of an Engine over the one-shot Run is fan-out cost: the fleet
// runner (internal/runner) executes thousands of short simulations per
// worker, and the delivery queue, per-process scratch arrays, RNG, the
// step environment (and its send buffer), the per-process event-index
// rows, and — under bounded retention — the in-flight message store are
// all reused across runs instead of reallocated. Everything that escapes
// into the Result — the Trace and the process state machines — is freshly
// allocated per run, so results from consecutive runs never alias:
// full-retention event/message storage is freshly sized to the engine's
// high-water marks, and the pooled index rows are compacted into a fresh
// flat copy before the Result is returned.
//
// An Engine is not safe for concurrent use; give each goroutine its own.
type Engine struct {
	// Pooled across runs.
	rng           *rand.Rand
	heapQ         heapQueue
	wheelQ        *bucketQueue
	queue         eventQueue // points at heapQ or wheelQ per Config.Queue
	crashAfter    []int
	stepCount     []int // computing steps executed per process
	eventCount    []int // receive events recorded per process
	wakeTime      []Time
	down          [][]Interval  // per-process down schedule (aliases Fault.Down)
	hold          []bool        // InflightHold: defer deliveries past down intervals
	amnesia       []bool        // RecoverAmnesia: respawn on each recovery wake-up
	out           []pendingSend // Env send buffer, recycled between steps
	env           Env           // the one step environment, reused every step
	posRows       [][]int32     // pooled eventPos rows; compacted out per run
	lastEvents    int           // high-water marks sizing the next full-retention run
	lastMsgs      int
	pend          []Message       // bounded retention: in-flight message store
	pendDone      []bool          // pend[i] delivered (eligible for compaction)
	pendBase      MsgID           // ID of pend[0]
	pendStart     int             // first undelivered index in pend
	shardPool     []shardState    // sharded mode: per-shard queues and buffers
	mergeLabels   context.Context // pooled pprof label sets (shard.go)
	barrierLabels context.Context

	// Per-run state; reset at the top of Run.
	cfg        Config
	links      *Links // cfg.Topology when it is a *Links, else nil
	ret        Retention
	cb         Sink // cfg.Sink when it observes (custom sink), else nil
	trace      *Trace
	procs      []Process
	seq        int64
	nextMsg    MsgID
	monitorErr error
	net        *NetFaults // cfg.Net; nil draws nothing from the RNG
	partSides  [][]int8   // per-partition side vectors, built at Run setup

	// Sharded-mode per-run state (shard.go). shards is nil on the serial
	// path; when non-nil it aliases shardPool and enqueue routes
	// deliveries to the owning shard.
	shards      []shardState
	lookahead   Time    // positive minimum delay bound of the delay policy
	winH        Time    // current window's safe horizon
	winHKey     float64 // deliveryKey(winH)
	routeDirect bool    // serial tail: route into shard queues, not inboxes
}

// NewEngine returns an empty Engine. Equivalent to new(Engine); it exists
// for discoverability next to Run.
func NewEngine() *Engine { return new(Engine) }

// Run executes the configured simulation to quiescence or a stop condition
// and returns the recorded trace. It returns an error only for invalid
// configurations; algorithm panics propagate. The Engine's pooled storage
// is recycled, but the returned Result shares no state with the Engine or
// with earlier results.
func (e *Engine) Run(cfg Config) (*Result, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sim: N = %d, need at least 1", cfg.N)
	}
	if cfg.Spawn == nil {
		return nil, errors.New("sim: Spawn is required")
	}
	if cfg.Delays == nil {
		return nil, errors.New("sim: Delays is required")
	}
	if cfg.StartTimes != nil && len(cfg.StartTimes) != cfg.N {
		return nil, fmt.Errorf("sim: StartTimes has length %d, want %d", len(cfg.StartTimes), cfg.N)
	}
	ret := Retention{Mode: RetainFullMode}
	if cfg.Sink != nil {
		ret = cfg.Sink.Retention()
		switch ret.Mode {
		case RetainFullMode:
		case RetainWindowMode:
			if ret.Window < 1 {
				return nil, fmt.Errorf("sim: window retention needs Window >= 1, got %d", ret.Window)
			}
		case RetainNoneMode:
			if cfg.Monitor != nil {
				return nil, errors.New("sim: Monitor requires retained events (full or window retention, not none)")
			}
		default:
			return nil, fmt.Errorf("sim: unknown retention mode %v", ret.Mode)
		}
	}
	var links *Links
	if l, ok := cfg.Topology.(*Links); ok && l != nil {
		if l.N() != cfg.N {
			return nil, fmt.Errorf("sim: topology is over %d processes, config has N = %d", l.N(), cfg.N)
		}
		links = l
	}
	for p, f := range cfg.Faults {
		if p < 0 || int(p) >= cfg.N {
			return nil, fmt.Errorf("sim: fault for invalid process %d", p)
		}
		if f.CrashAfter < NeverCrash {
			return nil, fmt.Errorf("sim: fault for process %d has CrashAfter = %d", p, f.CrashAfter)
		}
		// Down schedules are validated like scripted sends: a malformed
		// schedule is a configuration error, never silent misbehavior.
		if len(f.Down) > 0 && f.CrashAfter >= 0 {
			return nil, fmt.Errorf("sim: fault for process %d sets both CrashAfter and a Down schedule", p)
		}
		if f.Recovery != RecoverDurable && f.Recovery != RecoverAmnesia {
			return nil, fmt.Errorf("sim: fault for process %d has unknown recovery policy %d", p, f.Recovery)
		}
		if f.Inflight != InflightDrop && f.Inflight != InflightHold {
			return nil, fmt.Errorf("sim: fault for process %d has unknown in-flight policy %d", p, f.Inflight)
		}
		if f.Recovery == RecoverAmnesia && f.Byzantine != nil {
			return nil, fmt.Errorf("sim: fault for process %d: amnesia recovery of a Byzantine process (Spawn cannot restore its handler)", p)
		}
		for i, iv := range f.Down {
			if iv.From.Sign() < 0 {
				return nil, fmt.Errorf("sim: down interval %d of process %d starts at negative time %v", i, p, iv.From)
			}
			if !iv.From.Less(iv.Until) {
				return nil, fmt.Errorf("sim: down interval %d of process %d is empty: [%v, %v)", i, p, iv.From, iv.Until)
			}
			if i > 0 && iv.From.Less(f.Down[i-1].Until) {
				return nil, fmt.Errorf("sim: down intervals %d and %d of process %d overlap or are unsorted", i-1, i, p)
			}
		}
		// Scripted sends go through the same wiring rules as Env.Send: a
		// Byzantine process controls its behavior, not the network — it
		// cannot message across links that do not exist (see the adversary
		// model note in fault.go). Self-sends are always legal.
		for _, s := range f.Script {
			if s.To < 0 || int(s.To) >= cfg.N {
				return nil, fmt.Errorf("sim: scripted send from %d to invalid process %d", p, s.To)
			}
			if s.At.Sign() < 0 {
				return nil, fmt.Errorf("sim: scripted send from %d at negative time %v", p, s.At)
			}
			if s.To != p && cfg.Topology != nil && !cfg.Topology.Linked(p, s.To) {
				return nil, fmt.Errorf("sim: scripted send from %d to %d crosses a non-existent link", p, s.To)
			}
		}
	}
	// The message-level fault layer is validated up front, like scripted
	// sends: probabilities in range, spike penalties non-negative, and
	// every partition a real cut of the configured topology within the run
	// horizon.
	var partSides [][]int8
	if nf := cfg.Net; nf != nil {
		if nf.Drop < 0 || nf.Drop > 1 {
			return nil, fmt.Errorf("sim: drop probability %v outside [0, 1]", nf.Drop)
		}
		if nf.Dup < 0 || nf.Dup > 1 {
			return nil, fmt.Errorf("sim: duplicate probability %v outside [0, 1]", nf.Dup)
		}
		if nf.Spike.Prob < 0 || nf.Spike.Prob > 1 {
			return nil, fmt.Errorf("sim: spike probability %v outside [0, 1]", nf.Spike.Prob)
		}
		if nf.Spike.Prob > 0 && nf.Spike.Extra.Sign() < 0 {
			return nil, fmt.Errorf("sim: spike adds negative delay %v", nf.Spike.Extra)
		}
		partSides = make([][]int8, len(nf.Partitions))
		for i, pt := range nf.Partitions {
			if pt.From.Sign() < 0 {
				return nil, fmt.Errorf("sim: partition %d starts at negative time %v", i, pt.From)
			}
			if !pt.From.Less(pt.Until) {
				return nil, fmt.Errorf("sim: partition %d interval is empty: [%v, %v)", i, pt.From, pt.Until)
			}
			if cfg.MaxTime.Sign() > 0 && pt.Until.Greater(cfg.MaxTime) {
				return nil, fmt.Errorf("sim: partition %d ends at %v, beyond the run horizon %v", i, pt.Until, cfg.MaxTime)
			}
			sides, err := partitionSides(pt, cfg.N)
			if err != nil {
				return nil, fmt.Errorf("%s (partition %d)", err, i)
			}
			if !partitionCutsLink(sides, cfg.Topology, links, cfg.N) {
				return nil, fmt.Errorf("sim: partition %d cuts no link of the topology", i)
			}
			partSides[i] = sides
		}
	}
	maxEvents := cfg.MaxEvents
	if maxEvents <= 0 {
		maxEvents = defaultMaxEvents
	}

	cfg.Delays = compileDelays(cfg.Delays)
	e.ret = ret
	e.reset(cfg)
	e.links = links
	e.net = cfg.Net
	e.partSides = partSides
	if links != nil && cap(e.out) < links.MaxOutDegree()+1 {
		// Pre-size the pooled send buffer to the worst-case broadcast
		// fan-out (+1 for the woven-in self-delivery) so steps never grow
		// it incrementally.
		e.out = make([]pendingSend, 0, links.MaxOutDegree()+1)
	}
	// Decide the execution mode before any delivery is scheduled: from
	// here on, enqueue routes through the shard layer when the run is
	// sharded (setup pushes land in shard inboxes).
	e.setupShards(cfg, links)

	for p := ProcessID(0); int(p) < cfg.N; p++ {
		handler := cfg.Spawn(p)
		if f, ok := cfg.Faults[p]; ok {
			e.trace.Faulty[p] = true
			e.crashAfter[p] = f.CrashAfter
			e.down[p] = f.Down
			e.hold[p] = len(f.Down) > 0 && f.Inflight == InflightHold
			e.amnesia[p] = len(f.Down) > 0 && f.Recovery == RecoverAmnesia
			if f.Byzantine != nil {
				handler = f.Byzantine
			}
		}
		if handler == nil {
			return nil, fmt.Errorf("sim: nil handler for process %d", p)
		}
		e.procs[p] = handler
	}

	// Schedule wake-ups first so that, at equal times, the deterministic
	// (time, seq) order delivers each process's wake-up before any peer
	// message (Section 2's assumption on the very first step). A wake-up
	// time covered by a down interval is deferred to that interval's end —
	// a process's wake-up is never lost, so every recoverable process
	// eventually initializes (and amnesia machines are never respawned
	// before their first spawn took a step).
	for p := ProcessID(0); int(p) < cfg.N; p++ {
		at := rat.Zero
		if cfg.StartTimes != nil {
			at = cfg.StartTimes[p]
		}
		for _, iv := range e.down[p] {
			// Forward scan: adjacent intervals cascade the deferral.
			if iv.Contains(at) {
				at = iv.Until
			}
		}
		e.wakeTime[p] = at
		id := e.recordMessage(Message{
			From: External, To: p, SendStep: SendStepExternal,
			SendTime: at, RecvTime: at, Payload: Wakeup{},
		})
		e.enqueue(delivery{at: at, key: deliveryKey(at), seq: e.nextSeq(), msg: id}, p)
	}
	// Recovery wake-ups for amnesia processes: one external wake-up at the
	// end of each down interval, so the respawned machine re-executes its
	// initialization. Scheduled at setup, their queue seq precedes every
	// runtime send at the same time — the respawn happens before any held
	// delivery at the recovery instant is processed.
	for p := ProcessID(0); int(p) < cfg.N; p++ {
		if !e.amnesia[p] {
			continue
		}
		for _, iv := range e.down[p] {
			if !iv.Until.Greater(e.wakeTime[p]) {
				continue // the initial wake-up already covers this recovery
			}
			id := e.recordMessage(Message{
				From: External, To: p, SendStep: SendStepExternal,
				SendTime: iv.Until, RecvTime: iv.Until, Payload: Wakeup{},
			})
			e.enqueue(delivery{at: iv.Until, key: deliveryKey(iv.Until), seq: e.nextSeq(), msg: id}, p)
		}
	}
	// Scripted Byzantine sends, in process order for determinism (map
	// iteration order is randomized).
	for p := ProcessID(0); int(p) < cfg.N; p++ {
		f, ok := cfg.Faults[p]
		if !ok {
			continue
		}
		for _, s := range f.Script {
			e.sendMessage(p, SendStepScripted, s.At, s.To, s.Payload)
		}
	}

	var truncated bool
	shardsUsed := 1
	if e.shards != nil {
		shardsUsed = len(e.shards)
		truncated = e.loopSharded(maxEvents)
	} else {
		truncated = e.loop(maxEvents)
	}
	e.finishTrace()
	res := &Result{Trace: e.trace, Procs: e.procs, Truncated: truncated, MonitorErr: e.monitorErr, Shards: shardsUsed}
	// Drop the escaping references so pooled state never aliases a result.
	e.trace, e.procs, e.cfg, e.links, e.cb, e.monitorErr = nil, nil, Config{}, nil, nil, nil
	e.net, e.partSides = nil, nil
	e.teardownShards()
	for p := range e.down {
		e.down[p] = nil // Fault.Down slices are config-owned; do not pin them
	}
	e.env = Env{}
	return res, nil
}

// reset prepares the pooled storage for a new run: the queue and scratch
// arrays are cleared and resized to cfg.N, the RNG is reseeded (producing
// the same draw sequence as a fresh rand.New(rand.NewSource(seed))), and
// per-run outputs are freshly allocated. e.ret must be set before reset.
func (e *Engine) reset(cfg Config) {
	e.cfg = cfg
	e.seq = 0
	e.nextMsg = 0
	e.monitorErr = nil
	e.cb = nil
	if cfg.Sink != nil {
		if _, builtin := cfg.Sink.(retentionSink); !builtin {
			e.cb = cfg.Sink
		}
	}
	if cfg.Queue == QueueBucket || (cfg.Queue == QueueAuto && cfg.N >= autoBucketN) {
		if e.wheelQ == nil {
			e.wheelQ = newBucketQueue()
		}
		e.wheelQ.reset(cfg.N)
		e.queue = e.wheelQ
	} else {
		e.heapQ = e.heapQ[:0]
		e.queue = &e.heapQ
	}
	if e.rng == nil {
		e.rng = rand.New(rand.NewSource(cfg.Seed))
	} else {
		e.rng.Seed(cfg.Seed)
	}
	e.crashAfter = resizeInts(e.crashAfter, cfg.N)
	e.stepCount = resizeInts(e.stepCount, cfg.N)
	e.eventCount = resizeInts(e.eventCount, cfg.N)
	e.wakeTime = resizeTimes(e.wakeTime, cfg.N)
	e.down = resizeDowns(e.down, cfg.N)
	e.hold = resizeBools(e.hold, cfg.N)
	e.amnesia = resizeBools(e.amnesia, cfg.N)
	for p := 0; p < cfg.N; p++ {
		e.crashAfter[p] = NeverCrash
	}
	e.pendBase = 0
	e.pendStart = 0

	// Escaping per-run state: always fresh. Full retention pre-sizes the
	// event and message stores to the engine's high-water marks so steady
	// fleet traffic allocates each exactly once instead of growing them
	// (append's growth factor costs ~5x the final size in cumulative
	// allocation); window retention sizes to the window; none retains
	// nothing.
	e.trace = &Trace{N: cfg.N, Faulty: make([]bool, cfg.N), mode: e.ret.Mode}
	e.procs = make([]Process, cfg.N)
	switch e.ret.Mode {
	case RetainFullMode:
		e.trace.Events = make([]Event, 0, e.lastEvents)
		e.trace.Msgs = make([]Message, 0, e.lastMsgs)
		if cap(e.posRows) < cfg.N {
			e.posRows = make([][]int32, cfg.N)
		}
		e.posRows = e.posRows[:cfg.N]
		for p := range e.posRows {
			e.posRows[p] = e.posRows[p][:0]
		}
		// Live view during the run (monitors may call EventAt); replaced
		// by a compacted fresh copy before the Result escapes.
		e.trace.eventPos = e.posRows
	case RetainWindowMode:
		e.trace.Events = make([]Event, 0, 2*e.ret.Window)
		e.trace.Msgs = make([]Message, 0, 2*e.ret.Window)
		e.trace.digest.init()
	case RetainNoneMode:
		e.trace.digest.init()
	}
}

// finishTrace seals the per-run trace before it escapes: full retention
// compacts the pooled index rows into one fresh flat array (two
// allocations) and refreshes the high-water marks; bounded retention
// clears the pooled in-flight store so it pins no payloads between runs.
func (e *Engine) finishTrace() {
	switch e.ret.Mode {
	case RetainFullMode:
		t := e.trace
		flat := make([]int32, len(t.Events))
		spine := make([][]int32, t.N)
		off := 0
		for p := range spine {
			n := copy(flat[off:], e.posRows[p])
			spine[p] = flat[off : off+n : off+n]
			off += n
		}
		t.eventPos = spine
		if len(t.Events) > e.lastEvents {
			e.lastEvents = len(t.Events)
		}
		if len(t.Msgs) > e.lastMsgs {
			e.lastMsgs = len(t.Msgs)
		}
	default:
		clear(e.pend)
		e.pend = e.pend[:0]
		e.pendDone = e.pendDone[:0]
	}
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeTimes(s []Time, n int) []Time {
	if cap(s) < n {
		return make([]Time, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = rat.Zero
	}
	return s
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

func resizeDowns(s [][]Interval, n int) [][]Interval {
	if cap(s) < n {
		return make([][]Interval, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

func (e *Engine) nextSeq() int64 {
	e.seq++
	return e.seq
}

// recordMessage finalizes one message (its receive time already
// assigned), stores it per the retention mode, and returns its ID. Under
// bounded retention the message lives in the pooled in-flight store until
// delivered, and the stream digest folds it immediately — in ID order,
// matching the on-demand digest of a complete trace.
func (e *Engine) recordMessage(m Message) MsgID {
	m.ID = e.nextMsg
	e.nextMsg++
	switch e.ret.Mode {
	case RetainFullMode:
		e.trace.Msgs = append(e.trace.Msgs, m)
	default:
		e.trace.totalMsgs++
		e.trace.digest.foldMessage(&m)
		// Dropped messages are never delivered, so they enter the pooled
		// in-flight store already done — eligible for compaction, but
		// preserving the dense pendBase+i == ID indexing.
		e.pend = append(e.pend, m)
		e.pendDone = append(e.pendDone, m.Dropped)
	}
	if e.cb != nil {
		// Copy for the interface call: handing &m itself to an opaque
		// callee would make every message heap-escape even with no sink.
		cm := m
		e.cb.Message(&cm)
	}
	return m.ID
}

// sendMessage runs the network pipeline for one send: the message-level
// fault layer first (partitions and the drop rule lose the message; the
// dup rule delivers it twice), then deliver assigns the delay and
// schedules the delivery. All fault draws come from the run's single RNG
// in the deterministic send order, and a nil Config.Net draws nothing —
// legacy runs are byte-identical. Self-sends bypass the network layer
// entirely (local delivery is not the network's to lose), and wake-ups
// never pass through sendMessage at all.
func (e *Engine) sendMessage(from ProcessID, sendStep int, sendTime Time, to ProcessID, payload any) {
	m := Message{
		From: from, To: to, SendStep: sendStep,
		SendTime: sendTime, Payload: payload,
	}
	if e.net != nil && from != to {
		for i := range e.net.Partitions {
			pt := &e.net.Partitions[i]
			sides := e.partSides[i]
			if sides[from] != 0 && sides[to] != 0 && sides[from] != sides[to] &&
				!sendTime.Less(pt.From) && sendTime.Less(pt.Until) {
				e.dropMessage(m)
				return
			}
		}
		if e.net.Drop > 0 && e.rng.Float64() < e.net.Drop {
			e.dropMessage(m)
			return
		}
		e.deliver(m)
		// The duplicate draws its own delay and spike; it is itself never
		// dropped or re-duplicated.
		if e.net.Dup > 0 && e.rng.Float64() < e.net.Dup {
			e.deliver(m)
		}
		return
	}
	e.deliver(m)
}

// dropMessage records a message the network lost: RecvTime == SendTime,
// Dropped set, never enqueued — so no receive event ever has it as a
// trigger and the causality graph never sees it, while the trace (and
// both digests) still commit to the loss.
func (e *Engine) dropMessage(m Message) {
	m.RecvTime = m.SendTime
	m.Dropped = true
	e.recordMessage(m)
}

// deliver assigns a delay and schedules the delivery. Delivery never
// precedes the recipient's wake-up (receive times are clamped to the wake
// time; the wake-up's earlier queue seq breaks the tie), and under
// InflightHold a delivery falling in a down interval of the recipient is
// deferred to that interval's end.
func (e *Engine) deliver(m Message) {
	d := e.cfg.Delays.Delay(m, e.rng)
	if d.Sign() < 0 {
		panic(fmt.Sprintf("sim: delay policy returned negative delay %v", d))
	}
	recv := m.SendTime.Add(d)
	if e.net != nil && m.From != m.To && e.net.Spike.Prob > 0 && e.rng.Float64() < e.net.Spike.Prob {
		recv = recv.Add(e.net.Spike.Extra)
	}
	if recv.Less(e.wakeTime[m.To]) {
		recv = e.wakeTime[m.To]
	}
	if e.hold[m.To] {
		for _, iv := range e.down[m.To] {
			// Forward scan over the sorted schedule: adjacent intervals
			// cascade the deferral.
			if iv.Contains(recv) {
				recv = iv.Until
			}
		}
	}
	m.RecvTime = recv
	id := e.recordMessage(m)
	e.enqueue(delivery{at: recv, key: deliveryKey(recv), seq: e.nextSeq(), msg: id}, m.To)
}

// partitionCutsLink reports whether a partition's side vector severs at
// least one link of the topology. For predicate topologies the pair scan
// is only affordable at small N; larger systems skip the check (the
// partition is accepted as specified).
func partitionCutsLink(sides []int8, topo Topology, links *Links, n int) bool {
	if topo == nil {
		// Full mesh: two non-empty sides always cut links.
		return true
	}
	if links != nil {
		for p := 0; p < n; p++ {
			if sides[p] == 0 {
				continue
			}
			for _, q := range links.Out(ProcessID(p)) {
				if sides[q] != 0 && sides[q] != sides[p] {
					return true
				}
			}
		}
		return false
	}
	if n > 1024 {
		return true
	}
	for p := 0; p < n; p++ {
		if sides[p] == 0 {
			continue
		}
		for q := 0; q < n; q++ {
			if q == p || sides[q] == 0 || sides[q] == sides[p] {
				continue
			}
			if topo.Linked(ProcessID(p), ProcessID(q)) {
				return true
			}
		}
	}
	return false
}

// takeDelivery resolves a popped delivery to its message. Under bounded
// retention the message is fetched from the in-flight store, marked
// delivered, and the store's delivered prefix is compacted away
// (amortized O(1)) so memory tracks the in-flight population, not the
// run length.
func (e *Engine) takeDelivery(d delivery) Message {
	if e.ret.Mode == RetainFullMode {
		return e.trace.Msgs[d.msg]
	}
	i := int(d.msg - e.pendBase)
	m := e.pend[i]
	e.markDelivered(i)
	return m
}

// markDelivered marks in-flight slot i delivered and compacts the
// delivered prefix of the pooled store (amortized O(1)). Bounded
// retention only; the sharded merge calls it directly because drained
// messages were already copied out during the parallel phase.
func (e *Engine) markDelivered(i int) {
	e.pendDone[i] = true
	s := e.pendStart
	for s < len(e.pend) && e.pendDone[s] {
		s++
	}
	e.pendStart = s
	if s > 1024 && s > len(e.pend)/2 {
		old := e.pend
		n := copy(old, old[s:])
		clear(old[n:]) // drop payload refs from the vacated suffix
		e.pend = old[:n]
		copy(e.pendDone, e.pendDone[s:])
		e.pendDone = e.pendDone[:n]
		e.pendBase += MsgID(s)
		e.pendStart = 0
	}
}

// recordEvent appends one finalized receive event per the retention mode.
// m is the event's trigger message (already resolved by takeDelivery).
func (e *Engine) recordEvent(ev Event, m Message) {
	t := e.trace
	switch e.ret.Mode {
	case RetainFullMode:
		pos := len(t.Events)
		t.Events = append(t.Events, ev)
		// ev.Index == len(posRows[p]) by construction, so this appends the
		// dense per-process index row.
		e.posRows[ev.Proc] = append(e.posRows[ev.Proc], int32(pos))
	case RetainWindowMode:
		t.totalEvents++
		t.digest.foldEvent(&ev)
		t.Events = append(t.Events, ev)
		t.Msgs = append(t.Msgs, m) // parallel trigger store
		if k := e.ret.Window; len(t.Events) >= 2*k {
			// Slide: keep the most recent k, amortized O(1) per event.
			drop := len(t.Events) - k
			n := copy(t.Events, t.Events[drop:])
			clear(t.Events[n:])
			t.Events = t.Events[:n]
			n = copy(t.Msgs, t.Msgs[drop:])
			clear(t.Msgs[n:])
			t.Msgs = t.Msgs[:n]
			t.firstEvent += drop
		}
	case RetainNoneMode:
		t.totalEvents++
		t.digest.foldEvent(&ev)
	}
	if e.cb != nil {
		// Copy for the interface call, as in recordMessage.
		cev := ev
		e.cb.Event(&cev)
	}
}

func (e *Engine) loop(maxEvents int) (truncated bool) {
	for e.queue.len() > 0 {
		if e.trace.TotalEvents() >= maxEvents {
			return true
		}
		d := e.queue.pop()
		m := e.takeDelivery(d)
		if e.cfg.MaxTime.Sign() > 0 && m.RecvTime.Greater(e.cfg.MaxTime) {
			return true
		}
		if e.stepEvent(m) {
			return false
		}
	}
	return false
}

// stepEvent executes one delivered message: crash/down gating, the
// process step, the send fan-out, recording, and the Monitor/Until stop
// conditions. It returns true when the run should stop (quiescence-like
// stops, not truncation). Shared by the serial loop and the sharded
// engine's serial tail (drainSerialTail), which must match it event for
// event.
func (e *Engine) stepEvent(m Message) (stop bool) {
	p := m.To

	// A process is not taking steps while permanently crashed or inside
	// a down interval; the reception still occurs (Processed == false) —
	// the network controls reception, the receiver controls processing.
	crashed := e.crashAfter[p] != NeverCrash && e.stepCount[p] >= e.crashAfter[p]
	if !crashed && len(e.down[p]) > 0 {
		crashed = downAt(e.down[p], m.RecvTime)
	}
	if !crashed && e.amnesia[p] && m.IsWakeup() && e.eventCount[p] > 0 {
		// Recovery wake-up of an amnesia process: respawn from scratch
		// and reset the step counter so the fresh machine sees step
		// indices from zero. Event indices stay monotone — SendStep
		// records event indices, so causality is unaffected.
		e.procs[p] = e.cfg.Spawn(p)
		e.stepCount[p] = 0
	}
	ev := Event{
		Proc:    p,
		Index:   e.eventCount[p],
		Time:    m.RecvTime,
		Trigger: m.ID,
	}
	e.eventCount[p]++

	if !crashed {
		// The step environment is pooled: one Env lives in the Engine
		// and is re-initialized per step, so the interface call's
		// escape of &e.env costs nothing on the hot path.
		e.env = Env{
			self:      p,
			n:         e.cfg.N,
			stepIndex: e.stepCount[p],
			topo:      e.cfg.Topology,
			links:     e.links,
			out:       e.out[:0],
		}
		e.procs[p].Step(&e.env, m)
		e.stepCount[p]++
		ev.Processed = true
		ev.Note = e.env.note
		for _, out := range e.env.out {
			e.sendMessage(p, ev.Index, m.RecvTime, out.to, out.payload)
		}
		// Keep the (possibly grown) send buffer, cleared of payload
		// references so pooled storage does not pin process data.
		e.out = e.env.out[:0]
		clearSends(e.env.out)
	}
	e.recordEvent(ev, m)

	if e.cfg.Monitor != nil {
		if err := e.cfg.Monitor(e.trace); err != nil {
			e.monitorErr = err
			return true
		}
	}
	return ev.Processed && e.cfg.Until != nil && e.cfg.Until(e.procs)
}

// downAt reports whether t falls inside one of the sorted intervals.
// Schedules are tiny (a handful of intervals), so a linear scan wins.
func downAt(down []Interval, t Time) bool {
	for _, iv := range down {
		if t.Less(iv.From) {
			return false
		}
		if t.Less(iv.Until) {
			return true
		}
	}
	return false
}

func clearSends(s []pendingSend) {
	for i := range s {
		s[i] = pendingSend{}
	}
}
