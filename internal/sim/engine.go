package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/rat"
)

// Engine is a reusable simulation executor. A zero-value Engine is ready to
// use; Run may be called any number of times, and each call produces a
// result bit-identical to a fresh sim.Run of the same Config (the
// hermeticity property pinned by TestEngineReuseHermetic).
//
// The point of an Engine over the one-shot Run is fan-out cost: the fleet
// runner (internal/runner) executes thousands of short simulations per
// worker, and the delivery queue, per-process scratch arrays, RNG, the
// step environment (and its send buffer), the per-process event-index
// rows, and — under bounded retention — the in-flight message store are
// all reused across runs instead of reallocated. Everything that escapes
// into the Result — the Trace and the process state machines — is freshly
// allocated per run, so results from consecutive runs never alias:
// full-retention event/message storage is freshly sized to the engine's
// high-water marks, and the pooled index rows are compacted into a fresh
// flat copy before the Result is returned.
//
// An Engine is not safe for concurrent use; give each goroutine its own.
type Engine struct {
	// Pooled across runs.
	rng        *rand.Rand
	heapQ      heapQueue
	wheelQ     *bucketQueue
	queue      eventQueue // points at heapQ or wheelQ per Config.Queue
	crashAfter []int
	stepCount  []int // computing steps executed per process
	eventCount []int // receive events recorded per process
	wakeTime   []Time
	out        []pendingSend // Env send buffer, recycled between steps
	env        Env           // the one step environment, reused every step
	posRows    [][]int32     // pooled eventPos rows; compacted out per run
	lastEvents int           // high-water marks sizing the next full-retention run
	lastMsgs   int
	pend       []Message // bounded retention: in-flight message store
	pendDone   []bool    // pend[i] delivered (eligible for compaction)
	pendBase   MsgID     // ID of pend[0]
	pendStart  int       // first undelivered index in pend

	// Per-run state; reset at the top of Run.
	cfg        Config
	links      *Links // cfg.Topology when it is a *Links, else nil
	ret        Retention
	cb         Sink // cfg.Sink when it observes (custom sink), else nil
	trace      *Trace
	procs      []Process
	seq        int64
	nextMsg    MsgID
	monitorErr error
}

// NewEngine returns an empty Engine. Equivalent to new(Engine); it exists
// for discoverability next to Run.
func NewEngine() *Engine { return new(Engine) }

// Run executes the configured simulation to quiescence or a stop condition
// and returns the recorded trace. It returns an error only for invalid
// configurations; algorithm panics propagate. The Engine's pooled storage
// is recycled, but the returned Result shares no state with the Engine or
// with earlier results.
func (e *Engine) Run(cfg Config) (*Result, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sim: N = %d, need at least 1", cfg.N)
	}
	if cfg.Spawn == nil {
		return nil, errors.New("sim: Spawn is required")
	}
	if cfg.Delays == nil {
		return nil, errors.New("sim: Delays is required")
	}
	if cfg.StartTimes != nil && len(cfg.StartTimes) != cfg.N {
		return nil, fmt.Errorf("sim: StartTimes has length %d, want %d", len(cfg.StartTimes), cfg.N)
	}
	ret := Retention{Mode: RetainFullMode}
	if cfg.Sink != nil {
		ret = cfg.Sink.Retention()
		switch ret.Mode {
		case RetainFullMode:
		case RetainWindowMode:
			if ret.Window < 1 {
				return nil, fmt.Errorf("sim: window retention needs Window >= 1, got %d", ret.Window)
			}
		case RetainNoneMode:
			if cfg.Monitor != nil {
				return nil, errors.New("sim: Monitor requires retained events (full or window retention, not none)")
			}
		default:
			return nil, fmt.Errorf("sim: unknown retention mode %v", ret.Mode)
		}
	}
	var links *Links
	if l, ok := cfg.Topology.(*Links); ok && l != nil {
		if l.N() != cfg.N {
			return nil, fmt.Errorf("sim: topology is over %d processes, config has N = %d", l.N(), cfg.N)
		}
		links = l
	}
	for p, f := range cfg.Faults {
		if p < 0 || int(p) >= cfg.N {
			return nil, fmt.Errorf("sim: fault for invalid process %d", p)
		}
		if f.CrashAfter < NeverCrash {
			return nil, fmt.Errorf("sim: fault for process %d has CrashAfter = %d", p, f.CrashAfter)
		}
		// Scripted sends go through the same wiring rules as Env.Send: a
		// Byzantine process controls its behavior, not the network — it
		// cannot message across links that do not exist (see the adversary
		// model note in fault.go). Self-sends are always legal.
		for _, s := range f.Script {
			if s.To < 0 || int(s.To) >= cfg.N {
				return nil, fmt.Errorf("sim: scripted send from %d to invalid process %d", p, s.To)
			}
			if s.At.Sign() < 0 {
				return nil, fmt.Errorf("sim: scripted send from %d at negative time %v", p, s.At)
			}
			if s.To != p && cfg.Topology != nil && !cfg.Topology.Linked(p, s.To) {
				return nil, fmt.Errorf("sim: scripted send from %d to %d crosses a non-existent link", p, s.To)
			}
		}
	}
	maxEvents := cfg.MaxEvents
	if maxEvents <= 0 {
		maxEvents = defaultMaxEvents
	}

	cfg.Delays = compileDelays(cfg.Delays)
	e.ret = ret
	e.reset(cfg)
	e.links = links
	if links != nil && cap(e.out) < links.MaxOutDegree()+1 {
		// Pre-size the pooled send buffer to the worst-case broadcast
		// fan-out (+1 for the woven-in self-delivery) so steps never grow
		// it incrementally.
		e.out = make([]pendingSend, 0, links.MaxOutDegree()+1)
	}

	for p := ProcessID(0); int(p) < cfg.N; p++ {
		handler := cfg.Spawn(p)
		if f, ok := cfg.Faults[p]; ok {
			e.trace.Faulty[p] = true
			e.crashAfter[p] = f.CrashAfter
			if f.Byzantine != nil {
				handler = f.Byzantine
			}
		}
		if handler == nil {
			return nil, fmt.Errorf("sim: nil handler for process %d", p)
		}
		e.procs[p] = handler
	}

	// Schedule wake-ups first so that, at equal times, the deterministic
	// (time, seq) order delivers each process's wake-up before any peer
	// message (Section 2's assumption on the very first step).
	for p := ProcessID(0); int(p) < cfg.N; p++ {
		at := rat.Zero
		if cfg.StartTimes != nil {
			at = cfg.StartTimes[p]
		}
		e.wakeTime[p] = at
		id := e.recordMessage(Message{
			From: External, To: p, SendStep: SendStepExternal,
			SendTime: at, RecvTime: at, Payload: Wakeup{},
		})
		e.queue.push(delivery{at: at, key: deliveryKey(at), seq: e.nextSeq(), msg: id})
	}
	// Scripted Byzantine sends, in process order for determinism (map
	// iteration order is randomized).
	for p := ProcessID(0); int(p) < cfg.N; p++ {
		f, ok := cfg.Faults[p]
		if !ok {
			continue
		}
		for _, s := range f.Script {
			e.sendMessage(p, SendStepScripted, s.At, s.To, s.Payload)
		}
	}

	truncated := e.loop(maxEvents)
	e.finishTrace()
	res := &Result{Trace: e.trace, Procs: e.procs, Truncated: truncated, MonitorErr: e.monitorErr}
	// Drop the escaping references so pooled state never aliases a result.
	e.trace, e.procs, e.cfg, e.links, e.cb, e.monitorErr = nil, nil, Config{}, nil, nil, nil
	e.env = Env{}
	return res, nil
}

// reset prepares the pooled storage for a new run: the queue and scratch
// arrays are cleared and resized to cfg.N, the RNG is reseeded (producing
// the same draw sequence as a fresh rand.New(rand.NewSource(seed))), and
// per-run outputs are freshly allocated. e.ret must be set before reset.
func (e *Engine) reset(cfg Config) {
	e.cfg = cfg
	e.seq = 0
	e.nextMsg = 0
	e.monitorErr = nil
	e.cb = nil
	if cfg.Sink != nil {
		if _, builtin := cfg.Sink.(retentionSink); !builtin {
			e.cb = cfg.Sink
		}
	}
	if cfg.Queue == QueueBucket || (cfg.Queue == QueueAuto && cfg.N >= autoBucketN) {
		if e.wheelQ == nil {
			e.wheelQ = newBucketQueue()
		}
		e.wheelQ.reset(cfg.N)
		e.queue = e.wheelQ
	} else {
		e.heapQ = e.heapQ[:0]
		e.queue = &e.heapQ
	}
	if e.rng == nil {
		e.rng = rand.New(rand.NewSource(cfg.Seed))
	} else {
		e.rng.Seed(cfg.Seed)
	}
	e.crashAfter = resizeInts(e.crashAfter, cfg.N)
	e.stepCount = resizeInts(e.stepCount, cfg.N)
	e.eventCount = resizeInts(e.eventCount, cfg.N)
	e.wakeTime = resizeTimes(e.wakeTime, cfg.N)
	for p := 0; p < cfg.N; p++ {
		e.crashAfter[p] = NeverCrash
	}
	e.pendBase = 0
	e.pendStart = 0

	// Escaping per-run state: always fresh. Full retention pre-sizes the
	// event and message stores to the engine's high-water marks so steady
	// fleet traffic allocates each exactly once instead of growing them
	// (append's growth factor costs ~5x the final size in cumulative
	// allocation); window retention sizes to the window; none retains
	// nothing.
	e.trace = &Trace{N: cfg.N, Faulty: make([]bool, cfg.N), mode: e.ret.Mode}
	e.procs = make([]Process, cfg.N)
	switch e.ret.Mode {
	case RetainFullMode:
		e.trace.Events = make([]Event, 0, e.lastEvents)
		e.trace.Msgs = make([]Message, 0, e.lastMsgs)
		if cap(e.posRows) < cfg.N {
			e.posRows = make([][]int32, cfg.N)
		}
		e.posRows = e.posRows[:cfg.N]
		for p := range e.posRows {
			e.posRows[p] = e.posRows[p][:0]
		}
		// Live view during the run (monitors may call EventAt); replaced
		// by a compacted fresh copy before the Result escapes.
		e.trace.eventPos = e.posRows
	case RetainWindowMode:
		e.trace.Events = make([]Event, 0, 2*e.ret.Window)
		e.trace.Msgs = make([]Message, 0, 2*e.ret.Window)
		e.trace.digest.init()
	case RetainNoneMode:
		e.trace.digest.init()
	}
}

// finishTrace seals the per-run trace before it escapes: full retention
// compacts the pooled index rows into one fresh flat array (two
// allocations) and refreshes the high-water marks; bounded retention
// clears the pooled in-flight store so it pins no payloads between runs.
func (e *Engine) finishTrace() {
	switch e.ret.Mode {
	case RetainFullMode:
		t := e.trace
		flat := make([]int32, len(t.Events))
		spine := make([][]int32, t.N)
		off := 0
		for p := range spine {
			n := copy(flat[off:], e.posRows[p])
			spine[p] = flat[off : off+n : off+n]
			off += n
		}
		t.eventPos = spine
		if len(t.Events) > e.lastEvents {
			e.lastEvents = len(t.Events)
		}
		if len(t.Msgs) > e.lastMsgs {
			e.lastMsgs = len(t.Msgs)
		}
	default:
		clear(e.pend)
		e.pend = e.pend[:0]
		e.pendDone = e.pendDone[:0]
	}
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeTimes(s []Time, n int) []Time {
	if cap(s) < n {
		return make([]Time, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = rat.Zero
	}
	return s
}

func (e *Engine) nextSeq() int64 {
	e.seq++
	return e.seq
}

// recordMessage finalizes one message (its receive time already
// assigned), stores it per the retention mode, and returns its ID. Under
// bounded retention the message lives in the pooled in-flight store until
// delivered, and the stream digest folds it immediately — in ID order,
// matching the on-demand digest of a complete trace.
func (e *Engine) recordMessage(m Message) MsgID {
	m.ID = e.nextMsg
	e.nextMsg++
	switch e.ret.Mode {
	case RetainFullMode:
		e.trace.Msgs = append(e.trace.Msgs, m)
	default:
		e.trace.totalMsgs++
		e.trace.digest.foldMessage(&m)
		e.pend = append(e.pend, m)
		e.pendDone = append(e.pendDone, false)
	}
	if e.cb != nil {
		// Copy for the interface call: handing &m itself to an opaque
		// callee would make every message heap-escape even with no sink.
		cm := m
		e.cb.Message(&cm)
	}
	return m.ID
}

// sendMessage assigns a delay and schedules the delivery. Delivery never
// precedes the recipient's wake-up (receive times are clamped to the wake
// time; the wake-up's earlier queue seq breaks the tie).
func (e *Engine) sendMessage(from ProcessID, sendStep int, sendTime Time, to ProcessID, payload any) {
	m := Message{
		From: from, To: to, SendStep: sendStep,
		SendTime: sendTime, Payload: payload,
	}
	d := e.cfg.Delays.Delay(m, e.rng)
	if d.Sign() < 0 {
		panic(fmt.Sprintf("sim: delay policy returned negative delay %v", d))
	}
	recv := sendTime.Add(d)
	if recv.Less(e.wakeTime[to]) {
		recv = e.wakeTime[to]
	}
	m.RecvTime = recv
	id := e.recordMessage(m)
	e.queue.push(delivery{at: recv, key: deliveryKey(recv), seq: e.nextSeq(), msg: id})
}

// takeDelivery resolves a popped delivery to its message. Under bounded
// retention the message is fetched from the in-flight store, marked
// delivered, and the store's delivered prefix is compacted away
// (amortized O(1)) so memory tracks the in-flight population, not the
// run length.
func (e *Engine) takeDelivery(d delivery) Message {
	if e.ret.Mode == RetainFullMode {
		return e.trace.Msgs[d.msg]
	}
	i := int(d.msg - e.pendBase)
	m := e.pend[i]
	e.pendDone[i] = true
	s := e.pendStart
	for s < len(e.pend) && e.pendDone[s] {
		s++
	}
	e.pendStart = s
	if s > 1024 && s > len(e.pend)/2 {
		old := e.pend
		n := copy(old, old[s:])
		clear(old[n:]) // drop payload refs from the vacated suffix
		e.pend = old[:n]
		copy(e.pendDone, e.pendDone[s:])
		e.pendDone = e.pendDone[:n]
		e.pendBase += MsgID(s)
		e.pendStart = 0
	}
	return m
}

// recordEvent appends one finalized receive event per the retention mode.
// m is the event's trigger message (already resolved by takeDelivery).
func (e *Engine) recordEvent(ev Event, m Message) {
	t := e.trace
	switch e.ret.Mode {
	case RetainFullMode:
		pos := len(t.Events)
		t.Events = append(t.Events, ev)
		// ev.Index == len(posRows[p]) by construction, so this appends the
		// dense per-process index row.
		e.posRows[ev.Proc] = append(e.posRows[ev.Proc], int32(pos))
	case RetainWindowMode:
		t.totalEvents++
		t.digest.foldEvent(&ev)
		t.Events = append(t.Events, ev)
		t.Msgs = append(t.Msgs, m) // parallel trigger store
		if k := e.ret.Window; len(t.Events) >= 2*k {
			// Slide: keep the most recent k, amortized O(1) per event.
			drop := len(t.Events) - k
			n := copy(t.Events, t.Events[drop:])
			clear(t.Events[n:])
			t.Events = t.Events[:n]
			n = copy(t.Msgs, t.Msgs[drop:])
			clear(t.Msgs[n:])
			t.Msgs = t.Msgs[:n]
			t.firstEvent += drop
		}
	case RetainNoneMode:
		t.totalEvents++
		t.digest.foldEvent(&ev)
	}
	if e.cb != nil {
		// Copy for the interface call, as in recordMessage.
		cev := ev
		e.cb.Event(&cev)
	}
}

func (e *Engine) loop(maxEvents int) (truncated bool) {
	for e.queue.len() > 0 {
		if e.trace.TotalEvents() >= maxEvents {
			return true
		}
		d := e.queue.pop()
		m := e.takeDelivery(d)
		if e.cfg.MaxTime.Sign() > 0 && m.RecvTime.Greater(e.cfg.MaxTime) {
			return true
		}
		p := m.To

		crashed := e.crashAfter[p] != NeverCrash && e.stepCount[p] >= e.crashAfter[p]
		ev := Event{
			Proc:    p,
			Index:   e.eventCount[p],
			Time:    m.RecvTime,
			Trigger: m.ID,
		}
		e.eventCount[p]++

		if !crashed {
			// The step environment is pooled: one Env lives in the Engine
			// and is re-initialized per step, so the interface call's
			// escape of &e.env costs nothing on the hot path.
			e.env = Env{
				self:      p,
				n:         e.cfg.N,
				stepIndex: e.stepCount[p],
				topo:      e.cfg.Topology,
				links:     e.links,
				out:       e.out[:0],
			}
			e.procs[p].Step(&e.env, m)
			e.stepCount[p]++
			ev.Processed = true
			ev.Note = e.env.note
			for _, out := range e.env.out {
				e.sendMessage(p, ev.Index, m.RecvTime, out.to, out.payload)
			}
			// Keep the (possibly grown) send buffer, cleared of payload
			// references so pooled storage does not pin process data.
			e.out = e.env.out[:0]
			clearSends(e.env.out)
		}
		e.recordEvent(ev, m)

		if e.cfg.Monitor != nil {
			if err := e.cfg.Monitor(e.trace); err != nil {
				e.monitorErr = err
				return false
			}
		}
		if ev.Processed && e.cfg.Until != nil && e.cfg.Until(e.procs) {
			return false
		}
	}
	return false
}

func clearSends(s []pendingSend) {
	for i := range s {
		s[i] = pendingSend{}
	}
}
