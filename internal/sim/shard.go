package sim

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"

	"repro/internal/rat"
)

// Sharded execution: the conservative-lookahead parallel engine mode
// (DESIGN.md decision 12).
//
// Processes are partitioned into contiguous ID ranges (weighted by CSR
// out-degree when the topology is a *Links, so dense hubs do not pile
// into one shard), each shard owning its own delivery queue. The run then
// alternates two phases per window:
//
//   - parallel drain: with H = min(next event over all shards) + L, where
//     L = minDelayBound(Delays) > 0, every shard pops and executes all of
//     its deliveries with time < H concurrently. No message sent at time
//     t >= minT can be received before t + L >= H — wake-time clamping,
//     InflightHold deferral, and spike penalties only push receive times
//     later — so nothing drained this window can depend on a send made
//     this window. Steps buffer their outputs (windowEvent); nothing
//     global is touched.
//
//   - serial merge: the buffered window is walked in the exact global
//     (time, seq) delivery order and, per event, the serial loop's tail
//     runs unchanged — in-flight bookkeeping, then sendMessage per
//     buffered send (all RNG draws, message IDs, queue seqs, digest
//     folds), then recordEvent. Every RNG consumer therefore draws in
//     exactly the serial engine's order, which is what makes traces,
//     StreamHash, and verdicts byte-identical at any shard count.
//
// Merge-phase sends route to the destination shard's inbox and are
// flushed into its queue at the next drain. When a window could cross the
// MaxEvents budget, the run finishes on a serial tail (popping the exact
// global minimum across shard queues) so the truncation point — and the
// process states feeding domain verdicts — match the serial engine
// event for event.

// maxShards caps the shard count: beyond the window's parallelism there
// is only merge overhead, and the coordinator's per-event scan over
// shards is linear in this.
const maxShards = 64

// windowEvent is one drained-but-unmerged reception: the popped delivery
// (its (at, seq) is the merge sort key), the event as the serial engine
// would record it, its trigger message, and the [start, end) range of the
// step's buffered sends in the shard's sends arena.
type windowEvent struct {
	d          delivery
	ev         Event
	m          Message
	start, end int32
}

// shardState is one shard's working set. Pooled across runs like the rest
// of the Engine (see Engine.shardPool).
type shardState struct {
	lo, hi int // owned process ID range [lo, hi)

	heapQ  heapQueue
	wheelQ *bucketQueue
	queue  eventQueue // points at heapQ or wheelQ per Config.Queue

	// inbox receives deliveries routed to this shard during the serial
	// phases (setup and merge); the shard flushes it into its queue at
	// the start of its next drain. inboxMin tracks the minimum pending
	// time for the coordinator's next-event scan.
	inbox    []delivery
	inboxMin Time

	window   []windowEvent
	sends    []pendingSend // arena of buffered step outputs, per window
	out      []pendingSend // Env send scratch, recycled between steps
	env      Env           // per-shard step environment (see Engine.env)
	mergeIdx int

	start  chan struct{}   // window start signal for this shard's worker
	labels context.Context // pprof labels: abc_shard=i, abc_phase=drain
	panicv any             // recovered drain panic, re-raised at the barrier
}

// setupShards decides the execution mode for one run. It leaves
// e.shards nil (serial path) unless cfg.Shards asks for parallelism AND
// the configuration is window-safe: no Monitor/Until callback (both
// observe global order mid-run), no Byzantine handler (adversary state is
// config-owned and must not be stepped concurrently), no amnesia recovery
// (respawning calls cfg.Spawn mid-drain), no negative start times (the
// growing-delay bound assumes send times >= 0), and a delay policy with a
// derivable positive minimum — zero lookahead means zero-width windows.
// cfg.Delays must already be compiled.
func (e *Engine) setupShards(cfg Config, links *Links) {
	e.shards = nil
	e.routeDirect = false
	p := cfg.Shards
	if p > cfg.N {
		p = cfg.N
	}
	if p > maxShards {
		p = maxShards
	}
	if p <= 1 || cfg.Monitor != nil || cfg.Until != nil {
		return
	}
	for _, f := range cfg.Faults {
		if f.Byzantine != nil {
			return
		}
		if len(f.Down) > 0 && f.Recovery == RecoverAmnesia {
			return
		}
	}
	for _, t := range cfg.StartTimes {
		if t.Sign() < 0 {
			return
		}
	}
	look, ok := minDelayBound(cfg.Delays)
	if !ok || look.Sign() <= 0 {
		return
	}

	bounds := shardRanges(cfg.N, p, links)
	if cap(e.shardPool) < p {
		pool := make([]shardState, p)
		copy(pool, e.shardPool)
		e.shardPool = pool
	}
	e.shardPool = e.shardPool[:p]
	for i := range e.shardPool {
		s := &e.shardPool[i]
		s.lo, s.hi = bounds[i], bounds[i+1]
		// The queue-kind heuristic applies per shard population; the
		// choice never affects results (see eventQueue).
		n := s.hi - s.lo
		if cfg.Queue == QueueBucket || (cfg.Queue == QueueAuto && n >= autoBucketN) {
			if s.wheelQ == nil {
				s.wheelQ = newBucketQueue()
			}
			s.wheelQ.reset(n)
			s.queue = s.wheelQ
		} else {
			s.heapQ = s.heapQ[:0]
			s.queue = &s.heapQ
		}
		s.inbox = s.inbox[:0]
		s.window = s.window[:0]
		s.sends = s.sends[:0]
		s.mergeIdx = 0
		s.panicv = nil
		if links != nil && cap(s.out) < links.MaxOutDegree()+1 {
			s.out = make([]pendingSend, 0, links.MaxOutDegree()+1)
		}
		if s.labels == nil {
			s.labels = pprof.WithLabels(context.Background(),
				pprof.Labels("abc_shard", strconv.Itoa(i), "abc_phase", "drain"))
		}
	}
	if e.mergeLabels == nil {
		e.mergeLabels = pprof.WithLabels(context.Background(), pprof.Labels("abc_phase", "merge"))
		e.barrierLabels = pprof.WithLabels(context.Background(), pprof.Labels("abc_phase", "barrier"))
	}
	e.lookahead = look
	e.shards = e.shardPool
}

// teardownShards drops the per-run sharded state after the Result is
// built. Queue contents (truncated runs may leave some) hold no payload
// references and are reset by the next sharded setup.
func (e *Engine) teardownShards() {
	for i := range e.shards {
		s := &e.shards[i]
		s.inbox = s.inbox[:0]
		s.env = Env{}
	}
	e.shards = nil
	e.routeDirect = false
	e.winH = rat.Zero
	e.lookahead = rat.Zero
}

// shardRanges cuts [0, n) into p contiguous ranges. With a CSR topology
// the cuts balance out-degree+1 (each process's broadcast fan-out plus
// its wake-up/self traffic) so hub-heavy shards do not serialize the
// window; otherwise the ranges are equal-sized. Every shard gets at least
// one process (p <= n).
func shardRanges(n, p int, links *Links) []int {
	bounds := make([]int, p+1)
	bounds[p] = n
	if links == nil {
		for i := 1; i < p; i++ {
			bounds[i] = i * n / p
		}
		return bounds
	}
	total := n
	for q := 0; q < n; q++ {
		total += len(links.Out(ProcessID(q)))
	}
	acc, i := 0, 1
	for q := 0; q < n && i < p; q++ {
		acc += len(links.Out(ProcessID(q))) + 1
		for i < p && acc*p >= total*i {
			bounds[i] = q + 1
			i++
		}
	}
	for ; i < p; i++ {
		bounds[i] = n
	}
	// Degenerate weight distributions can collapse cuts; re-spread so
	// ranges stay strictly increasing within [0, n].
	for i := 1; i < p; i++ {
		if lo := bounds[i-1] + 1; bounds[i] < lo {
			bounds[i] = lo
		}
		if hi := n - (p - i); bounds[i] > hi {
			bounds[i] = hi
		}
	}
	return bounds
}

// shardOf returns the shard owning process p. Shard counts are small
// (<= maxShards), so a linear scan over the contiguous bounds wins over
// anything cleverer.
func (e *Engine) shardOf(p ProcessID) *shardState {
	sh := e.shards
	for i := range sh {
		if int(p) < sh[i].hi {
			return &sh[i]
		}
	}
	return &sh[len(sh)-1]
}

// enqueue schedules one delivery for process to: directly onto the
// engine queue on the serial path, routed to the owning shard otherwise.
// During the serial phases of a sharded run (setup, merge) deliveries
// land in the shard's inbox; during the serial tail they go straight
// into shard queues.
func (e *Engine) enqueue(d delivery, to ProcessID) {
	if e.shards == nil {
		e.queue.push(d)
		return
	}
	s := e.shardOf(to)
	if e.routeDirect {
		s.queue.push(d)
		return
	}
	if len(s.inbox) == 0 || d.at.Less(s.inboxMin) {
		s.inboxMin = d.at
	}
	s.inbox = append(s.inbox, d)
}

// loopSharded is the sharded counterpart of loop. The pprof.Do wrapper
// tags the whole run (and restores the caller's labels afterwards); the
// coordinator switches its own labels between the drain/barrier/merge
// phases per window, and each worker is labeled with its shard.
func (e *Engine) loopSharded(maxEvents int) (truncated bool) {
	pprof.Do(context.Background(), pprof.Labels("abc_engine", "sharded"), func(context.Context) {
		truncated = e.windowLoop(maxEvents)
	})
	return truncated
}

func (e *Engine) windowLoop(maxEvents int) bool {
	sh := e.shards
	var wg sync.WaitGroup
	for i := 1; i < len(sh); i++ {
		s := &sh[i]
		// Buffer 1 so the coordinator's window-start send never blocks on
		// a worker that has signaled done but not yet looped back.
		s.start = make(chan struct{}, 1)
		go func() {
			pprof.SetGoroutineLabels(s.labels)
			for range s.start {
				e.drainShard(s, &wg)
			}
		}()
	}
	defer func() {
		for i := 1; i < len(sh); i++ {
			close(sh[i].start)
			sh[i].start = nil
		}
	}()

	hasMax := e.cfg.MaxTime.Sign() > 0
	for {
		pending := 0
		for i := range sh {
			pending += sh[i].queue.len() + len(sh[i].inbox)
		}
		if pending == 0 {
			return false
		}
		total := e.trace.TotalEvents()
		if total >= maxEvents {
			return true
		}
		minT, ok := e.nextEventTime()
		if !ok {
			return false
		}
		if hasMax && minT.Greater(e.cfg.MaxTime) {
			// Everything left is beyond the horizon — the serial engine
			// truncates on popping the first such delivery.
			return true
		}
		if total+pending > maxEvents {
			// A window executes at most `pending` events (window sends
			// always land in later windows), so under this guard no window
			// can cross the budget; past it, the serial tail reproduces
			// the serial engine's exact truncation point.
			return e.drainSerialTail(maxEvents)
		}
		e.winH = minT.Add(e.lookahead)
		e.winHKey = deliveryKey(e.winH)
		wg.Add(len(sh) - 1)
		for i := 1; i < len(sh); i++ {
			sh[i].start <- struct{}{}
		}
		pprof.SetGoroutineLabels(sh[0].labels)
		e.drainShard(&sh[0], nil)
		pprof.SetGoroutineLabels(e.barrierLabels)
		wg.Wait()
		for i := range sh {
			if p := sh[i].panicv; p != nil {
				sh[i].panicv = nil
				panic(p)
			}
		}
		pprof.SetGoroutineLabels(e.mergeLabels)
		e.mergeWindow()
	}
}

// nextEventTime is the exact minimum pending delivery time across all
// shard queues and inboxes.
func (e *Engine) nextEventTime() (Time, bool) {
	var minT Time
	have := false
	for i := range e.shards {
		s := &e.shards[i]
		if d, ok := s.queue.peek(); ok && (!have || d.at.Less(minT)) {
			minT, have = d.at, true
		}
		if len(s.inbox) > 0 && (!have || s.inboxMin.Less(minT)) {
			minT, have = s.inboxMin, true
		}
	}
	return minT, have
}

// drainShard flushes the shard's inbox and executes every owned delivery
// below the window horizon. Runs concurrently across shards: it reads
// only engine state frozen during the parallel phase (pend/trace message
// stores, cfg, down schedules) and writes only per-process scratch the
// shard owns (stepCount/eventCount rows in [lo, hi)) and its own buffers.
// Panics (from process Steps) are captured and re-raised by the
// coordinator after the barrier.
func (e *Engine) drainShard(s *shardState, wg *sync.WaitGroup) {
	if wg != nil {
		defer wg.Done()
	}
	defer func() {
		if r := recover(); r != nil {
			s.panicv = r
		}
	}()
	for _, d := range s.inbox {
		s.queue.push(d)
	}
	s.inbox = s.inbox[:0]
	hasMax := e.cfg.MaxTime.Sign() > 0
	for {
		d, ok := s.queue.peek()
		if !ok {
			break
		}
		// Monotone float keys decide the horizon check in one branch;
		// only key ties need the exact comparison.
		if d.key > e.winHKey || (d.key == e.winHKey && !d.at.Less(e.winH)) {
			break
		}
		if hasMax && d.at.Greater(e.cfg.MaxTime) {
			break // pops ascend, so everything left is beyond the horizon
		}
		s.queue.pop()
		e.stepShard(s, d)
	}
}

// stepShard executes one drained delivery: the crash/down gating and the
// process step of the serial loop, with all globally-ordered effects
// (sends, recording, RNG draws) deferred to the merge as a windowEvent.
func (e *Engine) stepShard(s *shardState, d delivery) {
	var m Message
	if e.ret.Mode == RetainFullMode {
		m = e.trace.Msgs[d.msg]
	} else {
		m = e.pend[int(d.msg-e.pendBase)]
	}
	p := m.To
	crashed := e.crashAfter[p] != NeverCrash && e.stepCount[p] >= e.crashAfter[p]
	if !crashed && len(e.down[p]) > 0 {
		crashed = downAt(e.down[p], m.RecvTime)
	}
	// Amnesia respawns cannot occur here: setupShards gates them off.
	ev := Event{
		Proc:    p,
		Index:   e.eventCount[p],
		Time:    m.RecvTime,
		Trigger: m.ID,
	}
	e.eventCount[p]++
	start := int32(len(s.sends))
	if !crashed {
		s.env = Env{
			self:      p,
			n:         e.cfg.N,
			stepIndex: e.stepCount[p],
			topo:      e.cfg.Topology,
			links:     e.links,
			out:       s.out[:0],
		}
		e.procs[p].Step(&s.env, m)
		e.stepCount[p]++
		ev.Processed = true
		ev.Note = s.env.note
		s.sends = append(s.sends, s.env.out...)
		s.out = s.env.out[:0]
		clearSends(s.env.out)
	}
	s.window = append(s.window, windowEvent{d: d, ev: ev, m: m, start: start, end: int32(len(s.sends))})
}

// mergeWindow replays the drained window in the exact global (time, seq)
// order, running the serial loop's per-event tail: in-flight bookkeeping,
// the send fan-out (every RNG draw, message ID, queue seq, and digest
// fold happens here, in serial order), then recordEvent. Shard windows
// are already sorted (pops ascend), so this is a k-way merge on the head
// deliveries.
func (e *Engine) mergeWindow() {
	sh := e.shards
	for {
		best := -1
		var bd delivery
		for i := range sh {
			s := &sh[i]
			if s.mergeIdx < len(s.window) {
				if d := s.window[s.mergeIdx].d; best < 0 || deliveryLess(d, bd) {
					best, bd = i, d
				}
			}
		}
		if best < 0 {
			break
		}
		s := &sh[best]
		we := &s.window[s.mergeIdx]
		s.mergeIdx++
		if e.ret.Mode != RetainFullMode {
			e.markDelivered(int(we.d.msg - e.pendBase))
		}
		for _, out := range s.sends[we.start:we.end] {
			e.sendMessage(we.ev.Proc, we.ev.Index, we.ev.Time, out.to, out.payload)
		}
		e.recordEvent(we.ev, we.m)
	}
	for i := range sh {
		s := &sh[i]
		clearSends(s.sends)
		s.sends = s.sends[:0]
		for j := range s.window {
			s.window[j] = windowEvent{}
		}
		s.window = s.window[:0]
		s.mergeIdx = 0
	}
}

// drainSerialTail finishes a sharded run one event at a time in exact
// global order — the same body as the serial loop, popping the minimum
// across shard queues — so MaxEvents truncation stops at precisely the
// event the serial engine would stop at (the final process states feed
// domain verdicts and must match event for event).
func (e *Engine) drainSerialTail(maxEvents int) (truncated bool) {
	e.routeDirect = true
	sh := e.shards
	for i := range sh {
		s := &sh[i]
		for _, d := range s.inbox {
			s.queue.push(d)
		}
		s.inbox = s.inbox[:0]
	}
	for {
		best := -1
		var bd delivery
		for i := range sh {
			if d, ok := sh[i].queue.peek(); ok && (best < 0 || deliveryLess(d, bd)) {
				best, bd = i, d
			}
		}
		if best < 0 {
			return false
		}
		if e.trace.TotalEvents() >= maxEvents {
			return true
		}
		sh[best].queue.pop()
		m := e.takeDelivery(bd)
		if e.cfg.MaxTime.Sign() > 0 && m.RecvTime.Greater(e.cfg.MaxTime) {
			return true
		}
		if e.stepEvent(m) {
			return false
		}
	}
}
