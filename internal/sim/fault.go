package sim

// Fault configures the failure behavior of one process. A process with a
// Fault entry counts against the resilience bound f and is marked faulty in
// the trace (its sent messages are dropped from the execution graph, per
// Definition 1).
//
// Fault maps are validated at Run setup, before any step executes — a
// malformed fault is a configuration error, never silent misbehavior.
// Run rejects: fault-map keys outside [0, N); CrashAfter below NeverCrash
// (-1 is the only negative value with a meaning); scripted sends whose
// To is out of range, whose At is negative, or which cross a link the
// topology does not provide (see the adversary-model note on Script);
// down schedules that overlap, are unsorted, or are combined with
// CrashAfter; and unknown recovery/in-flight policies.
type Fault struct {
	// CrashAfter, when >= 0, makes the process execute only its first
	// CrashAfter computing steps; afterwards receptions still occur but
	// trigger no step. CrashAfter == 0 crashes the process before its
	// wake-up step. Use NeverCrash (-1) for no crash.
	//
	// CrashAfter is the permanent, step-indexed crash; Down is the
	// time-indexed recoverable generalization. Setting both on one Fault
	// is a configuration error.
	CrashAfter int
	// Down is a schedule of half-open intervals [From, Until) of simulated
	// time during which the process is down: receptions still occur at it
	// (or are deferred, per Inflight) but trigger no computing step, the
	// reception/processing split of Section 2 — a crash-stop fault is the
	// special case of a Down interval that never ends. At each interval's
	// end the process recovers and resumes per Recovery. Intervals must be
	// sorted by From and non-overlapping.
	//
	// A process's wake-up is never lost to a down interval: a wake-up time
	// covered by an interval is deferred to that interval's end (under
	// both in-flight policies), so every Down process eventually
	// initializes. A down-then-up process still counts against f and is
	// marked faulty in the trace for the whole run — Definition 1 has no
	// partially-faulty processes, so its messages stay exempt from the
	// execution graph even while it is up.
	Down []Interval
	// Recovery selects the state a process resumes with after each Down
	// interval; the zero value is RecoverDurable. Ignored without Down.
	Recovery RecoveryPolicy
	// Inflight selects the fate of messages arriving during a Down
	// interval; the zero value is InflightDrop. Ignored without Down.
	Inflight InflightPolicy
	// Byzantine, when non-nil, replaces the process's state machine for all
	// of its steps. The Byzantine process may send arbitrary messages
	// (including equivocating payloads) from its steps. CrashAfter still
	// applies, modelling a Byzantine process that eventually goes silent.
	Byzantine Process
	// Script injects messages from this process at arbitrary times,
	// independent of any computing step — the fully adversarial behavior
	// permitted of Byzantine processes. Scripted messages are subject to
	// the delay policy like any other message.
	//
	// Adversary model: a Byzantine process controls its own behavior, not
	// the network's wiring. Scripted sends therefore pass the same checks
	// as Env.Send — Run rejects configurations whose ScriptedSend.To is out
	// of range or crosses a link the topology does not provide (self-sends
	// are always legal). An adversary that could forge traffic on
	// non-existent links would be strictly stronger than the paper's model,
	// where faulty processes are still bound by the point-to-point network.
	Script []ScriptedSend
}

// NeverCrash is the CrashAfter value meaning the process does not crash.
const NeverCrash = -1

// ScriptedSend is a message a Byzantine process spontaneously emits.
type ScriptedSend struct {
	At      Time
	To      ProcessID
	Payload any
}

// Crash returns a Fault that crash-stops the process after k computing
// steps.
func Crash(k int) Fault { return Fault{CrashAfter: k, Byzantine: nil} }

// Silent returns a Fault for a process that is crashed from the start: it
// never executes any step, not even its wake-up.
func Silent() Fault { return Fault{CrashAfter: 0} }

// ByzantineFault returns a Fault that runs p instead of the correct
// algorithm.
func ByzantineFault(p Process) Fault {
	return Fault{CrashAfter: NeverCrash, Byzantine: p}
}
