package sim

import (
	"math/rand"

	"repro/internal/rat"
)

// A DelayPolicy assigns an end-to-end delay to each message. The ABC model
// places no constraint on individual delays — they may be zero, huge, or
// continuously growing — so the policy is the adversary's lever for shaping
// executions. Policies must return a non-negative delay and must be
// deterministic given the message and the rng.
type DelayPolicy interface {
	// Delay returns the end-to-end delay of m. The message has its ID,
	// From, To, SendTime and Payload fields populated; RecvTime is not yet
	// assigned.
	Delay(m Message, rng *rand.Rand) Time
}

// ConstantDelay delays every message by the same amount.
type ConstantDelay struct{ D Time }

// Delay implements DelayPolicy.
func (c ConstantDelay) Delay(Message, *rand.Rand) Time { return c.D }

// quantSteps is the quantization granularity of the randomized policies.
const quantSteps = 1 << 16

// UniformDelay draws delays uniformly from the rational interval
// [Min, Max], quantized to granularity (Max-Min)/2^16.
type UniformDelay struct{ Min, Max Time }

// Delay implements DelayPolicy.
func (u UniformDelay) Delay(_ Message, rng *rand.Rand) Time {
	span := u.Max.Sub(u.Min)
	k := rng.Int63n(quantSteps + 1)
	return u.Min.Add(span.Mul(rat.New(k, quantSteps)))
}

// compiledUniform is UniformDelay with the policy-constant span hoisted out
// of the per-message path. It draws from the rng exactly like UniformDelay,
// so compiled and uncompiled runs of the same seed produce identical
// traces.
type compiledUniform struct{ min, span Time }

// Delay implements DelayPolicy.
func (u compiledUniform) Delay(_ Message, rng *rand.Rand) Time {
	k := rng.Int63n(quantSteps + 1)
	return u.min.Add(u.span.Mul(rat.New(k, quantSteps)))
}

// GrowingDelay models systems whose delays increase without bound, like the
// paper's spacecraft clusters drifting apart (Section 5.3): a message sent
// at time t is delayed Base·(1 + Rate·t) scaled by a uniform factor in
// [1, Spread]. With Spread below the model's Ξ this remains ABC-admissible
// even though no static Θ or ParSync Δ bound can hold.
type GrowingDelay struct {
	Base   Time
	Rate   Time // growth per unit of send time
	Spread Time // >= 1; 1 means deterministic
}

// Delay implements DelayPolicy.
func (g GrowingDelay) Delay(m Message, rng *rand.Rand) Time {
	base := g.Base.Mul(rat.One.Add(g.Rate.Mul(m.SendTime)))
	spread := g.Spread
	if spread.Less(rat.One) {
		spread = rat.One
	}
	k := rng.Int63n(quantSteps + 1)
	factor := rat.One.Add(spread.Sub(rat.One).Mul(rat.New(k, quantSteps)))
	return base.Mul(factor)
}

// compiledGrowing is GrowingDelay with the spread clamp and the constant
// spread−1 hoisted out of the per-message path; same rng draw sequence.
type compiledGrowing struct{ base, rate, spreadM1 Time }

// Delay implements DelayPolicy.
func (g compiledGrowing) Delay(m Message, rng *rand.Rand) Time {
	base := g.base.Mul(rat.One.Add(g.rate.Mul(m.SendTime)))
	k := rng.Int63n(quantSteps + 1)
	return base.Mul(rat.One.Add(g.spreadM1.Mul(rat.New(k, quantSteps))))
}

// PerLinkDelay selects a policy per directed link, falling back to Default.
// It models heterogeneous networks such as the placed-and-routed VLSI chips
// of Section 5.3, where each wire has its own delay range.
type PerLinkDelay struct {
	Default DelayPolicy
	Links   map[Link]DelayPolicy
}

// Link is a directed process pair.
type Link struct{ From, To ProcessID }

// Delay implements DelayPolicy.
func (p PerLinkDelay) Delay(m Message, rng *rand.Rand) Time {
	if pol, ok := p.Links[Link{m.From, m.To}]; ok {
		return pol.Delay(m, rng)
	}
	return p.Default.Delay(m, rng)
}

// OverrideDelay applies Override to messages matched by Match and Base to
// all others. It is used to inject targeted anomalies such as the
// zero-delay message m3 of Fig. 1 or the slow reply of Fig. 3.
type OverrideDelay struct {
	Base     DelayPolicy
	Match    func(m Message) bool
	Override DelayPolicy
}

// Delay implements DelayPolicy.
func (o OverrideDelay) Delay(m Message, rng *rand.Rand) Time {
	if o.Match != nil && o.Match(m) {
		return o.Override.Delay(m, rng)
	}
	return o.Base.Delay(m, rng)
}

// DelayFunc adapts a function to the DelayPolicy interface.
type DelayFunc func(m Message, rng *rand.Rand) Time

// Delay implements DelayPolicy.
func (f DelayFunc) Delay(m Message, rng *rand.Rand) Time { return f(m, rng) }

// minDelayBound returns a lower bound on the delay any message can be
// assigned by p, valid for all send times >= 0, and whether such a bound
// is derivable at all. It is the sharded engine's lookahead: a positive
// bound means no message sent inside a time window can be received inside
// that window, which is what makes conservative parallel draining sound.
// Opaque policies (DelayFunc, unknown types) and policies whose bound
// would require negative-time analysis report !ok, sending the run down
// the serial path.
func minDelayBound(p DelayPolicy) (Time, bool) {
	switch q := p.(type) {
	case ConstantDelay:
		return q.D, q.D.Sign() >= 0
	case UniformDelay:
		return minDelayBound(compiledUniform{min: q.Min, span: q.Max.Sub(q.Min)})
	case compiledUniform:
		// Draws land in [min, min+span] (span may be negative when
		// Max < Min; the engine still accepts such policies).
		lo := q.min
		if q.span.Sign() < 0 {
			lo = q.min.Add(q.span)
		}
		return lo, lo.Sign() >= 0
	case GrowingDelay:
		return minDelayBound(compiledGrowing{base: q.Base, rate: q.Rate})
	case compiledGrowing:
		// delay = base·(1+rate·t)·(1+spreadM1·k/Q) with spreadM1 >= 0 after
		// compilation, so for t >= 0 and base, rate >= 0 the minimum is base.
		if q.base.Sign() < 0 || q.rate.Sign() < 0 {
			return Time{}, false
		}
		return q.base, true
	case PerLinkDelay:
		lo, ok := minDelayBound(q.Default)
		if !ok {
			return Time{}, false
		}
		for _, lp := range q.Links {
			b, ok := minDelayBound(lp)
			if !ok {
				return Time{}, false
			}
			if b.Less(lo) {
				lo = b
			}
		}
		return lo, true
	case OverrideDelay:
		a, ok := minDelayBound(q.Base)
		if !ok {
			return Time{}, false
		}
		b, ok := minDelayBound(q.Override)
		if !ok {
			return Time{}, false
		}
		if b.Less(a) {
			a = b
		}
		return a, true
	default:
		return Time{}, false
	}
}

// compileDelays returns an equivalent policy with per-policy constants
// (UniformDelay's span, GrowingDelay's clamped spread) computed once
// instead of per message. Composite policies are compiled recursively.
// The returned policy draws from the rng in exactly the same sequence as
// the original, so seeded runs are bit-identical. sim.Run applies it to
// Config.Delays; unknown policy types pass through untouched.
func compileDelays(p DelayPolicy) DelayPolicy {
	switch q := p.(type) {
	case UniformDelay:
		return compiledUniform{min: q.Min, span: q.Max.Sub(q.Min)}
	case GrowingDelay:
		spread := q.Spread
		if spread.Less(rat.One) {
			spread = rat.One
		}
		return compiledGrowing{base: q.Base, rate: q.Rate, spreadM1: spread.Sub(rat.One)}
	case PerLinkDelay:
		links := make(map[Link]DelayPolicy, len(q.Links))
		for l, lp := range q.Links {
			links[l] = compileDelays(lp)
		}
		return PerLinkDelay{Default: compileDelays(q.Default), Links: links}
	case OverrideDelay:
		return OverrideDelay{Base: compileDelays(q.Base), Match: q.Match, Override: compileDelays(q.Override)}
	default:
		return p
	}
}
