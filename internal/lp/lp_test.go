package lp

import (
	"errors"
	"testing"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/rat"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func TestSolveSimpleFeasible(t *testing.T) {
	// 1 < x < 2.
	s := &System{NumVars: 1}
	s.AddRow([]rat.Rat{rat.FromInt(-1)}, rat.FromInt(-1), "lower")
	s.AddRow([]rat.Rat{rat.One}, rat.FromInt(2), "upper")
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("1 < x < 2 reported infeasible")
	}
	if err := s.Verify(sol.X); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSimpleInfeasible(t *testing.T) {
	// x < 1 and x > 2.
	s := &System{NumVars: 1}
	s.AddRow([]rat.Rat{rat.One}, rat.One, "upper")
	s.AddRow([]rat.Rat{rat.FromInt(-1)}, rat.FromInt(-2), "lower")
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Fatal("x < 1 ∧ x > 2 reported feasible")
	}
	if err := s.VerifyCertificate(sol.Certificate); err != nil {
		t.Fatal(err)
	}
}

func TestStrictBoundaryInfeasible(t *testing.T) {
	// x < 1 and x > 1: infeasible only because inequalities are strict.
	s := &System{NumVars: 1}
	s.AddRow([]rat.Rat{rat.One}, rat.One, "upper")
	s.AddRow([]rat.Rat{rat.FromInt(-1)}, rat.FromInt(-1), "lower")
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Fatal("strict boundary system reported feasible")
	}
	if err := s.VerifyCertificate(sol.Certificate); err != nil {
		t.Fatal(err)
	}
}

func TestSolveTwoVariables(t *testing.T) {
	// x − y < 0, y − x < 1, 0 < x < 10, 0 < y < 10.
	s := &System{NumVars: 2}
	s.AddRow([]rat.Rat{rat.One, rat.FromInt(-1)}, rat.Zero, "x<y")
	s.AddRow([]rat.Rat{rat.FromInt(-1), rat.One}, rat.One, "y<x+1")
	s.AddRow([]rat.Rat{rat.FromInt(-1), rat.Zero}, rat.Zero, "x>0")
	s.AddRow([]rat.Rat{rat.One, rat.Zero}, rat.FromInt(10), "x<10")
	s.AddRow([]rat.Rat{rat.Zero, rat.FromInt(-1)}, rat.Zero, "y>0")
	s.AddRow([]rat.Rat{rat.Zero, rat.One}, rat.FromInt(10), "y<10")
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("feasible 2-var system reported infeasible")
	}
	if err := s.Verify(sol.X); err != nil {
		t.Fatal(err)
	}
}

func TestUnconstrainedVariables(t *testing.T) {
	s := &System{NumVars: 3} // no rows at all
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("empty system infeasible")
	}
	if err := s.Verify(sol.X); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejects(t *testing.T) {
	s := &System{NumVars: 1}
	s.AddRow([]rat.Rat{rat.One}, rat.One, "x<1")
	if err := s.Verify([]rat.Rat{rat.FromInt(5)}); err == nil {
		t.Error("Verify accepted violating point")
	}
	if err := s.Verify([]rat.Rat{rat.Zero, rat.Zero}); err == nil {
		t.Error("Verify accepted wrong arity")
	}
}

func TestVerifyCertificateRejects(t *testing.T) {
	s := &System{NumVars: 1}
	s.AddRow([]rat.Rat{rat.One}, rat.One, "x<1")
	s.AddRow([]rat.Rat{rat.FromInt(-1)}, rat.FromInt(-2), "x>2")
	if err := s.VerifyCertificate([]rat.Rat{rat.Zero, rat.Zero}); err == nil {
		t.Error("zero certificate accepted")
	}
	if err := s.VerifyCertificate([]rat.Rat{rat.FromInt(-1), rat.One}); err == nil {
		t.Error("negative certificate accepted")
	}
	if err := s.VerifyCertificate([]rat.Rat{rat.One}); err == nil {
		t.Error("wrong arity certificate accepted")
	}
	// y = (1, 1): yᵀA = 0, yᵀb = −1 <= 0: valid.
	if err := s.VerifyCertificate([]rat.Rat{rat.One, rat.One}); err != nil {
		t.Errorf("valid certificate rejected: %v", err)
	}
}

// The Fig. 6 message-weight system and the difference system agree with
// the Bellman–Ford checker on the figure graphs (experiment E6 core).
func TestSystemsAgreeOnFigures(t *testing.T) {
	graphs := map[string]*causality.Graph{
		"fig1": scenario.BuildFig1().Graph,
		"fig2": scenario.BuildFig2().Graph,
		"fig3": scenario.BuildFig3().Graph,
		"fig4": scenario.BuildFig4().Graph,
	}
	xis := []rat.Rat{rat.New(6, 5), rat.New(5, 4), rat.FromInt(2), rat.FromInt(4)}
	for name, g := range graphs {
		for _, xi := range xis {
			want, err := check.ABC(g, xi)
			if err != nil {
				t.Fatal(err)
			}

			msgSys, _, complete := FromGraph(g, xi, 100000)
			if !complete {
				t.Fatalf("%s: cycle enumeration truncated", name)
			}
			msgSol, err := msgSys.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if msgSol.Feasible != want.Admissible {
				t.Errorf("%s Ξ=%v: Fig.6 system feasible=%v, checker admissible=%v",
					name, xi, msgSol.Feasible, want.Admissible)
			}
			if msgSol.Feasible {
				if err := msgSys.Verify(msgSol.X); err != nil {
					t.Errorf("%s Ξ=%v: %v", name, xi, err)
				}
			} else if err := msgSys.VerifyCertificate(msgSol.Certificate); err != nil {
				t.Errorf("%s Ξ=%v: bad certificate: %v", name, xi, err)
			}

			diffSys := DifferenceSystem(g, xi)
			diffSol, err := diffSys.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if diffSol.Feasible != want.Admissible {
				t.Errorf("%s Ξ=%v: difference system feasible=%v, checker admissible=%v",
					name, xi, diffSol.Feasible, want.Admissible)
			}
		}
	}
}

// On random small executions the Fig. 6 formulation matches the checker.
func TestFromGraphRandomAgreement(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		res, err := sim.Run(sim.Config{
			N: 3,
			Spawn: func(p sim.ProcessID) sim.Process {
				return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
					if env.StepIndex() < 2 {
						env.Broadcast(env.StepIndex())
					}
				})
			},
			Delays: sim.UniformDelay{Min: rat.One, Max: rat.FromInt(2)},
			Seed:   seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := causality.Build(res.Trace, causality.Options{})
		for _, xi := range []rat.Rat{rat.New(3, 2), rat.FromInt(2), rat.FromInt(3)} {
			want, err := check.ABC(g, xi)
			if err != nil {
				t.Fatal(err)
			}
			sys, _, complete := FromGraph(g, xi, 100000)
			if !complete {
				t.Skip("cycle enumeration truncated")
			}
			sol, err := sys.Solve()
			if errors.Is(err, ErrTooLarge) {
				t.Skip("system too large for Fourier–Motzkin")
			}
			if err != nil {
				t.Fatal(err)
			}
			if sol.Feasible != want.Admissible {
				t.Fatalf("seed %d Ξ=%v: Fig.6 feasible=%v, checker=%v", seed, xi, sol.Feasible, want.Admissible)
			}
		}
	}
}

func TestFig7MatrixShape(t *testing.T) {
	// The Fig. 6 matrix has 2k + l + m rows for k messages and l + m
	// cycles.
	g := scenario.BuildFig2().Graph
	sys, varOf, complete := FromGraph(g, rat.FromInt(4), 100000)
	if !complete {
		t.Fatal("truncated")
	}
	k := len(varOf)
	if k != g.MessageCount() {
		t.Errorf("vars = %d, want %d", k, g.MessageCount())
	}
	if len(sys.Rows) <= 2*k {
		t.Errorf("system has %d rows, want > %d (cycle rows missing)", len(sys.Rows), 2*k)
	}
	// Every cycle row has zero right-hand side and ±1 coefficients.
	for _, r := range sys.Rows[2*k:] {
		if r.B.Sign() != 0 {
			t.Errorf("cycle row %s has b = %v", r.Tag, r.B)
		}
		for _, c := range r.Coeffs {
			if c.Abs().Greater(rat.One) {
				t.Errorf("cycle row %s has coefficient %v", r.Tag, c)
			}
		}
	}
}
