package lp

import (
	"fmt"

	"repro/internal/causality"
	"repro/internal/cycles"
	"repro/internal/cyclespace"
	"repro/internal/rat"
)

// FromGraph builds the paper's Fig. 6 system for an execution graph:
// one variable per message e (its weight τ(e)), rows
//
//	−τ(e) < −1              (lower bounds, k rows)
//	 τ(e) < Ξ               (upper bounds, k rows)
//	Σ_{e∈Z−} τ − Σ_{e∈Z+} τ < 0   (one row per relevant cycle)
//	Σ_{e∈Z+} τ − Σ_{e∈Z−} τ < 0   (one row per non-relevant cycle)
//
// Cycles are enumerated exhaustively (the matrix view requires them
// explicitly — that is its cost compared to the difference-constraint
// formulation); complete is false if the limit truncated enumeration.
// VarOf maps message edge IDs to column indices.
func FromGraph(g *causality.Graph, xi rat.Rat, cycleLimit int) (s *System, varOf map[causality.EdgeID]int, complete bool) {
	varOf = make(map[causality.EdgeID]int)
	for i, e := range g.Edges() {
		if e.Kind == causality.Message {
			varOf[causality.EdgeID(i)] = len(varOf)
		}
	}
	s = &System{NumVars: len(varOf)}

	for id, col := range varOf {
		lower := make([]rat.Rat, s.NumVars)
		lower[col] = rat.FromInt(-1)
		s.AddRow(lower, rat.FromInt(-1), fmt.Sprintf("lower(e%d)", id))
		upper := make([]rat.Rat, s.NumVars)
		upper[col] = rat.One
		s.AddRow(upper, xi, fmt.Sprintf("upper(e%d)", id))
	}

	all, complete := cycles.Enumerate(g, cycleLimit)
	for i, c := range all {
		rv := cyclespace.RowVector(c)
		coeffs := make([]rat.Rat, s.NumVars)
		for e, coeff := range rv {
			coeffs[varOf[e]] = rat.FromInt(coeff)
		}
		kind := "relevant"
		if !cycles.Classify(c).Relevant {
			kind = "non-relevant"
		}
		s.AddRow(coeffs, rat.Zero, fmt.Sprintf("cycle(%s %d)", kind, i))
	}
	return s, varOf, complete
}

// DifferenceSystem builds the event-time formulation over one variable per
// node: 1 < t(v) − t(u) < Ξ for message edges and t(v) − t(u) > 0 for local
// edges. It is feasible exactly when the graph is ABC-admissible for Ξ
// (the system internal/check solves with Bellman–Ford); comparing the two
// formulations is experiment E6.
func DifferenceSystem(g *causality.Graph, xi rat.Rat) *System {
	s := &System{NumVars: g.NumNodes()}
	for i, e := range g.Edges() {
		u, v := int(e.From), int(e.To)
		switch e.Kind {
		case causality.Message:
			up := make([]rat.Rat, s.NumVars)
			up[v] = rat.One
			up[u] = rat.FromInt(-1)
			s.AddRow(up, xi, fmt.Sprintf("msg-upper(e%d)", i))
			lo := make([]rat.Rat, s.NumVars)
			lo[v] = rat.FromInt(-1)
			lo[u] = rat.One
			s.AddRow(lo, rat.FromInt(-1), fmt.Sprintf("msg-lower(e%d)", i))
		case causality.Local:
			lo := make([]rat.Rat, s.NumVars)
			lo[v] = rat.FromInt(-1)
			lo[u] = rat.One
			s.AddRow(lo, rat.Zero, fmt.Sprintf("local(e%d)", i))
		}
	}
	return s
}
