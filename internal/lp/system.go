// Package lp implements the linear-inequality machinery of Section 4.1 of
// the ABC paper in executable form: systems of strict inequalities Ax < b
// over exact rationals, Fourier–Motzkin elimination deciding feasibility,
// sample solutions for feasible systems, and Farkas certificates
// (non-negative row combinations y with yᵀA = 0 and yᵀb <= 0) refuting
// infeasible ones — the objects of the paper's Theorem 10 (Carver's
// variant of Farkas' lemma).
//
// Two system builders mirror the paper: FromGraph constructs exactly the
// matrix of Fig. 6 (variables are message weights; rows are the bounds
// 1 < τ(e) < Ξ and one row per relevant/non-relevant cycle), and
// DifferenceSystem constructs the equivalent event-time formulation that
// internal/check solves with Bellman–Ford. Their agreement on random
// graphs is experiment E6.
package lp

import (
	"errors"
	"fmt"

	"repro/internal/rat"
)

// Row is one strict inequality Σ Coeffs[j]·x[j] < B.
type Row struct {
	Coeffs []rat.Rat
	B      rat.Rat
	// Tag describes the row's origin (for diagnostics), e.g. "lower(3)",
	// "cycle(relevant 2)".
	Tag string
}

// System is a conjunction of strict linear inequalities over NumVars
// rational variables.
type System struct {
	NumVars int
	Rows    []Row
}

// AddRow appends the inequality Σ coeffs·x < b. Missing trailing
// coefficients are treated as zero.
func (s *System) AddRow(coeffs []rat.Rat, b rat.Rat, tag string) {
	row := Row{Coeffs: make([]rat.Rat, s.NumVars), B: b, Tag: tag}
	copy(row.Coeffs, coeffs)
	s.Rows = append(s.Rows, row)
}

// Solution is the outcome of Solve.
type Solution struct {
	// Feasible reports whether some x satisfies every row strictly.
	Feasible bool
	// X is a sample solution when Feasible.
	X []rat.Rat
	// Certificate, when infeasible, holds one multiplier per original row:
	// y >= 0 (not all zero) with yᵀA = 0 and yᵀb <= 0, refuting
	// feasibility per Farkas/Carver.
	Certificate []rat.Rat
}

// ErrTooLarge is returned when Fourier–Motzkin elimination exceeds the row
// budget (the method is worst-case doubly exponential; the paper-scale
// systems it exists for are tiny).
var ErrTooLarge = errors.New("lp: Fourier–Motzkin row budget exceeded")

// maxRows bounds intermediate system growth.
const maxRows = 200000

// trackedRow carries a row together with its provenance: the non-negative
// combination of original rows it was derived from.
type trackedRow struct {
	row  Row
	mult []rat.Rat // per original row
}

// Solve decides feasibility by Fourier–Motzkin elimination, producing a
// sample solution or a Farkas certificate.
func (s *System) Solve() (Solution, error) {
	// Track provenance for certificates.
	cur := make([]trackedRow, len(s.Rows))
	for i, r := range s.Rows {
		mult := make([]rat.Rat, len(s.Rows))
		mult[i] = rat.One
		coeffs := make([]rat.Rat, s.NumVars)
		copy(coeffs, r.Coeffs)
		cur[i] = trackedRow{row: Row{Coeffs: coeffs, B: r.B, Tag: r.Tag}, mult: mult}
	}

	// bounds[k] keeps the rows involving x_k at elimination time, for back
	// substitution.
	bounds := make([][]trackedRow, s.NumVars)

	for k := s.NumVars - 1; k >= 0; k-- {
		var lower, upper, rest []trackedRow
		for _, tr := range cur {
			c := tr.row.Coeffs[k]
			switch {
			case c.Sign() > 0:
				upper = append(upper, tr)
			case c.Sign() < 0:
				lower = append(lower, tr)
			default:
				rest = append(rest, tr)
			}
		}
		bounds[k] = append(append([]trackedRow{}, lower...), upper...)
		if len(lower)*len(upper)+len(rest) > maxRows {
			return Solution{}, ErrTooLarge
		}
		next := rest
		for _, lo := range lower {
			for _, up := range upper {
				next = append(next, combine(lo, up, k, s.NumVars, len(s.Rows)))
			}
		}
		cur = next
	}

	// All variables eliminated: rows are "0 < b".
	for _, tr := range cur {
		if tr.row.B.Sign() <= 0 {
			return Solution{Feasible: false, Certificate: tr.mult}, nil
		}
	}

	// Back-substitute a sample solution in increasing variable order.
	x := make([]rat.Rat, s.NumVars)
	for k := 0; k < s.NumVars; k++ {
		var lo, hi rat.Rat
		haveLo, haveHi := false, false
		for _, tr := range bounds[k] {
			c := tr.row.Coeffs[k]
			// residual = B − Σ_{j<k} coeff_j x_j (coeffs for j>k are zero at
			// this elimination stage).
			residual := tr.row.B
			for j := 0; j < k; j++ {
				if cj := tr.row.Coeffs[j]; cj.Sign() != 0 {
					residual = residual.Sub(cj.Mul(x[j]))
				}
			}
			bound := residual.Div(c)
			if c.Sign() > 0 { // x_k < bound
				if !haveHi || bound.Less(hi) {
					hi, haveHi = bound, true
				}
			} else { // x_k > bound
				if !haveLo || bound.Greater(lo) {
					lo, haveLo = bound, true
				}
			}
		}
		switch {
		case haveLo && haveHi:
			x[k] = lo.Add(hi).Div(rat.FromInt(2))
		case haveLo:
			x[k] = lo.Add(rat.One)
		case haveHi:
			x[k] = hi.Sub(rat.One)
		default:
			x[k] = rat.Zero
		}
	}
	return Solution{Feasible: true, X: x}, nil
}

// mulAddSparse returns a·l + b·u, skipping the arithmetic for zero
// entries. Rows and multiplier vectors are sparse (bound rows have one or
// two nonzero entries), so most slots take the zero-value shortcut.
func mulAddSparse(a, b, l, u rat.Rat) rat.Rat {
	switch {
	case l.Sign() == 0 && u.Sign() == 0:
		return rat.Zero
	case l.Sign() == 0:
		return b.Mul(u)
	case u.Sign() == 0:
		return a.Mul(l)
	}
	return a.Mul(l).Add(b.Mul(u))
}

// combine eliminates x_k from a lower row (negative coefficient) and an
// upper row (positive coefficient) with positive multipliers, preserving
// strictness and provenance.
func combine(lo, up trackedRow, k, numVars, numOrig int) trackedRow {
	cl := lo.row.Coeffs[k] // < 0
	cu := up.row.Coeffs[k] // > 0
	// new = cu·lo + (−cl)·up
	a, b := cu, cl.Neg()
	coeffs := make([]rat.Rat, numVars)
	for j := 0; j < numVars; j++ {
		coeffs[j] = mulAddSparse(a, b, lo.row.Coeffs[j], up.row.Coeffs[j])
	}
	mult := make([]rat.Rat, numOrig)
	for i := 0; i < numOrig; i++ {
		mult[i] = mulAddSparse(a, b, lo.mult[i], up.mult[i])
	}
	return trackedRow{
		row: Row{
			Coeffs: coeffs,
			B:      a.Mul(lo.row.B).Add(b.Mul(up.row.B)),
			Tag:    fmt.Sprintf("(%s)+(%s)", lo.row.Tag, up.row.Tag),
		},
		mult: mult,
	}
}

// Verify checks that x strictly satisfies every row.
func (s *System) Verify(x []rat.Rat) error {
	if len(x) != s.NumVars {
		return fmt.Errorf("lp: solution has %d vars, want %d", len(x), s.NumVars)
	}
	for i, r := range s.Rows {
		lhs := rat.Zero
		for j, c := range r.Coeffs {
			if c.Sign() == 0 {
				continue
			}
			lhs = lhs.Add(c.Mul(x[j]))
		}
		if !lhs.Less(r.B) {
			return fmt.Errorf("lp: row %d (%s) violated: %v !< %v", i, r.Tag, lhs, r.B)
		}
	}
	return nil
}

// VerifyCertificate checks a Farkas certificate: y >= 0, y ≠ 0, yᵀA = 0,
// yᵀb <= 0.
func (s *System) VerifyCertificate(y []rat.Rat) error {
	if len(y) != len(s.Rows) {
		return fmt.Errorf("lp: certificate has %d entries, want %d", len(y), len(s.Rows))
	}
	nonzero := false
	for i, v := range y {
		if v.Sign() < 0 {
			return fmt.Errorf("lp: certificate entry %d negative: %v", i, v)
		}
		if v.Sign() > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		return errors.New("lp: certificate is zero")
	}
	for j := 0; j < s.NumVars; j++ {
		col := rat.Zero
		for i, r := range s.Rows {
			if y[i].Sign() == 0 || r.Coeffs[j].Sign() == 0 {
				continue
			}
			col = col.Add(y[i].Mul(r.Coeffs[j]))
		}
		if col.Sign() != 0 {
			return fmt.Errorf("lp: yᵀA nonzero in column %d: %v", j, col)
		}
	}
	yb := rat.Zero
	for i, r := range s.Rows {
		yb = yb.Add(y[i].Mul(r.B))
	}
	if yb.Sign() > 0 {
		return fmt.Errorf("lp: yᵀb = %v > 0", yb)
	}
	return nil
}
