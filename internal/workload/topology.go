package workload

import (
	"fmt"

	"repro/internal/sim"
)

// TopologyParams declares the shared communication-graph axis for
// simulation sources: a textual topology spec (sim.ParseTopology syntax)
// plus the seed for the randomized generators. Append them to a source's
// Params and resolve with ResolveTopology; the axis then sweeps like any
// other parameter (`abcsim -sweep topology=full,ring,torus`).
func TopologyParams() []Param {
	return []Param{
		{Name: "topology", Kind: String, Default: "full",
			Doc: "communication graph: full, ring, torus[/RxC], regular/D, scalefree/M, islands/K"},
		{Name: "toposeed", Kind: Int64, Default: "1",
			Doc: "seed for randomized topology generators (regular, scalefree)"},
	}
}

// ResolveTopology builds the sim.Topology for the resolved values; nil
// means fully connected. The topology seed is deliberately separate from
// the job seed so a sweep varies delays across seeds while holding the
// graph fixed.
func ResolveTopology(v Values, n int) (sim.Topology, error) {
	topo, err := sim.ParseTopology(v.String("topology"), n, v.Int64("toposeed"))
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return topo, nil
}
