package workload

import (
	"repro/internal/runner"
	"repro/internal/sim"
)

// BroadcastSpawner returns the canonical traffic generator shared by the
// broadcast and theta workloads: every process broadcasts its step index
// on each of its first steps steps. The generator is stateless, so one
// ProcessFunc is shared by all N processes — at sparse scale a fresh
// closure per process is a visible slice of a run's allocations.
func BroadcastSpawner(steps int) func(sim.ProcessID) sim.Process {
	proc := sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
		if env.StepIndex() < steps {
			env.Broadcast(env.StepIndex())
		}
	})
	return func(sim.ProcessID) sim.Process { return proc }
}

// The broadcast workload is the registry's built-in minimal scenario:
// every process broadcasts on each of its first `target` steps under
// uniform delays. It has no algorithm-level claims — no domain verdict —
// which makes it the canonical substrate for admissibility sweeps
// (cmd/abcsim's historical default for -watch demos) and for registry
// plumbing tests that need a real simulation without domain coupling.
func init() {
	Register(Source{
		Name: "broadcast",
		Doc:  "all-to-all broadcast under uniform delays (no algorithm claims)",
		Params: append([]Param{
			{Name: "n", Kind: Int, Default: "4", Doc: "number of processes"},
			{Name: "target", Kind: Int, Default: "10", Doc: "broadcasting steps per process"},
			{Name: "xi", Kind: Rational, Default: "2", Doc: "model parameter Ξ for admissibility checks"},
			{Name: "min", Kind: Rational, Default: "1", Doc: "minimum message delay"},
			{Name: "max", Kind: Rational, Default: "3/2", Doc: "maximum message delay"},
			{Name: "maxevents", Kind: Int, Default: "0", Doc: "receive-event budget (0 = simulator default)"},
		}, append(TopologyParams(), append(FaultParams(), append(TraceParams(), ShardParams()...)...)...)...),
		Job: func(v Values, seed int64) (runner.Job, error) {
			topo, err := ResolveTopology(v, v.Int("n"))
			if err != nil {
				return runner.Job{}, err
			}
			// No algorithm, no adversary family: crash/script/recover
			// clauses carve holes in the traffic, the net-fault clauses
			// perturb its delivery, byz is rejected.
			faults, net, err := ResolveFaults(v, v.Int("n"), topo, nil)
			if err != nil {
				return runner.Job{}, err
			}
			cfg := sim.Config{
				N:         v.Int("n"),
				Spawn:     BroadcastSpawner(v.Int("target")),
				Faults:    faults,
				Net:       net,
				Delays:    sim.UniformDelay{Min: v.Rat("min"), Max: v.Rat("max")},
				Topology:  topo,
				Seed:      seed,
				MaxEvents: v.Int("maxevents"),
			}
			return runner.Job{Cfg: &cfg}, nil
		},
	})
}
