// Package workload is the unified scenario pipeline: a registry of named,
// self-describing workload sources spanning every application domain of
// the ABC paper — Byzantine clock synchronization (Alg. 1), lock-step
// rounds (Alg. 2), VLSI clock generation (§5.3), the ParSync and Θ-Model
// embeddings (§5.1–5.2), the Section 6 variants, and the paper's figure
// scenarios.
//
// A Source bundles the three things a scenario needs to ride the fleet:
// a declared parameter space (Params), a job generator mapping one
// parameter point and seed to a runner.Job, and an optional domain
// verdict running the scenario's theorem-level checks on the completed
// result. Everything above the domain layer is generic: runner.ParamGrid
// expands parameter axes into job batches, the fleet executes them with
// deterministic per-seed replay, cmd/abcsim sweeps any registered
// workload from the command line, and the conformance suite (in
// workload/all) pins determinism, trace-hash stability, and verdict
// agreement with the batch checker for every registration at once.
//
// Domain packages register themselves from init; import
// repro/internal/workload/all to link every registration. Adding a new
// scenario is one Register call — roughly fifty lines including its
// parameter space and domain checks.
package workload

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/rat"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Kind is the type of a workload parameter.
type Kind int

// Parameter kinds. Rational values use the exact rat syntax ("3/2").
const (
	Int Kind = iota
	Int64
	Rational
	Bool
	String
)

func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Int64:
		return "int64"
	case Rational:
		return "rational"
	case Bool:
		return "bool"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Param declares one tunable of a workload's parameter space.
type Param struct {
	Name string
	Kind Kind
	// Default is the value used when a sweep does not set the parameter,
	// rendered in the parameter's textual syntax. It must parse per Kind.
	Default string
	// Doc is a one-line description, printed by `abcsim -list`.
	Doc string
}

// checkValue validates a textual value against the parameter's kind.
func (p Param) checkValue(v string) error {
	var err error
	switch p.Kind {
	case Int:
		_, err = strconv.Atoi(v)
	case Int64:
		_, err = strconv.ParseInt(v, 10, 64)
	case Rational:
		_, err = rat.Parse(v)
	case Bool:
		_, err = strconv.ParseBool(v)
	case String:
		// any value is a string
	default:
		err = fmt.Errorf("unknown kind %v", p.Kind)
	}
	if err != nil {
		return fmt.Errorf("workload: param %s: %q is not a valid %v", p.Name, v, p.Kind)
	}
	return nil
}

// Values is a fully resolved assignment of a source's parameter space:
// every declared parameter has a validated textual value. Build one with
// Source.Resolve; the typed accessors cannot fail afterwards and panic on
// undeclared names or kind mismatches (programming errors, not runtime
// conditions).
type Values struct {
	source string
	params []Param
	vals   map[string]string
}

func (v Values) lookup(name string, kind Kind) string {
	for _, p := range v.params {
		if p.Name == name {
			if p.Kind != kind {
				panic(fmt.Sprintf("workload: %s param %s is %v, read as %v", v.source, name, p.Kind, kind))
			}
			return v.vals[name]
		}
	}
	panic(fmt.Sprintf("workload: %s has no param %s", v.source, name))
}

// Int returns an Int parameter.
func (v Values) Int(name string) int {
	n, _ := strconv.Atoi(v.lookup(name, Int))
	return n
}

// Int64 returns an Int64 parameter.
func (v Values) Int64(name string) int64 {
	n, _ := strconv.ParseInt(v.lookup(name, Int64), 10, 64)
	return n
}

// Rat returns a Rational parameter.
func (v Values) Rat(name string) rat.Rat {
	return rat.MustParse(v.lookup(name, Rational))
}

// Bool returns a Bool parameter.
func (v Values) Bool(name string) bool {
	b, _ := strconv.ParseBool(v.lookup(name, Bool))
	return b
}

// String returns a String parameter.
func (v Values) String(name string) string {
	return v.lookup(name, String)
}

// Map returns a copy of the resolved assignment as plain name→value
// pairs in each parameter's textual syntax — for callers serializing a
// parameter point (e.g. JSON result records).
func (v Values) Map() map[string]string {
	m := make(map[string]string, len(v.vals))
	for k, val := range v.vals {
		m[k] = val
	}
	return m
}

// Has reports whether the source declares the named parameter.
func (v Values) Has(name string) bool {
	for _, p := range v.params {
		if p.Name == name {
			return true
		}
	}
	return false
}

// Set returns a copy of the values with one parameter overridden; it
// validates like Resolve.
func (v Values) Set(name, value string) (Values, error) {
	for _, p := range v.params {
		if p.Name != name {
			continue
		}
		if err := p.checkValue(value); err != nil {
			return Values{}, err
		}
		vals := make(map[string]string, len(v.vals))
		for k, val := range v.vals {
			vals[k] = val
		}
		vals[name] = value
		return Values{source: v.source, params: v.params, vals: vals}, nil
	}
	return Values{}, fmt.Errorf("workload: %s has no param %q", v.source, name)
}

// Source is one registered workload: a parameter space, a job generator,
// and a domain verdict.
type Source struct {
	// Name is the registry key (e.g. "clocksync").
	Name string
	// Doc is a one-line description of the scenario.
	Doc string
	// Params declares the parameter space. Names must be unique and
	// defaults must parse.
	Params []Param
	// Job builds the fleet job for one parameter point and seed. The
	// returned job may preset Xi/Ratio/Watch (trace scenarios preset their
	// figure's Ξ, simulation scenarios usually leave Xi to the sweep
	// decoration); Key may be left empty for the sweep to fill.
	Job func(v Values, seed int64) (runner.Job, error)
	// Verdict, when non-nil, runs the workload's domain-level checks —
	// theorem monitors, protocol invariants, model comparisons — on the
	// completed job result. It is wired into runner.Job.Post by Jobs, so
	// failures land in JobResult.CheckErr and runner.Stats.CheckFailed.
	Verdict func(v Values, r *runner.JobResult) error
	// VerdictNeedsTrace declares that Verdict reads the recorded events,
	// messages, or execution graph, so it cannot run under bounded trace
	// retention. Resolve rejects trace=window/K and trace=none for such
	// sources. Verdicts that inspect only fault flags and final process
	// states leave it false and keep working in every retention mode.
	VerdictNeedsTrace bool
}

// Resolve validates overrides against the parameter space and fills
// defaults, returning the complete assignment. Unknown names and values
// that do not parse per their declared kind are errors.
func (s Source) Resolve(overrides map[string]string) (Values, error) {
	vals := make(map[string]string, len(s.Params))
	for _, p := range s.Params {
		vals[p.Name] = p.Default
	}
	for name, value := range overrides {
		found := false
		for _, p := range s.Params {
			if p.Name != name {
				continue
			}
			if err := p.checkValue(value); err != nil {
				return Values{}, err
			}
			vals[name] = value
			found = true
			break
		}
		if !found {
			return Values{}, fmt.Errorf("workload: %s has no param %q (have %v)", s.Name, name, s.paramNames())
		}
	}
	v := Values{source: s.Name, params: s.Params, vals: vals}
	if v.Has("trace") {
		_, ret, err := ResolveRetention(v)
		if err != nil {
			return Values{}, err
		}
		if ret.Mode != sim.RetainFullMode && s.VerdictNeedsTrace {
			return Values{}, fmt.Errorf("workload: %s: its domain verdict reads the recorded trace, which trace=%s discards; use trace=full",
				s.Name, v.String("trace"))
		}
	}
	return v, nil
}

func (s Source) paramNames() []string {
	names := make([]string, len(s.Params))
	for i, p := range s.Params {
		names[i] = p.Name
	}
	return names
}

// JobOptions decorates generated jobs for one sweep.
type JobOptions struct {
	// Xi overrides the admissibility-check parameter: when positive it is
	// stamped on every job, replacing both the source's preset and the
	// "xi" parameter. Zero keeps the source's choice (the job's preset Xi
	// if any, else the resolved "xi" parameter if declared).
	Xi rat.Rat
	// Watch streams the ABC check through the incremental engine while
	// each simulation runs (runner.Job.Watch); requires an effective Ξ and
	// simulation (Cfg) jobs.
	Watch bool
	// Ratio requests the exact critical-ratio search on every job.
	Ratio bool
	// NoVerdict suppresses the source's domain verdict (Job.Post stays
	// nil). Callers that recompute the domain checks themselves — e.g.
	// experiments reporting each theorem individually — use it to avoid
	// paying for the checks twice.
	NoVerdict bool
}

// decorate applies sweep options, the trace-retention sink, and the
// domain verdict to one job. Bounded retention restricts the decoration:
// watching (the incremental checker) works on a window but not on
// trace=none, and the batch Xi / critical-ratio analyses — which replay
// the complete trace — are silently skipped rather than handed a trace
// that cannot support them.
func (s Source) decorate(job runner.Job, v Values, opt JobOptions) (runner.Job, error) {
	ret := sim.Retention{Mode: sim.RetainFullMode}
	if job.Cfg != nil {
		sink, r, err := ResolveRetention(v)
		if err != nil {
			return runner.Job{}, err
		}
		if sink != nil && r.Mode != sim.RetainFullMode {
			ret = r
			cfg := *job.Cfg
			cfg.Sink = sink
			job.Cfg = &cfg
		}
	}
	if job.Cfg != nil && v.Has("shards") {
		// shards=1 is stamped too: it pins the serial engine even when the
		// fleet-level runner.Options.Shards would otherwise parallelize.
		if n := v.Int("shards"); n != 0 && job.Cfg.Shards == 0 {
			cfg := *job.Cfg
			cfg.Shards = n
			job.Cfg = &cfg
		}
	}
	if opt.Xi.Sign() > 0 {
		job.Xi = opt.Xi
	} else if job.Xi.Sign() <= 0 && v.Has("xi") {
		job.Xi = v.Rat("xi")
	}
	if opt.Watch {
		job.Watch = true
	}
	if opt.Ratio {
		job.Ratio = true
	}
	switch ret.Mode {
	case sim.RetainNoneMode:
		if job.Watch {
			return runner.Job{}, fmt.Errorf("workload: %s: watching requires retained events; use trace=full or trace=window/K", s.Name)
		}
		job.Xi, job.Ratio = rat.Rat{}, false
	case sim.RetainWindowMode:
		if !job.Watch {
			// Batch analyses need the complete trace; only the incremental
			// watcher can check admissibility over a sliding window.
			job.Xi, job.Ratio = rat.Rat{}, false
		}
	}
	if s.Verdict != nil && job.Post == nil && !opt.NoVerdict {
		verdict, vals := s.Verdict, v
		job.Post = func(r *runner.JobResult) error { return verdict(vals, r) }
	}
	return job, nil
}

// Jobs expands one parameter point across seeds into decorated fleet jobs:
// Xi/Watch/Ratio per opt, the domain verdict wired into Job.Post, keys
// "name/seed=N".
func (s Source) Jobs(v Values, seeds []int64, opt JobOptions) ([]runner.Job, error) {
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	jobs := make([]runner.Job, 0, len(seeds))
	for _, seed := range seeds {
		job, err := s.Job(v, seed)
		if err != nil {
			return nil, fmt.Errorf("workload: %s seed=%d: %w", s.Name, seed, err)
		}
		if job, err = s.decorate(job, v, opt); err != nil {
			return nil, err
		}
		if job.Key == "" {
			job.Key = fmt.Sprintf("%s/seed=%d", s.Name, seed)
		}
		jobs = append(jobs, job)
	}
	return jobs, nil
}

// Grid expands a multi-valued parameter sweep through runner.ParamGrid:
// each axis varies one declared parameter, base supplies every other
// value, seeds are the innermost axis. Jobs are decorated as in Jobs.
func (s Source) Grid(base Values, axes []runner.Axis, seeds []int64, opt JobOptions) ([]runner.Job, error) {
	for _, ax := range axes {
		if !base.Has(ax.Param) {
			return nil, fmt.Errorf("workload: %s has no param %q", s.Name, ax.Param)
		}
	}
	g := runner.ParamGrid{
		Name:  s.Name,
		Axes:  axes,
		Seeds: seeds,
		Make: func(params map[string]string, seed int64) (runner.Job, error) {
			v := base
			var err error
			for name, value := range params {
				if v, err = v.Set(name, value); err != nil {
					return runner.Job{}, err
				}
			}
			job, err := s.Job(v, seed)
			if err != nil {
				return runner.Job{}, err
			}
			return s.decorate(job, v, opt)
		},
	}
	return g.Jobs()
}

// registry is the process-wide source table, written from package inits.
var registry = struct {
	sync.RWMutex
	sources map[string]Source
}{sources: make(map[string]Source)}

// Register adds a source to the registry. It panics on duplicate names,
// empty names, missing job generators, duplicate parameter names, or
// defaults that do not parse — registration happens at init time, where a
// bad source is a programming error.
func Register(s Source) {
	if s.Name == "" {
		panic("workload: Register with empty name")
	}
	if s.Job == nil {
		panic(fmt.Sprintf("workload: source %s has no job generator", s.Name))
	}
	seen := make(map[string]bool, len(s.Params))
	for _, p := range s.Params {
		if p.Name == "" || seen[p.Name] {
			panic(fmt.Sprintf("workload: source %s: empty or duplicate param %q", s.Name, p.Name))
		}
		seen[p.Name] = true
		if err := p.checkValue(p.Default); err != nil {
			panic(fmt.Sprintf("workload: source %s: bad default: %v", s.Name, err))
		}
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.sources[s.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate source %q", s.Name))
	}
	registry.sources[s.Name] = s
}

// Lookup returns the named source.
func Lookup(name string) (Source, bool) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.sources[name]
	return s, ok
}

// Names returns the registered workload names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.sources))
	for name := range registry.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
