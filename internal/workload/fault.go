package workload

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rat"
	"repro/internal/sim"
)

// Fault injection as a first-class, sweepable workload axis. FaultParams
// declares a textual fault spec alongside the seed for randomized
// adversaries; ResolveFaults turns the resolved values into the
// sim.Config fault map. The spec sweeps like any other parameter
// (`abcsim -sweep faults=none,crash/1@0,crash/1@3` for crash-at-step
// grids, `-sweep faults=byz/1@20,byz/1@60` for Byzantine budgets), so
// every registered source shares one fault vocabulary instead of
// hand-built sim.Fault maps.
//
// Spec grammar — "none", or clauses joined by '+' (never ',', which
// separates sweep values):
//
//	crash/K[@S]   K processes crash after S computing steps (default 0:
//	              silent from the start, not even a wake-up step)
//	byz/K[@B]     K live Byzantine adversaries with step budget B
//	              (default 60), built by the source's ByzFactory
//	script/K[@T]  K scripted-message adversaries, each injecting one junk
//	              payload at time T (default 0) to its smallest
//	              out-neighbor under the resolved topology (itself when
//	              the topology gives it no out-links); the processes
//	              otherwise run the correct algorithm but count as faulty
//
// Faulty IDs are assigned n-1 downward in clause order, matching the
// repository convention (clocksync.Adversaries, vlsi's silent modules).
// Sources validate the total against their own resilience bound f via
// len(faults).
func FaultParams() []Param {
	return []Param{
		{Name: "faults", Kind: String, Default: "none",
			Doc: "fault spec: none, or '+'-joined crash/K[@S], byz/K[@B], script/K[@T] (IDs n-1 downward)"},
		{Name: "faultseed", Kind: Int64, Default: "-1",
			Doc: "seed for Byzantine adversaries; -1 derives it from the job seed"},
	}
}

// ByzFactory builds a source's i-th live Byzantine adversary for process
// id with the given step budget. Sources without a live adversary family
// pass nil, which rejects byz clauses at job build.
type ByzFactory func(i int, id sim.ProcessID, budget int) sim.Process

// faultClause is one parsed spec clause.
type faultClause struct {
	kind   string
	k      int
	step   int     // crash: CrashAfter
	budget int     // byz: adversary step budget
	at     rat.Rat // script: injection time
}

// parseFaults parses the spec grammar documented on FaultParams.
func parseFaults(spec string) ([]faultClause, error) {
	if spec == "none" || spec == "" {
		return nil, nil
	}
	var clauses []faultClause
	for _, part := range strings.Split(spec, "+") {
		kind, rest, ok := strings.Cut(part, "/")
		if !ok {
			return nil, fmt.Errorf("workload: fault clause %q: want kind/K[@arg]", part)
		}
		ks, arg, hasArg := strings.Cut(rest, "@")
		k, err := strconv.Atoi(ks)
		if err != nil || k < 0 {
			return nil, fmt.Errorf("workload: fault clause %q: bad count %q", part, ks)
		}
		c := faultClause{kind: kind, k: k, step: 0, budget: 60}
		switch kind {
		case "crash":
			if hasArg {
				if c.step, err = strconv.Atoi(arg); err != nil || c.step < 0 {
					return nil, fmt.Errorf("workload: fault clause %q: bad crash step %q", part, arg)
				}
			}
		case "byz":
			if hasArg {
				if c.budget, err = strconv.Atoi(arg); err != nil || c.budget < 1 {
					return nil, fmt.Errorf("workload: fault clause %q: bad budget %q", part, arg)
				}
			}
		case "script":
			if hasArg {
				if c.at, err = rat.Parse(arg); err != nil || c.at.Sign() < 0 {
					return nil, fmt.Errorf("workload: fault clause %q: bad time %q", part, arg)
				}
			}
		default:
			return nil, fmt.Errorf("workload: fault clause %q: unknown kind %q (want crash, byz, script)", part, kind)
		}
		clauses = append(clauses, c)
	}
	return clauses, nil
}

// scriptTarget picks the deterministic recipient of a scripted send from
// p: the smallest process p is linked to (0 under the fully connected
// default), itself when the topology gives it no out-links — self-sends
// are always legal (see sim.Fault).
func scriptTarget(p sim.ProcessID, n int, topo sim.Topology) sim.ProcessID {
	for q := sim.ProcessID(0); int(q) < n; q++ {
		if q == p {
			continue
		}
		if topo == nil || topo.Linked(p, q) {
			return q
		}
	}
	return p
}

// SharedOrLegacyFaults resolves the shared fault axis unless the
// source's legacy fault switch (clocksync/lockstep `adversaries`, vlsi
// `silent`) is engaged, in which case legacy supplies the map and a
// non-none spec is a conflict error — both conventions assign IDs n-1
// downward, so combining them would double-book processes silently.
func SharedOrLegacyFaults(v Values, n int, topo sim.Topology, byz ByzFactory,
	legacyOn bool, legacyName string, legacy func() map[sim.ProcessID]sim.Fault) (map[sim.ProcessID]sim.Fault, error) {
	if legacyOn {
		if spec := v.String("faults"); spec != "none" && spec != "" {
			return nil, fmt.Errorf("workload: %s: fault spec %q conflicts with %s (both assign IDs n-1 downward)",
				v.source, spec, legacyName)
		}
		return legacy(), nil
	}
	return ResolveFaults(v, n, topo, byz)
}

// ResolveFaults builds the fault map for the resolved values: the spec's
// clauses claim IDs n-1 downward, Byzantine slots are filled by byz, and
// scripted slots inject one junk payload routed by topo. A nil map means
// no faults. Callers validate the returned map's size against their own
// resilience bound.
func ResolveFaults(v Values, n int, topo sim.Topology, byz ByzFactory) (map[sim.ProcessID]sim.Fault, error) {
	clauses, err := parseFaults(v.String("faults"))
	if err != nil {
		return nil, err
	}
	total := 0
	for _, c := range clauses {
		total += c.k
	}
	if total == 0 {
		return nil, nil
	}
	if total > n {
		return nil, fmt.Errorf("workload: fault spec %q claims %d processes, system has %d", v.String("faults"), total, n)
	}
	faults := make(map[sim.ProcessID]sim.Fault, total)
	next := n - 1 // IDs assigned downward in clause order
	i := 0        // running adversary index across byz clauses
	for _, c := range clauses {
		for j := 0; j < c.k; j++ {
			id := sim.ProcessID(next)
			next--
			switch c.kind {
			case "crash":
				faults[id] = sim.Crash(c.step)
			case "byz":
				if byz == nil {
					return nil, fmt.Errorf("workload: %s declares no Byzantine adversary family (fault spec %q)", v.source, v.String("faults"))
				}
				faults[id] = sim.ByzantineFault(byz(i, id, c.budget))
				i++
			case "script":
				faults[id] = sim.Fault{CrashAfter: sim.NeverCrash, Script: []sim.ScriptedSend{
					{At: c.at, To: scriptTarget(id, n, topo), Payload: fmt.Sprintf("noise/%d", id)},
				}}
			}
		}
	}
	return faults, nil
}
