package workload

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rat"
	"repro/internal/sim"
)

// Fault injection as a first-class, sweepable workload axis. FaultParams
// declares a textual fault spec alongside the seed for randomized
// adversaries; ResolveFaults turns the resolved values into the
// sim.Config fault map and the message-level fault layer. The spec sweeps
// like any other parameter (`abcsim -sweep faults=none,crash/1@0,crash/1@3`
// for crash-at-step grids, `-sweep faults=drop/0.1,drop/0.3` for loss
// rates), so every registered source shares one fault vocabulary instead
// of hand-built sim.Fault maps.
//
// Spec grammar — "none", or clauses joined by '+' (never ',', which
// separates sweep values):
//
//	crash/K[@S]        K processes crash after S computing steps (default
//	                   0: silent from the start, not even a wake-up step)
//	byz/K[@B]          K live Byzantine adversaries with step budget B
//	                   (default 60), built by the source's ByzFactory
//	script/K[@T]       K scripted-message adversaries, each injecting one
//	                   junk payload at time T (default 0) to its smallest
//	                   out-neighbor under the resolved topology (itself
//	                   when the topology gives it no out-links); the
//	                   processes otherwise run the correct algorithm but
//	                   count as faulty
//	recover/K@S..E     K recoverable processes, down over [S, E) and
//	                   resuming per the recovery=/inflight= parameters;
//	                   repeated recover clauses with the same explicit
//	                   target merge into one multi-interval schedule
//	drop/P             every cross-process message is lost i.i.d. with
//	                   probability P in [0, 1]
//	dup/P              every delivered cross-process message is delivered
//	                   twice with probability P
//	spike/P[@D]        every delivery is delayed by an extra D (default 1)
//	                   with probability P
//	partition/SPEC@S..E  transient partition over [S, E); SPEC is "halves"
//	                   (processes 0..⌈n/2⌉-1 vs the rest) or pI (process I
//	                   vs everyone else)
//
// Process-claiming clauses (crash, byz, script, recover) take either a
// count K — IDs assigned n-1 downward in clause order, matching the
// repository convention (clocksync.Adversaries, vlsi's silent modules) —
// or an explicit target pI (e.g. recover/p0@4..12 to take down process 0,
// a leader, specifically). Sources validate the total against their own
// resilience bound f via len(faults).
func FaultParams() []Param {
	return []Param{
		{Name: "faults", Kind: String, Default: "none",
			Doc: "fault spec: none, or '+'-joined crash/K[@S], byz/K[@B], script/K[@T], recover/K@S..E, drop/P, dup/P, spike/P[@D], partition/halves|pI@S..E (K is a count or an explicit pI target)"},
		{Name: "faultseed", Kind: Int64, Default: "-1",
			Doc: "seed for Byzantine adversaries; -1 derives it from the job seed"},
		{Name: "recovery", Kind: String, Default: "durable",
			Doc: "state a recover/ process resumes with: durable (keeps its state) or amnesia (respawned from scratch)"},
		{Name: "inflight", Kind: String, Default: "drop",
			Doc: "messages arriving during a down interval: drop (unprocessed receptions) or hold (deferred to recovery)"},
	}
}

// ByzFactory builds a source's i-th live Byzantine adversary for process
// id with the given step budget. Sources without a live adversary family
// pass nil, which rejects byz clauses at job build.
type ByzFactory func(i int, id sim.ProcessID, budget int) sim.Process

// faultClause is one parsed spec clause, remembering its position and raw
// text so every downstream error can name the offending token.
type faultClause struct {
	pos    int    // 1-based clause position within the spec
	text   string // raw clause text
	kind   string
	k      int           // claimed process count (count-form clauses)
	target sim.ProcessID // explicit pI target; -1 for count-form
	step   int           // crash: CrashAfter
	budget int           // byz: adversary step budget
	at     rat.Rat       // script: injection time
	from   rat.Rat       // recover, partition: interval start
	until  rat.Rat       // recover, partition: interval end
	prob   float64       // drop, dup, spike: probability
	extra  rat.Rat       // spike: added delay
	half   bool          // partition/halves
}

// clauseErr formats a parse or resolution error naming the clause's
// position and text, so a malformed multi-clause spec points at the
// offending token rather than reporting a generic failure.
func clauseErr(pos int, text, format string, args ...any) error {
	return fmt.Errorf("workload: faults clause %d (%q): %s", pos, text, fmt.Sprintf(format, args...))
}

// parseFaults parses the spec grammar documented on FaultParams.
func parseFaults(spec string) ([]faultClause, error) {
	if spec == "none" || spec == "" {
		return nil, nil
	}
	var clauses []faultClause
	for i, part := range strings.Split(spec, "+") {
		c, err := parseClause(i+1, part)
		if err != nil {
			return nil, err
		}
		clauses = append(clauses, c)
	}
	return clauses, nil
}

// parseTarget parses the count position of a process-claiming clause:
// either a count K or an explicit target pI.
func (c *faultClause) parseTarget(val string) error {
	if rest, ok := strings.CutPrefix(val, "p"); ok {
		id, err := strconv.Atoi(rest)
		if err != nil || id < 0 {
			return clauseErr(c.pos, c.text, "bad target %q (want pI with I >= 0)", val)
		}
		c.target = sim.ProcessID(id)
		c.k = 1
		return nil
	}
	k, err := strconv.Atoi(val)
	if err != nil || k < 0 {
		return clauseErr(c.pos, c.text, "bad count %q", val)
	}
	c.k = k
	return nil
}

// parseSpan parses the S..E interval argument of recover and partition
// clauses.
func parseSpan(pos int, text, arg string) (from, until rat.Rat, err error) {
	fs, us, ok := strings.Cut(arg, "..")
	if !ok {
		return from, until, clauseErr(pos, text, "bad interval %q (want S..E)", arg)
	}
	if from, err = rat.Parse(fs); err != nil || from.Sign() < 0 {
		return from, until, clauseErr(pos, text, "bad interval start %q", fs)
	}
	if until, err = rat.Parse(us); err != nil {
		return from, until, clauseErr(pos, text, "bad interval end %q", us)
	}
	if !from.Less(until) {
		return from, until, clauseErr(pos, text, "empty interval %q", arg)
	}
	return from, until, nil
}

// parseProb parses the probability value of drop/dup/spike clauses.
func parseProb(pos int, text, val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, clauseErr(pos, text, "bad probability %q (want a value in [0, 1])", val)
	}
	return p, nil
}

func parseClause(pos int, text string) (faultClause, error) {
	c := faultClause{pos: pos, text: text, target: -1, budget: 60, extra: rat.One}
	kind, rest, ok := strings.Cut(text, "/")
	if !ok {
		return c, clauseErr(pos, text, "want kind/K[@arg]")
	}
	c.kind = kind
	val, arg, hasArg := strings.Cut(rest, "@")
	switch kind {
	case "crash", "byz", "script", "recover":
		if err := c.parseTarget(val); err != nil {
			return c, err
		}
	}
	var err error
	switch kind {
	case "crash":
		if hasArg {
			if c.step, err = strconv.Atoi(arg); err != nil || c.step < 0 {
				return c, clauseErr(pos, text, "bad crash step %q", arg)
			}
		}
	case "byz":
		if hasArg {
			if c.budget, err = strconv.Atoi(arg); err != nil || c.budget < 1 {
				return c, clauseErr(pos, text, "bad budget %q", arg)
			}
		}
	case "script":
		if hasArg {
			if c.at, err = rat.Parse(arg); err != nil || c.at.Sign() < 0 {
				return c, clauseErr(pos, text, "bad time %q", arg)
			}
		}
	case "recover":
		if !hasArg {
			return c, clauseErr(pos, text, "recover needs a down interval (want recover/K@S..E)")
		}
		if c.from, c.until, err = parseSpan(pos, text, arg); err != nil {
			return c, err
		}
	case "drop", "dup":
		if hasArg {
			return c, clauseErr(pos, text, "%s takes no @argument (got %q)", kind, arg)
		}
		if c.prob, err = parseProb(pos, text, val); err != nil {
			return c, err
		}
	case "spike":
		if c.prob, err = parseProb(pos, text, val); err != nil {
			return c, err
		}
		if hasArg {
			if c.extra, err = rat.Parse(arg); err != nil || c.extra.Sign() < 0 {
				return c, clauseErr(pos, text, "bad spike delay %q", arg)
			}
		}
	case "partition":
		if !hasArg {
			return c, clauseErr(pos, text, "partition needs an interval (want partition/SPEC@S..E)")
		}
		if rest, ok := strings.CutPrefix(val, "p"); ok {
			id, err := strconv.Atoi(rest)
			if err != nil || id < 0 {
				return c, clauseErr(pos, text, "bad partition spec %q (want halves or pI)", val)
			}
			c.target = sim.ProcessID(id)
		} else if val == "halves" {
			c.half = true
		} else {
			return c, clauseErr(pos, text, "bad partition spec %q (want halves or pI)", val)
		}
		if c.from, c.until, err = parseSpan(pos, text, arg); err != nil {
			return c, err
		}
	default:
		return c, clauseErr(pos, text, "unknown kind %q (want crash, byz, script, recover, drop, dup, spike, partition)", kind)
	}
	return c, nil
}

// scriptTarget picks the deterministic recipient of a scripted send from
// p: the smallest process p is linked to (0 under the fully connected
// default), itself when the topology gives it no out-links — self-sends
// are always legal (see sim.Fault).
func scriptTarget(p sim.ProcessID, n int, topo sim.Topology) sim.ProcessID {
	for q := sim.ProcessID(0); int(q) < n; q++ {
		if q == p {
			continue
		}
		if topo == nil || topo.Linked(p, q) {
			return q
		}
	}
	return p
}

// claimsProcess reports whether the clause kind claims a process slot
// (as opposed to configuring the message-level fault layer).
func (c *faultClause) claimsProcess() bool {
	switch c.kind {
	case "crash", "byz", "script", "recover":
		return true
	}
	return false
}

// resolvePolicies maps the recovery= and inflight= parameters onto the
// sim policies.
func resolvePolicies(v Values) (sim.RecoveryPolicy, sim.InflightPolicy, error) {
	recovery, inflight := sim.RecoverDurable, sim.InflightDrop
	switch s := v.String("recovery"); s {
	case "durable":
	case "amnesia":
		recovery = sim.RecoverAmnesia
	default:
		return 0, 0, fmt.Errorf("workload: recovery=%q: want durable or amnesia", s)
	}
	switch s := v.String("inflight"); s {
	case "drop":
	case "hold":
		inflight = sim.InflightHold
	default:
		return 0, 0, fmt.Errorf("workload: inflight=%q: want drop or hold", s)
	}
	return recovery, inflight, nil
}

// NetFaulty reports whether the resolved fault spec engages the
// message-level fault layer (drop, dup, spike, or partition clauses).
// Domain verdicts whose correctness arguments assume a reliable network
// use it to step aside — the admissibility verdict still stands on such
// runs. A spec that does not parse reports false; job construction
// surfaces the parse error.
func NetFaulty(v Values) bool {
	clauses, err := parseFaults(v.String("faults"))
	if err != nil {
		return false
	}
	for _, c := range clauses {
		if !c.claimsProcess() {
			return true
		}
	}
	return false
}

// Recovering reports whether the resolved fault spec contains recover
// clauses — verdicts that special-case down-then-up processes (e.g. Ω's
// leader re-election) branch on it.
func Recovering(v Values) bool {
	clauses, err := parseFaults(v.String("faults"))
	if err != nil {
		return false
	}
	for _, c := range clauses {
		if c.kind == "recover" {
			return true
		}
	}
	return false
}

// SharedOrLegacyFaults resolves the shared fault axis unless the
// source's legacy fault switch (clocksync/lockstep `adversaries`, vlsi
// `silent`) is engaged, in which case legacy supplies the map and a
// non-none spec is a conflict error — both conventions assign IDs n-1
// downward, so combining them would double-book processes silently.
func SharedOrLegacyFaults(v Values, n int, topo sim.Topology, byz ByzFactory,
	legacyOn bool, legacyName string, legacy func() map[sim.ProcessID]sim.Fault) (map[sim.ProcessID]sim.Fault, *sim.NetFaults, error) {
	if legacyOn {
		if spec := v.String("faults"); spec != "none" && spec != "" {
			return nil, nil, fmt.Errorf("workload: %s: fault spec %q conflicts with %s (both assign IDs n-1 downward)",
				v.source, spec, legacyName)
		}
		return legacy(), nil, nil
	}
	return ResolveFaults(v, n, topo, byz)
}

// insertInterval inserts iv into the schedule keeping it sorted by From.
// Overlaps are left for sim.Run's schedule validation to reject.
func insertInterval(down []sim.Interval, iv sim.Interval) []sim.Interval {
	i := len(down)
	for i > 0 && iv.From.Less(down[i-1].From) {
		i--
	}
	down = append(down, sim.Interval{})
	copy(down[i+1:], down[i:])
	down[i] = iv
	return down
}

// ResolveFaults builds the fault map and the message-level fault layer
// for the resolved values: process-claiming clauses claim IDs n-1
// downward (or their explicit pI targets), Byzantine slots are filled by
// byz, scripted slots inject one junk payload routed by topo, and
// drop/dup/spike/partition clauses assemble a sim.NetFaults. A nil map
// and nil NetFaults mean no faults. Callers validate the returned map's
// size against their own resilience bound.
func ResolveFaults(v Values, n int, topo sim.Topology, byz ByzFactory) (map[sim.ProcessID]sim.Fault, *sim.NetFaults, error) {
	spec := v.String("faults")
	clauses, err := parseFaults(spec)
	if err != nil {
		return nil, nil, err
	}
	if clauses == nil {
		return nil, nil, nil
	}
	recovery, inflight, err := resolvePolicies(v)
	if err != nil {
		return nil, nil, err
	}

	var net *sim.NetFaults
	ensureNet := func() *sim.NetFaults {
		if net == nil {
			net = &sim.NetFaults{}
		}
		return net
	}

	// Pass 1: assemble the network layer, register explicit process
	// claims, and count claimed slots. Repeated recover clauses with the
	// same explicit target merge (one process, several down intervals);
	// any other double claim is a spec error, named by clause position.
	type claim struct {
		pos  int
		kind string
	}
	explicit := make(map[sim.ProcessID]claim)
	total := 0
	for _, c := range clauses {
		switch c.kind {
		case "drop":
			if net != nil && net.Drop > 0 {
				return nil, nil, clauseErr(c.pos, c.text, "duplicate drop clause")
			}
			ensureNet().Drop = c.prob
		case "dup":
			if net != nil && net.Dup > 0 {
				return nil, nil, clauseErr(c.pos, c.text, "duplicate dup clause")
			}
			ensureNet().Dup = c.prob
		case "spike":
			if net != nil && net.Spike.Prob > 0 {
				return nil, nil, clauseErr(c.pos, c.text, "duplicate spike clause")
			}
			ensureNet().Spike = sim.SpikeRule{Prob: c.prob, Extra: c.extra}
		case "partition":
			pt := sim.Partition{From: c.from, Until: c.until}
			if c.half {
				for p := 0; p < (n+1)/2; p++ {
					pt.A = append(pt.A, sim.ProcessID(p))
				}
			} else {
				if int(c.target) >= n {
					return nil, nil, clauseErr(c.pos, c.text, "target p%d outside [0, %d)", c.target, n)
				}
				pt.A = []sim.ProcessID{c.target}
			}
			ensureNet().Partitions = append(ensureNet().Partitions, pt)
		default:
			if c.target >= 0 {
				if int(c.target) >= n {
					return nil, nil, clauseErr(c.pos, c.text, "target p%d outside [0, %d)", c.target, n)
				}
				if prev, ok := explicit[c.target]; ok {
					if !(prev.kind == "recover" && c.kind == "recover") {
						return nil, nil, clauseErr(c.pos, c.text, "process %d already claimed by clause %d", c.target, prev.pos)
					}
					continue // merged recover schedule: counted once
				}
				explicit[c.target] = claim{pos: c.pos, kind: c.kind}
			}
			total += c.k
		}
	}
	if total == 0 {
		return nil, net, nil
	}
	if total > n {
		return nil, nil, fmt.Errorf("workload: fault spec %q claims %d processes, system has %d", spec, total, n)
	}

	// Pass 2: apply process clauses in order. Count-form clauses take the
	// highest unclaimed IDs downward; explicit targets take their own.
	faults := make(map[sim.ProcessID]sim.Fault, total)
	next := n - 1
	takeNext := func() sim.ProcessID {
		for {
			id := sim.ProcessID(next)
			next--
			if _, ok := explicit[id]; !ok {
				return id // total <= n guarantees a free slot exists
			}
		}
	}
	bi := 0 // running adversary index across byz clauses
	for _, c := range clauses {
		if !c.claimsProcess() {
			continue
		}
		for j := 0; j < c.k; j++ {
			var id sim.ProcessID
			if c.target >= 0 {
				id = c.target
			} else {
				id = takeNext()
			}
			switch c.kind {
			case "crash":
				faults[id] = sim.Crash(c.step)
			case "byz":
				if byz == nil {
					return nil, nil, fmt.Errorf("workload: %s declares no Byzantine adversary family (fault spec %q)", v.source, spec)
				}
				faults[id] = sim.ByzantineFault(byz(bi, id, c.budget))
				bi++
			case "script":
				faults[id] = sim.Fault{CrashAfter: sim.NeverCrash, Script: []sim.ScriptedSend{
					{At: c.at, To: scriptTarget(id, n, topo), Payload: fmt.Sprintf("noise/%d", id)},
				}}
			case "recover":
				f, ok := faults[id]
				if !ok {
					f = sim.Fault{CrashAfter: sim.NeverCrash, Recovery: recovery, Inflight: inflight}
				}
				f.Down = insertInterval(f.Down, sim.Interval{From: c.from, Until: c.until})
				faults[id] = f
			}
		}
	}
	return faults, net, nil
}
