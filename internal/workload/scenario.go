package workload

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/rat"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// The scenario workload serves the paper's space–time diagrams
// (internal/scenario) as pre-built traces, selected by the fig parameter
// and checked at any Ξ. It registers here rather than in package scenario
// because the figures are the checker's own test ground truth: scenario
// must stay free of check/runner imports so the in-package tests of those
// packages can keep using it.
//
// The domain verdict pins each figure's ground truth: the exact critical
// ratio from the table below, and verdict consistency — admissible
// exactly when the critical ratio (if any) is below the checked Ξ.

// figSpec pins one paper figure: its builder and its exact critical ratio
// (the largest relevant-cycle ratio; nil when no relevant cycle
// constrains the execution, i.e. admissible for every Ξ > 1). The ratios
// are the figures' headline claims — Fig. 1 is 5/4, Fig. 2's combined
// cycle X ⊕ Y is 3, Fig. 3's violating cycle is 2, Figs. 4 and 9 are
// unconstrained.
type figSpec struct {
	build    func() *sim.Trace
	critical *rat.Rat
}

func ratPtr(r rat.Rat) *rat.Rat { return &r }

var figs = map[string]figSpec{
	"fig1": {func() *sim.Trace { return scenario.BuildFig1().Trace }, ratPtr(rat.New(5, 4))},
	"fig2": {func() *sim.Trace { return scenario.BuildFig2().Trace }, ratPtr(rat.FromInt(3))},
	"fig3": {func() *sim.Trace { return scenario.BuildFig3().Trace }, ratPtr(rat.FromInt(2))},
	"fig4": {func() *sim.Trace { return scenario.BuildFig4().Trace }, nil},
	"fig9": {func() *sim.Trace { return scenario.BuildFig9().Trace }, nil},
}

func figNames() []string {
	names := make([]string, 0, len(figs))
	for name := range figs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(Source{
		Name: "scenario",
		Doc:  "paper figure traces (" + strings.Join(figNames(), ", ") + ") with pinned critical ratios",
		Params: []Param{
			{Name: "fig", Kind: String, Default: "fig1", Doc: "figure to build: " + strings.Join(figNames(), " | ")},
			{Name: "xi", Kind: Rational, Default: "2", Doc: "model parameter Ξ for the admissibility check"},
		},
		Job: func(v Values, seed int64) (runner.Job, error) {
			spec, ok := figs[v.String("fig")]
			if !ok {
				return runner.Job{}, fmt.Errorf("scenario: unknown figure %q (have %s)",
					v.String("fig"), strings.Join(figNames(), ", "))
			}
			return runner.Job{Trace: spec.build()}, nil
		},
		Verdict: func(v Values, r *runner.JobResult) error {
			spec := figs[v.String("fig")]
			g := r.Graph
			if g == nil {
				g = causality.Build(r.Trace, causality.Options{})
			}
			crit, found, err := check.MaxRelevantRatio(g)
			if err != nil {
				return err
			}
			if spec.critical == nil {
				if found {
					return fmt.Errorf("scenario: %s should be unconstrained, found critical ratio %v", v.String("fig"), crit)
				}
			} else if !found || !crit.Equal(*spec.critical) {
				return fmt.Errorf("scenario: %s critical ratio = %v (found=%v), pinned %v",
					v.String("fig"), crit, found, *spec.critical)
			}
			if r.Verdict != nil {
				wantAdmissible := !found || crit.Less(r.Xi)
				if r.Verdict.Admissible != wantAdmissible {
					return fmt.Errorf("scenario: %s admissible=%v at Ξ=%v, but critical ratio %v demands %v",
						v.String("fig"), r.Verdict.Admissible, r.Xi, crit, wantAdmissible)
				}
			}
			return nil
		},
	})
}
