package workload

import (
	"fmt"

	"repro/internal/sim"
)

// TraceParams returns the shared trace-retention parameter declaration.
// Simulation sources append it to their parameter space (like
// TopologyParams); the sweep decoration then installs the corresponding
// sim.Sink on every generated job's Config:
//
//	trace=full      — keep the complete trace (the default)
//	trace=window/K  — sliding window of the last K events (feeds the
//	                  incremental watcher; batch analyses unavailable)
//	trace=none      — counters and stream digest only (throughput mode)
//
// Sources whose domain verdict reads the recorded events declare
// VerdictNeedsTrace, and Resolve rejects bounded retention for them.
func TraceParams() []Param {
	return []Param{{
		Name: "trace", Kind: String, Default: "full",
		Doc: "trace retention: full, window/K (last K events), or none (counters+hash only)",
	}}
}

// ResolveRetention parses the source's resolved "trace" parameter into a
// sink and its policy. Sources without the parameter get full retention.
func ResolveRetention(v Values) (sim.Sink, sim.Retention, error) {
	if !v.Has("trace") {
		return nil, sim.Retention{Mode: sim.RetainFullMode}, nil
	}
	sink, err := sim.ParseRetention(v.String("trace"))
	if err != nil {
		return nil, sim.Retention{}, fmt.Errorf("workload: %w", err)
	}
	return sink, sink.Retention(), nil
}
