package workload

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/rat"
	"repro/internal/runner"
	"repro/internal/sim"
)

// testSource returns a minimal simulation source for registry tests; each
// call builds fresh closures so tests can register under distinct names.
func testSource(name string) Source {
	return Source{
		Name: name,
		Doc:  "test source",
		Params: []Param{
			{Name: "n", Kind: Int, Default: "3", Doc: "processes"},
			{Name: "steps", Kind: Int, Default: "2", Doc: "broadcast steps"},
			{Name: "xi", Kind: Rational, Default: "2", Doc: "model parameter"},
			{Name: "label", Kind: String, Default: "", Doc: "free-form tag"},
			{Name: "strict", Kind: Bool, Default: "false", Doc: "a bool"},
			{Name: "budget", Kind: Int64, Default: "0", Doc: "an int64"},
		},
		Job: func(v Values, seed int64) (runner.Job, error) {
			cfg := sim.Config{
				N:      v.Int("n"),
				Spawn:  BroadcastSpawner(v.Int("steps")),
				Delays: sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
				Seed:   seed,
			}
			return runner.Job{Cfg: &cfg}, nil
		},
		Verdict: func(v Values, r *runner.JobResult) error {
			if v.Bool("strict") && r.Verdict != nil && !r.Verdict.Admissible {
				return fmt.Errorf("strict source saw inadmissible run")
			}
			return nil
		},
	}
}

func TestResolveDefaultsAndOverrides(t *testing.T) {
	s := testSource("resolve-test")
	v, err := s.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int("n") != 3 || v.Int("steps") != 2 || !v.Rat("xi").Equal(rat.FromInt(2)) {
		t.Errorf("defaults not applied: n=%d steps=%d xi=%v", v.Int("n"), v.Int("steps"), v.Rat("xi"))
	}
	if v.String("label") != "" || v.Bool("strict") || v.Int64("budget") != 0 {
		t.Error("zero-ish defaults not applied")
	}

	v, err = s.Resolve(map[string]string{"n": "5", "xi": "7/4", "strict": "true", "budget": "9000000000"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Int("n") != 5 || !v.Rat("xi").Equal(rat.New(7, 4)) || !v.Bool("strict") || v.Int64("budget") != 9000000000 {
		t.Errorf("overrides not applied: %d %v %v %d", v.Int("n"), v.Rat("xi"), v.Bool("strict"), v.Int64("budget"))
	}

	if _, err := s.Resolve(map[string]string{"nope": "1"}); err == nil {
		t.Error("unknown parameter accepted")
	}
	if _, err := s.Resolve(map[string]string{"n": "three"}); err == nil {
		t.Error("non-integer n accepted")
	}
	if _, err := s.Resolve(map[string]string{"xi": "not-a-rat"}); err == nil {
		t.Error("malformed rational accepted")
	}
	if _, err := s.Resolve(map[string]string{"strict": "maybe"}); err == nil {
		t.Error("malformed bool accepted")
	}
}

func TestValuesSetValidatesLikeResolve(t *testing.T) {
	s := testSource("set-test")
	v, err := s.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := v.Set("n", "7")
	if err != nil {
		t.Fatal(err)
	}
	if w.Int("n") != 7 {
		t.Errorf("Set did not apply: n=%d", w.Int("n"))
	}
	if v.Int("n") != 3 {
		t.Errorf("Set mutated the receiver: n=%d", v.Int("n"))
	}
	if _, err := v.Set("n", "x"); err == nil {
		t.Error("Set accepted a malformed value")
	}
	if _, err := v.Set("ghost", "1"); err == nil {
		t.Error("Set accepted an undeclared parameter")
	}
}

func TestValuesPanicsOnMisuse(t *testing.T) {
	s := testSource("panic-test")
	v, err := s.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("undeclared name", func() { v.Int("ghost") })
	mustPanic("kind mismatch", func() { v.String("n") })
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, s Source) {
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%s) did not panic", name)
			}
		}()
		Register(s)
	}
	ok := testSource("register-valid")
	Register(ok)
	mustPanic("duplicate", testSource("register-valid"))
	mustPanic("empty name", Source{Job: ok.Job})
	mustPanic("no job", Source{Name: "register-nojob"})
	bad := testSource("register-badparam")
	bad.Params[0].Default = "not-an-int"
	mustPanic("bad default", bad)
	dup := testSource("register-dupparam")
	dup.Params = append(dup.Params, dup.Params[0])
	mustPanic("duplicate param", dup)

	if _, found := Lookup("register-valid"); !found {
		t.Error("registered source not found")
	}
	if _, found := Lookup("never-registered"); found {
		t.Error("lookup invented a source")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
}

func TestJobsDecoration(t *testing.T) {
	s := testSource("jobs-test")
	v, err := s.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Default: Xi comes from the xi parameter, verdict wired into Post.
	jobs, err := s.Jobs(v, runner.Seeds(0, 3), JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("got %d jobs, want 3", len(jobs))
	}
	for i, job := range jobs {
		if !job.Xi.Equal(rat.FromInt(2)) {
			t.Errorf("job %d: Xi=%v, want 2 (from param)", i, job.Xi)
		}
		if job.Post == nil {
			t.Errorf("job %d: verdict not wired into Post", i)
		}
		want := fmt.Sprintf("jobs-test/seed=%d", i)
		if job.Key != want {
			t.Errorf("job %d: key %q, want %q", i, job.Key, want)
		}
	}

	// Option overrides: Xi replaces the param, Watch/Ratio stamped,
	// NoVerdict drops Post.
	jobs, err = s.Jobs(v, nil, JobOptions{Xi: rat.FromInt(3), Watch: true, Ratio: true, NoVerdict: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("got %d jobs, want 1 (default seed)", len(jobs))
	}
	job := jobs[0]
	if !job.Xi.Equal(rat.FromInt(3)) || !job.Watch || !job.Ratio || job.Post != nil {
		t.Errorf("options not applied: Xi=%v watch=%v ratio=%v post=%v",
			job.Xi, job.Watch, job.Ratio, job.Post != nil)
	}
}

func TestGridExpansionOrderAndKeys(t *testing.T) {
	s := testSource("grid-test")
	base, err := s.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Grid(base,
		[]runner.Axis{
			{Param: "n", Values: []string{"2", "3"}},
			{Param: "steps", Values: []string{"1", "2"}},
		},
		runner.Seeds(0, 2), JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Row-major: first axis outermost, seeds innermost.
	want := []string{
		"grid-test/n=2/steps=1/seed=0", "grid-test/n=2/steps=1/seed=1",
		"grid-test/n=2/steps=2/seed=0", "grid-test/n=2/steps=2/seed=1",
		"grid-test/n=3/steps=1/seed=0", "grid-test/n=3/steps=1/seed=1",
		"grid-test/n=3/steps=2/seed=0", "grid-test/n=3/steps=2/seed=1",
	}
	if len(jobs) != len(want) {
		t.Fatalf("got %d jobs, want %d", len(jobs), len(want))
	}
	for i, job := range jobs {
		if job.Key != want[i] {
			t.Errorf("job %d: key %q, want %q", i, job.Key, want[i])
		}
		if job.Cfg == nil {
			t.Fatalf("job %d has no config", i)
		}
	}
	// The axis values really reached the configs: n of the last job is 3.
	if jobs[len(jobs)-1].Cfg.N != 3 {
		t.Errorf("axis value not applied: N=%d", jobs[len(jobs)-1].Cfg.N)
	}

	if _, err := s.Grid(base, []runner.Axis{{Param: "ghost", Values: []string{"1"}}}, nil, JobOptions{}); err == nil {
		t.Error("grid accepted an undeclared axis")
	}
	if _, err := s.Grid(base, []runner.Axis{{Param: "n", Values: []string{"bad"}}}, nil, JobOptions{}); err == nil {
		t.Error("grid accepted a malformed axis value")
	}
}

// TestBroadcastSourceRuns drives the built-in broadcast source end to end
// through the fleet: defaults resolve, jobs run, the ABC verdict lands.
func TestBroadcastSourceRuns(t *testing.T) {
	s, found := Lookup("broadcast")
	if !found {
		t.Fatal("broadcast source not registered")
	}
	v, err := s.Resolve(map[string]string{"n": "3", "target": "3"})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Jobs(v, runner.Seeds(1, 2), JobOptions{Ratio: true})
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := runner.Run(context.Background(), jobs, runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errored != 0 {
		t.Fatalf("errored jobs: %+v", results)
	}
	for _, r := range results {
		if r.Verdict == nil {
			t.Fatalf("%s: no verdict (Xi not decorated?)", r.Key)
		}
		if !r.Admissible() {
			t.Errorf("%s: broadcast defaults (Θ(3/2) delays) must be ABC(2)-admissible", r.Key)
		}
		if !strings.HasPrefix(r.Key, "broadcast/seed=") {
			t.Errorf("unexpected key %q", r.Key)
		}
	}
}
