package workload

import (
	"testing"

	"repro/internal/sim"
)

// FuzzParseFaults drives the faults= grammar with arbitrary specs: the
// parser must never panic, and every accepted spec must satisfy the
// grammar's invariants and resolve (or be rejected) cleanly against a
// small system. The seed corpus covers every clause kind, both target
// forms, the merge path, and the documented error classes.
func FuzzParseFaults(f *testing.F) {
	for _, spec := range []string{
		"none",
		"",
		"crash/1",
		"crash/2@3",
		"crash/p0@2",
		"byz/1@20+byz/1",
		"script/1@3/2",
		"recover/1@2..4",
		"recover/p0@4..12",
		"recover/p2@6..8+recover/p2@1..3",
		"drop/0.3",
		"dup/0.25",
		"spike/0.2@2",
		"spike/1",
		"partition/halves@2..5",
		"partition/p0@1..2",
		"crash/1+drop/0.1+dup/0.1+spike/0.1@1/2+partition/halves@1..2",
		"crash",
		"crash/x",
		"crash/-1",
		"crash/1@-2",
		"byz/1@0",
		"script/1@-1",
		"lost/1",
		"recover/1",
		"recover/1@3..3",
		"recover/1@x..2",
		"drop/2",
		"drop/0.5@1",
		"partition/halves",
		"partition/h@1..2",
		"drop/0.1+drop/0.2",
		"crash/p3+recover/p3@1..2",
		"+",
		"//",
		"@",
		"crash/9999999999999999999999",
		"recover/1@1/0..2",
	} {
		f.Add(spec)
	}
	byz := func(int, sim.ProcessID, int) sim.Process {
		return sim.ProcessFunc(func(*sim.Env, sim.Message) {})
	}
	f.Fuzz(func(t *testing.T, spec string) {
		clauses, err := parseFaults(spec)
		if err != nil {
			if clauses != nil {
				t.Fatalf("spec %q: error %v alongside clauses %v", spec, err, clauses)
			}
			return
		}
		for i, c := range clauses {
			if c.pos != i+1 {
				t.Fatalf("spec %q: clause %d has position %d", spec, i, c.pos)
			}
			if c.claimsProcess() {
				if c.k < 0 || (c.target >= 0 && c.k != 1) {
					t.Fatalf("spec %q: clause %d claims k=%d target=%d", spec, i, c.k, c.target)
				}
			}
			switch c.kind {
			case "drop", "dup", "spike":
				if c.prob < 0 || c.prob > 1 {
					t.Fatalf("spec %q: clause %d accepted probability %v", spec, i, c.prob)
				}
			case "recover", "partition":
				if c.from.Sign() < 0 || !c.from.Less(c.until) {
					t.Fatalf("spec %q: clause %d accepted interval [%v, %v)", spec, i, c.from, c.until)
				}
			}
		}
		// Accepted specs must resolve cleanly or be rejected with an
		// error — never panic, never claim more than n processes.
		v := faultValues(t, map[string]string{"faults": spec})
		faults, _, err := ResolveFaults(v, 4, nil, byz)
		if err != nil {
			return
		}
		if len(faults) > 4 {
			t.Fatalf("spec %q: resolved %d faults on a 4-process system", spec, len(faults))
		}
		for id := range faults {
			if id < 0 || id >= 4 {
				t.Fatalf("spec %q: fault for out-of-range process %d", spec, id)
			}
		}
	})
}
