package workload

import (
	"strings"
	"testing"

	"repro/internal/rat"
	"repro/internal/sim"
)

// faultValues resolves the shared fault axis with the given spec over a
// throwaway source that declares only FaultParams.
func faultValues(t *testing.T, overrides map[string]string) Values {
	t.Helper()
	s := Source{Name: "faulttest", Doc: "t", Params: FaultParams()}
	v, err := s.Resolve(overrides)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestResolveFaultsCrash(t *testing.T) {
	v := faultValues(t, map[string]string{"faults": "crash/2@3"})
	faults, net, err := ResolveFaults(v, 6, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net != nil {
		t.Fatalf("crash spec produced net faults %+v", net)
	}
	if len(faults) != 2 {
		t.Fatalf("got %d faults, want 2", len(faults))
	}
	// IDs n-1 downward, the clause's step as CrashAfter.
	for _, id := range []sim.ProcessID{5, 4} {
		f, ok := faults[id]
		if !ok {
			t.Fatalf("process %d not faulted (have %v)", id, faults)
		}
		if f.CrashAfter != 3 || f.Byzantine != nil || f.Script != nil {
			t.Errorf("process %d: %+v, want pure crash after 3", id, f)
		}
	}
	// Default step is 0 (silent from the start).
	v = faultValues(t, map[string]string{"faults": "crash/1"})
	faults, _, err = ResolveFaults(v, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f := faults[3]; f.CrashAfter != 0 {
		t.Errorf("default crash step = %d, want 0", f.CrashAfter)
	}
}

func TestResolveFaultsNone(t *testing.T) {
	for _, spec := range []string{"none", ""} {
		v := faultValues(t, map[string]string{"faults": spec})
		faults, net, err := ResolveFaults(v, 4, nil, nil)
		if err != nil || faults != nil || net != nil {
			t.Errorf("spec %q: got (%v, %v, %v), want (nil, nil, nil)", spec, faults, net, err)
		}
	}
}

func TestResolveFaultsByz(t *testing.T) {
	type call struct{ i, budget int }
	var calls []call
	byz := func(i int, id sim.ProcessID, budget int) sim.Process {
		calls = append(calls, call{i, budget})
		return sim.ProcessFunc(func(*sim.Env, sim.Message) {})
	}
	v := faultValues(t, map[string]string{"faults": "byz/2@20+byz/1"})
	faults, _, err := ResolveFaults(v, 8, nil, byz)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 3 {
		t.Fatalf("got %d faults, want 3", len(faults))
	}
	// The adversary index runs across clauses; budgets are per clause
	// with default 60.
	want := []call{{0, 20}, {1, 20}, {2, 60}}
	if len(calls) != len(want) {
		t.Fatalf("factory called %d times, want %d", len(calls), len(want))
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Errorf("call %d: %+v, want %+v", i, calls[i], want[i])
		}
	}
	for _, id := range []sim.ProcessID{7, 6, 5} {
		if faults[id].Byzantine == nil {
			t.Errorf("process %d has no Byzantine handler", id)
		}
	}

	// Without a factory, byz clauses are a configuration error.
	if _, _, err := ResolveFaults(v, 8, nil, nil); err == nil || !strings.Contains(err.Error(), "Byzantine") {
		t.Errorf("nil factory accepted byz clause: %v", err)
	}
}

func TestResolveFaultsScript(t *testing.T) {
	v := faultValues(t, map[string]string{"faults": "script/1@3/2"})
	faults, _, err := ResolveFaults(v, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := faults[3]
	if f.CrashAfter != sim.NeverCrash || len(f.Script) != 1 {
		t.Fatalf("process 3: %+v, want one scripted send and no crash", f)
	}
	s := f.Script[0]
	if !s.At.Equal(rat.New(3, 2)) || s.To != 0 {
		t.Errorf("scripted send %+v, want At=3/2 To=0 (smallest peer, full topology)", s)
	}

	// Under a (unidirectional) ring the target is the smallest linked
	// out-neighbor: 3's only out-link.
	faults, _, err = ResolveFaults(v, 4, sim.Ring(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if to := faults[3].Script[0].To; to != 0 {
		t.Errorf("ring scripted target = %d, want 0 (successor of 3 in Ring(4))", to)
	}
	faults, _, err = ResolveFaults(faultValues(t, map[string]string{"faults": "script/2"}), 5, sim.Ring(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if to := faults[3].Script[0].To; to != 4 {
		t.Errorf("ring scripted target for 3 = %d, want 4 (successor of 3 in Ring(5))", to)
	}
}

func TestResolveFaultsRecover(t *testing.T) {
	// Count form: n-1 downward, down over [2, 4), default policies.
	v := faultValues(t, map[string]string{"faults": "recover/2@2..4"})
	faults, net, err := ResolveFaults(v, 5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net != nil {
		t.Fatalf("recover spec produced net faults %+v", net)
	}
	if len(faults) != 2 {
		t.Fatalf("got %d faults, want 2", len(faults))
	}
	for _, id := range []sim.ProcessID{4, 3} {
		f := faults[id]
		if f.CrashAfter != sim.NeverCrash || len(f.Down) != 1 {
			t.Fatalf("process %d: %+v, want one down interval and no crash", id, f)
		}
		if !f.Down[0].From.Equal(rat.FromInt(2)) || !f.Down[0].Until.Equal(rat.FromInt(4)) {
			t.Errorf("process %d down over [%v, %v), want [2, 4)", id, f.Down[0].From, f.Down[0].Until)
		}
		if f.Recovery != sim.RecoverDurable || f.Inflight != sim.InflightDrop {
			t.Errorf("process %d policies (%v, %v), want defaults (durable, drop)", id, f.Recovery, f.Inflight)
		}
	}

	// Explicit target with non-default policies.
	v = faultValues(t, map[string]string{
		"faults": "recover/p0@4..12", "recovery": "amnesia", "inflight": "hold"})
	faults, _, err = ResolveFaults(v, 5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := faults[0]
	if !ok || len(faults) != 1 {
		t.Fatalf("explicit target: %v, want exactly process 0", faults)
	}
	if f.Recovery != sim.RecoverAmnesia || f.Inflight != sim.InflightHold {
		t.Errorf("policies (%v, %v), want (amnesia, hold)", f.Recovery, f.Inflight)
	}

	// Repeated recover clauses on the same target merge, sorted by start.
	v = faultValues(t, map[string]string{"faults": "recover/p2@6..8+recover/p2@1..3"})
	faults, _, err = ResolveFaults(v, 5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	f = faults[2]
	if len(faults) != 1 || len(f.Down) != 2 {
		t.Fatalf("merged schedule: %v, want process 2 with two intervals", faults)
	}
	if !f.Down[0].From.Equal(rat.One) || !f.Down[1].From.Equal(rat.FromInt(6)) {
		t.Errorf("intervals start at %v, %v, want sorted 1, 6", f.Down[0].From, f.Down[1].From)
	}
}

func TestResolveFaultsNet(t *testing.T) {
	v := faultValues(t, map[string]string{"faults": "drop/0.25+dup/0.1+spike/0.5@3/2+partition/halves@2..5"})
	faults, net, err := ResolveFaults(v, 6, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if faults != nil {
		t.Fatalf("net-only spec claimed processes: %v", faults)
	}
	if net == nil {
		t.Fatal("no net faults resolved")
	}
	if net.Drop != 0.25 || net.Dup != 0.1 {
		t.Errorf("drop/dup = %v/%v, want 0.25/0.1", net.Drop, net.Dup)
	}
	if net.Spike.Prob != 0.5 || !net.Spike.Extra.Equal(rat.New(3, 2)) {
		t.Errorf("spike = %+v, want prob 0.5 extra 3/2", net.Spike)
	}
	if len(net.Partitions) != 1 {
		t.Fatalf("got %d partitions, want 1", len(net.Partitions))
	}
	pt := net.Partitions[0]
	if !pt.From.Equal(rat.FromInt(2)) || !pt.Until.Equal(rat.FromInt(5)) {
		t.Errorf("partition over [%v, %v), want [2, 5)", pt.From, pt.Until)
	}
	// halves at n=6: side A is 0..2, side B the complement.
	if len(pt.A) != 3 || pt.A[0] != 0 || pt.A[2] != 2 || pt.B != nil {
		t.Errorf("halves sides A=%v B=%v, want A=[0 1 2] B=nil", pt.A, pt.B)
	}

	// pI partitions isolate one process; spike's default extra is 1.
	v = faultValues(t, map[string]string{"faults": "partition/p0@1..2+spike/1"})
	_, net, err = ResolveFaults(v, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Partitions) != 1 || len(net.Partitions[0].A) != 1 || net.Partitions[0].A[0] != 0 {
		t.Errorf("pI partition sides: %+v, want A=[0]", net.Partitions[0])
	}
	if !net.Spike.Extra.Equal(rat.One) {
		t.Errorf("default spike extra = %v, want 1", net.Spike.Extra)
	}

	// Net clauses compose with process clauses.
	v = faultValues(t, map[string]string{"faults": "crash/1+drop/0.5"})
	faults, net, err = ResolveFaults(v, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 1 || net == nil || net.Drop != 0.5 {
		t.Errorf("mixed spec: faults %v net %+v", faults, net)
	}

	if !NetFaulty(v) {
		t.Error("NetFaulty(crash/1+drop/0.5) = false")
	}
	if NetFaulty(faultValues(t, map[string]string{"faults": "crash/1"})) {
		t.Error("NetFaulty(crash/1) = true")
	}
	if !Recovering(faultValues(t, map[string]string{"faults": "recover/1@1..2"})) {
		t.Error("Recovering(recover/1@1..2) = false")
	}
	if Recovering(v) {
		t.Error("Recovering(crash/1+drop/0.5) = true")
	}
}

// TestResolveFaultsErrors pins the error text of malformed specs: every
// failure names the offending clause by position and raw text.
func TestResolveFaultsErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"crash", "want kind/K"},
		{"crash/x", "bad count"},
		{"crash/-1", "bad count"},
		{"crash/1@-2", "bad crash step"},
		{"byz/1@0", "bad budget"},
		{"script/1@-1", "bad time"},
		{"lost/1", "unknown kind"},
		{"crash/5", "claims 5 processes, system has 4"},
		{"crash/px", "bad target"},
		{"crash/p9", `clause 1 ("crash/p9"): target p9 outside [0, 4)`},
		{"recover/1", "recover needs a down interval"},
		{"recover/1@5", "bad interval"},
		{"recover/1@x..2", "bad interval start"},
		{"recover/1@1..y", "bad interval end"},
		{"recover/1@3..3", "empty interval"},
		{"drop/2", "bad probability"},
		{"drop/x", "bad probability"},
		{"drop/0.5@1", "drop takes no @argument"},
		{"dup/-0.5", "bad probability"},
		{"spike/0.5@-1", "bad spike delay"},
		{"partition/halves", "partition needs an interval"},
		{"partition/h@1..2", "bad partition spec"},
		{"partition/p9@1..2", "target p9 outside [0, 4)"},
		{"drop/0.1+drop/0.2", `clause 2 ("drop/0.2"): duplicate drop clause`},
		{"crash/p3+recover/p3@1..2", `clause 2 ("recover/p3@1..2"): process 3 already claimed by clause 1`},
		{"crash/1+crash/1@2+recover/1@1..2+crash/2", "claims 5 processes, system has 4"},
	}
	for _, tc := range cases {
		v := faultValues(t, map[string]string{"faults": tc.spec})
		_, _, err := ResolveFaults(v, 4, nil, func(int, sim.ProcessID, int) sim.Process {
			return sim.ProcessFunc(func(*sim.Env, sim.Message) {})
		})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("spec %q: got %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
	// Bad policy values are rejected once the spec engages recovery.
	v := faultValues(t, map[string]string{"faults": "recover/1@1..2", "recovery": "ephemeral"})
	if _, _, err := ResolveFaults(v, 4, nil, nil); err == nil || !strings.Contains(err.Error(), "want durable or amnesia") {
		t.Errorf("recovery=ephemeral: %v", err)
	}
	v = faultValues(t, map[string]string{"faults": "recover/1@1..2", "inflight": "queue"})
	if _, _, err := ResolveFaults(v, 4, nil, nil); err == nil || !strings.Contains(err.Error(), "want drop or hold") {
		t.Errorf("inflight=queue: %v", err)
	}
}

func TestSharedOrLegacyFaults(t *testing.T) {
	legacy := func() map[sim.ProcessID]sim.Fault {
		return map[sim.ProcessID]sim.Fault{3: sim.Silent()}
	}
	// Legacy switch on, no spec: the legacy map wins.
	v := faultValues(t, nil)
	faults, net, err := SharedOrLegacyFaults(v, 4, nil, nil, true, "adversaries=true", legacy)
	if err != nil || len(faults) != 1 || net != nil {
		t.Fatalf("legacy path: (%v, %v, %v)", faults, net, err)
	}
	// Both engaged: conflict error naming the legacy switch.
	v = faultValues(t, map[string]string{"faults": "crash/1"})
	if _, _, err := SharedOrLegacyFaults(v, 4, nil, nil, true, "adversaries=true", legacy); err == nil ||
		!strings.Contains(err.Error(), "adversaries=true") {
		t.Errorf("conflict not rejected: %v", err)
	}
	// Legacy off: the spec resolves through the shared axis.
	faults, _, err = SharedOrLegacyFaults(v, 4, nil, nil, false, "adversaries=true", legacy)
	if err != nil || len(faults) != 1 || faults[3].CrashAfter != 0 {
		t.Fatalf("shared path: (%v, %v)", faults, err)
	}
}
