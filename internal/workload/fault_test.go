package workload

import (
	"strings"
	"testing"

	"repro/internal/rat"
	"repro/internal/sim"
)

// faultValues resolves the shared fault axis with the given spec over a
// throwaway source that declares only FaultParams.
func faultValues(t *testing.T, overrides map[string]string) Values {
	t.Helper()
	s := Source{Name: "faulttest", Doc: "t", Params: FaultParams()}
	v, err := s.Resolve(overrides)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestResolveFaultsCrash(t *testing.T) {
	v := faultValues(t, map[string]string{"faults": "crash/2@3"})
	faults, err := ResolveFaults(v, 6, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 2 {
		t.Fatalf("got %d faults, want 2", len(faults))
	}
	// IDs n-1 downward, the clause's step as CrashAfter.
	for _, id := range []sim.ProcessID{5, 4} {
		f, ok := faults[id]
		if !ok {
			t.Fatalf("process %d not faulted (have %v)", id, faults)
		}
		if f.CrashAfter != 3 || f.Byzantine != nil || f.Script != nil {
			t.Errorf("process %d: %+v, want pure crash after 3", id, f)
		}
	}
	// Default step is 0 (silent from the start).
	v = faultValues(t, map[string]string{"faults": "crash/1"})
	faults, err = ResolveFaults(v, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f := faults[3]; f.CrashAfter != 0 {
		t.Errorf("default crash step = %d, want 0", f.CrashAfter)
	}
}

func TestResolveFaultsNone(t *testing.T) {
	for _, spec := range []string{"none", ""} {
		v := faultValues(t, map[string]string{"faults": spec})
		faults, err := ResolveFaults(v, 4, nil, nil)
		if err != nil || faults != nil {
			t.Errorf("spec %q: got (%v, %v), want (nil, nil)", spec, faults, err)
		}
	}
}

func TestResolveFaultsByz(t *testing.T) {
	type call struct{ i, budget int }
	var calls []call
	byz := func(i int, id sim.ProcessID, budget int) sim.Process {
		calls = append(calls, call{i, budget})
		return sim.ProcessFunc(func(*sim.Env, sim.Message) {})
	}
	v := faultValues(t, map[string]string{"faults": "byz/2@20+byz/1"})
	faults, err := ResolveFaults(v, 8, nil, byz)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 3 {
		t.Fatalf("got %d faults, want 3", len(faults))
	}
	// The adversary index runs across clauses; budgets are per clause
	// with default 60.
	want := []call{{0, 20}, {1, 20}, {2, 60}}
	if len(calls) != len(want) {
		t.Fatalf("factory called %d times, want %d", len(calls), len(want))
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Errorf("call %d: %+v, want %+v", i, calls[i], want[i])
		}
	}
	for _, id := range []sim.ProcessID{7, 6, 5} {
		if faults[id].Byzantine == nil {
			t.Errorf("process %d has no Byzantine handler", id)
		}
	}

	// Without a factory, byz clauses are a configuration error.
	if _, err := ResolveFaults(v, 8, nil, nil); err == nil || !strings.Contains(err.Error(), "Byzantine") {
		t.Errorf("nil factory accepted byz clause: %v", err)
	}
}

func TestResolveFaultsScript(t *testing.T) {
	v := faultValues(t, map[string]string{"faults": "script/1@3/2"})
	faults, err := ResolveFaults(v, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := faults[3]
	if f.CrashAfter != sim.NeverCrash || len(f.Script) != 1 {
		t.Fatalf("process 3: %+v, want one scripted send and no crash", f)
	}
	s := f.Script[0]
	if !s.At.Equal(rat.New(3, 2)) || s.To != 0 {
		t.Errorf("scripted send %+v, want At=3/2 To=0 (smallest peer, full topology)", s)
	}

	// Under a (unidirectional) ring the target is the smallest linked
	// out-neighbor: 3's only out-link.
	faults, err = ResolveFaults(v, 4, sim.Ring(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if to := faults[3].Script[0].To; to != 0 {
		t.Errorf("ring scripted target = %d, want 0 (successor of 3 in Ring(4))", to)
	}
	faults, err = ResolveFaults(faultValues(t, map[string]string{"faults": "script/2"}), 5, sim.Ring(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if to := faults[3].Script[0].To; to != 4 {
		t.Errorf("ring scripted target for 3 = %d, want 4 (successor of 3 in Ring(5))", to)
	}
}

func TestResolveFaultsErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"crash", "want kind/K"},
		{"crash/x", "bad count"},
		{"crash/-1", "bad count"},
		{"crash/1@-2", "bad crash step"},
		{"byz/1@0", "bad budget"},
		{"script/1@-1", "bad time"},
		{"drop/1", "unknown kind"},
		{"crash/5", "claims 5 processes, system has 4"},
	}
	for _, tc := range cases {
		v := faultValues(t, map[string]string{"faults": tc.spec})
		_, err := ResolveFaults(v, 4, nil, func(int, sim.ProcessID, int) sim.Process {
			return sim.ProcessFunc(func(*sim.Env, sim.Message) {})
		})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("spec %q: got %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

func TestSharedOrLegacyFaults(t *testing.T) {
	legacy := func() map[sim.ProcessID]sim.Fault {
		return map[sim.ProcessID]sim.Fault{3: sim.Silent()}
	}
	// Legacy switch on, no spec: the legacy map wins.
	v := faultValues(t, nil)
	faults, err := SharedOrLegacyFaults(v, 4, nil, nil, true, "adversaries=true", legacy)
	if err != nil || len(faults) != 1 {
		t.Fatalf("legacy path: (%v, %v)", faults, err)
	}
	// Both engaged: conflict error naming the legacy switch.
	v = faultValues(t, map[string]string{"faults": "crash/1"})
	if _, err := SharedOrLegacyFaults(v, 4, nil, nil, true, "adversaries=true", legacy); err == nil ||
		!strings.Contains(err.Error(), "adversaries=true") {
		t.Errorf("conflict not rejected: %v", err)
	}
	// Legacy off: the spec resolves through the shared axis.
	faults, err = SharedOrLegacyFaults(v, 4, nil, nil, false, "adversaries=true", legacy)
	if err != nil || len(faults) != 1 || faults[3].CrashAfter != 0 {
		t.Fatalf("shared path: (%v, %v)", faults, err)
	}
}
