// Package all links every workload registration in the repository. The
// domain packages register their sources from init, so importing them —
// even blank — is what populates the registry; binaries and tests that
// want the full catalogue (cmd/abcsim, the experiments, the conformance
// suite) import this package instead of tracking the domain list
// themselves. The broadcast and scenario sources register with the
// workload package itself (scenario's figures are the checker's own test
// ground truth, so package scenario stays import-free of the fleet).
package all

import (
	_ "repro/internal/clocksync"
	_ "repro/internal/consensus"
	_ "repro/internal/detector"
	_ "repro/internal/lockstep"
	_ "repro/internal/parsync"
	_ "repro/internal/theta"
	_ "repro/internal/variants"
	_ "repro/internal/vlsi"
)
