// Sparse-topology conformance: the fleet==serial determinism contract must
// hold for every topology generator, not just the fully-connected default
// the main suite exercises. Each case resolves a registered source with a
// topology override and pins identical fingerprints across worker counts
// {1, 4} and across repeated runs, including a disconnected graph.
package all_test

import (
	"strings"
	"testing"

	"repro/internal/runner"
	"repro/internal/workload"
)

func sparseCases(t *testing.T) map[string][]string {
	t.Helper()
	return map[string][]string{
		"broadcast-ring":      {"broadcast", "topology=ring", "n=24", "target=4"},
		"broadcast-regular-a": {"broadcast", "topology=regular/2", "toposeed=7", "n=24", "target=4"},
		"broadcast-regular-b": {"broadcast", "topology=regular/2", "toposeed=8", "n=24", "target=4"},
		"broadcast-torus":     {"broadcast", "topology=torus", "n=16", "target=4"},
		"broadcast-scalefree": {"broadcast", "topology=scalefree/2", "n=24", "target=4"},
		// Disconnected: three islands, traffic never crosses a partition
		// (pinned at the sim layer); here the contract is that the fleet
		// handles the partitioned run deterministically and to quiescence.
		"broadcast-islands": {"broadcast", "topology=islands/3", "n=9", "target=4"},
		// The headline scenario: Algorithm 1 on a chip fabric that is a
		// torus instead of all-to-all. Progress is not guaranteed sparse
		// (the precision verdict gates itself off), so the event budget
		// keeps the case bounded either way.
		"vlsi-torus": {"vlsi", "topology=torus", "n=9", "maxevents=3000"},
	}
}

func sparseJobs(t *testing.T, spec []string, opt workload.JobOptions) []runner.Job {
	t.Helper()
	s := source(t, spec[0])
	overrides := make(map[string]string, len(spec)-1)
	for _, kv := range spec[1:] {
		k, val, _ := strings.Cut(kv, "=")
		overrides[k] = val
	}
	v, err := s.Resolve(overrides)
	if err != nil {
		t.Fatalf("%s: %v", spec[0], err)
	}
	jobs, err := s.Jobs(v, conformanceSeeds, opt)
	if err != nil {
		t.Fatalf("%s: %v", spec[0], err)
	}
	return jobs
}

func TestSparseTopologyFleetDeterminism(t *testing.T) {
	for name, spec := range sparseCases(t) {
		name, spec := name, spec
		t.Run(name, func(t *testing.T) {
			serial := run(t, sparseJobs(t, spec, workload.JobOptions{Ratio: true}), 1)
			for _, r := range serial {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.Key, r.Err)
				}
				if r.CheckErr != nil {
					t.Fatalf("%s: domain verdict: %v", r.Key, r.CheckErr)
				}
			}
			again := run(t, sparseJobs(t, spec, workload.JobOptions{Ratio: true}), 1)
			wide := run(t, sparseJobs(t, spec, workload.JobOptions{Ratio: true}), 4)
			for i := range serial {
				want := fingerprint(serial[i])
				if got := fingerprint(again[i]); got != want {
					t.Errorf("unstable across runs:\n 1st: %s\n 2nd: %s", want, got)
				}
				if got := fingerprint(wide[i]); got != want {
					t.Errorf("worker-count dependent:\n serial: %s\n fleet:  %s", want, got)
				}
			}
		})
	}
}

// TestSparseDisconnectedQuiesces pins the expected behavior on a
// disconnected graph: the run terminates on its own (no truncation) with
// every island having completed its local broadcast rounds.
func TestSparseDisconnectedQuiesces(t *testing.T) {
	jobs := sparseJobs(t, sparseCases(t)["broadcast-islands"], workload.JobOptions{})
	for _, r := range run(t, jobs, 2) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Key, r.Err)
		}
		if r.Sim == nil || r.Sim.Truncated {
			t.Errorf("%s: disconnected run did not quiesce", r.Key)
		}
	}
}
