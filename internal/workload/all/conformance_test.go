// The registry-wide conformance suite: every registered workload — current
// and future — is held to the same contracts, replacing per-package
// one-off harnesses. For each source it pins:
//
//   - parameter-space hygiene: docs present, defaults resolve, malformed
//     and undeclared overrides rejected;
//   - fleet determinism: per-job trace hashes, verdicts, ratios, and
//     domain-check errors identical across worker counts and across
//     repeated runs (trace-hash stability);
//   - verdict agreement: the fleet's ABC verdict equals an independent
//     batch check.ABC over a freshly built graph of the same trace, and
//     the source's own domain verdict passes on its default parameters;
//   - watch transparency: streaming the check through the incremental
//     engine (runner.Job.Watch) is invisible on admissible runs — same
//     hash, same verdict, no violation index.
package all_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/runner"
	"repro/internal/workload"

	_ "repro/internal/workload/all"
)

// conformanceSeeds keeps the suite fast while still exercising the seed
// axis; trace sources ignore the seed and just replicate.
var conformanceSeeds = []int64{1, 2}

// required is the catalogue the acceptance criteria demand; more may
// register, fewer is a failure.
var required = []string{
	"broadcast", "clocksync", "consensus", "lockstep", "omega",
	"parsync", "scenario", "theta", "variants", "vlsi",
}

func source(t *testing.T, name string) workload.Source {
	t.Helper()
	s, ok := workload.Lookup(name)
	if !ok {
		t.Fatalf("workload %q not registered (have %v)", name, workload.Names())
	}
	return s
}

// defaultJobs builds a fresh default-parameter job batch; fresh closures
// per call so repeated runs share no state.
func defaultJobs(t *testing.T, name string, opt workload.JobOptions) []runner.Job {
	t.Helper()
	s := source(t, name)
	v, err := s.Resolve(nil)
	if err != nil {
		t.Fatalf("%s: defaults do not resolve: %v", name, err)
	}
	jobs, err := s.Jobs(v, conformanceSeeds, opt)
	if err != nil {
		t.Fatalf("%s: job generation failed: %v", name, err)
	}
	return jobs
}

func run(t *testing.T, jobs []runner.Job, workers int) []runner.JobResult {
	t.Helper()
	results, _, err := runner.Run(context.Background(), jobs, runner.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// fingerprint reduces a result to the fields the determinism contract
// covers.
func fingerprint(r runner.JobResult) string {
	hash := uint64(0)
	if r.Trace != nil {
		hash = r.Trace.Hash()
	}
	verdict := "none"
	if r.Verdict != nil {
		verdict = fmt.Sprintf("%v", r.Verdict.Admissible)
	}
	checkErr := "<nil>"
	if r.CheckErr != nil {
		checkErr = r.CheckErr.Error()
	}
	return fmt.Sprintf("key=%s err=%v hash=%016x verdict=%s ratio=%v/%v fv=%d check=%s",
		r.Key, r.Err, hash, verdict, r.Ratio, r.RatioFound, r.FirstViolation, checkErr)
}

func TestConformanceRegistryComplete(t *testing.T) {
	for _, name := range required {
		source(t, name)
	}
}

func TestConformanceParamSpaces(t *testing.T) {
	for _, name := range workload.Names() {
		s := source(t, name)
		if s.Doc == "" {
			t.Errorf("%s: no Doc", name)
		}
		if len(s.Params) == 0 {
			t.Errorf("%s: empty parameter space", name)
		}
		for _, p := range s.Params {
			if p.Doc == "" {
				t.Errorf("%s: param %s has no Doc", name, p.Name)
			}
		}
		if _, err := s.Resolve(nil); err != nil {
			t.Errorf("%s: defaults do not resolve: %v", name, err)
		}
		if _, err := s.Resolve(map[string]string{"definitely-not-a-param": "1"}); err == nil {
			t.Errorf("%s: undeclared override accepted", name)
		}
		if len(s.Params) > 0 && s.Params[0].Kind != workload.String {
			if _, err := s.Resolve(map[string]string{s.Params[0].Name: "!!"}); err == nil {
				t.Errorf("%s: malformed %s accepted", name, s.Params[0].Name)
			}
		}
	}
}

// TestConformanceFleetDeterminism pins fleet==serial trace hashes,
// verdicts, and domain-check errors for every registration, plus
// stability across repeated runs.
func TestConformanceFleetDeterminism(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			baseline := run(t, defaultJobs(t, name, workload.JobOptions{Ratio: true}), 1)
			for _, r := range baseline {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.Key, r.Err)
				}
			}
			again := run(t, defaultJobs(t, name, workload.JobOptions{Ratio: true}), 1)
			wide := run(t, defaultJobs(t, name, workload.JobOptions{Ratio: true}), 4)
			for i := range baseline {
				want := fingerprint(baseline[i])
				if got := fingerprint(again[i]); got != want {
					t.Errorf("unstable across runs:\n 1st: %s\n 2nd: %s", want, got)
				}
				if got := fingerprint(wide[i]); got != want {
					t.Errorf("worker-count dependent:\n serial: %s\n fleet:  %s", want, got)
				}
			}
		})
	}
}

// TestConformanceVerdictAgreesWithCheck re-derives every ABC verdict with
// an independently built graph and the batch checker, and requires the
// source's own domain verdict to pass on its default parameter point.
func TestConformanceVerdictAgreesWithCheck(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			jobs := defaultJobs(t, name, workload.JobOptions{})
			for i, r := range run(t, jobs, 2) {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.Key, r.Err)
				}
				if r.CheckErr != nil {
					t.Errorf("%s: domain verdict failed on defaults: %v", r.Key, r.CheckErr)
				}
				if jobs[i].Xi.Sign() <= 0 {
					continue
				}
				if r.Verdict == nil {
					t.Errorf("%s: Xi=%v set but no verdict", r.Key, jobs[i].Xi)
					continue
				}
				batch, err := check.ABC(causality.Build(r.Trace, causality.Options{}), jobs[i].Xi)
				if err != nil {
					t.Fatalf("%s: batch re-check: %v", r.Key, err)
				}
				if batch.Admissible != r.Verdict.Admissible {
					t.Errorf("%s: fleet verdict %v, batch checker %v",
						r.Key, r.Verdict.Admissible, batch.Admissible)
				}
			}
		})
	}
}

// TestConformanceWatchInvisibleOnAdmissible runs every simulation source
// with and without the streaming monitor: on admissible default
// parameters the watched run must produce the identical trace and
// verdict, with no violation index.
func TestConformanceWatchInvisibleOnAdmissible(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			plain := defaultJobs(t, name, workload.JobOptions{})
			if plain[0].Cfg == nil || plain[0].Xi.Sign() <= 0 {
				t.Skipf("%s: trace source or no Ξ — watch does not apply", name)
			}
			batch := run(t, plain, 2)
			watched := run(t, defaultJobs(t, name, workload.JobOptions{Watch: true}), 2)
			for i := range batch {
				b, w := batch[i], watched[i]
				if b.Err != nil || w.Err != nil {
					t.Fatalf("%s: err batch=%v watch=%v", b.Key, b.Err, w.Err)
				}
				if !b.Admissible() {
					t.Fatalf("%s: default parameters must be admissible for the watch contract", b.Key)
				}
				if !w.Admissible() || w.FirstViolation != -1 {
					t.Errorf("%s: watch verdict admissible=%v first-violation=%d on an admissible run",
						w.Key, w.Admissible(), w.FirstViolation)
				}
				if b.Trace.Hash() != w.Trace.Hash() {
					t.Errorf("%s: monitoring changed the trace (hash %016x vs %016x)",
						b.Key, b.Trace.Hash(), w.Trace.Hash())
				}
			}
		})
	}
}
