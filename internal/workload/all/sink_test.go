// The registry-wide sink-equivalence suite: bounded trace retention
// (trace=window/K, trace=none) must be observationally invisible below
// the trace itself. For every registered simulation workload the same
// config run under full, window, and none retention agrees on event and
// message totals and on the running stream digest; the incremental
// watcher reaches the same first violation over a sliding window as over
// the complete record; and Resolve refuses retention modes a source's
// domain verdict cannot survive.
package all_test

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"

	_ "repro/internal/workload/all"
)

// simConfig builds a fresh default-parameter simulation config for the
// named source, or nil for trace-replay sources (parsync, scenario).
// Fresh per call: process closures may be stateful, so each retention
// run gets its own spawners.
func simConfig(t *testing.T, name string, seed int64) *sim.Config {
	t.Helper()
	s := source(t, name)
	v, err := s.Resolve(nil)
	if err != nil {
		t.Fatalf("%s: defaults do not resolve: %v", name, err)
	}
	jobs, err := s.Jobs(v, []int64{seed}, workload.JobOptions{NoVerdict: true})
	if err != nil {
		t.Fatalf("%s: job generation failed: %v", name, err)
	}
	return jobs[0].Cfg
}

// TestSinkEquivalenceAllSources runs every registered simulation source
// under all three retention modes and requires identical totals,
// identical stream digests, and an identical truncation flag. The sink
// is swapped directly on the config — below the Resolve policy layer —
// because the equivalence must hold even for sources whose verdicts
// need the full trace.
func TestSinkEquivalenceAllSources(t *testing.T) {
	const seed = 3
	engine := sim.NewEngine()
	for _, name := range workload.Names() {
		cfg := simConfig(t, name, seed)
		if cfg == nil {
			continue // trace-replay source, no simulation to re-run
		}
		t.Run(name, func(t *testing.T) {
			full, err := engine.Run(*cfg)
			if err != nil {
				t.Fatalf("full: %v", err)
			}
			ft := full.Trace
			if !ft.Complete() {
				t.Fatalf("default retention is %v, want complete", ft.Retention())
			}
			if ft.TotalEvents() == 0 {
				t.Fatal("default run recorded no events")
			}
			const k = 64
			for _, tc := range []struct {
				mode string
				sink sim.Sink
			}{
				{"window", sim.RetainWindow(k)},
				{"none", sim.RetainNone()},
			} {
				cfg := simConfig(t, name, seed)
				cfg.Sink = tc.sink
				res, err := engine.Run(*cfg)
				if err != nil {
					t.Fatalf("%s: %v", tc.mode, err)
				}
				bt := res.Trace
				if bt.TotalEvents() != ft.TotalEvents() || bt.TotalMsgs() != ft.TotalMsgs() {
					t.Fatalf("%s: totals (%d, %d), want (%d, %d)",
						tc.mode, bt.TotalEvents(), bt.TotalMsgs(), ft.TotalEvents(), ft.TotalMsgs())
				}
				if bt.StreamHash() != ft.StreamHash() {
					t.Fatalf("%s: stream hash %016x, want %016x", tc.mode, bt.StreamHash(), ft.StreamHash())
				}
				if res.Truncated != full.Truncated {
					t.Fatalf("%s: truncated %v, want %v", tc.mode, res.Truncated, full.Truncated)
				}
				if tc.mode == "window" && len(bt.Events) > bt.TotalEvents() {
					t.Fatalf("window retained %d of %d events", len(bt.Events), bt.TotalEvents())
				}
			}
		})
	}
}

// TestNetFaultSinkEquivalence is the retention half of the fault-plane
// acceptance bar: under message drops, duplicates, delay spikes, a
// transient partition, and a recovering process — the config that draws
// the most from the per-message fault stream — full, window, and none
// retention must agree on totals and on the running stream digest.
// Dropped deliveries are folded into the digest as they happen, so any
// retention-dependent divergence in the fault layer shows up here.
func TestNetFaultSinkEquivalence(t *testing.T) {
	s := source(t, "broadcast")
	engine := sim.NewEngine()
	for _, spec := range []string{
		"drop/0.3",
		"dup/0.25+spike/0.2@2",
		"partition/halves@2..5",
		"recover/1@2..4+drop/0.2+dup/0.15",
	} {
		t.Run(spec, func(t *testing.T) {
			cfgFor := func() *sim.Config {
				v, err := s.Resolve(map[string]string{"faults": spec})
				if err != nil {
					t.Fatalf("%s: %v", spec, err)
				}
				jobs, err := s.Jobs(v, []int64{7}, workload.JobOptions{NoVerdict: true})
				if err != nil {
					t.Fatalf("%s: %v", spec, err)
				}
				return jobs[0].Cfg
			}
			full, err := engine.Run(*cfgFor())
			if err != nil {
				t.Fatal(err)
			}
			ft := full.Trace
			if ft.TotalMsgs() == 0 {
				t.Fatal("run recorded no messages")
			}
			for _, tc := range []struct {
				mode string
				sink sim.Sink
			}{
				{"window", sim.RetainWindow(16)},
				{"none", sim.RetainNone()},
			} {
				cfg := cfgFor()
				cfg.Sink = tc.sink
				res, err := engine.Run(*cfg)
				if err != nil {
					t.Fatalf("%s: %v", tc.mode, err)
				}
				bt := res.Trace
				if bt.TotalEvents() != ft.TotalEvents() || bt.TotalMsgs() != ft.TotalMsgs() {
					t.Fatalf("%s: totals (%d, %d), want (%d, %d)",
						tc.mode, bt.TotalEvents(), bt.TotalMsgs(), ft.TotalEvents(), ft.TotalMsgs())
				}
				if bt.StreamHash() != ft.StreamHash() {
					t.Fatalf("%s: stream hash %016x, want %016x", tc.mode, bt.StreamHash(), ft.StreamHash())
				}
				if res.Truncated != full.Truncated {
					t.Fatalf("%s: truncated %v, want %v", tc.mode, res.Truncated, full.Truncated)
				}
			}
		})
	}
}

// TestWindowWatchMatchesBatchFirstViolation pins the watch path that
// bounded retention exists to serve: on an inadmissible broadcast load
// (delays [1, 3] against Ξ = 3/2), the incremental checker fed by a
// sliding window must abort at the same event, with the same verdict, as
// both the full-trace watcher and the full-trace batch check.
func TestWindowWatchMatchesBatchFirstViolation(t *testing.T) {
	s := source(t, "broadcast")
	base := map[string]string{"n": "5", "target": "8", "min": "1", "max": "3", "xi": "3/2"}
	type outcome struct {
		violation  int
		admissible bool
	}
	runOne := func(trace string, watch bool) outcome {
		t.Helper()
		overrides := map[string]string{"trace": trace}
		for k, v := range base {
			overrides[k] = v
		}
		vals, err := s.Resolve(overrides)
		if err != nil {
			t.Fatalf("trace=%s: %v", trace, err)
		}
		jobs, err := s.Jobs(vals, []int64{1}, workload.JobOptions{Watch: watch})
		if err != nil {
			t.Fatalf("trace=%s: %v", trace, err)
		}
		r := run(t, jobs, 1)[0]
		if r.Err != nil {
			t.Fatalf("trace=%s: %v", trace, r.Err)
		}
		if r.Verdict == nil {
			t.Fatalf("trace=%s watch=%v: no verdict", trace, watch)
		}
		return outcome{violation: r.FirstViolation, admissible: r.Verdict.Admissible}
	}

	batch := runOne("full", false)
	fullWatch := runOne("full", true)
	windowWatch := runOne("window/256", true)

	if batch.admissible {
		t.Fatal("delays [1, 3] against Ξ=3/2 should be inadmissible")
	}
	if fullWatch.admissible || windowWatch.admissible {
		t.Fatalf("watcher verdicts (full %v, window %v) disagree with batch (inadmissible)",
			fullWatch.admissible, windowWatch.admissible)
	}
	if fullWatch.violation < 0 {
		t.Fatal("full-trace watcher reported no first violation")
	}
	if windowWatch.violation != fullWatch.violation {
		t.Fatalf("window watcher stopped at event %d, full-trace watcher at %d",
			windowWatch.violation, fullWatch.violation)
	}
}

// TestWindowWatchWithRecoveryFaults is the satellite golden-trace case:
// recovery faults inject unprocessed down-receptions and a deferred
// wake-up into the event stream, and the incremental watcher fed by a
// sliding window must still abort at exactly the first violation the
// full-trace watcher and the full-trace batch check find on the same
// inadmissible load.
func TestWindowWatchWithRecoveryFaults(t *testing.T) {
	s := source(t, "broadcast")
	base := map[string]string{
		"n": "5", "target": "8", "min": "1", "max": "3", "xi": "3/2",
		"faults": "recover/1@2..4",
	}
	type outcome struct {
		violation  int
		admissible bool
	}
	runOne := func(trace string, watch bool) outcome {
		t.Helper()
		overrides := map[string]string{"trace": trace}
		for k, v := range base {
			overrides[k] = v
		}
		vals, err := s.Resolve(overrides)
		if err != nil {
			t.Fatalf("trace=%s: %v", trace, err)
		}
		jobs, err := s.Jobs(vals, []int64{1}, workload.JobOptions{Watch: watch})
		if err != nil {
			t.Fatalf("trace=%s: %v", trace, err)
		}
		r := run(t, jobs, 1)[0]
		if r.Err != nil {
			t.Fatalf("trace=%s: %v", trace, r.Err)
		}
		if r.Verdict == nil {
			t.Fatalf("trace=%s watch=%v: no verdict", trace, watch)
		}
		return outcome{violation: r.FirstViolation, admissible: r.Verdict.Admissible}
	}

	batch := runOne("full", false)
	fullWatch := runOne("full", true)
	windowWatch := runOne("window/256", true)

	if batch.admissible {
		t.Fatal("delays [1, 3] against Ξ=3/2 should be inadmissible")
	}
	if fullWatch.admissible || windowWatch.admissible {
		t.Fatalf("watcher verdicts (full %v, window %v) disagree with batch (inadmissible)",
			fullWatch.admissible, windowWatch.admissible)
	}
	if fullWatch.violation < 0 {
		t.Fatal("full-trace watcher reported no first violation")
	}
	if windowWatch.violation != fullWatch.violation {
		t.Fatalf("window watcher stopped at event %d, full-trace watcher at %d",
			windowWatch.violation, fullWatch.violation)
	}
}

// TestRetentionPolicy pins the Resolve/Jobs policy layer: sources whose
// domain verdicts read the recorded trace reject bounded retention,
// trace-agnostic sources accept it, and watching under trace=none is
// refused at job-generation time.
func TestRetentionPolicy(t *testing.T) {
	needsTrace := []string{"clocksync", "consensus", "lockstep", "omega", "theta", "vlsi"}
	for _, name := range needsTrace {
		for _, trace := range []string{"none", "window/8"} {
			if _, err := source(t, name).Resolve(map[string]string{"trace": trace}); err == nil {
				t.Errorf("%s: trace=%s resolved, want rejection (verdict needs the trace)", name, trace)
			} else if !strings.Contains(err.Error(), "trace=full") {
				t.Errorf("%s: trace=%s: error %q does not point at trace=full", name, trace, err)
			}
		}
	}
	for _, name := range []string{"broadcast", "variants"} {
		for _, trace := range []string{"none", "window/8"} {
			v, err := source(t, name).Resolve(map[string]string{"trace": trace})
			if err != nil {
				t.Errorf("%s: trace=%s rejected: %v", name, trace, err)
				continue
			}
			if _, err := source(t, name).Jobs(v, []int64{1}, workload.JobOptions{}); err != nil {
				t.Errorf("%s: trace=%s jobs failed: %v", name, trace, err)
			}
		}
	}
	if _, err := source(t, "broadcast").Resolve(map[string]string{"trace": "window/0"}); err == nil {
		t.Error("broadcast: trace=window/0 resolved, want parse rejection")
	}
	v, err := source(t, "broadcast").Resolve(map[string]string{"trace": "none"})
	if err != nil {
		t.Fatalf("broadcast trace=none: %v", err)
	}
	if _, err := source(t, "broadcast").Jobs(v, []int64{1}, workload.JobOptions{Watch: true}); err == nil {
		t.Error("broadcast: trace=none + Watch generated jobs, want rejection")
	}
}
