// The registry-wide shard-invisibility suite: the sharded engine
// (sim.Config.Shards > 1) must be observationally indistinguishable from
// the serial one for every registered simulation workload — identical
// trace hashes, stream digests, ABC verdicts, critical ratios, domain
// checks, and truncation flags at every shard count. Sharding is an
// execution knob, never a model parameter; any source whose results move
// under it has a determinism bug in the engine, not a new behavior.
package all_test

import (
	"strconv"
	"testing"

	"repro/internal/runner"
	"repro/internal/workload"

	_ "repro/internal/workload/all"
)

// shardCounts spans the acceptance grid: 1 must pin the serial path,
// the rest the parallel engine (where the source's config permits it).
var shardCounts = []int{1, 2, 4, 8}

// TestShardInvisibilityAllSources sweeps the "shards" parameter across
// every registered source that declares it (all simulation sources) and
// requires result fingerprints — trace hash, verdict, ratio, first
// violation, domain-check error — identical to the serial baseline.
// Domain verdicts stay enabled: a shard-dependent theorem check would be
// the worst possible regression, so it must be part of the fingerprint.
func TestShardInvisibilityAllSources(t *testing.T) {
	seeds := []int64{1, 2}
	for _, name := range workload.Names() {
		s := source(t, name)
		v, err := s.Resolve(nil)
		if err != nil {
			t.Fatalf("%s: defaults do not resolve: %v", name, err)
		}
		if !v.Has("shards") {
			continue // trace-replay source, nothing to shard
		}
		t.Run(name, func(t *testing.T) {
			jobs, err := s.Jobs(v, seeds, workload.JobOptions{Ratio: true})
			if err != nil {
				t.Fatal(err)
			}
			baseline := run(t, jobs, 1)
			for _, r := range baseline {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.Key, r.Err)
				}
			}
			for _, shards := range shardCounts {
				vs, err := v.Set("shards", strconv.Itoa(shards))
				if err != nil {
					t.Fatal(err)
				}
				jobs, err := s.Jobs(vs, seeds, workload.JobOptions{Ratio: true})
				if err != nil {
					t.Fatal(err)
				}
				results := run(t, jobs, 2)
				for i, r := range results {
					if got, want := fingerprint(r), fingerprint(baseline[i]); got != want {
						t.Errorf("shards=%d: %s:\n got %s\nwant %s", shards, r.Key, got, want)
					}
				}
			}
		})
	}
}

// TestShardInvisibilityFaultPlane is the fault-plane half of the
// acceptance bar: under message drops, duplicates, delay spikes, a
// transient partition, and recovering processes — the rows that draw
// hardest on the per-message fault stream — the sharded engine must
// reproduce the serial stream digest and totals exactly. Uses the same
// fault specs as the retention-equivalence suite so the two invisibility
// planes (sink, shards) are pinned on identical configurations.
func TestShardInvisibilityFaultPlane(t *testing.T) {
	s := source(t, "broadcast")
	for _, spec := range []string{
		"drop/0.3",
		"dup/0.25+spike/0.2@2",
		"partition/halves@2..5",
		"recover/1@2..4+drop/0.2+dup/0.15",
	} {
		t.Run(spec, func(t *testing.T) {
			jobsFor := func(shards int) []runner.Job {
				t.Helper()
				v, err := s.Resolve(map[string]string{
					"faults": spec,
					"shards": strconv.Itoa(shards),
				})
				if err != nil {
					t.Fatal(err)
				}
				jobs, err := s.Jobs(v, []int64{7}, workload.JobOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return jobs
			}
			base := run(t, jobsFor(1), 1)
			for _, r := range base {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.Key, r.Err)
				}
			}
			for _, shards := range shardCounts[1:] {
				results := run(t, jobsFor(shards), 1)
				for i, r := range results {
					if got, want := fingerprint(r), fingerprint(base[i]); got != want {
						t.Errorf("shards=%d: %s:\n got %s\nwant %s", shards, r.Key, got, want)
					}
					bt, ft := r.Trace, base[i].Trace
					if bt.StreamHash() != ft.StreamHash() {
						t.Errorf("shards=%d: stream hash %016x, want %016x", shards, bt.StreamHash(), ft.StreamHash())
					}
					if bt.TotalEvents() != ft.TotalEvents() || bt.TotalMsgs() != ft.TotalMsgs() {
						t.Errorf("shards=%d: totals (%d, %d), want (%d, %d)",
							shards, bt.TotalEvents(), bt.TotalMsgs(), ft.TotalEvents(), ft.TotalMsgs())
					}
				}
			}
		})
	}
}
