// Protocol-catalogue conformance: the consensus and Ω sources, and the
// shared fault axis (workload.FaultParams) across the registry, are held
// to the same fleet==serial contract as everything else — including the
// CheckErr *text* of failing domain verdicts, which is what flushed out
// the Spec.Check map-iteration nondeterminism this PR fixes.
package all_test

import (
	"strings"
	"testing"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/runner"
	"repro/internal/workload"
)

// faultCases are parameter points exercising the fault axis on every
// family that accepts it: crash-at-step grids, Byzantine budgets,
// scripted noise, the Ω core on sparse fabrics, and the crash-recovery
// and lossy-network families (recover schedules under both state and
// in-flight policies, drop/dup/spike rules, transient partitions). All
// must pass their domain verdicts.
func faultCases(t *testing.T) map[string][]string {
	t.Helper()
	return map[string][]string{
		"consensus-floodset-silent":  {"consensus", "algo=floodset", "faults=crash/1@0"},
		"consensus-floodset-late":    {"consensus", "algo=floodset", "faults=crash/1@2"},
		"consensus-eig-byz":          {"consensus", "algo=eig", "faults=byz/1"},
		"consensus-eig-byz-budget":   {"consensus", "algo=eig", "faults=byz/1@20"},
		"consensus-phaseking-byz":    {"consensus", "n=5", "algo=phaseking", "faults=byz/1"},
		"consensus-script":           {"consensus", "algo=eig", "faults=script/1@2"},
		"consensus-floodset-recover": {"consensus", "algo=floodset", "faults=recover/1@2..6"},
		"omega-silent-follower":      {"omega", "faults=crash/1@0"},
		"omega-silent-core":          {"omega", "n=3", "faults=crash/1@0"},
		"omega-ring":                 {"omega", "n=8", "topology=ring", "faults=crash/1@0"},
		"omega-torus":                {"omega", "n=9", "topology=torus"},
		"omega-recover-leader":       {"omega", "faults=recover/p0@4..12"},
		"clocksync-byz-axis":         {"clocksync", "faults=byz/1@30"},
		"clocksync-crash-axis":       {"clocksync", "faults=crash/1@4"},
		"clocksync-lossy":            {"clocksync", "faults=drop/0.1"},
		"lockstep-crash-axis":        {"lockstep", "faults=crash/1@2"},
		"vlsi-crash-axis":            {"vlsi", "faults=crash/1@0"},
		"broadcast-script-axis":      {"broadcast", "faults=script/2@1"},
		"broadcast-recover":          {"broadcast", "faults=recover/1@2..4"},
		"broadcast-recover-amnesia":  {"broadcast", "faults=recover/1@2..4", "recovery=amnesia", "inflight=hold"},
		"broadcast-drop":             {"broadcast", "faults=drop/0.3"},
		"broadcast-dup-spike":        {"broadcast", "faults=dup/0.25+spike/0.2@2"},
		"broadcast-partition":        {"broadcast", "faults=partition/halves@2..5"},
	}
}

func overrideJobs(t *testing.T, spec []string, opt workload.JobOptions) []runner.Job {
	t.Helper()
	s := source(t, spec[0])
	overrides := make(map[string]string, len(spec)-1)
	for _, kv := range spec[1:] {
		k, val, _ := strings.Cut(kv, "=")
		overrides[k] = val
	}
	v, err := s.Resolve(overrides)
	if err != nil {
		t.Fatalf("%s: %v", spec[0], err)
	}
	jobs, err := s.Jobs(v, conformanceSeeds, opt)
	if err != nil {
		t.Fatalf("%s: %v", spec[0], err)
	}
	return jobs
}

// TestProtocolFaultFleetDeterminism pins fleet==serial fingerprints —
// trace hash, verdict, ratio, and domain CheckErr text — for every fault
// case, across worker counts {1, 4} and repeated runs, and requires the
// domain verdicts to pass.
func TestProtocolFaultFleetDeterminism(t *testing.T) {
	for name, spec := range faultCases(t) {
		name, spec := name, spec
		t.Run(name, func(t *testing.T) {
			serial := run(t, overrideJobs(t, spec, workload.JobOptions{Ratio: true}), 1)
			for _, r := range serial {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.Key, r.Err)
				}
				if r.CheckErr != nil {
					t.Fatalf("%s: domain verdict: %v", r.Key, r.CheckErr)
				}
				if r.Sim != nil && r.Sim.Truncated {
					t.Fatalf("%s: truncated", r.Key)
				}
			}
			again := run(t, overrideJobs(t, spec, workload.JobOptions{Ratio: true}), 1)
			wide := run(t, overrideJobs(t, spec, workload.JobOptions{Ratio: true}), 4)
			for i := range serial {
				want := fingerprint(serial[i])
				if got := fingerprint(again[i]); got != want {
					t.Errorf("unstable across runs:\n 1st: %s\n 2nd: %s", want, got)
				}
				if got := fingerprint(wide[i]); got != want {
					t.Errorf("worker-count dependent:\n serial: %s\n fleet:  %s", want, got)
				}
			}
		})
	}
}

// TestProtocolVerdictAgreesWithCheck re-derives the ABC verdict of every
// fault-case job with the batch checker over an independently rebuilt
// graph — the fault axis must not perturb verdict agreement.
func TestProtocolVerdictAgreesWithCheck(t *testing.T) {
	for name, spec := range faultCases(t) {
		name, spec := name, spec
		t.Run(name, func(t *testing.T) {
			jobs := overrideJobs(t, spec, workload.JobOptions{})
			for i, r := range run(t, jobs, 2) {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.Key, r.Err)
				}
				if jobs[i].Xi.Sign() <= 0 || r.Verdict == nil {
					t.Fatalf("%s: fault case without an ABC verdict", r.Key)
				}
				batch, err := check.ABC(causality.Build(r.Trace, causality.Options{}), jobs[i].Xi)
				if err != nil {
					t.Fatalf("%s: batch re-check: %v", r.Key, err)
				}
				if batch.Admissible != r.Verdict.Admissible {
					t.Errorf("%s: fleet verdict %v, batch checker %v",
						r.Key, r.Verdict.Admissible, batch.Admissible)
				}
			}
		})
	}
}

// TestProtocolFailingVerdictDeterministic is the satellite-1 regression
// at registry level: a consensus run stopped one round short of EIG's
// requirement fails termination, and the CheckErr string must be
// byte-identical at workers {1, 4} and across repeats — before the
// Spec.Check rewrite, map iteration made the reported process random.
func TestProtocolFailingVerdictDeterministic(t *testing.T) {
	spec := []string{"consensus", "algo=eig", "rounds=1"}
	serial := run(t, overrideJobs(t, spec, workload.JobOptions{}), 1)
	for _, r := range serial {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Key, r.Err)
		}
		if r.CheckErr == nil {
			t.Fatalf("%s: under-run consensus passed its verdict", r.Key)
		}
		if !strings.Contains(r.CheckErr.Error(), "did not decide") {
			t.Fatalf("%s: unexpected verdict error: %v", r.Key, r.CheckErr)
		}
	}
	again := run(t, overrideJobs(t, spec, workload.JobOptions{}), 1)
	wide := run(t, overrideJobs(t, spec, workload.JobOptions{}), 4)
	for i := range serial {
		want := serial[i].CheckErr.Error()
		for _, other := range []runner.JobResult{again[i], wide[i]} {
			if other.CheckErr == nil || other.CheckErr.Error() != want {
				t.Errorf("%s: CheckErr text not deterministic:\n want %q\n got  %v",
					serial[i].Key, want, other.CheckErr)
			}
		}
	}
}

// TestProtocolFaultGrids runs the two headline grid shapes from the
// issue — a crash-at-step sweep and a Byzantine-budget sweep — through
// Source.Grid, pinning that fault specs expand as ordinary sweep values
// and that every grid point completes with a passing verdict.
func TestProtocolFaultGrids(t *testing.T) {
	grids := []struct {
		name   string
		source string
		base   map[string]string
		axis   runner.Axis
	}{
		{"crash-sweep", "consensus", map[string]string{"algo": "floodset"},
			runner.Axis{Param: "faults", Values: []string{"none", "crash/1@0", "crash/1@2"}}},
		{"byz-budget", "clocksync", nil,
			runner.Axis{Param: "faults", Values: []string{"byz/1@20", "byz/1@40", "byz/1@60"}}},
	}
	for _, g := range grids {
		g := g
		t.Run(g.name, func(t *testing.T) {
			s := source(t, g.source)
			base, err := s.Resolve(g.base)
			if err != nil {
				t.Fatal(err)
			}
			jobs, err := s.Grid(base, []runner.Axis{g.axis}, conformanceSeeds, workload.JobOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if want := len(g.axis.Values) * len(conformanceSeeds); len(jobs) != want {
				t.Fatalf("grid expanded to %d jobs, want %d", len(jobs), want)
			}
			for _, r := range run(t, jobs, 2) {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.Key, r.Err)
				}
				if r.CheckErr != nil {
					t.Errorf("%s: domain verdict: %v", r.Key, r.CheckErr)
				}
			}
		})
	}
}
