package workload

// ShardParams returns the shared execution-shard parameter declaration.
// Simulation sources append it to their parameter space (like
// TraceParams); the sweep decoration then stamps the value into every
// generated job's sim.Config:
//
//	shards=0  — the fleet decides (runner.Options.Shards, default serial)
//	shards=1  — pin the serial engine, overriding the fleet
//	shards=N  — run the conservative parallel engine on N shards
//
// Sharding is an execution detail, never a model parameter: the sharded
// engine is byte-identical to the serial one at every shard count, so
// sweeping this axis must not change a single trace hash or verdict —
// the conformance suite pins that for every registered source.
func ShardParams() []Param {
	return []Param{{
		Name: "shards", Kind: Int, Default: "0",
		Doc: "engine shards per simulation: 0 = fleet decides, 1 = serial, N>1 = parallel engine (traces identical regardless)",
	}}
}
