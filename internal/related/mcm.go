// Package related implements the remaining partially synchronous models
// the paper relates the ABC model to in Section 5.2: Fetzer's Message
// Classification Model (MCM) and the query–response model of Mostefaoui,
// Mourgaya and Raynal (MMR). Both are order/classification based — like
// the ABC condition, and unlike the delay-bound models — which is why the
// paper singles them out for comparison.
//
// The package provides admissibility checkers for both and the
// incomparability experiments of Section 5.2: ABC-admissible executions
// that admit no valid MCM classification (the MCM assumption is more
// demanding: no two messages with delay ratio in (1, 2] may be in transit
// simultaneously unless both are slow), and MMR winning-set extraction
// from query–response traces.
package related

import (
	"repro/internal/rat"
	"repro/internal/sim"
)

// MCMClass is a slow/fast flag for a received message.
type MCMClass bool

// MCM classes.
const (
	Fast MCMClass = false
	Slow MCMClass = true
)

// MCMValid reports whether a complete classification of the trace's
// correct messages satisfies Fetzer's requirement: the end-to-end delay of
// every slow message strictly exceeds twice the end-to-end delay of every
// fast message. classify is consulted per message.
func MCMValid(t *sim.Trace, classify func(m sim.Message) MCMClass) bool {
	var maxFast, minSlow rat.Rat
	haveFast, haveSlow := false, false
	for _, m := range t.Msgs {
		if m.IsWakeup() || t.Faulty[m.From] || t.Faulty[m.To] {
			continue
		}
		d := m.RecvTime.Sub(m.SendTime)
		if classify(m) == Slow {
			if !haveSlow || d.Less(minSlow) {
				minSlow, haveSlow = d, true
			}
		} else {
			if !haveFast || d.Greater(maxFast) {
				maxFast, haveFast = d, true
			}
		}
	}
	if !haveFast || !haveSlow {
		return true // one-sided classifications are vacuously consistent
	}
	return minSlow.Greater(maxFast.MulInt(2))
}

// MCMClassifiable reports whether ANY classification of the trace's
// correct messages is valid — equivalently (sorting delays), whether some
// threshold splits the delay multiset so that everything above is more
// than twice everything below, with the all-fast and all-slow splits
// always allowed. A trace with two messages whose delay ratio lies in
// (1, 2] and which must be separated cannot be classified unless they land
// on the same side; since the all-fast split is always valid, the
// interesting question — answered here — is whether a split with at least
// one slow message exists (Fetzer requires the existence of genuinely
// usable slow messages: local messages are always delivered slow).
func MCMClassifiable(t *sim.Trace) (splitExists bool, delays []rat.Rat) {
	for _, m := range t.Msgs {
		if m.IsWakeup() || t.Faulty[m.From] || t.Faulty[m.To] {
			continue
		}
		delays = append(delays, m.RecvTime.Sub(m.SendTime))
	}
	if len(delays) == 0 {
		return true, nil
	}
	// Sort ascending.
	for i := 1; i < len(delays); i++ {
		for j := i; j > 0 && delays[j].Less(delays[j-1]); j-- {
			delays[j], delays[j-1] = delays[j-1], delays[j]
		}
	}
	// A nontrivial split after index i is valid iff delays[i+1] > 2·delays[i]
	// (monotonicity makes the extremes the binding pair).
	for i := 0; i+1 < len(delays); i++ {
		if delays[i+1].Greater(delays[i].MulInt(2)) {
			return true, delays
		}
	}
	return false, delays
}
