package related

import (
	"sort"

	"repro/internal/sim"
)

// MMR query–response machinery. In the MMR model, every process repeatedly
// queries all processes and waits for the first n−f responses; the model
// assumes a fixed set Q_i of processes whose responses are always among
// those first n−f. Winning sets are the empirical version: the
// intersection, over all completed query rounds of process i, of the sets
// of the first n−f responders.

// QueryRound is one completed query–response exchange: the responders in
// arrival order.
type QueryRound struct {
	Querier    sim.ProcessID
	Responders []sim.ProcessID // in order of response arrival
}

// WinningSets computes, per querier, the intersection of the first-(n−f)
// responder sets over that querier's rounds. A non-empty winning set for
// every querier (beyond the querier itself) witnesses the MMR property on
// the observed prefix.
func WinningSets(n, f int, rounds []QueryRound) map[sim.ProcessID][]sim.ProcessID {
	type set map[sim.ProcessID]bool
	inter := make(map[sim.ProcessID]set)
	for _, r := range rounds {
		k := n - f
		if k > len(r.Responders) {
			k = len(r.Responders)
		}
		first := make(set, k)
		for _, p := range r.Responders[:k] {
			first[p] = true
		}
		if cur, ok := inter[r.Querier]; !ok {
			inter[r.Querier] = first
		} else {
			for p := range cur {
				if !first[p] {
					delete(cur, p)
				}
			}
		}
	}
	out := make(map[sim.ProcessID][]sim.ProcessID, len(inter))
	for q, s := range inter {
		ids := make([]sim.ProcessID, 0, len(s))
		for p := range s {
			ids = append(ids, p)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out[q] = ids
	}
	return out
}

// MMRQuerier is a process that runs query–response rounds: it broadcasts a
// query, collects responses, completes a round when n−f arrived, and
// starts the next round, up to MaxRounds. Rounds() returns the observed
// responder orders for WinningSets.
type MMRQuerier struct {
	N, F      int
	MaxRounds int

	self      sim.ProcessID
	round     int
	got       []sim.ProcessID
	gotSet    map[sim.ProcessID]bool
	completed []QueryRound
}

// mmrQuery and mmrResponse are the protocol payloads.
type (
	mmrQuery    struct{ Round int }
	mmrResponse struct{ Round int }
)

var _ sim.Process = (*MMRQuerier)(nil)

// Rounds returns the completed query rounds.
func (q *MMRQuerier) Rounds() []QueryRound { return q.completed }

// Step implements sim.Process.
func (q *MMRQuerier) Step(env *sim.Env, msg sim.Message) {
	switch pl := msg.Payload.(type) {
	case sim.Wakeup:
		q.self = env.Self()
		q.begin(env)
	case mmrQuery:
		env.Send(msg.From, mmrResponse{Round: pl.Round})
	case mmrResponse:
		if pl.Round != q.round || q.gotSet == nil || q.gotSet[msg.From] {
			return
		}
		q.gotSet[msg.From] = true
		q.got = append(q.got, msg.From)
		if len(q.got) >= q.N-q.F {
			q.completed = append(q.completed, QueryRound{
				Querier:    q.self,
				Responders: append([]sim.ProcessID(nil), q.got...),
			})
			q.round++
			if q.round < q.MaxRounds {
				q.begin(env)
			}
		}
	}
}

func (q *MMRQuerier) begin(env *sim.Env) {
	q.got = q.got[:0]
	q.gotSet = make(map[sim.ProcessID]bool)
	for p := sim.ProcessID(0); int(p) < q.N; p++ {
		if p != q.self {
			env.Send(p, mmrQuery{Round: q.round})
		}
	}
}

// MMRResponder only answers queries (for pure responder processes).
type MMRResponder struct{}

var _ sim.Process = MMRResponder{}

// Step implements sim.Process.
func (MMRResponder) Step(env *sim.Env, msg sim.Message) {
	if q, ok := msg.Payload.(mmrQuery); ok {
		env.Send(msg.From, mmrResponse{Round: q.Round})
	}
}
