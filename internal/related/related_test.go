package related

import (
	"testing"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/rat"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func TestMCMValidBasic(t *testing.T) {
	b := sim.NewTraceBuilder(2)
	b.WakeAll(rat.Zero)
	b.MsgAt(0, 0, 1, 1, "fast")  // delay 1
	b.MsgAt(0, 0, 1, 5, "slow")  // delay 5 > 2*1
	b.MsgAt(1, 1, 0, 20, "slow") // delay 19
	tr := b.MustBuild()

	byPayload := func(m sim.Message) MCMClass {
		if s, ok := m.Payload.(string); ok && s == "slow" {
			return Slow
		}
		return Fast
	}
	if !MCMValid(tr, byPayload) {
		t.Error("valid classification rejected")
	}
	// Misclassify the delay-1 message as slow: 1 > 2*19 fails.
	allSlowButOne := func(m sim.Message) MCMClass {
		if s, ok := m.Payload.(string); ok && s == "fast" {
			return Slow
		}
		return Fast
	}
	if MCMValid(tr, allSlowButOne) {
		t.Error("invalid classification accepted")
	}
	// One-sided classifications are vacuously valid.
	if !MCMValid(tr, func(sim.Message) MCMClass { return Fast }) {
		t.Error("all-fast rejected")
	}
}

// Section 5.2's comparison: the MCM assumption is more demanding than the
// ABC condition. Fig. 1's execution is ABC(2)-admissible, but its delay
// spectrum (which includes a zero-delay message and a dense range) admits
// no nontrivial slow/fast split.
func TestABCAdmissibleButNotMCMClassifiable(t *testing.T) {
	// Build an ABC-admissible execution whose delays are dense in ratio
	// (no gap of factor > 2): delays 2, 3, 4.
	b := sim.NewTraceBuilder(2)
	b.WakeAll(rat.Zero)
	b.MsgAt(0, 0, 1, 2, "a") // delay 2
	b.MsgAt(1, 1, 0, 6, "b") // delay 4... ratio 2: not > 2
	b.MsgAt(0, 1, 1, 9, "c") // delay 3
	tr := b.MustBuild()
	g := causality.Build(tr, causality.Options{})
	v, err := check.ABC(g, rat.FromInt(3))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admissible {
		t.Fatal("dense-delay execution not ABC(3)-admissible")
	}
	split, delays := MCMClassifiable(tr)
	if split {
		t.Errorf("dense delay spectrum %v admits an MCM split", delays)
	}
}

func TestMCMClassifiableFindsGap(t *testing.T) {
	b := sim.NewTraceBuilder(2)
	b.WakeAll(rat.Zero)
	b.MsgAt(0, 0, 1, 1, "x")  // delay 1
	b.MsgAt(1, 1, 0, 11, "y") // delay 10 > 2
	tr := b.MustBuild()
	split, _ := MCMClassifiable(tr)
	if !split {
		t.Error("factor-10 gap not found")
	}
	// Empty trace: vacuously classifiable.
	b2 := sim.NewTraceBuilder(1)
	b2.WakeAll(rat.Zero)
	if ok, _ := MCMClassifiable(b2.MustBuild()); !ok {
		t.Error("empty trace not classifiable")
	}
	// Fig. 1 (zero-delay message): any split with the zero-delay message
	// fast requires slow > 0, which holds — verify behavior is computed,
	// not assumed.
	fig := scenario.BuildFig1()
	split, delays := MCMClassifiable(fig.Trace)
	_ = split
	if len(delays) != 9 {
		t.Errorf("Fig.1 has %d correct message delays, want 9", len(delays))
	}
}

func TestWinningSets(t *testing.T) {
	rounds := []QueryRound{
		{Querier: 0, Responders: []sim.ProcessID{1, 2, 3}},
		{Querier: 0, Responders: []sim.ProcessID{2, 1, 3}},
		{Querier: 0, Responders: []sim.ProcessID{1, 2, 4}},
	}
	// n=5, f=2: first 3 responders count.
	ws := WinningSets(5, 2, rounds)
	got := ws[0]
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("winning set = %v, want [1 2]", got)
	}
}

func TestMMRQueryRounds(t *testing.T) {
	// n−f = 3 of 4 responders count per round: the consistently slow
	// process 4 must drop out of the winning set.
	n, f := 5, 2
	res, err := sim.Run(sim.Config{
		N: n,
		Spawn: func(p sim.ProcessID) sim.Process {
			if p == 0 {
				return &MMRQuerier{N: n, F: f, MaxRounds: 5}
			}
			return MMRResponder{}
		},
		Delays: sim.PerLinkDelay{
			Default: sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
			Links: map[sim.Link]sim.DelayPolicy{
				{From: 4, To: 0}: sim.UniformDelay{Min: rat.FromInt(10), Max: rat.FromInt(12)},
			},
		},
		Seed:      2,
		MaxEvents: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := res.Procs[0].(*MMRQuerier)
	if len(q.Rounds()) != 5 {
		t.Fatalf("completed %d rounds, want 5", len(q.Rounds()))
	}
	ws := WinningSets(n, f, q.Rounds())
	set := ws[0]
	if len(set) == 0 {
		t.Fatal("empty winning set — MMR property fails even in benign run")
	}
	for _, p := range set {
		if p == 4 {
			t.Error("consistently slow process in the winning set")
		}
	}
}

func TestMMRQuerierIgnoresStaleResponses(t *testing.T) {
	// Duplicate and stale responses must not complete rounds twice.
	n, f := 3, 1
	res, err := sim.Run(sim.Config{
		N: n,
		Spawn: func(p sim.ProcessID) sim.Process {
			if p == 0 {
				return &MMRQuerier{N: n, F: f, MaxRounds: 3}
			}
			return MMRResponder{}
		},
		Delays:    sim.UniformDelay{Min: rat.One, Max: rat.FromInt(4)},
		Seed:      3,
		MaxEvents: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := res.Procs[0].(*MMRQuerier)
	if len(q.Rounds()) != 3 {
		t.Fatalf("completed %d rounds, want 3", len(q.Rounds()))
	}
	for _, r := range q.Rounds() {
		seen := map[sim.ProcessID]bool{}
		for _, p := range r.Responders {
			if seen[p] {
				t.Fatal("duplicate responder recorded")
			}
			seen[p] = true
		}
	}
}
