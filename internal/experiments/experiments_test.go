package experiments

import (
	"testing"
)

// TestAllExperimentsReproduce runs the full E1–E15 suite — the entire
// paper evaluation — and fails on the first claim that does not reproduce.
// Skipped under -short: the suite runs many simulations (it is also
// exercised by cmd/abcbench and the root benchmarks).
func TestAllExperimentsReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation suite skipped in -short mode")
	}
	all := append(All(), RunVLSI)
	for _, exp := range all {
		res, err := exp()
		if err != nil {
			t.Fatalf("%s: %v", res.ID, err)
		}
		for _, r := range res.Rows {
			if !r.OK {
				t.Errorf("%s/%s: paper claims %q, measured %q", res.ID, r.Name, r.Paper, r.Measured)
			}
		}
		t.Logf("%s: %s — %d rows ok", res.ID, res.Title, len(res.Rows))
	}
}

func TestResultFailed(t *testing.T) {
	r := Result{Rows: []Row{{OK: true}, {OK: true}}}
	if r.Failed() {
		t.Error("all-ok result reported failed")
	}
	r.Rows = append(r.Rows, Row{OK: false})
	if !r.Failed() {
		t.Error("failing row not reported")
	}
}
