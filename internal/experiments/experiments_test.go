package experiments

import (
	"context"
	"reflect"
	"testing"
)

// TestAllExperimentsReproduce runs the full E1–E15 suite — the entire
// paper evaluation — and fails on the first claim that does not reproduce.
// Skipped under -short: the suite runs many simulations (it is also
// exercised by cmd/abcbench and the root benchmarks).
func TestAllExperimentsReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation suite skipped in -short mode")
	}
	all := append(All(), RunVLSI)
	for _, exp := range all {
		res, err := exp()
		if err != nil {
			t.Fatalf("%s: %v", res.ID, err)
		}
		for _, r := range res.Rows {
			if !r.OK {
				t.Errorf("%s/%s: paper claims %q, measured %q", res.ID, r.Name, r.Paper, r.Measured)
			}
		}
		t.Logf("%s: %s — %d rows ok", res.ID, res.Title, len(res.Rows))
	}
}

// TestRunAllWidthIndependent pins the fleet guarantee at the evaluation
// level: the complete E1–E18 suite produces identical Rows whether the
// experiments (and their internal simulation batches) run serially or
// across 4 workers. Skipped under -short for the same reason as the full
// suite above.
func TestRunAllWidthIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation suite skipped in -short mode")
	}
	SetWorkers(1)
	serial, err := RunAll(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	SetWorkers(4)
	defer SetWorkers(0)
	parallel, err := RunAll(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("%s: rows differ between 1 and 4 workers:\nserial:   %+v\nparallel: %+v",
				serial[i].ID, serial[i], parallel[i])
		}
	}
	for _, r := range serial {
		if r.Failed() {
			t.Errorf("%s failed", r.ID)
		}
	}
}

// TestCrossWorkloadSharded pins shard invisibility at the evaluation
// level on the E18 matrix — the registry-wide sweep plus the fault-plane
// rows, the densest consumer of the per-message fault stream: every Row
// (name, claim, measurement, verdict) must be identical whether the
// experiment's internal fleets run serial engines or 2-shard engines.
func TestCrossWorkloadSharded(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	serial, err := RunCrossWorkload()
	if err != nil {
		t.Fatal(err)
	}
	SetShards(2)
	defer SetShards(0)
	sharded, err := RunCrossWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Errorf("E18 rows differ between serial and 2-shard engines:\nserial:  %+v\nsharded: %+v",
			serial, sharded)
	}
	for _, row := range serial.Rows {
		if !row.OK {
			t.Errorf("row %s failed", row.Name)
		}
	}
}

func TestResultFailed(t *testing.T) {
	r := Result{Rows: []Row{{OK: true}, {OK: true}}}
	if r.Failed() {
		t.Error("all-ok result reported failed")
	}
	r.Rows = append(r.Rows, Row{OK: false})
	if !r.Failed() {
		t.Error("failing row not reported")
	}
}
