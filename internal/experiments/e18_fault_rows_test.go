package experiments

import "testing"

// TestCrossWorkloadFaultPlaneRows pins the fault-plane extension of the
// E18 matrix: every recovery/lossy/partition cell produces a passing row
// (admissible, domain verdict clean, batch re-check agreement).
func TestCrossWorkloadFaultPlaneRows(t *testing.T) {
	res, err := RunCrossWorkload()
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, r := range res.Rows {
		t.Logf("%s: ok=%v %s", r.Name, r.OK, r.Measured)
		if !r.OK {
			t.Errorf("%s: %s", r.Name, r.Measured)
		}
	}
	for _, fc := range faultPlaneMatrix {
		for _, r := range res.Rows {
			if r.Name == fc.name {
				found++
			}
		}
	}
	if found != len(faultPlaneMatrix) {
		t.Errorf("found %d fault-plane rows, want %d", found, len(faultPlaneMatrix))
	}
}
