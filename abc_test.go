package abc

import (
	"testing"

	"repro/internal/lockstep"
	"repro/internal/sim"
)

// The façade tests exercise the public API end to end, the way a
// downstream user would: build a model, run an algorithm, verify the
// trace, inspect certificates.

func TestFacadeQuickstart(t *testing.T) {
	model := MustModel(NewRat(2, 1))
	faults := ByzantineClockAdversaries(4, 1, 42)

	res, g, verdict, err := model.RunVerified(Config{
		N:         4,
		Spawn:     ClockSyncSpawner(4, 1),
		Faults:    faults,
		Delays:    UniformDelay{Min: RatInt(1), Max: NewRat(3, 2)},
		Seed:      7,
		Until:     ClocksReached(15, faults),
		MaxEvents: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Admissible {
		t.Fatalf("not admissible: %v", verdict.Witness)
	}
	if err := verdict.Assignment.Validate(model.Xi()); err != nil {
		t.Fatal(err)
	}
	x := model.PrecisionBound()
	if err := CheckRealTimePrecision(res.Trace, x); err != nil {
		t.Error(err)
	}
	if err := CheckCutSynchrony(g, x); err != nil {
		t.Error(err)
	}
	if err := CheckCausalCone(res.Trace, x); err != nil {
		t.Error(err)
	}
}

func TestFacadeCheckAndRatio(t *testing.T) {
	// Hand-build Fig. 1 through the public TraceBuilder.
	b := NewTraceBuilder(9)
	b.WakeAll(RatInt(0))
	b.MsgAt(0, 0, 5, 1, "m1")
	b.MsgAt(5, 1, 6, 2, "m2")
	b.MsgAt(6, 1, 7, 2, "m3")
	b.MsgAt(7, 1, 8, 3, "m4")
	b.MsgAt(8, 1, 1, 4, "m5")
	b.MsgAt(0, 0, 2, 3, "m6")
	b.MsgAt(2, 1, 3, 6, "m7")
	b.MsgAt(3, 1, 4, 8, "m8")
	b.MsgAt(4, 1, 1, 10, "m9")
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := BuildGraph(tr)

	v, err := Check(g, RatInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admissible {
		t.Error("Fig.1 not admissible at Ξ=2 via façade")
	}
	ratio, found, err := MaxRelevantRatio(g)
	if err != nil {
		t.Fatal(err)
	}
	if !found || !ratio.Equal(NewRat(5, 4)) {
		t.Errorf("critical ratio = %v found=%v, want 5/4", ratio, found)
	}
	constrained, err := Constrained(g)
	if err != nil {
		t.Fatal(err)
	}
	if !constrained {
		t.Error("Fig.1 not constrained via façade")
	}
	// Enumeration agrees.
	all, complete := EnumerateCycles(g, 100)
	if !complete || len(all) != 1 {
		t.Errorf("enumeration: %d cycles complete=%v", len(all), complete)
	}
	if cl := ClassifyCycle(all[0]); !cl.Relevant {
		t.Error("classification via façade failed")
	}
}

func TestFacadeConsensus(t *testing.T) {
	model := MustModel(NewRat(2, 1))
	n, f := 4, 1
	inputs := []int{1, 0, 1, 1}
	res, err := Simulate(Config{
		N: n,
		Spawn: LockStepSpawner(model, n, f, func(p sim.ProcessID) lockstep.App {
			return NewEIG(n, f, inputs[p])
		}),
		Delays:    UniformDelay{Min: RatInt(1), Max: NewRat(3, 2)},
		Seed:      1,
		Until:     RoundsReached(EIGRounds(f), nil),
		MaxEvents: 300000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckLockStep(res.Procs, nil); err != nil {
		t.Fatal(err)
	}
	deciders := make([]Decider, n)
	init := map[ProcessID]int{}
	for i, v := range inputs {
		init[ProcessID(i)] = v
	}
	for id := range res.Procs {
		deciders[id] = res.Procs[id].(*LockStep).App().(Decider)
	}
	if err := (ConsensusSpec{Initial: init}).Check(deciders); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeResilienceHelpers(t *testing.T) {
	if MinProcesses(2) != 7 || MaxFaults(7) != 2 {
		t.Error("resilience helpers wrong")
	}
	if TimeoutChainLen(RatInt(2)) != 4 {
		t.Error("TimeoutChainLen wrong")
	}
	if FIFOMinChainLen(RatInt(4)) != 3 {
		t.Error("FIFOMinChainLen wrong")
	}
	if _, err := NewModel(RatInt(1)); err == nil {
		t.Error("Ξ=1 accepted")
	}
	if _, err := ParseRat("7/4"); err != nil {
		t.Error("ParseRat failed")
	}
	if !MustRat("3/2").Equal(NewRat(3, 2)) {
		t.Error("MustRat wrong")
	}
}

func TestFacadeVLSI(t *testing.T) {
	chip, err := NewChip(4, RatInt(1), NewRat(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunClockGeneration(chip, RatInt(2), 1, 6, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Admissible || !rep.PrecisionOK {
		t.Errorf("chip run: %+v", rep)
	}
}

func TestFacadeVariants(t *testing.T) {
	l, err := NewXiLearner(NewRat(11, 10), NewRat(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if l.Estimate().LessEq(RatInt(1)) {
		t.Error("estimate must exceed 1")
	}
	b := NewTraceBuilder(2)
	b.WakeAll(RatInt(0))
	b.MsgAt(0, 0, 1, 1, nil)
	tr := b.MustBuild()
	idx, ok, err := FindGST(tr, RatInt(2))
	if err != nil || !ok || idx != 0 {
		t.Errorf("FindGST on benign trace: idx=%d ok=%v err=%v", idx, ok, err)
	}
	if DoublingBoundary(2)(3) != 14 {
		t.Error("DoublingBoundary wrong")
	}
}
